// §IV ablation: hierarchical wake-up triggers vs. per-core wake-up writes.
// TeraPool adds CSRs that wake a set of groups (one write) or a set of tiles
// within a group (one write per group); without them the last core of a
// partial barrier must wake every sleeper individually.
#include <numeric>

#include "bench/bench_util.h"
#include "sim/barrier.h"

namespace {

using namespace pp;

// Full-cluster phased workload on the MemPool-runtime-style log barrier
// (hierarchical arrival through tile/group/root counters).
sim::Kernel_report run_tree(const arch::Cluster_config& cfg, uint32_t phases) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  sim::Tree_barrier bar = sim::Tree_barrier::create(alloc, cfg);

  struct Body {
    static sim::Prog prog(sim::Core& c, sim::Tree_barrier* b, uint32_t phases) {
      for (uint32_t ph = 0; ph < phases; ++ph) {
        c.alu(20 + c.id % 7);
        co_await sim::tree_barrier_wait(c, *b);
      }
    }
  };
  std::vector<sim::Machine::Launch> l;
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    l.push_back({c, Body::prog(m.core(c), &bar, phases)});
  }
  return m.run_programs("tree-barrier", std::move(l));
}

// Phased workload: gangs of `gang` cores meet at their own barrier `phases`
// times.  Returns the kernel report.
sim::Kernel_report run(const arch::Cluster_config& cfg, uint32_t gang,
                       bool hierarchical, uint32_t phases) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  const uint32_t n_gangs = cfg.n_cores() / gang;

  std::vector<sim::Barrier> bars;
  for (uint32_t g = 0; g < n_gangs; ++g) {
    std::vector<arch::core_id> cs(gang);
    std::iota(cs.begin(), cs.end(), g * gang);
    bars.push_back(hierarchical
                       ? sim::Barrier::create(alloc, cfg, std::move(cs))
                       : sim::Barrier::create_flat_wake(alloc, cfg,
                                                        std::move(cs)));
  }

  struct Body {
    static sim::Prog prog(sim::Core& c, sim::Barrier* b, uint32_t phases) {
      for (uint32_t ph = 0; ph < phases; ++ph) {
        c.alu(20 + c.id % 7);  // slightly unbalanced work
        co_await sim::barrier_wait(c, *b);
      }
    }
  };
  std::vector<sim::Machine::Launch> l;
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    l.push_back({c, Body::prog(m.core(c), &bars[c / gang], phases)});
  }
  return m.run_programs("barrier", std::move(l));
}

}  // namespace

int main(int argc, char** argv) {
  using common::Table;
  common::Cli cli(argc, argv);
  bench::banner(
      "[§IV]", "partial-barrier trigger ablation",
      "Hierarchical group/tile wake-up CSRs vs. one wake-up write per core.");
  auto rep = bench::make_report("bench_ablation_barrier", "[§IV]",
                                "partial-barrier trigger ablation");

  const auto record = [&rep](const arch::Cluster_config& cfg, uint32_t gang,
                             const char* trigger, const sim::Kernel_report& r) {
    auto& row = rep.add_row(cfg.name + " " + std::to_string(gang) + " " +
                            trigger);
    row.cluster = cfg.name;
    row.cores = gang;
    row.metric("cycles", static_cast<double>(r.cycles), "cycles");
    row.metric("ipc", r.ipc(), "ipc", true, "higher");
    row.metric("frac_wfi", r.frac(sim::Stall::wfi), "fraction");
  };

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t({"gang size", "trigger", "cycles", "IPC", "wfi%"});
    for (uint32_t gang : {cfg.cores_per_tile, cfg.cores_per_tile * 16u,
                          cfg.n_cores()}) {
      for (const bool hier : {true, false}) {
        const auto r = run(cfg, gang, hier, 20);
        const char* trigger = hier ? "hierarchical CSR" : "per-core writes";
        t.add_row({cfg.name + " " + std::to_string(gang), trigger,
                   Table::fmt(r.cycles), Table::fmt(r.ipc(), 2),
                   Table::pct(r.frac(sim::Stall::wfi))});
        record(cfg, gang, trigger, r);
      }
    }
    // Full-cluster log barrier (hierarchical arrival + broadcast wake).
    const auto rt = run_tree(cfg, 20);
    t.add_row({cfg.name + " " + std::to_string(cfg.n_cores()),
               "log-barrier arrival", Table::fmt(rt.cycles),
               Table::fmt(rt.ipc(), 2), Table::pct(rt.frac(sim::Stall::wfi))});
    record(cfg, cfg.n_cores(), "log-barrier arrival", rt);
    t.print();
    std::printf("\n");
  }
  return bench::emit(rep, cli);
}
