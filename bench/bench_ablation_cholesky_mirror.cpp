// Fig. 7 ablation: mirrored-couple load balancing in the parallel Cholesky.
// With mirroring, each core owns heavy rows of one matrix and light rows of
// the other, flattening the staircase; without it, both matrices load the
// same cores and synchronization idle time grows.
#include "bench/bench_util.h"
#include "kernels/cholesky.h"

int main() {
  using namespace pp;
  using common::Table;

  bench::banner("Fig. 7 ablation - Cholesky mirrored couples",
                "Paper: two instances with mirrored outputs rebalance the "
                "staircase workload of the Cholesky-Crout kernel.");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t(bench::ipc_header());
    for (const bool mirrored : {true, false}) {
      sim::Machine m(cfg);
      arch::L1_alloc alloc(m.config());
      const uint32_t n_pairs = cfg.n_cores() / 8;
      kernels::Chol_pair chol(m, alloc, 32, n_pairs, mirrored);
      for (uint32_t p = 0; p < n_pairs; ++p) {
        chol.set_g(p, 0, bench::random_spd(32, 2 * p));
        chol.set_g(p, 1, bench::random_spd(32, 2 * p + 1));
      }
      t.add_row(bench::ipc_row(
          cfg.name + (mirrored ? " mirrored (paper)" : " unmirrored"),
          chol.run()));
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
