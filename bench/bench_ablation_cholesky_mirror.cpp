// Fig. 7 ablation: mirrored-couple load balancing in the parallel Cholesky.
// With mirroring, each core owns heavy rows of one matrix and light rows of
// the other, flattening the staircase; without it, both matrices load the
// same cores and synchronization idle time grows.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pp;
  using common::Table;
  common::Cli cli(argc, argv);

  bench::banner("[Fig. 7]", "Cholesky mirrored-couple ablation",
                "Paper: two instances with mirrored outputs rebalance the "
                "staircase workload of the Cholesky-Crout kernel.");
  auto rep = bench::make_report("bench_ablation_cholesky_mirror", "[Fig. 7]",
                                "Cholesky mirrored-couple ablation");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t(bench::ipc_header());
    for (const bool mirrored : {true, false}) {
      const auto r = bench::measure_kernel(
          cfg, "chol.pair",
          runtime::Params().set("n", 32u).set("mirrored", mirrored));
      const std::string name =
          cfg.name + (mirrored ? " mirrored (paper)" : " unmirrored");
      t.add_row(bench::ipc_row(name, r.rep));
      rep.rows.push_back(bench::report_from(name, r, cfg.name));
    }
    t.print();
    std::printf("\n");
  }
  return bench::emit(rep, cli);
}
