// Fig. 7 ablation: mirrored-couple load balancing in the parallel Cholesky.
// With mirroring, each core owns heavy rows of one matrix and light rows of
// the other, flattening the staircase; without it, both matrices load the
// same cores and synchronization idle time grows.
#include "bench/bench_util.h"

int main() {
  using namespace pp;
  using common::Table;

  bench::banner("Fig. 7 ablation - Cholesky mirrored couples",
                "Paper: two instances with mirrored outputs rebalance the "
                "staircase workload of the Cholesky-Crout kernel.");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t(bench::ipc_header());
    for (const bool mirrored : {true, false}) {
      const auto rep = bench::run_kernel(
          cfg, "chol.pair",
          runtime::Params().set("n", 32u).set("mirrored", mirrored));
      t.add_row(bench::ipc_row(
          cfg.name + (mirrored ? " mirrored (paper)" : " unmirrored"), rep));
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
