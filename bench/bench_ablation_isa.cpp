// §VI future-work reproduction: the paper concludes that the 0.5 ms PUSCH
// slot budget "can be met with customization of the RISC-V cores with
// domain-specific instructions (e.g. FFT butterfly)".  This bench re-runs
// the full use case with a fused radix-4 butterfly instruction pair enabled
// and reports the slot time against the 0.5 ms target.
#include "bench/bench_util.h"
#include "pusch/use_case_rollup.h"

int main(int argc, char** argv) {
  using namespace pp;
  using common::Table;
  common::Cli cli(argc, argv);

  bench::banner(
      "[§VI]", "ISA-extension ablation (paper's conclusion)",
      "Fused radix-4 butterfly instructions vs. the baseline SIMD sequence;\n"
      "target: one PUSCH slot within the 0.5 ms (500 kcycle @ 1 GHz) budget.");
  auto rep = bench::make_report("bench_ablation_isa", "[§VI]",
                                "ISA-extension ablation (paper's conclusion)");

  for (const auto& base : {arch::Cluster_config::terapool(),
                           arch::Cluster_config::mempool()}) {
    Table t({"cluster", "ISA", "FFT cycles/slot", "total cycles", "ms @ 1GHz",
             "meets 0.5 ms"});
    for (const bool fused : {false, true}) {
      pusch::Chain_config cfg;
      cfg.cluster = base;
      cfg.cluster.isa_fused_butterfly = fused;
      cfg.batch_cholesky = true;
      const auto res = pusch::run_use_case(cfg);
      t.add_row({base.name, fused ? "fused butterfly" : "baseline",
                 Table::fmt(res.stages[0].total_cycles()),
                 Table::fmt(res.parallel_cycles),
                 Table::fmt(res.ms_at_1ghz(), 3),
                 res.ms_at_1ghz() <= 0.5 ? "yes" : "no"});
      auto& row = rep.add_row(
          base.name + (fused ? " fused butterfly" : " baseline"));
      row.cluster = base.name;
      row.metric("fft_cycles_per_slot",
                 static_cast<double>(res.stages[0].total_cycles()), "cycles");
      row.metric("total_cycles", static_cast<double>(res.parallel_cycles),
                 "cycles");
      row.metric("ms_at_1ghz", res.ms_at_1ghz(), "ms");
      row.metric("meets_slot_budget", res.ms_at_1ghz() <= 0.5 ? 1.0 : 0.0,
                 "bool", true, "higher");
    }
    t.print();
    std::printf("\n");
  }
  return bench::emit(rep, cli);
}
