// Fig. 6 ablation: MMM output-window size.  The paper argues for 4x4 windows
// (8 loads per 16 complex MACs, filling all 30 programmable registers)
// against 4x2 (12 loads / 16 MACs-equivalent) and 2x2 (16 loads / 16 MACs).
#include "bench/bench_util.h"
#include "kernels/mmm.h"

int main() {
  using namespace pp;
  using common::Table;

  bench::banner("Fig. 6 ablation - MMM compute-window size",
                "Paper: the 4x4 window needs 8 loads per 16 complex MACs vs. "
                "12 (4x2) or 16 (2x2);\nlarger windows raise data reuse and "
                "arithmetic density.");

  const kernels::Mmm_dims d{256, 128, 256};
  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t({"window", "cycles", "IPC", "instr/cMAC", "cMACs/cycle"});
    for (auto [wr, wc] : {std::pair{4u, 4u}, {4u, 2u}, {2u, 2u}}) {
      sim::Machine m(cfg);
      arch::L1_alloc alloc(m.config());
      kernels::Mmm mmm(m, alloc, d, wr, wc);
      mmm.set_a(bench::random_signal(size_t{d.m} * d.k, 1));
      mmm.set_b(bench::random_signal(size_t{d.k} * d.p, 2));
      const auto rep = mmm.run_parallel();
      t.add_row({cfg.name + " " + std::to_string(wr) + "x" + std::to_string(wc),
                 Table::fmt(rep.cycles), Table::fmt(rep.ipc(), 2),
                 Table::fmt(static_cast<double>(rep.instrs) / mmm.cmacs(), 2),
                 Table::fmt(static_cast<double>(mmm.cmacs()) / rep.cycles, 1)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
