// Fig. 6 ablation: MMM output-window size.  The paper argues for 4x4 windows
// (8 loads per 16 complex MACs, filling all 30 programmable registers)
// against 4x2 (12 loads / 16 MACs-equivalent) and 2x2 (16 loads / 16 MACs).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pp;
  using common::Table;
  common::Cli cli(argc, argv);

  bench::banner("[Fig. 6]", "MMM compute-window size ablation",
                "Paper: the 4x4 window needs 8 loads per 16 complex MACs vs. "
                "12 (4x2) or 16 (2x2);\nlarger windows raise data reuse and "
                "arithmetic density.");
  auto rep = bench::make_report("bench_ablation_mmm_window", "[Fig. 6]",
                                "MMM compute-window size ablation");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t({"window", "cycles", "IPC", "instr/cMAC", "cMACs/cycle"});
    for (auto [wr, wc] : {std::pair{4u, 4u}, {4u, 2u}, {2u, 2u}}) {
      const auto r = bench::measure_kernel(
          cfg, "mmm",
          runtime::Params()
              .set("m", 256u)
              .set("k", 128u)
              .set("p", 256u)
              .set("wr", wr)
              .set("wc", wc));
      const std::string name =
          cfg.name + " " + std::to_string(wr) + "x" + std::to_string(wc);
      t.add_row({name, Table::fmt(r.rep.cycles), Table::fmt(r.rep.ipc(), 2),
                 Table::fmt(static_cast<double>(r.rep.instrs) / r.desc.macs, 2),
                 Table::fmt(static_cast<double>(r.desc.macs) / r.rep.cycles,
                            1)});
      auto& row = rep.rows.emplace_back(bench::report_from(name, r, cfg.name));
      row.metric("instr_per_cmac",
                 static_cast<double>(r.rep.instrs) / r.desc.macs, "instr/mac");
      row.metric("cmacs_per_cycle",
                 static_cast<double>(r.desc.macs) / r.rep.cycles, "macs/cycle",
                 true, "higher");
    }
    t.print();
    std::printf("\n");
  }
  return bench::emit(rep, cli);
}
