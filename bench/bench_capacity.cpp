// Capacity search: the maximum sustained traffic load the sharded serving
// engine holds while every cell's p99 virtual latency stays inside its
// 1 ms / 2^mu slot budget (paper §II's real-time criterion, asked in the
// inverse direction: not "does this load fit" but "how much load fits").
//
// A fixed-seed multi-cell Traffic_source is scaled by a load multiplier and
// probed through the scheduler in virtual-only mode - the analytic MAC
// service model (Table I) through the per-shard FCFS queues, no backend
// execution - so each probe costs microseconds and the whole search is
// bit-deterministic on any host.  The feasible region is bracketed by a
// binary search with dyadic midpoints (0.5 * (lo + hi), exact in doubles)
// and a fixed --iters budget, so the reported capacity is reproducible to
// the last bit and gates the quick baseline as an "exact" metric.
//
//   ./bench/bench_capacity [--slots 160] [--shards 2]
//       [--placement load-aware] [--overload off] [--iters 12]
//       [--max-scale 8] [--clock-ghz 0.005] [--servers 1] [--seed 1]
//
// The default scaled-down clock (0.005 GHz) puts every toy cell's bare
// service at 0.3-0.4 of its slot budget - in the spirit of the paper's §VI
// regime (the full 4096-point slot fills most of its 0.5 ms budget at
// 1 GHz) but with enough slack that the capacity limit comes from queueing
// collisions, not from a single slot's compute.  The headline is the
// offered uplink throughput at the capacity point, normalized per virtual
// cluster (Gb/s per cluster).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;

double get_positive_double(const common::Cli& cli, const char* flag,
                           double fallback) {
  const double v = cli.get_double(flag, fallback);
  if (!(v > 0.0)) {
    std::fprintf(stderr, "value must be positive for %s\n", flag);
    std::exit(2);
  }
  return v;
}

// The fixed four-cell mix under search: a mu=1 macro cell, a 4-layer mu=0
// cell (the wider budget absorbs its heavier MIMO stages), two mu=2 small
// cells - mixed numerology, UE count and QAM order, all at unit base load
// so the search's scale is the per-cell offered load.
runtime::Traffic_config base_traffic(uint64_t n_slots, uint64_t seed) {
  runtime::Traffic_config cfg;
  cfg.n_slots = n_slots;
  cfg.base_seed = seed;
  runtime::Traffic_cell macro;
  macro.mu = 1;
  macro.fft_size = 64;
  macro.n_ue = 2;
  macro.qam = phy::Qam::qam16;
  macro.load = 1.0;
  runtime::Traffic_cell dense = macro;
  dense.mu = 0;
  dense.n_ue = 4;
  runtime::Traffic_cell small;
  small.mu = 2;
  small.fft_size = 16;
  small.n_ue = 2;
  small.qam = phy::Qam::qpsk;
  small.load = 1.0;
  runtime::Traffic_cell tiny = small;
  tiny.n_ue = 1;
  cfg.cells = {macro, dense, small, tiny};
  return cfg;
}

runtime::Traffic_config scaled(runtime::Traffic_config cfg, double scale) {
  for (auto& cell : cfg.cells) cell.load *= scale;
  return cfg;
}

// Feasibility criterion: nothing shed and every cell that carried
// deadlines holds p99 latency within its slot budget.
bool feasible(const runtime::Schedule_result& res,
              const runtime::Traffic_config& cfg) {
  if (res.dropped > 0) return false;
  for (size_t c = 0; c < res.groups.size(); ++c) {
    const auto& g = res.groups[c];
    if (g.deadline_slots == 0) continue;
    if (g.latency.percentile(0.99) > cfg.cells[c].budget_seconds()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  bench::banner("[§II]", "capacity search: max sustained load vs. p99 budget",
                "Binary search over the Traffic_source load multiplier for "
                "the largest sustained\nload whose per-cell p99 virtual "
                "latency stays inside the 1 ms / 2^mu budget.\nProbes run "
                "the analytic service model only (virtual-only scheduler), "
                "so the\nsearch is bit-deterministic on every host and "
                "backend.");
  auto rep = bench::make_report("bench_capacity", "[§II]",
                                "max sustained load holding p99 in budget");

  const uint64_t n_slots = cli.get_u32("--slots", 160);
  const uint64_t seed = cli.get_u32("--seed", 1);
  const uint32_t iters = cli.get_u32("--iters", 12);
  const double max_scale = get_positive_double(cli, "--max-scale", 8.0);

  runtime::Scheduler_options opt;
  opt.backend = bench::backend_from_cli(cli);
  opt.cluster = bench::cluster_from_cli(cli, "minipool");
  opt.workers = 1;
  opt.keep_slots = false;
  opt.virtual_only = true;  // deadline surface only - probes cost ~us
  opt.service_units = cli.get_u32("--servers", 1);
  opt.clock_ghz = get_positive_double(cli, "--clock-ghz", 0.005);
  opt.shards = cli.get_u32("--shards", 2);
  if (opt.shards < 1) {
    std::fprintf(stderr, "need at least one shard for --shards\n");
    std::exit(2);
  }
  opt.placement = bench::placement_from_cli(cli, "load-aware");
  opt.overload = bench::overload_from_cli(cli);
  opt.queue_limit = cli.get_u32("--queue-limit", 8);
  opt.degrade_min_ue = cli.get_u32("--min-ue", 1);
  const runtime::Slot_scheduler scheduler(opt);

  const runtime::Traffic_config base = base_traffic(n_slots, seed);
  auto probe = [&](double scale) {
    return scheduler.run(runtime::Traffic_source(scaled(base, scale)));
  };

  // Bracket [lo, hi): lo feasible (0 = no offered load, trivially so), hi
  // infeasible unless the whole range fits.  Dyadic midpoints + a fixed
  // iteration count make every probe point - and so the result - exact.
  double lo = 0.0, hi = max_scale;
  uint32_t probes = 0;
  if (feasible(probe(max_scale), base)) {
    lo = max_scale;  // saturated search: report the range end
    ++probes;
  } else {
    ++probes;
    for (uint32_t i = 0; i < iters; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (feasible(probe(mid), base)) {
        lo = mid;
      } else {
        hi = mid;
      }
      ++probes;
    }
  }
  const double capacity = lo;

  // Score the capacity point once more for the reported surface, and
  // re-run it to pin the probe's bit-determinism.
  const auto at_cap = probe(capacity > 0.0 ? capacity : max_scale);
  const bool deterministic = at_cap.deterministic_equal(
      probe(capacity > 0.0 ? capacity : max_scale));

  const uint32_t clusters = opt.shards * std::max(1u, opt.service_units);
  const double offered_gbps =
      runtime::offered_bits_per_second(base) * capacity / 1e9;
  const double gbps_per_cluster = offered_gbps / clusters;

  std::printf("capacity: load scale %.6f (%u probes, %u iterations, "
              "bracket [0, %g])\n",
              capacity, probes, iters, max_scale);
  std::printf("offered at capacity: %.6f Gb/s over %u virtual clusters "
              "(%u shard%s x %u server%s) -> %.6f Gb/s per cluster\n",
              offered_gbps, clusters, opt.shards,
              opt.shards == 1 ? "" : "s", opt.service_units,
              opt.service_units == 1 ? "" : "s", gbps_per_cluster);
  std::printf("at capacity: %llu/%llu deadline misses, %llu dropped, "
              "%llu degraded, p99 %.1f us\n",
              static_cast<unsigned long long>(at_cap.deadline_misses),
              static_cast<unsigned long long>(at_cap.deadline_slots),
              static_cast<unsigned long long>(at_cap.dropped),
              static_cast<unsigned long long>(at_cap.degraded),
              1e6 * at_cap.latency.percentile(0.99));
  std::printf("probe determinism re-check: %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  rep.add_meta("cluster", opt.cluster.name);
  rep.add_meta("shards", std::to_string(opt.shards));
  rep.add_meta("servers", std::to_string(opt.service_units));
  rep.add_meta("placement", opt.placement);
  rep.add_meta("overload", opt.overload);
  rep.add_meta("iters", std::to_string(iters));
  rep.add_meta("slots", std::to_string(n_slots));
  auto& row = rep.add_row("capacity");
  row.cluster = opt.cluster.name;
  row.metric("capacity_load_scale", capacity, "x", true, "exact");
  row.metric("capacity_gbps_per_cluster", gbps_per_cluster, "Gb/s", true,
             "exact");
  row.metric("offered_gbps", offered_gbps, "Gb/s", true, "exact");
  row.metric("probes", static_cast<double>(probes), "count", true, "exact");
  row.metric("deadline_misses_at_capacity",
             static_cast<double>(at_cap.deadline_misses), "count", true,
             "exact");
  row.metric("latency_p99_at_capacity_us",
             1e6 * at_cap.latency.percentile(0.99), "us", true, "exact");
  row.metric("probe_deterministic", deterministic ? 1.0 : 0.0, "bool", true,
             "higher");
  return bench::emit(rep, cli) | (deterministic ? 0 : 1);
}
