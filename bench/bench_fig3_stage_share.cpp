// Fig. 3: share of the total complex MACs allocated to each PUSCH stage, as
// a function of the number of UEs transmitting at the same frequency.
#include "bench/bench_util.h"
#include "pusch/complexity.h"

int main(int argc, char** argv) {
  using namespace pp;
  using common::Table;
  common::Cli cli(argc, argv);

  bench::banner(
      "[Fig. 3]", "MACs per stage in the PUSCH chain",
      "Paper: OFDM + BF dominate; the MIMO share grows with the UE count.\n"
      "Amdahl's law therefore targets FFT, MMM and Cholesky for speedup.");
  auto rep = bench::make_report("bench_fig3_stage_share", "[Fig. 3]",
                                "MACs per stage in the PUSCH chain");

  Table t({"N_UE", "OFDM%", "BF%", "MIMO%", "CHE%", "NE%", "total MACs"});
  for (uint32_t nl : {1u, 2u, 4u, 8u, 12u, 16u}) {
    pusch::Pusch_dims d;
    d.n_ue = nl;
    const auto s = pusch::pusch_macs(d);
    t.add_row({Table::fmt(static_cast<uint64_t>(nl)),
               Table::pct(s.ofdm / s.total()), Table::pct(s.bf / s.total()),
               Table::pct(s.mimo / s.total()), Table::pct(s.che / s.total()),
               Table::pct(s.ne / s.total()), Table::fmt(s.total(), 0)});
    auto& row = rep.add_row("n_ue=" + std::to_string(nl));
    row.metric("share_ofdm", s.ofdm / s.total(), "fraction", true, "exact");
    row.metric("share_bf", s.bf / s.total(), "fraction", true, "exact");
    row.metric("share_mimo", s.mimo / s.total(), "fraction", true, "exact");
    row.metric("share_che", s.che / s.total(), "fraction", true, "exact");
    row.metric("share_ne", s.ne / s.total(), "fraction", true, "exact");
    row.metric("total_macs", s.total(), "macs", true, "exact");
  }
  t.print();

  // Sanity: the three parallelized kernels carry almost all the work.
  pusch::Pusch_dims d;
  const auto s = pusch::pusch_macs(d);
  std::printf("\nFFT+BF+MIMO share at NL=4: %.1f%% (paper: ~99%%)\n",
              100.0 * (s.ofdm + s.bf + s.mimo) / s.total());
  return bench::emit(rep, cli);
}
