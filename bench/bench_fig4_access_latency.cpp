// Fig. 4b: measured load-to-use latency from core 0 to banks in its own
// tile, another tile of its group, and a remote group, plus the conflict
// penalty when same-tile cores collide on one bank.
#include "arch/address_map.h"
#include "bench/bench_util.h"
#include "sim/machine.h"

namespace {

using namespace pp;

// Measures the cycle distance between issuing one load and its token ready.
uint64_t probe_latency(const arch::Cluster_config& cfg, arch::bank_id bank) {
  sim::Machine m(cfg);
  static uint64_t lat;
  auto prog = [](sim::Core& c, arch::addr_t a) -> sim::Prog {
    const sim::Tok t = co_await c.load(a);
    lat = t.ready - (c.t - 1);
  };
  std::vector<sim::Machine::Launch> l;
  l.push_back({0, prog(m.core(0), m.map().bank_word(bank, 0))});
  m.run_programs("probe", std::move(l));
  return lat;
}

}  // namespace

int main() {
  using common::Table;
  bench::banner("Fig. 4b - L1 access latencies",
                "Paper: 1 cycle local tile, 3 cycles same group, 5 cycles "
                "remote group.");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t({"cluster", "target", "measured cycles", "paper"});
    const arch::bank_id local = 0;
    const arch::bank_id group = cfg.banks_per_tile();  // tile 1, same group
    const arch::bank_id remote = cfg.n_banks() - 1;    // last group
    t.add_row({cfg.name, "own tile", Table::fmt(probe_latency(cfg, local)), "1"});
    t.add_row({cfg.name, "same group", Table::fmt(probe_latency(cfg, group)), "3"});
    t.add_row({cfg.name, "remote group", Table::fmt(probe_latency(cfg, remote)), "5"});
    t.print();
    std::printf("\n");
  }
  return 0;
}
