// Fig. 4b: measured load-to-use latency from core 0 to banks in its own
// tile, another tile of its group, and a remote group, plus the conflict
// penalty when same-tile cores collide on one bank.
#include "arch/address_map.h"
#include "bench/bench_util.h"
#include "sim/machine.h"

namespace {

using namespace pp;

// Measures the cycle distance between issuing one load and its token ready.
uint64_t probe_latency(const arch::Cluster_config& cfg, arch::bank_id bank) {
  sim::Machine m(cfg);
  static uint64_t lat;
  auto prog = [](sim::Core& c, arch::addr_t a) -> sim::Prog {
    const sim::Tok t = co_await c.load(a);
    lat = t.ready - (c.t - 1);
  };
  std::vector<sim::Machine::Launch> l;
  l.push_back({0, prog(m.core(0), m.map().bank_word(bank, 0))});
  m.run_programs("probe", std::move(l));
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  using common::Table;
  common::Cli cli(argc, argv);
  bench::banner("[Fig. 4b]", "L1 access latencies",
                "Paper: 1 cycle local tile, 3 cycles same group, 5 cycles "
                "remote group.");
  auto rep = bench::make_report("bench_fig4_access_latency", "[Fig. 4b]",
                                "L1 access latencies");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t({"cluster", "target", "measured cycles", "paper"});
    const arch::bank_id local = 0;
    const arch::bank_id group = cfg.banks_per_tile();  // tile 1, same group
    const arch::bank_id remote = cfg.n_banks() - 1;    // last group
    for (const auto& [target, bank, paper] :
         {std::tuple{"own tile", local, "1"}, {"same group", group, "3"},
          {"remote group", remote, "5"}}) {
      const uint64_t cycles = probe_latency(cfg, bank);
      t.add_row({cfg.name, target, Table::fmt(cycles), paper});
      auto& row = rep.add_row(cfg.name + " " + target);
      row.cluster = cfg.name;
      row.metric("load_to_use", static_cast<double>(cycles), "cycles", true,
                 "exact");
    }
    t.print();
    std::printf("\n");
  }
  return bench::emit(rep, cli);
}
