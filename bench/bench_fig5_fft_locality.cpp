// Fig. 5 ablation: the folded local-bank FFT layout vs. a plain interleaved
// layout.  Folding makes every butterfly load a 1-cycle local access; the
// naive layout spreads inputs over the whole cluster (3-5 cycle loads plus
// bank conflicts), which shows up as RAW/LSU stalls and lost IPC.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pp;
  using common::Table;
  common::Cli cli(argc, argv);

  bench::banner("[Fig. 5]", "FFT folded access pattern ablation",
                "Paper: the input vector is folded into the local banks so "
                "that each butterfly's four inputs share a local memory row.");
  auto rep = bench::make_report("bench_fig5_fft_locality", "[Fig. 5]",
                                "FFT folded access pattern ablation");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t(bench::ipc_header());
    for (const bool folded : {true, false}) {
      const uint32_t n = 4096;
      const auto r = bench::measure_kernel(
          cfg, "fft.parallel",
          runtime::Params()
              .set("n", n)
              .set("inst", cfg.n_cores() / (n / 16))
              .set("reps", 4u)
              .set("folded", folded),
          17);
      const std::string name =
          cfg.name + (folded ? " folded (paper)" : " interleaved (naive)");
      t.add_row(bench::ipc_row(name, r.rep));
      rep.rows.push_back(bench::report_from(name, r, cfg.name));
    }
    t.print();
    std::printf("\n");
  }
  return bench::emit(rep, cli);
}
