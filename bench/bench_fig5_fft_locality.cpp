// Fig. 5 ablation: the folded local-bank FFT layout vs. a plain interleaved
// layout.  Folding makes every butterfly load a 1-cycle local access; the
// naive layout spreads inputs over the whole cluster (3-5 cycle loads plus
// bank conflicts), which shows up as RAW/LSU stalls and lost IPC.
#include "bench/bench_util.h"

int main() {
  using namespace pp;
  using common::Table;

  bench::banner("Fig. 5 - FFT folded access pattern ablation",
                "Paper: the input vector is folded into the local banks so "
                "that each butterfly's four inputs share a local memory row.");

  for (const auto& cfg : {arch::Cluster_config::mempool(),
                          arch::Cluster_config::terapool()}) {
    Table t(bench::ipc_header());
    for (const bool folded : {true, false}) {
      const uint32_t n = 4096;
      const auto rep = bench::run_kernel(
          cfg, "fft.parallel",
          runtime::Params()
              .set("n", n)
              .set("inst", cfg.n_cores() / (n / 16))
              .set("reps", 4u)
              .set("folded", folded),
          17);
      t.add_row(bench::ipc_row(
          cfg.name + (folded ? " folded (paper)" : " interleaved (naive)"),
          rep));
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
