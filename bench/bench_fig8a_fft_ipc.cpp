// Fig. 8a: IPC and stall breakdown of the FFT kernel - serial baselines and
// the parallel configurations the paper evaluates on MemPool and TeraPool
// (replicated 256-point FFTs, one/four 4096-point FFTs, and 16 independent
// 4096-point FFTs run between barriers).
#include "bench/bench_util.h"
#include "kernels/fft.h"

namespace {

using namespace pp;

sim::Kernel_report run_parallel(const arch::Cluster_config& cfg, uint32_t n,
                                uint32_t n_inst, uint32_t reps) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Fft_parallel fft(m, alloc, n, n_inst, reps);
  for (uint32_t i = 0; i < n_inst; ++i) {
    for (uint32_t r = 0; r < reps; ++r) {
      fft.set_input(i, r, bench::random_signal(n, 100 + i * reps + r));
    }
  }
  return fft.run();
}

sim::Kernel_report run_serial(const arch::Cluster_config& cfg, uint32_t n) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Fft_serial fft(m, alloc, n, 1);
  fft.set_input(0, bench::random_signal(n, 7));
  return fft.run();
}

}  // namespace

int main() {
  using common::Table;
  bench::banner(
      "Fig. 8a - FFT IPC and stall breakdown",
      "Paper: MemPool reaches 0.82 IPC and TeraPool 0.74 with 16 independent\n"
      "4096-pt FFTs between barriers; TeraPool shows more WFI stalls; "
      "memory stalls stay below 10%.");

  Table t(bench::ipc_header());
  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  t.add_row(bench::ipc_row("serial 256-pt (1 core)", run_serial(mp, 256)));
  t.add_row(bench::ipc_row("serial 4096-pt (1 core)", run_serial(mp, 4096)));

  t.add_row(bench::ipc_row("mempool  16 FFTs 256-pt", run_parallel(mp, 256, 16, 1)));
  t.add_row(bench::ipc_row("terapool 64 FFTs 256-pt", run_parallel(tp, 256, 64, 1)));
  t.add_row(bench::ipc_row("mempool  1 FFT 4096-pt", run_parallel(mp, 4096, 1, 1)));
  t.add_row(bench::ipc_row("terapool 4 FFTs 4096-pt", run_parallel(tp, 4096, 4, 1)));
  t.add_row(bench::ipc_row("mempool  1x16 FFTs 4096-pt", run_parallel(mp, 4096, 1, 16)));
  t.add_row(bench::ipc_row("terapool 4x16 FFTs 4096-pt", run_parallel(tp, 4096, 4, 16)));
  t.print();
  return 0;
}
