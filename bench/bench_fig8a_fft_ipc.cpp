// Fig. 8a: IPC and stall breakdown of the FFT kernel - serial baselines and
// the parallel configurations the paper evaluates on MemPool and TeraPool
// (replicated 256-point FFTs, one/four 4096-point FFTs, and 16 independent
// 4096-point FFTs run between barriers).
#include "bench/bench_util.h"

namespace {

using namespace pp;

runtime::Params fft(uint32_t n, uint32_t inst, uint32_t reps) {
  return runtime::Params().set("n", n).set("inst", inst).set("reps", reps);
}

}  // namespace

int main(int argc, char** argv) {
  using common::Table;
  common::Cli cli(argc, argv);
  bench::banner(
      "[Fig. 8a]", "FFT IPC and stall breakdown",
      "Paper: MemPool reaches 0.82 IPC and TeraPool 0.74 with 16 independent\n"
      "4096-pt FFTs between barriers; TeraPool shows more WFI stalls; "
      "memory stalls stay below 10%.");
  auto rep = bench::make_report("bench_fig8a_fft_ipc", "[Fig. 8a]",
                                "FFT IPC and stall breakdown");

  Table t(bench::ipc_header());
  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  const auto add = [&](const std::string& name,
                       const arch::Cluster_config& cfg, const char* kernel,
                       const runtime::Params& params, uint64_t seed = 1) {
    const auto r = bench::measure_kernel(cfg, kernel, params, seed);
    t.add_row(bench::ipc_row(name, r.rep));
    rep.rows.push_back(bench::report_from(name, r, cfg.name));
  };

  add("serial 256-pt (1 core)", mp, "fft.serial",
      runtime::Params().set("n", 256u), 7);
  add("serial 4096-pt (1 core)", mp, "fft.serial",
      runtime::Params().set("n", 4096u), 7);

  add("mempool  16 FFTs 256-pt", mp, "fft.parallel", fft(256, 16, 1));
  add("terapool 64 FFTs 256-pt", tp, "fft.parallel", fft(256, 64, 1));
  add("mempool  1 FFT 4096-pt", mp, "fft.parallel", fft(4096, 1, 1));
  add("terapool 4 FFTs 4096-pt", tp, "fft.parallel", fft(4096, 4, 1));
  add("mempool  1x16 FFTs 4096-pt", mp, "fft.parallel", fft(4096, 1, 16));
  add("terapool 4x16 FFTs 4096-pt", tp, "fft.parallel", fft(4096, 4, 16));
  t.print();
  return bench::emit(rep, cli);
}
