// Fig. 8a: IPC and stall breakdown of the FFT kernel - serial baselines and
// the parallel configurations the paper evaluates on MemPool and TeraPool
// (replicated 256-point FFTs, one/four 4096-point FFTs, and 16 independent
// 4096-point FFTs run between barriers).
#include "bench/bench_util.h"

namespace {

using namespace pp;

runtime::Params fft(uint32_t n, uint32_t inst, uint32_t reps) {
  return runtime::Params().set("n", n).set("inst", inst).set("reps", reps);
}

}  // namespace

int main() {
  using common::Table;
  bench::banner(
      "Fig. 8a - FFT IPC and stall breakdown",
      "Paper: MemPool reaches 0.82 IPC and TeraPool 0.74 with 16 independent\n"
      "4096-pt FFTs between barriers; TeraPool shows more WFI stalls; "
      "memory stalls stay below 10%.");

  Table t(bench::ipc_header());
  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  t.add_row(bench::ipc_row(
      "serial 256-pt (1 core)",
      bench::run_kernel(mp, "fft.serial", runtime::Params().set("n", 256u), 7)));
  t.add_row(bench::ipc_row(
      "serial 4096-pt (1 core)",
      bench::run_kernel(mp, "fft.serial", runtime::Params().set("n", 4096u), 7)));

  t.add_row(bench::ipc_row("mempool  16 FFTs 256-pt",
                           bench::run_kernel(mp, "fft.parallel", fft(256, 16, 1))));
  t.add_row(bench::ipc_row("terapool 64 FFTs 256-pt",
                           bench::run_kernel(tp, "fft.parallel", fft(256, 64, 1))));
  t.add_row(bench::ipc_row("mempool  1 FFT 4096-pt",
                           bench::run_kernel(mp, "fft.parallel", fft(4096, 1, 1))));
  t.add_row(bench::ipc_row("terapool 4 FFTs 4096-pt",
                           bench::run_kernel(tp, "fft.parallel", fft(4096, 4, 1))));
  t.add_row(bench::ipc_row("mempool  1x16 FFTs 4096-pt",
                           bench::run_kernel(mp, "fft.parallel", fft(4096, 1, 16))));
  t.add_row(bench::ipc_row("terapool 4x16 FFTs 4096-pt",
                           bench::run_kernel(tp, "fft.parallel", fft(4096, 4, 16))));
  t.print();
  return 0;
}
