// Fig. 8b: IPC and stall breakdown of the beamforming MMM kernel, plus the
// MACs/cycle figures the paper quotes in the text (145/134 on MemPool and
// 558/487 on TeraPool for the regular/use-case shapes).
#include "bench/bench_util.h"

namespace {

using namespace pp;

runtime::Params mmm(uint32_t m, uint32_t k, uint32_t p, bool serial = false) {
  runtime::Params params;
  params.set("m", m).set("k", k).set("p", p);
  if (serial) params.set("mode", "serial");
  return params;
}

double cmacs_per_cycle(const bench::Measured& r) {
  return static_cast<double>(r.desc.macs) / r.rep.cycles;
}

std::string shape(uint32_t m, uint32_t k, uint32_t p) {
  return std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(p);
}

}  // namespace

int main() {
  using common::Table;
  bench::banner(
      "Fig. 8b - MMM IPC and stall breakdown",
      "Paper: 0.89 IPC on MemPool / 0.88 on TeraPool at 256x128x256; the\n"
      "irregular 4096x64x32 use-case shape costs a few IPC points; TeraPool\n"
      "shows more instruction stalls (fewer loop iterations per core).\n"
      "MemPool runs the 4096-row grid in two 2048-row slices (1 MiB L1).");

  Table t(bench::ipc_header());
  std::vector<std::pair<std::string, double>> macs;
  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  t.add_row(bench::ipc_row(
      "serial 128x128x128 (1 core)",
      bench::run_kernel(mp, "mmm", mmm(128, 128, 128, true))));
  for (auto [m, k, p] : {std::tuple{128u, 128u, 128u}, {256u, 128u, 256u}}) {
    for (const auto& cfg : {mp, tp}) {
      const auto r = bench::measure_kernel(cfg, "mmm", mmm(m, k, p));
      t.add_row(bench::ipc_row(cfg.name + " " + shape(m, k, p), r.rep));
      macs.emplace_back(cfg.name + " " + shape(m, k, p), cmacs_per_cycle(r));
    }
  }
  // Use-case shape: slice rows on MemPool (L1 capacity), full on TeraPool.
  {
    const auto r = bench::measure_kernel(mp, "mmm", mmm(2048, 64, 32));
    t.add_row(bench::ipc_row("mempool 2x(2048x64x32)", r.rep));
    macs.emplace_back("mempool 4096x64x32 (2 slices)", cmacs_per_cycle(r));
  }
  {
    const auto r = bench::measure_kernel(tp, "mmm", mmm(4096, 64, 32));
    t.add_row(bench::ipc_row("terapool 4096x64x32", r.rep));
    macs.emplace_back("terapool 4096x64x32", cmacs_per_cycle(r));
  }
  t.print();

  std::printf("\ncomplex MACs per cycle (paper counts SIMD MAC ops; see "
              "EXPERIMENTS.md):\n");
  for (const auto& [name, v] : macs) {
    std::printf("  %-32s %7.1f cMACs/cycle\n", name.c_str(), v);
  }
  return 0;
}
