// Fig. 8b: IPC and stall breakdown of the beamforming MMM kernel, plus the
// MACs/cycle figures the paper quotes in the text (145/134 on MemPool and
// 558/487 on TeraPool for the regular/use-case shapes).
#include "bench/bench_util.h"
#include "kernels/mmm.h"

namespace {

using namespace pp;

struct Run {
  sim::Kernel_report rep;
  double cmacs_per_cycle;
};

Run run(const arch::Cluster_config& cfg, kernels::Mmm_dims d, bool serial) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Mmm mmm(m, alloc, d);
  mmm.set_a(bench::random_signal(size_t{d.m} * d.k, 1));
  mmm.set_b(bench::random_signal(size_t{d.k} * d.p, 2));
  const auto rep = serial ? mmm.run_serial() : mmm.run_parallel();
  return {rep, static_cast<double>(mmm.cmacs()) / rep.cycles};
}

std::string shape(const kernels::Mmm_dims& d) {
  return std::to_string(d.m) + "x" + std::to_string(d.k) + "x" +
         std::to_string(d.p);
}

}  // namespace

int main() {
  using common::Table;
  bench::banner(
      "Fig. 8b - MMM IPC and stall breakdown",
      "Paper: 0.89 IPC on MemPool / 0.88 on TeraPool at 256x128x256; the\n"
      "irregular 4096x64x32 use-case shape costs a few IPC points; TeraPool\n"
      "shows more instruction stalls (fewer loop iterations per core).\n"
      "MemPool runs the 4096-row grid in two 2048-row slices (1 MiB L1).");

  Table t(bench::ipc_header());
  std::vector<std::pair<std::string, double>> macs;
  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  {
    const auto r = run(mp, {128, 128, 128}, true);
    t.add_row(bench::ipc_row("serial 128x128x128 (1 core)", r.rep));
  }
  for (kernels::Mmm_dims d :
       {kernels::Mmm_dims{128, 128, 128}, kernels::Mmm_dims{256, 128, 256}}) {
    for (const auto& cfg : {mp, tp}) {
      const auto r = run(cfg, d, false);
      t.add_row(bench::ipc_row(cfg.name + " " + shape(d), r.rep));
      macs.emplace_back(cfg.name + " " + shape(d), r.cmacs_per_cycle);
    }
  }
  // Use-case shape: slice rows on MemPool (L1 capacity), full on TeraPool.
  {
    const auto r = run(mp, {2048, 64, 32}, false);
    t.add_row(bench::ipc_row("mempool 2x(2048x64x32)", r.rep));
    macs.emplace_back("mempool 4096x64x32 (2 slices)", r.cmacs_per_cycle);
  }
  {
    const auto r = run(tp, {4096, 64, 32}, false);
    t.add_row(bench::ipc_row("terapool 4096x64x32", r.rep));
    macs.emplace_back("terapool 4096x64x32", r.cmacs_per_cycle);
  }
  t.print();

  std::printf("\ncomplex MACs per cycle (paper counts SIMD MAC ops; see "
              "EXPERIMENTS.md):\n");
  for (const auto& [name, v] : macs) {
    std::printf("  %-32s %7.1f cMACs/cycle\n", name.c_str(), v);
  }
  return 0;
}
