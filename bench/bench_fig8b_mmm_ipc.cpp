// Fig. 8b: IPC and stall breakdown of the beamforming MMM kernel, plus the
// MACs/cycle figures the paper quotes in the text (145/134 on MemPool and
// 558/487 on TeraPool for the regular/use-case shapes).
#include "bench/bench_util.h"

namespace {

using namespace pp;

runtime::Params mmm(uint32_t m, uint32_t k, uint32_t p, bool serial = false) {
  runtime::Params params;
  params.set("m", m).set("k", k).set("p", p);
  if (serial) params.set("mode", "serial");
  return params;
}

double cmacs_per_cycle(const bench::Measured& r) {
  return static_cast<double>(r.desc.macs) / r.rep.cycles;
}

std::string shape(uint32_t m, uint32_t k, uint32_t p) {
  return std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(p);
}

}  // namespace

int main(int argc, char** argv) {
  using common::Table;
  common::Cli cli(argc, argv);
  bench::banner(
      "[Fig. 8b]", "MMM IPC and stall breakdown",
      "Paper: 0.89 IPC on MemPool / 0.88 on TeraPool at 256x128x256; the\n"
      "irregular 4096x64x32 use-case shape costs a few IPC points; TeraPool\n"
      "shows more instruction stalls (fewer loop iterations per core).\n"
      "MemPool runs the 4096-row grid in two 2048-row slices (1 MiB L1).");
  auto rep = bench::make_report("bench_fig8b_mmm_ipc", "[Fig. 8b]",
                                "MMM IPC and stall breakdown");

  Table t(bench::ipc_header());
  std::vector<std::pair<std::string, double>> macs;
  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  // Adds the table row and the report row; with `macs_name` non-empty the
  // cMACs/cycle figure is recorded under that label too.
  const auto add = [&](const std::string& name,
                       const arch::Cluster_config& cfg,
                       const runtime::Params& params,
                       const std::string& macs_name = "") {
    const auto r = bench::measure_kernel(cfg, "mmm", params);
    t.add_row(bench::ipc_row(name, r.rep));
    auto& row = rep.rows.emplace_back(bench::report_from(name, r, cfg.name));
    if (!macs_name.empty()) {
      macs.emplace_back(macs_name, cmacs_per_cycle(r));
      row.metric("cmacs_per_cycle", cmacs_per_cycle(r), "macs/cycle", true,
                 "higher");
    }
  };

  add("serial 128x128x128 (1 core)", mp, mmm(128, 128, 128, true));
  for (auto [m, k, p] : {std::tuple{128u, 128u, 128u}, {256u, 128u, 256u}}) {
    for (const auto& cfg : {mp, tp}) {
      add(cfg.name + " " + shape(m, k, p), cfg, mmm(m, k, p),
          cfg.name + " " + shape(m, k, p));
    }
  }
  // Use-case shape: slice rows on MemPool (L1 capacity), full on TeraPool.
  add("mempool 2x(2048x64x32)", mp, mmm(2048, 64, 32),
      "mempool 4096x64x32 (2 slices)");
  add("terapool 4096x64x32", tp, mmm(4096, 64, 32), "terapool 4096x64x32");
  t.print();

  std::printf("\ncomplex MACs per cycle (paper counts SIMD MAC ops; see "
              "docs/BENCHMARKS.md):\n");
  for (const auto& [name, v] : macs) {
    std::printf("  %-32s %7.1f cMACs/cycle\n", name.c_str(), v);
  }
  return bench::emit(rep, cli);
}
