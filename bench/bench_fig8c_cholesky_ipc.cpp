// Fig. 8c: IPC and stall breakdown of the Cholesky decomposition kernel:
// serial baselines, batched single-core 4x4 decompositions (4 and 16 per
// core between barriers) and fine-grained mirrored 32x32 couples.
#include "bench/bench_util.h"

namespace {

using namespace pp;

runtime::Params batch(uint32_t per_core) {
  return runtime::Params().set("n", 4u).set("per_core", per_core);
}

runtime::Params serial(uint32_t n, uint32_t reps) {
  return runtime::Params().set("n", n).set("reps", reps);
}

}  // namespace

int main() {
  using common::Table;
  bench::banner(
      "Fig. 8c - Cholesky IPC and stall breakdown",
      "Paper: the staircase structure leaves RAW stalls (mul/div outputs)\n"
      "and synchronization idle time; batching 16 decompositions per core\n"
      "between barriers reaches 0.71 IPC on both clusters.");

  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  Table t(bench::ipc_header());
  t.add_row(bench::ipc_row("serial 4x4 x16 (1 core)",
                           bench::run_kernel(mp, "chol.serial", serial(4, 16))));
  t.add_row(bench::ipc_row("serial 32x32 (1 core)",
                           bench::run_kernel(mp, "chol.serial", serial(32, 1))));
  t.add_row(bench::ipc_row("mempool  4x256 dec 4x4",
                           bench::run_kernel(mp, "chol.batch", batch(4))));
  t.add_row(bench::ipc_row("terapool 4x1024 dec 4x4",
                           bench::run_kernel(tp, "chol.batch", batch(4))));
  t.add_row(bench::ipc_row("mempool  16x256 dec 4x4",
                           bench::run_kernel(mp, "chol.batch", batch(16))));
  t.add_row(bench::ipc_row("terapool 16x1024 dec 4x4",
                           bench::run_kernel(tp, "chol.batch", batch(16))));
  t.add_row(bench::ipc_row(
      "mempool  2x32 dec 32x32",
      bench::run_kernel(mp, "chol.pair", runtime::Params().set("n", 32u))));
  t.add_row(bench::ipc_row(
      "terapool 2x128 dec 32x32",
      bench::run_kernel(tp, "chol.pair", runtime::Params().set("n", 32u))));
  t.print();
  return 0;
}
