// Fig. 8c: IPC and stall breakdown of the Cholesky decomposition kernel:
// serial baselines, batched single-core 4x4 decompositions (4 and 16 per
// core between barriers) and fine-grained mirrored 32x32 couples.
#include "bench/bench_util.h"
#include "kernels/cholesky.h"

namespace {

using namespace pp;

sim::Kernel_report run_batch(const arch::Cluster_config& cfg,
                             uint32_t per_core) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Chol_batch chol(m, alloc, 4, per_core, cfg.n_cores());
  for (uint32_t c = 0; c < cfg.n_cores(); ++c) {
    const auto g = bench::random_spd(4, 50 + c);
    for (uint32_t i = 0; i < per_core; ++i) chol.set_g(c, i, g);
  }
  return chol.run();
}

sim::Kernel_report run_pairs(const arch::Cluster_config& cfg) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  const uint32_t n_pairs = cfg.n_cores() / 8;  // 8 cores per 32x32 couple
  kernels::Chol_pair chol(m, alloc, 32, n_pairs);
  const auto g0 = bench::random_spd(32, 3);
  const auto g1 = bench::random_spd(32, 4);
  for (uint32_t p = 0; p < n_pairs; ++p) {
    chol.set_g(p, 0, g0);
    chol.set_g(p, 1, g1);
  }
  return chol.run();
}

sim::Kernel_report run_serial(const arch::Cluster_config& cfg, uint32_t n,
                              uint32_t reps) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Chol_serial chol(m, alloc, n, reps);
  for (uint32_t r = 0; r < reps; ++r) chol.set_g(r, bench::random_spd(n, r));
  return chol.run();
}

}  // namespace

int main() {
  using common::Table;
  bench::banner(
      "Fig. 8c - Cholesky IPC and stall breakdown",
      "Paper: the staircase structure leaves RAW stalls (mul/div outputs)\n"
      "and synchronization idle time; batching 16 decompositions per core\n"
      "between barriers reaches 0.71 IPC on both clusters.");

  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  Table t(bench::ipc_header());
  t.add_row(bench::ipc_row("serial 4x4 x16 (1 core)", run_serial(mp, 4, 16)));
  t.add_row(bench::ipc_row("serial 32x32 (1 core)", run_serial(mp, 32, 1)));
  t.add_row(bench::ipc_row("mempool  4x256 dec 4x4", run_batch(mp, 4)));
  t.add_row(bench::ipc_row("terapool 4x1024 dec 4x4", run_batch(tp, 4)));
  t.add_row(bench::ipc_row("mempool  16x256 dec 4x4", run_batch(mp, 16)));
  t.add_row(bench::ipc_row("terapool 16x1024 dec 4x4", run_batch(tp, 16)));
  t.add_row(bench::ipc_row("mempool  2x32 dec 32x32", run_pairs(mp)));
  t.add_row(bench::ipc_row("terapool 2x128 dec 32x32", run_pairs(tp)));
  t.print();
  return 0;
}
