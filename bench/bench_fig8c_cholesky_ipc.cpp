// Fig. 8c: IPC and stall breakdown of the Cholesky decomposition kernel:
// serial baselines, batched single-core 4x4 decompositions (4 and 16 per
// core between barriers) and fine-grained mirrored 32x32 couples.
#include "bench/bench_util.h"

namespace {

using namespace pp;

runtime::Params batch(uint32_t per_core) {
  return runtime::Params().set("n", 4u).set("per_core", per_core);
}

runtime::Params serial(uint32_t n, uint32_t reps) {
  return runtime::Params().set("n", n).set("reps", reps);
}

}  // namespace

int main(int argc, char** argv) {
  using common::Table;
  common::Cli cli(argc, argv);
  bench::banner(
      "[Fig. 8c]", "Cholesky IPC and stall breakdown",
      "Paper: the staircase structure leaves RAW stalls (mul/div outputs)\n"
      "and synchronization idle time; batching 16 decompositions per core\n"
      "between barriers reaches 0.71 IPC on both clusters.");
  auto rep = bench::make_report("bench_fig8c_cholesky_ipc", "[Fig. 8c]",
                                "Cholesky IPC and stall breakdown");

  const auto mp = arch::Cluster_config::mempool();
  const auto tp = arch::Cluster_config::terapool();

  Table t(bench::ipc_header());
  const auto add = [&](const std::string& name,
                       const arch::Cluster_config& cfg, const char* kernel,
                       const runtime::Params& params) {
    const auto r = bench::measure_kernel(cfg, kernel, params);
    t.add_row(bench::ipc_row(name, r.rep));
    rep.rows.push_back(bench::report_from(name, r, cfg.name));
  };

  add("serial 4x4 x16 (1 core)", mp, "chol.serial", serial(4, 16));
  add("serial 32x32 (1 core)", mp, "chol.serial", serial(32, 1));
  add("mempool  4x256 dec 4x4", mp, "chol.batch", batch(4));
  add("terapool 4x1024 dec 4x4", tp, "chol.batch", batch(4));
  add("mempool  16x256 dec 4x4", mp, "chol.batch", batch(16));
  add("terapool 16x1024 dec 4x4", tp, "chol.batch", batch(16));
  add("mempool  2x32 dec 32x32", mp, "chol.pair",
      runtime::Params().set("n", 32u));
  add("terapool 2x128 dec 32x32", tp, "chol.pair",
      runtime::Params().set("n", 32u));
  t.print();
  return bench::emit(rep, cli);
}
