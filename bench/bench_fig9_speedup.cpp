// Fig. 9a/9b: speedup of every parallel kernel configuration with respect to
// a serial single-core execution of the same work, with the theoretical
// limit (number of cores used) and total execution cycles.
//
// Paper headline numbers: MemPool 211 / 225 / 158 and TeraPool 762 / 880 /
// 722 for FFT / MMM / Cholesky at utilizations 0.81/0.89/0.71 and
// 0.74/0.88/0.71.
#include "bench/bench_util.h"
#include "common/cli.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/mmm.h"

namespace {

using namespace pp;
using common::Table;

struct Row {
  std::string name;
  uint64_t serial_cycles;   // same work, one core
  sim::Kernel_report rep;   // parallel run
  uint32_t limit;           // cores used (theoretical speedup bound)
};

void add(Table& t, const Row& r) {
  t.add_row({r.name, Table::fmt(r.rep.cycles),
             Table::fmt(static_cast<double>(r.serial_cycles) / r.rep.cycles, 1),
             Table::fmt(static_cast<uint64_t>(r.limit)),
             Table::fmt(r.rep.ipc(), 2)});
}

uint64_t serial_fft(const arch::Cluster_config& cfg, uint32_t n, uint32_t count) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Fft_serial fft(m, alloc, n, 1);
  fft.set_input(0, bench::random_signal(n, n));
  return fft.run().cycles * count;
}

Row fft_row(const arch::Cluster_config& cfg, uint32_t n, uint32_t n_inst,
            uint32_t reps, const std::string& name) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Fft_parallel fft(m, alloc, n, n_inst, reps);
  for (uint32_t i = 0; i < n_inst; ++i) {
    for (uint32_t r = 0; r < reps; ++r) {
      fft.set_input(i, r, bench::random_signal(n, i * 31 + r));
    }
  }
  return {name, serial_fft(cfg, n, n_inst * reps), fft.run(), fft.cores_used()};
}

Row mmm_row(const arch::Cluster_config& cfg, kernels::Mmm_dims d,
            uint32_t slices, const std::string& name) {
  auto make = [&](bool serial) {
    sim::Machine m(cfg);
    arch::L1_alloc alloc(m.config());
    kernels::Mmm mmm(m, alloc, d);
    mmm.set_a(bench::random_signal(size_t{d.m} * d.k, 1));
    mmm.set_b(bench::random_signal(size_t{d.k} * d.p, 2));
    return serial ? mmm.run_serial() : mmm.run_parallel();
  };
  const auto rs = make(true);
  auto rp = make(false);
  // Sliced runs repeat the same kernel; scale all counters coherently.
  rp.cycles *= slices;
  rp.instrs *= slices;
  for (auto& s : rp.stall) s *= slices;
  return {name, rs.cycles * slices, rp, cfg.n_cores()};
}

Row chol_batch_row(const arch::Cluster_config& cfg, uint32_t per_core,
                   const std::string& name) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  kernels::Chol_batch chol(m, alloc, 4, per_core, cfg.n_cores());
  for (uint32_t c = 0; c < cfg.n_cores(); ++c) {
    const auto g = bench::random_spd(4, c);
    for (uint32_t i = 0; i < per_core; ++i) chol.set_g(c, i, g);
  }
  // Serial: the same number of 4x4 decompositions on one core.
  sim::Machine m2(cfg);
  arch::L1_alloc alloc2(m2.config());
  kernels::Chol_serial s(m2, alloc2, 4, 16);
  for (uint32_t i = 0; i < 16; ++i) s.set_g(i, bench::random_spd(4, i));
  const uint64_t serial =
      s.run().cycles * (static_cast<uint64_t>(per_core) * cfg.n_cores()) / 16;
  return {name, serial, chol.run(), cfg.n_cores()};
}

Row chol_pair_row(const arch::Cluster_config& cfg, const std::string& name) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  const uint32_t n_pairs = cfg.n_cores() / 8;
  kernels::Chol_pair chol(m, alloc, 32, n_pairs);
  for (uint32_t p = 0; p < n_pairs; ++p) {
    chol.set_g(p, 0, bench::random_spd(32, 2 * p));
    chol.set_g(p, 1, bench::random_spd(32, 2 * p + 1));
  }
  sim::Machine m2(cfg);
  arch::L1_alloc alloc2(m2.config());
  kernels::Chol_serial s(m2, alloc2, 32, 1);
  s.set_g(0, bench::random_spd(32, 9));
  const uint64_t serial = s.run().cycles * 2ull * n_pairs;
  return {name, serial, chol.run(), cfg.n_cores()};
}

void run_cluster(const arch::Cluster_config& cfg) {
  std::printf("--- %s (%u cores) ---\n", cfg.name.c_str(), cfg.n_cores());
  Table t({"configuration", "cycles", "speedup", "limit", "IPC"});
  const uint32_t gangs256 = cfg.n_cores() / 16;
  const uint32_t gangs4096 = cfg.n_cores() / 256;

  add(t, fft_row(cfg, 256, gangs256, 1,
                 std::to_string(gangs256) + " FFTs 256-pt"));
  add(t, fft_row(cfg, 4096, gangs4096, 1,
                 std::to_string(gangs4096) + " FFT(s) 4096-pt"));
  add(t, fft_row(cfg, 4096, gangs4096, 16,
                 std::to_string(gangs4096) + "x16 FFTs 4096-pt"));

  add(t, mmm_row(cfg, {128, 128, 128}, 1, "MMM 128x128x128"));
  add(t, mmm_row(cfg, {256, 128, 256}, 1, "MMM 256x128x256"));
  if (cfg.n_cores() >= 1024) {
    add(t, mmm_row(cfg, {4096, 64, 32}, 1, "MMM 4096x64x32"));
  } else {
    add(t, mmm_row(cfg, {2048, 64, 32}, 2, "MMM 4096x64x32 (2 slices)"));
  }

  add(t, chol_batch_row(cfg, 4, "4x" + std::to_string(cfg.n_cores()) +
                                    " Chol 4x4"));
  add(t, chol_batch_row(cfg, 16, "16x" + std::to_string(cfg.n_cores()) +
                                     " Chol 4x4"));
  add(t, chol_pair_row(cfg, "2x" + std::to_string(cfg.n_cores() / 8) +
                                " Chol 32x32"));
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  common::Cli cli(argc, argv);
  bench::banner("Fig. 9a/9b - kernel speedups vs serial single-core execution",
                "Paper: MemPool 211/225/158, TeraPool 762/880/722 (batched "
                "configurations);\ndotted line = number of cores used.");
  const std::string arch = cli.get("--arch", "both");
  if (arch == "mempool" || arch == "both") {
    run_cluster(arch::Cluster_config::mempool());
  }
  if (arch == "terapool" || arch == "both") {
    run_cluster(arch::Cluster_config::terapool());
  }
  return 0;
}
