// Fig. 9a/9b: speedup of every parallel kernel configuration with respect to
// a serial single-core execution of the same work, with the theoretical
// limit (number of cores used) and total execution cycles.
//
// Paper headline numbers: MemPool 211 / 225 / 158 and TeraPool 762 / 880 /
// 722 for FFT / MMM / Cholesky at utilizations 0.81/0.89/0.71 and
// 0.74/0.88/0.71.
#include "bench/bench_util.h"

namespace {

using namespace pp;
using common::Table;
using runtime::Params;

struct Row {
  std::string name;
  uint64_t serial_cycles;   // same work, one core
  sim::Kernel_report rep;   // parallel run
  uint32_t limit;           // cores used (theoretical speedup bound)
  std::string kernel;       // registry key of the parallel run
  std::string params;       // resolved configuration
};

void add(Table& t, bench::Report& rep, const arch::Cluster_config& cfg,
         const Row& r) {
  const double speedup = static_cast<double>(r.serial_cycles) / r.rep.cycles;
  t.add_row({r.name, Table::fmt(r.rep.cycles), Table::fmt(speedup, 1),
             Table::fmt(static_cast<uint64_t>(r.limit)),
             Table::fmt(r.rep.ipc(), 2)});
  auto& row = rep.add_row(cfg.name + " " + r.name);
  row.cluster = cfg.name;
  row.kernel = r.kernel;
  row.params = r.params;
  row.cores = r.limit;
  row.metric("cycles", static_cast<double>(r.rep.cycles), "cycles");
  row.metric("speedup", speedup, "x", true, "higher");
  row.metric("ipc", r.rep.ipc(), "ipc", true, "higher");
}

Row fft_row(const arch::Cluster_config& cfg, uint32_t n, uint32_t n_inst,
            uint32_t reps, const std::string& name) {
  const auto par = bench::measure_kernel(
      cfg, "fft.parallel",
      Params().set("n", n).set("inst", n_inst).set("reps", reps));
  const auto ser = bench::run_kernel(cfg, "fft.serial", Params().set("n", n));
  return {name,          ser.cycles * n_inst * reps,
          par.rep,       par.desc.cores,
          par.desc.name, par.desc.params.describe()};
}

Row mmm_row(const arch::Cluster_config& cfg, uint32_t m, uint32_t k,
            uint32_t p, uint32_t slices, const std::string& name) {
  const Params dims = Params().set("m", m).set("k", k).set("p", p);
  const auto rs =
      bench::run_kernel(cfg, "mmm", Params(dims).set("mode", "serial"));
  auto rp = bench::measure_kernel(cfg, "mmm", dims);
  // Sliced runs repeat the same kernel; scale all counters coherently.
  rp.rep.cycles *= slices;
  rp.rep.instrs *= slices;
  for (auto& s : rp.rep.stall) s *= slices;
  return {name,         rs.cycles * slices,
          rp.rep,       cfg.n_cores(),
          rp.desc.name, rp.desc.params.describe()};
}

Row chol_batch_row(const arch::Cluster_config& cfg, uint32_t per_core,
                   const std::string& name) {
  const auto par = bench::measure_kernel(
      cfg, "chol.batch", Params().set("n", 4u).set("per_core", per_core));
  // Serial: the same number of 4x4 decompositions on one core.
  const auto ser = bench::run_kernel(cfg, "chol.serial",
                                     Params().set("n", 4u).set("reps", 16u));
  const uint64_t serial =
      ser.cycles * (static_cast<uint64_t>(per_core) * cfg.n_cores()) / 16;
  return {name,          serial,
          par.rep,       cfg.n_cores(),
          par.desc.name, par.desc.params.describe()};
}

Row chol_pair_row(const arch::Cluster_config& cfg, const std::string& name) {
  const uint32_t n_pairs = cfg.n_cores() / 8;
  const auto par = bench::measure_kernel(
      cfg, "chol.pair", Params().set("n", 32u).set("pairs", n_pairs));
  const auto ser =
      bench::run_kernel(cfg, "chol.serial", Params().set("n", 32u));
  return {name,          ser.cycles * 2ull * n_pairs,
          par.rep,       cfg.n_cores(),
          par.desc.name, par.desc.params.describe()};
}

void run_cluster(const arch::Cluster_config& cfg, bench::Report& rep) {
  std::printf("--- %s (%u cores) ---\n", cfg.name.c_str(), cfg.n_cores());
  Table t({"configuration", "cycles", "speedup", "limit", "IPC"});
  const uint32_t gangs256 = cfg.n_cores() / 16;
  const uint32_t gangs4096 = cfg.n_cores() / 256;

  add(t, rep, cfg, fft_row(cfg, 256, gangs256, 1,
                           std::to_string(gangs256) + " FFTs 256-pt"));
  add(t, rep, cfg, fft_row(cfg, 4096, gangs4096, 1,
                           std::to_string(gangs4096) + " FFT(s) 4096-pt"));
  add(t, rep, cfg, fft_row(cfg, 4096, gangs4096, 16,
                           std::to_string(gangs4096) + "x16 FFTs 4096-pt"));

  add(t, rep, cfg, mmm_row(cfg, 128, 128, 128, 1, "MMM 128x128x128"));
  add(t, rep, cfg, mmm_row(cfg, 256, 128, 256, 1, "MMM 256x128x256"));
  if (cfg.n_cores() >= 1024) {
    add(t, rep, cfg, mmm_row(cfg, 4096, 64, 32, 1, "MMM 4096x64x32"));
  } else {
    add(t, rep, cfg, mmm_row(cfg, 2048, 64, 32, 2, "MMM 4096x64x32 (2 slices)"));
  }

  add(t, rep, cfg, chol_batch_row(cfg, 4, "4x" + std::to_string(cfg.n_cores()) +
                                              " Chol 4x4"));
  add(t, rep, cfg,
      chol_batch_row(cfg, 16, "16x" + std::to_string(cfg.n_cores()) +
                                  " Chol 4x4"));
  add(t, rep, cfg, chol_pair_row(cfg, "2x" + std::to_string(cfg.n_cores() / 8) +
                                          " Chol 32x32"));
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  common::Cli cli(argc, argv);
  bench::banner("[Fig. 9a/9b]",
                "kernel speedups vs serial single-core execution",
                "Paper: MemPool 211/225/158, TeraPool 762/880/722 (batched "
                "configurations);\ndotted line = number of cores used.");
  auto rep = bench::make_report("bench_fig9_speedup", "[Fig. 9a/9b]",
                                "kernel speedups vs serial single-core "
                                "execution");
  const std::string arch = cli.get("--arch", "both");
  rep.add_meta("arch", arch);
  if (arch == "mempool" || arch == "both") {
    run_cluster(arch::Cluster_config::mempool(), rep);
  }
  if (arch == "terapool" || arch == "both") {
    run_cluster(arch::Cluster_config::terapool(), rep);
  }
  return bench::emit(rep, cli);
}
