// Fig. 9c: the full PUSCH use case on TeraPool (and MemPool): cycles per
// kernel with per-slot repetition counts, percentage breakdown, the total
// execution time at 1 GHz, and the overall speedup vs. one core.
//
// Paper (TeraPool): ~60% FFT / ~30% MMM / ~10% Cholesky with per-symbol
// Cholesky scheduling (speedup 848), improving to 62/31/7 and speedup 871
// when 4 data symbols of decompositions are batched; total 785 kcycles =
// 0.785 ms at 1 GHz vs. the 0.5 ms slot budget.
#include "bench/bench_util.h"
#include "common/cli.h"
#include "pusch/use_case_rollup.h"

namespace {

using namespace pp;
using common::Table;

void run(const arch::Cluster_config& cluster, bool batch, bool ext,
         uint32_t sim_shards, bench::Report& rep) {
  pusch::Chain_config cfg;
  cfg.cluster = cluster;
  cfg.batch_cholesky = batch;
  cfg.include_estimation = ext;
  cfg.sim_shards = sim_shards;
  const auto res = pusch::run_use_case(cfg);

  const std::string config_name =
      cluster.name + (batch ? " chol-batched" : " chol-per-symbol");
  std::printf("--- %s, cholesky %s ---\n", cluster.name.c_str(),
              batch ? "batched over data symbols" : "per data symbol");
  Table t({"stage", "cycles/instance", "instances", "total cycles", "share",
           "IPC"});
  for (size_t i = 0; i < res.stages.size(); ++i) {
    const auto& st = res.stages[i];
    const bool core3 = i < 3;
    const double share =
        static_cast<double>(st.total_cycles()) / res.parallel_cycles;
    t.add_row({st.name, Table::fmt(st.rep.cycles),
               Table::fmt(static_cast<uint64_t>(st.times)),
               Table::fmt(st.total_cycles()),
               core3 ? Table::pct(share) : std::string("(extra)"),
               Table::fmt(st.rep.ipc(), 2)});
    auto& row = rep.add_row(config_name + " " + st.name);
    row.cluster = cluster.name;
    row.metric("cycles_per_instance", static_cast<double>(st.rep.cycles),
               "cycles");
    row.metric("instances", static_cast<double>(st.times), "count", true,
               "exact");
    row.metric("total_cycles", static_cast<double>(st.total_cycles()),
               "cycles");
    if (core3) row.metric("share", share, "fraction", true, "info");
    row.metric("ipc", st.rep.ipc(), "ipc", true, "higher");
  }
  t.print();
  std::printf(
      "total %lu cycles = %.3f ms @ 1 GHz | serial %lu cycles | speedup %.0f\n\n",
      static_cast<unsigned long>(res.parallel_cycles), res.ms_at_1ghz(),
      static_cast<unsigned long>(res.serial_cycles), res.speedup());
  auto& total = rep.add_row(config_name + " total");
  total.cluster = cluster.name;
  total.metric("total_cycles", static_cast<double>(res.parallel_cycles),
               "cycles");
  total.metric("ms_at_1ghz", res.ms_at_1ghz(), "ms");
  total.metric("serial_cycles", static_cast<double>(res.serial_cycles),
               "cycles");
  total.metric("speedup", res.speedup(), "x", true, "higher");
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  bench::banner("[Fig. 9c]", "PUSCH use-case roll-up",
                "64x 4096-pt FFT + 4096x64x32 MMM per symbol (x14), 4096 4x4 "
                "Cholesky per data symbol (x12).\nPaper totals on TeraPool: "
                "785 kcycles, 0.785 ms @ 1 GHz, speedup 848 -> 871 with "
                "batched Cholesky.");
  auto rep = bench::make_report("bench_fig9c_usecase", "[Fig. 9c]",
                                "PUSCH use-case roll-up");

  const bool ext = cli.has("--ext");
  // --sim-shards N: measure the per-stage machines on N host threads; every
  // N reports the same cycles (docs/DETERMINISM.md §5), so the knob stays
  // out of the baseline metadata.
  const uint32_t sim_shards = cli.get_u32("--sim-shards", 1);
  rep.add_meta("include_estimation", ext ? "1" : "0");
  run(arch::Cluster_config::terapool(), false, ext, sim_shards, rep);
  run(arch::Cluster_config::terapool(), true, ext, sim_shards, rep);
  if (cli.get("--arch", "both") == "both") {
    run(arch::Cluster_config::mempool(), true, ext, sim_shards, rep);
  }
  return bench::emit(rep, cli);
}
