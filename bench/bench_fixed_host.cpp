// Fixed-point host backend wall-clock: scalar vs. SIMD vs. the
// double-precision reference on the same slot.
//
// Times the full receive chain through three host backends - the Q15
// subsystem (src/fixed/) with its vector paths forced off, the same with
// SIMD on (AVX2/NEON where the host supports it), and Reference_backend -
// and reports the SIMD and fixed-vs-double speedups.  The scalar and SIMD
// runs are checked bit-identical on every invocation (the contract of
// docs/DETERMINISM.md section 7); sim parity is covered by
// tests/test_backend_fixed.cpp, not re-run here (the simulator is orders of
// magnitude slower).
//
//   ./bench/bench_fixed_host                       # 1 intra-slot worker
//   ./bench/bench_fixed_host --workers 4 --fft 4096 --symb 14
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "fixed/simd.h"
#include "runtime/backend_fixed.h"
#include "runtime/presets.h"

namespace {

using namespace pp;
using common::Table;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Three timed repetitions of fn() (the first may also warm lazy tables);
// the table reports the min, the JSON report keeps min/median/stdev.
template <typename Fn>
std::vector<double> time_samples(Fn&& fn) {
  std::vector<double> samples;
  for (int i = 0; i < 3; ++i) {
    const double t0 = now_seconds();
    fn();
    samples.push_back(now_seconds() - t0);
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const uint32_t workers = std::max(1u, cli.get_u32("--workers", 1));
  const uint32_t fft_size = cli.get_u32("--fft", 1024);
  const uint32_t n_symb = cli.get_u32("--symb", 8);

  bench::banner("[host]", "fixed-point host backend wall-clock",
                "Q15 scalar vs. SIMD vs. double reference on one slot; "
                "scalar/SIMD checked bit-identical on every run");
  std::printf("host: %u hardware threads, SIMD path: %s\n\n",
              std::thread::hardware_concurrency(), fixed::simd_isa());

  // A heavy slot so the kernel loops dominate the marshaling.
  phy::Uplink_config cfg;
  cfg.n_sc = fft_size;
  cfg.fft_size = fft_size;
  cfg.n_rx = 8;
  cfg.n_beams = 8;
  cfg.n_ue = 4;
  cfg.n_symb = n_symb;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qam64;
  cfg.seed = 7;
  const phy::Uplink_scenario sc(cfg);
  const runtime::Pipeline pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  runtime::Fixed_backend scalar(workers, false);
  runtime::Fixed_backend simd(workers, true);
  const auto reference = runtime::make_backend("reference");

  runtime::Slot_result res_scalar, res_simd, res_ref;
  const auto t_scalar =
      time_samples([&] { res_scalar = pipeline.execute(sc, scalar); });
  const auto t_simd =
      time_samples([&] { res_simd = pipeline.execute(sc, simd); });
  const auto t_ref =
      time_samples([&] { res_ref = pipeline.execute(sc, *reference); });

  const bool parity = res_scalar.bits == res_simd.bits &&
                      res_scalar.evm == res_simd.evm &&
                      res_scalar.ber == res_simd.ber &&
                      res_scalar.sigma2_hat == res_simd.sigma2_hat;
  if (!parity) {
    std::fprintf(stderr, "fixed scalar/SIMD results not bit-identical\n");
    return 1;
  }

  const auto min3 = [](const std::vector<double>& s) {
    return *std::min_element(s.begin(), s.end());
  };
  const double s_scalar = min3(t_scalar);
  const double s_simd = min3(t_simd);
  const double s_ref = min3(t_ref);

  Table t({"backend", "slot ms", "vs fixed-scalar"});
  t.add_row({"fixed (scalar)", Table::fmt(s_scalar * 1e3, 2),
             Table::fmt(1.0, 2)});
  t.add_row({std::string("fixed (") + fixed::simd_isa() + ")",
             Table::fmt(s_simd * 1e3, 2), Table::fmt(s_scalar / s_simd, 2)});
  t.add_row({"reference (double)", Table::fmt(s_ref * 1e3, 2),
             Table::fmt(s_scalar / s_ref, 2)});
  std::fputs(t.str().c_str(), stdout);
  std::printf("\nscalar and %s runs are bit-identical (EVM %.4f%%, BER "
              "%.2e).\n",
              fixed::simd_isa(), 100 * res_simd.evm, res_simd.ber);

  // ---- steady-state serving loop: zero allocations after warm-up --------
  // Repeated execute_into() on the persistent SIMD backend with a reused
  // result: the warm-up passes grow the slot workspaces, after which the
  // measured passes must never touch the heap.  PP_COUNT_ALLOCS builds turn
  // that into a hard gate; other builds still record the (constant-0)
  // metric plus the steady wall-clock.
  constexpr uint64_t kSteadySlots = 8;
  runtime::Slot_result steady_res;
  double steady_s = 0.0;
  const double apslot = bench::allocs_per_slot(
      kSteadySlots,
      [&] {
        for (int i = 0; i < 2; ++i) {
          pipeline.execute_into(sc, simd, steady_res);
        }
      },
      [&] {
        const double t0 = now_seconds();
        for (uint64_t i = 0; i < kSteadySlots; ++i) {
          pipeline.execute_into(sc, simd, steady_res);
        }
        steady_s = (now_seconds() - t0) / kSteadySlots;
      });
  const int alloc_gate = bench::gate_steady_allocs("bench_fixed_host", apslot);
  std::printf("steady state (fixed %s): %.2f ms/slot, %g allocs/slot, "
              "%zu KiB workspace\n",
              fixed::simd_isa(), steady_s * 1e3, apslot,
              simd.workspace_bytes() / 1024);

  auto rep = bench::make_report("bench_fixed_host", "[host]",
                                "fixed-point host backend wall-clock");
  rep.add_meta("hardware_threads",
               std::to_string(std::thread::hardware_concurrency()));
  rep.add_meta("simd_isa", fixed::simd_isa());
  rep.add_meta("workers", std::to_string(workers));
  rep.add_row("fixed_scalar").metric(bench::wall_metric("wall", t_scalar));
  auto& row_simd = rep.add_row("fixed_simd");
  row_simd.metric(bench::wall_metric("wall", t_simd));
  row_simd.metric("speedup_vs_scalar", s_scalar / s_simd, "x", false, "info");
  auto& row_ref = rep.add_row("reference");
  row_ref.metric(bench::wall_metric("wall", t_ref));
  row_ref.metric("fixed_scalar_vs_reference", s_scalar / s_ref, "x", false,
                 "info");
  rep.add_row("parity").metric("scalar_simd_bit_identical", 1.0, "bool", true,
                               "higher");
  auto& row_steady = rep.add_row("steady");
  row_steady.metric("allocs_per_slot", apslot, "allocs/slot", true, "exact");
  row_steady.metric("steady_slot_ms", steady_s * 1e3, "ms", false, "info");
  return bench::emit(rep, cli) | alloc_gate;
}
