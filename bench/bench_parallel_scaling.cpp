// Intra-slot host-parallel scaling: per-stage and whole-slot speedup of
// runtime::Parallel_backend vs. worker count, echoing the paper's Fig. 9
// (kernel speedups 9a/9b, full use case 9c) on the double-precision host
// path instead of the simulated cluster.
//
// Per-stage rows time the same tiled sub-kernels the backend dispatches
// (ref::fft_stage_blocks fan-out, ref::matmul_rows, ref::gram_rows,
// per-UE-batch ref::lmmse) on a common::Thread_pool; the slot row runs the
// full receive chain through the backend.  Every row of every run is
// checked bit-identical to the first --workers entry's run before its
// speedup is reported - the determinism contract of docs/DETERMINISM.md is
// re-verified on every invocation, not just in the test suite.
//
//   ./bench/bench_parallel_scaling                  # workers 1,2,4,8
//   ./bench/bench_parallel_scaling --workers 1,2,16 --fft 4096 --batches 2048
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "baseline/reference.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "runtime/backend_parallel.h"
#include "runtime/presets.h"

namespace {

using namespace pp;
using common::Table;
using common::Thread_pool;
using ref::cd;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Three timed repetitions of fn() (the first may also warm lazy tables);
// the table reports the min, the JSON report keeps min/median/stdev.
template <typename Fn>
std::vector<double> time_samples(Fn&& fn) {
  std::vector<double> samples;
  for (int i = 0; i < 3; ++i) {
    const double t0 = now_seconds();
    fn();
    samples.push_back(now_seconds() - t0);
  }
  return samples;
}

std::vector<cd> random_cd(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<cd> x(n);
  for (auto& v : x) v = rng.cnormal();
  return x;
}

struct Stage_timing {
  std::string name;
  std::vector<double> seconds;               // min, one entry per worker count
  std::vector<std::vector<double>> samples;  // raw repetitions per entry

  void push(std::vector<double> s) {
    seconds.push_back(*std::min_element(s.begin(), s.end()));
    samples.push_back(std::move(s));
  }
};

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const std::vector<uint32_t> worker_counts =
      cli.get_u32_list("--workers", "1,2,4,8");
  const uint32_t fft_size = cli.get_u32("--fft", 4096);
  const uint32_t n_ffts = cli.get_u32("--ffts", 32);
  const uint32_t mmm_rows = cli.get_u32("--rows", 4096);
  const uint32_t batches = cli.get_u32("--batches", 4096);

  bench::banner("[Fig. 9 host]", "intra-slot host-parallel scaling",
                "per-stage + whole-slot speedup of the 'parallel' backend; "
                "every row of every run is checked bit-identical to the "
                "first --workers entry's run");
  std::printf("host: %u hardware threads\n\n",
              std::thread::hardware_concurrency());

  // ---- per-stage tiles (Fig. 9a/9b analogue) ------------------------------
  const uint32_t n_rx = 64, n_beams = 32, n_ue = 4;
  const auto fft_in = random_cd(fft_size, 1);
  const auto mf_a = random_cd(static_cast<size_t>(mmm_rows) * n_rx, 2);
  const auto mf_b = random_cd(static_cast<size_t>(n_rx) * n_beams, 3);
  const auto gram_a = random_cd(static_cast<size_t>(mmm_rows) * n_rx, 4);
  const auto chol_h = random_cd(static_cast<size_t>(n_beams) * n_ue, 5);
  const auto chol_y = random_cd(n_beams, 6);

  std::vector<Stage_timing> rows(5);
  rows[0].name = "FFT fan-out (" + std::to_string(n_ffts) + " x " +
                 std::to_string(fft_size) + ")";
  rows[1].name = "matched filter MMM (" + std::to_string(mmm_rows) + " x " +
                 std::to_string(n_rx) + " x " + std::to_string(n_beams) + ")";
  rows[2].name = "Gram rows (" + std::to_string(mmm_rows) + " x " +
                 std::to_string(n_rx) + ")";
  rows[3].name = "Cholesky+solve batches (" + std::to_string(batches) + " x " +
                 std::to_string(n_beams) + "x" + std::to_string(n_ue) + ")";
  rows[4].name = "full slot (parallel backend)";

  // Whole-slot scenario: a heavy config so the parallel regions dominate.
  phy::Uplink_config slot_cfg;
  slot_cfg.n_sc = 1024;
  slot_cfg.fft_size = 1024;
  slot_cfg.n_rx = 8;
  slot_cfg.n_beams = 8;
  slot_cfg.n_ue = 4;
  slot_cfg.n_symb = 8;
  slot_cfg.n_pilot_symb = 2;
  slot_cfg.qam = phy::Qam::qam64;
  slot_cfg.seed = 7;
  const phy::Uplink_scenario slot_sc(slot_cfg);
  const runtime::Pipeline pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  runtime::Slot_result slot_serial;
  std::vector<std::vector<cd>> fft_serial;
  std::vector<cd> mf_serial, gram_serial;
  std::vector<std::vector<cd>> chol_serial;

  // Baseline for the "bit-identical" checks and the speedup column: the
  // first entry of --workers (1 by default).
  const uint32_t base_workers = std::max(1u, worker_counts.at(0));

  for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
    const uint32_t w = std::max(1u, worker_counts[wi]);
    Thread_pool pool(w);

    // FFT fan-out over n_ffts independent transforms.
    std::vector<std::vector<cd>> fft_out(n_ffts);
    rows[0].push(time_samples([&] {
      pool.parallel_for(n_ffts,
                        [&](uint64_t i) { fft_out[i] = ref::fft(fft_in); });
    }));
    if (wi == 0) {
      fft_serial = fft_out;
    } else if (fft_out != fft_serial) {
      std::fprintf(stderr, "FFT fan-out not bit-identical at %u workers\n", w);
      return 1;
    }

    // Matched-filter MMM, row-block tiled.
    std::vector<cd> mf_c(static_cast<size_t>(mmm_rows) * n_beams);
    rows[1].push(time_samples([&] {
      pool.run([&](uint32_t id) {
        const auto [first, last] = Thread_pool::slice(mmm_rows, id, w);
        ref::matmul_rows(mf_a, mf_b, mf_c, mmm_rows, n_rx, n_beams, first,
                         last);
      });
    }));
    if (wi == 0) {
      mf_serial = mf_c;
    } else if (mf_c != mf_serial) {
      std::fprintf(stderr, "MMM rows not bit-identical at %u workers\n", w);
      return 1;
    }

    // Gram rows (A^H A of a tall matrix), row-block tiled.
    std::vector<cd> gram_g(static_cast<size_t>(n_rx) * n_rx);
    rows[2].push(time_samples([&] {
      pool.run([&](uint32_t id) {
        const auto [first, last] = Thread_pool::slice(n_rx, id, w);
        ref::gram_rows(gram_a, gram_g, mmm_rows, n_rx, first, last);
      });
    }));
    if (wi == 0) {
      gram_serial = gram_g;
    } else if (gram_g != gram_serial) {
      std::fprintf(stderr, "Gram rows not bit-identical at %u workers\n", w);
      return 1;
    }

    // Per-UE-batch Cholesky + substitutions, batches sliced across workers.
    std::vector<std::vector<cd>> xs(batches);
    rows[3].push(time_samples([&] {
      pool.parallel_for(batches, [&](uint64_t i) {
        xs[i] = ref::lmmse(chol_h, chol_y, n_beams, n_ue, 1e-3);
      });
    }));
    if (wi == 0) {
      chol_serial = xs;
    } else if (xs != chol_serial) {
      std::fprintf(stderr, "Cholesky batches not bit-identical at %u workers\n",
                   w);
      return 1;
    }

    // Full slot through the backend, parity-checked against 1 worker.
    runtime::Parallel_backend backend(w);
    runtime::Slot_result slot;
    rows[4].push(
        time_samples([&] { slot = pipeline.execute(slot_sc, backend); }));
    if (wi == 0) {
      slot_serial = slot;
    } else if (slot.bits != slot_serial.bits || slot.evm != slot_serial.evm ||
               slot.ber != slot_serial.ber ||
               slot.sigma2_hat != slot_serial.sigma2_hat) {
      std::fprintf(stderr, "slot result not bit-identical at %u workers\n", w);
      return 1;
    }
  }

  std::vector<std::string> header = {
      "stage", std::to_string(base_workers) + "w ms"};
  for (const uint32_t w : worker_counts) {
    header.push_back("x" + std::to_string(w) + "w");
  }
  Table t(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.name,
                                      Table::fmt(row.seconds[0] * 1e3, 2)};
    for (const double s : row.seconds) {
      cells.push_back(Table::fmt(row.seconds[0] / s, 2));
    }
    t.add_row(cells);
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf(
      "\nspeedups are vs. this binary's own %u-worker run; all parallel "
      "results verified bit-identical to it.\n",
      base_workers);

  // JSON report: all wall-clock (host-dependent, min/median/stdev over the
  // 3 repetitions); the only deterministic metric is the parity check.
  auto rep = bench::make_report("bench_parallel_scaling", "[Fig. 9 host]",
                                "intra-slot host-parallel scaling");
  rep.add_meta("hardware_threads",
               std::to_string(std::thread::hardware_concurrency()));
  rep.add_meta("base_workers", std::to_string(base_workers));
  for (const auto& row : rows) {
    for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
      auto& r = rep.add_row(row.name + " @" +
                            std::to_string(worker_counts[wi]) + "w");
      r.metric(bench::wall_metric("wall", row.samples[wi]));
      r.metric("speedup_vs_base", row.seconds[0] / row.seconds[wi], "x",
               false, "info");
    }
  }
  rep.add_row("parity").metric("bit_identical", 1.0, "bool", true, "higher");
  return bench::emit(rep, cli);
}
