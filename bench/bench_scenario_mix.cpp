// Scenario mixes: fading channel profiles + the closed HARQ loop under
// sharded serving with admission control.
//
// A fixed-seed three-cell Traffic_source spans the channel-profile axis -
// one flat block-fading cell, one TDL-A and one TDL-C cell with Doppler
// evolution - across mixed numerology / FFT size / UE count / QAM order.
// The stream is served sharded (2 shards, drop overload) with the HARQ
// loop closed: slots decoding above the BER threshold re-enter the stream
// as chase-combined retransmissions (at most --max-harq per slot), making
// the offered load endogenous.  The default operating point is tuned so
// that retransmissions, recoveries AND exhaustions all occur - the metrics
// gate the whole loop, not just its happy path.
//
// The run repeats at a different worker count and the aggregate surfaces
// (per-cell BER, admission counters, deadline misses, latency histograms,
// HARQ schedule/verdicts) are re-checked bit-identical -
// Schedule_result::deterministic_equal, the scheduler's contract extended
// over the HARQ fields (docs/DETERMINISM.md).
//
//   ./bench/bench_scenario_mix [--slots 48] [--backend reference]
//       [--doppler 6] [--snr 30] [--max-harq 2] [--harq-ber 0.01]
//       [--clock-ghz 0.02] [--shards 2]
#include <cstdio>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;

double get_positive_double(const common::Cli& cli, const char* flag,
                           double fallback) {
  const double v = cli.get_double(flag, fallback);
  if (!(v > 0.0)) {
    std::fprintf(stderr, "value must be positive for %s\n", flag);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  bench::banner("[§II]", "scenario mixes: fading profiles + HARQ loop",
                "Three cells across the channel-profile axis (flat, TDL-A, "
                "TDL-C with Doppler)\nserved sharded with drop admission and "
                "the HARQ retransmission loop closed.\nAggregates are "
                "re-checked bit-identical across worker counts.");
  auto rep = bench::make_report("bench_scenario_mix", "[§II]",
                                "fading scenario mixes + HARQ loop");

  runtime::Traffic_config traffic;
  traffic.n_slots = cli.get_u32("--slots", 48);
  traffic.base_seed = cli.get_u32("--seed", 1);
  const double doppler = cli.get_double("--doppler", 6.0);
  const double snr = cli.get_double("--snr", 30.0);
  const double load = get_positive_double(cli, "--load", 0.9);

  runtime::Traffic_cell cell0;  // flat baseline, mu=0
  cell0.mu = 0;
  cell0.fft_size = 64;
  cell0.n_ue = 2;
  cell0.qam = phy::Qam::qam16;
  cell0.snr_db = snr;
  cell0.load = load;
  runtime::Traffic_cell cell1;  // TDL-A with Doppler, mu=1, 4 layers
  cell1.mu = 1;
  cell1.fft_size = 64;
  cell1.n_ue = 4;
  cell1.qam = phy::Qam::qam16;
  cell1.snr_db = snr;
  cell1.load = load;
  cell1.profile = phy::Channel_profile::tdl_a;
  cell1.doppler_hz = doppler;
  runtime::Traffic_cell cell2;  // TDL-C with Doppler, mu=1, denser QAM
  cell2.mu = 1;
  cell2.fft_size = 256;
  cell2.n_ue = 2;
  cell2.qam = phy::Qam::qam64;
  cell2.snr_db = snr;
  cell2.load = load;
  cell2.profile = phy::Channel_profile::tdl_c;
  cell2.doppler_hz = doppler;
  traffic.cells = {cell0, cell1, cell2};
  const runtime::Traffic_source source(traffic);

  runtime::Scheduler_options opt;
  opt.backend = bench::backend_from_cli(cli, "reference");
  opt.cluster = bench::cluster_from_cli(cli, "minipool");
  opt.keep_slots = false;
  opt.shards = cli.get_u32("--shards", 2);
  opt.overload = bench::overload_from_cli(cli, "drop");
  opt.service_units = cli.get_u32("--servers", 1);
  // Scaled-down clock (same trick as bench_serve_latency): stretches the
  // analytic service times into the slot-budget regime so the drop policy
  // actually sheds under retransmission pressure.
  opt.clock_ghz = get_positive_double(cli, "--clock-ghz", 0.02);
  opt.max_harq = cli.get_u32("--max-harq", 2);
  opt.harq_ber = cli.get_double("--harq-ber", 0.01);

  opt.workers = 1;
  const auto serial = runtime::Slot_scheduler(opt).run(source);
  opt.workers = 4;
  const auto parallel = runtime::Slot_scheduler(opt).run(source);

  std::fputs(serial.str().c_str(), stdout);
  std::printf("\nserial   : %6.1f slots/s (%.3f s wall)\n",
              serial.slots_per_second(), serial.wall_seconds);
  std::printf("%u workers: %6.1f slots/s (%.3f s wall)\n", parallel.workers,
              parallel.slots_per_second(), parallel.wall_seconds);
  const bool ok = serial.deterministic_equal(parallel);
  std::printf("aggregates bit-identical across worker counts: %s\n",
              ok ? "yes" : "NO");

  rep.add_meta("backend", opt.backend);
  rep.add_meta("cluster", opt.cluster.name);
  rep.add_meta("shards", std::to_string(opt.shards));
  rep.add_meta("overload", opt.overload);
  rep.add_meta("max_harq", std::to_string(opt.max_harq));
  for (const auto& g : serial.groups) {
    auto& row = rep.add_row(g.label);
    row.cluster = opt.cluster.name;
    row.metric("slots", static_cast<double>(g.slots), "count", true, "exact");
    row.metric("ber", g.ber, "rate", true, "exact");
    row.metric("admitted", static_cast<double>(g.admitted), "count", true,
               "exact");
    row.metric("dropped", static_cast<double>(g.dropped), "count", true,
               "exact");
    row.metric("harq_retx", static_cast<double>(g.harq_retx), "count", true,
               "exact");
    row.metric("harq_recovered", static_cast<double>(g.harq_recovered),
               "count", true, "exact");
    row.metric("harq_exhausted", static_cast<double>(g.harq_exhausted),
               "count", true, "exact");
    row.metric("deadline_misses", static_cast<double>(g.deadline_misses),
               "count", true, "exact");
    row.metric("latency_p99", 1e6 * g.latency.percentile(0.99), "us", true,
               "exact");
  }
  auto& totals = rep.add_row("totals");
  totals.metric("total_slots", static_cast<double>(serial.total_slots),
                "count", true, "exact");
  totals.metric("admitted", static_cast<double>(serial.admitted), "count",
                true, "exact");
  totals.metric("dropped", static_cast<double>(serial.dropped), "count", true,
                "exact");
  totals.metric("harq_retx", static_cast<double>(serial.harq_retx), "count",
                true, "exact");
  totals.metric("harq_recovered", static_cast<double>(serial.harq_recovered),
                "count", true, "exact");
  totals.metric("harq_exhausted", static_cast<double>(serial.harq_exhausted),
                "count", true, "exact");
  totals.metric("deadline_slots", static_cast<double>(serial.deadline_slots),
                "count", true, "exact");
  totals.metric("deadline_misses",
                static_cast<double>(serial.deadline_misses), "count", true,
                "exact");
  totals.metric("latency_p50", 1e6 * serial.latency.percentile(0.50), "us",
                true, "exact");
  totals.metric("latency_p99", 1e6 * serial.latency.percentile(0.99), "us",
                true, "exact");
  totals.metric("virtual_makespan_ms", 1e3 * serial.virtual_makespan_s, "ms",
                true, "exact");
  totals.metric("worker_invariant", ok ? 1.0 : 0.0, "bool", true, "higher");
  return bench::emit(rep, cli) | (ok ? 0 : 1);
}
