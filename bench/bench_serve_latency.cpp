// Streaming slot latency vs. the numerology budget: the paper's §II
// slot-budget argument, measured under sustained traffic instead of a batch
// grid.
//
// A fixed-seed two-cell Traffic_source (Poisson arrivals, mixed UE/QAM) is
// served by the streaming scheduler on the simulated cluster; every slot's
// latency runs on the deterministic virtual clock (simulated cycles at
// --clock-ghz, one virtual cluster draining the queue) and is scored
// against its cell's 1 ms / 2^mu slot budget.  The run repeats with a
// different host worker count and with stage pipelining requested, and the
// aggregate reports (per-cell EVM/BER, latency histograms, miss counts) are
// verified identical - the scheduler's determinism contract.
//
//   ./bench/bench_serve_latency [--slots 24] [--backend sim]
//       [--arch minipool] [--clock-ghz 0.02] [--load 0.9] [--seed 1]
//
// The default scaled-down clock (0.02 GHz) puts the toy 64-point slot at
// roughly half its mu=1 budget, the same service-to-budget ratio the paper
// reports for the full 4096-point slot on a 1 GHz cluster (§VI: ~0.4 ms of
// 0.5 ms), so queueing - not raw service time - decides the misses.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/backend.h"
#include "runtime/presets.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Positive-range check on top of Cli's validated double parsing, same
// readable error + exit-2 convention.
double get_positive_double(const common::Cli& cli, const char* flag,
                           double fallback) {
  const double v = cli.get_double(flag, fallback);
  if (!(v > 0.0)) {
    std::fprintf(stderr, "value must be positive for %s\n", flag);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  bench::banner("[§II]", "streaming slot latency vs. the numerology budget",
                "Sustained two-cell Poisson traffic served by the streaming "
                "scheduler; per-slot\nlatency on the deterministic virtual "
                "clock against the 1 ms / 2^mu slot budget.\nAggregates are "
                "re-checked bit-identical across worker counts and stage "
                "pipelining.");
  auto rep = bench::make_report("bench_serve_latency", "[§II]",
                                "streaming slot latency vs. slot budget");

  runtime::Traffic_config traffic;
  traffic.n_slots = cli.get_u32("--slots", 24);
  traffic.base_seed = cli.get_u32("--seed", 1);
  const double load = get_positive_double(cli, "--load", 0.9);
  runtime::Traffic_cell cell0;  // mu=1: 500 us budget
  cell0.mu = 1;
  cell0.fft_size = 64;
  cell0.n_ue = 2;
  cell0.qam = phy::Qam::qam16;
  cell0.load = load;
  runtime::Traffic_cell cell1;  // mu=0, denser constellation: 1 ms budget
  cell1.mu = 0;
  cell1.fft_size = 64;
  cell1.n_ue = 2;
  cell1.qam = phy::Qam::qam64;
  cell1.load = load;
  traffic.cells = {cell0, cell1};
  const runtime::Traffic_source source(traffic);

  runtime::Scheduler_options opt;
  opt.backend = bench::backend_from_cli(cli, "sim");
  opt.cluster = bench::cluster_from_cli(cli, "minipool");
  opt.keep_slots = false;
  opt.service_units = cli.get_u32("--servers", 1);
  opt.clock_ghz = get_positive_double(cli, "--clock-ghz", 0.02);

  opt.workers = 1;
  opt.pipelined = false;
  const auto serial = runtime::Slot_scheduler(opt).run(source);
  opt.workers = 2;
  opt.pipelined = true;  // silently off on the sim backend, on for hosts
  const auto overlapped = runtime::Slot_scheduler(opt).run(source);

  std::fputs(serial.str().c_str(), stdout);
  std::printf("\nserial    : %6.1f slots/s (%.3f s wall)\n",
              serial.slots_per_second(), serial.wall_seconds);
  std::printf("%u workers%s: %6.1f slots/s (%.3f s wall)\n",
              overlapped.workers, overlapped.pipelined ? " +pipe" : "      ",
              overlapped.slots_per_second(), overlapped.wall_seconds);
  const bool ok = serial.deterministic_equal(overlapped);
  std::printf("aggregates bit-identical across workers/pipelining: %s\n",
              ok ? "yes" : "NO");

  // ---- steady-state serving loop: zero allocations after warm-up --------
  // The serving path's slot executions on one persistent host backend over
  // prebuilt scenarios (scenario construction itself stays allocating by
  // design - DETERMINISM.md section 10 - and the sim backend rebuilds its
  // machine per slot, so the sim default is stood in for by its bit-exact
  // host twin "fixed").  The warm-up passes grow the slot workspaces; the
  // measured passes must never touch the heap.  PP_COUNT_ALLOCS builds
  // enforce that with an exit-1 gate.
  const std::string steady_name =
      opt.backend == "sim" ? "fixed" : opt.backend;
  const auto steady_backend = runtime::make_backend(steady_name, 1);
  const runtime::Pipeline pipeline =
      runtime::uplink_pipeline(opt.cluster, opt.uplink);
  const uint64_t n_steady = std::min<uint64_t>(source.n_slots(), 12);
  std::vector<std::unique_ptr<const phy::Uplink_scenario>> scenarios;
  scenarios.reserve(n_steady);
  for (uint64_t i = 0; i < n_steady; ++i) {
    scenarios.push_back(
        std::make_unique<const phy::Uplink_scenario>(source.job(i).cfg));
  }
  constexpr int kSteadyPasses = 3;
  runtime::Slot_result steady_res;
  double steady_s = 0.0;
  const double apslot = bench::allocs_per_slot(
      kSteadyPasses * n_steady,
      [&] {
        for (int i = 0; i < 2; ++i) {
          for (const auto& s : scenarios) {
            pipeline.execute_into(*s, *steady_backend, steady_res);
          }
        }
      },
      [&] {
        const double t0 = now_seconds();
        for (int pass = 0; pass < kSteadyPasses; ++pass) {
          for (const auto& s : scenarios) {
            pipeline.execute_into(*s, *steady_backend, steady_res);
          }
        }
        steady_s =
            (now_seconds() - t0) / static_cast<double>(kSteadyPasses * n_steady);
      });
  const int alloc_gate =
      bench::gate_steady_allocs("bench_serve_latency", apslot);
  std::printf("steady state (%s backend): %.1f us/slot, %g allocs/slot, "
              "%zu KiB workspace\n",
              steady_name.c_str(), steady_s * 1e6, apslot,
              steady_backend->workspace_bytes() / 1024);

  rep.add_meta("backend", opt.backend);
  rep.add_meta("cluster", opt.cluster.name);
  rep.add_meta("servers", std::to_string(opt.service_units));
  for (const auto& g : serial.groups) {
    auto& row = rep.add_row(g.label);
    row.cluster = opt.cluster.name;
    row.metric("slots", static_cast<double>(g.slots), "count", true, "exact");
    row.metric("evm", g.evm, "rms", true, "exact");
    row.metric("ber", g.ber, "rate", true, "exact");
    row.metric("deadline_misses", static_cast<double>(g.deadline_misses),
               "count", true, "exact");
    row.metric("latency_p99", 1e6 * g.latency.percentile(0.99), "us", true,
               "exact");
    if (g.cycles) {
      row.metric("cycles", static_cast<double>(g.cycles), "cycles");
    }
  }
  auto& totals = rep.add_row("totals");
  totals.metric("total_slots", static_cast<double>(serial.total_slots),
                "count", true, "exact");
  totals.metric("deadline_slots", static_cast<double>(serial.deadline_slots),
                "count", true, "exact");
  totals.metric("deadline_misses",
                static_cast<double>(serial.deadline_misses), "count", true,
                "exact");
  totals.metric("latency_p50", 1e6 * serial.latency.percentile(0.50), "us",
                true, "exact");
  totals.metric("latency_p99", 1e6 * serial.latency.percentile(0.99), "us",
                true, "exact");
  totals.metric("latency_p999", 1e6 * serial.latency.percentile(0.999), "us",
                true, "exact");
  // The whole virtual-clock surface is bit-deterministic (DETERMINISM.md
  // §6), so the makespan gates "exact" like its sibling latency metrics.
  totals.metric("virtual_makespan_ms", 1e3 * serial.virtual_makespan_s, "ms",
                true, "exact");
  totals.metric("worker_invariant", ok ? 1.0 : 0.0, "bool", true, "higher");
  totals.metric("serial_slots_per_s", serial.slots_per_second(), "slots/s",
                false, "info");
  totals.metric("parallel_slots_per_s", overlapped.slots_per_second(),
                "slots/s", false, "info");
  rep.add_meta("steady_backend", steady_name);
  totals.metric("allocs_per_slot", apslot, "allocs/slot", true, "exact");
  totals.metric("steady_slot_us", steady_s * 1e6, "us", false, "info");
  return bench::emit(rep, cli) | (ok ? 0 : 1) | alloc_gate;
}
