// Table I: PUSCH kernels and computational complexity (complex MACs/slot),
// evaluated for the paper's use case.
#include "bench/bench_util.h"
#include "pusch/complexity.h"

int main(int argc, char** argv) {
  using namespace pp;
  using common::Table;
  common::Cli cli(argc, argv);

  bench::banner("[Table I]", "PUSCH kernels and computational complexity",
                "Complex MACs per slot for the use case: 100 MHz / 30 kHz "
                "(4096-pt grid), 14 symbols (2 pilot), 64 antennas, 32 beams.");
  auto rep = bench::make_report("bench_table1_complexity", "[Table I]",
                                "PUSCH kernels and computational complexity");

  Table t({"PUSCH stage", "key kernel", "complex MACs formula", "NL=4 MACs/slot"});
  for (uint32_t nl : {1u, 2u, 4u, 8u, 16u}) {
    pusch::Pusch_dims d;
    d.n_ue = nl;
    const auto s = pusch::pusch_macs(d);
    if (nl == 4) {
      t.add_row({"OFDM dem.", "fast Fourier transform",
                 "Nsymb*NR*NSC*log2(NSC)", Table::fmt(s.ofdm, 0)});
      t.add_row({"BF", "matrix-matrix multiplication", "Nsymb*NSC*NR*NB",
                 Table::fmt(s.bf, 0)});
      t.add_row({"MIMO", "Cholesky dec. + solves",
                 "Ndata*NSC*(NL^3/3 + 2NL^2)", Table::fmt(s.mimo, 0)});
      t.add_row({"CHE", "element-wise division", "Npilot*NSC*NB*NL",
                 Table::fmt(s.che, 0)});
      t.add_row({"NE", "autocorrelation", "Npilot*NSC*2*NB*NL",
                 Table::fmt(s.ne, 0)});
      t.add_row({"total", "", "", Table::fmt(s.total(), 0)});
      for (const auto& [stage, macs] :
           {std::pair<const char*, double>{"OFDM dem.", s.ofdm},
            {"BF", s.bf},
            {"MIMO", s.mimo},
            {"CHE", s.che},
            {"NE", s.ne},
            {"total", s.total()}}) {
        rep.add_row(stage).metric("macs_per_slot", macs, "macs", true,
                                  "exact");
      }
    }
  }
  t.print();
  return bench::emit(rep, cli);
}
