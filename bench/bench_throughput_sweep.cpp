// Slot-sweep throughput: the paper's slot-budget argument, host-side.
//
// Runs the same scenario grid serially (1 worker) and on the full thread
// pool, reports slots/sec for both, the parallel speedup, and verifies the
// two runs are bit-identical (the sweep engine's determinism contract:
// per-slot seeds derive from (base_seed, slot_index) alone and aggregation
// is in slot-index order).
//
//   ./bench/bench_throughput_sweep [--workers N] [--backend reference]
//       [--fft 64,256,1024] [--snr-points 5] [--slots 2] [--arch minipool]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/sweep.h"

namespace {

using namespace pp;

bool bit_identical(const runtime::Sweep_result& a,
                   const runtime::Sweep_result& b) {
  if (a.slots.size() != b.slots.size()) return false;
  for (size_t i = 0; i < a.slots.size(); ++i) {
    const auto& x = a.slots[i];
    const auto& y = b.slots[i];
    if (x.bits != y.bits || x.evm != y.evm || x.ber != y.ber ||
        x.sigma2_hat != y.sigma2_hat) {
      return false;
    }
  }
  if (a.points.size() != b.points.size()) return false;
  for (size_t p = 0; p < a.points.size(); ++p) {
    if (a.points[p].evm != b.points[p].evm ||
        a.points[p].ber != b.points[p].ber ||
        a.points[p].cycles != b.points[p].cycles) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  bench::banner("[host]", "slot-sweep throughput",
                "Scenario grid executed serially and slot-parallel on a host "
                "thread pool;\nN-worker results are bit-identical to the "
                "serial run by construction.");
  auto rep = bench::make_report("bench_throughput_sweep", "[host]",
                                "slot-sweep throughput");

  runtime::Sweep_grid grid;
  grid.fft_sizes = cli.get_u32_list("--fft", "64,256,1024");
  const uint32_t snr_points = cli.get_u32("--snr-points", 5);
  grid.snr_db.clear();
  for (uint32_t i = 0; i < snr_points; ++i) {
    grid.snr_db.push_back(10.0 + 5.0 * i);
  }
  grid.slots_per_point = cli.get_u32("--slots", 2);

  runtime::Sweep_options opt;
  opt.backend = cli.get("--backend", "reference");
  opt.cluster = bench::cluster_from_cli(cli, "minipool");

  const uint32_t workers_flag = cli.get_u32("--workers", 0);
  const uint32_t pool =
      workers_flag ? workers_flag
                   : std::max(1u, std::thread::hardware_concurrency());

  opt.workers = 1;
  const auto serial = runtime::Sweep_runner(opt).run(grid);
  opt.workers = pool;
  const auto parallel = runtime::Sweep_runner(opt).run(grid);

  std::fputs(parallel.str().c_str(), stdout);
  std::printf("\nserial   : %6.1f slots/s (%.3f s wall)\n",
              serial.slots_per_second(), serial.wall_seconds);
  std::printf("%2u workers: %6.1f slots/s (%.3f s wall) -> speedup %.2fx\n",
              parallel.workers, parallel.slots_per_second(),
              parallel.wall_seconds,
              serial.wall_seconds / parallel.wall_seconds);
  const bool ok = bit_identical(serial, parallel);
  std::printf("bit-identical to serial: %s\n", ok ? "yes" : "NO");

  // Per-point curves are bit-exact (the determinism contract), so they gate
  // the compare tool; the wall-clock throughput figures do not.
  rep.add_meta("backend", opt.backend);
  rep.add_meta("cluster", opt.cluster.name);
  rep.add_meta("workers", std::to_string(pool));
  for (const auto& p : parallel.points) {
    auto& row = rep.add_row(
        "fft=" + std::to_string(p.point.fft_size) +
        " ue=" + std::to_string(p.point.n_ue) +
        " qam=" + std::to_string(static_cast<uint32_t>(p.point.qam)) +
        " snr=" + common::Table::fmt(p.point.snr_db, 1));
    row.cluster = opt.cluster.name;
    row.metric("evm", p.evm, "rms", true, "exact");
    row.metric("ber", p.ber, "rate", true, "exact");
    row.metric("sigma2_hat", p.sigma2_hat, "power", true, "exact");
    if (p.cycles) {
      row.metric("cycles", static_cast<double>(p.cycles), "cycles");
    }
  }
  auto& totals = rep.add_row("throughput");
  totals.metric("total_slots", static_cast<double>(parallel.total_slots),
                "count", true, "exact");
  totals.metric("bit_identical", ok ? 1.0 : 0.0, "bool", true, "higher");
  totals.metric("serial_slots_per_s", serial.slots_per_second(), "slots/s",
                false, "info");
  totals.metric("parallel_slots_per_s", parallel.slots_per_second(),
                "slots/s", false, "info");
  totals.metric("speedup", serial.wall_seconds / parallel.wall_seconds, "x",
                false, "info");
  return bench::emit(rep, cli) | (ok ? 0 : 1);
}
