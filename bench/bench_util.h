// Shared helpers for the paper-reproduction benchmark binaries.
//
// measure_kernel()/run_kernel() replace the per-bench machine + allocator +
// stimulus boilerplate: every kernel configuration is instantiated from the
// runtime registry by name, fed synthetic stimulus, and launched on a fresh
// simulated cluster.
#ifndef PUSCHPOOL_BENCH_BENCH_UTIL_H
#define PUSCHPOOL_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/reference.h"
#include "bench/report.h"
#include "common/alloc_count.h"
#include "common/cli.h"
#include "common/complex16.h"
#include "common/rng.h"
#include "common/table.h"
#include "phy/channel.h"
#include "runtime/admission.h"
#include "runtime/backend.h"
#include "runtime/placement.h"
#include "runtime/presets.h"
#include "runtime/registry.h"
#include "sim/stats.h"

namespace pp::bench {

inline std::vector<common::cq15> random_signal(size_t n, uint64_t seed,
                                               double amp = 0.2) {
  common::Rng rng(seed);
  std::vector<common::cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp);
  return x;
}

inline std::vector<common::cq15> random_spd(uint32_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<ref::cd> a(size_t{n} * 2 * n);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 2 * n, n);
  for (uint32_t i = 0; i < n; ++i) g[i * n + i] += 0.03;
  std::vector<common::cq15> q(g.size());
  for (size_t i = 0; i < g.size(); ++i) q[i] = common::to_cq15(g[i]);
  return q;
}

// ---- registry-driven kernel measurement -----------------------------------

struct Measured {
  sim::Kernel_report rep;
  runtime::Kernel_desc desc;  // resolved configuration (cores, MACs, ...)
};

// Instantiates `kernel` from the registry on a fresh simulated `cfg`
// cluster, binds default stimulus, and runs it to completion.
inline Measured measure_kernel(const arch::Cluster_config& cfg,
                               const std::string& kernel,
                               const runtime::Params& params = {},
                               uint64_t seed = 1) {
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  auto k = runtime::make_kernel(kernel, m, alloc, params);
  common::Rng rng(seed);
  k->bind_default_inputs(rng);
  Measured out{k->launch(), k->desc()};
  return out;
}

inline sim::Kernel_report run_kernel(const arch::Cluster_config& cfg,
                                     const std::string& kernel,
                                     const runtime::Params& params = {},
                                     uint64_t seed = 1) {
  return measure_kernel(cfg, kernel, params, seed).rep;
}

// ---- CLI helpers ----------------------------------------------------------

// The registered cluster configurations, in listing order.
inline std::vector<std::string> cluster_names() {
  return {"mempool", "minipool", "terapool"};
}

// Strict lookup: an unknown name prints the registered clusters and exits 2
// (point the user at --list) instead of silently falling back to mempool.
inline arch::Cluster_config cluster_by_name(const std::string& name) {
  if (name == "mempool") return arch::Cluster_config::mempool();
  if (name == "terapool") return arch::Cluster_config::terapool();
  if (name == "minipool") return arch::Cluster_config::minipool();
  std::fprintf(stderr, "unknown cluster '%s' for --arch; registered:",
               name.c_str());
  for (const auto& n : cluster_names()) std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

inline arch::Cluster_config cluster_from_cli(const common::Cli& cli,
                                             const char* fallback = "mempool") {
  return cluster_by_name(cli.get("--arch", fallback));
}

// Backend name validated against runtime::backend_names(); unknown names
// print the registered list and exit 2 instead of aborting deep in
// make_backend().
inline std::string backend_from_cli(const common::Cli& cli,
                                    const char* fallback = "reference") {
  const std::string name = cli.get("--backend", fallback);
  for (const auto& b : runtime::backend_names()) {
    if (name == b) return name;
  }
  std::fprintf(stderr, "unknown backend '%s' for --backend; registered:",
               name.c_str());
  for (const auto& b : runtime::backend_names()) {
    std::fprintf(stderr, " %s", b.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

// Cell-to-shard placement policy validated against
// runtime::placement_names(); unknown names print the registered list and
// exit 2 instead of aborting in place_groups().
inline std::string placement_from_cli(const common::Cli& cli,
                                      const char* fallback = "round-robin") {
  const std::string name = cli.get("--placement", fallback);
  if (runtime::is_placement_name(name)) return name;
  std::fprintf(stderr, "unknown placement '%s' for --placement; registered:",
               name.c_str());
  for (const auto& p : runtime::placement_names()) {
    std::fprintf(stderr, " %s", p.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

// Overload/admission policy validated against runtime::overload_names();
// unknown names print the registered list and exit 2 instead of aborting in
// overload_from_name().
inline std::string overload_from_cli(const common::Cli& cli,
                                     const char* fallback = "off") {
  const std::string name = cli.get("--overload", fallback);
  if (runtime::is_overload_name(name)) return name;
  std::fprintf(stderr, "unknown policy '%s' for --overload; registered:",
               name.c_str());
  for (const auto& p : runtime::overload_names()) {
    std::fprintf(stderr, " %s", p.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

// Channel profile validated against phy::channel_profile_names(); unknown
// names print the registered list and exit 2 instead of aborting in
// channel_profile_from_name().
inline phy::Channel_profile channel_by_name(const std::string& name) {
  if (phy::is_channel_profile_name(name)) {
    return phy::channel_profile_from_name(name);
  }
  std::fprintf(stderr, "unknown channel profile '%s' for --channel; "
               "registered:", name.c_str());
  for (const auto& p : phy::channel_profile_names()) {
    std::fprintf(stderr, " %s", p.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

inline phy::Channel_profile channel_from_cli(const common::Cli& cli,
                                             const char* fallback = "flat") {
  return channel_by_name(cli.get("--channel", fallback));
}

// `--list` support: everything reachable by name through the runtime
// registry and the CLI helpers - clusters, execution backends, pipeline
// presets, and the registered kernel configurations.
inline void print_catalog() {
  std::printf("clusters (--arch):\n");
  for (const auto& name : cluster_names()) {
    const auto c = cluster_by_name(name);
    std::printf("  %-10s %4u cores (%u groups x %u tiles x %u cores), "
                "%llu KiB L1\n",
                c.name.c_str(), c.n_cores(), c.n_groups, c.tiles_per_group,
                c.cores_per_tile,
                static_cast<unsigned long long>(c.l1_words() * 4 / 1024));
  }
  std::printf("\nbackends (--backend):\n");
  for (const auto& name : runtime::backend_names()) {
    const auto b = runtime::make_backend(name, 1);
    const char* what = b->cycle_accurate()
                           ? "cycle-accurate simulated cluster"
                           : (name == "fixed"
                                  ? "bit-exact Q1.15 host kernels (== sim)"
                                  : "double-precision host models");
    std::printf("  %-10s %s%s\n", name.c_str(), what,
                b->can_split() ? ", stage-splittable" : "");
  }
  std::printf("\nplacement policies (--placement):\n");
  std::printf("  %-10s cell i onto shard i mod N\n", "round-robin");
  std::printf("  %-10s LPT greedy over per-cell analytic MAC load\n",
              "load-aware");
  std::printf("\noverload policies (--overload):\n");
  std::printf("  %-10s admit everything\n", "off");
  std::printf("  %-10s shed jobs whose predicted delay exceeds the budget\n",
              "drop");
  std::printf("  %-10s tail-drop past a bounded predicted backlog\n", "queue");
  std::printf("  %-10s re-plan over-budget slots to fewer UE layers\n",
              "degrade");
  std::printf("\nchannel profiles (--channel):\n");
  std::printf("  %-10s per-sub-carrier Rayleigh block fading (the default)\n",
              "flat");
  std::printf("  %-10s TR 38.901 TDL-A power-delay profile (NLOS, 23 taps)\n",
              "tdl-a");
  std::printf("  %-10s TR 38.901 TDL-C power-delay profile (NLOS, 24 taps)\n",
              "tdl-c");
  std::printf("\npipeline presets:\n");
  for (const auto& [name, summary] : runtime::preset_names()) {
    std::printf("  %-10s %s\n", name.c_str(), summary.c_str());
  }
  std::printf("\nregistry kernels:\n");
  for (const auto& [name, summary] : runtime::Registry::instance().list()) {
    std::printf("  %-15s %s\n", name.c_str(), summary.c_str());
  }
}

// ---- steady-state allocation accounting (PP_COUNT_ALLOCS) -----------------

// Allocations per slot over a measured region: warm() runs first (slot
// workspaces grow to their stable shapes), then the global allocation
// counter is read around run(), which must cover `n_slots` slot
// executions.  In builds without PP_COUNT_ALLOCS alloc_count() is a
// constant 0, so the metric exists - and reads 0 - in every build and the
// baselines can gate it "exact".
template <typename Warm, typename Run>
inline double allocs_per_slot(uint64_t n_slots, Warm&& warm, Run&& run) {
  warm();
  const uint64_t a0 = common::alloc_count();
  run();
  const uint64_t delta = common::alloc_count() - a0;
  return static_cast<double>(delta) / static_cast<double>(n_slots);
}

// Self-gate on the zero-steady-state-allocation contract: active only when
// the counter is compiled in (check.sh builds the benches with
// PP_COUNT_ALLOCS=1 and runs this gate).  Returns the process exit-code
// contribution: 0 when the contract holds or the counter is off.
inline int gate_steady_allocs(const char* what, double per_slot) {
  if (!common::alloc_count_enabled()) return 0;
  if (per_slot == 0.0) {
    std::printf("%s: 0 steady-state heap allocations per slot (gate ok)\n",
                what);
    return 0;
  }
  std::fprintf(stderr,
               "%s: %g steady-state heap allocations per slot "
               "(contract: 0 after warm-up)\n",
               what, per_slot);
  return 1;
}

// ---- reporting ------------------------------------------------------------

// Standard IPC/stall breakdown columns (paper Fig. 8).
inline std::vector<std::string> ipc_header() {
  return {"configuration", "cores", "cycles",  "IPC",  "instr%",
          "raw%",          "lsu%",  "instr$%", "ext%", "wfi%"};
}

inline std::vector<std::string> ipc_row(const std::string& name,
                                        const sim::Kernel_report& r) {
  using common::Table;
  using sim::Stall;
  return {name,
          Table::fmt(static_cast<uint64_t>(r.n_cores)),
          Table::fmt(r.cycles),
          Table::fmt(r.ipc(), 2),
          Table::pct(r.frac_instr()),
          Table::pct(r.frac(Stall::raw)),
          Table::pct(r.frac(Stall::lsu)),
          Table::pct(r.frac(Stall::icache)),
          Table::pct(r.frac(Stall::extunit)),
          Table::pct(r.frac(Stall::wfi))};
}

// Banner with the normalized figure tag every bench leads with; the same
// `figure` string goes verbatim into Report.figure and the
// docs/BENCHMARKS.md mapping table ("[Fig. 8a]", "[Table I]", "[SIV]").
inline void banner(const char* figure, const char* title,
                   const char* paper_note) {
  std::printf("\n=== %s %s ===\n%s\n\n", figure, title, paper_note);
}

// ---- machine-readable reports (report.h) ----------------------------------

// Fresh report with the shared metadata filled in; `figure` and `title`
// are the banner() arguments.
inline Report make_report(const char* bench_name, const char* figure,
                          const char* title) {
  Report r;
  r.bench = bench_name;
  r.figure = figure;
  r.title = title;
  r.git = git_describe();
  return r;
}

// The standard Fig. 8 breakdown as metrics: cycles, IPC and the stall
// fractions - all simulator-derived, so all deterministic.
inline void add_ipc_metrics(Row& row, const sim::Kernel_report& r) {
  using sim::Stall;
  row.metric("cycles", static_cast<double>(r.cycles), "cycles");
  row.metric("ipc", r.ipc(), "ipc", true, "higher");
  row.metric("frac_instr", r.frac_instr(), "fraction", true, "higher");
  row.metric("frac_raw", r.frac(Stall::raw), "fraction");
  row.metric("frac_lsu", r.frac(Stall::lsu), "fraction");
  row.metric("frac_icache", r.frac(Stall::icache), "fraction");
  row.metric("frac_extunit", r.frac(Stall::extunit), "fraction");
  row.metric("frac_wfi", r.frac(Stall::wfi), "fraction");
}

// Row from one measure_kernel() run: the resolved Kernel_desc plus the
// standard IPC/stall metrics.  Mirrors ipc_row() for the human table.
inline Row report_from(const std::string& name, const Measured& m,
                       const std::string& cluster = "") {
  Row row;
  row.name = name;
  row.cluster = cluster;
  row.kernel = m.desc.name;
  row.params = m.desc.params.describe();
  row.cores = m.desc.cores;
  row.macs = m.desc.macs;
  add_ipc_metrics(row, m.rep);
  return row;
}

// Honors `--json <path>`: absent -> no-op (stdout tables stay the only
// output), present -> serialize `rep`.  Returns the process exit code to
// combine with the bench's own status: `return emit(rep, cli) | status;`.
inline int emit(const Report& rep, const common::Cli& cli) {
  const std::string path = cli.get("--json", "");
  if (path.empty()) return 0;
  return rep.write_json(path) ? 0 : 1;
}

}  // namespace pp::bench

#endif  // PUSCHPOOL_BENCH_BENCH_UTIL_H
