// Host wall-clock microbenchmarks (google-benchmark) of the golden models
// and the Q15 arithmetic layer.  These are not paper figures; they document
// the cost of the verification infrastructure itself.
#include <benchmark/benchmark.h>

#include "baseline/reference.h"
#include "common/complex16.h"
#include "common/rng.h"
#include "phy/qam.h"

namespace {

using namespace pp;

std::vector<ref::cd> random_vec(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<ref::cd> v(n);
  for (auto& x : v) x = rng.cnormal();
  return v;
}

void BM_RefFft(benchmark::State& state) {
  const auto x = random_vec(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref::fft(x));
  }
}
BENCHMARK(BM_RefFft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RefMatmul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = random_vec(n * n, 2);
  const auto b = random_vec(n * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref::matmul(a, b, n, n, n));
  }
}
BENCHMARK(BM_RefMatmul)->Arg(32)->Arg(64);

void BM_RefCholesky(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = random_vec(2 * n * n, 4);
  auto g = ref::gram(a, 2 * n, n);
  for (size_t i = 0; i < n; ++i) g[i * n + i] += 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref::cholesky(g, n));
  }
}
BENCHMARK(BM_RefCholesky)->Arg(4)->Arg(32);

void BM_Q15ComplexMac(benchmark::State& state) {
  common::Rng rng(5);
  std::vector<common::cq15> a(1024), b(1024);
  for (auto& v : a) v = common::to_cq15(rng.cnormal() * 0.1);
  for (auto& v : b) v = common::to_cq15(rng.cnormal() * 0.1);
  for (auto _ : state) {
    common::cacc acc;
    for (size_t i = 0; i < a.size(); ++i) acc.mac(a[i], b[i]);
    benchmark::DoNotOptimize(acc.round());
  }
}
BENCHMARK(BM_Q15ComplexMac);

void BM_QamModDemod(benchmark::State& state) {
  common::Rng rng(6);
  std::vector<uint8_t> bits(6 * 4096);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  for (auto _ : state) {
    const auto s = phy::qam_modulate(phy::Qam::qam64, bits);
    benchmark::DoNotOptimize(phy::qam_demodulate(phy::Qam::qam64, s));
  }
}
BENCHMARK(BM_QamModDemod);

}  // namespace

BENCHMARK_MAIN();
