// Host wall-clock microbenchmarks (google-benchmark) of the golden models
// and the Q15 arithmetic layer.  These are not paper figures; they document
// the cost of the verification infrastructure itself.
//
// `--json <path>` (handled before google-benchmark sees the flags) captures
// every run through a console-reporter subclass and emits the shared
// pp::bench::Report schema next to the usual console output, so the
// bench_all aggregator treats this binary like every other bench.
#include <benchmark/benchmark.h>

#include "baseline/reference.h"
#include "bench/report.h"
#include "common/complex16.h"
#include "common/rng.h"
#include "phy/qam.h"

namespace {

using namespace pp;

std::vector<ref::cd> random_vec(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<ref::cd> v(n);
  for (auto& x : v) x = rng.cnormal();
  return v;
}

void BM_RefFft(benchmark::State& state) {
  const auto x = random_vec(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref::fft(x));
  }
}
BENCHMARK(BM_RefFft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RefMatmul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = random_vec(n * n, 2);
  const auto b = random_vec(n * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref::matmul(a, b, n, n, n));
  }
}
BENCHMARK(BM_RefMatmul)->Arg(32)->Arg(64);

void BM_RefCholesky(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = random_vec(2 * n * n, 4);
  auto g = ref::gram(a, 2 * n, n);
  for (size_t i = 0; i < n; ++i) g[i * n + i] += 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref::cholesky(g, n));
  }
}
BENCHMARK(BM_RefCholesky)->Arg(4)->Arg(32);

void BM_Q15ComplexMac(benchmark::State& state) {
  common::Rng rng(5);
  std::vector<common::cq15> a(1024), b(1024);
  for (auto& v : a) v = common::to_cq15(rng.cnormal() * 0.1);
  for (auto& v : b) v = common::to_cq15(rng.cnormal() * 0.1);
  for (auto _ : state) {
    common::cacc acc;
    for (size_t i = 0; i < a.size(); ++i) acc.mac(a[i], b[i]);
    benchmark::DoNotOptimize(acc.round());
  }
}
BENCHMARK(BM_Q15ComplexMac);

void BM_QamModDemod(benchmark::State& state) {
  common::Rng rng(6);
  std::vector<uint8_t> bits(6 * 4096);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  for (auto _ : state) {
    const auto s = phy::qam_modulate(phy::Qam::qam64, bits);
    benchmark::DoNotOptimize(phy::qam_demodulate(phy::Qam::qam64, s));
  }
}
BENCHMARK(BM_QamModDemod);

// Console reporter that additionally records each run into the Report.
class Capture_reporter : public benchmark::ConsoleReporter {
 public:
  explicit Capture_reporter(bench::Report* rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      auto& row = rep_->add_row(run.benchmark_name());
      // Wall time per iteration; host-dependent by definition.
      row.metric("real_time_per_iter",
                 run.real_accumulated_time / static_cast<double>(run.iterations),
                 "s", false, "info");
      row.metric("cpu_time_per_iter",
                 run.cpu_accumulated_time / static_cast<double>(run.iterations),
                 "s", false, "info");
      row.metric("iterations", static_cast<double>(run.iterations), "count",
                 false, "info");
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Report* rep_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json flag; everything else goes to google-benchmark.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  bench::Report rep;
  rep.bench = "bench_wallclock_golden";
  rep.figure = "[host]";
  rep.title = "golden-model wall-clock microbenchmarks";
  rep.git = bench::git_describe();
  Capture_reporter reporter(&rep);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !rep.write_json(json_path)) return 1;
  return 0;
}
