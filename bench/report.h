// Machine-readable benchmark reports.
//
// Every bench binary assembles one pp::bench::Report next to its human
// table: run metadata (bench name, the paper figure tag in its banner,
// git describe, free-form meta such as worker counts) plus one Row per
// measured configuration, each carrying the cluster, the resolved
// runtime::Kernel_desc, and named Metric values.  `--json <path>`
// (bench_util.h `emit()`) serializes it through common::Json as schema
// "pp-bench-report-v1"; scripts/bench_all.sh collects the files and
// examples/bench_merge.cpp folds them into one BENCH_summary.json that
// scripts/bench_compare.py diffs against a committed baseline.
//
// Metrics carry two gating attributes (docs/DETERMINISM.md §4):
//   deterministic  simulator-derived values (cycles, IPC, stall fractions,
//                  MAC counts, bit-exact EVM/BER) reproduce on any host;
//                  wall-clock values do not and must be marked false.
//   better         which direction is an improvement: "lower" (cycles,
//                  ms), "higher" (IPC, speedup), "exact" (golden values a
//                  diff should never see move), or "info" (never gated).
// bench_compare.py gates only deterministic metrics whose direction is
// not "info".
#ifndef PUSCHPOOL_BENCH_REPORT_H
#define PUSCHPOOL_BENCH_REPORT_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"

namespace pp::bench {

// `git describe --always --dirty` of the working tree, "unknown" when git
// or the repo is unavailable.  Cached: every row of a report shares it.
inline std::string git_describe() {
  static const std::string cached = [] {
    std::string out = "unknown";
    if (std::FILE* p =
            popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128];
      if (std::fgets(buf, sizeof buf, p)) {
        out.assign(buf);
        while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
          out.pop_back();
        }
        if (out.empty()) out = "unknown";
      }
      pclose(p);
    }
    return out;
  }();
  return cached;
}

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;           // "cycles", "ipc", "fraction", "x", "ms", ...
  bool deterministic = true;  // false for anything host-timing derived
  std::string better = "lower";  // "lower" | "higher" | "exact" | "info"

  // Repetition statistics, populated for wall-clock metrics (reps > 0).
  uint32_t reps = 0;
  double min = 0.0;
  double median = 0.0;
  double stdev = 0.0;
};

// Wall-clock metric from repeated samples: value = min (the conventional
// best-of estimate), plus min/median/stdev over the repetitions.  Always
// host-dependent, never gated by the compare tool.
inline Metric wall_metric(std::string name, std::vector<double> samples,
                          std::string unit = "s") {
  Metric m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.deterministic = false;
  m.better = "info";
  m.reps = static_cast<uint32_t>(samples.size());
  if (samples.empty()) return m;
  std::sort(samples.begin(), samples.end());
  m.min = samples.front();
  m.value = m.min;
  const size_t n = samples.size();
  m.median = n % 2 ? samples[n / 2]
                   : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double s : samples) var += (s - mean) * (s - mean);
  m.stdev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
  return m;
}

struct Row {
  std::string name;     // configuration label, matches the table row
  std::string cluster;  // "mempool" | "terapool" | ... ("" = host-only)
  std::string kernel;   // registry key ("" when not registry-driven)
  std::string params;   // resolved Params::describe()
  uint32_t cores = 0;   // gang shape (0 = n/a)
  uint64_t macs = 0;    // complex MACs of the problem (0 = n/a)
  std::vector<Metric> metrics;

  Row& metric(std::string name, double value, std::string unit,
              bool deterministic = true, std::string better = "lower") {
    metrics.push_back(Metric{std::move(name), value, std::move(unit),
                             deterministic, std::move(better)});
    return *this;
  }
  Row& metric(Metric m) {
    metrics.push_back(std::move(m));
    return *this;
  }
};

struct Report {
  std::string schema = "pp-bench-report-v1";
  std::string bench;   // binary base name, e.g. "bench_fig8a_fft_ipc"
  std::string figure;  // normalized banner tag, e.g. "[Fig. 8a]"
  std::string title;
  std::string git;     // `git describe --always --dirty`, or "unknown"
  std::vector<std::pair<std::string, std::string>> meta;  // free-form
  std::vector<Row> rows;

  Report& add_meta(std::string key, std::string value) {
    meta.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Row& add_row(std::string name) {
    rows.push_back({});
    rows.back().name = std::move(name);
    return rows.back();
  }

  common::Json to_json() const {
    using common::Json;
    Json j = Json::object();
    j.set("schema", schema).set("bench", bench).set("figure", figure);
    j.set("title", title).set("git", git);
    Json jm = Json::object();
    for (const auto& [k, v] : meta) jm.set(k, v);
    j.set("meta", std::move(jm));
    Json jrows = Json::array();
    for (const Row& r : rows) {
      Json jr = Json::object();
      jr.set("name", r.name);
      if (!r.cluster.empty()) jr.set("cluster", r.cluster);
      if (!r.kernel.empty()) jr.set("kernel", r.kernel);
      if (!r.params.empty()) jr.set("params", r.params);
      if (r.cores) jr.set("cores", uint64_t{r.cores});
      if (r.macs) jr.set("macs", r.macs);
      Json jms = Json::array();
      for (const Metric& m : r.metrics) {
        Json jmetric = Json::object();
        jmetric.set("name", m.name).set("value", m.value).set("unit", m.unit);
        jmetric.set("deterministic", m.deterministic).set("better", m.better);
        if (m.reps) {
          jmetric.set("reps", uint64_t{m.reps});
          jmetric.set("min", m.min).set("median", m.median);
          jmetric.set("stdev", m.stdev);
        }
        jms.push(std::move(jmetric));
      }
      jr.set("metrics", std::move(jms));
      jrows.push(std::move(jr));
    }
    j.set("rows", std::move(jrows));
    return j;
  }

  // Writes the report to `path`; returns false (with a stderr message) on
  // I/O failure so callers can exit non-zero.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
      return false;
    }
    const std::string text = to_json().dump();
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    // fclose flushes the stdio buffer; a failed flush (ENOSPC) means a
    // truncated report even though every fwrite "succeeded".
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
    return ok;
  }
};

}  // namespace pp::bench

#endif  // PUSCHPOOL_BENCH_REPORT_H
