// Merges per-bench JSON reports (the `--json` output of the bench_*
// binaries, schema "pp-bench-report-v1") into one summary document
// (schema "pp-bench-summary-v1") that scripts/bench_compare.py diffs
// against a committed baseline.  scripts/bench_all.sh drives this after
// running the benches.
//
//   ./examples/bench_merge --out BENCH_summary.json BENCH_*.json
//   ./examples/bench_merge report.json            # summary to stdout
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "common/cli.h"
#include "common/json.h"

namespace {

using pp::common::Json;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pp::common::Cli cli(argc, argv);
  const std::string out_path = cli.get("--out", "");

  // Positional arguments = the input reports.  Only --out is a known
  // flag; an unknown one must fail loudly rather than silently swallowing
  // the next argument (which would drop a report from the summary).
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      ++i;  // skip the flag's value
      continue;
    }
    if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_merge: unknown flag %s\n", a.c_str());
      return 2;
    }
    inputs.push_back(a);
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: bench_merge [--out summary.json] report.json...\n");
    return 2;
  }

  Json summary = Json::object();
  summary.set("schema", "pp-bench-summary-v1");
  summary.set("git", pp::bench::git_describe());
  summary.set("n_reports", static_cast<uint64_t>(inputs.size()));
  Json reports = Json::array();
  for (const std::string& path : inputs) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "bench_merge: cannot read %s\n", path.c_str());
      return 1;
    }
    Json rep;
    try {
      rep = Json::parse(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_merge: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
    if (rep.get_str("schema", "") != "pp-bench-report-v1") {
      std::fprintf(stderr, "bench_merge: %s is not a pp-bench-report-v1\n",
                   path.c_str());
      return 1;
    }
    // One binary can contribute several reports to a summary (e.g. the
    // same bench under different flags), so tag each with its source file
    // (sans dir/extension) - bench_compare keys on it to keep them apart.
    std::string source = path;
    if (const size_t slash = source.find_last_of('/');
        slash != std::string::npos) {
      source.erase(0, slash + 1);
    }
    if (source.size() > 5 && source.ends_with(".json")) {
      source.erase(source.size() - 5);
    }
    if (source.rfind("BENCH_", 0) == 0) source.erase(0, 6);
    rep.set("source", source);
    reports.push(std::move(rep));
  }
  summary.set("reports", std::move(reports));

  const std::string text = summary.dump();
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  out << text;
  if (!out) {
    std::fprintf(stderr, "bench_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("bench_merge: %zu report(s) -> %s\n", inputs.size(),
              out_path.c_str());
  return 0;
}
