// Interactive kernel explorer: run any of the paper's kernels on either
// cluster with chosen parameters and print the cycle/IPC/stall report.
//
//   ./examples/kernel_explorer --kernel fft  --arch terapool --size 1024
//   ./examples/kernel_explorer --kernel mmm  --arch mempool  --m 256 --k 64 --p 32
//   ./examples/kernel_explorer --kernel chol --arch terapool --size 32
//   ./examples/kernel_explorer --kernel che|ne
//
// Add --serial to run the single-core baseline instead of the parallel
// mapping (and print the speedup when both are run).
#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "baseline/reference.h"
#include "kernels/che_ne.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/mmm.h"

namespace {

using namespace pp;

std::vector<common::cq15> random_signal(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<common::cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * 0.2);
  return x;
}

std::vector<common::cq15> random_spd(uint32_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<ref::cd> a(size_t{n} * 2 * n);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 2 * n, n);
  for (uint32_t i = 0; i < n; ++i) g[i * n + i] += 0.03;
  std::vector<common::cq15> q(g.size());
  for (size_t i = 0; i < g.size(); ++i) q[i] = common::to_cq15(g[i]);
  return q;
}

void print_report(const char* what, const sim::Kernel_report& r) {
  std::printf("%s\n", what);
  std::printf("  cores %u | cycles %lu | instrs %lu | IPC %.2f\n", r.n_cores,
              static_cast<unsigned long>(r.cycles),
              static_cast<unsigned long>(r.instrs), r.ipc());
  std::printf("  stalls: raw %.1f%% | lsu %.1f%% | instr$ %.1f%% | ext %.1f%% "
              "| wfi %.1f%%\n",
              100 * r.frac(sim::Stall::raw), 100 * r.frac(sim::Stall::lsu),
              100 * r.frac(sim::Stall::icache),
              100 * r.frac(sim::Stall::extunit), 100 * r.frac(sim::Stall::wfi));
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const auto cfg = cli.get("--arch", "mempool") == "terapool"
                       ? arch::Cluster_config::terapool()
                       : arch::Cluster_config::mempool();
  const std::string kernel = cli.get("--kernel", "fft");
  const bool serial = cli.has("--serial");

  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  std::printf("%s: %u cores, %.0f KiB L1\n\n", cfg.name.c_str(), cfg.n_cores(),
              cfg.l1_words() * 4.0 / 1024.0);

  if (kernel == "fft") {
    const uint32_t n = static_cast<uint32_t>(cli.get_int("--size", 1024));
    if (serial) {
      kernels::Fft_serial fft(m, alloc, n, 1);
      fft.set_input(0, random_signal(n, 1));
      print_report("serial FFT", fft.run());
    } else {
      const uint32_t n_inst = std::max<uint32_t>(
          1, std::min(cfg.n_cores() / (n / 16),
                      static_cast<uint32_t>(cli.get_int("--inst", 64))));
      const uint32_t reps = static_cast<uint32_t>(cli.get_int("--reps", 1));
      kernels::Fft_parallel fft(m, alloc, n, n_inst, reps);
      for (uint32_t i = 0; i < n_inst; ++i) {
        for (uint32_t r = 0; r < reps; ++r) {
          fft.set_input(i, r, random_signal(n, i * 17 + r));
        }
      }
      char label[96];
      std::snprintf(label, sizeof label, "parallel FFT: %u x %u-pt (reps %u)",
                    n_inst, n, reps);
      print_report(label, fft.run());
    }
  } else if (kernel == "mmm") {
    const kernels::Mmm_dims d{
        static_cast<uint32_t>(cli.get_int("--m", 256)),
        static_cast<uint32_t>(cli.get_int("--k", 64)),
        static_cast<uint32_t>(cli.get_int("--p", 32))};
    kernels::Mmm mmm(m, alloc, d,
                     static_cast<uint32_t>(cli.get_int("--wr", 4)),
                     static_cast<uint32_t>(cli.get_int("--wc", 4)));
    mmm.set_a(random_signal(size_t{d.m} * d.k, 1));
    mmm.set_b(random_signal(size_t{d.k} * d.p, 2));
    const auto r = serial ? mmm.run_serial() : mmm.run_parallel();
    print_report(serial ? "serial MMM" : "parallel MMM", r);
    std::printf("  %.1f complex MACs/cycle\n",
                static_cast<double>(mmm.cmacs()) / r.cycles);
  } else if (kernel == "chol") {
    const uint32_t n = static_cast<uint32_t>(cli.get_int("--size", 32));
    if (serial) {
      kernels::Chol_serial chol(m, alloc, n, 1);
      chol.set_g(0, random_spd(n, 3));
      print_report("serial Cholesky", chol.run());
    } else if (n <= 4) {
      kernels::Chol_batch chol(m, alloc, n, 4, cfg.n_cores());
      for (uint32_t c = 0; c < cfg.n_cores(); ++c) {
        for (uint32_t i = 0; i < 4; ++i) chol.set_g(c, i, random_spd(n, c));
      }
      print_report("batched 4-per-core Cholesky", chol.run());
    } else {
      const uint32_t pairs = cfg.n_cores() / (n / 4);
      kernels::Chol_pair chol(m, alloc, n, pairs);
      for (uint32_t p = 0; p < pairs; ++p) {
        chol.set_g(p, 0, random_spd(n, 2 * p));
        chol.set_g(p, 1, random_spd(n, 2 * p + 1));
      }
      print_report("mirrored-pair Cholesky", chol.run());
    }
  } else if (kernel == "che" || kernel == "ne") {
    const uint32_t n_sc = static_cast<uint32_t>(cli.get_int("--size", 512));
    const uint32_t n_b = 32, n_l = 4;
    if (kernel == "che") {
      kernels::Che che(m, alloc, n_sc, n_b, n_l, cfg.n_cores());
      for (uint32_t l = 0; l < n_l; ++l) {
        che.set_pilot(l, random_signal(n_sc, l));
        che.set_y_sep(l, random_signal(size_t{n_sc} * n_b, 10 + l));
      }
      print_report("channel estimation (element-wise division)", che.run());
    } else {
      kernels::Ne ne(m, alloc, n_sc, n_b, n_l, cfg.n_cores());
      for (uint32_t l = 0; l < n_l; ++l) {
        ne.set_pilot(l, random_signal(n_sc, l));
      }
      ne.set_y(random_signal(size_t{n_sc} * n_b, 20));
      ne.set_h(random_signal(size_t{n_sc} * n_b * n_l, 21));
      print_report("noise estimation (autocorrelation)", ne.run());
    }
  } else {
    std::fprintf(stderr, "unknown --kernel %s (fft|mmm|chol|che|ne)\n",
                 kernel.c_str());
    return 2;
  }
  return 0;
}
