// Interactive kernel explorer: run any registry kernel on either cluster
// with chosen parameters and print the cycle/IPC/stall report.
//
//   ./examples/kernel_explorer --list
//   ./examples/kernel_explorer --kernel fft.parallel --arch terapool
//       --params n=1024,inst=4
//   ./examples/kernel_explorer --kernel mmm --params m=256,k=64,p=32
//   ./examples/kernel_explorer --kernel chol.pair --params n=32,mirrored=0
//   ./examples/kernel_explorer --kernel che --params sc=512,b=32,l=4
//
// Kernel and parameter names are exactly the registry's (see --list or
// runtime/registry.h); anything not given falls back to the kernel's
// defaults, with gang sizes resolved against the chosen cluster.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/cli.h"

int main(int argc, char** argv) {
  using namespace pp;
  common::Cli cli(argc, argv);

  if (cli.has("--list")) {
    std::printf("registered kernels:\n");
    for (const auto& [name, summary] : runtime::Registry::instance().list()) {
      std::printf("  %-16s %s\n", name.c_str(), summary.c_str());
    }
    return 0;
  }

  const auto cfg = bench::cluster_from_cli(cli);
  const std::string kernel = cli.get("--kernel", "fft.parallel");
  const auto params = runtime::Params::parse(cli.get("--params", ""));

  if (!runtime::Registry::instance().contains(kernel)) {
    std::fprintf(stderr, "unknown --kernel %s (try --list)\n", kernel.c_str());
    return 2;
  }

  std::printf("%s: %u cores, %.0f KiB L1\n\n", cfg.name.c_str(), cfg.n_cores(),
              cfg.l1_words() * 4.0 / 1024.0);

  const auto r = bench::measure_kernel(
      cfg, kernel, params, static_cast<uint64_t>(cli.get_int("--seed", 1)));
  std::printf("%s\n", r.desc.label().c_str());
  std::printf("  cores %u | cycles %lu | instrs %lu | IPC %.2f\n",
              r.rep.n_cores, static_cast<unsigned long>(r.rep.cycles),
              static_cast<unsigned long>(r.rep.instrs), r.rep.ipc());
  std::printf("  stalls: raw %.1f%% | lsu %.1f%% | instr$ %.1f%% | ext %.1f%% "
              "| wfi %.1f%%\n",
              100 * r.rep.frac(sim::Stall::raw),
              100 * r.rep.frac(sim::Stall::lsu),
              100 * r.rep.frac(sim::Stall::icache),
              100 * r.rep.frac(sim::Stall::extunit),
              100 * r.rep.frac(sim::Stall::wfi));
  if (r.desc.macs) {
    std::printf("  %.1f complex MACs/cycle\n",
                static_cast<double>(r.desc.macs) / r.rep.cycles);
  }
  return 0;
}
