// Sustained multi-cell PUSCH traffic through the streaming slot scheduler.
//
// Generates a deterministic stochastic workload (runtime::Traffic_source:
// per-cell Poisson arrivals, mixed numerology / UE count / QAM order) and
// serves it on a worker pool (runtime::Slot_scheduler), scoring every slot
// against its numerology slot budget (paper §II: a PUSCH slot must finish
// within 1 ms / 2^mu).
//
//   ./examples/pusch_serve                               # 2 cells, 64 slots
//   ./examples/pusch_serve --cells 2 --slots 128 --load 0.8
//       --mu 1,0 --fft 64,256 --ue 2,4 --qam 16,64 --snr 30
//       --backend reference --workers 4 --pipelined
//   ./examples/pusch_serve --backend sim --arch minipool --clock-ghz 0.02
//   ./examples/pusch_serve --shards 2 --placement load-aware
//       --overload degrade --load 1.5                    # sharded serving
//   ./examples/pusch_serve --channel tdl-a,flat --doppler 200
//       --snr 12 --max-harq 3 --harq-ber 0.02            # fading + HARQ
//   ./examples/pusch_serve --list                        # name catalog
//
// Cell i draws its parameters from position i (mod length) of the --mu,
// --fft, --ue, --qam, --snr, --load, --channel, --doppler and
// --delay-spread lists.  --channel picks each cell's fading profile
// (phy/channel.h: flat | tdl-a | tdl-c); --max-harq N closes the HARQ
// loop - slots decoding above --harq-ber re-enter the stream as chase-
// combined retransmissions, at most N per slot, admitted against the same
// capacity as the exogenous traffic.  --pipelined overlaps the
// front half (FFT + beamforming) of slot n+1 with the back half of slot n
// (host backends only); --intra N additionally splits every kernel inside
// the "parallel" backend.  Deadline metrics run on the deterministic
// virtual clock - simulated cycles at --clock-ghz on the sim backend, the
// analytic MAC model on host backends, drained by --servers virtual
// clusters - so miss counts and latency percentiles are bit-identical for
// any --workers and with --pipelined on or off (docs/DETERMINISM.md).
//
// Sharded serving (docs/DETERMINISM.md §8): --shards N runs N scheduler
// shards, each its own FCFS virtual-clock queue of --servers clusters;
// --placement picks how cells map onto shards and --overload puts an
// admission controller (drop / queue / degrade, with --queue-limit and
// --min-ue) in front of every shard's queue.  --json <path> emits the
// aggregate report in the pp-bench-report-v1 schema, including per-cell and
// per-shard admitted/dropped/degraded counters.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;

// Range checks on top of Cli's validated parsing, same readable error +
// exit-2 convention - out-of-range values must not reach the library
// layer's PP_CHECK aborts.
[[noreturn]] void bad_range(const char* flag, const char* what) {
  std::fprintf(stderr, "%s for %s\n", what, flag);
  std::exit(2);
}

phy::Qam qam_from_order(uint32_t order, const char* flag) {
  if (order != 4 && order != 16 && order != 64 && order != 256) {
    std::fprintf(stderr, "bad QAM order '%u' for %s (4|16|64|256)\n", order,
                 flag);
    std::exit(2);
  }
  return static_cast<phy::Qam>(order);
}

template <typename T>
const T& cycle(const std::vector<T>& v, size_t i) {
  return v[i % v.size()];
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  if (cli.has("--list")) {
    bench::print_catalog();
    return 0;
  }

  runtime::Traffic_config traffic;
  traffic.n_slots = cli.get_u32("--slots", 64);
  traffic.base_seed = cli.get_u32("--seed", 1);
  traffic.n_rx = cli.get_u32("--rx", 4);
  traffic.n_beams = cli.get_u32("--beams", 4);
  traffic.n_symb = cli.get_u32("--symb", 4);

  const auto mu = cli.get_u32_list("--mu", "1,0");
  const auto fft = cli.get_u32_list("--fft", "64");
  const auto ue = cli.get_u32_list("--ue", "2");
  const auto qam = cli.get_u32_list("--qam", "16");
  const auto snr = cli.get_double_list("--snr", "30");
  const auto load = cli.get_double_list("--load", "0.5");
  const auto budget_us = cli.get_double_list("--budget-us", "0");
  const auto channel = cli.get_str_list("--channel", "flat");
  const auto doppler = cli.get_double_list("--doppler", "0");
  const auto delay_spread = cli.get_double_list("--delay-spread", "4");

  const uint32_t n_cells = cli.get_u32("--cells", 2);
  traffic.cells.clear();
  for (uint32_t c = 0; c < n_cells; ++c) {
    runtime::Traffic_cell cell;
    cell.mu = cycle(mu, c);
    if (cell.mu > 6) bad_range("--mu", "numerology out of range (0..6)");
    cell.fft_size = cycle(fft, c);
    cell.n_ue = cycle(ue, c);
    cell.qam = qam_from_order(cycle(qam, c), "--qam");
    cell.snr_db = cycle(snr, c);
    cell.load = cycle(load, c);
    if (!(cell.load > 0.0)) bad_range("--load", "load must be positive");
    cell.budget_s = cycle(budget_us, c) * 1e-6;  // 0 = numerology budget
    if (cell.budget_s < 0.0) bad_range("--budget-us", "budget must be >= 0");
    cell.profile = bench::channel_by_name(cycle(channel, c));
    cell.doppler_hz = cycle(doppler, c);
    if (cell.doppler_hz < 0.0) bad_range("--doppler", "Doppler must be >= 0");
    cell.delay_spread = cycle(delay_spread, c);
    if (!(cell.delay_spread > 0.0)) {
      bad_range("--delay-spread", "delay spread must be positive");
    }
    traffic.cells.push_back(cell);
  }

  runtime::Scheduler_options opt;
  opt.backend = bench::backend_from_cli(cli);
  opt.workers = cli.get_u32("--workers", 0);
  opt.intra = cli.get_u32("--intra", 1);
  // --sim-shards N: run N concurrent simulated machines (sim backend only;
  // bit-identical for every N, see docs/DETERMINISM.md §5).  Distinct from
  // --shards, which splits the virtual-clock serving engine.
  opt.sim_shards = cli.get_u32("--sim-shards", 0);
  opt.pipelined = cli.has("--pipelined");
  opt.cluster = bench::cluster_from_cli(cli, "minipool");
  opt.keep_slots = false;  // the CLI only reports the roll-up
  opt.service_units = cli.get_u32("--servers", 1);
  opt.clock_ghz = cli.get_double("--clock-ghz", 1.0);
  if (!(opt.clock_ghz > 0.0)) {
    bad_range("--clock-ghz", "clock must be positive");
  }
  opt.shards = cli.get_u32("--shards", 1);
  if (opt.shards < 1) bad_range("--shards", "need at least one shard");
  opt.placement = bench::placement_from_cli(cli);
  opt.overload = bench::overload_from_cli(cli);
  opt.queue_limit = cli.get_u32("--queue-limit", 8);
  opt.degrade_min_ue = cli.get_u32("--min-ue", 1);
  if (opt.degrade_min_ue < 1) {
    bad_range("--min-ue", "the degrade floor must keep one UE layer");
  }
  // HARQ retransmission loop: failed decodes (BER above --harq-ber) re-enter
  // the stream as retransmissions with chase combining, at most --max-harq
  // per slot.  0 keeps the pre-HARQ open-loop engine.
  opt.max_harq = cli.get_u32("--max-harq", 0);
  opt.harq_ber = cli.get_double("--harq-ber", 0.0);
  if (opt.harq_ber < 0.0 || opt.harq_ber > 1.0) {
    bad_range("--harq-ber", "BER threshold must be in [0, 1]");
  }

  const runtime::Traffic_source source(traffic);
  std::printf("serve: %llu slots over %zu cell%s on '%s' (%s cluster), "
              "%u shard%s (%s placement, %s overload) of %u virtual "
              "server%s at %.3f GHz\n",
              static_cast<unsigned long long>(source.n_slots()),
              traffic.cells.size(), traffic.cells.size() == 1 ? "" : "s",
              opt.backend.c_str(), opt.cluster.name.c_str(), opt.shards,
              opt.shards == 1 ? "" : "s", opt.placement.c_str(),
              opt.overload.c_str(), opt.service_units,
              opt.service_units == 1 ? "" : "s", opt.clock_ghz);
  const runtime::Slot_scheduler scheduler(opt);
  const auto res = scheduler.run(source);
  std::fputs(res.str().c_str(), stdout);

  // Machine-readable aggregate: the deterministic virtual-clock metrics
  // (slot counts, deadline misses, latency percentiles, bit-exact EVM/BER)
  // gate the baseline; wall-clock throughput is informational.
  auto rep = bench::make_report("pusch_serve", "[§II]",
                                "sustained multi-cell PUSCH traffic");
  rep.add_meta("backend", res.backend);
  rep.add_meta("cluster", opt.cluster.name);
  rep.add_meta("workers", std::to_string(res.workers));
  rep.add_meta("pipelined", res.pipelined ? "yes" : "no");
  rep.add_meta("servers", std::to_string(opt.service_units));
  rep.add_meta("shards", std::to_string(opt.shards));
  rep.add_meta("placement", res.placement);
  rep.add_meta("overload", res.overload);
  if (opt.max_harq > 0) {
    rep.add_meta("max_harq", std::to_string(opt.max_harq));
  }
  for (size_t c = 0; c < res.groups.size(); ++c) {
    const auto& g = res.groups[c];
    auto& row = rep.add_row(g.label);
    row.cluster = opt.cluster.name;
    row.metric("slots", static_cast<double>(g.slots), "count", true, "exact");
    row.metric("shard", static_cast<double>(g.shard), "id", true, "exact");
    row.metric("admitted", static_cast<double>(g.admitted), "count", true,
               "exact");
    row.metric("dropped", static_cast<double>(g.dropped), "count", true,
               "exact");
    row.metric("degraded", static_cast<double>(g.degraded), "count", true,
               "exact");
    row.metric("evm", g.evm, "rms", true, "exact");
    row.metric("ber", g.ber, "rate", true, "exact");
    row.metric("deadline_misses", static_cast<double>(g.deadline_misses),
               "count", true, "lower");
    row.metric("latency_p50", 1e6 * g.latency.percentile(0.50), "us", true,
               "lower");
    row.metric("latency_p99", 1e6 * g.latency.percentile(0.99), "us", true,
               "lower");
    if (opt.max_harq > 0) {
      row.metric("harq_retx", static_cast<double>(g.harq_retx), "count", true,
                 "exact");
      row.metric("harq_recovered", static_cast<double>(g.harq_recovered),
                 "count", true, "exact");
      row.metric("harq_exhausted", static_cast<double>(g.harq_exhausted),
                 "count", true, "exact");
    }
    if (g.cycles) {
      row.metric("cycles", static_cast<double>(g.cycles), "cycles");
    }
  }
  for (size_t s = 0; s < res.shards.size(); ++s) {
    const auto& sh = res.shards[s];
    auto& row = rep.add_row("shard" + std::to_string(s));
    row.cluster = opt.cluster.name;
    row.metric("groups", static_cast<double>(sh.groups), "count", true,
               "exact");
    row.metric("slots", static_cast<double>(sh.slots), "count", true, "exact");
    row.metric("admitted", static_cast<double>(sh.admitted), "count", true,
               "exact");
    row.metric("dropped", static_cast<double>(sh.dropped), "count", true,
               "exact");
    row.metric("degraded", static_cast<double>(sh.degraded), "count", true,
               "exact");
    row.metric("deadline_misses", static_cast<double>(sh.deadline_misses),
               "count", true, "lower");
    row.metric("latency_p99", 1e6 * sh.latency.percentile(0.99), "us", true,
               "lower");
  }
  auto& totals = rep.add_row("totals");
  totals.metric("total_slots", static_cast<double>(res.total_slots), "count",
                true, "exact");
  totals.metric("admitted", static_cast<double>(res.admitted), "count", true,
                "exact");
  totals.metric("dropped", static_cast<double>(res.dropped), "count", true,
                "exact");
  totals.metric("degraded", static_cast<double>(res.degraded), "count", true,
                "exact");
  totals.metric("deadline_slots", static_cast<double>(res.deadline_slots),
                "count", true, "exact");
  totals.metric("deadline_misses", static_cast<double>(res.deadline_misses),
                "count", true, "lower");
  totals.metric("latency_p50", 1e6 * res.latency.percentile(0.50), "us", true,
                "lower");
  totals.metric("latency_p99", 1e6 * res.latency.percentile(0.99), "us", true,
                "lower");
  totals.metric("latency_p999", 1e6 * res.latency.percentile(0.999), "us",
                true, "lower");
  totals.metric("virtual_makespan_ms", 1e3 * res.virtual_makespan_s, "ms",
                true, "lower");
  if (opt.max_harq > 0) {
    totals.metric("harq_retx", static_cast<double>(res.harq_retx), "count",
                  true, "exact");
    totals.metric("harq_recovered", static_cast<double>(res.harq_recovered),
                  "count", true, "exact");
    totals.metric("harq_exhausted", static_cast<double>(res.harq_exhausted),
                  "count", true, "exact");
  }
  totals.metric("slots_per_s", res.slots_per_second(), "slots/s", false,
                "info");
  totals.metric("wall_service_p99_us",
                1e6 * res.wall_service.percentile(0.99), "us", false, "info");
  return bench::emit(rep, cli);
}
