// Scenario sweep CLI: BER/EVM-vs-SNR curves over a grid of numerologies,
// UE counts and QAM orders, executed slot-parallel on a host thread pool
// (runtime::Sweep_runner).
//
//   ./examples/pusch_sweep                                   # small default grid
//   ./examples/pusch_sweep --backend reference --workers 8
//       --fft 64,256,1024 --ue 2,4 --qam 4,16 --snr 0:30:6 --slots 2
//   ./examples/pusch_sweep --backend sim --arch minipool --fft 64 --snr 20,30
//   ./examples/pusch_sweep --backend parallel --workers 2 --intra 4
//
// --backend picks sim, reference, or parallel (the intra-slot parallel host
// backend; --intra N sets its per-slot worker count, composing with the
// slot-level --workers).  List flags take comma-separated values; --snr
// also accepts lo:hi:step.  Per-slot seeds are Rng::derive_seed(--seed,
// slot_index), so results are bit-identical for any --workers and --intra
// counts (docs/DETERMINISM.md).  --list prints the registered clusters,
// backends, pipeline presets and registry kernels instead of running;
// unknown --arch/--backend names error with the same lists.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/sweep.h"

namespace {

using namespace pp;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

// Readable parse failures for the float-valued --snr flag (integer flags go
// through Cli::get_u32/get_u32_list, which share this behavior): report the
// offending token and exit 2.
[[noreturn]] void bad_token(const char* flag, const std::string& tok) {
  std::fprintf(stderr, "bad value '%s' for %s\n", tok.c_str(), flag);
  std::exit(2);
}

double parse_double(const char* flag, const std::string& tok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size()) bad_token(flag, tok);
  return v;
}

// "a,b,c" or "lo:hi:step" (inclusive of hi, step > 0).
std::vector<double> parse_snr_list(const std::string& s) {
  std::vector<double> out;
  if (s.find(':') != std::string::npos) {
    const auto parts = split(s, ':');
    const double lo = parse_double("--snr", parts[0]);
    const double hi = parts.size() > 1 ? parse_double("--snr", parts[1]) : lo;
    const double step =
        parts.size() > 2 ? parse_double("--snr", parts[2]) : 1.0;
    if (step <= 0.0) bad_token("--snr", s);
    for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
    return out;
  }
  for (const auto& tok : split(s, ',')) {
    out.push_back(parse_double("--snr", tok));
  }
  return out;
}

std::vector<phy::Qam> parse_qam_list(const std::vector<uint32_t>& orders,
                                     const std::string& raw) {
  std::vector<phy::Qam> out;
  for (const uint32_t order : orders) {
    if (order != 4 && order != 16 && order != 64 && order != 256) {
      bad_token("--qam", raw);
    }
    out.push_back(static_cast<phy::Qam>(order));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  if (cli.has("--list")) {
    bench::print_catalog();
    return 0;
  }

  runtime::Sweep_grid grid;
  grid.fft_sizes = cli.get_u32_list("--fft", "64,256");
  grid.ue_counts = cli.get_u32_list("--ue", "2");
  grid.qam_orders =
      parse_qam_list(cli.get_u32_list("--qam", "16"), cli.get("--qam", "16"));
  grid.snr_db = parse_snr_list(cli.get("--snr", "10:30:5"));
  grid.slots_per_point = cli.get_u32("--slots", 1);
  grid.n_rx = cli.get_u32("--rx", 4);
  grid.n_beams = cli.get_u32("--beams", 4);
  grid.n_symb = cli.get_u32("--symb", 4);
  grid.base_seed = cli.get_u32("--seed", 1);
  // Channel profile shared by every grid point (flat | tdl-a | tdl-c).
  grid.profile = bench::channel_from_cli(cli);
  grid.doppler_hz = cli.get_double("--doppler", 0.0);
  grid.delay_spread = cli.get_double("--delay-spread", 4.0);

  runtime::Sweep_options opt;
  opt.backend = bench::backend_from_cli(cli);
  opt.workers = cli.get_u32("--workers", 0);
  opt.intra = cli.get_u32("--intra", 1);
  // --sim-shards N: run N concurrent simulated machines (sim backend only;
  // bit-identical for every N, see docs/DETERMINISM.md §5).
  opt.sim_shards = cli.get_u32("--sim-shards", 0);
  opt.cluster = bench::cluster_from_cli(cli, "minipool");
  opt.keep_slots = false;  // the CLI only reports the roll-up

  const runtime::Sweep_runner runner(opt);
  std::printf("sweep: %llu points x %u slots on '%s' (%s cluster)\n",
              static_cast<unsigned long long>(grid.n_points()),
              grid.slots_per_point, opt.backend.c_str(),
              opt.cluster.name.c_str());
  const auto res = runner.run(grid);
  std::fputs(res.str().c_str(), stdout);
  return 0;
}
