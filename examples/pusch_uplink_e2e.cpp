// End-to-end software-defined PUSCH uplink through the runtime Pipeline.
//
// Generates a complete uplink scenario (UE payloads, QAM grids, pilots,
// Rayleigh channel, AWGN, time-domain antenna signals), builds the uplink
// Pipeline preset, and executes it on the selected backend(s):
//
//   sim        the paper's fixed-point kernels on the simulated cluster
//              (per-stage cycles, EVM/BER of the Q15 chain)
//   reference  the double-precision host models (no cycles, instant)
//   parallel   the host models split across --intra workers (default 1,
//              0 = all hardware threads - same default as pusch_sweep);
//              bits equal to reference by contract (docs/DETERMINISM.md)
//   fixed      the sim backend's Q15 kernel math on the host worker pool;
//              bit-identical to sim (same EVM/BER/sigma2_hat) at host speed
//
// With --backend both (the default) the same Pipeline call runs on the sim
// and reference backends and the recovered payloads are cross-checked;
// --backend all adds the parallel and fixed backends to the cross-check.
//
//   ./examples/pusch_uplink_e2e [--arch mempool|terapool] [--ue N]
//       [--qam 16] [--backend sim|reference|parallel|fixed|both|all]
//       [--intra N] [--chol-batch N] [--list]
//
// --list prints the registered clusters, backends, pipeline presets and
// registry kernels instead of running; unknown --arch/--backend names
// error with the same lists.
//
// The scenario is a scaled-down slot (256-pt grid, 16 antennas, 8 beams) so
// the example runs in seconds; bench_fig9c_usecase covers the full-size
// use case.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "runtime/backend.h"
#include "runtime/presets.h"

int main(int argc, char** argv) {
  using namespace pp;
  common::Cli cli(argc, argv);
  if (cli.has("--list")) {
    bench::print_catalog();
    return 0;
  }

  const auto cluster = bench::cluster_from_cli(cli);

  phy::Uplink_config cfg;
  cfg.n_sc = 256;
  cfg.fft_size = 256;
  cfg.n_rx = 16;
  cfg.n_beams = 8;
  cfg.n_ue = static_cast<uint32_t>(cli.get_int("--ue", 2));
  cfg.n_symb = 6;
  cfg.n_pilot_symb = 2;
  cfg.sigma2 = 1e-7;
  cfg.ue_power = 0.08;
  cfg.seed = static_cast<uint64_t>(cli.get_int("--seed", 2023));
  // Fading profile (flat | tdl-a | tdl-c) with optional Doppler evolution.
  cfg.profile = bench::channel_from_cli(cli);
  cfg.doppler_hz = cli.get_double("--doppler", 0.0);
  switch (cli.get_int("--qam", 16)) {
    case 4: cfg.qam = phy::Qam::qpsk; break;
    case 64: cfg.qam = phy::Qam::qam64; break;
    case 256: cfg.qam = phy::Qam::qam256; break;
    default: cfg.qam = phy::Qam::qam16; break;
  }

  std::printf("scenario: %u sub-carriers, %u antennas -> %u beams, %u UEs, "
              "%u symbols (%u pilot), %u-QAM\n",
              cfg.n_sc, cfg.n_rx, cfg.n_beams, cfg.n_ue, cfg.n_symb,
              cfg.n_pilot_symb, static_cast<uint32_t>(cfg.qam));
  const phy::Uplink_scenario sc(cfg);

  runtime::Uplink_options opt;
  opt.chol_symb_batch =
      static_cast<uint32_t>(cli.get_int("--chol-batch", 1));
  const auto pipeline = runtime::uplink_pipeline(cluster, opt);

  const std::string which = cli.get("--backend", "both");
  if (which != "sim" && which != "reference" && which != "parallel" &&
      which != "fixed" && which != "both" && which != "all") {
    std::fprintf(stderr,
                 "unknown --backend %s (sim|reference|parallel|fixed|both|"
                 "all; see --list)\n",
                 which.c_str());
    return 2;
  }
  const uint32_t intra = cli.get_u32("--intra", 1);
  std::vector<runtime::Slot_result> results;
  for (const auto* name : {"reference", "sim", "parallel", "fixed"}) {
    const bool selected =
        which == name || which == "all" ||
        (which == "both" &&
         (std::string(name) == "sim" || std::string(name) == "reference"));
    if (!selected) continue;
    auto backend = runtime::make_backend(name, intra);
    results.push_back(pipeline.execute(sc, *backend));
    const auto& res = results.back();
    std::printf("\n%s backend (%s): EVM %5.2f%% | BER %.2e | sigma2_hat %.2e\n",
                res.backend.c_str(),
                backend->cycle_accurate() ? cluster.name.c_str() : "host",
                100 * res.evm, res.ber, res.sigma2_hat);
    if (backend->cycle_accurate()) {
      std::printf("cycles per stage (whole slot):\n");
      for (const auto& st : res.stages) {
        std::printf("  %-16s %10lu cycles over %3lu kernel runs\n",
                    st.name.c_str(), static_cast<unsigned long>(st.cycles),
                    static_cast<unsigned long>(st.runs));
      }
      std::printf("  %-16s %10lu cycles (%.3f ms at 1 GHz)\n", "total",
                  static_cast<unsigned long>(res.total_cycles()),
                  res.total_cycles() * 1e-6);
    }
  }

  bool ok = true;
  for (const auto& res : results) ok &= res.ber == 0.0;
  if (results.size() >= 2) {
    bool payload_match = true;
    for (size_t i = 1; i < results.size(); ++i) {
      for (uint32_t l = 0; l < cfg.n_ue; ++l) {
        payload_match &= results[0].bits[l] == results[i].bits[l];
      }
    }
    std::printf("\npayloads match across backends: %s\n",
                payload_match ? "yes" : "NO");
    ok &= payload_match;
  }
  return ok ? 0 : 1;
}
