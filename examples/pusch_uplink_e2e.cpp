// End-to-end software-defined PUSCH uplink on the simulated cluster.
//
// Generates a complete uplink scenario (UE payloads, QAM grids, pilots,
// Rayleigh channel, AWGN, time-domain antenna signals), runs the paper's
// full lower-PHY chain with the *simulated fixed-point kernels* - OFDM FFT,
// beamforming MMM, CHE, NE, MIMO Cholesky + solves - and compares the
// recovered payloads and EVM against the double-precision golden receiver.
//
//   ./examples/pusch_uplink_e2e [--arch mempool|terapool] [--ue N] [--qam 16]
//
// The scenario is a scaled-down slot (256-pt grid, 16 antennas, 8 beams) so
// the example runs in seconds; bench_fig9c_usecase covers the full-size
// use case.
#include <cstdio>

#include "common/cli.h"
#include "phy/uplink.h"
#include "pusch/sim_chain.h"

int main(int argc, char** argv) {
  using namespace pp;
  common::Cli cli(argc, argv);

  const std::string arch_name = cli.get("--arch", "mempool");
  const auto cluster = arch_name == "terapool"
                           ? arch::Cluster_config::terapool()
                           : arch::Cluster_config::mempool();

  phy::Uplink_config cfg;
  cfg.n_sc = 256;
  cfg.fft_size = 256;
  cfg.n_rx = 16;
  cfg.n_beams = 8;
  cfg.n_ue = static_cast<uint32_t>(cli.get_int("--ue", 2));
  cfg.n_symb = 6;
  cfg.n_pilot_symb = 2;
  cfg.sigma2 = 1e-7;
  cfg.ue_power = 0.08;
  cfg.seed = static_cast<uint64_t>(cli.get_int("--seed", 2023));
  switch (cli.get_int("--qam", 16)) {
    case 4: cfg.qam = phy::Qam::qpsk; break;
    case 64: cfg.qam = phy::Qam::qam64; break;
    case 256: cfg.qam = phy::Qam::qam256; break;
    default: cfg.qam = phy::Qam::qam16; break;
  }

  std::printf("scenario: %u sub-carriers, %u antennas -> %u beams, %u UEs, "
              "%u symbols (%u pilot), %u-QAM\n",
              cfg.n_sc, cfg.n_rx, cfg.n_beams, cfg.n_ue, cfg.n_symb,
              cfg.n_pilot_symb, static_cast<uint32_t>(cfg.qam));
  const phy::Uplink_scenario sc(cfg);

  // Golden double-precision receiver.
  const auto golden = phy::golden_receive(sc);
  std::printf("\ngolden receiver:    EVM %5.2f%% | BER %.2e | sigma2_hat %.2e\n",
              100 * golden.evm, golden.ber, golden.sigma2_hat);

  // Simulated fixed-point chain on the cluster.
  const auto simres = pusch::run_sim_uplink(sc, cluster);
  std::printf("simulated %s: EVM %5.2f%% | BER %.2e | sigma2_hat %.2e\n",
              cluster.name.c_str(), 100 * simres.evm, simres.ber,
              simres.sigma2_hat);

  bool payload_match = true;
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    payload_match &= golden.bits[l] == simres.bits[l];
  }
  std::printf("payloads match golden receiver: %s\n",
              payload_match ? "yes" : "NO");

  std::printf("\nsimulated cycles per stage (whole slot):\n");
  for (const auto& st : simres.stages) {
    std::printf("  %-16s %10lu cycles over %3u kernel runs\n", st.name.c_str(),
                static_cast<unsigned long>(st.cycles), st.runs);
  }
  std::printf("  %-16s %10lu cycles (%.3f ms at 1 GHz)\n", "total",
              static_cast<unsigned long>(simres.total_cycles()),
              simres.total_cycles() * 1e-6);
  return simres.ber == 0.0 && payload_match ? 0 : 1;
}
