// Quickstart: simulate the paper's parallel FFT kernel on MemPool.
//
// Builds a 256-core MemPool machine, runs sixteen 256-point FFTs in
// parallel (one gang of 16 cores each), checks the result against the
// reference DFT, and prints the cycle/IPC report plus the speedup over a
// single-core run of the same work.
//
//   ./examples/quickstart
#include <cstdio>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/fft.h"

int main() {
  using namespace pp;

  const auto cfg = arch::Cluster_config::mempool();
  std::printf("cluster: %s (%u cores, %u groups x %u tiles x %u cores, "
              "%u banks)\n",
              cfg.name.c_str(), cfg.n_cores(), cfg.n_groups,
              cfg.tiles_per_group, cfg.cores_per_tile, cfg.n_banks());

  // One machine hosts both the parallel batch and the serial baseline.
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());

  const uint32_t n = 256;
  const uint32_t n_ffts = 16;
  kernels::Fft_parallel fft(m, alloc, n, n_ffts);
  kernels::Fft_serial serial(m, alloc, n, 1);

  // Random Q1.15 input signals.
  common::Rng rng(1);
  std::vector<std::vector<common::cq15>> inputs(n_ffts);
  for (uint32_t i = 0; i < n_ffts; ++i) {
    inputs[i].resize(n);
    for (auto& v : inputs[i]) v = common::to_cq15(rng.cnormal() * 0.2);
    fft.set_input(i, 0, inputs[i]);
  }
  serial.set_input(0, inputs[0]);

  const auto par = fft.run();
  const auto ser = serial.run();

  // Verify one instance against the double-precision DFT.
  std::vector<ref::cd> x(n);
  for (uint32_t i = 0; i < n; ++i) x[i] = common::to_cd(inputs[0][i]);
  const auto want = ref::dft(x);
  const auto got = fft.output(0, 0);
  std::vector<ref::cd> got_d(n);
  for (uint32_t i = 0; i < n; ++i) got_d[i] = common::to_cd(got[i]);
  std::printf("fixed-point accuracy: %.1f dB SQNR vs reference DFT\n",
              ref::sqnr_db(want, got_d));

  std::printf("\nparallel: %u FFTs x %u points on %u cores\n", n_ffts, n,
              par.n_cores);
  std::printf("  cycles %lu | IPC %.2f | raw %.1f%% lsu %.1f%% wfi %.1f%%\n",
              static_cast<unsigned long>(par.cycles), par.ipc(),
              100 * par.frac(sim::Stall::raw), 100 * par.frac(sim::Stall::lsu),
              100 * par.frac(sim::Stall::wfi));
  std::printf("serial: 1 FFT x %u points on 1 core -> %lu cycles\n", n,
              static_cast<unsigned long>(ser.cycles));
  std::printf("speedup vs one core doing all %u FFTs: %.0fx (limit %u)\n",
              n_ffts,
              static_cast<double>(ser.cycles) * n_ffts / par.cycles,
              par.n_cores);
  return 0;
}
