// Quickstart: drive a kernel through the runtime registry, then a whole
// PUSCH slot through a Pipeline on both backends.
//
// Part 1 instantiates the paper's parallel FFT kernel by name
// ("fft.parallel") on a 256-core MemPool machine, runs sixteen 256-point
// FFTs in parallel, checks one output against the reference DFT, and prints
// the cycle/IPC report plus the speedup over a single-core run.
//
// Part 2 builds the end-to-end uplink pipeline preset and executes the same
// scaled-down scenario on the cycle-approximate "sim" backend and on the
// double-precision "reference" backend, showing the golden cross-check.
//
//   ./examples/quickstart
#include <cstdio>

#include "baseline/reference.h"
#include "runtime/backend.h"
#include "runtime/presets.h"
#include "runtime/registry.h"

int main() {
  using namespace pp;

  const auto cfg = arch::Cluster_config::mempool();
  std::printf("cluster: %s (%u cores, %u groups x %u tiles x %u cores, "
              "%u banks)\n",
              cfg.name.c_str(), cfg.n_cores(), cfg.n_groups,
              cfg.tiles_per_group, cfg.cores_per_tile, cfg.n_banks());

  // ---- part 1: one kernel through the registry ------------------------
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());

  const uint32_t n = 256;
  const uint32_t n_ffts = 16;
  auto fft = runtime::make_kernel(
      "fft.parallel", m, alloc,
      runtime::Params().set("n", n).set("inst", n_ffts));
  auto serial = runtime::make_kernel("fft.serial", m, alloc,
                                     runtime::Params().set("n", n));

  // Random Q1.15 input signals, bound by (port, slot).
  common::Rng rng(1);
  std::vector<std::vector<common::cq15>> inputs(n_ffts);
  for (uint32_t i = 0; i < n_ffts; ++i) {
    inputs[i].resize(n);
    for (auto& v : inputs[i]) v = common::to_cq15(rng.cnormal() * 0.2);
    fft->bind("x", i, inputs[i]);
  }
  serial->bind("x", 0, inputs[0]);

  const auto par = fft->launch();
  const auto ser = serial->launch();

  // Verify one instance against the double-precision DFT.
  std::vector<ref::cd> x(n);
  for (uint32_t i = 0; i < n; ++i) x[i] = common::to_cd(inputs[0][i]);
  const auto want = ref::dft(x);
  const auto got = fft->fetch("y", 0);
  std::vector<ref::cd> got_d(n);
  for (uint32_t i = 0; i < n; ++i) got_d[i] = common::to_cd(got[i]);
  std::printf("fixed-point accuracy: %.1f dB SQNR vs reference DFT\n",
              ref::sqnr_db(want, got_d));

  std::printf("\nparallel: %u FFTs x %u points on %u cores\n", n_ffts, n,
              par.n_cores);
  std::printf("  cycles %lu | IPC %.2f | raw %.1f%% lsu %.1f%% wfi %.1f%%\n",
              static_cast<unsigned long>(par.cycles), par.ipc(),
              100 * par.frac(sim::Stall::raw), 100 * par.frac(sim::Stall::lsu),
              100 * par.frac(sim::Stall::wfi));
  std::printf("serial: 1 FFT x %u points on 1 core -> %lu cycles\n", n,
              static_cast<unsigned long>(ser.cycles));
  std::printf("speedup vs one core doing all %u FFTs: %.0fx (limit %u)\n",
              n_ffts,
              static_cast<double>(ser.cycles) * n_ffts / par.cycles,
              par.n_cores);

  // ---- part 2: a whole slot through the Pipeline, on both backends ----
  phy::Uplink_config ucfg;
  ucfg.n_sc = 64;
  ucfg.fft_size = 64;
  ucfg.n_rx = 4;
  ucfg.n_beams = 4;
  ucfg.n_ue = 2;
  ucfg.n_symb = 4;
  ucfg.n_pilot_symb = 2;
  ucfg.qam = phy::Qam::qpsk;
  ucfg.sigma2 = 1e-7;
  ucfg.ue_power = 0.08;
  const phy::Uplink_scenario sc(ucfg);

  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());
  std::printf("\npipeline '%s' on a %u-core cluster:\n",
              pipeline.name().c_str(), pipeline.cluster().n_cores());
  for (const auto& backend_name : {"sim", "reference"}) {
    auto backend = runtime::make_backend(backend_name);
    const auto res = pipeline.execute(sc, *backend);
    std::printf("  %-9s backend: EVM %5.2f%% | BER %.2e | %lu cycles\n",
                res.backend.c_str(), 100 * res.evm, res.ber,
                static_cast<unsigned long>(res.total_cycles()));
  }
  return 0;
}
