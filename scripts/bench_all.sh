#!/usr/bin/env bash
# Runs the benchmark suite with --json, merges the per-bench reports into
# one BENCH_summary.json (examples/bench_merge), and optionally diffs the
# summary against a committed baseline (scripts/bench_compare.py).
#
#   scripts/bench_all.sh --quick                  # CI smoke subset (seconds)
#   scripts/bench_all.sh --full                   # whole figure suite
#   scripts/bench_all.sh --quick --compare bench/baselines/quick.json
#
# Flags:
#   --quick | --full      subset selection (default --quick)
#   --build-dir DIR       CMake build tree with the bench binaries (build)
#   --out-dir DIR         where BENCH_*.json + logs land
#                         (default <build-dir>/bench-reports)
#   --compare BASELINE    run bench_compare.py against BASELINE after merging
#   --threshold T         relative tolerance for the compare step (0.02)
#
# Per-bench stdout goes to <out-dir>/<name>.log; the JSON reports are
# BENCH_<name>.json.  Exits non-zero if any bench fails, the merge fails,
# or the compare step finds a regression.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=quick
BUILD_DIR=build
OUT_DIR=""
BASELINE=""
THRESHOLD=0.02
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) MODE=quick; shift ;;
    --full) MODE=full; shift ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --compare) BASELINE="$2"; shift 2 ;;
    --threshold) THRESHOLD="$2"; shift 2 ;;
    *) echo "bench_all.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done
OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench-reports}"
mkdir -p "$OUT_DIR"
# Stale reports (including a previous BENCH_summary.json, which the merge
# glob would otherwise pick up) must not leak into this run's summary.
rm -f "$OUT_DIR"/BENCH_*.json

if [[ ! -x "$BUILD_DIR/examples/bench_merge" ]]; then
  echo "bench_all.sh: $BUILD_DIR/examples/bench_merge missing - build first" >&2
  exit 2
fi

# run <name> <binary> [args...]: one bench -> BENCH_<name>.json + <name>.log
run() {
  local name="$1" bin="$2"
  shift 2
  echo "bench_all: $name"
  "$BUILD_DIR/bench/$bin" "$@" --json "$OUT_DIR/BENCH_$name.json" \
      > "$OUT_DIR/$name.log"
}

# The quick subset keeps to the benches that finish in a second or two and
# whose reports are dominated by deterministic (host-independent) metrics -
# it is the subset the committed baseline bench/baselines/quick.json pins.
run bench_table1_complexity bench_table1_complexity
run bench_fig3_stage_share bench_fig3_stage_share
run bench_fig4_access_latency bench_fig4_access_latency
run bench_fig8c_cholesky_ipc bench_fig8c_cholesky_ipc
# The full Fig. 9c roll-up - including the TeraPool rows - rides in the
# quick subset since the simulator fast path (docs/DETERMINISM.md §5)
# brought the whole binary under a second.
run bench_fig9c_usecase bench_fig9c_usecase
run bench_ablation_barrier bench_ablation_barrier
run bench_throughput_sweep bench_throughput_sweep \
    --slots 1 --snr-points 2 --fft 64,256
run bench_parallel_scaling bench_parallel_scaling \
    --workers 1,2 --fft 256 --ffts 8 --rows 256 --batches 128
# Fixed-point host backend: Q15 scalar vs. SIMD vs. double reference; the
# wall times are host-dependent, the scalar/SIMD parity bit gates.
run bench_fixed_host bench_fixed_host --fft 256 --symb 4
# Streaming deadline latency at a fixed simulated load: slot counts, miss
# counts and virtual-clock percentiles are deterministic and gate the
# baseline.
run bench_serve_latency bench_serve_latency --slots 24
# Capacity search over the sharded serving engine: virtual-only probes, so
# the whole binary search is deterministic and the Gb/s-per-cluster
# headline gates the baseline exactly.
run bench_capacity bench_capacity \
    --slots 160 --shards 2 --placement load-aware --iters 12
# Fading scenario mixes with the HARQ loop closed: per-cell BER, admission
# and HARQ counters are deterministic and gate the baseline exactly, and
# the bench itself re-checks worker invariance.
run bench_scenario_mix bench_scenario_mix

if [[ "$MODE" == "full" ]]; then
  run bench_fig5_fft_locality bench_fig5_fft_locality
  run bench_fig8a_fft_ipc bench_fig8a_fft_ipc
  run bench_fig8b_mmm_ipc bench_fig8b_mmm_ipc
  run bench_fig9_speedup bench_fig9_speedup
  run bench_ablation_mmm_window bench_ablation_mmm_window
  run bench_ablation_cholesky_mirror bench_ablation_cholesky_mirror
  run bench_ablation_isa bench_ablation_isa
  # Sweep across the three cluster configs on the sim backend - the
  # reference backend ignores the cluster, so only the sim backend's
  # per-point cycle counts actually differ per arch.
  for arch in mempool minipool terapool; do
    # minipool (16 cores, small L1) only fits the 64-pt scenario.
    fft=64,256
    [[ "$arch" == "minipool" ]] && fft=64
    run "bench_throughput_sweep_$arch" bench_throughput_sweep \
        --backend sim --arch "$arch" --fft "$fft" --snr-points 2 --slots 1
  done
  # Reference-backend throughput at the default grid (arch-independent).
  run bench_throughput_sweep_reference bench_throughput_sweep
  # Intra-slot scaling at the paper-style 1/2/8 worker ladder.
  run bench_parallel_scaling_1_2_8 bench_parallel_scaling --workers 1,2,8
  # Streaming latency on the host models (analytic MAC service model) with
  # a longer traffic trace.
  run bench_serve_latency_reference bench_serve_latency \
      --backend reference --slots 96
  # Host microbenchmarks (optional target: needs google-benchmark).
  if [[ -x "$BUILD_DIR/bench/bench_wallclock_golden" ]]; then
    run bench_wallclock_golden bench_wallclock_golden
  fi
fi

"$BUILD_DIR/examples/bench_merge" --out "$OUT_DIR/BENCH_summary.json" \
    "$OUT_DIR"/BENCH_*.json
echo "bench_all: summary at $OUT_DIR/BENCH_summary.json"

if [[ -n "$BASELINE" ]]; then
  python3 scripts/bench_compare.py "$BASELINE" "$OUT_DIR/BENCH_summary.json" \
      --threshold "$THRESHOLD"
fi
