#!/usr/bin/env python3
"""Diff two puschpool benchmark summaries and flag metric regressions.

Usage:
    python3 scripts/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.02] [--show-all]

Inputs are either merged summaries ("pp-bench-summary-v1", the output of
bench_all.sh / bench_merge) or single bench reports ("pp-bench-report-v1",
the --json output of one bench binary).

Gating rule (docs/DETERMINISM.md §4): a metric is compared only when BOTH
sides mark it deterministic and its "better" direction is not "info".
Wall-clock metrics are host-dependent and never gate.  Directions:

    lower   regression = value increased by more than --threshold (relative)
    higher  regression = value decreased by more than --threshold (relative)
    exact   regression = any difference beyond --exact-epsilon (default
            1e-12 relative, absolute near zero) - golden values, with just
            enough slack to absorb last-ULP libm differences between hosts
            (std::sin/cos are not correctly rounded everywhere)

Improvements and benign changes are listed but do not fail; metrics or rows
present on only one side are warnings.  Exit status: 0 = no regressions,
1 = at least one regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def usage_error(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        usage_error(f"cannot load {path}: {e}")
    schema = doc.get("schema", "")
    if schema == "pp-bench-summary-v1":
        reports = doc.get("reports", [])
    elif schema == "pp-bench-report-v1":
        reports = [doc]
    else:
        usage_error(f"{path}: unknown schema {schema!r}")
    return doc, reports


def index_metrics(reports):
    """(report id, row, metric) -> metric dict.

    The report id prefers the merge-time "source" tag (unique per input
    file) over the "bench" name: one binary run under different flags
    contributes several reports to a --full summary, and keying on the
    bench name alone would silently collapse them.  Duplicate keys are a
    summary defect, not something to hide - collect them for a warning.
    """
    out, dups = {}, []
    for rep in reports:
        rep_id = rep.get("source") or rep.get("bench", "?")
        for row in rep.get("rows", []):
            for m in row.get("metrics", []):
                key = (rep_id, row.get("name", "?"), m.get("name", "?"))
                if key in out:
                    dups.append(" / ".join(key))
                out[key] = m
    return out, dups


def gated(metric):
    return bool(metric.get("deterministic")) and metric.get("better") in (
        "lower",
        "higher",
        "exact",
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.02,
        help="relative change tolerated for lower/higher metrics "
        "(default 0.02 = 2%%)",
    )
    ap.add_argument(
        "--exact-epsilon",
        type=float,
        default=1e-12,
        help="tolerance for 'exact' metrics: |cur - base| <= eps * "
        "max(|base|, |cur|, 1) passes (absorbs cross-libm ULP noise)",
    )
    ap.add_argument(
        "--show-all",
        action="store_true",
        help="also list unchanged gated metrics",
    )
    args = ap.parse_args()

    _, base_reports = load(args.baseline)
    _, cur_reports = load(args.current)
    base, base_dups = index_metrics(base_reports)
    cur, cur_dups = index_metrics(cur_reports)

    regressions, improvements, warnings, unchanged = [], [], [], 0
    for d in base_dups:
        warnings.append(f"duplicate metric key in baseline: {d}")
    for d in cur_dups:
        warnings.append(f"duplicate metric key in current: {d}")

    for key in sorted(base.keys() | cur.keys()):
        label = " / ".join(key)
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            warnings.append(
                f"only in {'current' if b is None else 'baseline'}: {label}")
            continue
        if not (gated(b) and gated(c)):
            continue
        bv, cv = b.get("value", 0.0), c.get("value", 0.0)
        if not isinstance(bv, (int, float)) or not isinstance(cv, (int, float)):
            # The JSON writer emits null for NaN/inf; a gated metric must
            # never be non-numeric - that's a report defect, not a perf diff.
            usage_error(f"non-numeric value for gated metric {label}: "
                        f"{bv!r} vs {cv!r}")
        better = c.get("better")
        if bv == cv:
            unchanged += 1
            if args.show_all:
                print(f"  same       {label} = {cv}")
            continue
        rel = abs(cv - bv) / abs(bv) if bv != 0 else float("inf")
        desc = f"{label}: {bv} -> {cv} ({rel:+.1%} magnitude)"
        if better == "exact":
            if abs(cv - bv) <= args.exact_epsilon * max(abs(bv), abs(cv), 1.0):
                unchanged += 1
                if args.show_all:
                    print(f"  ulp-noise  {desc}")
            else:
                regressions.append(f"exact-metric drift {desc}")
        elif rel <= args.threshold:
            unchanged += 1
            if args.show_all:
                print(f"  within tol {desc}")
        elif (better == "lower") == (cv > bv):
            regressions.append(desc)
        else:
            improvements.append(desc)

    for w in warnings:
        print(f"  warning    {w}")
    for i in improvements:
        print(f"  improved   {i}")
    for r in regressions:
        print(f"  REGRESSED  {r}")
    print(
        f"bench_compare: {unchanged} unchanged, {len(improvements)} improved, "
        f"{len(regressions)} regressed, {len(warnings)} warning(s) "
        f"(threshold {args.threshold:.1%})"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
