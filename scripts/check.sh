#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, then smoke runs of the
# quickstart example (registry + pipeline on both backends) and a small
# 2-worker scenario sweep (thread-pool engine + determinism cross-check).
# Suitable as a CI entry point; exits non-zero on any failure.
#
# CHECK_TSAN=1 additionally builds the sweep + thread-safety tests under
# ThreadSanitizer (separate build tree) and runs them.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS"

echo "--- smoke: examples/quickstart ---"
"$BUILD_DIR"/examples/quickstart

echo "--- smoke: 2-worker scenario sweep (small grid, both backends) ---"
"$BUILD_DIR"/examples/pusch_sweep --workers 2 --fft 16,64 --snr 10,20,30
"$BUILD_DIR"/examples/pusch_sweep --workers 2 --backend sim --fft 64 --snr 20
"$BUILD_DIR"/bench/bench_throughput_sweep --slots 1 --snr-points 2

if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
  echo "--- opt-in: ThreadSanitizer build of the concurrency tests ---"
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_sweep test_thread_safety test_rng
  ctest --test-dir "$TSAN_DIR" --output-on-failure --no-tests=error \
    -j "$JOBS" -R 'Sweep|ThreadSafety|Rng'
fi

echo "check.sh: all green"
