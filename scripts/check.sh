#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, then a smoke run of the
# quickstart example (registry + pipeline on both backends).  Suitable as a
# CI entry point; exits non-zero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS"

echo "--- smoke: examples/quickstart ---"
"$BUILD_DIR"/examples/quickstart

echo "check.sh: all green"
