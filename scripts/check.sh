#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, then smoke runs of the
# quickstart example (registry + pipeline on both backends), small scenario
# sweeps (slot scheduler + determinism cross-check, including the
# intra-slot 'parallel' backend), the streaming traffic engine
# (pusch_serve, stage-pipelined and --list), the fading channel profiles
# and HARQ loop (TDL serve + bench_scenario_mix), the sharded serving
# engine (placement + overload policies, CLI validation, bench_capacity), a
# markdown link check over README + docs/, a bench_all --quick pass
# whose JSON reports are
# validated and diffed against the committed baseline
# (bench/baselines/quick.json, deterministic metrics only), and a
# PP_COUNT_ALLOCS build of the serving benches that gates the
# zero-steady-state-allocation workspace contract.  Suitable as a CI entry
# point; exits non-zero on any failure.
#
# CHECK_TSAN=1 additionally builds the concurrency tests (slot scheduler,
# sweep engine, traffic source, shared lazy tables, parallel + fixed
# backends, the sharded-sim differential/fuzz suites, and the HARQ-loop /
# cross-backend scenario-parity suites) under ThreadSanitizer in a
# separate build tree and runs them.
#
# CHECK_UBSAN=1 additionally builds the fixed-point arithmetic, kernel and
# fixed-backend tests under UndefinedBehaviorSanitizer (the Q15 layer's
# saturation corners are exactly where signed-overflow UB would hide).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS"

echo "--- markdown link check: README.md + docs/ ---"
# Every relative [text](path) link must resolve against the linking file's
# own directory - GitHub's rendering rule (anchors and external
# http(s)/mailto links are skipped).
link_errors=0
for md in README.md docs/*.md; do
  dir="$(dirname "$md")"
  while IFS= read -r link; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [[ -z "$target" ]] && continue
    if [[ ! -e "$dir/$target" ]]; then
      echo "broken link in $md: $link"
      link_errors=$((link_errors + 1))
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done
if [[ "$link_errors" -gt 0 ]]; then
  echo "markdown link check failed: $link_errors broken link(s)"
  exit 1
fi
echo "all markdown links resolve"

echo "--- smoke: examples/quickstart ---"
"$BUILD_DIR"/examples/quickstart

echo "--- smoke: 2-worker scenario sweep (small grid, all four backends) ---"
"$BUILD_DIR"/examples/pusch_sweep --workers 2 --fft 16,64 --snr 10,20,30
"$BUILD_DIR"/examples/pusch_sweep --workers 2 --backend sim --fft 64 --snr 20
"$BUILD_DIR"/examples/pusch_sweep --backend sim --sim-shards 2 --fft 64 --snr 20
"$BUILD_DIR"/examples/pusch_sweep --workers 1 --backend parallel --intra 2 \
    --fft 16,64 --snr 10,20,30
"$BUILD_DIR"/examples/pusch_sweep --workers 1 --backend fixed --intra 2 \
    --fft 16,64 --snr 10,20,30
"$BUILD_DIR"/bench/bench_throughput_sweep --slots 1 --snr-points 2
"$BUILD_DIR"/bench/bench_parallel_scaling --workers 1,2 --fft 256 --ffts 8 \
    --rows 256 --batches 128
"$BUILD_DIR"/bench/bench_fixed_host --fft 256 --symb 4

echo "--- smoke: streaming traffic engine (pusch_serve + --list) ---"
# Stage-pipelined streaming on the host models, the sim backend's
# deterministic deadline accounting, and the registry catalog listing.
"$BUILD_DIR"/examples/pusch_serve --slots 16 --workers 2 --pipelined
"$BUILD_DIR"/examples/pusch_serve --backend sim --slots 6 --clock-ghz 0.02
# Sharded simulator: two concurrent machines must reproduce the unsharded
# serve bit for bit (the CLI prints the same deterministic surface).
"$BUILD_DIR"/examples/pusch_serve --backend sim --sim-shards 2 --slots 6 \
    --clock-ghz 0.02
"$BUILD_DIR"/examples/pusch_serve --list > /dev/null
"$BUILD_DIR"/examples/pusch_sweep --list > /dev/null
"$BUILD_DIR"/examples/pusch_uplink_e2e --list > /dev/null

echo "--- smoke: fading channel profiles + HARQ retransmission loop ---"
# TDL fading with Doppler and the closed HARQ loop on the streaming
# engine, plus the scenario-mix bench's own worker-invariance re-check.
"$BUILD_DIR"/examples/pusch_serve --slots 16 --workers 2 --channel tdl-a \
    --doppler 16 --max-harq 3 --harq-ber 0.005
"$BUILD_DIR"/examples/pusch_sweep --workers 2 --channel tdl-c --doppler 8 \
    --fft 64 --snr 20,30
"$BUILD_DIR"/bench/bench_scenario_mix --slots 24 > /dev/null

echo "--- smoke: sharded serving engine + capacity search ---"
# Sharded serve with load-aware placement and the degrade controller, a
# bounded-queue drop run, and a short capacity search.
"$BUILD_DIR"/examples/pusch_serve --slots 24 --cells 4 --shards 2 \
    --placement load-aware --overload degrade --load 1.5 --workers 2
"$BUILD_DIR"/examples/pusch_serve --slots 24 --cells 4 --shards 2 \
    --overload queue --queue-limit 2 --clock-ghz 0.0001
"$BUILD_DIR"/bench/bench_capacity --slots 96 --iters 8 > /dev/null
# Unknown names for the serving flags must exit 2 with the registered list
# (the --list convention), not abort or silently fall back.
for bad in "--placement random" "--overload shed" "--shards 0" \
           "--channel rician"; do
  if "$BUILD_DIR"/examples/pusch_serve --slots 1 $bad > /dev/null 2>&1; then
    echo "pusch_serve accepted invalid flag: $bad"
    exit 1
  else
    status=$?
    if [[ "$status" -ne 2 ]]; then
      echo "pusch_serve exited $status (want 2) for: $bad"
      exit 1
    fi
  fi
done

echo "--- bench_all --quick: machine-readable reports + baseline diff ---"
# Every bench's --json output and the merged summary must parse as real
# JSON, and the deterministic metrics must match the committed baseline
# (bench_compare.py only gates deterministic metrics, so this is
# host-independent; regenerate the baseline when a PR intentionally moves
# cycle counts - docs/BENCHMARKS.md).
scripts/bench_all.sh --quick --build-dir "$BUILD_DIR"
if command -v python3 >/dev/null 2>&1; then
  for f in "$BUILD_DIR"/bench-reports/BENCH_*.json; do
    python3 -m json.tool "$f" > /dev/null || {
      echo "invalid JSON report: $f"
      exit 1
    }
  done
  echo "all emitted reports parse as JSON"
  python3 scripts/bench_compare.py bench/baselines/quick.json \
      "$BUILD_DIR/bench-reports/BENCH_summary.json"
else
  echo "python3 not found - skipped JSON validation + baseline diff"
fi

echo "--- zero-steady-state-allocation gate (PP_COUNT_ALLOCS build) ---"
# Separate build tree with the counting operator new: the serving benches'
# steady-state sections exit non-zero if any slot after warm-up touches the
# heap (the workspace contract, docs/DETERMINISM.md section 10).
ALLOC_DIR="${BUILD_DIR}-allocs"
cmake -B "$ALLOC_DIR" -S . -DPP_COUNT_ALLOCS=ON -DBUILD_TESTING=OFF
cmake --build "$ALLOC_DIR" -j "$JOBS" \
  --target bench_serve_latency bench_fixed_host
"$ALLOC_DIR"/bench/bench_serve_latency --slots 12 > /dev/null
"$ALLOC_DIR"/bench/bench_serve_latency --slots 12 --backend parallel \
    > /dev/null
"$ALLOC_DIR"/bench/bench_fixed_host --fft 256 --symb 4 > /dev/null
echo "steady-state serving loop allocates nothing after warm-up"

if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
  echo "--- opt-in: ThreadSanitizer build of the concurrency tests ---"
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_sweep test_thread_safety test_rng test_backend_parallel \
             test_backend_fixed test_scheduler test_traffic test_admission \
             test_placement test_sim_differential test_sim_fuzz test_harq \
             test_harq_fuzz test_scenario_parity test_workspace
  ctest --test-dir "$TSAN_DIR" --output-on-failure --no-tests=error \
    -j "$JOBS" \
    -R 'Sweep|ThreadSafety|Rng|ThreadPool|ParallelBackend|FixedBackend|FixedQ15|Scheduler|Traffic|Admission|Placement|SimDifferential|SimFuzz|Harq|ScenarioParity|Workspace'
fi

if [[ "${CHECK_UBSAN:-0}" == "1" ]]; then
  echo "--- opt-in: UndefinedBehaviorSanitizer build of the Q15/kernel tests ---"
  UBSAN_DIR="${BUILD_DIR}-ubsan"
  cmake -B "$UBSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build "$UBSAN_DIR" -j "$JOBS" \
    --target test_fixed_point test_fft test_mmm test_cholesky test_che_ne \
             test_gram test_backend_fixed
  ctest --test-dir "$UBSAN_DIR" --output-on-failure --no-tests=error \
    -j "$JOBS" \
    -R 'Q15|Cq15|Isqrt|Rng|Fft|Mmm|Chol|Trisolve|Che|Ne|Gram|FixedBackend'
fi

echo "check.sh: all green"
