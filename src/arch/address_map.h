// L1 address map and allocator.
//
// Addresses are 32-bit *word* indices.  The canonical map is word-level
// interleaving across all banks of the cluster (MemPool's default):
//
//   addr = row * n_banks + bank      (row = offset inside the bank)
//
// Kernels that need *placed* data (the paper's folded FFT layout, Cholesky
// row folding, per-core scratch) compute addresses with bank_word(), which
// pins a word to a chosen (bank, row).  The allocator hands out disjoint row
// ranges so placed and interleaved allocations never collide.
#ifndef PUSCHPOOL_ARCH_ADDRESS_MAP_H
#define PUSCHPOOL_ARCH_ADDRESS_MAP_H

#include <cstdint>
#include <vector>

#include "arch/topology.h"
#include "common/check.h"

namespace pp::arch {

using addr_t = uint32_t;

class Address_map {
 public:
  explicit Address_map(const Cluster_config& cfg) : cfg_(&cfg) {}

  bank_id bank_of(addr_t a) const { return a % cfg_->n_banks(); }
  uint32_t row_of(addr_t a) const { return a / cfg_->n_banks(); }

  // Address of a word pinned to (bank, row).
  addr_t bank_word(bank_id b, uint32_t row) const {
    return row * cfg_->n_banks() + b;
  }

  // Address of the s-th word of core c's private scratch rows: the word lives
  // in the core's local bank (s % banks_per_core), at row base_row + s/bpc.
  addr_t core_word(core_id c, uint32_t base_row, uint32_t s) const {
    const bank_id b = cfg_->first_local_bank(c) + s % cfg_->banks_per_core;
    return bank_word(b, base_row + s / cfg_->banks_per_core);
  }

  const Cluster_config& config() const { return *cfg_; }

 private:
  const Cluster_config* cfg_;
};

// Row-granular L1 allocator.  Interleaved arrays consume whole rows across
// all banks; placed (row) allocations reserve a row range that kernels
// address via Address_map::bank_word / core_word.
class L1_alloc {
 public:
  explicit L1_alloc(const Cluster_config& cfg) : cfg_(&cfg), map_(cfg) {}

  // Allocate an interleaved array of n words; returns its base address
  // (always at bank 0 of a fresh row).
  addr_t alloc(uint64_t n_words) {
    const uint32_t rows =
        static_cast<uint32_t>((n_words + cfg_->n_banks() - 1) / cfg_->n_banks());
    return map_.bank_word(0, take_rows(rows));
  }

  // Reserve n_rows rows across every bank for placed data; returns the first
  // row index.
  uint32_t alloc_rows(uint32_t n_rows) { return take_rows(n_rows); }

  // Allocate a single word pinned to bank b (used for barrier counters and
  // per-core flags).  Scratch rows are shared across banks so hundreds of
  // such words cost only a few rows.
  addr_t alloc_word(bank_id b) {
    if (scratch_next_.empty()) scratch_next_.assign(cfg_->n_banks(), 0);
    const uint32_t i = scratch_next_[b]++;
    if (i >= scratch_rows_.size()) scratch_rows_.push_back(take_rows(1));
    return map_.bank_word(b, scratch_rows_[i]);
  }

  uint32_t rows_used() const { return next_row_; }
  uint64_t words_free() const {
    return static_cast<uint64_t>(cfg_->bank_words - next_row_) * cfg_->n_banks();
  }
  void reset() { next_row_ = 0; }

  const Address_map& map() const { return map_; }

 private:
  uint32_t take_rows(uint32_t n_rows) {
    PP_CHECK(next_row_ + n_rows <= cfg_->bank_words,
             "L1 allocation exceeds cluster SRAM capacity");
    const uint32_t r = next_row_;
    next_row_ += n_rows;
    return r;
  }

  const Cluster_config* cfg_;
  Address_map map_;
  uint32_t next_row_ = 0;
  std::vector<uint32_t> scratch_rows_;
  std::vector<uint32_t> scratch_next_;
};

}  // namespace pp::arch

#endif  // PUSCHPOOL_ARCH_ADDRESS_MAP_H
