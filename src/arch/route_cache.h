// Memoized address-map resolutions for the simulator's hot path.
//
// Every simulated L1 access has to answer two questions: which bank does
// this word-interleaved address hit (Address_map::bank_of), and how far is
// that bank from the issuing core (Cluster_config::locality +
// load_use_latency)?  The general answers divide and modulo by topology
// parameters on every access - measurable at TeraPool scale, where a slot
// issues tens of millions of accesses.
//
// Both resolutions factor through small finite domains, so they memoize
// exactly:
//
//   * bank_of(a) = a % n_banks collapses to a mask when the bank count is a
//     power of two (true for every preset - topology parameters are all
//     powers of two);
//   * the (core, bank) latency depends only on (tile(core), tile(bank)), a
//     direct-mapped n_tiles x n_tiles table of one-byte latencies (16 KiB at
//     TeraPool's 128 tiles) indexed by shifts.
//
// The cache is *pure memoization*: it answers with exactly the values the
// general Address_map/Cluster_config math produces (pinned by
// tests/test_sim_differential.cpp against a build that bypasses it), and
// fast() reports false for non-power-of-two geometries so callers can fall
// back to the general path.
#ifndef PUSCHPOOL_ARCH_ROUTE_CACHE_H
#define PUSCHPOOL_ARCH_ROUTE_CACHE_H

#include <cstdint>
#include <vector>

#include "arch/topology.h"
#include "common/check.h"

namespace pp::arch {

class Route_cache {
 public:
  explicit Route_cache(const Cluster_config& cfg) {
    const uint32_t n_banks = cfg.n_banks();
    const uint32_t per_tile = cfg.banks_per_tile();
    fast_ = is_pow2(n_banks) && is_pow2(per_tile);
    if (!fast_) return;
    bank_mask_ = n_banks - 1;
    tile_shift_ = log2_pow2(per_tile);
    n_tiles_ = cfg.n_tiles();
    lat_.resize(static_cast<size_t>(n_tiles_) * n_tiles_);
    for (tile_id ct = 0; ct < n_tiles_; ++ct) {
      for (tile_id bt = 0; bt < n_tiles_; ++bt) {
        Locality loc = Locality::remote;
        if (ct == bt) {
          loc = Locality::tile;
        } else if (ct / cfg.tiles_per_group == bt / cfg.tiles_per_group) {
          loc = Locality::group;
        }
        const uint32_t lat = cfg.load_use_latency(loc);
        PP_CHECK(lat <= 0xff, "route cache latency exceeds one byte");
        lat_[static_cast<size_t>(ct) * n_tiles_ + bt] =
            static_cast<uint8_t>(lat);
      }
    }
  }

  // False when the geometry defeats the mask/shift decode; callers must use
  // the general Address_map/Cluster_config math instead.
  bool fast() const { return fast_; }

  bank_id bank_of(addr_t a) const { return a & bank_mask_; }

  // Latency row of a core: one byte per destination tile.
  const uint8_t* core_row(const Cluster_config& cfg, core_id c) const {
    return lat_.data() + static_cast<size_t>(cfg.tile_of_core(c)) * n_tiles_;
  }
  uint32_t latency(const uint8_t* core_row, bank_id b) const {
    return core_row[b >> tile_shift_];
  }

  static bool is_pow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

 private:
  static uint32_t log2_pow2(uint32_t v) {
    uint32_t s = 0;
    while ((v >> s) != 1) ++s;
    return s;
  }

  bool fast_ = false;
  uint32_t bank_mask_ = 0;
  uint32_t tile_shift_ = 0;
  uint32_t n_tiles_ = 0;
  std::vector<uint8_t> lat_;  // [tile(core)][tile(bank)] load-to-use cycles
};

}  // namespace pp::arch

#endif  // PUSCHPOOL_ARCH_ROUTE_CACHE_H
