#include "arch/topology.h"

namespace pp::arch {

Cluster_config Cluster_config::mempool() {
  Cluster_config c;
  c.name = "mempool";
  c.n_groups = 4;
  c.tiles_per_group = 16;
  c.cores_per_tile = 4;
  return c;  // 256 cores, 1024 banks, 1 MiB L1
}

Cluster_config Cluster_config::terapool() {
  Cluster_config c;
  c.name = "terapool";
  c.n_groups = 8;
  c.tiles_per_group = 16;
  c.cores_per_tile = 8;
  return c;  // 1024 cores, 4096 banks, 4 MiB L1
}

Cluster_config Cluster_config::minipool() {
  Cluster_config c;
  c.name = "minipool";
  c.n_groups = 2;
  c.tiles_per_group = 2;
  c.cores_per_tile = 4;
  return c;  // 16 cores, 64 banks
}

}  // namespace pp::arch
