// Cluster topology for MemPool and TeraPool (paper §III, Fig. 4).
//
// Hierarchy: cluster → groups → tiles → cores, with 4 L1 banks per core
// (16 banks/tile in MemPool, 32 in TeraPool; 1 KiB per bank).  Cores reach
// banks in their own tile in 1 cycle, banks of other tiles in the same group
// in 3 cycles, and banks in remote groups in 5 cycles.
#ifndef PUSCHPOOL_ARCH_TOPOLOGY_H
#define PUSCHPOOL_ARCH_TOPOLOGY_H

#include <cstdint>
#include <string>

namespace pp::arch {

using core_id = uint32_t;
using tile_id = uint32_t;
using group_id = uint32_t;
using bank_id = uint32_t;

// Physical proximity of a (core, bank) pair; decides the access latency.
enum class Locality { tile, group, remote };

struct Cluster_config {
  std::string name = "mempool";
  uint32_t n_groups = 4;
  uint32_t tiles_per_group = 16;
  uint32_t cores_per_tile = 4;
  uint32_t banks_per_core = 4;
  uint32_t bank_words = 256;  // 1 KiB banks, 32-bit words

  // Load-to-use latencies in cycles (paper Fig. 4b).
  uint32_t lat_tile = 1;
  uint32_t lat_group = 3;
  uint32_t lat_remote = 5;

  // Instruction-fetch model: L0 capacity (instructions) and refill penalty.
  uint32_t l0_icache_instrs = 64;
  uint32_t icache_refill_cycles = 3;

  // External pipelined units (paper: RAW stalls on mul/div outputs).
  uint32_t mul_latency = 3;  // pipelined
  // Non-pipelined divider; 8 cycles for 16-bit operands (2 bits/cycle SRT).
  uint32_t div_latency = 8;

  // Domain-specific ISA extension (paper §VI future work): a fused radix-4
  // butterfly add-network instruction pair replacing the SIMD add/sub/shift
  // sequence.  Off by default (the paper's measured configuration).
  bool isa_fused_butterfly = false;
  // LSU queue depth (paper: up to 8 outstanding transactions).
  uint32_t lsu_depth = 8;
  // Cycles between a wake-up CSR write and the target cores resuming.
  uint32_t wakeup_latency = 3;

  // --- derived sizes ---
  uint32_t n_tiles() const { return n_groups * tiles_per_group; }
  uint32_t n_cores() const { return n_tiles() * cores_per_tile; }
  uint32_t banks_per_tile() const { return cores_per_tile * banks_per_core; }
  uint32_t n_banks() const { return n_tiles() * banks_per_tile(); }
  uint64_t l1_words() const {
    return static_cast<uint64_t>(n_banks()) * bank_words;
  }

  // --- index math ---
  tile_id tile_of_core(core_id c) const { return c / cores_per_tile; }
  group_id group_of_core(core_id c) const {
    return tile_of_core(c) / tiles_per_group;
  }
  tile_id tile_of_bank(bank_id b) const { return b / banks_per_tile(); }
  group_id group_of_bank(bank_id b) const {
    return tile_of_bank(b) / tiles_per_group;
  }
  // The four banks directly local to a core sit in its tile, contiguously.
  bank_id first_local_bank(core_id c) const {
    return tile_of_core(c) * banks_per_tile() +
           (c % cores_per_tile) * banks_per_core;
  }

  Locality locality(core_id c, bank_id b) const {
    if (tile_of_core(c) == tile_of_bank(b)) return Locality::tile;
    if (group_of_core(c) == group_of_bank(b)) return Locality::group;
    return Locality::remote;
  }

  uint32_t load_use_latency(Locality l) const {
    switch (l) {
      case Locality::tile: return lat_tile;
      case Locality::group: return lat_group;
      default: return lat_remote;
    }
  }

  // --- presets ---
  static Cluster_config mempool();
  static Cluster_config terapool();
  // A small configuration (4 tiles of 4 cores) for fast unit tests.
  static Cluster_config minipool();
};

}  // namespace pp::arch

#endif  // PUSCHPOOL_ARCH_TOPOLOGY_H
