#include "baseline/reference.h"

#include <cmath>

#include "common/check.h"
#include "common/grid.h"
#include "common/once_tables.h"

namespace pp::ref {

std::vector<cd> dft(const std::vector<cd>& x) {
  const size_t n = x.size();
  std::vector<cd> y(n);
  for (size_t k = 0; k < n; ++k) {
    cd acc{0.0, 0.0};
    for (size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * t % n) /
                         static_cast<double>(n);
      acc += x[t] * cd{std::cos(ang), std::sin(ang)};
    }
    y[k] = acc / static_cast<double>(n);
  }
  return y;
}

namespace {

// Stage twiddles w_j = wl^j for a length-`len` butterfly stage, built with
// the same incremental product the loop below previously ran inline (so
// results stay bit-identical) and cached per (log2(len), direction) under
// std::call_once.  Scenario construction and golden receives run these FFTs
// concurrently from sweep workers; the tables are immutable once built.
const std::vector<cd>& stage_twiddles(size_t len, bool inverse) {
  static common::Once_tables<cd, 64> cache;
  size_t log2len = 0;
  while ((size_t{1} << log2len) != len) ++log2len;
  return cache.get(2 * log2len + (inverse ? 1 : 0), [len, inverse] {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cd wl{std::cos(ang), std::sin(ang)};
    std::vector<cd> t(len / 2);
    cd w{1.0, 0.0};
    for (size_t j = 0; j < len / 2; ++j) {
      t[j] = w;
      w *= wl;
    }
    return t;
  });
}

void fft_inplace(std::vector<cd>& a, bool inverse) {
  const size_t n = a.size();
  fft_bit_reverse(a);
  for (size_t len = 2; len <= n; len <<= 1) {
    fft_stage_blocks(a, len, inverse, 0, n / len);
  }
}

}  // namespace

void fft_bit_reverse(std::vector<cd>& a) {
  const size_t n = a.size();
  PP_CHECK((n & (n - 1)) == 0 && n > 0, "fft size must be a power of two");
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

void fft_stage_blocks(std::vector<cd>& a, size_t len, bool inverse,
                      size_t block_begin, size_t block_end) {
  const std::vector<cd>& tw = stage_twiddles(len, inverse);
  for (size_t blk = block_begin; blk < block_end; ++blk) {
    const size_t i = blk * len;
    for (size_t j = 0; j < len / 2; ++j) {
      const cd u = a[i + j];
      const cd v = a[i + j + len / 2] * tw[j];
      a[i + j] = u + v;
      a[i + j + len / 2] = u - v;
    }
  }
}

void fft_scale(std::vector<cd>& a, size_t begin, size_t end) {
  const double n = static_cast<double>(a.size());
  for (size_t i = begin; i < end; ++i) a[i] /= n;
}

std::vector<cd> fft(const std::vector<cd>& x) {
  std::vector<cd> a = x;
  fft_inplace(a, false);
  fft_scale(a, 0, a.size());
  return a;
}

void fft_into(const std::vector<cd>& x, std::vector<cd>& y) {
  y.assign(x.begin(), x.end());
  fft_inplace(y, false);
  fft_scale(y, 0, y.size());
}

std::vector<cd> ifft(const std::vector<cd>& x) {
  std::vector<cd> a = x;
  fft_inplace(a, true);
  return a;
}

void matmul_rows(std::span<const cd> a, std::span<const cd> b,
                 std::span<cd> c, size_t m, size_t k, size_t p,
                 size_t row_begin, size_t row_end) {
  PP_CHECK(a.size() == m * k && b.size() == k * p && c.size() == m * p,
           "matmul shape mismatch");
  PP_CHECK(row_begin <= row_end && row_end <= m, "matmul row tile out of range");
  for (size_t i = row_begin; i < row_end; ++i) {
    for (size_t j = 0; j < p; ++j) c[i * p + j] = cd{0.0, 0.0};
    for (size_t kk = 0; kk < k; ++kk) {
      const cd av = a[i * k + kk];
      for (size_t j = 0; j < p; ++j) {
        c[i * p + j] += av * b[kk * p + j];
      }
    }
  }
}

std::vector<cd> matmul(const std::vector<cd>& a, const std::vector<cd>& b,
                       size_t m, size_t k, size_t p) {
  std::vector<cd> c(m * p);
  matmul_rows(a, b, c, m, k, p, 0, m);
  return c;
}

void gram_rows(std::span<const cd> a, std::span<cd> g, size_t m,
               size_t k, size_t row_begin, size_t row_end) {
  PP_CHECK(a.size() == m * k && g.size() == k * k, "gram shape mismatch");
  PP_CHECK(row_begin <= row_end && row_end <= k, "gram row tile out of range");
  for (size_t i = row_begin; i < row_end; ++i) {
    for (size_t j = 0; j < k; ++j) {
      cd acc{0.0, 0.0};
      for (size_t r = 0; r < m; ++r) {
        acc += std::conj(a[r * k + i]) * a[r * k + j];
      }
      g[i * k + j] = acc;
    }
  }
}

std::vector<cd> gram(const std::vector<cd>& a, size_t m, size_t k) {
  std::vector<cd> g(k * k);
  gram_rows(a, g, m, k, 0, k);
  return g;
}

void cholesky_into(std::span<const cd> g, size_t n, std::span<cd> l) {
  PP_CHECK(g.size() == n * n, "cholesky shape mismatch");
  PP_CHECK(l.size() == n * n, "cholesky output shape mismatch");
  // The factorization only writes the lower triangle; zero the rest so a
  // reused workspace holds exactly what the returning form returns.
  for (size_t i = 0; i < n * n; ++i) l[i] = cd{0.0, 0.0};
  for (size_t j = 0; j < n; ++j) {
    double diag = g[j * n + j].real();
    for (size_t k = 0; k < j; ++k) diag -= std::norm(l[j * n + k]);
    PP_CHECK(diag > 0.0, "matrix not positive definite");
    const double ljj = std::sqrt(diag);
    l[j * n + j] = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      cd acc = g[i * n + j];
      for (size_t k = 0; k < j; ++k) {
        acc -= l[i * n + k] * std::conj(l[j * n + k]);
      }
      l[i * n + j] = acc / ljj;
    }
  }
}

std::vector<cd> cholesky(const std::vector<cd>& g, size_t n) {
  std::vector<cd> l(n * n);
  cholesky_into(g, n, l);
  return l;
}

void forward_solve_into(std::span<const cd> l, std::span<const cd> y,
                        size_t n, std::span<cd> z) {
  PP_CHECK(z.size() == n, "forward_solve output shape mismatch");
  for (size_t i = 0; i < n; ++i) {
    cd acc = y[i];
    for (size_t k = 0; k < i; ++k) acc -= l[i * n + k] * z[k];
    z[i] = acc / l[i * n + i];
  }
}

std::vector<cd> forward_solve(const std::vector<cd>& l,
                              const std::vector<cd>& y, size_t n) {
  std::vector<cd> z(n);
  forward_solve_into(l, y, n, z);
  return z;
}

void backward_solve_into(std::span<const cd> l, std::span<const cd> z,
                         size_t n, std::span<cd> x) {
  PP_CHECK(x.size() == n, "backward_solve output shape mismatch");
  for (size_t ii = n; ii-- > 0;) {
    cd acc = z[ii];
    for (size_t k = ii + 1; k < n; ++k) {
      acc -= std::conj(l[k * n + ii]) * x[k];
    }
    x[ii] = acc / l[ii * n + ii];
  }
}

std::vector<cd> backward_solve(const std::vector<cd>& l,
                               const std::vector<cd>& z, size_t n) {
  std::vector<cd> x(n);
  backward_solve_into(l, z, n, x);
  return x;
}

void lmmse_into(std::span<const cd> h, std::span<const cd> y, size_t m,
                size_t n, double sigma2, Lmmse_ws& ws, std::span<cd> x) {
  PP_CHECK(x.size() == n, "lmmse output shape mismatch");
  common::ws_grow(ws.g, n * n);
  common::ws_grow(ws.l, n * n);
  common::ws_grow(ws.rhs, n);
  common::ws_grow(ws.z, n);
  // G = H^H H + sigma2 I
  gram_rows(h, ws.g, m, n, 0, n);
  for (size_t i = 0; i < n; ++i) ws.g[i * n + i] += sigma2;
  // rhs = H^H y
  for (size_t i = 0; i < n; ++i) {
    cd acc{0.0, 0.0};
    for (size_t r = 0; r < m; ++r) acc += std::conj(h[r * n + i]) * y[r];
    ws.rhs[i] = acc;
  }
  cholesky_into(std::span<const cd>{ws.g.data(), n * n}, n,
                std::span<cd>{ws.l.data(), n * n});
  forward_solve_into(std::span<const cd>{ws.l.data(), n * n},
                     std::span<const cd>{ws.rhs.data(), n}, n,
                     std::span<cd>{ws.z.data(), n});
  backward_solve_into(std::span<const cd>{ws.l.data(), n * n},
                      std::span<const cd>{ws.z.data(), n}, n, x);
}

std::vector<cd> lmmse(const std::vector<cd>& h, const std::vector<cd>& y,
                      size_t m, size_t n, double sigma2) {
  std::vector<cd> x(n);
  Lmmse_ws ws;
  lmmse_into(h, y, m, n, sigma2, ws, x);
  return x;
}

double mse(const std::vector<cd>& a, const std::vector<cd>& b) {
  PP_CHECK(a.size() == b.size(), "mse size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::norm(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

double sqnr_db(const std::vector<cd>& want, const std::vector<cd>& got) {
  double sig = 0.0, err = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    sig += std::norm(want[i]);
    err += std::norm(want[i] - got[i]);
  }
  if (err == 0.0) return 200.0;
  return 10.0 * std::log10(sig / err);
}

}  // namespace pp::ref
