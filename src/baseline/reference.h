// Double-precision golden models used to verify the simulated fixed-point
// kernels and the PHY chain: DFT, matrix multiply, Cholesky decomposition,
// triangular solves and the LMMSE equalizer.
//
// Each model is built from deterministic *tiled sub-kernels* (declared
// below): a whole-problem call is exactly the full-range tile, and a tile's
// arithmetic depends only on the tile bounds and the input data - never on
// which thread runs it or in what order disjoint tiles complete.  That is
// the contract runtime::Parallel_backend relies on to split the host chain
// across workers while staying bit-identical to the serial path (the same
// decomposition the paper applies to the fixed-point kernels in §IV).
#ifndef PUSCHPOOL_BASELINE_REFERENCE_H
#define PUSCHPOOL_BASELINE_REFERENCE_H

#include <complex>
#include <span>
#include <vector>

namespace pp::ref {

using cd = std::complex<double>;

// Forward DFT scaled by 1/N (matches the fixed-point kernels' 1/4-per-stage
// scaling).
std::vector<cd> dft(const std::vector<cd>& x);

// Fast radix-2 FFT (power-of-two sizes), scaled by 1/N like dft().
std::vector<cd> fft(const std::vector<cd>& x);

// fft() writing into a caller-owned output vector (reusing its capacity):
// y is assigned from x, then transformed in place.  Bit-identical to
// fft(); the workspace form the backends' hot paths use.
void fft_into(const std::vector<cd>& x, std::vector<cd>& y);

// Inverse of fft(): unscaled accumulation (fft(ifft(x)) == x).
std::vector<cd> ifft(const std::vector<cd>& x);

// C (m x p) = A (m x k) * B (k x p), row-major.
std::vector<cd> matmul(const std::vector<cd>& a, const std::vector<cd>& b,
                       size_t m, size_t k, size_t p);

// C = A^H * A (k x k) for A (m x k), row-major.
std::vector<cd> gram(const std::vector<cd>& a, size_t m, size_t k);

// Lower-triangular L (row-major, n x n) with L L^H = G.  G must be Hermitian
// positive definite.
std::vector<cd> cholesky(const std::vector<cd>& g, size_t n);

// Solve L z = y (forward substitution), L lower-triangular.
std::vector<cd> forward_solve(const std::vector<cd>& l,
                              const std::vector<cd>& y, size_t n);

// Solve L^H x = z (backward substitution).
std::vector<cd> backward_solve(const std::vector<cd>& l,
                               const std::vector<cd>& z, size_t n);

// LMMSE estimate x = (H^H H + sigma2 I)^-1 H^H y for H (m x n) row-major,
// computed via Cholesky + two triangular solves (the paper's recipe, eq. 2).
std::vector<cd> lmmse(const std::vector<cd>& h, const std::vector<cd>& y,
                      size_t m, size_t n, double sigma2);

// ---- workspace (_into) forms ----------------------------------------------
//
// Allocation-free variants of the solver chain: outputs land in
// caller-owned spans, intermediates in a caller-owned Lmmse_ws whose
// vectors grow geometrically and then stabilize (common::ws_grow).  Each
// _into runs the exact arithmetic of its returning form - the returning
// forms are thin wrappers - so results are bit-identical; only where the
// bytes live changes.

// Reusable intermediates for lmmse_into: the regularized Gram matrix, its
// Cholesky factor, the matched-filter right-hand side and the forward
// substitution result.
struct Lmmse_ws {
  std::vector<cd> g;
  std::vector<cd> l;
  std::vector<cd> rhs;
  std::vector<cd> z;

  size_t footprint_bytes() const {
    return (g.capacity() + l.capacity() + rhs.capacity() + z.capacity()) *
           sizeof(cd);
  }
};

// cholesky() into a pre-sized span (l.size() == n*n); the strict upper
// triangle is zero-filled exactly like the returning form.
void cholesky_into(std::span<const cd> g, size_t n, std::span<cd> l);

// forward_solve()/backward_solve() into pre-sized spans (size n).
void forward_solve_into(std::span<const cd> l, std::span<const cd> y,
                        size_t n, std::span<cd> z);
void backward_solve_into(std::span<const cd> l, std::span<const cd> z,
                         size_t n, std::span<cd> x);

// lmmse() into a pre-sized span (x.size() == n), intermediates in ws.
void lmmse_into(std::span<const cd> h, std::span<const cd> y, size_t m,
                size_t n, double sigma2, Lmmse_ws& ws, std::span<cd> x);

// ---- tiled sub-kernels ----------------------------------------------------
//
// The work-splitting surface: fft() is bit-reverse + one fft_stage_blocks()
// sweep per butterfly stage + fft_scale(); matmul()/gram() are the full row
// range of matmul_rows()/gram_rows().  Tiles write disjoint outputs, so any
// partition of the index space - including a multi-threaded one - produces
// bits identical to the monolithic call.

// Bit-reversal permutation of `a` (power-of-two size), the layout every
// butterfly stage assumes.
void fft_bit_reverse(std::vector<cd>& a);

// One length-`len` butterfly stage over blocks [block_begin, block_end) of
// the size(a)/len independent blocks (block i spans a[i*len .. (i+1)*len)).
// Stages must run in increasing `len` order with all blocks of a stage
// complete before the next stage starts - the barrier point of a
// cooperative multi-worker FFT.
void fft_stage_blocks(std::vector<cd>& a, size_t len, bool inverse,
                      size_t block_begin, size_t block_end);

// The forward FFT's final 1/N normalization over elements [begin, end).
void fft_scale(std::vector<cd>& a, size_t begin, size_t end);

// Rows [row_begin, row_end) of C = A * B (shapes as in matmul()).  C must
// be pre-sized to m*p; a tile only writes its own rows.  Spans, so tiles
// can target rows of a flat workspace grid as well as whole vectors.
void matmul_rows(std::span<const cd> a, std::span<const cd> b,
                 std::span<cd> c, size_t m, size_t k, size_t p,
                 size_t row_begin, size_t row_end);

// Rows [row_begin, row_end) of G = A^H A (shapes as in gram()).  G must be
// pre-sized to k*k.
void gram_rows(std::span<const cd> a, std::span<cd> g, size_t m,
               size_t k, size_t row_begin, size_t row_end);

// ---- error metrics --------------------------------------------------------

// Mean squared error between two complex vectors.
double mse(const std::vector<cd>& a, const std::vector<cd>& b);

// Signal-to-quantization-noise ratio (dB) of `got` vs reference `want`.
double sqnr_db(const std::vector<cd>& want, const std::vector<cd>& got);

}  // namespace pp::ref

#endif  // PUSCHPOOL_BASELINE_REFERENCE_H
