// Double-precision golden models used to verify the simulated fixed-point
// kernels and the PHY chain: DFT, matrix multiply, Cholesky decomposition,
// triangular solves and the LMMSE equalizer.
#ifndef PUSCHPOOL_BASELINE_REFERENCE_H
#define PUSCHPOOL_BASELINE_REFERENCE_H

#include <complex>
#include <vector>

namespace pp::ref {

using cd = std::complex<double>;

// Forward DFT scaled by 1/N (matches the fixed-point kernels' 1/4-per-stage
// scaling).
std::vector<cd> dft(const std::vector<cd>& x);

// Fast radix-2 FFT (power-of-two sizes), scaled by 1/N like dft().
std::vector<cd> fft(const std::vector<cd>& x);

// Inverse of fft(): unscaled accumulation (fft(ifft(x)) == x).
std::vector<cd> ifft(const std::vector<cd>& x);

// C (m x p) = A (m x k) * B (k x p), row-major.
std::vector<cd> matmul(const std::vector<cd>& a, const std::vector<cd>& b,
                       size_t m, size_t k, size_t p);

// C = A^H * A (k x k) for A (m x k), row-major.
std::vector<cd> gram(const std::vector<cd>& a, size_t m, size_t k);

// Lower-triangular L (row-major, n x n) with L L^H = G.  G must be Hermitian
// positive definite.
std::vector<cd> cholesky(const std::vector<cd>& g, size_t n);

// Solve L z = y (forward substitution), L lower-triangular.
std::vector<cd> forward_solve(const std::vector<cd>& l,
                              const std::vector<cd>& y, size_t n);

// Solve L^H x = z (backward substitution).
std::vector<cd> backward_solve(const std::vector<cd>& l,
                               const std::vector<cd>& z, size_t n);

// LMMSE estimate x = (H^H H + sigma2 I)^-1 H^H y for H (m x n) row-major,
// computed via Cholesky + two triangular solves (the paper's recipe, eq. 2).
std::vector<cd> lmmse(const std::vector<cd>& h, const std::vector<cd>& y,
                      size_t m, size_t n, double sigma2);

// Mean squared error between two complex vectors.
double mse(const std::vector<cd>& a, const std::vector<cd>& b);

// Signal-to-quantization-noise ratio (dB) of `got` vs reference `want`.
double sqnr_db(const std::vector<cd>& want, const std::vector<cd>& got);

}  // namespace pp::ref

#endif  // PUSCHPOOL_BASELINE_REFERENCE_H
