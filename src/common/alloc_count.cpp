#include "common/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace pp::common {

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }

bool alloc_count_enabled() {
#ifdef PP_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

}  // namespace pp::common

#ifdef PP_COUNT_ALLOCS

// Replaceable global allocation functions ([new.delete.single] /
// [new.delete.array]).  Built on malloc/free so the hooks never recurse,
// and kept deliberately minimal: count, allocate, honour the noexcept /
// throwing contracts.  Alignment overloads route through aligned_alloc
// with the size rounded up to a multiple of the alignment (a C11
// requirement glibc tolerates but other libcs enforce).

namespace {

void* counted_alloc(std::size_t size) {
  pp::common::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  pp::common::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc{};
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // PP_COUNT_ALLOCS
