#pragma once

#include <cstdint>

namespace pp::common {

// Global heap-allocation counter behind the PP_COUNT_ALLOCS build option.
//
// When the repo is configured with -DPP_COUNT_ALLOCS=ON, alloc_count.cpp
// replaces the global operator new/delete family with malloc/free wrappers
// that bump a relaxed atomic on every allocation.  alloc_count() then
// exposes the running total so benches can measure a steady-state
// allocs-per-slot figure (and self-gate it to zero after workspace
// warm-up).  In normal builds the hooks are compiled out and alloc_count()
// returns 0 always, so callers can emit the derived metric unconditionally
// - it is legitimately zero in both configurations and the committed
// baseline can gate it `exact`.
//
// The counter is monotone and process-global (all threads).  Callers
// measure deltas around a region of interest; the relaxed ordering is fine
// because benches quiesce worker threads (join / pool drain) before
// sampling.
uint64_t alloc_count();

// True when the counting hooks are actually installed in this build -
// lets benches distinguish "zero allocations" from "not counting".
bool alloc_count_enabled();

}  // namespace pp::common
