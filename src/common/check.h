// Always-on invariant checks used across puschpool.
//
// PP_CHECK(cond, msg): abort with a readable message if cond is false.
// These guard programming errors (bad sizes, bad topology indices); they are
// kept in release builds because the simulator's correctness depends on them.
#ifndef PUSCHPOOL_COMMON_CHECK_H
#define PUSCHPOOL_COMMON_CHECK_H

#include <cstdio>
#include <cstdlib>

#define PP_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PP_CHECK failed at %s:%d: %s\n  %s\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // PUSCHPOOL_COMMON_CHECK_H
