// Tiny command-line flag reader for the example/bench executables.
// Flags look like: --arch terapool --size 4096 --verbose
#ifndef PUSCHPOOL_COMMON_CLI_H
#define PUSCHPOOL_COMMON_CLI_H

#include <cstdlib>
#include <string>
#include <vector>

namespace pp::common {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  // Value of "--name value", or fallback if absent.
  std::string get(const std::string& name, const std::string& fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return args_[i + 1];
    }
    return fallback;
  }

  long get_int(const std::string& name, long fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return std::strtol(args_[i + 1].c_str(), nullptr, 10);
    }
    return fallback;
  }

  // True if the bare flag "--name" appears anywhere.
  bool has(const std::string& name) const {
    for (const auto& a : args_) {
      if (a == name) return true;
    }
    return false;
  }

  // First non-flag positional argument, or fallback.
  std::string positional(const std::string& fallback) const {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) == 0) {
        ++i;  // skip the flag's value
        continue;
      }
      return args_[i];
    }
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_CLI_H
