// Tiny command-line flag reader for the example/bench executables.
// Flags look like: --arch terapool --size 4096 --verbose
#ifndef PUSCHPOOL_COMMON_CLI_H
#define PUSCHPOOL_COMMON_CLI_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pp::common {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  // Value of "--name value", or fallback if absent.
  std::string get(const std::string& name, const std::string& fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return args_[i + 1];
    }
    return fallback;
  }

  long get_int(const std::string& name, long fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return std::strtol(args_[i + 1].c_str(), nullptr, 10);
    }
    return fallback;
  }

  // Value of "--name" as a validated non-negative 32-bit integer.
  // Malformed or negative values print a readable error and exit 2.
  uint32_t get_u32(const std::string& name, uint32_t fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return parse_u32_or_die(name, args_[i + 1]);
    }
    return fallback;
  }

  // Value of "--name" as a validated double; malformed values print a
  // readable error and exit 2.  Range checks stay at the call site.
  double get_double(const std::string& name, double fallback) const {
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return parse_double_or_die(name, args_[i + 1]);
    }
    return fallback;
  }

  // Value of "--name" as a comma-separated list of doubles ("0.5,1,2");
  // same error behavior as get_double().
  std::vector<double> get_double_list(const std::string& name,
                                      const std::string& fallback) const {
    const std::string s = get(name, fallback);
    std::vector<double> out;
    size_t start = 0;
    while (start <= s.size()) {
      const size_t end = s.find(',', start);
      const std::string tok = end == std::string::npos
                                  ? s.substr(start)
                                  : s.substr(start, end - start);
      out.push_back(parse_double_or_die(name, tok));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    return out;
  }

  // Value of "--name" as a comma-separated list of non-negative 32-bit
  // integers ("64,256,1024"); same error behavior as get_u32().
  std::vector<uint32_t> get_u32_list(const std::string& name,
                                     const std::string& fallback) const {
    const std::string s = get(name, fallback);
    std::vector<uint32_t> out;
    size_t start = 0;
    while (start <= s.size()) {
      const size_t end = s.find(',', start);
      const std::string tok = end == std::string::npos
                                  ? s.substr(start)
                                  : s.substr(start, end - start);
      out.push_back(parse_u32_or_die(name, tok));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    return out;
  }

  // Value of "--name" as a comma-separated list of strings
  // ("flat,tdl-a,tdl-c"); empty tokens are preserved so validation stays at
  // the call site.
  std::vector<std::string> get_str_list(const std::string& name,
                                        const std::string& fallback) const {
    const std::string s = get(name, fallback);
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
      const size_t end = s.find(',', start);
      out.push_back(end == std::string::npos ? s.substr(start)
                                             : s.substr(start, end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    return out;
  }

  // True if the bare flag "--name" appears anywhere.
  bool has(const std::string& name) const {
    for (const auto& a : args_) {
      if (a == name) return true;
    }
    return false;
  }

  // First non-flag positional argument, or fallback.
  std::string positional(const std::string& fallback) const {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) == 0) {
        ++i;  // skip the flag's value
        continue;
      }
      return args_[i];
    }
    return fallback;
  }

 private:
  static double parse_double_or_die(const std::string& name,
                                    const std::string& tok) {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size()) {
      std::fprintf(stderr, "bad value '%s' for %s\n", tok.c_str(),
                   name.c_str());
      std::exit(2);
    }
    return v;
  }

  static uint32_t parse_u32_or_die(const std::string& name,
                                   const std::string& tok) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (tok.empty() || tok[0] == '-' || end != tok.c_str() + tok.size() ||
        v > 0xfffffffful) {
      std::fprintf(stderr, "bad value '%s' for %s\n", tok.c_str(),
                   name.c_str());
      std::exit(2);
    }
    return static_cast<uint32_t>(v);
  }

  std::vector<std::string> args_;
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_CLI_H
