// Packed complex Q1.15 sample: real in the low half-word, imaginary in the
// high half-word of one 32-bit word.  This is the memory format of all
// simulated kernels (one L1 word per complex sample) and mirrors the SIMD
// (v2s) layout used by the paper's Snitch kernels.
#ifndef PUSCHPOOL_COMMON_COMPLEX16_H
#define PUSCHPOOL_COMMON_COMPLEX16_H

#include <cmath>
#include <complex>
#include <cstdint>

#include "common/fixed_point.h"

namespace pp::common {

struct cq15 {
  int16_t re = 0;
  int16_t im = 0;

  friend constexpr bool operator==(cq15 a, cq15 b) = default;
};

// --- packing -----------------------------------------------------------

constexpr uint32_t pack_cq15(cq15 v) {
  return (static_cast<uint32_t>(static_cast<uint16_t>(v.im)) << 16) |
         static_cast<uint32_t>(static_cast<uint16_t>(v.re));
}

constexpr cq15 unpack_cq15(uint32_t w) {
  return cq15{static_cast<int16_t>(static_cast<uint16_t>(w & 0xffffu)),
              static_cast<int16_t>(static_cast<uint16_t>(w >> 16))};
}

// --- conversions --------------------------------------------------------

inline cq15 to_cq15(std::complex<double> z) {
  return cq15{to_q15(z.real()), to_q15(z.imag())};
}

inline std::complex<double> to_cd(cq15 v) {
  return {from_q15(v.re), from_q15(v.im)};
}

// --- arithmetic ---------------------------------------------------------

constexpr cq15 cadd(cq15 a, cq15 b) {
  return cq15{add_q15(a.re, b.re), add_q15(a.im, b.im)};
}
constexpr cq15 csub(cq15 a, cq15 b) {
  return cq15{sub_q15(a.re, b.re), sub_q15(a.im, b.im)};
}
constexpr cq15 cneg(cq15 a) {
  return cq15{sat16(-static_cast<int32_t>(a.re)), sat16(-static_cast<int32_t>(a.im))};
}
constexpr cq15 cconj(cq15 a) {
  return cq15{a.re, sat16(-static_cast<int32_t>(a.im))};
}
// Multiply by +j / -j (free rotations used by the radix-4 butterfly).
constexpr cq15 cmul_j(cq15 a) {
  return cq15{sat16(-static_cast<int32_t>(a.im)), a.re};
}
constexpr cq15 cmul_mj(cq15 a) {
  return cq15{a.im, sat16(-static_cast<int32_t>(a.re))};
}

// Complex multiply with rounding on each component (two dotp-style ops).
// The cross-product sums are kept in 64 bits: the imaginary sum reaches
// exactly +2^31 when both operands are {-0x8000, -0x8000}, one past what an
// int32 holds (the real sum stays inside [-2^31+2^15, 2^31-2^15] because a
// negative product can be at most 0x8000 * 0x7fff in magnitude).
constexpr cq15 cmul(cq15 a, cq15 b) {
  const int64_t rr = static_cast<int64_t>(a.re) * b.re - static_cast<int64_t>(a.im) * b.im;
  const int64_t ii = static_cast<int64_t>(a.re) * b.im + static_cast<int64_t>(a.im) * b.re;
  constexpr int64_t half = 1 << (q15_frac_bits - 1);
  return cq15{sat16((rr + half) >> q15_frac_bits),
              sat16((ii + half) >> q15_frac_bits)};
}

// Divide each component by 2 / by 4 (radix-2/4 stage scaling).
constexpr cq15 chalf(cq15 a) {
  return cq15{static_cast<int16_t>(a.re >> 1), static_cast<int16_t>(a.im >> 1)};
}
constexpr cq15 cquarter(cq15 a) {
  return cq15{static_cast<int16_t>(a.re >> 2), static_cast<int16_t>(a.im >> 2)};
}

// --- wide accumulator ----------------------------------------------------
//
// MAC chains keep full 32-bit products in 64-bit accumulators and round once
// on writeback, like a SIMD dot-product unit with a wide accumulator.
struct cacc {
  int64_t re = 0;
  int64_t im = 0;

  constexpr void mac(cq15 a, cq15 b) {
    re += static_cast<int64_t>(a.re) * b.re - static_cast<int64_t>(a.im) * b.im;
    im += static_cast<int64_t>(a.re) * b.im + static_cast<int64_t>(a.im) * b.re;
  }
  // acc += a * conj(b)
  constexpr void mac_conj(cq15 a, cq15 b) {
    re += static_cast<int64_t>(a.re) * b.re + static_cast<int64_t>(a.im) * b.im;
    im += static_cast<int64_t>(a.im) * b.re - static_cast<int64_t>(a.re) * b.im;
  }
  constexpr void msu(cq15 a, cq15 b) {
    re -= static_cast<int64_t>(a.re) * b.re - static_cast<int64_t>(a.im) * b.im;
    im -= static_cast<int64_t>(a.re) * b.im + static_cast<int64_t>(a.im) * b.re;
  }
  // acc -= a * conj(b)
  constexpr void msu_conj(cq15 a, cq15 b) {
    re -= static_cast<int64_t>(a.re) * b.re + static_cast<int64_t>(a.im) * b.im;
    im -= static_cast<int64_t>(a.im) * b.re - static_cast<int64_t>(a.re) * b.im;
  }
  // acc += v (a Q1.15 value widened to the accumulator's Q-format)
  constexpr void add_q15(cq15 v) {
    re += static_cast<int64_t>(v.re) << q15_frac_bits;
    im += static_cast<int64_t>(v.im) << q15_frac_bits;
  }
  // Round the Q2.30 accumulator back to a Q1.15 complex value.
  constexpr cq15 round() const {
    constexpr int64_t half = 1ll << (q15_frac_bits - 1);
    return cq15{sat16((re + half) >> q15_frac_bits), sat16((im + half) >> q15_frac_bits)};
  }
};

// Squared magnitude |a|^2 as a Q1.30 value in an int64 (no overflow).
constexpr int64_t cmag2_raw(cq15 a) {
  return static_cast<int64_t>(a.re) * a.re + static_cast<int64_t>(a.im) * a.im;
}

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_COMPLEX16_H
