// Q1.15 fixed-point scalar arithmetic.
//
// The paper's kernels operate on 16-bit fixed-point data so that one complex
// sample packs into a single 32-bit word (this is what makes the published
// load/MAC ratios possible: 4 loads per radix-4 butterfly, 8 loads per 4x4
// MMM window).  This header provides the scalar Q1.15 layer: saturating
// conversion, rounding multiply, divide and square root, matching the
// behaviour of PULP-style SIMD dot-product units (full 32-bit products,
// shift-and-round on writeback).
#ifndef PUSCHPOOL_COMMON_FIXED_POINT_H
#define PUSCHPOOL_COMMON_FIXED_POINT_H

#include <cstdint>

namespace pp::common {

// Number of fractional bits in Q1.15.
inline constexpr int q15_frac_bits = 15;
inline constexpr int32_t q15_one = 1 << q15_frac_bits;   // +1.0 (saturates)
inline constexpr int16_t q15_max = 0x7fff;               // largest value
inline constexpr int16_t q15_min = -0x8000;

// Saturate a wide integer into the int16 range.
constexpr int16_t sat16(int64_t v) {
  if (v > q15_max) return q15_max;
  if (v < q15_min) return q15_min;
  return static_cast<int16_t>(v);
}

// Convert a real number in [-1, 1) to Q1.15 with rounding and saturation.
// Rounds half away from zero.  Out-of-range magnitudes saturate on the
// double side, so the double -> int64 cast below never overflows (UB).
constexpr int16_t to_q15(double x) {
  const double scaled = x * static_cast<double>(q15_one);
  if (scaled >= static_cast<double>(q15_max)) return q15_max;
  if (scaled <= static_cast<double>(q15_min)) return q15_min;
  const int64_t r = static_cast<int64_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
  return sat16(r);
}

// Convert Q1.15 back to a real number.
constexpr double from_q15(int16_t v) {
  return static_cast<double>(v) / static_cast<double>(q15_one);
}

// Rounding Q1.15 multiply: (a*b + 2^14) >> 15, saturated.
constexpr int16_t mul_q15(int16_t a, int16_t b) {
  const int32_t p = static_cast<int32_t>(a) * static_cast<int32_t>(b);
  return sat16((static_cast<int64_t>(p) + (1 << (q15_frac_bits - 1))) >> q15_frac_bits);
}

// Saturating add / sub.
constexpr int16_t add_q15(int16_t a, int16_t b) {
  return sat16(static_cast<int64_t>(a) + b);
}
constexpr int16_t sub_q15(int16_t a, int16_t b) {
  return sat16(static_cast<int64_t>(a) - b);
}

// Q1.15 division a/b, saturated.  b == 0 saturates toward the sign of a.
constexpr int16_t div_q15(int16_t a, int16_t b) {
  if (b == 0) return a >= 0 ? q15_max : q15_min;
  const int64_t num = (static_cast<int64_t>(a) << q15_frac_bits);
  // Round to nearest (round half away from zero).
  const int64_t half = b > 0 ? b / 2 : -static_cast<int64_t>(b) / 2;
  const int64_t q = (num >= 0 ? num + half : num - half) / b;
  return sat16(q);
}

// Integer square root of a 32-bit unsigned value (floor).
constexpr uint32_t isqrt_u32(uint32_t v) {
  uint32_t res = 0;
  uint32_t bit = 1u << 30;
  while (bit > v) bit >>= 2;
  while (bit != 0) {
    if (v >= res + bit) {
      v -= res + bit;
      res = (res >> 1) + bit;
    } else {
      res >>= 1;
    }
    bit >>= 2;
  }
  return res;
}

// Q1.15 square root of a non-negative Q1.15 value.
// sqrt(v / 2^15) * 2^15 == isqrt(v * 2^15).
constexpr int16_t sqrt_q15(int16_t v) {
  if (v <= 0) return 0;
  const uint32_t wide = static_cast<uint32_t>(v) << q15_frac_bits;
  return sat16(static_cast<int64_t>(isqrt_u32(wide)));
}

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_FIXED_POINT_H
