#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace pp::common {

// Workspace growth primitive: size a reusable vector to exactly n elements
// while guaranteeing capacity only ever moves up, geometrically.  A plain
// resize(n) above capacity grows to exactly n, so a slowly increasing
// shape sequence reallocates on every step; ws_grow doubles instead, which
// is what lets workspaces reach a stable footprint after a bounded number
// of slots ("grow, then stabilize" - docs/DETERMINISM.md §10).  Shrinking
// n never releases storage.
template <typename T>
void ws_grow(std::vector<T>& v, size_t n) {
  if (n > v.capacity()) {
    v.reserve(n > 2 * v.capacity() ? n : 2 * v.capacity());
  }
  v.resize(n);
}

// Flat strided 2-D grid over a single ws_grow-managed vector.  Replaces
// the nested vector-of-vector buffers on the slot hot path: one backing
// allocation instead of rows+1, rows exposed as spans, and reshaping to
// any (rows x cols) that fits the high-water footprint is allocation-free.
// Row r occupies [r*cols, (r+1)*cols) - contiguous, so flat consumers can
// use data() directly.
template <typename T>
class Ws_grid {
 public:
  Ws_grid() = default;
  Ws_grid(size_t rows, size_t cols) { shape(rows, cols); }

  // Size to rows x cols; contents are unspecified until written (callers
  // must fully overwrite every row they read back - the workspace
  // non-interference rule).
  void shape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    ws_grow(flat_, rows * cols);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  std::span<T> row(size_t r) {
    PP_CHECK(r < rows_, "Ws_grid row out of range");
    return {flat_.data() + r * cols_, cols_};
  }
  std::span<const T> row(size_t r) const {
    PP_CHECK(r < rows_, "Ws_grid row out of range");
    return {flat_.data() + r * cols_, cols_};
  }

  T& at(size_t r, size_t c) { return flat_[r * cols_ + c]; }
  const T& at(size_t r, size_t c) const { return flat_[r * cols_ + c]; }

  T* data() { return flat_.data(); }
  const T* data() const { return flat_.data(); }

  // Capacity actually held by the backing store, in bytes - the
  // growth-then-stable tests pin this across repeat runs.
  size_t footprint_bytes() const { return flat_.capacity() * sizeof(T); }

 private:
  std::vector<T> flat_;
  size_t rows_ = 0;
  size_t cols_ = 0;
};

// Grow-only nested rows, for the call paths that structurally require
// std::vector<T> rows (ref::fft's in-place helpers, the fixed kernels'
// vector-of-vector pilot tables).  The outer vector never shrinks -
// shrinking a vector<vector<T>> destroys the inner vectors and frees
// their capacity, which is exactly the churn a workspace exists to avoid
// - so when `rows` drops, the extra trailing rows simply go unused
// (consumers take explicit row counts).  Each of the first `rows` inner
// vectors is sized to cols via ws_grow.
template <typename T>
void ws_shape_rows(std::vector<std::vector<T>>& v, size_t rows, size_t cols) {
  if (v.size() < rows) v.resize(rows);
  for (size_t r = 0; r < rows; ++r) ws_grow(v[r], cols);
}

// Footprint of a nested buffer (outer capacity + every inner capacity) -
// the unit the growth-then-stable tests pin.
template <typename T>
size_t ws_rows_footprint(const std::vector<std::vector<T>>& v) {
  size_t b = v.capacity() * sizeof(std::vector<T>);
  for (const auto& row : v) b += row.capacity() * sizeof(T);
  return b;
}

}  // namespace pp::common
