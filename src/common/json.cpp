#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/check.h"

namespace pp::common {

// ---- building --------------------------------------------------------------

Json& Json::set(std::string key, Json value) {
  PP_CHECK(type_ == Type::object, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  PP_CHECK(type_ == Type::array, "Json::push on a non-array");
  elems_.push_back(std::move(value));
  return *this;
}

// ---- inspection -------------------------------------------------------------

bool Json::boolean() const {
  PP_CHECK(type_ == Type::boolean, "Json::boolean on a non-boolean");
  return bool_;
}

double Json::num() const {
  PP_CHECK(type_ == Type::number, "Json::num on a non-number");
  return num_;
}

int64_t Json::num_int() const {
  PP_CHECK(type_ == Type::number, "Json::num_int on a non-number");
  return is_int_ ? int_ : static_cast<int64_t>(num_);
}

const std::string& Json::str() const {
  PP_CHECK(type_ == Type::string, "Json::str on a non-string");
  return str_;
}

size_t Json::size() const {
  if (type_ == Type::array) return elems_.size();
  if (type_ == Type::object) return members_.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  PP_CHECK(type_ == Type::array && i < elems_.size(),
           "Json::at out of range or non-array");
  return elems_[i];
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  PP_CHECK(type_ == Type::object, "Json::members on a non-object");
  return members_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::get_str(const std::string& key, std::string fallback) const {
  const Json* v = find(key);
  return v && v->type_ == Type::string ? v->str_ : std::move(fallback);
}

double Json::get_num(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v && v->type_ == Type::number ? v->num_ : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v && v->type_ == Type::boolean ? v->bool_ : fallback;
}

// ---- serialization ----------------------------------------------------------

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // includes UTF-8 continuation bytes, passed through
        }
    }
  }
  return out;
}

namespace {

std::string number_text(bool is_int, int64_t i, double d) {
  char buf[40];
  if (is_int) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(i));
  } else if (std::isfinite(d)) {
    // %.17g round-trips every double; trim to %.15g when that is exact so
    // common values stay readable (0.1, not 0.10000000000000001).
    std::snprintf(buf, sizeof buf, "%.15g", d);
    if (std::strtod(buf, nullptr) != d) {
      std::snprintf(buf, sizeof buf, "%.17g", d);
    }
  } else {
    // JSON has no inf/nan; null is the conventional stand-in.
    return "null";
  }
  return buf;
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::number: out += number_text(is_int_, int_, num_); break;
    case Type::string:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::array: {
      if (elems_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (size_t i = 0; i < elems_.size(); ++i) {
        out += pad;
        elems_[i].write(out, indent, depth + 1);
        if (i + 1 < elems_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.write(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ---- parsing ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (!literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!literal("null")) fail("bad literal");
        return Json();
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("unescaped control character in string");
        }
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; lone surrogates encode as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    bool is_int = true;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      is_int = false;
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      is_int = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    char* end = nullptr;
    if (is_int) {
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end != tok.c_str() + tok.size()) fail("bad number");
      return Json(static_cast<int64_t>(v));
    }
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return Json(v);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).document(); }

}  // namespace pp::common
