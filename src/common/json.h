// Minimal dependency-free JSON value: writer + parser.
//
// The benchmark report layer (bench/report.h) serializes through this type
// and the bench_merge aggregator parses the emitted files back, so both
// directions live here and round-trip exactly:
//
//   auto j = Json::object();
//   j.set("name", "fft.parallel").set("cycles", uint64_t{8192});
//   j.set("stalls", Json::array().push(0.12).push(0.03));
//   std::string text = j.dump();          // pretty, 2-space indent
//   Json back = Json::parse(text);        // throws std::runtime_error
//
// Integers print without a decimal point and doubles with enough digits
// ("%.15g"/"%.17g") to round-trip bit-exactly - a report diff must never
// be caused by the serializer.  One deliberate collapse: an
// integral-valued double (1.0) serializes as "1" and re-parses as an
// integer, so is_int() identity survives a round-trip only for
// non-integral doubles; the numeric value always survives.  Strings are
// escaped per RFC 8259 (quote, backslash, control characters); non-ASCII
// bytes pass through as UTF-8.  Object keys keep insertion order.
#ifndef PUSCHPOOL_COMMON_JSON_H
#define PUSCHPOOL_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pp::common {

class Json {
 public:
  enum class Type { null, boolean, number, string, array, object };

  // ---- construction -------------------------------------------------------
  Json() = default;  // null
  Json(bool v) : type_(Type::boolean), bool_(v) {}
  Json(double v) : type_(Type::number), num_(v) {}
  Json(int v) : Json(static_cast<int64_t>(v)) {}
  Json(int64_t v) : type_(Type::number), num_(static_cast<double>(v)),
                    int_(v), is_int_(true) {}
  // Values beyond int64 range (never produced by the report layer) fall
  // back to double rather than wrapping negative.
  Json(uint64_t v)
      : type_(Type::number), num_(static_cast<double>(v)) {
    if (v <= static_cast<uint64_t>(INT64_MAX)) {
      int_ = static_cast<int64_t>(v);
      is_int_ = true;
    }
  }
  Json(std::string v) : type_(Type::string), str_(std::move(v)) {}
  Json(const char* v) : Json(std::string(v)) {}

  static Json object() { Json j; j.type_ = Type::object; return j; }
  static Json array() { Json j; j.type_ = Type::array; return j; }

  // ---- building -----------------------------------------------------------
  // Object member (appends; replaces an existing key in place).
  Json& set(std::string key, Json value);
  // Array element.
  Json& push(Json value);

  // ---- inspection ---------------------------------------------------------
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_int() const { return type_ == Type::number && is_int_; }

  bool boolean() const;        // aborts on type mismatch (programming error)
  double num() const;
  int64_t num_int() const;
  const std::string& str() const;

  // Array elements / object members; size() is 0 for scalars.
  size_t size() const;
  const Json& at(size_t i) const;                     // array index
  const std::vector<std::pair<std::string, Json>>& members() const;
  // Object lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  // Object lookup with fallback for scalar reads.
  std::string get_str(const std::string& key, std::string fallback) const;
  double get_num(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // ---- serialization ------------------------------------------------------
  // Pretty-printed with `indent` spaces per level; indent 0 = compact.
  std::string dump(int indent = 2) const;
  // RFC 8259 string escaping (without the surrounding quotes).
  static std::string escape(const std::string& s);

  // ---- parsing ------------------------------------------------------------
  // Parses exactly one JSON document (trailing whitespace allowed, trailing
  // garbage is an error).  Throws std::runtime_error with byte offset.
  static Json parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Json> elems_;                             // array
  std::vector<std::pair<std::string, Json>> members_;   // object
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_JSON_H
