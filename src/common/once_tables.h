// Fixed-slot lazy table cache: up to N immutable vectors, each built on
// first use under std::call_once and never written again, so concurrent
// readers need no lock after the build.  This is the one shared shape behind
// the FFT twiddle caches (Q15 and double-precision stage twiddles) and the
// QAM constellation cache; instances live as function-local statics at the
// use sites.
#ifndef PUSCHPOOL_COMMON_ONCE_TABLES_H
#define PUSCHPOOL_COMMON_ONCE_TABLES_H

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace pp::common {

template <typename T, size_t N>
class Once_tables {
 public:
  // Returns the table in `slot`, building it with `build()` exactly once
  // across all threads.  The reference stays valid for the cache's lifetime.
  template <typename Build>
  const std::vector<T>& get(size_t slot, Build build) {
    PP_CHECK(slot < N, "lazy-table slot out of range");
    std::call_once(flags_[slot], [&] { tables_[slot] = build(); });
    return tables_[slot];
  }

 private:
  std::array<std::once_flag, N> flags_;
  std::array<std::vector<T>, N> tables_;
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_ONCE_TABLES_H
