// Deterministic PRNG (xoshiro128++) plus the distributions the PHY substrate
// needs (uniform, standard normal via Box-Muller).  Everything in puschpool
// that needs randomness takes an explicit seeded Rng so runs are repeatable.
#ifndef PUSCHPOOL_COMMON_RNG_H
#define PUSCHPOOL_COMMON_RNG_H

#include <cmath>
#include <complex>
#include <cstdint>

namespace pp::common {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = static_cast<uint32_t>((z ^ (z >> 31)) >> 16);
    }
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  uint32_t next_u32() {
    const uint32_t result = rotl(state_[0] + state_[3], 7) + state_[0];
    const uint32_t t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() { return next_u32() * 0x1p-32; }

  // Uniform integer in [0, n); n = 0 yields 0.  Lemire's multiply-shift with
  // rejection: exactly uniform for every n, and integer-only — the old
  // `uniform() * n` float path truncated through a double rounding step,
  // which biases buckets and (for n close to 2^32) risks returning n.
  uint32_t uniform_int(uint32_t n) {
    if (n == 0) return 0;
    uint64_t m = static_cast<uint64_t>(next_u32()) * n;
    uint32_t low = static_cast<uint32_t>(m);
    if (low < n) {
      const uint32_t threshold = (0u - n) % n;  // 2^32 mod n
      while (low < threshold) {
        m = static_cast<uint64_t>(next_u32()) * n;
        low = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  // Standard normal N(0,1) via Box-Muller.
  double normal() {
    double u1 = uniform();
    if (u1 < 1e-12) u1 = 1e-12;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Circularly-symmetric complex normal with E[|z|^2] = 1.
  std::complex<double> cnormal() {
    return {normal() * M_SQRT1_2, normal() * M_SQRT1_2};
  }

  // Deterministic per-stream seed derivation: SplitMix64 over
  // base + (stream + 1) * golden-gamma.  Streams of the same base are
  // decorrelated, the map is pure (no global state), and it is the
  // documented contract for the sweep engine's per-slot seeds:
  //   slot seed = Rng::derive_seed(base_seed, slot_index).
  static uint64_t derive_seed(uint64_t base, uint64_t stream) {
    uint64_t z = base + (stream + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  static uint32_t rotl(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
  uint32_t state_[4] = {};
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_RNG_H
