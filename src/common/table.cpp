#include "common/table.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace pp::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    out += " |\n";
  };

  std::string out;
  emit_row(header_, out);
  out += "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string Table::fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace pp::common
