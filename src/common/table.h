// Minimal fixed-width ASCII table printer used by the benchmark harnesses to
// reproduce the paper's tables and figure series as text.
#ifndef PUSCHPOOL_COMMON_TABLE_H
#define PUSCHPOOL_COMMON_TABLE_H

#include <string>
#include <vector>

namespace pp::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Append one row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  // Render with column alignment; returns the formatted table.
  std::string str() const;

  // Convenience: render to stdout.
  void print() const;

  // Formatting helpers for cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(uint64_t v);
  static std::string fmt(int64_t v);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_TABLE_H
