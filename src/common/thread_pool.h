// Host worker pool for intra-slot kernel parallelism.
//
// The paper's execution model is N cores running the same kernel on static
// tiles of the problem, synchronizing at counting barriers (sim::Barrier is
// the simulated version, §IV).  Thread_pool is the host mirror of that
// model: a fixed set of OS threads dispatched SPMD-style - every worker
// runs the same job with its worker id - plus Counting_barrier, the host
// analogue of the L1 counter + wake-up trigger.  Two properties make it
// usable for bit-reproducible numerics (runtime::Parallel_backend):
//
//   static partition   slice() is a pure function of (n, worker, workers),
//                      so which elements a worker owns never depends on
//                      scheduling
//   caller participates  worker 0 is the calling thread; a 1-worker pool
//                      spawns no threads and run() degenerates to a plain
//                      call, so the serial path is literally the same code
//
// Workers persist across run() calls (no per-launch thread spawn); the pool
// is not reentrant (run() must not be called from inside a job).
#ifndef PUSCHPOOL_COMMON_THREAD_POOL_H
#define PUSCHPOOL_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pp::common {

// Reusable arrive-and-wait barrier for a fixed set of participants: the
// host analogue of sim::Barrier's counter + broadcast wake-up.  The last
// arrival of a generation releases everyone; the mutex hand-off gives the
// happens-before edge that makes tile writes before the barrier visible to
// reads after it.
class Counting_barrier {
 public:
  explicit Counting_barrier(uint32_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    if (parties_ <= 1) return;
    std::unique_lock<std::mutex> lock(m_);
    const uint64_t gen = generation_;
    if (++count_ == parties_) {
      count_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

 private:
  const uint32_t parties_;
  std::mutex m_;
  std::condition_variable cv_;
  uint32_t count_ = 0;
  uint64_t generation_ = 0;
};

class Thread_pool {
 public:
  // 0 = one worker per hardware thread (min 1).
  explicit Thread_pool(uint32_t workers = 0) {
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    workers_ = workers;
    threads_.reserve(workers - 1);
    for (uint32_t w = 1; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Thread_pool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  Thread_pool(const Thread_pool&) = delete;
  Thread_pool& operator=(const Thread_pool&) = delete;

  uint32_t workers() const { return workers_; }

  // Runs job(worker_id) on every worker (ids 0..workers()-1, id 0 on the
  // calling thread) and returns once all have finished.  The callable is
  // borrowed by reference for the duration of the call and dispatched
  // through a function-pointer + context pair - no std::function, so a
  // dispatch never heap-allocates however large the lambda's capture is
  // (the serving loop's zero-allocation steady state depends on this;
  // bench_serve_latency gates it under PP_COUNT_ALLOCS).
  template <typename F>
  void run(const F& job) {
    if (workers_ == 1) {
      job(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(m_);
      job_ctx_ = &job;
      job_fn_ = [](const void* ctx, uint32_t w) {
        (*static_cast<const F*>(ctx))(w);
      };
      done_ = 0;
      ++epoch_;
    }
    cv_.notify_all();
    job(0);
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [&] { return done_ == threads_.size(); });
    job_ctx_ = nullptr;
    job_fn_ = nullptr;
  }

  // Contiguous slice [first, last) of [0, n) owned by `worker` out of
  // `workers`: sizes differ by at most one, assignment is a pure function
  // of the arguments (the determinism contract of Parallel_backend).
  static std::pair<uint64_t, uint64_t> slice(uint64_t n, uint32_t worker,
                                             uint32_t workers) {
    const uint64_t base = n / workers;
    const uint64_t rem = n % workers;
    const uint64_t first =
        worker * base + std::min<uint64_t>(worker, rem);
    return {first, first + base + (worker < rem ? 1 : 0)};
  }

  // Statically-partitioned parallel loop: fn(i) for every i in [0, n),
  // worker w covering its slice() in index order.
  template <typename F>
  void parallel_for(uint64_t n, const F& fn) {
    run([&](uint32_t w) {
      const auto [first, last] = slice(n, w, workers_);
      for (uint64_t i = first; i < last; ++i) fn(i);
    });
  }

 private:
  void worker_loop(uint32_t id) {
    uint64_t seen = 0;
    for (;;) {
      void (*fn)(const void*, uint32_t) = nullptr;
      const void* ctx = nullptr;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        fn = job_fn_;
        ctx = job_ctx_;
      }
      fn(ctx, id);
      {
        std::lock_guard<std::mutex> lock(m_);
        ++done_;
      }
      done_cv_.notify_one();
    }
  }

  uint32_t workers_ = 1;
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const void* job_ctx_ = nullptr;
  void (*job_fn_)(const void*, uint32_t) = nullptr;
  uint64_t epoch_ = 0;
  uint32_t done_ = 0;
  bool stop_ = false;
};

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_THREAD_POOL_H
