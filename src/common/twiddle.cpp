#include "common/twiddle.h"

#include <cmath>

#include "common/check.h"
#include "common/once_tables.h"

namespace pp::common {

const std::vector<cq15>& twiddle_q15(uint32_t n) {
  PP_CHECK(n >= 2 && (n & (n - 1)) == 0,
           "twiddle table size must be a power of two");
  static Once_tables<cq15, 32> cache;  // one slot per power of two
  uint32_t log2n = 0;
  while ((1u << log2n) != n) ++log2n;
  return cache.get(log2n, [n] {
    std::vector<cq15> t(n);
    for (uint32_t e = 0; e < n; ++e) {
      const double ang =
          -2.0 * M_PI * static_cast<double>(e) / static_cast<double>(n);
      t[e] = to_cq15({std::cos(ang), std::sin(ang)});
    }
    return t;
  });
}

}  // namespace pp::common
