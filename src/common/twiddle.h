// Shared, thread-safe FFT twiddle-factor table.
//
// Q15 forward twiddles for a size-n transform (entry e holds
// round(exp(-2*pi*i*e/n)) in Q1.15) are built on first use under
// std::call_once and cached per size for the lifetime of the process.
// Every FFT kernel instance of the same size reads the same immutable
// table, so concurrent sweep workers neither race on initialization nor
// recompute n sin/cos pairs per kernel construction.
#ifndef PUSCHPOOL_COMMON_TWIDDLE_H
#define PUSCHPOOL_COMMON_TWIDDLE_H

#include <cstdint>
#include <vector>

#include "common/complex16.h"

namespace pp::common {

// n must be a power of two >= 2 (the radix-4 kernels use powers of four).
// The returned reference stays valid for the lifetime of the process.
const std::vector<cq15>& twiddle_q15(uint32_t n);

}  // namespace pp::common

#endif  // PUSCHPOOL_COMMON_TWIDDLE_H
