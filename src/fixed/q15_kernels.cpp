#include "fixed/q15_kernels.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/fixed_point.h"
#include "fixed/simd.h"

namespace pp::fixed {

using common::cacc;
using common::cadd;
using common::cconj;
using common::cmag2_raw;
using common::cmul;
using common::cmul_mj;
using common::cquarter;
using common::csub;
using common::div_q15;
using common::q15_frac_bits;
using common::sat16;
using common::sqrt_q15;

// ---- FFT ------------------------------------------------------------------

Fft_plan::Fft_plan(uint32_t n) : geom(n) {
  tw.resize(geom.stages);
  for (uint32_t k = 0; k + 1 < geom.stages; ++k) {
    for (uint32_t m = 1; m < 4; ++m) {
      auto& t = tw[k][m - 1];
      t.resize(n / 4);
      for (uint32_t g = 0; g < n / 4; ++g) {
        t[g] = geom.twiddle(geom.tw_exp(k, g, m));
      }
    }
  }
}

const Fft_plan& fft_plan(uint32_t n) {
  static std::mutex mu;
  static std::map<uint32_t, std::unique_ptr<Fft_plan>> plans;  // process life
  std::lock_guard<std::mutex> lock(mu);
  auto it = plans.find(n);
  if (it == plans.end()) {
    it = plans.emplace(n, std::make_unique<Fft_plan>(n)).first;
  }
  return *it->second;
}

namespace {

// The radix-4 DIF butterfly of src/kernels/fft.cpp (functional lines only).
inline void butterfly_scalar(const Fft_plan& plan, uint32_t k, cq15* buf,
                             cq15* out, uint32_t g, bool last) {
  const kernels::Fft_geom& geom = plan.geom;
  const uint32_t d = geom.d(k);
  const uint32_t base = geom.base(k, g);
  cq15 x[4];
  for (uint32_t j = 0; j < 4; ++j) x[j] = cquarter(buf[base + j * d]);
  const cq15 a = cadd(x[0], x[2]);
  const cq15 cc = csub(x[0], x[2]);
  const cq15 b = cadd(x[1], x[3]);
  const cq15 dd = csub(x[1], x[3]);
  const cq15 dj = cmul_mj(dd);
  cq15 v[4];
  v[0] = cadd(a, b);
  v[1] = cadd(cc, dj);
  v[2] = csub(a, b);
  v[3] = csub(cc, dj);
  if (!last) {
    for (uint32_t m = 1; m < 4; ++m) v[m] = cmul(v[m], plan.tw[k][m - 1][g]);
  }
  for (uint32_t m = 0; m < 4; ++m) {
    const uint32_t i_out = base + m * d;
    if (last) {
      out[geom.digitrev(i_out)] = v[m];
    } else {
      buf[i_out] = v[m];
    }
  }
}

}  // namespace

void fft_stage(const Fft_plan& plan, uint32_t k, cq15* buf, cq15* out,
               uint32_t g_begin, uint32_t g_end, bool simd) {
  const kernels::Fft_geom& geom = plan.geom;
  const bool last = k + 1 == geom.stages;
  const uint32_t d = geom.d(k);
  uint32_t g = g_begin;
  while (g < g_end) {
    // Butterflies of one d-group are contiguous in memory: for g = G*d + t,
    // port j sits at (G*4d + t) + j*d, consecutive in t.  Vectorize each
    // contiguous run; the tail (and the digit-reversed last stage) is
    // scalar.
    const uint32_t run = std::min(g_end - g, d - g % d);
    uint32_t done = 0;
    if (simd && !last) {
      done = butterfly_prefix(buf + geom.base(k, g), d,
                              plan.tw[k][0].data() + g,
                              plan.tw[k][1].data() + g,
                              plan.tw[k][2].data() + g, run);
    }
    for (uint32_t t = done; t < run; ++t) {
      butterfly_scalar(plan, k, buf, out, g + t, last);
    }
    g += run;
  }
}

void fft_transform(const Fft_plan& plan, cq15* buf, cq15* out, bool simd) {
  for (uint32_t k = 0; k < plan.geom.stages; ++k) {
    fft_stage(plan, k, buf, out, 0, plan.geom.n / 4, simd);
  }
}

// ---- MMM ------------------------------------------------------------------

void mmm_rows(const cq15* a, const cq15* b, cq15* c, uint32_t k_dim,
              uint32_t p, uint32_t i_begin, uint32_t i_end) {
  for (uint32_t i = i_begin; i < i_end; ++i) {
    const cq15* arow = a + static_cast<size_t>(i) * k_dim;
    for (uint32_t q = 0; q < p; ++q) {
      int64_t re = 0, im = 0;
#pragma omp simd reduction(+ : re, im)
      for (uint32_t k = 0; k < k_dim; ++k) {
        const cq15 av = arow[k];
        const cq15 bv = b[static_cast<size_t>(k) * p + q];
        re += static_cast<int64_t>(av.re) * bv.re -
              static_cast<int64_t>(av.im) * bv.im;
        im += static_cast<int64_t>(av.re) * bv.im +
              static_cast<int64_t>(av.im) * bv.re;
      }
      c[static_cast<size_t>(i) * p + q] = cacc{re, im}.round();
    }
  }
}

// ---- CHE ------------------------------------------------------------------

void che_subcarriers(const std::vector<std::vector<cq15>>& y_sep,
                     const std::vector<std::vector<cq15>>& pilots, cq15* h,
                     uint32_t n_b, uint32_t n_l, uint32_t sc_begin,
                     uint32_t sc_end, bool simd) {
  // Stack scratch, beam-blocked: this runs on the slot hot path once per
  // worker per slot, so it must not heap-allocate (the serving loop's
  // zero-steady-state contract).  The product is elementwise, so blocking
  // leaves every output bit unchanged.
  cq15 row[64];
  for (uint32_t sc = sc_begin; sc < sc_end; ++sc) {
    for (uint32_t l = 0; l < n_l; ++l) {
      const cq15 xc = cconj(pilots[l][sc]);
      const cq15* y = y_sep[l].data() + static_cast<size_t>(sc) * n_b;
      for (uint32_t b0 = 0; b0 < n_b; b0 += 64) {
        const uint32_t blk = std::min(64u, n_b - b0);
        uint32_t done = 0;
        if (simd) done = cmul_double_prefix(y + b0, xc, row, blk);
        for (uint32_t b = done; b < blk; ++b) {
          const cq15 hv = cmul(y[b0 + b], xc);
          row[b] = cadd(hv, hv);  // doubling folds the pilot |x|^2 = 1/2
        }
        for (uint32_t b = 0; b < blk; ++b) {
          h[(static_cast<size_t>(sc) * n_b + b0 + b) * n_l + l] = row[b];
        }
      }
    }
  }
}

// ---- NE -------------------------------------------------------------------

Sc_block sc_block(uint32_t n_sc, uint32_t n_cores, uint32_t idx) {
  const uint32_t chunk = (n_sc + n_cores - 1) / n_cores;
  const uint32_t lo = std::min(idx * chunk, n_sc);
  return {lo, std::min(lo + chunk, n_sc)};
}

int64_t ne_partial(const cq15* y, const cq15* h,
                   const std::vector<std::vector<cq15>>& pilots, uint32_t n_b,
                   uint32_t n_l, uint32_t sc_begin, uint32_t sc_end) {
  int64_t partial = 0;  // Q2.30 accumulator
  for (uint32_t sc = sc_begin; sc < sc_end; ++sc) {
    for (uint32_t b = 0; b < n_b; ++b) {
      const cq15* hrow = h + (static_cast<size_t>(sc) * n_b + b) * n_l;
      int64_t re = 0, im = 0;
#pragma omp simd reduction(+ : re, im)
      for (uint32_t l = 0; l < n_l; ++l) {
        const cq15 hv = hrow[l];
        const cq15 xv = pilots[l][sc];
        re += static_cast<int64_t>(hv.re) * xv.re -
              static_cast<int64_t>(hv.im) * xv.im;
        im += static_cast<int64_t>(hv.re) * xv.im +
              static_cast<int64_t>(hv.im) * xv.re;
      }
      const cq15 diff =
          csub(y[static_cast<size_t>(sc) * n_b + b], cacc{re, im}.round());
      partial += cmag2_raw(diff);
    }
  }
  return partial;
}

// ---- Gram + matched filter ------------------------------------------------

void gram_subcarriers(const cq15* h, const cq15* y, cq15 sigma, cq15* g,
                      cq15* rhs, uint32_t n_b, uint32_t n_l,
                      uint32_t sc_begin, uint32_t sc_end) {
  PP_CHECK(n_l <= 8, "gram kernel keeps one H column in registers (n_l <= 8)");
  for (uint32_t sc = sc_begin; sc < sc_end; ++sc) {
    const cq15* hsc = h + static_cast<size_t>(sc) * n_b * n_l;
    const cq15* ysc = y + static_cast<size_t>(sc) * n_b;
    // Lower triangle G[i][j] = sum_b h_b[j] conj(h_b[i]); each entry is an
    // exact int64 reduction over beams, so reducing per entry matches the
    // sim kernel's per-beam interleaved order bit for bit.
    for (uint32_t i = 0; i < n_l; ++i) {
      for (uint32_t j = 0; j <= i; ++j) {
        int64_t re = 0, im = 0;
#pragma omp simd reduction(+ : re, im)
        for (uint32_t b = 0; b < n_b; ++b) {
          const cq15 hj = hsc[static_cast<size_t>(b) * n_l + j];
          const cq15 hi = hsc[static_cast<size_t>(b) * n_l + i];
          // mac_conj(hj, hi): hj * conj(hi)
          re += static_cast<int64_t>(hj.re) * hi.re +
                static_cast<int64_t>(hj.im) * hi.im;
          im += static_cast<int64_t>(hj.im) * hi.re -
                static_cast<int64_t>(hj.re) * hi.im;
        }
        cq15 v = cacc{re, im}.round();
        if (i == j) v = cadd(v, sigma);
        g[(static_cast<size_t>(sc) * n_l + i) * n_l + j] = v;
        if (i != j) {
          g[(static_cast<size_t>(sc) * n_l + j) * n_l + i] = cconj(v);
        }
      }
      int64_t re = 0, im = 0;
#pragma omp simd reduction(+ : re, im)
      for (uint32_t b = 0; b < n_b; ++b) {
        const cq15 yv = ysc[b];
        const cq15 hi = hsc[static_cast<size_t>(b) * n_l + i];
        re += static_cast<int64_t>(yv.re) * hi.re +
              static_cast<int64_t>(yv.im) * hi.im;
        im += static_cast<int64_t>(yv.im) * hi.re -
              static_cast<int64_t>(yv.re) * hi.im;
      }
      rhs[static_cast<size_t>(sc) * n_l + i] = cacc{re, im}.round();
    }
  }
}

// ---- Cholesky + solves ----------------------------------------------------

namespace {

inline void chol_diag(const cq15* g, cq15* l, uint32_t n, uint32_t j) {
  int64_t acc = static_cast<int64_t>(g[static_cast<size_t>(j) * n + j].re)
                << q15_frac_bits;
  for (uint32_t k = 0; k < j; ++k) {
    acc -= cmag2_raw(l[static_cast<size_t>(j) * n + k]);
  }
  const int16_t r =
      sqrt_q15(sat16((acc + (1 << (q15_frac_bits - 1))) >> q15_frac_bits));
  l[static_cast<size_t>(j) * n + j] = cq15{r, 0};
}

inline void chol_offdiag(const cq15* g, cq15* l, uint32_t n, uint32_t i,
                         uint32_t j) {
  cacc acc;
  acc.add_q15(g[static_cast<size_t>(i) * n + j]);
  for (uint32_t k = 0; k < j; ++k) {
    acc.msu_conj(l[static_cast<size_t>(i) * n + k],
                 l[static_cast<size_t>(j) * n + k]);
  }
  const int16_t diag = l[static_cast<size_t>(j) * n + j].re;
  const cq15 num = acc.round();
  l[static_cast<size_t>(i) * n + j] =
      cq15{div_q15(num.re, diag), div_q15(num.im, diag)};
}

}  // namespace

void cholesky(const cq15* g, cq15* l, uint32_t n) {
  for (uint32_t i = 0; i < n * n; ++i) l[i] = cq15{};
  chol_diag(g, l, n, 0);
  for (uint32_t j = 0; j + 1 < n; ++j) {
    for (uint32_t i = j + 1; i < n; ++i) chol_offdiag(g, l, n, i, j);
    chol_diag(g, l, n, j + 1);
  }
}

void trisolve(const cq15* l, const cq15* y, cq15* x, uint32_t n) {
  PP_CHECK(n <= 8, "trisolve keeps the solution vector in registers (n <= 8)");
  cq15 z[8];
  // Forward substitution: L z = y.
  for (uint32_t i = 0; i < n; ++i) {
    cacc acc;
    acc.add_q15(y[i]);
    for (uint32_t k = 0; k < i; ++k) {
      acc.msu(l[static_cast<size_t>(i) * n + k], z[k]);
    }
    const int16_t diag = l[static_cast<size_t>(i) * n + i].re;
    const cq15 num = acc.round();
    z[i] = cq15{div_q15(num.re, diag), div_q15(num.im, diag)};
  }
  // Backward substitution: L^H x = z.
  for (uint32_t ii = n; ii-- > 0;) {
    cacc acc;
    acc.add_q15(z[ii]);
    for (uint32_t k = ii + 1; k < n; ++k) {
      acc.msu_conj(x[k], l[static_cast<size_t>(k) * n + ii]);
    }
    const int16_t diag = l[static_cast<size_t>(ii) * n + ii].re;
    const cq15 num = acc.round();
    x[ii] = cq15{div_q15(num.re, diag), div_q15(num.im, diag)};
  }
}

}  // namespace pp::fixed
