// Host-native Q1.15 kernels mirroring the simulated receive chain.
//
// Every function here reimplements the *functional* arithmetic of one
// simulated kernel (src/kernels/) on plain host memory: the same Q1.15/Q2.30
// operations from common/fixed_point.h and common/complex16.h, the same
// twiddle and rounding semantics, the same accumulation structure.  The
// simulated kernels separate functional math from timing tokens, so a host
// loop that replays the functional side produces bit-identical outputs -
// that is the contract runtime::Fixed_backend builds on (and
// tests/test_backend_fixed.cpp pins against the sim backend).
//
// All kernels are range-parameterized: the full-range call is the serial
// kernel, and disjoint sub-ranges can run on worker threads.  Except for the
// noise-estimate fold (see ne_partial), every output element is produced by
// exact integer arithmetic over its own inputs, so results are independent
// of how the range is partitioned.
#ifndef PUSCHPOOL_FIXED_Q15_KERNELS_H
#define PUSCHPOOL_FIXED_Q15_KERNELS_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/complex16.h"
#include "kernels/fft_plan.h"

namespace pp::fixed {

using common::cq15;

// ---- radix-4 DIF FFT ------------------------------------------------------

// Per-size FFT plan: the radix-4 geometry plus per-stage twiddle tables laid
// out in butterfly order, one contiguous array per rotated output port, so
// consecutive butterflies of one stage read consecutive twiddles (the layout
// the SIMD butterfly loads from).
struct Fft_plan {
  kernels::Fft_geom geom;
  // tw[k][m-1][g] = W_n^tw_exp(k, g, m) for stage k, butterfly g, output
  // port m in 1..3.  The last stage applies no twiddles and has no entry.
  std::vector<std::array<std::vector<cq15>, 3>> tw;

  explicit Fft_plan(uint32_t n);
};

// Shared per-size plan, built on first use and cached for the process
// lifetime (same contract as common::twiddle_q15).
const Fft_plan& fft_plan(uint32_t n);

// One in-place stage over butterflies [g_begin, g_end): the radix-4 DIF
// butterfly of src/kernels/fft.cpp (1/4 input scaling, -j rotation, stage
// twiddles on outputs 1..3).  The final stage writes digit-reversed into
// `out` instead of back into `buf`.  Butterflies of one stage touch disjoint
// elements, so disjoint ranges may run concurrently; a barrier is required
// between stages.
void fft_stage(const Fft_plan& plan, uint32_t k, cq15* buf, cq15* out,
               uint32_t g_begin, uint32_t g_end, bool simd);

// Full transform: clobbers `buf` (the caller's scratch) and writes the
// digit-reversed result to `out`.
void fft_transform(const Fft_plan& plan, cq15* buf, cq15* out, bool simd);

// ---- beamforming MMM ------------------------------------------------------

// c[i*p + q] = round(sum_k a[i*k_dim + k] * b[k*p + q]) for rows
// [i_begin, i_end): the wide-accumulator matrix multiply of
// src/kernels/mmm.cpp (the k-stagger there only reorders an exact int64
// sum).
void mmm_rows(const cq15* a, const cq15* b, cq15* c, uint32_t k_dim,
              uint32_t p, uint32_t i_begin, uint32_t i_end);

// ---- channel estimate -----------------------------------------------------

// Block-LS channel estimate for sub-carriers [sc_begin, sc_end):
// h[(sc*n_b + b)*n_l + l] = 2 * y_sep[l][sc*n_b + b] * conj(pilot[l][sc]),
// the doubling folding the pilots' |x|^2 = 1/2 (src/kernels/che_ne.cpp).
void che_subcarriers(const std::vector<std::vector<cq15>>& y_sep,
                     const std::vector<std::vector<cq15>>& pilots, cq15* h,
                     uint32_t n_b, uint32_t n_l, uint32_t sc_begin,
                     uint32_t sc_end, bool simd);

// ---- noise estimate -------------------------------------------------------

// Sub-carrier block owned by core `idx` of `n_cores` under the sim kernels'
// ceil-chunk partition (che_ne.cpp block_of).
struct Sc_block {
  uint32_t lo, hi;
};
Sc_block sc_block(uint32_t n_sc, uint32_t n_cores, uint32_t idx);

// Q2.30 residual-power partial over sub-carriers [sc_begin, sc_end):
// sum_{sc,b} |y[sc*n_b+b] - round(sum_l h[(sc*n_b+b)*n_l+l] * pilot[l][sc])|^2.
// The sim NE folds one such partial per core into a uint32 word
// (contrib = uint32(max(0, partial >> 15)), summed mod 2^32), so the final
// estimate depends on the core-block partition: callers must compute one
// partial per simulated core block and fold exactly the same way.
int64_t ne_partial(const cq15* y, const cq15* h,
                   const std::vector<std::vector<cq15>>& pilots, uint32_t n_b,
                   uint32_t n_l, uint32_t sc_begin, uint32_t sc_end);

// ---- Gram + matched filter ------------------------------------------------

// Regularized Gramian and matched-filter rhs for sub-carriers
// [sc_begin, sc_end): g[(sc*n_l+i)*n_l+j] = round(sum_b h_b[j] conj(h_b[i]))
// (+ sigma on the diagonal, upper triangle mirrored conjugate) and
// rhs[sc*n_l+i] = round(sum_b y_b conj(h_b[i])), with h_b[l] =
// h[(sc*n_b+b)*n_l+l] (src/kernels/gram.cpp; n_l <= 8).
void gram_subcarriers(const cq15* h, const cq15* y, cq15 sigma, cq15* g,
                      cq15* rhs, uint32_t n_b, uint32_t n_l,
                      uint32_t sc_begin, uint32_t sc_end);

// ---- Cholesky + triangular solves -----------------------------------------

// Lower-triangular Cholesky factor of the n x n Hermitian matrix g
// (src/kernels/cholesky.cpp chol_single): Q2.30 diagonal accumulation with
// sqrt_q15, wide off-diagonal accumulation with complex-by-real div_q15.
// The upper triangle of l is zeroed.
void cholesky(const cq15* g, cq15* l, uint32_t n);

// Forward (L z = y) then backward (L^H x = z) substitution on the factor
// produced by cholesky() (src/kernels/cholesky.cpp Trisolve_batch); n <= 8.
void trisolve(const cq15* l, const cq15* y, cq15* x, uint32_t n);

}  // namespace pp::fixed

#endif  // PUSCHPOOL_FIXED_Q15_KERNELS_H
