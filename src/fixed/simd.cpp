#include "fixed/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PP_FIXED_X86 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace pp::fixed {

#if defined(PP_FIXED_X86)

namespace {

bool avx2_supported() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// Named load/store helpers: lambdas would not inherit the enclosing
// function's target("avx2") attribute and fail to inline.
__attribute__((target("avx2"))) inline __m256i ld256(const cq15* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

__attribute__((target("avx2"))) inline void st256(cq15* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// 8 packed complex Q1.15 multiplies: exact widened 32-bit cross products,
// +2^14, >>15, saturating pack - the same value chain as common::cmul.
// The single wrap case (imag sum = +2^31, only when both operands are
// {-0x8000, -0x8000}) is patched with a branchless blend to the scalar
// result {0, 0x7fff}; every other sum fits an int32 (see common::cmul).
__attribute__((target("avx2"))) inline __m256i cmul8(__m256i a, __m256i b) {
  const __m256i a_re = _mm256_srai_epi32(_mm256_slli_epi32(a, 16), 16);
  const __m256i a_im = _mm256_srai_epi32(a, 16);
  const __m256i b_re = _mm256_srai_epi32(_mm256_slli_epi32(b, 16), 16);
  const __m256i b_im = _mm256_srai_epi32(b, 16);
  __m256i rr = _mm256_sub_epi32(_mm256_mullo_epi32(a_re, b_re),
                                _mm256_mullo_epi32(a_im, b_im));
  __m256i ii = _mm256_add_epi32(_mm256_mullo_epi32(a_re, b_im),
                                _mm256_mullo_epi32(a_im, b_re));
  const __m256i half = _mm256_set1_epi32(1 << 14);
  rr = _mm256_srai_epi32(_mm256_add_epi32(rr, half), 15);
  ii = _mm256_srai_epi32(_mm256_add_epi32(ii, half), 15);
  // packs gives [rr0..3, ii0..3] int16 per 128-bit lane (saturating, i.e.
  // sat16); re-interleave to the packed {re, im} layout.
  const __m256i packed = _mm256_packs_epi32(rr, ii);
  const __m256i interleave = _mm256_setr_epi8(
      0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15,  //
      0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15);
  const __m256i res = _mm256_shuffle_epi8(packed, interleave);
  const __m256i min_min = _mm256_set1_epi32(static_cast<int>(0x80008000u));
  const __m256i corner = _mm256_and_si256(_mm256_cmpeq_epi32(a, min_min),
                                          _mm256_cmpeq_epi32(b, min_min));
  return _mm256_blendv_epi8(res, _mm256_set1_epi32(0x7fff0000), corner);
}

// 8 packed -j rotations: {re, im} -> {im, sat16(-re)} (common::cmul_mj).
__attribute__((target("avx2"))) inline __m256i cmul_mj8(__m256i a) {
  const __m256i swap = _mm256_setr_epi8(
      2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,  //
      2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  const __m256i swapped = _mm256_shuffle_epi8(a, swap);
  const __m256i negated = _mm256_subs_epi16(_mm256_setzero_si256(), swapped);
  return _mm256_blend_epi16(swapped, negated, 0xAA);
}

__attribute__((target("avx2"))) uint32_t cmul_double_avx2(const cq15* y,
                                                          cq15 x, cq15* out,
                                                          uint32_t n) {
  const uint32_t n8 = n & ~7u;
  const __m256i xv =
      _mm256_set1_epi32(static_cast<int>(common::pack_cq15(x)));
  for (uint32_t i = 0; i < n8; i += 8) {
    const __m256i yv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i t = cmul8(yv, xv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_adds_epi16(t, t));
  }
  return n8;
}

__attribute__((target("avx2"))) uint32_t butterfly_avx2(cq15* p0, uint32_t d,
                                                        const cq15* tw1,
                                                        const cq15* tw2,
                                                        const cq15* tw3,
                                                        uint32_t len) {
  const uint32_t n8 = len & ~7u;
  for (uint32_t i = 0; i < n8; i += 8) {
    // 1/4 pre-scale (per-lane arithmetic shift == common::cquarter).
    const __m256i x0 = _mm256_srai_epi16(ld256(p0 + i), 2);
    const __m256i x1 = _mm256_srai_epi16(ld256(p0 + d + i), 2);
    const __m256i x2 = _mm256_srai_epi16(ld256(p0 + 2 * d + i), 2);
    const __m256i x3 = _mm256_srai_epi16(ld256(p0 + 3 * d + i), 2);
    const __m256i a = _mm256_adds_epi16(x0, x2);
    const __m256i c = _mm256_subs_epi16(x0, x2);
    const __m256i b = _mm256_adds_epi16(x1, x3);
    const __m256i dd = _mm256_subs_epi16(x1, x3);
    const __m256i dj = cmul_mj8(dd);
    const __m256i o0 = _mm256_adds_epi16(a, b);
    __m256i o1 = _mm256_adds_epi16(c, dj);
    __m256i o2 = _mm256_subs_epi16(a, b);
    __m256i o3 = _mm256_subs_epi16(c, dj);
    o1 = cmul8(o1, ld256(tw1 + i));
    o2 = cmul8(o2, ld256(tw2 + i));
    o3 = cmul8(o3, ld256(tw3 + i));
    st256(p0 + i, o0);
    st256(p0 + d + i, o1);
    st256(p0 + 2 * d + i, o2);
    st256(p0 + 3 * d + i, o3);
  }
  return n8;
}

}  // namespace

bool simd_available() { return avx2_supported(); }
const char* simd_isa() { return avx2_supported() ? "avx2" : "scalar"; }

uint32_t cmul_double_prefix(const cq15* y, cq15 x, cq15* out, uint32_t n) {
  if (!avx2_supported()) return 0;
  return cmul_double_avx2(y, x, out, n);
}

uint32_t butterfly_prefix(cq15* p0, uint32_t d, const cq15* tw1,
                          const cq15* tw2, const cq15* tw3, uint32_t len) {
  if (!avx2_supported() || d < 8) return 0;
  return butterfly_avx2(p0, d, tw1, tw2, tw3, len);
}

#elif defined(__ARM_NEON)

bool simd_available() { return true; }
const char* simd_isa() { return "neon"; }

uint32_t cmul_double_prefix(const cq15* y, cq15 x, cq15* out, uint32_t n) {
  // The one cmul wrap case needs both operands at {-0x8000, -0x8000}; x is
  // uniform here, so one scalar check rules it out for the whole loop.
  if (x.re == common::q15_min && x.im == common::q15_min) return 0;
  const uint32_t n4 = n & ~3u;
  const int32x4_t half = vdupq_n_s32(1 << 14);
  for (uint32_t i = 0; i < n4; i += 4) {
    const int16x4x2_t yv =
        vld2_s16(reinterpret_cast<const int16_t*>(y + i));  // re / im lanes
    int32x4_t rr = vmull_n_s16(yv.val[0], x.re);
    rr = vmlsl_n_s16(rr, yv.val[1], x.im);
    int32x4_t ii = vmull_n_s16(yv.val[0], x.im);
    ii = vmlal_n_s16(ii, yv.val[1], x.re);
    rr = vshrq_n_s32(vaddq_s32(rr, half), 15);
    ii = vshrq_n_s32(vaddq_s32(ii, half), 15);
    int16x4x2_t t;
    t.val[0] = vqmovn_s32(rr);  // saturating narrow == sat16
    t.val[1] = vqmovn_s32(ii);
    t.val[0] = vqadd_s16(t.val[0], t.val[0]);  // doubling, saturating
    t.val[1] = vqadd_s16(t.val[1], t.val[1]);
    vst2_s16(reinterpret_cast<int16_t*>(out + i), t);
  }
  return n4;
}

uint32_t butterfly_prefix(cq15*, uint32_t, const cq15*, const cq15*,
                          const cq15*, uint32_t) {
  return 0;  // scalar butterflies on NEON hosts
}

#else

bool simd_available() { return false; }
const char* simd_isa() { return "scalar"; }

uint32_t cmul_double_prefix(const cq15*, cq15, cq15*, uint32_t) { return 0; }

uint32_t butterfly_prefix(cq15*, uint32_t, const cq15*, const cq15*,
                          const cq15*, uint32_t) {
  return 0;
}

#endif

}  // namespace pp::fixed
