// Feature-detected SIMD variants of the hot Q1.15 inner loops.
//
// The vector paths are *bit-identical* to the scalar Q15 layer - they are an
// implementation detail, never a numerics change (pinned by
// tests/test_backend_fixed.cpp scalar/SIMD parity).  The mapping:
//
//   add_q15/sub_q15      saturating 16-bit adds (vpaddsw / vqaddq_s16)
//   cquarter             per-lane arithmetic shift (vpsraw)
//   cmul                 widened 32-bit products, +2^14, >>15, saturating
//                        pack (the one wrap case - both operands
//                        {-0x8000,-0x8000} - is patched by a branchless
//                        blend to match the 64-bit scalar semantics)
//   cmul_mj              16-bit lane swap + saturating negate + blend
//
// x86 code is compiled with per-function target("avx2") attributes and
// gated at run time by __builtin_cpu_supports, so the build needs no
// -mavx2 flag and the binary still runs on pre-AVX2 hosts.  On AArch64 the
// elementwise CHE op uses NEON (always available); the butterfly falls back
// to scalar there.
#ifndef PUSCHPOOL_FIXED_SIMD_H
#define PUSCHPOOL_FIXED_SIMD_H

#include <cstdint>

#include "common/complex16.h"

namespace pp::fixed {

using common::cq15;

// True when a vector path exists on this machine (AVX2 detected at run time,
// or NEON compiled in).  When false, the SIMD entry points below process 0
// elements and the callers' scalar tails do all the work.
bool simd_available();

// "avx2", "neon" or "scalar" - what simd_available() resolved to (bench and
// banner reporting).
const char* simd_isa();

// out[i] = cadd(t, t) with t = cmul(y[i], x): the per-(sub-carrier, UE)
// CHE beam row (doubling folds the pilot |x|^2 = 1/2).  Processes a prefix
// of [0, n) and returns its length; the caller finishes the tail scalar.
uint32_t cmul_double_prefix(const cq15* y, cq15 x, cq15* out, uint32_t n);

// `len` consecutive radix-4 DIF butterflies at element distance d: port j of
// butterfly i lives at p0[i + j*d], twiddles for output port m at twm[i]
// (the Fft_plan per-stage layout).  Only non-final stages (twiddled, stored
// in place) are vectorized; requires d >= the vector width or processes 0.
// Returns the number of butterflies handled; the caller finishes scalar.
uint32_t butterfly_prefix(cq15* p0, uint32_t d, const cq15* tw1,
                          const cq15* tw2, const cq15* tw3, uint32_t len);

}  // namespace pp::fixed

#endif  // PUSCHPOOL_FIXED_SIMD_H
