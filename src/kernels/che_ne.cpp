#include "kernels/che_ne.h"

#include "kernels/util.h"

namespace pp::kernels {

using common::cacc;
using common::cadd;
using common::cconj;
using common::cmul;
using common::cq15;
using common::csub;
using common::pack_cq15;
using common::q15_frac_bits;
using common::unpack_cq15;

namespace {

// Sub-carrier block of core idx out of n_cores.
struct Block {
  uint32_t lo, hi;
};
Block block_of(uint32_t n_sc, uint32_t n_cores, uint32_t idx) {
  const uint32_t chunk = (n_sc + n_cores - 1) / n_cores;
  const uint32_t lo = std::min(idx * chunk, n_sc);
  return {lo, std::min(lo + chunk, n_sc)};
}

}  // namespace

// ---------------------------------------------------------------------------
// Che
// ---------------------------------------------------------------------------

Che::Che(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n_sc, uint32_t n_b,
         uint32_t n_l, uint32_t n_cores)
    : m_(m), n_sc_(n_sc), n_b_(n_b), n_l_(n_l), n_cores_(n_cores) {
  y_ = alloc.alloc(static_cast<uint64_t>(n_l_) * n_sc_ * n_b_);
  x_ = alloc.alloc(static_cast<uint64_t>(n_l_) * n_sc_);
  h_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_b_ * n_l_);
  std::vector<arch::core_id> cs(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) cs[i] = i;
  bar_ = sim::Barrier::create(alloc, m_.config(), std::move(cs));
}

void Che::set_y_sep(uint32_t l, std::span<const cq15> y) {
  PP_CHECK(y.size() == static_cast<size_t>(n_sc_) * n_b_, "Y shape mismatch");
  poke_c(m_.mem(), y_ + l * n_sc_ * n_b_, y);
}

void Che::set_pilot(uint32_t l, std::span<const cq15> x) {
  PP_CHECK(x.size() == n_sc_, "pilot length mismatch");
  poke_c(m_.mem(), x_ + l * n_sc_, x);
}

std::vector<cq15> Che::h() const {
  return peek_c(m_.mem(), h_, static_cast<size_t>(n_sc_) * n_b_ * n_l_);
}

sim::Prog Che::core_prog(sim::Core& c, uint32_t idx) {
  const Block blk = block_of(n_sc_, n_cores_, idx);
  // Beam loop staggered by position in the tile and processed four beams at
  // a time: batching hides the load-to-use latency and the stagger keeps
  // same-tile cores off each other's banks (paper's conflict-avoidance).
  const uint32_t chunk = std::min(4u, n_b_);
  const uint32_t n_chunks = (n_b_ + chunk - 1) / chunk;
  const uint32_t c0 = (c.id % c.cfg->cores_per_tile) % n_chunks;
  // Rotate the sub-carrier order per core-in-tile as well: blocks of
  // same-tile cores can alias modulo the bank count.
  const uint32_t len = blk.hi - blk.lo;
  const uint32_t s0 = len ? (c.id % c.cfg->cores_per_tile) % len : 0;
  for (uint32_t t = 0; t < len; ++t) {
    const uint32_t sc = blk.lo + (s0 + t) % len;
    for (uint32_t l = 0; l < n_l_; ++l) {
      c.alu(2);  // pilot pointer
      const sim::Tok xp = co_await c.load(x_ + l * n_sc_ + sc);
      const cq15 xc = cconj(unpack_cq15(xp.value));
      for (uint32_t ch = 0; ch < n_chunks; ++ch) {
        const uint32_t b0 = ((c0 + ch) % n_chunks) * chunk;
        const uint32_t nb = std::min(chunk, n_b_ - b0);
        sim::Tok yv[4];
        for (uint32_t i = 0; i < nb; ++i) {
          yv[i] = co_await c.load(y_ + (l * n_sc_ + sc) * n_b_ + b0 + i);
        }
        // h = y * conj(x) / |x|^2; |x|^2 = 1/2 folds into one SIMD shift.
        // All multiplies issue before the shifts so the multiplier latency
        // is hidden behind the other lanes (software pipelining).
        cq15 hv[4];
        uint64_t hd[4];
        for (uint32_t i = 0; i < nb; ++i) {
          hv[i] = cmul(unpack_cq15(yv[i].value), xc);
          hd[i] = c.cmul(yv[i].ready, xp.ready);
        }
        for (uint32_t i = 0; i < nb; ++i) {
          hv[i] = cadd(hv[i], hv[i]);
          hd[i] = c.cadd(hd[i]);
        }
        for (uint32_t i = 0; i < nb; ++i) {
          co_await c.store(h_ + (sc * n_b_ + b0 + i) * n_l_ + l,
                           pack_cq15(hv[i]), hd[i]);
        }
        c.alu(2);  // chunk loop bookkeeping
      }
    }
    c.alu(2);  // sc loop bookkeeping
  }
  co_await sim::barrier_wait(c, bar_);
}

sim::Kernel_report Che::run() {
  std::vector<sim::Machine::Launch> l;
  for (uint32_t i = 0; i < n_cores_; ++i) {
    l.push_back({i, core_prog(m_.core(i), i)});
  }
  return m_.run_programs("che", std::move(l));
}

// ---------------------------------------------------------------------------
// Ne
// ---------------------------------------------------------------------------

Ne::Ne(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n_sc, uint32_t n_b,
       uint32_t n_l, uint32_t n_cores)
    : m_(m), n_sc_(n_sc), n_b_(n_b), n_l_(n_l), n_cores_(n_cores) {
  y_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_b_);
  h_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_b_ * n_l_);
  x_ = alloc.alloc(static_cast<uint64_t>(n_l_) * n_sc_);
  acc_ = alloc.alloc(1);
  std::vector<arch::core_id> cs(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) cs[i] = i;
  bar_ = sim::Barrier::create(alloc, m_.config(), std::move(cs));
}

void Ne::set_y(std::span<const cq15> y) {
  PP_CHECK(y.size() == static_cast<size_t>(n_sc_) * n_b_, "Y shape mismatch");
  poke_c(m_.mem(), y_, y);
}

void Ne::set_h(std::span<const cq15> h) {
  PP_CHECK(h.size() == static_cast<size_t>(n_sc_) * n_b_ * n_l_,
           "H shape mismatch");
  poke_c(m_.mem(), h_, h);
}

void Ne::set_pilot(uint32_t l, std::span<const cq15> x) {
  PP_CHECK(x.size() == n_sc_, "pilot length mismatch");
  poke_c(m_.mem(), x_ + l * n_sc_, x);
}

double Ne::sigma2() const {
  const uint32_t raw = m_.mem().peek(acc_);
  const double count = static_cast<double>(n_sc_) * n_b_;
  return static_cast<double>(raw) /
         (count * static_cast<double>(1 << q15_frac_bits));
}

sim::Prog Ne::core_prog(sim::Core& c, uint32_t idx) {
  const Block blk = block_of(n_sc_, n_cores_, idx);
  int64_t partial = 0;  // Q2.30 accumulator
  uint64_t pdep = 0;
  for (uint32_t sc = blk.lo; sc < blk.hi; ++sc) {
    // Pilot values of all UEs at this sub-carrier (kept in registers).
    cq15 xv[16];
    sim::Tok xt[16];
    for (uint32_t l = 0; l < n_l_; ++l) {
      xt[l] = co_await c.load(x_ + l * n_sc_ + sc);
      xv[l] = unpack_cq15(xt[l].value);
    }
    for (uint32_t b = 0; b < n_b_; ++b) {
      const sim::Tok yv = co_await c.load(y_ + sc * n_b_ + b);
      cacc yhat;
      uint64_t dep = 0;
      for (uint32_t l = 0; l < n_l_; ++l) {
        const sim::Tok hv = co_await c.load(h_ + (sc * n_b_ + b) * n_l_ + l);
        yhat.mac(unpack_cq15(hv.value), xv[l]);
        dep = c.cmac(std::max(hv.ready, xt[l].ready), dep);
      }
      const cq15 diff = csub(unpack_cq15(yv.value), yhat.round());
      const uint64_t ddep = c.cadd(yv.ready, dep);
      partial += common::cmag2_raw(diff);
      pdep = c.op(1, ddep, pdep, c.cfg->mul_latency);  // |.|^2 MAC
      c.alu(2);  // b loop bookkeeping
    }
    c.alu(2);  // sc loop bookkeeping
  }
  // Fold the Q2.30 partial into Q15 units and merge atomically.
  c.alu_use(2, pdep);
  const uint32_t contrib = static_cast<uint32_t>(
      std::max<int64_t>(0, partial >> q15_frac_bits));
  co_await c.amo_add(acc_, contrib);
  co_await sim::barrier_wait(c, bar_);
}

sim::Kernel_report Ne::run() {
  m_.mem().poke(acc_, 0);
  std::vector<sim::Machine::Launch> l;
  for (uint32_t i = 0; i < n_cores_; ++i) {
    l.push_back({i, core_prog(m_.core(i), i)});
  }
  return m_.run_programs("ne", std::move(l));
}

}  // namespace pp::kernels
