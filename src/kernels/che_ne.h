// Channel estimation (CHE) and noise estimation (NE) kernels (paper §II).
//
// CHE: block-type least-squares estimate - an element-wise division of the
// received pilot observation by the known pilot, N_B x N_L complex
// multiplies per sub-carrier.  Pilots are QPSK at amplitude 0.5 per
// component (|x|^2 = 1/2), so the division folds into conj-multiply + shift.
// Per-UE pilot observations are assumed ideally code-separated (see
// DESIGN.md substitutions).
//
// NE: noise variance by autocorrelation of (y - H_hat * x_pilot):
// 2 N_B x N_L complex MACs per sub-carrier and pilot symbol, with per-core
// partial sums merged through one atomic accumulator.
//
// Both kernels parallelize over sub-carrier blocks with no data sharing, so
// they scale embarrassingly - which is why the paper focuses on the other
// three kernels.
#ifndef PUSCHPOOL_KERNELS_CHE_NE_H
#define PUSCHPOOL_KERNELS_CHE_NE_H

#include <span>
#include <vector>

#include "arch/address_map.h"
#include "common/complex16.h"
#include "sim/barrier.h"
#include "sim/machine.h"

namespace pp::kernels {

class Che {
 public:
  Che(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n_sc, uint32_t n_b,
      uint32_t n_l, uint32_t n_cores);

  // Received pilot observation of UE l: n_sc x n_b grid.
  void set_y_sep(uint32_t l, std::span<const common::cq15> y);
  // Pilot sequence of UE l (amplitude 0.5 per component).
  void set_pilot(uint32_t l, std::span<const common::cq15> x);
  // Estimated channel, layout [sc][b][l].
  std::vector<common::cq15> h() const;

  sim::Kernel_report run();

 private:
  sim::Prog core_prog(sim::Core& c, uint32_t idx);

  sim::Machine& m_;
  uint32_t n_sc_, n_b_, n_l_, n_cores_;
  arch::addr_t y_ = 0;   // [l][sc][b]
  arch::addr_t x_ = 0;   // [l][sc]
  arch::addr_t h_ = 0;   // [sc][b][l]
  sim::Barrier bar_;
};

class Ne {
 public:
  Ne(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n_sc, uint32_t n_b,
     uint32_t n_l, uint32_t n_cores);

  void set_y(std::span<const common::cq15> y);           // [sc][b]
  void set_h(std::span<const common::cq15> h);           // [sc][b][l]
  void set_pilot(uint32_t l, std::span<const common::cq15> x);  // [sc]

  // Estimated noise variance (after run()).
  double sigma2() const;

  sim::Kernel_report run();

 private:
  sim::Prog core_prog(sim::Core& c, uint32_t idx);

  sim::Machine& m_;
  uint32_t n_sc_, n_b_, n_l_, n_cores_;
  arch::addr_t y_ = 0, h_ = 0, x_ = 0;
  arch::addr_t acc_ = 0;  // global Q15-scaled accumulator (amo target)
  sim::Barrier bar_;
};

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_CHE_NE_H
