#include "kernels/cholesky.h"

#include "common/fixed_point.h"
#include "kernels/util.h"

namespace pp::kernels {

using common::cacc;
using common::cmag2_raw;
using common::cq15;
using common::div_q15;
using common::pack_cq15;
using common::q15_frac_bits;
using common::sat16;
using common::sqrt_q15;
using common::unpack_cq15;

// ---------------------------------------------------------------------------
// Building blocks
// ---------------------------------------------------------------------------

sim::Prog chol_offdiag(sim::Core& c, Chol_layout lay, uint32_t i, uint32_t j) {
  c.alu(3);  // row/column base addresses
  const sim::Tok g = co_await c.load(lay.g_addr(i, j));
  cacc acc;
  acc.add_q15(unpack_cq15(g.value));
  // Two interleaved accumulator chains hide part of the MAC latency.
  uint64_t chain[2] = {g.ready, 0};
  for (uint32_t k = 0; k < j; ++k) {
    const sim::Tok a = co_await c.load(lay.l_addr(i, k));  // own row: local
    const sim::Tok b = co_await c.load(lay.l_addr(j, k));  // pivot row
    acc.msu_conj(unpack_cq15(a.value), unpack_cq15(b.value));
    chain[k & 1] = c.cmac(std::max(a.ready, b.ready), chain[k & 1]);
  }
  uint64_t dep = chain[0];
  if (j > 1) dep = c.cadd(chain[0], chain[1]);  // combine partials
  const sim::Tok dj = co_await c.load(lay.l_addr(j, j));
  const int16_t diag = unpack_cq15(dj.value).re;
  const cq15 num = acc.round();
  const cq15 val{div_q15(num.re, diag), div_q15(num.im, diag)};
  // Software complex-by-real division (Snitch has no 16-bit divider).
  const uint64_t d = div_cr_q15_soft(c, dep, dj.ready);
  co_await c.store(lay.l_addr(i, j), pack_cq15(val), d);
  c.alu(2);  // loop bookkeeping
}

sim::Prog chol_diag(sim::Core& c, Chol_layout lay, uint32_t j) {
  c.alu(2);
  const sim::Tok g = co_await c.load(lay.g_addr(j, j));
  int64_t acc = static_cast<int64_t>(unpack_cq15(g.value).re)
                << q15_frac_bits;
  uint64_t chain[2] = {g.ready, 0};
  for (uint32_t k = 0; k < j; ++k) {
    const sim::Tok a = co_await c.load(lay.l_addr(j, k));
    acc -= cmag2_raw(unpack_cq15(a.value));
    chain[k & 1] = c.op(1, a.ready, chain[k & 1], c.cfg->mul_latency);
  }
  uint64_t dep = chain[0];
  if (j > 1) dep = c.op(1, chain[0], chain[1], 1);  // combine partials
  // 12-instruction shift-add square root (Q15).
  const uint64_t s = sqrt_q15_soft(c, dep);
  const int16_t r =
      sqrt_q15(sat16((acc + (1 << (q15_frac_bits - 1))) >> q15_frac_bits));
  co_await c.store(lay.l_addr(j, j), pack_cq15(cq15{r, 0}), s);
  c.alu(2);
}

sim::Prog chol_single(sim::Core& c, Chol_layout lay) {
  co_await chol_diag(c, lay, 0);
  for (uint32_t j = 0; j + 1 < lay.n; ++j) {
    for (uint32_t i = j + 1; i < lay.n; ++i) {
      co_await chol_offdiag(c, lay, i, j);
    }
    co_await chol_diag(c, lay, j + 1);
  }
}

// ---------------------------------------------------------------------------
// Chol_batch: independent single-core decompositions + one barrier
// ---------------------------------------------------------------------------

Chol_batch::Chol_batch(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
                       uint32_t per_core, uint32_t n_cores)
    : m_(m), n_(n), per_core_(per_core), n_cores_(n_cores) {
  PP_CHECK(n_cores_ <= m_.config().n_cores(), "not enough cores");
  const uint32_t rows_per_mat = 2 * ((n_ + 3) / 4) * n_;  // G + L regions
  base_row_ = alloc.alloc_rows(per_core_ * rows_per_mat);

  std::vector<arch::core_id> cs(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) cs[i] = i;
  bar_ = sim::Barrier::create(alloc, m_.config(), std::move(cs));
}

Chol_layout Chol_batch::layout(uint32_t core, uint32_t idx) const {
  const uint32_t depth = ((n_ + 3) / 4) * n_;
  Chol_layout lay;
  lay.mode = Chol_layout::Mode::folded;
  lay.map = &m_.map();
  lay.n = n_;
  lay.gang_base = core;
  lay.rows_per_core = n_;  // single core owns all rows
  lay.g_row = base_row_ + idx * 2 * depth;
  lay.l_row = lay.g_row + depth;
  return lay;
}

void Chol_batch::set_g(uint32_t core, uint32_t idx,
                       std::span<const cq15> g) {
  PP_CHECK(g.size() == static_cast<size_t>(n_) * n_, "G shape mismatch");
  const Chol_layout lay = layout(core, idx);
  for (uint32_t r = 0; r < n_; ++r) {
    for (uint32_t col = 0; col < n_; ++col) {
      m_.mem().poke(lay.g_addr(r, col), pack_cq15(g[r * n_ + col]));
    }
  }
}

std::vector<cq15> Chol_batch::l(uint32_t core, uint32_t idx) const {
  const Chol_layout lay = layout(core, idx);
  std::vector<cq15> out(static_cast<size_t>(n_) * n_);
  for (uint32_t r = 0; r < n_; ++r) {
    for (uint32_t col = 0; col <= r; ++col) {
      out[r * n_ + col] = unpack_cq15(m_.mem().peek(lay.l_addr(r, col)));
    }
  }
  return out;
}

sim::Prog Chol_batch::core_prog(sim::Core& c, uint32_t core) {
  for (uint32_t idx = 0; idx < per_core_; ++idx) {
    c.alu(2);  // matrix pointer bump
    co_await chol_single(c, layout(core, idx));
  }
  co_await sim::barrier_wait(c, bar_);
}

sim::Kernel_report Chol_batch::run() {
  // The folded layout keeps every access of core i inside its own banks
  // until the single closing barrier, whose counter lives in core 0's first
  // local bank.  Declaring the ownership lets the fast path service whole
  // factorizations inline (the machine checks the claim on every access and
  // clears it when the launch returns).
  const arch::Cluster_config& cfg = m_.config();
  for (uint32_t i = 0; i < n_cores_; ++i) {
    for (uint32_t k = 0; k < cfg.banks_per_core; ++k) {
      m_.set_bank_owner(cfg.first_local_bank(i) + k, i);
    }
  }
  std::vector<sim::Machine::Launch> l;
  l.reserve(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) {
    l.push_back({i, core_prog(m_.core(i), i)});
  }
  return m_.run_programs("cholesky_batch", std::move(l));
}

// ---------------------------------------------------------------------------
// Chol_pair: mirrored couples, one partial barrier per column
// ---------------------------------------------------------------------------

Chol_pair::Chol_pair(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
                     uint32_t n_pairs, bool mirrored)
    : m_(m), n_(n), n_pairs_(n_pairs), mirrored_(mirrored) {
  PP_CHECK(n_ % 4 == 0 && n_ >= 8, "pair kernel needs n that is multiple of 4");
  PP_CHECK(cores_used() <= m_.config().n_cores(), "not enough cores");
  base_row_ = alloc.alloc_rows(4 * n_);  // G1,L1,G2,L2: one row depth n each

  for (uint32_t pr = 0; pr < n_pairs_; ++pr) {
    std::vector<arch::core_id> cs(n_ / 4);
    for (uint32_t i = 0; i < n_ / 4; ++i) cs[i] = pr * (n_ / 4) + i;
    bars_.push_back(sim::Barrier::create(alloc, m_.config(), std::move(cs)));
  }
}

Chol_layout Chol_pair::layout(uint32_t pair, uint32_t which) const {
  Chol_layout lay;
  lay.mode = Chol_layout::Mode::folded;
  lay.map = &m_.map();
  lay.n = n_;
  lay.gang_base = pair * (n_ / 4);
  lay.rows_per_core = 4;
  lay.mirror = which == 1 && mirrored_;
  lay.g_row = base_row_ + which * 2 * n_;
  lay.l_row = lay.g_row + n_;
  return lay;
}

void Chol_pair::set_g(uint32_t pair, uint32_t which, std::span<const cq15> g) {
  PP_CHECK(g.size() == static_cast<size_t>(n_) * n_, "G shape mismatch");
  const Chol_layout lay = layout(pair, which);
  for (uint32_t r = 0; r < n_; ++r) {
    for (uint32_t col = 0; col < n_; ++col) {
      m_.mem().poke(lay.g_addr(r, col), pack_cq15(g[r * n_ + col]));
    }
  }
}

std::vector<cq15> Chol_pair::l(uint32_t pair, uint32_t which) const {
  const Chol_layout lay = layout(pair, which);
  std::vector<cq15> out(static_cast<size_t>(n_) * n_);
  for (uint32_t r = 0; r < n_; ++r) {
    for (uint32_t col = 0; col <= r; ++col) {
      out[r * n_ + col] = unpack_cq15(m_.mem().peek(lay.l_addr(r, col)));
    }
  }
  return out;
}

sim::Prog Chol_pair::gang_prog(sim::Core& c, uint32_t pair, uint32_t p) {
  const Chol_layout m1 = layout(pair, 0);
  const Chol_layout m2 = layout(pair, 1);
  const uint32_t cores = n_ / 4;

  // Prologue: owners of row 0 of each matrix seed the first diagonal.
  if (p == 0) co_await chol_diag(c, m1, 0);
  if (p == (mirrored_ ? cores - 1 : 0)) co_await chol_diag(c, m2, 0);
  co_await sim::barrier_wait(c, bars_[pair]);

  // Row ranges this core owns: [lo1, lo1+4) of M1 and, when mirrored, the
  // complementary [n-4p-4, n-4p) of M2 - heavy M1 rows pair with light M2
  // rows, flattening the staircase.
  const uint32_t lo1 = 4 * p;
  const uint32_t lo2 = mirrored_ ? n_ - 4 * p - 4 : 4 * p;
  for (uint32_t j = 0; j + 1 < n_; ++j) {
    for (uint32_t i = std::max(lo1, j + 1); i < lo1 + 4; ++i) {
      co_await chol_offdiag(c, m1, i, j);
      if (i == j + 1) co_await chol_diag(c, m1, j + 1);
    }
    for (uint32_t i = std::max(lo2, j + 1); i < lo2 + 4; ++i) {
      co_await chol_offdiag(c, m2, i, j);
      if (i == j + 1) co_await chol_diag(c, m2, j + 1);
    }
    co_await sim::barrier_wait(c, bars_[pair]);
  }
}

sim::Kernel_report Chol_pair::run() {
  std::vector<sim::Machine::Launch> l;
  l.reserve(cores_used());
  for (uint32_t pr = 0; pr < n_pairs_; ++pr) {
    for (uint32_t p = 0; p < n_ / 4; ++p) {
      const arch::core_id cid = pr * (n_ / 4) + p;
      l.push_back({cid, gang_prog(m_.core(cid), pr, p)});
    }
  }
  return m_.run_programs("cholesky_pair", std::move(l));
}

// ---------------------------------------------------------------------------
// Chol_serial
// ---------------------------------------------------------------------------

Chol_serial::Chol_serial(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
                         uint32_t reps)
    : m_(m), n_(n), reps_(reps) {
  for (uint32_t r = 0; r < reps_; ++r) {
    Chol_layout lay;
    lay.mode = Chol_layout::Mode::interleaved;
    lay.map = &m_.map();
    lay.n = n_;
    lay.g_base = alloc.alloc(static_cast<uint64_t>(n_) * n_);
    lay.l_base = alloc.alloc(static_cast<uint64_t>(n_) * n_);
    lay_.push_back(lay);
  }
}

void Chol_serial::set_g(uint32_t rep, std::span<const cq15> g) {
  PP_CHECK(g.size() == static_cast<size_t>(n_) * n_, "G shape mismatch");
  poke_c(m_.mem(), lay_[rep].g_base, g);
}

std::vector<cq15> Chol_serial::l(uint32_t rep) const {
  auto full = peek_c(m_.mem(), lay_[rep].l_base, static_cast<size_t>(n_) * n_);
  // Zero the (never-written) upper triangle for a clean comparison.
  for (uint32_t r = 0; r < n_; ++r) {
    for (uint32_t col = r + 1; col < n_; ++col) full[r * n_ + col] = cq15{};
  }
  return full;
}

sim::Prog Chol_serial::prog(sim::Core& c) {
  for (uint32_t rep = 0; rep < reps_; ++rep) {
    c.alu(2);
    co_await chol_single(c, lay_[rep]);
  }
}

sim::Kernel_report Chol_serial::run(arch::core_id core) {
  std::vector<sim::Machine::Launch> l;
  l.push_back({core, prog(m_.core(core))});
  return m_.run_programs("cholesky_serial", std::move(l));
}

// ---------------------------------------------------------------------------
// Trisolve_batch
// ---------------------------------------------------------------------------

Trisolve_batch::Trisolve_batch(sim::Machine& m, arch::L1_alloc& alloc,
                               uint32_t n, uint32_t per_core, uint32_t n_cores)
    : m_(m), n_(n), per_core_(per_core), n_cores_(n_cores) {
  PP_CHECK(n_ <= 4, "batched solve supports n <= 4 (per-subcarrier MIMO)");
  PP_CHECK(n_cores_ <= m_.config().n_cores(), "not enough cores");
  // Per system: L (depth n per bank) + y and x vectors (1 row each).
  base_row_ = alloc.alloc_rows(per_core_ * (n_ + 2));

  std::vector<arch::core_id> cs(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) cs[i] = i;
  bar_ = sim::Barrier::create(alloc, m_.config(), std::move(cs));
}

arch::addr_t Trisolve_batch::l_addr(uint32_t core, uint32_t idx, uint32_t r,
                                    uint32_t col) const {
  const arch::bank_id bank = m_.config().first_local_bank(core) + r % 4;
  return m_.map().bank_word(bank, base_row_ + idx * (n_ + 2) + col);
}

arch::addr_t Trisolve_batch::v_addr(uint32_t core, uint32_t idx,
                                    uint32_t which, uint32_t r) const {
  const arch::bank_id bank = m_.config().first_local_bank(core) + r % 4;
  return m_.map().bank_word(bank, base_row_ + idx * (n_ + 2) + n_ + which);
}

void Trisolve_batch::set_system(uint32_t core, uint32_t idx,
                                std::span<const cq15> l,
                                std::span<const cq15> y) {
  PP_CHECK(l.size() == static_cast<size_t>(n_) * n_ && y.size() == n_,
           "system shape mismatch");
  for (uint32_t r = 0; r < n_; ++r) {
    for (uint32_t col = 0; col <= r; ++col) {
      m_.mem().poke(l_addr(core, idx, r, col), pack_cq15(l[r * n_ + col]));
    }
    m_.mem().poke(v_addr(core, idx, 0, r), pack_cq15(y[r]));
  }
}

std::vector<cq15> Trisolve_batch::x(uint32_t core, uint32_t idx) const {
  std::vector<cq15> out(n_);
  for (uint32_t r = 0; r < n_; ++r) {
    out[r] = unpack_cq15(m_.mem().peek(v_addr(core, idx, 1, r)));
  }
  return out;
}

sim::Prog Trisolve_batch::core_prog(sim::Core& c, uint32_t core) {
  for (uint32_t idx = 0; idx < per_core_; ++idx) {
    c.alu(3);  // system pointers
    cq15 z[4], x[4], diag[4];
    uint64_t zdep[4] = {}, xdep[4] = {}, ddep[4] = {};
    // Forward substitution: L z = y (z kept in registers).
    for (uint32_t i = 0; i < n_; ++i) {
      const sim::Tok y = co_await c.load(v_addr(core, idx, 0, i));
      cacc acc;
      acc.add_q15(unpack_cq15(y.value));
      uint64_t dep = y.ready;
      for (uint32_t k = 0; k < i; ++k) {
        const sim::Tok lv = co_await c.load(l_addr(core, idx, i, k));
        acc.msu(unpack_cq15(lv.value), z[k]);
        dep = c.cmac(std::max(lv.ready, zdep[k]), dep);
      }
      const sim::Tok dv = co_await c.load(l_addr(core, idx, i, i));
      diag[i] = unpack_cq15(dv.value);
      ddep[i] = dv.ready;
      const cq15 num = acc.round();
      z[i] = cq15{div_q15(num.re, diag[i].re), div_q15(num.im, diag[i].re)};
      zdep[i] = div_cr_q15_soft(c, dep, dv.ready);
    }
    // Backward substitution: L^H x = z.
    for (uint32_t ii = n_; ii-- > 0;) {
      cacc acc;
      acc.add_q15(z[ii]);
      uint64_t dep = zdep[ii];
      for (uint32_t k = ii + 1; k < n_; ++k) {
        const sim::Tok lv = co_await c.load(l_addr(core, idx, k, ii));
        acc.msu_conj(x[k], unpack_cq15(lv.value));  // conj(L[k][i]) * x[k]
        dep = c.cmac(std::max(lv.ready, xdep[k]), dep);
      }
      const cq15 num = acc.round();
      x[ii] = cq15{div_q15(num.re, diag[ii].re), div_q15(num.im, diag[ii].re)};
      xdep[ii] = div_cr_q15_soft(c, dep, ddep[ii]);
    }
    c.alu(2);
    for (uint32_t i = 0; i < n_; ++i) {
      co_await c.store(v_addr(core, idx, 1, i), pack_cq15(x[i]), xdep[i]);
    }
  }
  co_await sim::barrier_wait(c, bar_);
}

sim::Kernel_report Trisolve_batch::run() {
  // Same shape as Chol_batch: l_addr/v_addr keep each core inside its own
  // banks, and the launch closes with a single barrier.
  const arch::Cluster_config& cfg = m_.config();
  for (uint32_t i = 0; i < n_cores_; ++i) {
    for (uint32_t k = 0; k < cfg.banks_per_core; ++k) {
      m_.set_bank_owner(cfg.first_local_bank(i) + k, i);
    }
  }
  std::vector<sim::Machine::Launch> l;
  l.reserve(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) {
    l.push_back({i, core_prog(m_.core(i), i)});
  }
  return m_.run_programs("trisolve_batch", std::move(l));
}

}  // namespace pp::kernels
