// Cholesky decomposition kernels (paper §V-C, Fig. 7) and the triangular
// solves that complete the MIMO stage (paper eq. 2).
//
// The Cholesky-Crout order generates L column by column.  Three execution
// shapes are provided, matching the paper's evaluation points:
//
//  * Chol_batch    - many independent small (e.g. 4x4) decompositions, each
//                    on one core with data folded into its local banks;
//                    several per core are run back-to-back before a single
//                    cluster barrier ("4x1024" / "16x1024" configurations).
//  * Chol_pair     - fine-grained parallel decomposition of a *couple* of
//                    n x n matrices on n/4 cores.  Each core owns 4 rows of
//                    the first matrix and the mirrored 4 rows of the second,
//                    so the staircase workload of one matrix complements the
//                    other (the paper's load-balancing trick).
//  * Chol_serial   - one core, interleaved layout, the speedup baseline.
//
// Off-diagonal elements divide by the (real) diagonal with two non-pipelined
// divides; diagonals use a 12-instruction shift-add square root, so RAW and
// ext-unit stalls dominate exactly as the paper reports.
#ifndef PUSCHPOOL_KERNELS_CHOLESKY_H
#define PUSCHPOOL_KERNELS_CHOLESKY_H

#include <span>
#include <vector>

#include "arch/address_map.h"
#include "common/complex16.h"
#include "sim/barrier.h"
#include "sim/machine.h"

namespace pp::kernels {

// Address layout of one (G, L) matrix pair.  Folded mode pins row r of both
// matrices into one bank of its owning core (the paper's row folding);
// interleaved mode spreads words across the cluster (serial baseline).
struct Chol_layout {
  enum class Mode { folded, interleaved } mode = Mode::folded;
  const arch::Address_map* map = nullptr;
  uint32_t n = 0;           // matrix dimension
  // folded mode:
  arch::core_id gang_base = 0;  // first core of the gang
  uint32_t rows_per_core = 4;
  bool mirror = false;      // row r lives with the owner of row n-1-r
  uint32_t g_row = 0, l_row = 0;  // base rows inside the banks
  // interleaved mode:
  arch::addr_t g_base = 0, l_base = 0;

  arch::core_id owner(uint32_t r) const {
    const uint32_t rr = mirror ? n - 1 - r : r;
    return gang_base + rr / rows_per_core;
  }
  arch::addr_t g_addr(uint32_t r, uint32_t col) const { return addr(g_row, g_base, r, col); }
  arch::addr_t l_addr(uint32_t r, uint32_t col) const { return addr(l_row, l_base, r, col); }

 private:
  arch::addr_t addr(uint32_t base_row, arch::addr_t base, uint32_t r,
                    uint32_t col) const {
    if (mode == Mode::interleaved) return base + r * n + col;
    const uint32_t rr = mirror ? n - 1 - r : r;
    const uint32_t lr = rr % rows_per_core;  // local row within the owner
    const arch::bank_id bank =
        map->config().first_local_bank(owner(r)) + lr % 4;
    return map->bank_word(bank, base_row + (lr / 4) * n + col);
  }
};

// --- building blocks shared by all shapes (exposed for tests) -------------

// Compute + store L[i][j] (i > j): j MACs, one subtract, two divides.
sim::Prog chol_offdiag(sim::Core& c, Chol_layout lay, uint32_t i, uint32_t j);
// Compute + store the real diagonal L[j][j]: j MACs and a shift-add sqrt.
sim::Prog chol_diag(sim::Core& c, Chol_layout lay, uint32_t j);
// Full single-core Crout decomposition over `lay`.
sim::Prog chol_single(sim::Core& c, Chol_layout lay);

// --- execution shapes -------------------------------------------------------

class Chol_batch {
 public:
  // n_cores cores each decompose `per_core` independent n x n matrices in
  // their local banks, then meet at one barrier.
  Chol_batch(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
             uint32_t per_core, uint32_t n_cores);

  void set_g(uint32_t core, uint32_t idx, std::span<const common::cq15> g);
  std::vector<common::cq15> l(uint32_t core, uint32_t idx) const;
  sim::Kernel_report run();

 private:
  sim::Prog core_prog(sim::Core& c, uint32_t core);
  Chol_layout layout(uint32_t core, uint32_t idx) const;

  sim::Machine& m_;
  uint32_t n_, per_core_, n_cores_;
  uint32_t base_row_ = 0;
  sim::Barrier bar_;
};

class Chol_pair {
 public:
  // n_pairs gangs of n/4 cores; each gang decomposes a mirrored couple of
  // n x n matrices with one partial barrier per column.  mirrored=false
  // assigns both matrices the same (staircase) row ownership - the Fig. 7
  // load-balancing ablation.
  Chol_pair(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
            uint32_t n_pairs, bool mirrored = true);

  void set_g(uint32_t pair, uint32_t which, std::span<const common::cq15> g);
  std::vector<common::cq15> l(uint32_t pair, uint32_t which) const;
  uint32_t cores_used() const { return n_pairs_ * (n_ / 4); }
  sim::Kernel_report run();

 private:
  sim::Prog gang_prog(sim::Core& c, uint32_t pair, uint32_t p);
  Chol_layout layout(uint32_t pair, uint32_t which) const;

  sim::Machine& m_;
  uint32_t n_, n_pairs_;
  bool mirrored_ = true;
  uint32_t base_row_ = 0;
  std::vector<sim::Barrier> bars_;  // one per pair (reused every column)
};

class Chol_serial {
 public:
  // reps back-to-back n x n decompositions on one core (speedup baseline).
  Chol_serial(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
              uint32_t reps);

  void set_g(uint32_t rep, std::span<const common::cq15> g);
  std::vector<common::cq15> l(uint32_t rep) const;
  sim::Kernel_report run(arch::core_id core = 0);

 private:
  sim::Prog prog(sim::Core& c);

  sim::Machine& m_;
  uint32_t n_, reps_;
  std::vector<Chol_layout> lay_;
};

// --- triangular solves (MIMO stage completion) -----------------------------

// Batched per-subcarrier solve: given L (n x n) and rhs y, computes
// x = (L L^H)^-1 y via forward + backward substitution.  Each core processes
// `per_core` independent systems from its local banks.
class Trisolve_batch {
 public:
  Trisolve_batch(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
                 uint32_t per_core, uint32_t n_cores);

  void set_system(uint32_t core, uint32_t idx,
                  std::span<const common::cq15> l,
                  std::span<const common::cq15> y);
  std::vector<common::cq15> x(uint32_t core, uint32_t idx) const;
  sim::Kernel_report run();

 private:
  sim::Prog core_prog(sim::Core& c, uint32_t core);
  arch::addr_t l_addr(uint32_t core, uint32_t idx, uint32_t r, uint32_t col) const;
  arch::addr_t v_addr(uint32_t core, uint32_t idx, uint32_t which, uint32_t r) const;

  sim::Machine& m_;
  uint32_t n_, per_core_, n_cores_;
  uint32_t base_row_ = 0;
  sim::Barrier bar_;
};

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_CHOLESKY_H
