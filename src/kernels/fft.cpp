#include "kernels/fft.h"

namespace pp::kernels {

using common::cadd;
using common::cmul;
using common::cmul_mj;
using common::cq15;
using common::cquarter;
using common::csub;
using common::pack_cq15;
using common::unpack_cq15;

namespace {

// Functional + timing model of one radix-4 DIF butterfly.
//
// Inputs are pre-scaled by 1/4 (one SIMD shift each) so the Q1.15 adds
// cannot saturate; three outputs are rotated by the stage twiddles except in
// the last stage (all twiddles are 1 there).
struct Bf_out {
  cq15 v[4];
  uint64_t dep[4];
};

Bf_out butterfly(sim::Core& c, const sim::Tok (&xt)[4], const sim::Tok (&twt)[3],
                 const cq15 (&twv)[3], bool last) {
  // Functional math (identical in both ISA variants).
  cq15 x[4];
  for (int j = 0; j < 4; ++j) x[j] = cquarter(unpack_cq15(xt[j].value));
  const cq15 a = cadd(x[0], x[2]);
  const cq15 cc = csub(x[0], x[2]);
  const cq15 b = cadd(x[1], x[3]);
  const cq15 d = csub(x[1], x[3]);
  const cq15 dj = cmul_mj(d);  // -j rotation

  Bf_out o;
  o.v[0] = cadd(a, b);
  o.v[1] = cadd(cc, dj);
  o.v[2] = csub(a, b);
  o.v[3] = csub(cc, dj);

  if (c.cfg->isa_fused_butterfly) {
    // Paper SVI future work: a fused radix-4 add-network instruction pair
    // replaces the 13-op SIMD sequence below.
    const uint64_t in = std::max(std::max(xt[0].ready, xt[1].ready),
                                 std::max(xt[2].ready, xt[3].ready));
    const uint64_t f = c.op(2, in, 0, c.cfg->mul_latency);
    for (int m = 0; m < 4; ++m) o.dep[m] = f;
  } else {
    uint64_t q[4];
    for (int j = 0; j < 4; ++j) q[j] = c.cadd(xt[j].ready);  // SIMD >>2
    const uint64_t ta = c.cadd(q[0], q[2]);
    const uint64_t tc = c.cadd(q[0], q[2]);
    const uint64_t tb = c.cadd(q[1], q[3]);
    const uint64_t td = c.cadd(q[1], q[3]);
    const uint64_t tdj = c.cadd(td);
    o.dep[0] = c.cadd(ta, tb);
    o.dep[1] = c.cadd(tc, tdj);
    o.dep[2] = c.cadd(ta, tb);
    o.dep[3] = c.cadd(tc, tdj);
  }

  if (!last) {
    for (int m = 1; m < 4; ++m) {
      o.v[m] = cmul(o.v[m], twv[m - 1]);
      o.dep[m] = c.cmul(o.dep[m], twt[m - 1].ready);
    }
  }
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fft_serial
// ---------------------------------------------------------------------------

Fft_serial::Fft_serial(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
                       uint32_t reps)
    : m_(m), geom_(n), reps_(reps) {
  tw_ = alloc.alloc(n);
  for (uint32_t e = 0; e < n; ++e) {
    m_.mem().poke(tw_ + e, pack_cq15(geom_.twiddle(e)));
  }
  for (uint32_t r = 0; r < reps_; ++r) {
    buf_.push_back(alloc.alloc(n));
    out_.push_back(alloc.alloc(n));
  }
}

void Fft_serial::set_input(uint32_t rep, std::span<const cq15> x) {
  PP_CHECK(x.size() == geom_.n, "FFT input size mismatch");
  for (uint32_t i = 0; i < geom_.n; ++i) {
    m_.mem().poke(buf_[rep] + i, pack_cq15(x[i]));
  }
}

std::vector<cq15> Fft_serial::output(uint32_t rep) const {
  std::vector<cq15> y(geom_.n);
  for (uint32_t i = 0; i < geom_.n; ++i) {
    y[i] = unpack_cq15(m_.mem().peek(out_[rep] + i));
  }
  return y;
}

sim::Prog Fft_serial::prog(sim::Core& c) {
  const Fft_geom g = geom_;
  for (uint32_t rep = 0; rep < reps_; ++rep) {
    const arch::addr_t buf = buf_[rep];
    const arch::addr_t out = out_[rep];
    for (uint32_t k = 0; k < g.stages; ++k) {
      const bool last = k + 1 == g.stages;
      for (uint32_t bf = 0; bf < g.n / 4; ++bf) {
        c.alu(3);  // butterfly base/stride address setup
        sim::Tok xt[4];
        for (uint32_t j = 0; j < 4; ++j) {
          xt[j] = co_await c.load(buf + g.elem(k, bf, j));
        }
        sim::Tok twt[3] = {};
        cq15 twv[3] = {};
        if (!last) {
          for (uint32_t mm = 1; mm < 4; ++mm) {
            twt[mm - 1] = co_await c.load(tw_ + g.tw_exp(k, bf, mm));
            twv[mm - 1] = unpack_cq15(twt[mm - 1].value);
          }
        }
        const Bf_out o = butterfly(c, xt, twt, twv, last);
        c.alu(2);  // store address setup
        for (uint32_t mm = 0; mm < 4; ++mm) {
          const uint32_t i_out = g.elem(k, bf, mm);
          const arch::addr_t a =
              last ? out + g.digitrev(i_out) : buf + i_out;
          co_await c.store(a, pack_cq15(o.v[mm]), o.dep[mm]);
        }
        c.alu(2);  // loop bookkeeping
      }
    }
  }
}

sim::Kernel_report Fft_serial::run(arch::core_id core) {
  std::vector<sim::Machine::Launch> l;
  l.push_back({core, prog(m_.core(core))});
  return m_.run_programs("fft_serial", std::move(l));
}

// ---------------------------------------------------------------------------
// Fft_parallel
// ---------------------------------------------------------------------------

Fft_parallel::Fft_parallel(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
                           uint32_t n_inst, uint32_t reps, bool folded)
    : m_(m), geom_(n), n_inst_(n_inst), reps_(reps), folded_(folded) {
  const auto& cfg = m_.config();
  PP_CHECK(cores_used() <= cfg.n_cores(),
           "FFT batch needs more cores than the cluster has");

  if (folded_) {
    data_row_ = alloc.alloc_rows(reps_ * 8);
    // Per-stage twiddles, replicated into each gang core's local banks
    // (12 words: 3 per butterfly).
    tw_row_.resize(geom_.stages);
    for (uint32_t k = 0; k + 1 < geom_.stages; ++k) {
      tw_row_[k] = alloc.alloc_rows(3);
      for (uint32_t inst = 0; inst < n_inst_; ++inst) {
        for (uint32_t p = 0; p < geom_.cores(); ++p) {
          for (uint32_t b = 0; b < 4; ++b) {
            for (uint32_t mm = 1; mm < 4; ++mm) {
              const arch::addr_t a = m_.map().core_word(
                  abs_core(inst, p), tw_row_[k], b * 3 + (mm - 1));
              m_.mem().poke(
                  a, pack_cq15(geom_.twiddle(geom_.tw_exp(k, 4 * p + b, mm))));
            }
          }
        }
      }
    }
  } else {
    // Ablation layout: plain interleaved ping-pong buffers + shared twiddle
    // table; butterfly accesses are spread over the whole cluster.
    const uint64_t words = static_cast<uint64_t>(n_inst_) * reps_ * geom_.n;
    naive_buf_[0] = alloc.alloc(words);
    naive_buf_[1] = alloc.alloc(words);
    naive_tw_ = alloc.alloc(geom_.n);
    for (uint32_t e = 0; e < geom_.n; ++e) {
      m_.mem().poke(naive_tw_ + e, pack_cq15(geom_.twiddle(e)));
    }
  }

  out_ = alloc.alloc(static_cast<uint64_t>(n_inst_) * reps_ * geom_.n);

  // Hierarchical stage barriers: after stage k only the cores of one stage-k
  // sub-FFT synchronize.
  bars_.resize(n_inst_);
  for (uint32_t inst = 0; inst < n_inst_; ++inst) {
    if (geom_.cores() > 1) {
      std::vector<arch::core_id> gang(geom_.cores());
      for (uint32_t i = 0; i < geom_.cores(); ++i) gang[i] = abs_core(inst, i);
      join_bars_.push_back(sim::Barrier::create(alloc, cfg, std::move(gang)));
    }
    bars_[inst].resize(geom_.stages);
    for (uint32_t k = 0; k + 1 < geom_.stages; ++k) {
      const uint32_t gsz = geom_.sync_group_cores(k);
      if (gsz < 2) continue;
      const uint32_t n_groups = geom_.cores() / gsz;
      for (uint32_t f = 0; f < n_groups; ++f) {
        std::vector<arch::core_id> cs(gsz);
        for (uint32_t i = 0; i < gsz; ++i) cs[i] = abs_core(inst, f * gsz + i);
        bars_[inst][k].push_back(
            sim::Barrier::create(alloc, cfg, std::move(cs)));
      }
    }
  }
}

void Fft_parallel::set_input(uint32_t inst, uint32_t rep,
                             std::span<const cq15> x) {
  PP_CHECK(x.size() == geom_.n, "FFT input size mismatch");
  for (uint32_t i = 0; i < geom_.n; ++i) {
    if (folded_) {
      const Fft_geom::Cs cs = geom_.place(0, i);
      m_.mem().poke(slot_addr(inst, cs.core, rep, 0, cs.slot), pack_cq15(x[i]));
    } else {
      m_.mem().poke(naive_addr(inst, rep, 0, i), pack_cq15(x[i]));
    }
  }
}

std::vector<cq15> Fft_parallel::output(uint32_t inst, uint32_t rep) const {
  std::vector<cq15> y(geom_.n);
  const arch::addr_t base =
      out_ + (static_cast<uint64_t>(inst) * reps_ + rep) * geom_.n;
  for (uint32_t i = 0; i < geom_.n; ++i) {
    y[i] = unpack_cq15(m_.mem().peek(base + i));
  }
  return y;
}

sim::Prog Fft_parallel::gang_prog(sim::Core& c, uint32_t inst, uint32_t p) {
  const Fft_geom g = geom_;
  for (uint32_t k = 0; k < g.stages; ++k) {
    const bool last = k + 1 == g.stages;
    for (uint32_t rep = 0; rep < reps_; ++rep) {
      for (uint32_t b = 0; b < 4; ++b) {
        const uint32_t bf = 4 * p + b;
        c.alu(3);  // butterfly base/stride address setup
        // Folded: the four inputs sit in one row of this core's four banks.
        sim::Tok xt[4];
        for (uint32_t j = 0; j < 4; ++j) {
          xt[j] = co_await c.load(
              folded_ ? slot_addr(inst, p, rep, k & 1, b * 4 + j)
                      : naive_addr(inst, rep, k & 1, g.elem(k, bf, j)));
        }
        sim::Tok twt[3] = {};
        cq15 twv[3] = {};
        if (!last) {
          for (uint32_t mm = 1; mm < 4; ++mm) {
            twt[mm - 1] = co_await c.load(
                folded_ ? m_.map().core_word(abs_core(inst, p), tw_row_[k],
                                             b * 3 + (mm - 1))
                        : naive_tw_ + g.tw_exp(k, bf, mm));
            twv[mm - 1] = unpack_cq15(twt[mm - 1].value);
          }
        }
        const Bf_out o = butterfly(c, xt, twt, twv, last);
        c.alu(2);  // store address setup
        for (uint32_t mm = 0; mm < 4; ++mm) {
          const uint32_t i_out = g.elem(k, bf, mm);
          arch::addr_t a;
          if (last) {
            a = out_ + (static_cast<uint64_t>(inst) * reps_ + rep) * g.n +
                g.digitrev(i_out);
          } else if (folded_) {
            // Shuffle-store into the folded layout of the stage-k+1 owner.
            const Fft_geom::Cs cs = g.place(k + 1, i_out);
            a = slot_addr(inst, cs.core, rep, (k + 1) & 1, cs.slot);
          } else {
            a = naive_addr(inst, rep, (k + 1) & 1, i_out);
          }
          co_await c.store(a, pack_cq15(o.v[mm]), o.dep[mm]);
        }
        c.alu(2);  // loop bookkeeping
      }
    }
    if (!last) {
      const uint32_t gsz = g.sync_group_cores(k);
      if (gsz >= 2) {
        co_await sim::barrier_wait(c, bars_[inst][k][p / gsz]);
      }
    }
  }
  // Join: close the gang's parallel region.
  if (g.cores() > 1) co_await sim::barrier_wait(c, join_bars_[inst]);
}

sim::Kernel_report Fft_parallel::run() {
  std::vector<sim::Machine::Launch> l;
  l.reserve(cores_used());
  for (uint32_t inst = 0; inst < n_inst_; ++inst) {
    for (uint32_t p = 0; p < geom_.cores(); ++p) {
      const arch::core_id cid = abs_core(inst, p);
      l.push_back({cid, gang_prog(m_.core(cid), inst, p)});
    }
  }
  return m_.run_programs("fft_parallel", std::move(l));
}

}  // namespace pp::kernels
