// Simulated radix-4 DIF FFT kernels (paper §V-A).
//
// Fft_serial  - single-core, in-place, interleaved-memory baseline.
// Fft_parallel- the paper's parallel mapping: N/16 cores per FFT, folded
//               local-bank layout, per-stage shuffle stores, hierarchical
//               partial barriers that shrink 4x per stage, optional
//               replication of independent FFTs per gang ("reps") and
//               multiple concurrent gangs ("instances") to fill the cluster.
//
// Both kernels compute a forward FFT scaled by 1/N (one >>2 per stage) on
// packed Q1.15 complex data resident in L1, and deliver natural-order
// output (digit reversal folded into the last-stage stores).
#ifndef PUSCHPOOL_KERNELS_FFT_H
#define PUSCHPOOL_KERNELS_FFT_H

#include <span>
#include <vector>

#include "arch/address_map.h"
#include "common/complex16.h"
#include "kernels/fft_plan.h"
#include "sim/barrier.h"
#include "sim/machine.h"

namespace pp::kernels {

class Fft_serial {
 public:
  // Allocates buffers for `reps` back-to-back FFTs of size n on one core.
  Fft_serial(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
             uint32_t reps = 1);

  void set_input(uint32_t rep, std::span<const common::cq15> x);
  std::vector<common::cq15> output(uint32_t rep) const;

  // Runs all reps sequentially on `core`.
  sim::Kernel_report run(arch::core_id core = 0);

 private:
  sim::Prog prog(sim::Core& c);

  sim::Machine& m_;
  Fft_geom geom_;
  uint32_t reps_;
  arch::addr_t tw_ = 0;                // twiddle table W_n^e, e in [0, n)
  std::vector<arch::addr_t> buf_;      // per rep: in-place work buffer
  std::vector<arch::addr_t> out_;      // per rep: natural-order output
};

class Fft_parallel {
 public:
  // n_inst concurrent gangs of n/16 cores; each gang runs `reps` independent
  // FFTs between each pair of stage barriers (the paper's batching).
  // folded=false keeps the data in plain interleaved arrays instead of the
  // paper's folded local-bank layout (the Fig. 5 ablation: butterfly loads
  // become remote and conflict-prone).
  Fft_parallel(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n,
               uint32_t n_inst = 1, uint32_t reps = 1, bool folded = true);

  void set_input(uint32_t inst, uint32_t rep, std::span<const common::cq15> x);
  std::vector<common::cq15> output(uint32_t inst, uint32_t rep) const;

  uint32_t cores_per_gang() const { return geom_.cores(); }
  uint32_t cores_used() const { return n_inst_ * geom_.cores(); }

  sim::Kernel_report run();

 private:
  sim::Prog gang_prog(sim::Core& c, uint32_t inst, uint32_t p);

  arch::core_id abs_core(uint32_t inst, uint32_t p) const {
    return inst * geom_.cores() + p;
  }
  // Address of folded slot s of gang-core p in instance `inst`, for the
  // data region of `rep` with the given ping-pong parity.
  arch::addr_t slot_addr(uint32_t inst, uint32_t p, uint32_t rep,
                         uint32_t parity, uint32_t slot) const {
    const uint32_t row = data_row_ + rep * 8 + parity * 4;
    return m_.map().core_word(abs_core(inst, p), row, slot);
  }

  arch::addr_t naive_addr(uint32_t inst, uint32_t rep, uint32_t parity,
                          uint32_t i) const {
    return naive_buf_[parity] +
           (static_cast<arch::addr_t>(inst) * reps_ + rep) * geom_.n + i;
  }

  sim::Machine& m_;
  Fft_geom geom_;
  uint32_t n_inst_;
  uint32_t reps_;
  bool folded_ = true;
  arch::addr_t naive_buf_[2] = {0, 0};  // unfolded ping-pong buffers
  arch::addr_t naive_tw_ = 0;           // shared interleaved twiddle table
  uint32_t data_row_ = 0;              // base row of folded data regions
  std::vector<uint32_t> tw_row_;       // per stage: base row of twiddles
  arch::addr_t out_ = 0;               // interleaved outputs
  // bars_[inst][stage][group]
  std::vector<std::vector<std::vector<sim::Barrier>>> bars_;
  std::vector<sim::Barrier> join_bars_;  // per-gang fork-join barrier
};

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_FFT_H
