// Radix-4 decimation-in-frequency FFT geometry (paper §V-A).
//
// For an N = 4^S point FFT, stage k (k = 0..S-1) processes butterflies of
// distance d(k) = N / 4^(k+1).  Butterfly g combines the four elements
// base(g) + j*d(k), scales by 1/4 (fixed-point), applies twiddles
// W_N^(m*q*4^k) and writes back in place; the final result is in base-4
// digit-reversed order.
//
// Parallel mapping: each core owns 4 butterflies per stage, i.e. 16 elements,
// held in its 4 local banks as 4 rows of 4 (the paper's "folded" layout,
// Fig. 5), so all butterfly loads are 1-cycle local accesses.  Stage-k
// outputs are stored directly into the folded layout of the consuming core
// for stage k+1.  Only the cores of one stage-k sub-FFT exchange data, so
// barriers shrink 4x per stage and disappear once a sub-FFT fits in a core.
#ifndef PUSCHPOOL_KERNELS_FFT_PLAN_H
#define PUSCHPOOL_KERNELS_FFT_PLAN_H

#include <complex>
#include <cstdint>

#include "common/check.h"
#include "common/complex16.h"
#include "common/twiddle.h"

namespace pp::kernels {

struct Fft_geom {
  uint32_t n = 0;       // FFT size, a power of 4, >= 16
  uint32_t stages = 0;  // log4(n)

  static bool valid_size(uint32_t n) {
    if (n < 16) return false;
    while (n > 1) {
      if (n % 4 != 0) return false;
      n /= 4;
    }
    return true;
  }

  explicit Fft_geom(uint32_t size) : n(size) {
    PP_CHECK(valid_size(size), "FFT size must be a power of 4, >= 16");
    for (uint32_t v = size; v > 1; v /= 4) ++stages;
  }

  // Cores needed by the parallel mapping (4 butterflies per core).
  uint32_t cores() const { return n / 16; }

  // Butterfly distance at stage k.
  uint32_t d(uint32_t k) const { return n >> (2 * (k + 1)); }

  // First input element of butterfly g at stage k.
  uint32_t base(uint32_t k, uint32_t g) const {
    const uint32_t dk = d(k);
    return (g / dk) * 4 * dk + (g % dk);
  }

  // Logical index of input/output j (0..3) of butterfly g at stage k.
  uint32_t elem(uint32_t k, uint32_t g, uint32_t j) const {
    return base(k, g) + j * d(k);
  }

  // Inverse of elem(): which (butterfly, port) handles logical index i at
  // stage k.
  struct Gj {
    uint32_t g, j;
  };
  Gj locate(uint32_t k, uint32_t i) const {
    const uint32_t dk = d(k);
    return {(i / (4 * dk)) * dk + (i % dk), (i / dk) % 4};
  }

  // Owning core (within the FFT's core gang) and local slot (0..15) of
  // logical element i at stage k.  Slot s lives in local bank s%4, row s/4,
  // so one butterfly's four inputs share a row across the four banks.
  struct Cs {
    uint32_t core, slot;
  };
  Cs place(uint32_t k, uint32_t i) const {
    const Gj gj = locate(k, i);
    return {gj.g / 4, (gj.g % 4) * 4 + gj.j};
  }

  // Twiddle exponent (over W_n) applied to output m of butterfly g, stage k.
  uint32_t tw_exp(uint32_t k, uint32_t g, uint32_t m) const {
    return m * (g % d(k)) << (2 * k);
  }

  // Base-4 digit reversal of i (stages digits).
  uint32_t digitrev(uint32_t i) const {
    uint32_t r = 0, v = i;
    for (uint32_t s = 0; s < stages; ++s) {
      r = (r << 2) | (v & 3);
      v >>= 2;
    }
    return r;
  }

  // Cores per synchronization group after stage k: the cores of one stage-k
  // sub-FFT (they alone exchange data with stage k+1).
  uint32_t sync_group_cores(uint32_t k) const { return d(k) / 4; }

  // Twiddle factor W_n^e in Q15 (forward transform), served from the shared
  // thread-safe per-size table (common/twiddle.h).
  common::cq15 twiddle(uint32_t e) const {
    return common::twiddle_q15(n)[e % n];
  }
};

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_FFT_PLAN_H
