#include "kernels/gram.h"

#include "kernels/util.h"

namespace pp::kernels {

using common::cacc;
using common::cadd;
using common::cconj;
using common::cq15;
using common::pack_cq15;
using common::unpack_cq15;

Gram_batch::Gram_batch(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n_sc,
                       uint32_t n_b, uint32_t n_l, uint32_t n_cores)
    : m_(m), n_sc_(n_sc), n_b_(n_b), n_l_(n_l), n_cores_(n_cores) {
  PP_CHECK(n_l_ <= 8, "gram kernel keeps one H column in registers (n_l <= 8)");
  h_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_b_ * n_l_);
  y_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_b_);
  sigma_ = alloc.alloc(1);
  g_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_l_ * n_l_);
  rhs_ = alloc.alloc(static_cast<uint64_t>(n_sc_) * n_l_);
  std::vector<arch::core_id> cs(n_cores_);
  for (uint32_t i = 0; i < n_cores_; ++i) cs[i] = i;
  bar_ = sim::Barrier::create(alloc, m_.config(), std::move(cs));
}

void Gram_batch::set_h(std::span<const cq15> h) {
  PP_CHECK(h.size() == static_cast<size_t>(n_sc_) * n_b_ * n_l_,
           "H shape mismatch");
  poke_c(m_.mem(), h_, h);
}

void Gram_batch::set_y(std::span<const cq15> y) {
  PP_CHECK(y.size() == static_cast<size_t>(n_sc_) * n_b_, "y shape mismatch");
  poke_c(m_.mem(), y_, y);
}

void Gram_batch::set_sigma2(int16_t sigma2_q15) {
  m_.mem().poke(sigma_, pack_cq15(cq15{sigma2_q15, 0}));
}

std::vector<cq15> Gram_batch::g(uint32_t sc) const {
  return peek_c(m_.mem(), g_ + sc * n_l_ * n_l_, static_cast<size_t>(n_l_) * n_l_);
}

std::vector<cq15> Gram_batch::rhs(uint32_t sc) const {
  return peek_c(m_.mem(), rhs_ + sc * n_l_, n_l_);
}

sim::Prog Gram_batch::core_prog(sim::Core& c, uint32_t idx) {
  const uint32_t chunk = (n_sc_ + n_cores_ - 1) / n_cores_;
  const uint32_t lo = std::min(idx * chunk, n_sc_);
  const uint32_t hi = std::min(lo + chunk, n_sc_);

  const sim::Tok sig = co_await c.load(sigma_);
  const cq15 sigma = unpack_cq15(sig.value);

  for (uint32_t sc = lo; sc < hi; ++sc) {
    c.alu(3);  // sub-carrier base pointers
    // Accumulators: lower triangle of G plus the rhs vector.
    cacc acc[8][8];
    cacc racc[8];
    uint64_t dep[8][8] = {};
    uint64_t rdep[8] = {};
    for (uint32_t i = 0; i < n_l_; ++i) {
      for (uint32_t j = 0; j <= i; ++j) acc[i][j] = cacc{};
      racc[i] = cacc{};
    }

    for (uint32_t b = 0; b < n_b_; ++b) {
      // One H row (all layers of this beam) lives in registers.
      sim::Tok ht[8];
      cq15 hv[8];
      for (uint32_t l = 0; l < n_l_; ++l) {
        ht[l] = co_await c.load(h_ + (sc * n_b_ + b) * n_l_ + l);
        hv[l] = unpack_cq15(ht[l].value);
      }
      const sim::Tok yt = co_await c.load(y_ + sc * n_b_ + b);
      const cq15 yv = unpack_cq15(yt.value);
      // Lower triangle: G[i][j] += conj(h[i]) * h[j].
      for (uint32_t i = 0; i < n_l_; ++i) {
        for (uint32_t j = 0; j <= i; ++j) {
          acc[i][j].mac_conj(hv[j], hv[i]);  // h[j] * conj(h[i])
          dep[i][j] = c.cmac(std::max(ht[i].ready, ht[j].ready), dep[i][j]);
        }
        racc[i].mac_conj(yv, hv[i]);  // y * conj(h[i])
        rdep[i] = c.cmac(std::max(ht[i].ready, yt.ready), rdep[i]);
      }
      c.alu(2);  // beam loop bookkeeping
    }

    // Store G (mirroring the upper triangle) and rhs; add sigma2 on the
    // diagonal.
    c.alu(2);
    for (uint32_t i = 0; i < n_l_; ++i) {
      for (uint32_t j = 0; j <= i; ++j) {
        cq15 v = acc[i][j].round();
        uint64_t d = dep[i][j];
        if (i == j) {
          v = cadd(v, sigma);
          d = c.cadd(d, sig.ready);
        }
        co_await c.store(g_ + (sc * n_l_ + i) * n_l_ + j, pack_cq15(v), d);
        if (i != j) {
          co_await c.store(g_ + (sc * n_l_ + j) * n_l_ + i,
                           pack_cq15(cconj(v)), c.cadd(d));
        }
      }
      co_await c.store(rhs_ + sc * n_l_ + i, pack_cq15(racc[i].round()),
                       rdep[i]);
    }
    c.alu(2);  // sub-carrier loop bookkeeping
  }
  co_await sim::barrier_wait(c, bar_);
}

sim::Kernel_report Gram_batch::run() {
  std::vector<sim::Machine::Launch> l;
  for (uint32_t i = 0; i < n_cores_; ++i) {
    l.push_back({i, core_prog(m_.core(i), i)});
  }
  return m_.run_programs("gram", std::move(l));
}

}  // namespace pp::kernels
