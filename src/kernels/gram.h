// Gramian + matched-filter kernel for the MIMO stage (paper eq. 2).
//
// Per sub-carrier, from the estimated beam-domain channel H (n_b x n_l) and
// the received beam vector y, computes
//
//     G   = H^H H + sigma2 I     (n_l x n_l, Hermitian)
//     rhs = H^H y                (n_l)
//
// which feed the Cholesky decomposition and the triangular solves.  The
// paper's Table I folds this formation step into the MIMO stage without
// listing it separately; this kernel makes its cost measurable.
// Parallelization is embarrassing over sub-carrier blocks; the Hermitian
// structure halves the MAC count (only the lower triangle is computed, the
// upper is mirrored on store).
#ifndef PUSCHPOOL_KERNELS_GRAM_H
#define PUSCHPOOL_KERNELS_GRAM_H

#include <span>
#include <vector>

#include "arch/address_map.h"
#include "common/complex16.h"
#include "sim/barrier.h"
#include "sim/machine.h"

namespace pp::kernels {

class Gram_batch {
 public:
  Gram_batch(sim::Machine& m, arch::L1_alloc& alloc, uint32_t n_sc,
             uint32_t n_b, uint32_t n_l, uint32_t n_cores);

  void set_h(std::span<const common::cq15> h);  // [sc][b][l]
  void set_y(std::span<const common::cq15> y);  // [sc][b]
  void set_sigma2(int16_t sigma2_q15);

  // Row-major n_l x n_l Gramian of sub-carrier sc (after run()).
  std::vector<common::cq15> g(uint32_t sc) const;
  // Matched-filter output of sub-carrier sc.
  std::vector<common::cq15> rhs(uint32_t sc) const;

  sim::Kernel_report run();

 private:
  sim::Prog core_prog(sim::Core& c, uint32_t idx);

  sim::Machine& m_;
  uint32_t n_sc_, n_b_, n_l_, n_cores_;
  arch::addr_t h_ = 0, y_ = 0, sigma_ = 0;
  arch::addr_t g_ = 0;    // [sc][i][j]
  arch::addr_t rhs_ = 0;  // [sc][l]
  sim::Barrier bar_;
};

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_GRAM_H
