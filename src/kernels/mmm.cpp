#include "kernels/mmm.h"

#include "kernels/util.h"

namespace pp::kernels {

using common::cacc;
using common::cq15;
using common::pack_cq15;
using common::unpack_cq15;

Mmm::Mmm(sim::Machine& m, arch::L1_alloc& alloc, Mmm_dims dims,
         uint32_t window_rows, uint32_t window_cols)
    : m_(m), alloc_(alloc), d_(dims), wr_(window_rows), wc_(window_cols) {
  PP_CHECK(wr_ >= 1 && wr_ <= 4 && wc_ >= 1 && wc_ <= 4,
           "window must be between 1x1 and 4x4");
  a_ = alloc.alloc(static_cast<uint64_t>(d_.m) * d_.k);
  b_ = alloc.alloc(static_cast<uint64_t>(d_.k) * d_.p);
  c_ = alloc.alloc(static_cast<uint64_t>(d_.m) * d_.p);
}

void Mmm::set_a(std::span<const cq15> a) {
  PP_CHECK(a.size() == static_cast<size_t>(d_.m) * d_.k, "A shape mismatch");
  poke_c(m_.mem(), a_, a);
}

void Mmm::set_b(std::span<const cq15> b) {
  PP_CHECK(b.size() == static_cast<size_t>(d_.k) * d_.p, "B shape mismatch");
  poke_c(m_.mem(), b_, b);
}

std::vector<cq15> Mmm::c() const {
  return peek_c(m_.mem(), c_, static_cast<size_t>(d_.m) * d_.p);
}

sim::Prog Mmm::window_task(sim::Core& c, uint32_t i0, uint32_t j0,
                           uint32_t kk0) {
  const uint32_t nr = std::min(wr_, d_.m - i0);
  const uint32_t nc = std::min(wc_, d_.p - j0);

  // Functional accumulators (wide, order-independent) and their ready-times.
  cacc acc[4][4] = {};
  uint64_t accdep[4][4] = {};

  c.alu(4);  // window base addresses, accumulator zeroing amortized

  for (uint32_t kk = 0; kk < d_.k; ++kk) {
    // Staggered start: cores of one tile begin at different k offsets and
    // round-robin back, so their A/B loads never collide on a bank.
    const uint32_t k = (kk0 + kk) % d_.k;
    sim::Tok at[4], bt[4];
    cq15 av[4], bv[4];
    for (uint32_t r = 0; r < nr; ++r) {
      at[r] = co_await c.load(a_ + (i0 + r) * d_.k + k);
      av[r] = unpack_cq15(at[r].value);
    }
    for (uint32_t q = 0; q < nc; ++q) {
      bt[q] = co_await c.load(b_ + k * d_.p + (j0 + q));
      bv[q] = unpack_cq15(bt[q].value);
    }
    for (uint32_t r = 0; r < nr; ++r) {
      for (uint32_t q = 0; q < nc; ++q) {
        acc[r][q].mac(av[r], bv[q]);
        accdep[r][q] =
            c.cmac(std::max(at[r].ready, bt[q].ready), accdep[r][q]);
      }
    }
    c.alu(2);  // k increment + wrap + branch
  }

  c.alu(2);  // store address setup
  for (uint32_t r = 0; r < nr; ++r) {
    for (uint32_t q = 0; q < nc; ++q) {
      co_await c.store(c_ + (i0 + r) * d_.p + (j0 + q),
                       pack_cq15(acc[r][q].round()), accdep[r][q]);
    }
  }
}

sim::Prog Mmm::core_prog(sim::Core& c, uint32_t index, uint32_t stride) {
  const uint32_t strips = (d_.m + wr_ - 1) / wr_;
  const uint32_t windows = (d_.p + wc_ - 1) / wc_;
  const uint32_t n_tasks = strips * windows;
  // k-loop stagger by position within the tile (conflict avoidance).
  const uint32_t kk0 =
      (wr_ * (c.id % c.cfg->cores_per_tile)) % std::max(d_.k, 1u);

  for (uint32_t t = index; t < n_tasks; t += stride) {
    const uint32_t i0 = (t / windows) * wr_;
    const uint32_t j0 = (t % windows) * wc_;
    c.alu(3);  // task decode
    co_await window_task(c, i0, j0, kk0);
  }
  // Join: the parallel region closes with a barrier (fork-join model).
  if (stride > 1) co_await sim::barrier_wait(c, bar_);
}

sim::Kernel_report Mmm::run_serial(arch::core_id core) {
  std::vector<sim::Machine::Launch> l;
  l.push_back({core, core_prog(m_.core(core), 0, 1)});
  return m_.run_programs("mmm_serial", std::move(l));
}

sim::Kernel_report Mmm::run_parallel(uint32_t n_cores) {
  if (n_cores == 0) n_cores = m_.config().n_cores();
  if (bar_cores_ != n_cores) {
    std::vector<arch::core_id> cs(n_cores);
    for (uint32_t i = 0; i < n_cores; ++i) cs[i] = i;
    bar_ = sim::Barrier::create(alloc_, m_.config(), std::move(cs));
    bar_cores_ = n_cores;
  }
  std::vector<sim::Machine::Launch> l;
  l.reserve(n_cores);
  for (arch::core_id c = 0; c < n_cores; ++c) {
    l.push_back({c, core_prog(m_.core(c), c, n_cores)});
  }
  return m_.run_programs("mmm_parallel", std::move(l));
}

}  // namespace pp::kernels
