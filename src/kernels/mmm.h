// Matrix-matrix multiplication kernel (paper §V-B, Fig. 6).
//
// C (m x p) = A (m x k) * B (k x p) on packed Q1.15 complex data in
// interleaved L1.  The compute unit is a wr x wc window of C held in
// registers: the 4x4 window uses all 30 programmable Snitch registers
// (8 inputs + 16 accumulators + 6 control) and needs only 8 loads per 16
// complex MACs; 4x2 and 2x2 windows are provided for the paper's
// loads-per-MAC ablation.
//
// Parallelization: the (row-strip, column-window) task grid is dealt
// cyclically over the cores.  Cores of the same tile start their k-loop at
// staggered offsets and round-robin back, so they never hit the same bank of
// A or B on the same cycle (the paper's conflict-avoidance rule).
#ifndef PUSCHPOOL_KERNELS_MMM_H
#define PUSCHPOOL_KERNELS_MMM_H

#include <span>
#include <vector>

#include "arch/address_map.h"
#include "common/complex16.h"
#include "sim/barrier.h"
#include "sim/machine.h"

namespace pp::kernels {

struct Mmm_dims {
  uint32_t m = 0, k = 0, p = 0;
};

class Mmm {
 public:
  Mmm(sim::Machine& m, arch::L1_alloc& alloc, Mmm_dims dims,
      uint32_t window_rows = 4, uint32_t window_cols = 4);

  void set_a(std::span<const common::cq15> a);
  void set_b(std::span<const common::cq15> b);
  std::vector<common::cq15> c() const;

  // Serial baseline on one core.
  sim::Kernel_report run_serial(arch::core_id core = 0);
  // Parallel over the first n_cores cores (0 = whole cluster).
  sim::Kernel_report run_parallel(uint32_t n_cores = 0);

  // Complex MACs the problem needs (for MACs/cycle reporting).
  uint64_t cmacs() const {
    return static_cast<uint64_t>(d_.m) * d_.k * d_.p;
  }

 private:
  // Runs one task: compute the window at (i0, j0); kk0 staggers the k loop.
  sim::Prog window_task(sim::Core& c, uint32_t i0, uint32_t j0, uint32_t kk0);
  sim::Prog core_prog(sim::Core& c, uint32_t index, uint32_t stride);

  sim::Machine& m_;
  arch::L1_alloc& alloc_;
  Mmm_dims d_;
  uint32_t wr_, wc_;
  arch::addr_t a_ = 0, b_ = 0, c_ = 0;
  sim::Barrier bar_;       // fork-join barrier closing the parallel region
  uint32_t bar_cores_ = 0;
};

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_MMM_H
