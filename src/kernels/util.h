// Small host-side helpers to move packed complex arrays in and out of the
// simulated L1 (setup/verification only; no simulated cycles).
#ifndef PUSCHPOOL_KERNELS_UTIL_H
#define PUSCHPOOL_KERNELS_UTIL_H

#include <span>
#include <vector>

#include "common/complex16.h"
#include "sim/machine.h"
#include "sim/memory.h"

namespace pp::kernels {

// Fixed-point helper routines are implemented in software on Snitch (no
// 16-bit divide/sqrt hardware): they cost instructions, not unit stalls.

// Q15 square root: 12-instruction shift-add routine.
inline uint64_t sqrt_q15_soft(sim::Core& c, uint64_t dep,
                              std::source_location sl =
                                  std::source_location::current()) {
  return c.op(12, dep, 0, c.cfg->mul_latency, sl);
}

// Q15 complex-by-real-scalar division (both components share the
// normalization): 16-instruction routine.
inline uint64_t div_cr_q15_soft(sim::Core& c, uint64_t dep_num,
                                uint64_t dep_den,
                                std::source_location sl =
                                    std::source_location::current()) {
  return c.op(16, dep_num, dep_den, c.cfg->mul_latency, sl);
}

inline void poke_c(sim::Memory& mem, arch::addr_t base,
                   std::span<const common::cq15> v) {
  for (size_t i = 0; i < v.size(); ++i) {
    mem.poke(base + static_cast<arch::addr_t>(i), common::pack_cq15(v[i]));
  }
}

inline std::vector<common::cq15> peek_c(const sim::Memory& mem,
                                        arch::addr_t base, size_t n) {
  std::vector<common::cq15> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = common::unpack_cq15(mem.peek(base + static_cast<arch::addr_t>(i)));
  }
  return v;
}

}  // namespace pp::kernels

#endif  // PUSCHPOOL_KERNELS_UTIL_H
