#include "phy/channel.h"

#include <cmath>

#include "common/check.h"

namespace pp::phy {

Channel::Channel(const Channel_config& cfg, common::Rng& rng) : cfg_(cfg) {
  const size_t blocks = (cfg_.n_sc + cfg_.coherence - 1) / cfg_.coherence;
  h_.resize(blocks * cfg_.n_rx * cfg_.n_ue);
  for (auto& v : h_) v = rng.cnormal() * cfg_.gain;
}

std::vector<cd> Channel::apply(const std::vector<std::vector<cd>>& x,
                               common::Rng& noise_rng) const {
  PP_CHECK(x.size() == cfg_.n_ue, "need one grid per UE");
  std::vector<cd> y(static_cast<size_t>(cfg_.n_sc) * cfg_.n_rx, cd{0, 0});
  for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
    for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
      cd acc{0, 0};
      for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
        acc += h(sc, r, l) * x[l][sc];
      }
      acc += noise_rng.cnormal() * std::sqrt(cfg_.sigma2);
      y[static_cast<size_t>(sc) * cfg_.n_rx + r] = acc;
    }
  }
  return y;
}

std::vector<cd> dft_codebook(uint32_t n_rx, uint32_t n_beams) {
  std::vector<cd> b(static_cast<size_t>(n_rx) * n_beams);
  const double s = 1.0 / std::sqrt(static_cast<double>(n_rx));
  for (uint32_t r = 0; r < n_rx; ++r) {
    for (uint32_t q = 0; q < n_beams; ++q) {
      const double ang = -2.0 * M_PI * static_cast<double>(r) * q /
                         static_cast<double>(n_rx);
      b[static_cast<size_t>(r) * n_beams + q] = cd{std::cos(ang), std::sin(ang)} * s;
    }
  }
  return b;
}

}  // namespace pp::phy
