#include "phy/channel.h"

#include <cmath>

#include "common/check.h"

namespace pp::phy {

std::vector<std::string> channel_profile_names() {
  return {"flat", "tdl-a", "tdl-c"};
}

bool is_channel_profile_name(const std::string& name) {
  for (const auto& n : channel_profile_names()) {
    if (n == name) return true;
  }
  return false;
}

Channel_profile channel_profile_from_name(const std::string& name) {
  if (name == "flat") return Channel_profile::flat;
  if (name == "tdl-a") return Channel_profile::tdl_a;
  if (name == "tdl-c") return Channel_profile::tdl_c;
  PP_CHECK(false, "unknown channel profile (registered: flat, tdl-a, tdl-c)");
  return Channel_profile::flat;  // unreachable
}

const char* channel_profile_name(Channel_profile profile) {
  switch (profile) {
    case Channel_profile::flat: return "flat";
    case Channel_profile::tdl_a: return "tdl-a";
    case Channel_profile::tdl_c: return "tdl-c";
  }
  PP_CHECK(false, "unknown channel profile enum");
  return "flat";  // unreachable
}

namespace {

// TR 38.901 Table 7.7.2 tap tables: {normalized delay, power dB}.  Powers
// are converted to linear and normalized to sum to 1 once, at first use.
struct Raw_tap {
  double delay;
  double power_db;
};

std::vector<Tdl_tap> normalize(const Raw_tap* raw, size_t n) {
  std::vector<Tdl_tap> taps(n);
  double sum = 0.0;
  for (size_t t = 0; t < n; ++t) {
    taps[t].delay = raw[t].delay;
    taps[t].power = std::pow(10.0, raw[t].power_db / 10.0);
    sum += taps[t].power;
  }
  for (auto& t : taps) t.power /= sum;
  return taps;
}

// TR 38.901 Table 7.7.2-1 (TDL-A, NLOS, 23 taps).
constexpr Raw_tap kTdlA[] = {
    {0.0000, -13.4}, {0.3819, 0.0},   {0.4025, -2.2},  {0.5868, -4.0},
    {0.4610, -6.0},  {0.5375, -8.2},  {0.6708, -9.9},  {0.5750, -10.5},
    {0.7618, -7.5},  {1.5375, -15.9}, {1.8978, -6.6},  {2.2242, -16.7},
    {2.1718, -12.4}, {2.4942, -15.2}, {2.5119, -10.8}, {3.0582, -11.3},
    {4.0810, -12.7}, {4.4579, -16.2}, {4.5695, -18.3}, {4.7966, -18.9},
    {5.0066, -16.6}, {5.3043, -19.9}, {9.6586, -29.7},
};

// TR 38.901 Table 7.7.2-3 (TDL-C, NLOS, 24 taps).
constexpr Raw_tap kTdlC[] = {
    {0.0000, -4.4},  {0.2099, -1.2},  {0.2219, -3.5},  {0.2329, -5.2},
    {0.2176, -2.5},  {0.6366, 0.0},   {0.6448, -2.2},  {0.6560, -3.9},
    {0.6584, -7.4},  {0.7935, -7.1},  {0.8213, -10.7}, {0.9336, -11.1},
    {1.2285, -5.1},  {1.3083, -6.8},  {2.1704, -8.7},  {2.7105, -13.2},
    {4.2589, -13.9}, {4.6003, -13.9}, {5.4902, -15.8}, {5.6077, -17.1},
    {6.3065, -16.0}, {6.6374, -15.7}, {7.0427, -21.6}, {8.6523, -22.8},
};

}  // namespace

const std::vector<Tdl_tap>& tdl_taps(Channel_profile profile) {
  static const std::vector<Tdl_tap> a =
      normalize(kTdlA, sizeof kTdlA / sizeof kTdlA[0]);
  static const std::vector<Tdl_tap> c =
      normalize(kTdlC, sizeof kTdlC / sizeof kTdlC[0]);
  switch (profile) {
    case Channel_profile::tdl_a: return a;
    case Channel_profile::tdl_c: return c;
    case Channel_profile::flat: break;
  }
  PP_CHECK(false, "the flat profile has no TDL tap table");
  return a;  // unreachable
}

double Channel::doppler_rho(const Channel_config& cfg, uint32_t l) {
  // Per-UE Doppler: UE l moves at (1 + l/2) x the base rate, so layers
  // decorrelate at different speeds.  The rate depends only on l - never on
  // n_ue - preserving per-UE stream independence.
  const double fd = cfg.doppler_hz * (1.0 + 0.5 * static_cast<double>(l));
  return std::exp(-2.0 * M_PI * fd * cfg.symbol_s);
}

Channel::Channel(const Channel_config& cfg, common::Rng& rng) : cfg_(cfg) {
  if (cfg_.profile == Channel_profile::flat) {
    const size_t blocks = (cfg_.n_sc + cfg_.coherence - 1) / cfg_.coherence;
    h_.resize(blocks * cfg_.n_rx * cfg_.n_ue);
    for (auto& v : h_) v = rng.cnormal() * cfg_.gain;
    return;
  }

  PP_CHECK(cfg_.n_symb >= 1, "a TDL trace covers at least one symbol");
  PP_CHECK(cfg_.delay_spread > 0.0, "TDL delay spread must be positive");
  const auto& table = tdl_taps(cfg_.profile);
  n_taps_ = static_cast<uint32_t>(table.size());
  const size_t per_symb = static_cast<size_t>(n_taps_) * cfg_.n_rx * cfg_.n_ue;
  taps_.resize(static_cast<size_t>(cfg_.n_symb) * per_symb);

  // Per-UE private streams, symbol-major draw order: the initial (t, r)
  // block, then one innovation block per later symbol.  A longer trace
  // therefore extends a shorter one without disturbing its prefix, and UE
  // l's realization is independent of every other UE's presence.
  for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
    common::Rng ue_rng(common::Rng::derive_seed(cfg_.seed, kUeStream + l));
    const double rho = doppler_rho(cfg_, l);
    const double innov = std::sqrt(std::max(0.0, 1.0 - rho * rho));
    for (uint32_t t = 0; t < n_taps_; ++t) {
      const double amp = std::sqrt(table[t].power) * cfg_.gain;
      for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
        taps_[(static_cast<size_t>(t) * cfg_.n_rx + r) * cfg_.n_ue + l] =
            ue_rng.cnormal() * amp;
      }
    }
    for (uint32_t s = 1; s < cfg_.n_symb; ++s) {
      for (uint32_t t = 0; t < n_taps_; ++t) {
        const double amp = std::sqrt(table[t].power) * cfg_.gain;
        for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
          const size_t at =
              (static_cast<size_t>(t) * cfg_.n_rx + r) * cfg_.n_ue + l;
          const cd prev = taps_[(static_cast<size_t>(s) - 1) * per_symb + at];
          taps_[static_cast<size_t>(s) * per_symb + at] =
              prev * rho + ue_rng.cnormal() * (amp * innov);
        }
      }
    }
  }

  // Frequency response: H(s, sc, r, l) = sum_t g_t exp(-j 2 pi sc tau_t /
  // n_sc) with tau_t the tap's excess delay in sub-carrier-grid samples.
  // The phase table is shared across antennas and UEs.
  std::vector<cd> phase(static_cast<size_t>(n_taps_) * cfg_.n_sc);
  for (uint32_t t = 0; t < n_taps_; ++t) {
    const double tau = table[t].delay * cfg_.delay_spread;
    for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
      const double ang =
          -2.0 * M_PI * tau * static_cast<double>(sc) / cfg_.n_sc;
      phase[static_cast<size_t>(t) * cfg_.n_sc + sc] =
          cd{std::cos(ang), std::sin(ang)};
    }
  }
  freq_.assign(
      static_cast<size_t>(cfg_.n_symb) * cfg_.n_sc * cfg_.n_rx * cfg_.n_ue,
      cd{0, 0});
  for (uint32_t s = 0; s < cfg_.n_symb; ++s) {
    for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
      for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
        for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
          cd acc{0, 0};
          for (uint32_t t = 0; t < n_taps_; ++t) {
            acc += taps_[((static_cast<size_t>(s) * n_taps_ + t) * cfg_.n_rx +
                          r) *
                             cfg_.n_ue +
                         l] *
                   phase[static_cast<size_t>(t) * cfg_.n_sc + sc];
          }
          freq_[((static_cast<size_t>(s) * cfg_.n_sc + sc) * cfg_.n_rx + r) *
                    cfg_.n_ue +
                l] = acc;
        }
      }
    }
  }
}

cd Channel::tap_gain(uint32_t s, uint32_t t, uint32_t r, uint32_t l) const {
  PP_CHECK(cfg_.profile != Channel_profile::flat,
           "the flat profile has no taps");
  PP_CHECK(s < cfg_.n_symb && t < n_taps_ && r < cfg_.n_rx && l < cfg_.n_ue,
           "tap index out of range");
  return taps_[((static_cast<size_t>(s) * n_taps_ + t) * cfg_.n_rx + r) *
                   cfg_.n_ue +
               l];
}

std::vector<cd> Channel::apply(const std::vector<std::vector<cd>>& x,
                               uint32_t s, common::Rng& noise_rng) const {
  PP_CHECK(x.size() == cfg_.n_ue, "need one grid per UE");
  std::vector<cd> y(static_cast<size_t>(cfg_.n_sc) * cfg_.n_rx, cd{0, 0});
  for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
    for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
      cd acc{0, 0};
      for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
        acc += h(s, sc, r, l) * x[l][sc];
      }
      acc += noise_rng.cnormal() * std::sqrt(cfg_.sigma2);
      y[static_cast<size_t>(sc) * cfg_.n_rx + r] = acc;
    }
  }
  return y;
}

std::vector<cd> dft_codebook(uint32_t n_rx, uint32_t n_beams) {
  std::vector<cd> b(static_cast<size_t>(n_rx) * n_beams);
  const double s = 1.0 / std::sqrt(static_cast<double>(n_rx));
  for (uint32_t r = 0; r < n_rx; ++r) {
    for (uint32_t q = 0; q < n_beams; ++q) {
      const double ang = -2.0 * M_PI * static_cast<double>(r) * q /
                         static_cast<double>(n_rx);
      b[static_cast<size_t>(r) * n_beams + q] = cd{std::cos(ang), std::sin(ang)} * s;
    }
  }
  return b;
}

}  // namespace pp::phy
