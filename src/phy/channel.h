// Uplink channel substrate: per-sub-carrier Rayleigh block fading between
// each UE and each receive antenna, AWGN at the antennas, and a DFT beam
// codebook.  This replaces the over-the-air data the paper's gNB would see
// (see DESIGN.md substitutions).
#ifndef PUSCHPOOL_PHY_CHANNEL_H
#define PUSCHPOOL_PHY_CHANNEL_H

#include <complex>
#include <vector>

#include "common/rng.h"
#include "phy/qam.h"

namespace pp::phy {

struct Channel_config {
  uint32_t n_sc = 256;     // sub-carriers
  uint32_t n_rx = 8;       // receive antennas
  uint32_t n_ue = 2;       // transmitting UEs
  uint32_t coherence = 16; // sub-carriers per fading block
  double gain = 1.0;       // per-path amplitude scale
  double sigma2 = 1e-4;    // AWGN variance per antenna
};

class Channel {
 public:
  Channel(const Channel_config& cfg, common::Rng& rng);

  // Frequency response antenna r <- UE l at sub-carrier sc.
  cd h(uint32_t sc, uint32_t r, uint32_t l) const {
    return h_[(static_cast<size_t>(sc / cfg_.coherence) * cfg_.n_rx + r) *
                  cfg_.n_ue +
              l];
  }

  // Apply the channel to one OFDM symbol: x[l][sc] (per-UE frequency grids)
  // -> y[sc][r] antenna grid with AWGN.
  std::vector<cd> apply(const std::vector<std::vector<cd>>& x,
                        common::Rng& noise_rng) const;

  const Channel_config& config() const { return cfg_; }

 private:
  Channel_config cfg_;
  std::vector<cd> h_;  // [block][r][l]
};

// Orthonormal DFT beamforming codebook: n_rx x n_beams, column b is the
// steering vector exp(-j 2 pi r b / n_rx) / sqrt(n_rx).
std::vector<cd> dft_codebook(uint32_t n_rx, uint32_t n_beams);

}  // namespace pp::phy

#endif  // PUSCHPOOL_PHY_CHANNEL_H
