// Uplink channel substrate: pluggable fading profiles between each UE and
// each receive antenna, AWGN at the antennas, and a DFT beam codebook.
// This replaces the over-the-air data the paper's gNB would see (see
// DESIGN.md substitutions).
//
// Profiles (channel_profile_names(), selectable per cell via --channel):
//   flat    per-sub-carrier Rayleigh block fading, constant over the slot -
//           the original model, drawn from the caller's RNG in the legacy
//           order so pre-profile scenarios stay bit-for-bit identical.
//   tdl-a   3GPP TR 38.901 TDL-A tapped-delay-line fading (23 taps, NLOS).
//   tdl-c   3GPP TR 38.901 TDL-C tapped-delay-line fading (24 taps, NLOS).
//
// TDL determinism contract (docs/DETERMINISM.md "Channel profiles & HARQ
// determinism"): UE l's tap realizations are drawn from a private stream
// seeded Rng::derive_seed(cfg.seed, kUeStream + l) - never from the shared
// scenario RNG - so they are independent of n_ue and of everything else the
// scenario draws.  Within a stream the draw order is symbol-major (initial
// taps, then one innovation block per symbol), so a channel over more
// symbols extends a shorter one exactly like Traffic_source extends a
// shorter trace: the common prefix is bit-identical.  Doppler evolution is
// a per-tap AR(1) (Gauss-Markov) recursion whose coefficient depends only
// on the UE index, never on the layer count.
#ifndef PUSCHPOOL_PHY_CHANNEL_H
#define PUSCHPOOL_PHY_CHANNEL_H

#include <complex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "phy/qam.h"

namespace pp::phy {

enum class Channel_profile : uint8_t { flat = 0, tdl_a, tdl_c };

// Registered profile names, in listing order (matching the enum).
std::vector<std::string> channel_profile_names();

// True if `name` is a registered channel profile.
bool is_channel_profile_name(const std::string& name);

// Name -> enum; aborts (PP_CHECK) on an unknown name - CLI layers validate
// first (bench_util.h channel_by_name) and exit 2 with the registered list.
Channel_profile channel_profile_from_name(const std::string& name);

// Enum -> registered name.
const char* channel_profile_name(Channel_profile profile);

// One TDL tap: excess delay in delay-spread units and linear power.  The
// registry tables are normalized so powers sum to 1, keeping the per-path
// receive power of every profile equal to the flat model's gain^2.
struct Tdl_tap {
  double delay = 0.0;
  double power = 1.0;
};

// The tap table of a TDL profile (aborts on `flat` - it has no taps).
const std::vector<Tdl_tap>& tdl_taps(Channel_profile profile);

struct Channel_config {
  uint32_t n_sc = 256;     // sub-carriers
  uint32_t n_rx = 8;       // receive antennas
  uint32_t n_ue = 2;       // transmitting UEs
  uint32_t coherence = 16; // sub-carriers per fading block (flat profile)
  double gain = 1.0;       // per-path amplitude scale
  double sigma2 = 1e-4;    // AWGN variance per antenna

  // ---- profile layer (defaults reproduce the pre-profile model) --------
  Channel_profile profile = Channel_profile::flat;
  uint32_t n_symb = 1;         // OFDM symbols the fading trace covers (TDL)
  double doppler_hz = 0.0;     // base Doppler; UE l evolves at (1 + l/2) x
  double delay_spread = 4.0;   // TDL delay spread in sub-carrier-grid samples
  double symbol_s = 1e-3 / 14; // OFDM symbol duration driving the AR(1) step
  uint64_t seed = 0;           // root of the per-UE TDL tap streams
};

class Channel {
 public:
  // `rng` feeds the flat profile's coefficient draw (the legacy order); TDL
  // profiles draw nothing from it - their realizations come from private
  // derive_seed(cfg.seed, kUeStream + l) streams.
  Channel(const Channel_config& cfg, common::Rng& rng);

  // Frequency response antenna r <- UE l at sub-carrier sc during OFDM
  // symbol s.  The flat profile is time-invariant (s is ignored); TDL
  // profiles evolve per symbol under the per-UE Doppler.
  cd h(uint32_t s, uint32_t sc, uint32_t r, uint32_t l) const {
    if (cfg_.profile == Channel_profile::flat) {
      return h_[(static_cast<size_t>(sc / cfg_.coherence) * cfg_.n_rx + r) *
                    cfg_.n_ue +
                l];
    }
    return freq_[((static_cast<size_t>(s) * cfg_.n_sc + sc) * cfg_.n_rx + r) *
                     cfg_.n_ue +
                 l];
  }

  // Apply the channel to OFDM symbol s: x[l][sc] (per-UE frequency grids)
  // -> y[sc][r] antenna grid with AWGN.
  std::vector<cd> apply(const std::vector<std::vector<cd>>& x, uint32_t s,
                        common::Rng& noise_rng) const;

  const Channel_config& config() const { return cfg_; }

  // ---- TDL introspection (tests pin the realizations) -------------------
  uint32_t n_taps() const { return n_taps_; }
  // Complex gain of tap t, antenna r <- UE l, at symbol s (TDL only).
  cd tap_gain(uint32_t s, uint32_t t, uint32_t r, uint32_t l) const;
  // AR(1) coefficient of UE l's Doppler recursion: exp(-2 pi f_d(l) T_sym)
  // with f_d(l) = doppler_hz * (1 + l / 2).
  static double doppler_rho(const Channel_config& cfg, uint32_t l);

  // Coefficients the flat profile draws from the caller's RNG - one
  // cnormal() each.  phy::tx_payload_bits replays this count to reproduce a
  // scenario's payload stream without building the channel.
  static size_t flat_coeff_count(const Channel_config& cfg) {
    const size_t blocks = (cfg.n_sc + cfg.coherence - 1) / cfg.coherence;
    return blocks * cfg.n_rx * cfg.n_ue;
  }

  // Per-UE TDL stream offset: UE l draws from
  // derive_seed(cfg.seed, kUeStream + l).
  static constexpr uint64_t kUeStream = uint64_t{1} << 52;

 private:
  Channel_config cfg_;
  std::vector<cd> h_;     // flat: [block][r][l]
  uint32_t n_taps_ = 0;   // TDL tap count
  std::vector<cd> taps_;  // TDL: [s][t][r][l]
  std::vector<cd> freq_;  // TDL: [s][sc][r][l]
};

// Orthonormal DFT beamforming codebook: n_rx x n_beams, column b is the
// steering vector exp(-j 2 pi r b / n_rx) / sqrt(n_rx).
std::vector<cd> dft_codebook(uint32_t n_rx, uint32_t n_beams);

}  // namespace pp::phy

#endif  // PUSCHPOOL_PHY_CHANNEL_H
