// 5G NR numerology and the paper's use-case constants (§II).
//
// 100 MHz bandwidth at 30 kHz sub-carrier spacing gives 3276 active
// sub-carriers (273 resource blocks of 12), processed with a 4096-point FFT;
// a slot is 14 OFDM symbols (0.5 ms at numerology 1), of which 2 carry
// block-type pilots; 64 receive antennas are combined into 32 beams; 1..16
// UEs share the band.
#ifndef PUSCHPOOL_PHY_NUMEROLOGY_H
#define PUSCHPOOL_PHY_NUMEROLOGY_H

#include <cstdint>

#include "common/check.h"

namespace pp::phy {

struct Numerology {
  uint32_t scs_khz = 30;        // sub-carrier spacing
  uint32_t bandwidth_mhz = 100;
  uint32_t n_symb = 14;         // OFDM symbols per slot
  uint32_t n_pilot_symb = 2;    // block-type pilot symbols

  // Active sub-carriers: 3GPP TS 38.101 max transmission bandwidth is
  // 273 RB for 100 MHz @ 30 kHz.
  uint32_t n_sc() const {
    PP_CHECK(scs_khz == 30 && bandwidth_mhz == 100,
             "only the paper's 100 MHz / 30 kHz use-case is tabulated");
    return 273 * 12;  // 3276
  }
  // FFT size: next power of two >= n_sc.
  uint32_t fft_size() const { return 4096; }
  uint32_t n_data_symb() const { return n_symb - n_pilot_symb; }
  // Slot duration at this numerology (mu=1 -> 0.5 ms).
  double slot_ms() const { return 0.5; }
};

// Antenna/beam/user dimensions of the evaluated gNB.
struct Array_config {
  uint32_t n_rx = 64;    // receive antennas (N_R)
  uint32_t n_beams = 32; // beams after beamforming (N_B)
  uint32_t n_ue = 4;     // UEs on the same frequency (N_L)
};

inline Numerology use_case_numerology() { return Numerology{}; }
inline Array_config use_case_array() { return Array_config{}; }

// Slot duration of 5G NR numerology mu (sub-carrier spacing 15 kHz * 2^mu):
// 1 ms / 2^mu.  This is the per-slot processing budget the paper's §II
// argument is about - a PUSCH slot missing it stalls the uplink - and the
// deadline the streaming scheduler (runtime/traffic.h) scores slots
// against.
inline double slot_budget_seconds(uint32_t mu) {
  PP_CHECK(mu <= 6, "5G NR defines numerologies mu = 0..6");
  return 1e-3 / static_cast<double>(1u << mu);
}

}  // namespace pp::phy

#endif  // PUSCHPOOL_PHY_NUMEROLOGY_H
