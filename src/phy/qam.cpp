#include "phy/qam.h"

#include <cmath>

#include "common/check.h"
#include "common/once_tables.h"

namespace pp::phy {

namespace {

// Per-axis Gray map for 2^b levels: bits -> level index.
uint32_t gray_to_level(uint32_t g) {
  uint32_t v = g;
  for (uint32_t shift = 1; shift < 16; shift <<= 1) v ^= v >> shift;
  return v;
}
uint32_t level_to_gray(uint32_t v) { return v ^ (v >> 1); }

// Amplitude normalization: E[|s|^2] = 1 for 2^b levels per axis.
double axis_scale(uint32_t levels) {
  // Levels at +-1, +-3, ... +-(levels-1): mean square per axis is
  // (levels^2 - 1) / 3; two axes double it.
  return 1.0 / std::sqrt(2.0 * (static_cast<double>(levels) * levels - 1) / 3.0);
}

}  // namespace

uint32_t qam_bits(Qam q) {
  switch (q) {
    case Qam::qpsk: return 2;
    case Qam::qam16: return 4;
    case Qam::qam64: return 6;
    case Qam::qam256: return 8;
  }
  PP_CHECK(false, "bad QAM order");
  return 0;
}

const std::vector<cd>& qam_table(Qam q) {
  static common::Once_tables<cd, 4> cache;
  const uint32_t bps = qam_bits(q);  // also rejects bad orders
  return cache.get(bps / 2 - 1, [q, bps] {
    const uint32_t half = bps / 2;
    const uint32_t levels = 1u << half;
    const double s = axis_scale(levels);
    std::vector<cd> t(static_cast<uint32_t>(q));
    for (uint32_t v = 0; v < t.size(); ++v) {
      const uint32_t gi = v >> half;
      const uint32_t gq = v & (levels - 1);
      const double vi = 2.0 * gray_to_level(gi) - (levels - 1);
      const double vq = 2.0 * gray_to_level(gq) - (levels - 1);
      t[v] = cd{vi * s, vq * s};
    }
    return t;
  });
}

std::vector<cd> qam_modulate(Qam q, const std::vector<uint8_t>& bits) {
  const uint32_t bps = qam_bits(q);
  PP_CHECK(bits.size() % bps == 0, "bit count not a multiple of bits/symbol");
  const auto& table = qam_table(q);

  std::vector<cd> out(bits.size() / bps);
  for (size_t i = 0; i < out.size(); ++i) {
    uint32_t v = 0;
    for (uint32_t b = 0; b < bps; ++b) v = (v << 1) | bits[i * bps + b];
    out[i] = table[v];
  }
  return out;
}

void qam_demodulate_into(Qam q, const std::vector<cd>& symbols,
                         std::vector<uint8_t>& bits) {
  const uint32_t bps = qam_bits(q);
  const uint32_t half = bps / 2;
  const uint32_t levels = 1u << half;
  const double s = axis_scale(levels);

  bits.resize(symbols.size() * bps);
  for (size_t i = 0; i < symbols.size(); ++i) {
    auto slice = [&](double v) -> uint32_t {
      const double lvl = (v / s + (levels - 1)) / 2.0;
      const long r = std::lround(lvl);
      return static_cast<uint32_t>(std::min<long>(std::max<long>(r, 0), levels - 1));
    };
    const uint32_t gi = level_to_gray(slice(symbols[i].real()));
    const uint32_t gq = level_to_gray(slice(symbols[i].imag()));
    for (uint32_t b = 0; b < half; ++b) {
      bits[i * bps + b] = (gi >> (half - 1 - b)) & 1;
    }
    for (uint32_t b = 0; b < half; ++b) {
      bits[i * bps + half + b] = (gq >> (half - 1 - b)) & 1;
    }
  }
}

std::vector<uint8_t> qam_demodulate(Qam q, const std::vector<cd>& symbols) {
  std::vector<uint8_t> bits;
  qam_demodulate_into(q, symbols, bits);
  return bits;
}

std::vector<cd> qam_constellation(Qam q) { return qam_table(q); }

}  // namespace pp::phy
