// Gray-coded square QAM modulation/demodulation (4/16/64/256-QAM),
// normalized to unit average symbol energy.
#ifndef PUSCHPOOL_PHY_QAM_H
#define PUSCHPOOL_PHY_QAM_H

#include <complex>
#include <cstdint>
#include <vector>

namespace pp::phy {

using cd = std::complex<double>;

enum class Qam : uint32_t { qpsk = 4, qam16 = 16, qam64 = 64, qam256 = 256 };

// Bits per symbol (log2 of the constellation order).
uint32_t qam_bits(Qam q);

// Map bits (MSB-first per symbol) to constellation points.
std::vector<cd> qam_modulate(Qam q, const std::vector<uint8_t>& bits);

// Hard-decision demodulation back to bits.
std::vector<uint8_t> qam_demodulate(Qam q, const std::vector<cd>& symbols);

// qam_demodulate() into a caller-owned vector, reusing its capacity
// (bits is sized to symbols.size() * bits-per-symbol and fully
// overwritten).  Bit-identical to the returning form.
void qam_demodulate_into(Qam q, const std::vector<cd>& symbols,
                         std::vector<uint8_t>& bits);

// The constellation itself (for tests / EVM references).
std::vector<cd> qam_constellation(Qam q);

// Cached constellation table for order q, indexed by the bits-per-symbol
// bit pattern (MSB-first, I bits then Q bits) — entry v is exactly the point
// qam_modulate maps that pattern to.  Built on first use under
// std::call_once and immutable afterwards, so concurrent sweep workers can
// modulate without racing on initialization.
const std::vector<cd>& qam_table(Qam q);

}  // namespace pp::phy

#endif  // PUSCHPOOL_PHY_QAM_H
