#include "phy/uplink.h"

#include <algorithm>
#include <cmath>

#include "baseline/reference.h"
#include "common/check.h"

namespace pp::phy {

Uplink_config degrade_to_layers(const Uplink_config& cfg, uint32_t n_ue) {
  PP_CHECK(n_ue >= 1, "a degraded slot still serves at least one UE layer");
  PP_CHECK(n_ue <= cfg.n_ue, "degrade only removes UE layers");
  Uplink_config out = cfg;
  out.n_ue = n_ue;
  // sigma2 = n_ue * (channel_gain * ue_power)^2 * 10^(-snr/10) in the sweep
  // derivation: rescale by the layer ratio so each surviving UE sees the
  // same SNR.  One multiply + one divide - deterministic IEEE doubles.
  out.sigma2 = cfg.sigma2 * static_cast<double>(n_ue) /
               static_cast<double>(cfg.n_ue);
  return out;
}

namespace {

Channel_config scenario_channel_config(const Uplink_config& cfg) {
  Channel_config c;
  c.n_sc = cfg.n_sc;
  c.n_rx = cfg.n_rx;
  c.n_ue = cfg.n_ue;
  c.coherence = cfg.coherence;
  c.gain = cfg.channel_gain;
  c.sigma2 = cfg.sigma2;
  c.profile = cfg.profile;
  c.n_symb = cfg.n_symb;
  c.doppler_hz = cfg.doppler_hz;
  c.delay_spread = cfg.delay_spread;
  c.symbol_s = cfg.symbol_s;
  // TDL tap streams re-realize per HARQ attempt directly through the seed;
  // the flat profile draws from a caller RNG instead, so its attempt > 0
  // rebuild happens in the scenario body (after burning the legacy draws).
  c.seed = cfg.harq_attempt > 0 ? common::Rng::derive_seed(
                                      cfg.seed, kHarqStream + cfg.harq_attempt)
                                : cfg.seed;
  return c;
}

}  // namespace

std::vector<std::vector<uint8_t>> tx_payload_bits(const Uplink_config& cfg) {
  PP_CHECK(cfg.n_symb > cfg.n_pilot_symb,
           "slot needs at least one data symbol after the pilots");
  common::Rng rng(cfg.seed);
  if (cfg.profile == Channel_profile::flat) {
    // The scenario constructs the flat channel from rng_ before drawing any
    // payload, one cnormal() per coefficient; replay the same count so the
    // bit draws land on the same stream positions.
    const size_t burn = Channel::flat_coeff_count(scenario_channel_config(cfg));
    for (size_t i = 0; i < burn; ++i) rng.cnormal();
  }
  const uint32_t bps = qam_bits(cfg.qam);
  const uint32_t n_data = cfg.n_symb - cfg.n_pilot_symb;
  std::vector<std::vector<uint8_t>> bits(cfg.n_ue);
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    bits[l].resize(static_cast<size_t>(n_data) * cfg.n_sc * bps);
    for (auto& b : bits[l]) b = rng.uniform() < 0.5 ? 0 : 1;
    // Burn the pilot draws (two uniforms per sub-carrier) so the next UE's
    // bits stay aligned with the scenario's interleaved draw order.
    for (uint32_t i = 0; i < 2 * cfg.n_sc; ++i) rng.uniform();
  }
  return bits;
}

Uplink_scenario::Uplink_scenario(const Uplink_config& cfg)
    : cfg_(cfg), rng_(cfg.seed),
      chan_(scenario_channel_config(cfg), rng_),
      codebook_(dft_codebook(cfg.n_rx, cfg.n_beams)) {
  PP_CHECK(cfg_.fft_size >= cfg_.n_sc, "FFT size must cover active carriers");
  PP_CHECK(cfg_.n_symb > cfg_.n_pilot_symb,
           "slot needs at least one data symbol after the pilots");
  const uint32_t bps = qam_bits(cfg_.qam);
  const uint32_t n_data = cfg_.n_symb - cfg_.n_pilot_symb;

  // Per-UE payloads and grids.
  bits_.resize(cfg_.n_ue);
  grids_.resize(cfg_.n_ue);
  pilots_.resize(cfg_.n_ue);
  for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
    bits_[l].resize(static_cast<size_t>(n_data) * cfg_.n_sc * bps);
    for (auto& b : bits_[l]) b = rng_.uniform() < 0.5 ? 0 : 1;
    const auto symbols = qam_modulate(cfg_.qam, bits_[l]);

    pilots_[l].resize(cfg_.n_sc);
    for (auto& p : pilots_[l]) {
      p = cd{rng_.uniform() < 0.5 ? 0.5 : -0.5, rng_.uniform() < 0.5 ? 0.5 : -0.5};
    }

    grids_[l].resize(cfg_.n_symb);
    uint32_t d = 0;
    for (uint32_t s = 0; s < cfg_.n_symb; ++s) {
      grids_[l][s].resize(cfg_.n_sc);
      if (is_pilot_symbol(s)) {
        grids_[l][s] = pilots_[l];
      } else {
        for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
          grids_[l][s][sc] = symbols[static_cast<size_t>(d) * cfg_.n_sc + sc] *
                             cfg_.ue_power;
        }
        ++d;
      }
    }
  }

  // HARQ attempt k > 0: the payload above came from the same rng_ positions
  // as attempt 0 (the flat channel burned its legacy draws in the init
  // list), so bits and pilots are identical; the channel and every noise
  // draw below re-realize from the attempt's derived stream instead.
  common::Rng harq_rng(
      common::Rng::derive_seed(cfg_.seed, kHarqStream + cfg_.harq_attempt));
  if (cfg_.harq_attempt > 0 && cfg_.profile == Channel_profile::flat) {
    chan_ = Channel(scenario_channel_config(cfg_), harq_rng);
  }
  common::Rng& noise_rng = cfg_.harq_attempt > 0 ? harq_rng : rng_;

  // Channel + OFDM modulation to time domain, per symbol and antenna.
  time_.resize(cfg_.n_symb);
  for (uint32_t s = 0; s < cfg_.n_symb; ++s) {
    std::vector<std::vector<cd>> x(cfg_.n_ue);
    for (uint32_t l = 0; l < cfg_.n_ue; ++l) x[l] = grids_[l][s];
    const auto y = chan_.apply(x, s, noise_rng);  // [sc][rx]
    time_[s].resize(cfg_.n_rx);
    for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
      std::vector<cd> bins(cfg_.fft_size, cd{0, 0});
      for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
        bins[sc] = y[static_cast<size_t>(sc) * cfg_.n_rx + r];
      }
      time_[s][r] = ref::ifft(bins);
      // Normalize so time samples keep Q15 headroom; the receiver's 1/N FFT
      // scaling plus this factor is undone in the beamforming stage.
      for (auto& v : time_[s][r]) v /= std::sqrt(static_cast<double>(cfg_.fft_size));
    }
  }

  // Ideal code-separated pilot observations in the beam domain.
  pilot_obs_.resize(cfg_.n_ue);
  const auto h_eff = beam_channel();
  for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
    pilot_obs_[l].resize(static_cast<size_t>(cfg_.n_sc) * cfg_.n_beams);
    for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
      for (uint32_t b = 0; b < cfg_.n_beams; ++b) {
        cd v = h_eff[(static_cast<size_t>(sc) * cfg_.n_beams + b) * cfg_.n_ue + l] *
               pilots_[l][sc];
        v += noise_rng.cnormal() *
             std::sqrt(cfg_.sigma2 / (2.0 * cfg_.n_ue));  // separated noise
        pilot_obs_[l][static_cast<size_t>(sc) * cfg_.n_beams + b] = v;
      }
    }
  }
}

std::vector<cd> Uplink_scenario::beam_channel(uint32_t s) const {
  std::vector<cd> h_eff(static_cast<size_t>(cfg_.n_sc) * cfg_.n_beams * cfg_.n_ue);
  for (uint32_t sc = 0; sc < cfg_.n_sc; ++sc) {
    for (uint32_t b = 0; b < cfg_.n_beams; ++b) {
      for (uint32_t l = 0; l < cfg_.n_ue; ++l) {
        cd acc{0, 0};
        for (uint32_t r = 0; r < cfg_.n_rx; ++r) {
          acc += codebook_[static_cast<size_t>(r) * cfg_.n_beams + b] *
                 chan_.h(s, sc, r, l);
        }
        h_eff[(static_cast<size_t>(sc) * cfg_.n_beams + b) * cfg_.n_ue + l] = acc;
      }
    }
  }
  return h_eff;
}

std::vector<cd> Uplink_scenario::beam_channel() const {
  // Flat: time-invariant - symbol 0 IS the channel, and the single-symbol
  // path keeps the pre-profile result bit-for-bit (no mean-of-identical
  // rounding).  TDL: the code-separated pilot observation measures the mean
  // of the fading over the pilot symbols, so that mean is the channel the
  // CHE should recover (and the one channel_mse scores against).
  if (cfg_.profile == Channel_profile::flat) return beam_channel(0);
  const uint32_t np = std::max(1u, cfg_.n_pilot_symb);
  std::vector<cd> acc = beam_channel(0);
  for (uint32_t s = 1; s < np; ++s) {
    const auto hs = beam_channel(s);
    for (size_t i = 0; i < acc.size(); ++i) acc[i] += hs[i];
  }
  for (auto& v : acc) v /= static_cast<double>(np);
  return acc;
}

const std::vector<cd>& Uplink_scenario::pilot_obs_beam(uint32_t l) const {
  return pilot_obs_[l];
}

void gather_subcarrier_rows(const std::vector<std::vector<cd>>& freq,
                            std::vector<cd>& ft, uint32_t n_rx,
                            size_t row_begin, size_t row_end) {
  for (size_t scx = row_begin; scx < row_end; ++scx) {
    for (uint32_t r = 0; r < n_rx; ++r) {
      ft[scx * n_rx + r] = freq[r][scx];
    }
  }
}

void che_rows(const Uplink_scenario& sc, std::vector<cd>& h_hat,
              uint64_t row_begin, uint64_t row_end) {
  const auto& cfg = sc.config();
  for (uint64_t i = row_begin; i < row_end; ++i) {
    const uint32_t l = static_cast<uint32_t>(i / cfg.n_sc);
    const uint32_t scx = static_cast<uint32_t>(i % cfg.n_sc);
    const cd p = sc.pilot(l)[scx];
    const std::vector<cd>& obs = sc.pilot_obs_beam(l);
    for (uint32_t b = 0; b < cfg.n_beams; ++b) {
      h_hat[(static_cast<size_t>(scx) * cfg.n_beams + b) * cfg.n_ue + l] =
          obs[static_cast<size_t>(scx) * cfg.n_beams + b] * std::conj(p) /
          std::norm(p);
    }
  }
}

void ne_terms(const Uplink_scenario& sc, const common::Ws_grid<cd>& beams,
              const std::vector<cd>& h_hat, std::vector<double>& terms,
              uint64_t item_begin, uint64_t item_end) {
  const auto& cfg = sc.config();
  for (uint64_t i = item_begin; i < item_end; ++i) {
    const uint32_t s = static_cast<uint32_t>(i / cfg.n_sc);
    const uint32_t scx = static_cast<uint32_t>(i % cfg.n_sc);
    for (uint32_t b = 0; b < cfg.n_beams; ++b) {
      cd yhat{0, 0};
      for (uint32_t l = 0; l < cfg.n_ue; ++l) {
        yhat +=
            h_hat[(static_cast<size_t>(scx) * cfg.n_beams + b) * cfg.n_ue + l] *
            sc.pilot(l)[scx];
      }
      terms[i * cfg.n_beams + b] = std::norm(
          beams.at(s, static_cast<size_t>(scx) * cfg.n_beams + b) - yhat);
    }
  }
}

void mimo_items(const Uplink_scenario& sc, const common::Ws_grid<cd>& beams,
                const std::vector<cd>& h_hat, double sigma2_hat,
                std::vector<std::vector<cd>>& symbols,
                std::vector<double>& evm_terms, Mimo_ws& ws,
                uint64_t item_begin, uint64_t item_end) {
  const auto& cfg = sc.config();
  common::ws_grow(ws.h, static_cast<size_t>(cfg.n_beams) * cfg.n_ue);
  common::ws_grow(ws.y, cfg.n_beams);
  common::ws_grow(ws.x, cfg.n_ue);
  for (uint64_t i = item_begin; i < item_end; ++i) {
    const uint32_t s = cfg.n_pilot_symb + static_cast<uint32_t>(i / cfg.n_sc);
    const uint32_t scx = static_cast<uint32_t>(i % cfg.n_sc);
    for (uint32_t b = 0; b < cfg.n_beams; ++b) {
      for (uint32_t l = 0; l < cfg.n_ue; ++l) {
        ws.h[static_cast<size_t>(b) * cfg.n_ue + l] =
            h_hat[(static_cast<size_t>(scx) * cfg.n_beams + b) * cfg.n_ue + l];
      }
    }
    for (uint32_t b = 0; b < cfg.n_beams; ++b) {
      ws.y[b] = beams.at(s, static_cast<size_t>(scx) * cfg.n_beams + b);
    }
    ref::lmmse_into(std::span<const ref::cd>{ws.h.data(),
                                             static_cast<size_t>(cfg.n_beams) *
                                                 cfg.n_ue},
                    std::span<const ref::cd>{ws.y.data(), cfg.n_beams},
                    cfg.n_beams, cfg.n_ue, sigma2_hat, ws.lmmse,
                    std::span<ref::cd>{ws.x.data(), cfg.n_ue});
    for (uint32_t l = 0; l < cfg.n_ue; ++l) {
      const cd eq = ws.x[l] / cfg.ue_power;  // undo tx power scaling
      symbols[l][i] = eq;
      const cd want = sc.tx_grid(l, s)[scx] / cfg.ue_power;
      evm_terms[i * cfg.n_ue + l] = std::norm(eq - want);
    }
  }
}

double mean_of_terms(const std::vector<double>& terms) {
  double acc = 0.0;
  for (const double t : terms) acc += t;
  return acc / static_cast<double>(terms.size());
}

double evm_from_terms(const std::vector<double>& evm_terms) {
  return std::sqrt(mean_of_terms(evm_terms));
}

double payload_ber(const Uplink_scenario& sc,
                   const std::vector<std::vector<uint8_t>>& bits) {
  uint64_t nerr = 0, nbits = 0;
  for (uint32_t l = 0; l < sc.config().n_ue; ++l) {
    const auto& want = sc.tx_bits(l);
    PP_CHECK(want.size() == bits[l].size(), "bit count mismatch");
    for (size_t i = 0; i < want.size(); ++i) {
      nerr += want[i] != bits[l][i];
      ++nbits;
    }
  }
  return static_cast<double>(nerr) / static_cast<double>(nbits);
}

void golden_front_into(const Uplink_scenario& sc, common::Ws_grid<cd>& beams,
                       Front_ws& ws) {
  const auto& cfg = sc.config();
  const double fft_comp = std::sqrt(static_cast<double>(cfg.fft_size));

  // 1) OFDM demodulation + 2) beamforming, per symbol: beam grid row s is
  // [sc * beam].  Every row is fully written by matmul_rows (which zeroes
  // its output rows before accumulating), so reuse is safe.
  beams.shape(cfg.n_symb, static_cast<size_t>(cfg.n_sc) * cfg.n_beams);
  if (ws.freq.size() < cfg.n_rx) ws.freq.resize(cfg.n_rx);
  common::ws_grow(ws.ft, static_cast<size_t>(cfg.n_sc) * cfg.n_rx);
  for (uint32_t s = 0; s < cfg.n_symb; ++s) {
    for (uint32_t r = 0; r < cfg.n_rx; ++r) {
      // fft() scales by 1/N and the transmitter normalized by 1/sqrt(N), so
      // one sqrt(N) factor restores the frequency-domain grid.
      ref::fft_into(sc.antenna_time(s, r), ws.freq[r]);
      for (auto& v : ws.freq[r]) v *= fft_comp;
    }
    gather_subcarrier_rows(ws.freq, ws.ft, cfg.n_rx, 0, cfg.n_sc);
    ref::matmul_rows(ws.ft, sc.codebook(), beams.row(s), cfg.n_sc, cfg.n_rx,
                     cfg.n_beams, 0, cfg.n_sc);
  }
}

void golden_back_into(const Uplink_scenario& sc,
                      const common::Ws_grid<cd>& beams, Back_ws& ws,
                      std::vector<std::vector<uint8_t>>& bits,
                      std::vector<std::vector<cd>>& symbols, double& evm,
                      double& ber, double& sigma2_hat) {
  const auto& cfg = sc.config();
  const uint32_t n_data = cfg.n_symb - cfg.n_pilot_symb;

  // 3) Channel estimation (block LS on code-separated pilot observations).
  common::ws_grow(ws.h_hat,
                  static_cast<size_t>(cfg.n_sc) * cfg.n_beams * cfg.n_ue);
  che_rows(sc, ws.h_hat, 0, static_cast<uint64_t>(cfg.n_ue) * cfg.n_sc);

  // 4) Noise estimation from the pilot symbols (terms summed in index
  // order, which is the (symbol, sub-carrier, beam) walk).
  common::ws_grow(ws.sig_terms, static_cast<uint64_t>(cfg.n_pilot_symb) *
                                    cfg.n_sc * cfg.n_beams);
  ne_terms(sc, beams, ws.h_hat, ws.sig_terms, 0,
           static_cast<uint64_t>(cfg.n_pilot_symb) * cfg.n_sc);
  sigma2_hat = mean_of_terms(ws.sig_terms);

  // 5) MIMO LMMSE per sub-carrier and data symbol (Cholesky + solves); EVM
  // terms summed in index order = the (symbol, sub-carrier, UE) walk.
  // Result storage is sized exactly (consumers read .size()); inner
  // capacity survives across slots of stable shape.
  const uint64_t n_items = static_cast<uint64_t>(n_data) * cfg.n_sc;
  symbols.resize(cfg.n_ue);
  for (auto& s : symbols) common::ws_grow(s, n_items);
  bits.resize(cfg.n_ue);
  common::ws_grow(ws.evm_terms, n_items * cfg.n_ue);
  mimo_items(sc, beams, ws.h_hat, sigma2_hat, symbols, ws.evm_terms, ws.mimo,
             0, n_items);
  evm = evm_from_terms(ws.evm_terms);

  // 6) Demodulate and count bit errors.  tx bits are ordered
  // [data_symbol][sc]; symbols are indexed in the same order, so the direct
  // compare inside payload_ber is valid.
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    qam_demodulate_into(cfg.qam, symbols[l], bits[l]);
  }
  ber = payload_ber(sc, bits);
}

double golden_channel_mse(const Uplink_scenario& sc,
                          const std::vector<cd>& h_hat) {
  const auto h_true = sc.beam_channel();
  PP_CHECK(h_hat.size() == h_true.size(), "channel estimate shape mismatch");
  double ch_err = 0.0;
  for (size_t i = 0; i < h_hat.size(); ++i) {
    ch_err += std::norm(h_hat[i] - h_true[i]);
  }
  return ch_err / static_cast<double>(h_hat.size());
}

std::vector<std::vector<cd>> golden_front(const Uplink_scenario& sc) {
  common::Ws_grid<cd> beams;
  Front_ws ws;
  golden_front_into(sc, beams, ws);
  std::vector<std::vector<cd>> out(beams.rows());
  for (size_t s = 0; s < beams.rows(); ++s) {
    const auto row = beams.row(s);
    out[s].assign(row.begin(), row.end());
  }
  return out;
}

Receiver_result golden_back(const Uplink_scenario& sc,
                            const std::vector<std::vector<cd>>& beams) {
  const auto& cfg = sc.config();
  common::Ws_grid<cd> grid(beams.size(),
                           static_cast<size_t>(cfg.n_sc) * cfg.n_beams);
  for (size_t s = 0; s < beams.size(); ++s) {
    PP_CHECK(beams[s].size() == grid.cols(), "beam grid shape mismatch");
    std::copy(beams[s].begin(), beams[s].end(), grid.row(s).begin());
  }
  Back_ws ws;
  Receiver_result res;
  golden_back_into(sc, grid, ws, res.bits, res.symbols, res.evm, res.ber,
                   res.sigma2_hat);
  res.channel_mse = golden_channel_mse(sc, ws.h_hat);
  return res;
}

Receiver_result golden_receive(const Uplink_scenario& sc) {
  return golden_back(sc, golden_front(sc));
}

double evm_rms(const std::vector<cd>& want, const std::vector<cd>& got) {
  PP_CHECK(want.size() == got.size(), "evm size mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < want.size(); ++i) acc += std::norm(want[i] - got[i]);
  return std::sqrt(acc / static_cast<double>(want.size()));
}

double bit_error_rate(const std::vector<uint8_t>& want,
                      const std::vector<uint8_t>& got) {
  PP_CHECK(want.size() == got.size(), "ber size mismatch");
  if (want.empty()) return 0.0;
  uint64_t nerr = 0;
  for (size_t i = 0; i < want.size(); ++i) nerr += want[i] != got[i];
  return static_cast<double>(nerr) / static_cast<double>(want.size());
}

}  // namespace pp::phy
