// Uplink scenario generator and golden receiver.
//
// Uplink_scenario builds everything the gNB lower PHY consumes: UE bits,
// QAM data grids, QPSK pilots (amplitude 0.5 per component, matching the
// CHE kernel's folded divide), the Rayleigh channel, and the time-domain
// antenna signals whose FFT the receiver computes.  Golden_receiver runs the
// whole PUSCH lower PHY in double precision (FFT -> beamforming -> CHE ->
// NE -> LMMSE MIMO -> demodulation) and is the reference against which the
// simulated fixed-point chain is validated.
#ifndef PUSCHPOOL_PHY_UPLINK_H
#define PUSCHPOOL_PHY_UPLINK_H

#include <vector>

#include "baseline/reference.h"
#include "common/grid.h"
#include "common/rng.h"
#include "phy/channel.h"
#include "phy/qam.h"

namespace pp::phy {

struct Uplink_config {
  uint32_t n_sc = 256;
  uint32_t fft_size = 256;  // power of two, >= n_sc
  uint32_t n_rx = 8;
  uint32_t n_beams = 8;
  uint32_t n_ue = 2;
  uint32_t n_symb = 6;
  uint32_t n_pilot_symb = 2;  // leading symbols carry pilots
  Qam qam = Qam::qam16;
  double sigma2 = 1e-5;     // noise variance per antenna
  double ue_power = 0.05;   // per-symbol amplitude scale (Q15 headroom)
  double channel_gain = 0.25;
  uint32_t coherence = 16;
  uint64_t seed = 1;

  // ---- channel profile (defaults reproduce the pre-profile scenario) ----
  Channel_profile profile = Channel_profile::flat;
  double doppler_hz = 0.0;      // base Doppler; UE l evolves at (1 + l/2) x
  double delay_spread = 4.0;    // TDL delay spread, sub-carrier-grid samples
  double symbol_s = 1e-3 / 14;  // OFDM symbol duration (AR(1) Doppler step)

  // HARQ retransmission index.  Attempt k > 0 carries the SAME payload bits
  // and pilots as attempt 0 but re-realizes the channel and noise from the
  // derive_seed(seed, kHarqStream + k) stream - a fresh fade of the same
  // transport block, the soft-combining premise.
  uint32_t harq_attempt = 0;
};

// HARQ channel-stream offset: attempt k's channel/noise realization is
// rooted at Rng::derive_seed(cfg.seed, kHarqStream + k).  Far above both
// the slot-index streams and Traffic_source's kArrivalStream (2^48), and
// distinct from Channel::kUeStream (2^52), so the streams can never collide.
inline constexpr uint64_t kHarqStream = uint64_t{1} << 56;

// The payload bits one slot config transmits, per UE - a pure replay of the
// scenario's bit/pilot draw order without building the channel or grids.
// Identical for every harq_attempt of the same slot (the retransmission
// contract) and cheap enough for the scheduler's serial combining pass.
std::vector<std::vector<uint8_t>> tx_payload_bits(const Uplink_config& cfg);

// Overload degrade re-planning: the same slot with at most `n_ue` UE
// layers.  The admission controller (runtime/admission.h) calls this when a
// slot's predicted queue delay exceeds its numerology budget - serving
// fewer spatial layers shrinks every MIMO-stage dimension (Table I
// complexity is polynomial in N_L), trading per-slot throughput for meeting
// the deadline.  The surviving layers keep their SNR: sigma2 is the summed
// per-antenna power of the n_ue Rayleigh paths, so it scales linearly with
// the layer count.  Everything else - seed included - is unchanged, so the
// degraded slot is as deterministic as the original.
Uplink_config degrade_to_layers(const Uplink_config& cfg, uint32_t n_ue);

class Uplink_scenario {
 public:
  explicit Uplink_scenario(const Uplink_config& cfg);

  const Uplink_config& config() const { return cfg_; }
  const Channel& channel() const { return chan_; }
  const std::vector<cd>& codebook() const { return codebook_; }  // n_rx x n_beams

  bool is_pilot_symbol(uint32_t s) const { return s < cfg_.n_pilot_symb; }

  // Transmitted payload of UE l.
  const std::vector<uint8_t>& tx_bits(uint32_t l) const { return bits_[l]; }
  // Frequency-domain grid of UE l at symbol s (n_sc entries).
  const std::vector<cd>& tx_grid(uint32_t l, uint32_t s) const {
    return grids_[l][s];
  }
  // Pilot sequence of UE l (same on every pilot symbol).
  const std::vector<cd>& pilot(uint32_t l) const { return pilots_[l]; }

  // Time-domain samples at antenna r for symbol s (fft_size entries).
  const std::vector<cd>& antenna_time(uint32_t s, uint32_t r) const {
    return time_[s][r];
  }

  // Effective beam-domain channel during OFDM symbol s:
  // h_eff[sc][b][l] = sum_r B[r][b] h(s, sc, r, l).
  std::vector<cd> beam_channel(uint32_t s) const;

  // The beam-domain channel the CHE should estimate: the flat profile's
  // time-invariant response, or - for TDL profiles, where the channel moves
  // under Doppler - the mean over the pilot symbols, which is what the
  // code-separated pilot observations actually measure.  golden_back scores
  // channel_mse against this, so the metric is per-profile correct.
  std::vector<cd> beam_channel() const;

  // Ideal code-separated pilot observation of UE l in the beam domain,
  // [sc][b] (noise included, split evenly across UEs).  A reference into
  // the scenario's own storage - valid for the scenario's lifetime - so
  // the per-slot receive chain never copies it.
  const std::vector<cd>& pilot_obs_beam(uint32_t l) const;

 private:
  Uplink_config cfg_;
  common::Rng rng_;
  Channel chan_;
  std::vector<cd> codebook_;
  std::vector<std::vector<uint8_t>> bits_;            // [ue]
  std::vector<std::vector<std::vector<cd>>> grids_;   // [ue][symb][sc]
  std::vector<std::vector<cd>> pilots_;               // [ue][sc]
  std::vector<std::vector<std::vector<cd>>> time_;    // [symb][rx][t]
  std::vector<std::vector<cd>> pilot_obs_;            // [ue][sc*beams]
};

struct Receiver_result {
  std::vector<std::vector<uint8_t>> bits;  // [ue] recovered payloads
  std::vector<std::vector<cd>> symbols;    // [ue] equalized data symbols
  double evm = 0.0;                        // rms error vs tx constellation
  double ber = 0.0;                        // bit error rate
  double channel_mse = 0.0;                // CHE error vs true beam channel
  double sigma2_hat = 0.0;                 // NE output
};

// Full double-precision lower-PHY receive chain.
Receiver_result golden_receive(const Uplink_scenario& sc);

// ---- per-slot workspaces --------------------------------------------------
//
// Reusable scratch for the golden receiver's two halves.  Buffers grow
// geometrically (common::ws_grow) and then stabilize, so a worker that
// keeps one workspace alive across slots reaches a zero-allocation steady
// state; every buffer is fully overwritten each slot before it is read
// back (the non-interference rule, docs/DETERMINISM.md §10).

// LMMSE MIMO scratch: the per-item channel submatrix / observation /
// solution plus the solver's own intermediates.
struct Mimo_ws {
  std::vector<cd> h;  // n_beams x n_ue channel slice
  std::vector<cd> y;  // n_beams observation
  std::vector<cd> x;  // n_ue LMMSE solution
  ref::Lmmse_ws lmmse;

  size_t footprint_bytes() const {
    return (h.capacity() + y.capacity() + x.capacity()) * sizeof(cd) +
           lmmse.footprint_bytes();
  }
};

// Front-half scratch: per-antenna frequency grids (grow-only nested rows -
// ref::fft_into needs real vectors) and the transposed beamforming input.
struct Front_ws {
  std::vector<std::vector<cd>> freq;  // [rx][fft_size], grow-only outer
  std::vector<cd> ft;                 // n_sc x n_rx transpose gather

  size_t footprint_bytes() const {
    return common::ws_rows_footprint(freq) + ft.capacity() * sizeof(cd);
  }
};

// Back-half scratch: channel estimate, the NE/EVM term arrays and the
// MIMO solver workspace.
struct Back_ws {
  std::vector<cd> h_hat;
  std::vector<double> sig_terms;
  std::vector<double> evm_terms;
  Mimo_ws mimo;

  size_t footprint_bytes() const {
    return h_hat.capacity() * sizeof(cd) +
           (sig_terms.capacity() + evm_terms.capacity()) * sizeof(double) +
           mimo.footprint_bytes();
  }
};

// The receive chain split at the beam-grid boundary, for stage-pipelined
// execution (runtime/scheduler.h overlaps the front half of slot n+1 with
// the back half of slot n).  golden_receive() runs exactly
// golden_back_into(sc, golden_front_into(sc)), so the split is
// bit-identical to the fused chain by construction.
//
// Front half: per-symbol OFDM FFT + beamforming -> the beam grid, one row
// per OFDM symbol, row layout [sc * beam].  Scratch lives in ws; the grid
// is fully overwritten.
void golden_front_into(const Uplink_scenario& sc, common::Ws_grid<cd>& beams,
                       Front_ws& ws);

// Back half: CHE, NE, LMMSE MIMO and demodulation on precomputed beam
// grids, writing straight into caller-owned result storage (capacity
// reused across slots).  Deliberately does NOT score channel_mse - the
// backends discard it; use golden_channel_mse when the metric is wanted.
void golden_back_into(const Uplink_scenario& sc,
                      const common::Ws_grid<cd>& beams, Back_ws& ws,
                      std::vector<std::vector<uint8_t>>& bits,
                      std::vector<std::vector<cd>>& symbols, double& evm,
                      double& ber, double& sigma2_hat);

// CHE quality vs. the true beam channel, from the estimate golden_back_into
// left in ws.h_hat (the channel_mse golden_receive reports).
double golden_channel_mse(const Uplink_scenario& sc,
                          const std::vector<cd>& h_hat);

// Returning conveniences wrapping the _into forms (tests / one-shot use).
std::vector<std::vector<cd>> golden_front(const Uplink_scenario& sc);
Receiver_result golden_back(const Uplink_scenario& sc,
                            const std::vector<std::vector<cd>>& beams);

// ---- golden-receiver tiled sub-steps --------------------------------------
//
// golden_receive() is built from these range-parameterized pieces: the
// full-range call is the serial receiver, and runtime::Parallel_backend
// runs the same functions on worker tiles, so the two paths share one
// implementation and cannot drift (the same contract as the ref:: tiled
// sub-kernels - disjoint output ranges, arithmetic independent of the
// partition).  Callers pre-size every output; reductions over the filled
// term arrays must walk them in index order to stay bit-identical to the
// serial receiver.

// Transpose gather feeding the beamforming MMM: rows [row_begin, row_end)
// of the (n_sc x n_rx) matrix ft, ft[scx*n_rx + r] = freq[r][scx].  Pair
// with ref::matmul_rows(ft, codebook, beams, ...) over the same rows.
void gather_subcarrier_rows(const std::vector<std::vector<cd>>& freq,
                            std::vector<cd>& ft, uint32_t n_rx,
                            size_t row_begin, size_t row_end);

// Channel estimation: block-LS rows (flattened (UE, sub-carrier) pairs,
// l = row / n_sc) in [row_begin, row_end) of
// h_hat[(scx*n_beams + b)*n_ue + l], from sc.pilot_obs_beam(l).
void che_rows(const Uplink_scenario& sc, std::vector<cd>& h_hat,
              uint64_t row_begin, uint64_t row_end);

// Noise estimation: pilot-cell residual terms for flattened (pilot symbol,
// sub-carrier) items in [item_begin, item_end):
// terms[item*n_beams + b] = |beams(s, scx*n_beams+b) - sum_l h_hat*pilot_l|^2.
// The noise estimate is the mean of `terms` summed in index order.
void ne_terms(const Uplink_scenario& sc, const common::Ws_grid<cd>& beams,
              const std::vector<cd>& h_hat, std::vector<double>& terms,
              uint64_t item_begin, uint64_t item_end);

// LMMSE MIMO: per-UE-batch Gram + Cholesky + substitutions
// (ref::lmmse_into on the caller's Mimo_ws) for flattened (data symbol,
// sub-carrier) items in [item_begin, item_end); writes equalized
// symbols[l][item] and evm_terms[item*n_ue + l].  The EVM is sqrt(mean) of
// `evm_terms` summed in index order.  Each parallel tile passes its own
// Mimo_ws (workers must not share one).
void mimo_items(const Uplink_scenario& sc, const common::Ws_grid<cd>& beams,
                const std::vector<cd>& h_hat, double sigma2_hat,
                std::vector<std::vector<cd>>& symbols,
                std::vector<double>& evm_terms, Mimo_ws& ws,
                uint64_t item_begin, uint64_t item_end);

// The serial reductions over the filled term arrays, shared by both paths
// so the epilogues cannot drift either: index-order mean (the noise
// estimate over ne_terms output), EVM = sqrt of that mean (over mimo_items
// output), and the bit-error rate of recovered payloads vs. the
// transmitted bits (bits[l] must match tx_bits(l) in size).
double mean_of_terms(const std::vector<double>& terms);
double evm_from_terms(const std::vector<double>& evm_terms);
double payload_ber(const Uplink_scenario& sc,
                   const std::vector<std::vector<uint8_t>>& bits);

// EVM/BER helpers shared with the simulated chain.
double evm_rms(const std::vector<cd>& want, const std::vector<cd>& got);
double bit_error_rate(const std::vector<uint8_t>& want,
                      const std::vector<uint8_t>& got);

}  // namespace pp::phy

#endif  // PUSCHPOOL_PHY_UPLINK_H
