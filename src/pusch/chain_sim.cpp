#include "pusch/chain_sim.h"

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/che_ne.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/gram.h"
#include "kernels/mmm.h"
#include "sim/machine.h"

namespace pp::pusch {

using common::cq15;
using common::Rng;

namespace {

std::vector<cq15> random_signal(size_t n, Rng& rng, double amp = 0.2) {
  std::vector<cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp);
  return x;
}

std::vector<cq15> random_spd4(Rng& rng) {
  std::vector<ref::cd> a(8 * 4);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 8, 4);
  for (int i = 0; i < 4; ++i) g[i * 4 + i] += 0.05;
  std::vector<cq15> q(16);
  for (int i = 0; i < 16; ++i) q[i] = common::to_cq15(g[i]);
  return q;
}

}  // namespace

Chain_result run_use_case(const Chain_config& cfg) {
  Chain_result out;
  Rng rng(2023);
  const uint32_t n_cores = cfg.cluster.n_cores();
  const uint32_t fft_n = cfg.dims.fft_size;
  const uint32_t gang = fft_n / 16;  // cores per FFT

  // ---- FFT: n_rx transforms per symbol --------------------------------
  {
    const uint32_t n_inst = std::max(1u, n_cores / gang);
    const uint32_t reps = std::min(16u, cfg.dims.n_rx / n_inst);
    const uint32_t per_run = n_inst * reps;
    const uint32_t runs_per_symbol =
        (cfg.dims.n_rx + per_run - 1) / per_run;

    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Fft_parallel fft(m, alloc, fft_n, n_inst, reps);
    for (uint32_t i = 0; i < n_inst; ++i) {
      fft.set_input(i, 0, random_signal(fft_n, rng));
    }
    Chain_stage st;
    st.name = "OFDM FFT " + std::to_string(per_run) + "x" +
              std::to_string(fft_n) + "pt";
    st.rep = fft.run();
    st.times = runs_per_symbol * cfg.dims.n_symb;
    out.stages.push_back(std::move(st));
  }

  // ---- Beamforming MMM: (n_sc x n_rx) x (n_rx x n_beams) per symbol ---
  {
    // MemPool's 1 MiB L1 cannot hold the full 4096x64 grid at once; process
    // row slices (the real system streams symbol data through L1 anyway).
    const uint64_t words_needed = static_cast<uint64_t>(fft_n) * cfg.dims.n_rx +
                                  static_cast<uint64_t>(cfg.dims.n_rx) * cfg.dims.n_beams +
                                  static_cast<uint64_t>(fft_n) * cfg.dims.n_beams;
    uint32_t slices = 1;
    while (words_needed / slices > cfg.cluster.l1_words() * 3 / 4) slices *= 2;
    const uint32_t m_rows = fft_n / slices;

    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Mmm mmm(m, alloc,
                     kernels::Mmm_dims{m_rows, cfg.dims.n_rx, cfg.dims.n_beams});
    mmm.set_a(random_signal(static_cast<size_t>(m_rows) * cfg.dims.n_rx, rng));
    mmm.set_b(random_signal(static_cast<size_t>(cfg.dims.n_rx) * cfg.dims.n_beams, rng));
    Chain_stage st;
    st.name = "BF MMM " + std::to_string(m_rows) + "x" +
              std::to_string(cfg.dims.n_rx) + "x" + std::to_string(cfg.dims.n_beams);
    st.rep = mmm.run_parallel();
    st.times = slices * cfg.dims.n_symb;
    out.stages.push_back(std::move(st));
  }

  // ---- MIMO Cholesky: n_sc 4x4 decompositions per data symbol ---------
  {
    const uint32_t decs_per_symbol = fft_n;
    uint32_t per_core = decs_per_symbol / n_cores;
    uint32_t times = cfg.dims.n_data_symb();
    if (cfg.batch_cholesky) {
      // Batch up to 4 data symbols between barriers, L1 permitting
      // (each 4x4 G+L pair costs 8 rows per matrix per core).
      const uint32_t max_per_core = cfg.cluster.bank_words / 8 / 2;
      uint32_t batch = std::min(4u, max_per_core / std::max(per_core, 1u));
      batch = std::max(batch, 1u);
      per_core *= batch;
      times = (cfg.dims.n_data_symb() + batch - 1) / batch;
    }
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Chol_batch chol(m, alloc, cfg.dims.n_ue, per_core, n_cores);
    for (uint32_t c = 0; c < n_cores; ++c) {
      const auto g = random_spd4(rng);
      for (uint32_t i = 0; i < per_core; ++i) chol.set_g(c, i, g);
    }
    Chain_stage st;
    st.name = "MIMO Chol " + std::to_string(per_core) + "x" +
              std::to_string(n_cores) + " 4x4";
    st.rep = chol.run();
    st.times = times;
    out.stages.push_back(std::move(st));
  }

  // ---- optional extension rows ----------------------------------------
  if (cfg.include_estimation) {
    const uint32_t slice_sc = 512;
    const uint32_t slices = fft_n / slice_sc;
    {
      sim::Machine m(cfg.cluster);
      arch::L1_alloc alloc(m.config());
      kernels::Che che(m, alloc, slice_sc, cfg.dims.n_beams, cfg.dims.n_ue,
                       n_cores);
      for (uint32_t l = 0; l < cfg.dims.n_ue; ++l) {
        che.set_pilot(l, random_signal(slice_sc, rng, 0.5));
        che.set_y_sep(l, random_signal(static_cast<size_t>(slice_sc) *
                                           cfg.dims.n_beams, rng));
      }
      Chain_stage st;
      st.name = "CHE (ext)";
      st.rep = che.run();
      st.times = cfg.dims.n_pilot_symb * slices;
      out.stages.push_back(std::move(st));
    }
    {
      sim::Machine m(cfg.cluster);
      arch::L1_alloc alloc(m.config());
      kernels::Ne ne(m, alloc, slice_sc, cfg.dims.n_beams, cfg.dims.n_ue,
                     n_cores);
      for (uint32_t l = 0; l < cfg.dims.n_ue; ++l) {
        ne.set_pilot(l, random_signal(slice_sc, rng, 0.5));
      }
      ne.set_y(random_signal(static_cast<size_t>(slice_sc) * cfg.dims.n_beams, rng));
      ne.set_h(random_signal(static_cast<size_t>(slice_sc) * cfg.dims.n_beams *
                                 cfg.dims.n_ue, rng, 0.1));
      Chain_stage st;
      st.name = "NE (ext)";
      st.rep = ne.run();
      st.times = cfg.dims.n_pilot_symb * slices;
      out.stages.push_back(std::move(st));
    }
    {
      // The Gramian slice is widened to the L1 budget so every core gets
      // work and the join barrier amortizes over more sub-carriers.
      const uint32_t gram_sc =
          cfg.cluster.l1_words() >= (1u << 20) ? 2048 : 512;
      sim::Machine m(cfg.cluster);
      arch::L1_alloc alloc(m.config());
      kernels::Gram_batch gram(m, alloc, gram_sc, cfg.dims.n_beams,
                               cfg.dims.n_ue, n_cores);
      gram.set_h(random_signal(static_cast<size_t>(gram_sc) *
                                   cfg.dims.n_beams * cfg.dims.n_ue, rng, 0.15));
      gram.set_y(random_signal(static_cast<size_t>(gram_sc) *
                                   cfg.dims.n_beams, rng, 0.1));
      gram.set_sigma2(common::to_q15(0.01));
      Chain_stage st;
      st.name = "MIMO gramian (ext)";
      st.rep = gram.run();
      st.times = cfg.dims.n_data_symb() * (fft_n / gram_sc);
      out.stages.push_back(std::move(st));
    }
    {
      sim::Machine m(cfg.cluster);
      arch::L1_alloc alloc(m.config());
      const uint32_t per_core = fft_n / n_cores;
      kernels::Trisolve_batch ts(m, alloc, cfg.dims.n_ue, per_core, n_cores);
      std::vector<cq15> l4(16, cq15{});
      for (int i = 0; i < 4; ++i) l4[i * 4 + i] = cq15{common::to_q15(0.5), 0};
      for (uint32_t c = 0; c < n_cores; ++c) {
        for (uint32_t i = 0; i < per_core; ++i) {
          ts.set_system(c, i, l4, random_signal(4, rng, 0.1));
        }
      }
      Chain_stage st;
      st.name = "MIMO solves (ext)";
      st.rep = ts.run();
      st.times = cfg.dims.n_data_symb();
      out.stages.push_back(std::move(st));
    }
  }

  // Parallel total over the paper's three-kernel set.
  for (size_t i = 0; i < 3; ++i) {
    out.parallel_cycles += out.stages[i].total_cycles();
  }

  // ---- serial baseline: same work on one core --------------------------
  {
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Fft_serial fft(m, alloc, fft_n, 1);
    fft.set_input(0, random_signal(fft_n, rng));
    out.serial_cycles +=
        fft.run().cycles * cfg.dims.n_rx * cfg.dims.n_symb;
  }
  {
    // Serial MMM on a row slice, scaled (strictly linear in rows).
    const uint32_t m_rows = 512;
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Mmm mmm(m, alloc,
                     kernels::Mmm_dims{m_rows, cfg.dims.n_rx, cfg.dims.n_beams});
    mmm.set_a(random_signal(static_cast<size_t>(m_rows) * cfg.dims.n_rx, rng));
    mmm.set_b(random_signal(static_cast<size_t>(cfg.dims.n_rx) * cfg.dims.n_beams, rng));
    out.serial_cycles += mmm.run_serial().cycles * (fft_n / m_rows) *
                         cfg.dims.n_symb;
  }
  {
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Chol_serial chol(m, alloc, cfg.dims.n_ue, 16);
    for (uint32_t i = 0; i < 16; ++i) chol.set_g(i, random_spd4(rng));
    out.serial_cycles +=
        chol.run().cycles * (fft_n / 16) * cfg.dims.n_data_symb();
  }
  return out;
}

}  // namespace pp::pusch
