// Use-case chain roll-up (paper §VI, Fig. 9c).
//
// Maps one 0.5 ms PUSCH slot of the paper's use case (64 antennas,
// 4096-point grid, 32 beams, 4 UEs, 14 symbols with 2 pilot symbols) onto
// the cluster by measuring each kernel configuration once on the simulator
// and scaling by its per-slot repetition count:
//
//   FFT   - 64 transforms x 14 symbols (n_inst concurrent gangs x reps)
//   MMM   - 4096 x 64 x 32 beamforming x 14 symbols
//   Chol  - 4096 4x4 decompositions x 12 data symbols, optionally batched
//           4 data symbols at a time (the paper's improved schedule)
//
// Optional extension rows measure CHE, NE and the triangular solves the
// paper's Fig. 9c omits.
#ifndef PUSCHPOOL_PUSCH_CHAIN_SIM_H
#define PUSCHPOOL_PUSCH_CHAIN_SIM_H

#include <string>
#include <vector>

#include "arch/topology.h"
#include "pusch/complexity.h"
#include "sim/stats.h"

namespace pp::pusch {

struct Chain_config {
  arch::Cluster_config cluster = arch::Cluster_config::terapool();
  Pusch_dims dims;
  bool batch_cholesky = true;    // schedule 4 data symbols per batch
  bool include_estimation = false;  // extension: CHE/NE/solve rows
};

struct Chain_stage {
  std::string name;
  sim::Kernel_report rep;  // one measured instance
  uint32_t times = 1;      // instances per slot
  uint64_t total_cycles() const { return rep.cycles * times; }
};

struct Chain_result {
  std::vector<Chain_stage> stages;
  uint64_t parallel_cycles = 0;  // sum over stages (paper's 3-kernel set)
  uint64_t serial_cycles = 0;    // same work on one core
  double speedup() const {
    return parallel_cycles
               ? static_cast<double>(serial_cycles) / parallel_cycles
               : 0.0;
  }
  double ms_at_1ghz() const { return parallel_cycles * 1e-6; }
};

// Runs the full use case on the given cluster configuration.
Chain_result run_use_case(const Chain_config& cfg);

}  // namespace pp::pusch

#endif  // PUSCHPOOL_PUSCH_CHAIN_SIM_H
