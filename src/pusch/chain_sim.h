// DEPRECATED shim: the analytic use-case roll-up moved to
// pusch/use_case_rollup.h (and is now a preset over runtime::Pipeline).
// This header existed alongside the confusingly-named sim_chain.h (the
// functional end-to-end chain, now pusch/uplink_chain.h); include the new
// headers directly.
#ifndef PUSCHPOOL_PUSCH_CHAIN_SIM_H
#define PUSCHPOOL_PUSCH_CHAIN_SIM_H

#include "pusch/use_case_rollup.h"

#endif  // PUSCHPOOL_PUSCH_CHAIN_SIM_H
