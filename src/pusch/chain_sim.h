// DEPRECATED shim: the analytic use-case roll-up moved to
// pusch/use_case_rollup.h (and is now a preset over runtime::Pipeline).
// This header existed alongside the confusingly-named sim_chain.h (the
// functional end-to-end chain, now pusch/uplink_chain.h); include the new
// headers directly.  Including this shim is a loud compile-time diagnostic,
// no longer a silent alias; it will be removed in a future PR.
#ifndef PUSCHPOOL_PUSCH_CHAIN_SIM_H
#define PUSCHPOOL_PUSCH_CHAIN_SIM_H

#warning "pusch/chain_sim.h is deprecated: include pusch/use_case_rollup.h instead"

#include "pusch/use_case_rollup.h"

#endif  // PUSCHPOOL_PUSCH_CHAIN_SIM_H
