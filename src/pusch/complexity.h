// PUSCH computational-complexity model (paper Table I and Fig. 3).
//
// Complex MACs per slot for each lower-PHY stage, as a function of the
// numerology and array dimensions.  The paper's Fig. 3 plots the per-stage
// share of the total for 1..16 UEs; bench_fig3_stage_share regenerates it.
#ifndef PUSCHPOOL_PUSCH_COMPLEXITY_H
#define PUSCHPOOL_PUSCH_COMPLEXITY_H

#include <cmath>
#include <cstdint>

namespace pp::pusch {

struct Pusch_dims {
  uint32_t n_sc = 3276;      // active sub-carriers
  uint32_t fft_size = 4096;  // OFDM FFT length
  uint32_t n_symb = 14;      // symbols per slot
  uint32_t n_pilot_symb = 2;
  uint32_t n_rx = 64;   // antennas (N_R)
  uint32_t n_beams = 32;  // beams (N_B)
  uint32_t n_ue = 4;    // UEs (N_L)

  uint32_t n_data_symb() const { return n_symb - n_pilot_symb; }
};

// Complex MACs per slot for each stage (Table I).
struct Stage_macs {
  double ofdm = 0;  // FFT:   Nsymb * NR * NSC * log2(NSC)
  double bf = 0;    // MMM:   Nsymb * NSC * NR * NB
  double mimo = 0;  // Chol + solves: Ndata * NSC * (NL^3/3 + 2 NL^2)
  double che = 0;   // eltwise div: Npilot * NSC * NB * NL
  double ne = 0;    // autocorr:    Npilot * NSC * 2 NB NL

  double total() const { return ofdm + bf + mimo + che + ne; }
};

inline Stage_macs pusch_macs(const Pusch_dims& d) {
  Stage_macs s;
  const double nsc = d.fft_size;  // the FFT runs over the full grid
  const double nl = d.n_ue;
  s.ofdm = double(d.n_symb) * d.n_rx * nsc * std::log2(nsc);
  s.bf = double(d.n_symb) * nsc * d.n_rx * d.n_beams;
  s.mimo = double(d.n_data_symb()) * nsc * (nl * nl * nl / 3.0 + 2.0 * nl * nl);
  s.che = double(d.n_pilot_symb) * nsc * d.n_beams * nl;
  s.ne = double(d.n_pilot_symb) * nsc * 2.0 * d.n_beams * nl;
  return s;
}

}  // namespace pp::pusch

#endif  // PUSCHPOOL_PUSCH_COMPLEXITY_H
