#include "pusch/sim_chain.h"

#include <cmath>

#include "baseline/reference.h"
#include "kernels/che_ne.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/gram.h"
#include "kernels/mmm.h"
#include "sim/machine.h"

namespace pp::pusch {

using common::cq15;
using phy::cd;

namespace {

// Block rescaling factors applied by the host marshalling between stages
// (power-of-two shifts, as block-floating-point DSP would do).
constexpr double s_time = 8.0;   // time samples into the FFT
constexpr double s_grid = 4.0;   // frequency grid into the MMM
constexpr double s_est = 4.0;    // beam grid into CHE/NE
constexpr double s_rhs = 4.0;    // matched-filter output into the solves

std::vector<cq15> quantize(const std::vector<cd>& x, double scale) {
  std::vector<cq15> q(x.size());
  for (size_t i = 0; i < x.size(); ++i) q[i] = common::to_cq15(x[i] * scale);
  return q;
}

std::vector<cd> dequantize(const std::vector<cq15>& q, double scale) {
  std::vector<cd> x(q.size());
  for (size_t i = 0; i < q.size(); ++i) x[i] = common::to_cd(q[i]) / scale;
  return x;
}

void accumulate(Sim_chain_result::Stage& st, const sim::Kernel_report& r) {
  st.cycles += r.cycles;
  st.instrs += r.instrs;
  ++st.runs;
}

}  // namespace

Sim_chain_result run_sim_uplink(const phy::Uplink_scenario& sc,
                                const arch::Cluster_config& cluster) {
  const auto& cfg = sc.config();
  PP_CHECK(cfg.n_sc == cfg.fft_size,
           "sim chain assumes all FFT bins are active sub-carriers");
  const uint32_t n = cfg.fft_size;
  const uint32_t gang = n / 16;
  const uint32_t n_cores = cluster.n_cores();
  const uint32_t fft_inst = std::min(cfg.n_rx, n_cores / gang);
  PP_CHECK(fft_inst >= 1, "cluster too small for this FFT size");

  sim::Machine m(cluster);
  arch::L1_alloc alloc(m.config());

  Sim_chain_result out;
  out.stages.resize(6);
  out.stages[0].name = "OFDM FFT";
  out.stages[1].name = "BF MMM";
  out.stages[2].name = "CHE";
  out.stages[3].name = "NE";
  out.stages[4].name = "MIMO gram";
  out.stages[5].name = "MIMO chol+solve";

  // Persistent kernel instances (buffers live in L1 across the slot).
  kernels::Fft_parallel fft(m, alloc, n, fft_inst, 1);
  kernels::Mmm mmm(m, alloc, kernels::Mmm_dims{n, cfg.n_rx, cfg.n_beams});
  kernels::Che che(m, alloc, n, cfg.n_beams, cfg.n_ue, n_cores);
  kernels::Ne ne(m, alloc, n, cfg.n_beams, cfg.n_ue, n_cores);
  const uint32_t per_core = n / n_cores > 0 ? n / n_cores : 1;
  kernels::Gram_batch gram(m, alloc, n, cfg.n_beams, cfg.n_ue, n_cores);
  kernels::Chol_batch chol(m, alloc, cfg.n_ue, per_core, n_cores);
  kernels::Trisolve_batch solve(m, alloc, cfg.n_ue, per_core, n_cores);

  // Quantized beamforming codebook (n_rx x n_beams), reused every symbol.
  std::vector<cq15> bq(sc.codebook().size());
  for (size_t i = 0; i < bq.size(); ++i) {
    bq[i] = common::to_cq15(sc.codebook()[i]);
  }

  // ---- per-symbol front end: FFT + beamforming ------------------------
  // beam grid per symbol, [sc][beam], in true (unscaled) units
  std::vector<std::vector<cd>> beams(cfg.n_symb);
  for (uint32_t s = 0; s < cfg.n_symb; ++s) {
    std::vector<std::vector<cd>> freq(cfg.n_rx);
    for (uint32_t r0 = 0; r0 < cfg.n_rx; r0 += fft_inst) {
      const uint32_t batch = std::min(fft_inst, cfg.n_rx - r0);
      for (uint32_t i = 0; i < batch; ++i) {
        fft.set_input(i, 0, quantize(sc.antenna_time(s, r0 + i), s_time));
      }
      accumulate(out.stages[0], fft.run());
      for (uint32_t i = 0; i < batch; ++i) {
        // The kernel computes FFT/N of the s_time-scaled samples and the
        // transmitter normalized time by 1/sqrt(N), so the grid comes back
        // scaled by s_time/sqrt(N).
        freq[r0 + i] = dequantize(
            fft.output(i, 0), s_time / std::sqrt(static_cast<double>(n)));
      }
    }

    // Beamforming on the simulated MMM: A = grid (n x n_rx) scaled.
    std::vector<cd> a(static_cast<size_t>(n) * cfg.n_rx);
    for (uint32_t scx = 0; scx < n; ++scx) {
      for (uint32_t r0 = 0; r0 < cfg.n_rx; ++r0) {
        a[static_cast<size_t>(scx) * cfg.n_rx + r0] = freq[r0][scx];
      }
    }
    mmm.set_a(quantize(a, s_grid));
    mmm.set_b(bq);
    accumulate(out.stages[1], mmm.run_parallel());
    beams[s] = dequantize(mmm.c(), s_grid);
  }

  // ---- channel + noise estimation on the pilot symbols ----------------
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    che.set_pilot(l, quantize(sc.pilot(l), 1.0));
    che.set_y_sep(l, quantize(sc.pilot_obs_beam(l), s_est));
  }
  accumulate(out.stages[2], che.run());
  const auto h_hat = dequantize(che.h(), s_est);  // [sc][b][l]

  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    ne.set_pilot(l, quantize(sc.pilot(l), 1.0));
  }
  ne.set_y(quantize(beams[0], s_est));
  ne.set_h(quantize(h_hat, s_est));
  accumulate(out.stages[3], ne.run());
  const double sigma2_hat = ne.sigma2() / (s_est * s_est);
  out.sigma2_hat = sigma2_hat;

  // ---- MIMO per data symbol: G = H^H H + sigma2 I, Cholesky, solves ----
  // Gramian and matched filter run on the simulated Gram_batch kernel; the
  // host only reshuffles its interleaved outputs into the Cholesky kernel's
  // folded per-core layout (a DMA job in a real deployment).
  gram.set_h(quantize(h_hat, 1.0));
  gram.set_sigma2(common::to_q15(sigma2_hat));
  out.bits.resize(cfg.n_ue);
  std::vector<std::vector<cd>> eq(cfg.n_ue);  // equalized symbols
  double evm_acc = 0.0;
  uint64_t evm_cnt = 0;

  for (uint32_t s = cfg.n_pilot_symb; s < cfg.n_symb; ++s) {
    gram.set_y(quantize(beams[s], s_rhs));
    accumulate(out.stages[4], gram.run());

    // Simulated Cholesky batch + triangular solves over all sub-carriers.
    for (uint32_t scx = 0; scx < n; ++scx) {
      chol.set_g(scx / per_core, scx % per_core, gram.g(scx));
    }
    accumulate(out.stages[5], chol.run());
    for (uint32_t scx = 0; scx < n; ++scx) {
      solve.set_system(scx / per_core, scx % per_core,
                       chol.l(scx / per_core, scx % per_core), gram.rhs(scx));
    }
    accumulate(out.stages[5], solve.run());

    for (uint32_t scx = 0; scx < n; ++scx) {
      const auto x =
          dequantize(solve.x(scx / per_core, scx % per_core), s_rhs);
      for (uint32_t l = 0; l < cfg.n_ue; ++l) {
        const cd sym = x[l] / cfg.ue_power;
        eq[l].push_back(sym);
        const cd want = sc.tx_grid(l, s)[scx] / cfg.ue_power;
        evm_acc += std::norm(sym - want);
        ++evm_cnt;
      }
    }
  }
  out.evm = std::sqrt(evm_acc / static_cast<double>(evm_cnt));

  uint64_t nerr = 0, nbits = 0;
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    out.bits[l] = phy::qam_demodulate(cfg.qam, eq[l]);
    const auto& want = sc.tx_bits(l);
    PP_CHECK(want.size() == out.bits[l].size(), "payload size mismatch");
    for (size_t i = 0; i < want.size(); ++i) {
      nerr += want[i] != out.bits[l][i];
      ++nbits;
    }
  }
  out.ber = static_cast<double>(nerr) / static_cast<double>(nbits);
  return out;
}

}  // namespace pp::pusch
