// DEPRECATED shim: the end-to-end functional chain moved to
// pusch/uplink_chain.h (and is now a preset over runtime::Pipeline run on
// the "sim" backend).  This header existed alongside the confusingly-named
// chain_sim.h (the analytic use-case roll-up, now pusch/use_case_rollup.h);
// include the new headers directly.
#ifndef PUSCHPOOL_PUSCH_SIM_CHAIN_H
#define PUSCHPOOL_PUSCH_SIM_CHAIN_H

#include "pusch/uplink_chain.h"

#endif  // PUSCHPOOL_PUSCH_SIM_CHAIN_H
