// DEPRECATED shim: the end-to-end functional chain moved to
// pusch/uplink_chain.h (and is now a preset over runtime::Pipeline run on
// the "sim" backend).  This header existed alongside the confusingly-named
// chain_sim.h (the analytic use-case roll-up, now pusch/use_case_rollup.h);
// include the new headers directly.  Including this shim is a loud
// compile-time diagnostic, no longer a silent alias; it will be removed in
// a future PR.
#ifndef PUSCHPOOL_PUSCH_SIM_CHAIN_H
#define PUSCHPOOL_PUSCH_SIM_CHAIN_H

#warning "pusch/sim_chain.h is deprecated: include pusch/uplink_chain.h instead"

#include "pusch/uplink_chain.h"

#endif  // PUSCHPOOL_PUSCH_SIM_CHAIN_H
