#include "pusch/uplink_chain.h"

#include "runtime/backend.h"
#include "runtime/presets.h"

namespace pp::pusch {

Sim_chain_result run_sim_uplink(const phy::Uplink_scenario& sc,
                                const arch::Cluster_config& cluster) {
  runtime::Sim_backend backend;
  return runtime::uplink_pipeline(cluster).execute(sc, backend);
}

}  // namespace pp::pusch
