// Analytic use-case roll-up (paper §VI, Fig. 9c).
//
// Maps one 0.5 ms PUSCH slot of the paper's use case (64 antennas,
// 4096-point grid, 32 beams, 4 UEs, 14 symbols with 2 pilot symbols) onto
// the cluster by measuring each kernel configuration once on the simulator
// and scaling by its per-slot repetition count:
//
//   FFT   - 64 transforms x 14 symbols (n_inst concurrent gangs x reps)
//   MMM   - 4096 x 64 x 32 beamforming x 14 symbols
//   Chol  - 4096 4x4 decompositions x 12 data symbols, optionally batched
//           4 data symbols at a time (the paper's improved schedule)
//
// Optional extension rows measure CHE, NE and the triangular solves the
// paper's Fig. 9c omits.
//
// Renamed from chain_sim.h; run_use_case is now a thin preset over
// runtime::Pipeline (see runtime/presets.h) - build the pipeline yourself
// via runtime::use_case_pipeline() to customize stages.
#ifndef PUSCHPOOL_PUSCH_USE_CASE_ROLLUP_H
#define PUSCHPOOL_PUSCH_USE_CASE_ROLLUP_H

#include "runtime/presets.h"

namespace pp::pusch {

using Chain_config = runtime::Use_case_options;
using Chain_stage = runtime::Rollup_stage;
using Chain_result = runtime::Rollup_result;

// Runs the full use case on the given cluster configuration.
inline Chain_result run_use_case(const Chain_config& cfg) {
  return runtime::run_use_case(cfg);
}

}  // namespace pp::pusch

#endif  // PUSCHPOOL_PUSCH_USE_CASE_ROLLUP_H
