// Adapters wrapping the concrete kernel classes behind the uniform
// runtime::Kernel lifecycle, plus their registration into the Registry.
//
// Kernel internals are untouched: an adapter only maps named (port, slot)
// pairs onto the concrete set_*/output accessors, resolves "0 = fill the
// cluster"-style parameter defaults against the machine's topology, and
// knows how to produce valid synthetic stimulus for its inputs (SPD
// matrices for Cholesky, pilots for CHE/NE, ...).
#include "runtime/registry.h"

#include "baseline/reference.h"
#include "kernels/che_ne.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/gram.h"
#include "kernels/mmm.h"

namespace pp::runtime {

namespace {

using common::cq15;
using common::Rng;

std::vector<cq15> random_signal(size_t n, Rng& rng, double amp = 0.2) {
  std::vector<cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp);
  return x;
}

// Random Hermitian positive-definite n x n matrix in Q1.15.
std::vector<cq15> random_spd(uint32_t n, Rng& rng) {
  std::vector<ref::cd> a(size_t{n} * 2 * n);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 2 * n, n);
  for (uint32_t i = 0; i < n; ++i) g[i * n + i] += 0.05;
  std::vector<cq15> q(g.size());
  for (size_t i = 0; i < g.size(); ++i) q[i] = common::to_cq15(g[i]);
  return q;
}

// Resolves a "cores" parameter: 0 means the whole cluster.
uint32_t resolve_cores(const sim::Machine& m, const Params& p) {
  const uint32_t c = p.getu("cores", 0);
  return c == 0 ? m.config().n_cores() : c;
}

Kernel_desc make_desc(std::string name, Params params) {
  Kernel_desc d;
  d.name = std::move(name);
  d.params = std::move(params);
  return d;
}

// ---------------------------------------------------------------- FFT ------

class Fft_serial_adapter final : public Kernel {
 public:
  Fft_serial_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("fft.serial", Params()
                                           .set("n", p.getu("n", 256))
                                           .set("reps", p.getu("reps", 1)))),
        n_(p.getu("n", 256)),
        reps_(p.getu("reps", 1)),
        core_(p.getu("core", 0)),
        fft_(m, alloc, n_, reps_) {
    desc_.cores = 1;
  }

  uint32_t slots(std::string_view port) const override {
    return port == "x" || port == "y" ? reps_ : 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port != "x") unknown_port(port);
    fft_.set_input(slot, data);
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t r = 0; r < reps_; ++r) {
      fft_.set_input(r, random_signal(n_, rng));
    }
  }
  sim::Kernel_report launch() override { return fft_.run(core_); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port != "y") unknown_port(port);
    return fft_.output(slot);
  }

 private:
  uint32_t n_, reps_, core_;
  kernels::Fft_serial fft_;
};

class Fft_parallel_adapter final : public Kernel {
 public:
  Fft_parallel_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("fft.parallel", {})),
        n_(p.getu("n", 256)),
        inst_(resolve_inst(m, p)),
        reps_(p.getu("reps", 1)),
        folded_(p.getb("folded", true)),
        fft_(m, alloc, n_, inst_, reps_, folded_) {
    desc_.params.set("n", n_).set("inst", inst_).set("reps", reps_);
    if (!folded_) desc_.params.set("folded", false);
    desc_.cores = fft_.cores_used();
  }

  uint32_t slots(std::string_view port) const override {
    return port == "x" || port == "y" ? inst_ * reps_ : 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port != "x") unknown_port(port);
    fft_.set_input(slot / reps_, slot % reps_, data);
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t i = 0; i < inst_; ++i) {
      for (uint32_t r = 0; r < reps_; ++r) {
        fft_.set_input(i, r, random_signal(n_, rng));
      }
    }
  }
  sim::Kernel_report launch() override { return fft_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port != "y") unknown_port(port);
    return fft_.output(slot / reps_, slot % reps_);
  }

 private:
  // Like chol.pair's `pairs`, an absent (or 0) `inst` fills the cluster.
  static uint32_t resolve_inst(const sim::Machine& m, const Params& p) {
    const uint32_t inst = p.getu("inst", 0);
    if (inst != 0) return inst;
    const uint32_t n = p.getu("n", 256);
    PP_CHECK(n >= 16, "fft.parallel needs n >= 16 to resolve inst=0");
    return std::max(1u, m.config().n_cores() / (n / 16));
  }

  uint32_t n_, inst_, reps_;
  bool folded_;
  kernels::Fft_parallel fft_;
};

// ---------------------------------------------------------------- MMM ------

class Mmm_adapter final : public Kernel {
 public:
  Mmm_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("mmm", {})),
        d_{p.getu("m", 256), p.getu("k", 64), p.getu("p", 32)},
        serial_(p.gets("mode", "parallel") == "serial"),
        cores_(p.getu("cores", 0)),
        core_(p.getu("core", 0)),
        mmm_(m, alloc, d_, p.getu("wr", 4), p.getu("wc", 4)) {
    desc_.params.set("m", d_.m).set("k", d_.k).set("p", d_.p);
    const uint32_t wr = p.getu("wr", 4), wc = p.getu("wc", 4);
    if (wr != 4 || wc != 4) desc_.params.set("wr", wr).set("wc", wc);
    if (serial_) desc_.params.set("mode", "serial");
    desc_.cores = serial_ ? 1 : (cores_ ? cores_ : m.config().n_cores());
    desc_.macs = mmm_.cmacs();
  }

  uint32_t slots(std::string_view port) const override {
    return port == "a" || port == "b" || port == "c" ? 1 : 0;
  }
  void bind(std::string_view port, uint32_t,
            std::span<const cq15> data) override {
    if (port == "a") {
      mmm_.set_a(data);
    } else if (port == "b") {
      mmm_.set_b(data);
    } else {
      unknown_port(port);
    }
  }
  void bind_default_inputs(Rng& rng) override {
    mmm_.set_a(random_signal(size_t{d_.m} * d_.k, rng));
    mmm_.set_b(random_signal(size_t{d_.k} * d_.p, rng));
  }
  sim::Kernel_report launch() override {
    return serial_ ? mmm_.run_serial(core_) : mmm_.run_parallel(cores_);
  }
  std::vector<cq15> fetch(std::string_view port, uint32_t) const override {
    if (port != "c") unknown_port(port);
    return mmm_.c();
  }

 private:
  kernels::Mmm_dims d_;
  bool serial_;
  uint32_t cores_, core_;
  kernels::Mmm mmm_;
};

// ----------------------------------------------------------- Cholesky ------

class Chol_batch_adapter final : public Kernel {
 public:
  Chol_batch_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("chol.batch", {})),
        n_(p.getu("n", 4)),
        per_core_(p.getu("per_core", 1)),
        cores_(resolve_cores(m, p)),
        chol_(m, alloc, n_, per_core_, cores_) {
    desc_.params.set("n", n_).set("per_core", per_core_).set("cores", cores_);
    desc_.cores = cores_;
  }

  uint32_t slots(std::string_view port) const override {
    return port == "g" || port == "l" ? per_core_ * cores_ : 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port != "g") unknown_port(port);
    chol_.set_g(slot / per_core_, slot % per_core_, data);
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t c = 0; c < cores_; ++c) {
      const auto g = random_spd(n_, rng);
      for (uint32_t i = 0; i < per_core_; ++i) chol_.set_g(c, i, g);
    }
  }
  sim::Kernel_report launch() override { return chol_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port != "l") unknown_port(port);
    return chol_.l(slot / per_core_, slot % per_core_);
  }

 private:
  uint32_t n_, per_core_, cores_;
  kernels::Chol_batch chol_;
};

class Chol_pair_adapter final : public Kernel {
 public:
  Chol_pair_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("chol.pair", {})),
        n_(p.getu("n", 32)),
        pairs_(resolve_pairs(m, p)),
        mirrored_(p.getb("mirrored", true)),
        chol_(m, alloc, n_, pairs_, mirrored_) {
    desc_.params.set("n", n_).set("pairs", pairs_);
    if (!mirrored_) desc_.params.set("mirrored", false);
    desc_.cores = chol_.cores_used();
  }

  uint32_t slots(std::string_view port) const override {
    return port == "g" || port == "l" ? 2 * pairs_ : 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port != "g") unknown_port(port);
    chol_.set_g(slot / 2, slot % 2, data);
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t s = 0; s < 2 * pairs_; ++s) {
      chol_.set_g(s / 2, s % 2, random_spd(n_, rng));
    }
  }
  sim::Kernel_report launch() override { return chol_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port != "l") unknown_port(port);
    return chol_.l(slot / 2, slot % 2);
  }

 private:
  static uint32_t resolve_pairs(const sim::Machine& m, const Params& p) {
    const uint32_t pairs = p.getu("pairs", 0);
    if (pairs != 0) return pairs;
    const uint32_t n = p.getu("n", 32);
    PP_CHECK(n >= 4, "chol.pair needs n >= 4 to resolve pairs=0");
    return std::max(1u, m.config().n_cores() / (n / 4));
  }

  uint32_t n_, pairs_;
  bool mirrored_;
  kernels::Chol_pair chol_;
};

class Chol_serial_adapter final : public Kernel {
 public:
  Chol_serial_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("chol.serial", Params()
                                            .set("n", p.getu("n", 4))
                                            .set("reps", p.getu("reps", 1)))),
        n_(p.getu("n", 4)),
        reps_(p.getu("reps", 1)),
        core_(p.getu("core", 0)),
        chol_(m, alloc, n_, reps_) {
    desc_.cores = 1;
  }

  uint32_t slots(std::string_view port) const override {
    return port == "g" || port == "l" ? reps_ : 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port != "g") unknown_port(port);
    chol_.set_g(slot, data);
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t r = 0; r < reps_; ++r) chol_.set_g(r, random_spd(n_, rng));
  }
  sim::Kernel_report launch() override { return chol_.run(core_); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port != "l") unknown_port(port);
    return chol_.l(slot);
  }

 private:
  uint32_t n_, reps_, core_;
  kernels::Chol_serial chol_;
};

class Trisolve_adapter final : public Kernel {
 public:
  Trisolve_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("trisolve.batch", {})),
        n_(p.getu("n", 4)),
        per_core_(p.getu("per_core", 1)),
        cores_(resolve_cores(m, p)),
        solve_(m, alloc, n_, per_core_, cores_) {
    desc_.params.set("n", n_).set("per_core", per_core_).set("cores", cores_);
    desc_.cores = cores_;
    staged_l_.resize(size_t{per_core_} * cores_);
    staged_y_.resize(size_t{per_core_} * cores_);
  }

  uint32_t slots(std::string_view port) const override {
    return port == "l" || port == "y" || port == "x" ? per_core_ * cores_ : 0;
  }
  // The concrete kernel stages (L, y) together; buffer each half until its
  // partner arrives.
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    auto& staged = port == "l"   ? staged_l_
                   : port == "y" ? staged_y_
                                 : (unknown_port(port), staged_l_);
    staged[slot].assign(data.begin(), data.end());
    if (!staged_l_[slot].empty() && !staged_y_[slot].empty()) {
      solve_.set_system(slot / per_core_, slot % per_core_, staged_l_[slot],
                        staged_y_[slot]);
      staged_l_[slot].clear();
      staged_y_[slot].clear();
    }
  }
  void bind_default_inputs(Rng& rng) override {
    // A well-conditioned lower-triangular L (0.5 on the diagonal).
    std::vector<cq15> l(size_t{n_} * n_, cq15{});
    for (uint32_t i = 0; i < n_; ++i) {
      l[size_t{i} * n_ + i] = cq15{common::to_q15(0.5), 0};
    }
    for (uint32_t c = 0; c < cores_; ++c) {
      for (uint32_t i = 0; i < per_core_; ++i) {
        solve_.set_system(c, i, l, random_signal(n_, rng, 0.1));
      }
    }
  }
  sim::Kernel_report launch() override { return solve_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port != "x") unknown_port(port);
    return solve_.x(slot / per_core_, slot % per_core_);
  }

 private:
  uint32_t n_, per_core_, cores_;
  kernels::Trisolve_batch solve_;
  std::vector<std::vector<cq15>> staged_l_, staged_y_;
};

// ------------------------------------------------------- Gram / CHE / NE ---

class Gram_adapter final : public Kernel {
 public:
  Gram_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("gram.batch", {})),
        sc_(p.getu("sc", 256)),
        b_(p.getu("b", 8)),
        l_(p.getu("l", 2)),
        cores_(resolve_cores(m, p)),
        gram_(m, alloc, sc_, b_, l_, cores_) {
    desc_.params.set("sc", sc_).set("b", b_).set("l", l_).set("cores", cores_);
    desc_.cores = cores_;
  }

  uint32_t slots(std::string_view port) const override {
    if (port == "h" || port == "y") return 1;
    if (port == "g" || port == "rhs") return sc_;
    return 0;
  }
  void bind(std::string_view port, uint32_t,
            std::span<const cq15> data) override {
    if (port == "h") {
      gram_.set_h(data);
    } else if (port == "y") {
      gram_.set_y(data);
    } else {
      unknown_port(port);
    }
  }
  void bind_scalar(std::string_view port, double value) override {
    if (port != "sigma2") unknown_port(port);
    gram_.set_sigma2(common::to_q15(value));
  }
  void bind_default_inputs(Rng& rng) override {
    gram_.set_h(random_signal(size_t{sc_} * b_ * l_, rng, 0.15));
    gram_.set_y(random_signal(size_t{sc_} * b_, rng, 0.1));
    gram_.set_sigma2(common::to_q15(0.01));
  }
  sim::Kernel_report launch() override { return gram_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t slot) const override {
    if (port == "g") return gram_.g(slot);
    if (port == "rhs") return gram_.rhs(slot);
    unknown_port(port);
  }

 private:
  uint32_t sc_, b_, l_, cores_;
  kernels::Gram_batch gram_;
};

class Che_adapter final : public Kernel {
 public:
  Che_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("che", {})),
        sc_(p.getu("sc", 256)),
        b_(p.getu("b", 8)),
        l_(p.getu("l", 2)),
        cores_(resolve_cores(m, p)),
        che_(m, alloc, sc_, b_, l_, cores_) {
    desc_.params.set("sc", sc_).set("b", b_).set("l", l_).set("cores", cores_);
    desc_.cores = cores_;
  }

  uint32_t slots(std::string_view port) const override {
    if (port == "y_sep" || port == "pilot") return l_;
    if (port == "h") return 1;
    return 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port == "y_sep") {
      che_.set_y_sep(slot, data);
    } else if (port == "pilot") {
      che_.set_pilot(slot, data);
    } else {
      unknown_port(port);
    }
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t l = 0; l < l_; ++l) {
      che_.set_pilot(l, random_signal(sc_, rng, 0.5));
      che_.set_y_sep(l, random_signal(size_t{sc_} * b_, rng));
    }
  }
  sim::Kernel_report launch() override { return che_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t) const override {
    if (port != "h") unknown_port(port);
    return che_.h();
  }

 private:
  uint32_t sc_, b_, l_, cores_;
  kernels::Che che_;
};

class Ne_adapter final : public Kernel {
 public:
  Ne_adapter(sim::Machine& m, arch::L1_alloc& alloc, const Params& p)
      : Kernel(make_desc("ne", {})),
        sc_(p.getu("sc", 256)),
        b_(p.getu("b", 8)),
        l_(p.getu("l", 2)),
        cores_(resolve_cores(m, p)),
        ne_(m, alloc, sc_, b_, l_, cores_) {
    desc_.params.set("sc", sc_).set("b", b_).set("l", l_).set("cores", cores_);
    desc_.cores = cores_;
  }

  uint32_t slots(std::string_view port) const override {
    if (port == "pilot") return l_;
    if (port == "y" || port == "h") return 1;
    return 0;
  }
  void bind(std::string_view port, uint32_t slot,
            std::span<const cq15> data) override {
    if (port == "y") {
      ne_.set_y(data);
    } else if (port == "h") {
      ne_.set_h(data);
    } else if (port == "pilot") {
      ne_.set_pilot(slot, data);
    } else {
      unknown_port(port);
    }
  }
  void bind_default_inputs(Rng& rng) override {
    for (uint32_t l = 0; l < l_; ++l) {
      ne_.set_pilot(l, random_signal(sc_, rng, 0.5));
    }
    ne_.set_y(random_signal(size_t{sc_} * b_, rng));
    ne_.set_h(random_signal(size_t{sc_} * b_ * l_, rng, 0.1));
  }
  sim::Kernel_report launch() override { return ne_.run(); }
  std::vector<cq15> fetch(std::string_view port, uint32_t) const override {
    unknown_port(port);
  }
  double fetch_scalar(std::string_view port) const override {
    if (port != "sigma2") return Kernel::fetch_scalar(port);
    return ne_.sigma2();
  }

 private:
  uint32_t sc_, b_, l_, cores_;
  kernels::Ne ne_;
};

template <typename A>
Kernel_factory factory() {
  return [](sim::Machine& m, arch::L1_alloc& alloc, const Params& p) {
    return std::unique_ptr<Kernel>(new A(m, alloc, p));
  };
}

}  // namespace

void register_builtin_kernels(Registry& r) {
  r.add("fft.serial", "single-core radix-4 FFT baseline (n, reps)",
        {"n", "reps", "core"}, factory<Fft_serial_adapter>());
  r.add("fft.parallel",
        "parallel folded-layout FFT, n/16 cores per gang (n, inst, reps, "
        "folded)",
        {"n", "inst", "reps", "folded"}, factory<Fft_parallel_adapter>());
  r.add("mmm",
        "windowed complex matrix-matrix multiply (m, k, p, wr, wc, mode, "
        "cores)",
        {"m", "k", "p", "wr", "wc", "mode", "cores", "core"},
        factory<Mmm_adapter>());
  r.add("chol.batch",
        "per-core batched small Cholesky decompositions (n, per_core, cores)",
        {"n", "per_core", "cores"}, factory<Chol_batch_adapter>());
  r.add("chol.pair",
        "mirrored-couple parallel Cholesky, n/4 cores per pair (n, pairs, "
        "mirrored)",
        {"n", "pairs", "mirrored"}, factory<Chol_pair_adapter>());
  r.add("chol.serial", "single-core Cholesky baseline (n, reps)",
        {"n", "reps", "core"}, factory<Chol_serial_adapter>());
  r.add("trisolve.batch",
        "batched forward+backward triangular solves (n, per_core, cores)",
        {"n", "per_core", "cores"}, factory<Trisolve_adapter>());
  r.add("gram.batch",
        "per-subcarrier Gramian + matched filter (sc, b, l, cores)",
        {"sc", "b", "l", "cores"}, factory<Gram_adapter>());
  r.add("che", "block-LS channel estimation (sc, b, l, cores)",
        {"sc", "b", "l", "cores"}, factory<Che_adapter>());
  r.add("ne", "noise-variance estimation (sc, b, l, cores)",
        {"sc", "b", "l", "cores"}, factory<Ne_adapter>());
}

}  // namespace pp::runtime
