#include "runtime/admission.h"

#include <algorithm>
#include <deque>

#include "common/check.h"
#include "phy/uplink.h"

namespace pp::runtime {

std::vector<std::string> overload_names() {
  return {"off", "drop", "queue", "degrade"};
}

bool is_overload_name(const std::string& name) {
  for (const auto& n : overload_names()) {
    if (n == name) return true;
  }
  return false;
}

Overload_policy overload_from_name(const std::string& name) {
  if (name == "off") return Overload_policy::off;
  if (name == "drop") return Overload_policy::drop;
  if (name == "queue") return Overload_policy::queue;
  if (name == "degrade") return Overload_policy::degrade;
  PP_CHECK(false,
           "unknown overload policy (registered: off, drop, queue, degrade)");
  return Overload_policy::off;  // unreachable
}

namespace {

// Predicted FCFS state of one shard.  `starts` holds the predicted start
// times of admitted jobs, popped once they are past - start times are
// non-decreasing (earliest-free-server time never decreases and arrivals
// are non-decreasing), so the deque front is always the oldest pending
// start and its size after popping is the backlog at the current arrival.
struct Shard_clock {
  std::vector<double> free_at;
  std::deque<double> starts;
};

}  // namespace

std::vector<Admission_verdict> admit_jobs(
    const std::vector<Slot_job>& jobs,
    const std::vector<uint32_t>& shard_of_group, uint32_t n_shards,
    uint32_t service_units, const arch::Cluster_config& cluster,
    double clock_ghz, const Admission_options& opt) {
  PP_CHECK(n_shards >= 1, "admission needs at least one shard");
  PP_CHECK(opt.min_ue >= 1, "degrade floor must keep at least one UE layer");
  const uint32_t servers = std::max(1u, service_units);
  std::vector<Shard_clock> shards(n_shards);
  for (auto& s : shards) s.free_at.assign(servers, 0.0);

  std::vector<Admission_verdict> verdicts(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Slot_job& job = jobs[i];
    PP_CHECK(job.group < shard_of_group.size(), "slot job group out of range");
    Admission_verdict& v = verdicts[i];
    v.shard = shard_of_group[job.group];
    PP_CHECK(v.shard < n_shards, "placement returned an out-of-range shard");
    v.cfg = job.cfg;
    Shard_clock& clock = shards[v.shard];

    // Earliest-free virtual cluster, ties to the lowest id - the same
    // deterministic pick as fcfs_completion().
    size_t server = 0;
    for (size_t j = 1; j < clock.free_at.size(); ++j) {
      if (clock.free_at[j] < clock.free_at[server]) server = j;
    }
    const double start = std::max(job.arrival_s, clock.free_at[server]);
    double service =
        analytic_service_seconds(v.cfg, cluster, clock_ghz);
    v.predicted_delay_s = start + service - job.arrival_s;

    switch (opt.policy) {
      case Overload_policy::off:
        break;
      case Overload_policy::drop:
        if (job.budget_s > 0.0 && v.predicted_delay_s > job.budget_s) {
          v.outcome = Admission_verdict::Outcome::dropped;
        }
        break;
      case Overload_policy::queue:
        while (!clock.starts.empty() &&
               clock.starts.front() <= job.arrival_s) {
          clock.starts.pop_front();
        }
        if (clock.starts.size() >= opt.queue_limit) {
          v.outcome = Admission_verdict::Outcome::dropped;
        }
        break;
      case Overload_policy::degrade:
        while (job.budget_s > 0.0 && v.predicted_delay_s > job.budget_s &&
               v.cfg.n_ue > opt.min_ue) {
          v.cfg = phy::degrade_to_layers(v.cfg, v.cfg.n_ue - 1);
          service = analytic_service_seconds(v.cfg, cluster, clock_ghz);
          v.predicted_delay_s = start + service - job.arrival_s;
        }
        if (v.cfg.n_ue != job.cfg.n_ue) {
          v.outcome = Admission_verdict::Outcome::degraded;
        }
        break;
    }

    if (v.outcome != Admission_verdict::Outcome::dropped) {
      clock.free_at[server] = start + service;
      clock.starts.push_back(start);
    }
  }
  return verdicts;
}

}  // namespace pp::runtime
