#include "runtime/admission.h"

#include <algorithm>
#include <deque>

#include "common/check.h"
#include "phy/uplink.h"

namespace pp::runtime {

std::vector<std::string> overload_names() {
  return {"off", "drop", "queue", "degrade"};
}

bool is_overload_name(const std::string& name) {
  for (const auto& n : overload_names()) {
    if (n == name) return true;
  }
  return false;
}

Overload_policy overload_from_name(const std::string& name) {
  if (name == "off") return Overload_policy::off;
  if (name == "drop") return Overload_policy::drop;
  if (name == "queue") return Overload_policy::queue;
  if (name == "degrade") return Overload_policy::degrade;
  PP_CHECK(false,
           "unknown overload policy (registered: off, drop, queue, degrade)");
  return Overload_policy::off;  // unreachable
}

std::vector<Admission_verdict> admit_jobs(
    const std::vector<Slot_job>& jobs,
    const std::vector<uint32_t>& shard_of_group, uint32_t n_shards,
    uint32_t service_units, const arch::Cluster_config& cluster,
    double clock_ghz, const Admission_options& opt) {
  Admission_state state(n_shards, std::max(1u, service_units));
  return admit_jobs(jobs, shard_of_group, n_shards, service_units, cluster,
                    clock_ghz, opt, state);
}

Admission_verdict admit_one(const Slot_job& job, uint32_t shard,
                            const arch::Cluster_config& cluster,
                            double clock_ghz, const Admission_options& opt,
                            Admission_state& state) {
  PP_CHECK(shard < state.shards.size(),
           "placement returned an out-of-range shard");
  PP_CHECK(opt.min_ue >= 1, "degrade floor must keep at least one UE layer");
  Admission_verdict v;
  v.shard = shard;
  v.cfg = job.cfg;
  Admission_state::Shard_clock& clock = state.shards[shard];

  // Earliest-free virtual cluster, ties to the lowest id - the same
  // deterministic pick as fcfs_completion().
  size_t server = 0;
  for (size_t j = 1; j < clock.free_at.size(); ++j) {
    if (clock.free_at[j] < clock.free_at[server]) server = j;
  }
  const double start = std::max(job.arrival_s, clock.free_at[server]);
  double service = analytic_service_seconds(v.cfg, cluster, clock_ghz);
  v.predicted_delay_s = start + service - job.arrival_s;

  switch (opt.policy) {
    case Overload_policy::off:
      break;
    case Overload_policy::drop:
      if (job.budget_s > 0.0 && v.predicted_delay_s > job.budget_s) {
        v.outcome = Admission_verdict::Outcome::dropped;
      }
      break;
    case Overload_policy::queue:
      while (!clock.starts.empty() && clock.starts.front() <= job.arrival_s) {
        clock.starts.pop_front();
      }
      if (clock.starts.size() >= opt.queue_limit) {
        v.outcome = Admission_verdict::Outcome::dropped;
      }
      break;
    case Overload_policy::degrade:
      while (job.budget_s > 0.0 && v.predicted_delay_s > job.budget_s &&
             v.cfg.n_ue > opt.min_ue) {
        v.cfg = phy::degrade_to_layers(v.cfg, v.cfg.n_ue - 1);
        service = analytic_service_seconds(v.cfg, cluster, clock_ghz);
        v.predicted_delay_s = start + service - job.arrival_s;
      }
      if (v.cfg.n_ue != job.cfg.n_ue) {
        v.outcome = Admission_verdict::Outcome::degraded;
      }
      break;
  }

  if (v.outcome != Admission_verdict::Outcome::dropped) {
    clock.free_at[server] = start + service;
    clock.starts.push_back(start);
  }
  return v;
}

void replay_one(const Slot_job& job, const Admission_verdict& v,
                const arch::Cluster_config& cluster, double clock_ghz,
                Admission_state& state) {
  if (v.outcome == Admission_verdict::Outcome::dropped) return;
  PP_CHECK(v.shard < state.shards.size(), "replayed verdict shard mismatch");
  Admission_state::Shard_clock& clock = state.shards[v.shard];
  // Retire starts that are past this arrival (harmless for policies that
  // never read the backlog), then occupy the earliest-free server with the
  // verdict's FINAL config - a degraded job loads its re-planned service.
  while (!clock.starts.empty() && clock.starts.front() <= job.arrival_s) {
    clock.starts.pop_front();
  }
  size_t server = 0;
  for (size_t j = 1; j < clock.free_at.size(); ++j) {
    if (clock.free_at[j] < clock.free_at[server]) server = j;
  }
  const double start = std::max(job.arrival_s, clock.free_at[server]);
  clock.free_at[server] =
      start + analytic_service_seconds(v.cfg, cluster, clock_ghz);
  clock.starts.push_back(start);
}

// `starts` holds the predicted start times of admitted jobs, popped once
// they are past - start times are non-decreasing within a pass
// (earliest-free-server time never decreases and arrivals are
// non-decreasing), so the deque front is always the oldest pending start
// and its size after popping is the backlog at the current arrival.
std::vector<Admission_verdict> admit_jobs(
    const std::vector<Slot_job>& jobs,
    const std::vector<uint32_t>& shard_of_group, uint32_t n_shards,
    uint32_t service_units, const arch::Cluster_config& cluster,
    double clock_ghz, const Admission_options& opt, Admission_state& state) {
  PP_CHECK(n_shards >= 1, "admission needs at least one shard");
  PP_CHECK(state.shards.size() == n_shards,
           "admission state shard count mismatch");
  (void)service_units;

  std::vector<Admission_verdict> verdicts(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Slot_job& job = jobs[i];
    PP_CHECK(job.group < shard_of_group.size(), "slot job group out of range");
    verdicts[i] = admit_one(job, shard_of_group[job.group], cluster,
                            clock_ghz, opt, state);
  }
  return verdicts;
}

}  // namespace pp::runtime
