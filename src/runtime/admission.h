// Admission / overload control in front of the sharded serving engine.
//
// Each scheduler shard (scheduler.h) owns an FCFS virtual-clock queue; the
// admission controller decides, per arriving slot job and before anything
// executes, whether the shard takes the job as planned, re-plans it, or
// sheds it.  The decision runs on the analytic predictor - the Table I MAC
// model (analytic_service_seconds) through the same earliest-free-server
// FCFS recurrence the deadline accounting uses - so the whole verdict
// stream is a pure function of (jobs, placement, policy, cluster, clock):
// identical on every backend, for any host worker count, with or without
// stage pipelining (docs/DETERMINISM.md §8).  On cycle-accurate backends
// the predictor is a model of the true (simulated-cycle) service times, not
// a copy of them - deliberately, since a controller that needed the cycles
// would have to execute the slot it is deciding about.
//
// Policies (overload_names()):
//   off       admit everything - the pre-sharding engine's behavior.
//   drop      shed a deadlined job whose predicted queue delay exceeds its
//             budget; the shard's virtual clock never sees it.
//   queue     bounded queue: shed when the shard's predicted backlog
//             (admitted jobs arrived but not yet started) is at
//             queue_limit.  Deadline-oblivious - classic tail-drop.
//   degrade   re-plan to fewer UE layers (phy::degrade_to_layers), one
//             layer at a time down to min_ue, until the predicted delay
//             meets the budget; always admits the final plan.
#ifndef PUSCHPOOL_RUNTIME_ADMISSION_H
#define PUSCHPOOL_RUNTIME_ADMISSION_H

#include <deque>
#include <string>
#include <vector>

#include "runtime/scheduler.h"

namespace pp::runtime {

enum class Overload_policy { off, drop, queue, degrade };

// Registered policy names, in listing order (matching the enum).
std::vector<std::string> overload_names();

// True if `name` is a registered overload policy.
bool is_overload_name(const std::string& name);

// Name -> enum; aborts (PP_CHECK) on an unknown name - CLI layers validate
// first (bench_util.h) and exit 2 with the registered list.
Overload_policy overload_from_name(const std::string& name);

struct Admission_options {
  Overload_policy policy = Overload_policy::off;
  uint32_t queue_limit = 8;  // "queue" policy: max predicted backlog
  uint32_t min_ue = 1;       // "degrade" policy: layer floor
};

// Per-job controller decision.  `cfg` is the config the scheduler actually
// executes: byte-for-byte the job's own config unless the verdict is
// `degraded`, in which case it is the re-planned one (fewer UE layers).
struct Admission_verdict {
  enum class Outcome : uint8_t { admitted, degraded, dropped };
  Outcome outcome = Outcome::admitted;
  uint32_t shard = 0;             // shard the job was placed on
  phy::Uplink_config cfg;         // final (possibly re-planned) config
  double predicted_delay_s = 0.0; // predictor: completion - arrival
};

// The controller's predicted FCFS state, explicit so a caller can build the
// verdict stream job by job: the HARQ loop (scheduler.h, max_harq > 0)
// re-runs the predictor chronologically each round - already-decided jobs
// are replayed (replay_one: occupancy only, the verdict is final) and the
// round's retransmissions decided (admit_one) interleaved at their true
// arrivals - so retransmission pressure and the exogenous stream contend
// for the same predicted capacity in arrival order.  Per shard, `starts`
// holds the predicted start times of admitted jobs (the "queue" policy's
// backlog estimate) and `free_at` the earliest-free time of every virtual
// cluster.
struct Admission_state {
  struct Shard_clock {
    std::vector<double> free_at;
    std::deque<double> starts;
  };
  std::vector<Shard_clock> shards;

  Admission_state() = default;
  Admission_state(uint32_t n_shards, uint32_t service_units) {
    shards.resize(n_shards);
    for (auto& s : shards) s.free_at.assign(service_units, 0.0);
  }
};

// The serial admission pre-pass: walk `jobs` in index (= arrival) order,
// maintain each shard's predicted FCFS state over `service_units` virtual
// clusters, and decide every job under `opt`.  Dropped jobs do not advance
// any clock.  `shard_of_group` comes from runtime::place_groups.
std::vector<Admission_verdict> admit_jobs(
    const std::vector<Slot_job>& jobs,
    const std::vector<uint32_t>& shard_of_group, uint32_t n_shards,
    uint32_t service_units, const arch::Cluster_config& cluster,
    double clock_ghz, const Admission_options& opt);

// Continuation form: the same pass, but reading and advancing an explicit
// controller state (shards/free_at sized by the caller).  The one-shot
// overload above is exactly this with a fresh state.
std::vector<Admission_verdict> admit_jobs(
    const std::vector<Slot_job>& jobs,
    const std::vector<uint32_t>& shard_of_group, uint32_t n_shards,
    uint32_t service_units, const arch::Cluster_config& cluster,
    double clock_ghz, const Admission_options& opt, Admission_state& state);

// Decide a single job against `state` under `opt` - the body of the
// admit_jobs loop.  Jobs must be offered in non-decreasing arrival order
// for the predicted-backlog bookkeeping to be meaningful.
Admission_verdict admit_one(const Slot_job& job, uint32_t shard,
                            const arch::Cluster_config& cluster,
                            double clock_ghz, const Admission_options& opt,
                            Admission_state& state);

// Replay an already-decided job into `state`: advance the occupancy clocks
// exactly as admitting it did, without re-deciding anything.  The HARQ
// loop's chronological re-pass uses this for every job whose verdict is
// already final.  Dropped jobs never touched the clocks, so they replay as
// a no-op.
void replay_one(const Slot_job& job, const Admission_verdict& v,
                const arch::Cluster_config& cluster, double clock_ghz,
                Admission_state& state);

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_ADMISSION_H
