// Pluggable execution backends for functional pipeline runs.
//
// A Backend takes a Pipeline description plus an uplink scenario and
// produces a Slot_result.  Four implementations exist:
//
//   Sim_backend        the cycle-approximate fixed-point kernels on the
//                      simulated many-core cluster (pipeline.cluster());
//                      reports per-stage cycles and instruction counts
//   Reference_backend  the double-precision host models (baseline/): no
//                      cycles, runs in milliseconds - the golden functional
//                      cross-check and the fast path for scenario sweeps
//   Parallel_backend   the same host models split across a worker pool with
//                      the paper's per-kernel decomposition; bit-identical
//                      to Reference_backend at any worker count
//                      (backend_parallel.h)
//   Fixed_backend      the sim backend's Q1.15 kernel math (src/fixed/) on a
//                      host worker pool with optional SIMD; **bit-identical**
//                      to Sim_backend - same payload bits, EVM/BER and
//                      sigma2_hat - at host speed (backend_fixed.h)
//
// All emit the same Slot_result, so a single scenario can be scored on the
// simulator and on any host path through the same Pipeline::execute()
// call.
#ifndef PUSCHPOOL_RUNTIME_BACKEND_H
#define PUSCHPOOL_RUNTIME_BACKEND_H

#include <memory>
#include <string_view>

#include "common/grid.h"
#include "runtime/pipeline.h"

namespace pp::runtime {

// Hand-off state between the two halves of a stage-split slot: the
// beam-domain grid after OFDM FFT + beamforming, one row per OFDM symbol,
// row layout [sc * beam].  Produced by Backend::run_front_into(), consumed
// by Backend::run_back_into().  Flat workspace storage: the scheduler's
// stage pipeline recycles Slot_fronts across slots, so the grid's
// capacity survives and the steady state allocates nothing.
struct Slot_front {
  common::Ws_grid<phy::cd> beams;
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string_view name() const = 0;
  virtual bool cycle_accurate() const = 0;
  virtual Slot_result run_slot(const Pipeline& p,
                               const phy::Uplink_scenario& sc) = 0;

  // Workspace (_into) slot execution: results land in caller-owned storage
  // whose capacity is reused across calls.  The host backends implement
  // this as the primary path (run_slot wraps it); the default forwards to
  // run_slot for backends whose execution is inherently allocating (the
  // simulator builds a sim::Machine per slot).  Bit-identical to run_slot
  // by construction.
  virtual void run_slot_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                             Slot_result& out);

  // Stage-split execution, used by runtime::Slot_scheduler to overlap the
  // front half (FFT + beamforming) of slot n+1 with the back half (CHE, NE,
  // LMMSE MIMO, demodulation) of slot n.  Contract:
  // run_back(p, sc, run_front(p, sc)) is bit-identical to run_slot(p, sc).
  // Backends that cannot split (the simulator models a whole slot as one
  // launch sequence) keep the default can_split() = false and abort in the
  // split entry points.
  virtual bool can_split() const { return false; }
  virtual void run_front_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                              Slot_front& out);
  virtual void run_back_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                             const Slot_front& front, Slot_result& out);

  // Returning conveniences over the _into forms (tests / one-shot use).
  Slot_front run_front(const Pipeline& p, const phy::Uplink_scenario& sc);
  Slot_result run_back(const Pipeline& p, const phy::Uplink_scenario& sc,
                       Slot_front front);

  // High-water bytes held by this backend's slot workspaces (0 when the
  // backend keeps none).  Observability for the growth-then-stable tests;
  // monotone under the ws_grow discipline.
  virtual size_t workspace_bytes() const { return 0; }
};

class Sim_backend final : public Backend {
 public:
  Sim_backend();
  ~Sim_backend() override;
  std::string_view name() const override { return "sim"; }
  bool cycle_accurate() const override { return true; }
  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  size_t workspace_bytes() const override;

 private:
  struct Ws;  // marshaling buffers (quantize scratch); sim cores re-run
              // the slot out of simulated L1, which is per-Machine state
  std::unique_ptr<Ws> ws_;
};

class Reference_backend final : public Backend {
 public:
  std::string_view name() const override { return "reference"; }
  bool cycle_accurate() const override { return false; }
  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  void run_slot_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                     Slot_result& out) override;
  bool can_split() const override { return true; }
  void run_front_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                      Slot_front& out) override;
  void run_back_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                     const Slot_front& front, Slot_result& out) override;
  size_t workspace_bytes() const override;

 private:
  phy::Front_ws front_ws_;
  phy::Back_ws back_ws_;
  common::Ws_grid<phy::cd> beams_;  // fused-path beam grid
};

// Fills `out.stages` with the per-stage launch counts the sim backend would
// perform for this pipeline and scenario (FFT gang batching and Cholesky
// symbol batching included).  Shared by the host backends so all three
// backends' stage tables line up row by row.
void mirror_sim_stage_runs(const Pipeline& p, const phy::Uplink_config& cfg,
                           Slot_result& out);

// "sim", "reference", "parallel" or "fixed"; aborts on anything else.
// `intra` is the intra-slot worker count of the "parallel" and "fixed"
// backends (0 = one worker per hardware thread) and is ignored by the rest.
std::unique_ptr<Backend> make_backend(std::string_view name,
                                      uint32_t intra = 0);

// The names make_backend() accepts, in registration order - the CLI `--list`
// surface and the validation list for readable unknown-backend errors.
std::vector<std::string> backend_names();

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_BACKEND_H
