// Pluggable execution backends for functional pipeline runs.
//
// A Backend takes a Pipeline description plus an uplink scenario and
// produces a Slot_result.  Two implementations exist:
//
//   Sim_backend        the cycle-approximate fixed-point kernels on the
//                      simulated many-core cluster (pipeline.cluster());
//                      reports per-stage cycles and instruction counts
//   Reference_backend  the double-precision host models (baseline/): no
//                      cycles, runs in milliseconds - the golden functional
//                      cross-check and the fast path for scenario sweeps
//
// Both emit the same Slot_result, so a single scenario can be scored on the
// simulator and on the reference through the same Pipeline::execute() call.
#ifndef PUSCHPOOL_RUNTIME_BACKEND_H
#define PUSCHPOOL_RUNTIME_BACKEND_H

#include <memory>
#include <string_view>

#include "runtime/pipeline.h"

namespace pp::runtime {

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string_view name() const = 0;
  virtual bool cycle_accurate() const = 0;
  virtual Slot_result run_slot(const Pipeline& p,
                               const phy::Uplink_scenario& sc) = 0;
};

class Sim_backend final : public Backend {
 public:
  std::string_view name() const override { return "sim"; }
  bool cycle_accurate() const override { return true; }
  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
};

class Reference_backend final : public Backend {
 public:
  std::string_view name() const override { return "reference"; }
  bool cycle_accurate() const override { return false; }
  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
};

// "sim" or "reference"; aborts on anything else.
std::unique_ptr<Backend> make_backend(std::string_view name);

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_BACKEND_H
