// Pluggable execution backends for functional pipeline runs.
//
// A Backend takes a Pipeline description plus an uplink scenario and
// produces a Slot_result.  Four implementations exist:
//
//   Sim_backend        the cycle-approximate fixed-point kernels on the
//                      simulated many-core cluster (pipeline.cluster());
//                      reports per-stage cycles and instruction counts
//   Reference_backend  the double-precision host models (baseline/): no
//                      cycles, runs in milliseconds - the golden functional
//                      cross-check and the fast path for scenario sweeps
//   Parallel_backend   the same host models split across a worker pool with
//                      the paper's per-kernel decomposition; bit-identical
//                      to Reference_backend at any worker count
//                      (backend_parallel.h)
//   Fixed_backend      the sim backend's Q1.15 kernel math (src/fixed/) on a
//                      host worker pool with optional SIMD; **bit-identical**
//                      to Sim_backend - same payload bits, EVM/BER and
//                      sigma2_hat - at host speed (backend_fixed.h)
//
// All emit the same Slot_result, so a single scenario can be scored on the
// simulator and on any host path through the same Pipeline::execute()
// call.
#ifndef PUSCHPOOL_RUNTIME_BACKEND_H
#define PUSCHPOOL_RUNTIME_BACKEND_H

#include <memory>
#include <string_view>

#include "runtime/pipeline.h"

namespace pp::runtime {

// Hand-off state between the two halves of a stage-split slot: the
// beam-domain grids [symbol][sc * beam] after OFDM FFT + beamforming.
// Produced by Backend::run_front(), consumed by Backend::run_back().
struct Slot_front {
  std::vector<std::vector<phy::cd>> beams;
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string_view name() const = 0;
  virtual bool cycle_accurate() const = 0;
  virtual Slot_result run_slot(const Pipeline& p,
                               const phy::Uplink_scenario& sc) = 0;

  // Stage-split execution, used by runtime::Slot_scheduler to overlap the
  // front half (FFT + beamforming) of slot n+1 with the back half (CHE, NE,
  // LMMSE MIMO, demodulation) of slot n.  Contract:
  // run_back(p, sc, run_front(p, sc)) is bit-identical to run_slot(p, sc).
  // Backends that cannot split (the simulator models a whole slot as one
  // launch sequence) keep the default can_split() = false and abort in the
  // split entry points.
  virtual bool can_split() const { return false; }
  virtual Slot_front run_front(const Pipeline& p,
                               const phy::Uplink_scenario& sc);
  virtual Slot_result run_back(const Pipeline& p,
                               const phy::Uplink_scenario& sc,
                               Slot_front front);
};

class Sim_backend final : public Backend {
 public:
  std::string_view name() const override { return "sim"; }
  bool cycle_accurate() const override { return true; }
  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
};

class Reference_backend final : public Backend {
 public:
  std::string_view name() const override { return "reference"; }
  bool cycle_accurate() const override { return false; }
  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  bool can_split() const override { return true; }
  Slot_front run_front(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  Slot_result run_back(const Pipeline& p, const phy::Uplink_scenario& sc,
                       Slot_front front) override;
};

// Fills `out.stages` with the per-stage launch counts the sim backend would
// perform for this pipeline and scenario (FFT gang batching and Cholesky
// symbol batching included).  Shared by the host backends so all three
// backends' stage tables line up row by row.
void mirror_sim_stage_runs(const Pipeline& p, const phy::Uplink_config& cfg,
                           Slot_result& out);

// "sim", "reference", "parallel" or "fixed"; aborts on anything else.
// `intra` is the intra-slot worker count of the "parallel" and "fixed"
// backends (0 = one worker per hardware thread) and is ignored by the rest.
std::unique_ptr<Backend> make_backend(std::string_view name,
                                      uint32_t intra = 0);

// The names make_backend() accepts, in registration order - the CLI `--list`
// surface and the validation list for readable unknown-backend errors.
std::vector<std::string> backend_names();

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_BACKEND_H
