// Fixed-point host slot execution, bit-identical to the sim backend.
//
// This file replays backend_sim.cpp's host marshaling line by line - the
// same quantize/dequantize round-trips at the same block-rescaling factors,
// the same per-symbol loop structure, the same EVM/BER epilogue order - and
// substitutes each simulated kernel launch with the host Q15 kernels of
// src/fixed/.  Any change to the sim backend's marshaling must be mirrored
// here (tests/test_backend_fixed.cpp pins the bit-exact contract across a
// scenario grid, worker counts and the split/pipelined path).
//
// All marshaling staging lives in the backend's slot workspaces
// (grow-then-stabilize): after the first slot of a shape, a run allocates
// nothing - the serving benches gate that under PP_COUNT_ALLOCS.
#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fixed/q15_kernels.h"
#include "fixed/simd.h"
#include "runtime/backend_fixed.h"
#include "runtime/workspace.h"

namespace pp::runtime {

namespace {

using common::cq15;
using common::Thread_pool;
using phy::cd;

const Stage_spec& require(const Pipeline& p, Stage_role role,
                          const char* what) {
  const Stage_spec* s = p.find(role);
  PP_CHECK(s != nullptr && !s->run.kernel.empty(), what);
  return *s;
}

}  // namespace

bool Fixed_backend::simd_active() const {
  return simd_ && fixed::simd_available();
}

Slot_result Fixed_backend::run_slot(const Pipeline& p,
                                    const phy::Uplink_scenario& sc) {
  Slot_result out;
  run_slot_into(p, sc, out);
  return out;
}

void Fixed_backend::run_slot_into(const Pipeline& p,
                                  const phy::Uplink_scenario& sc,
                                  Slot_result& out) {
  front_into(p, sc, beams_);
  back_into(p, sc, beams_, out);
}

void Fixed_backend::run_front_into(const Pipeline& p,
                                   const phy::Uplink_scenario& sc,
                                   Slot_front& out) {
  front_into(p, sc, out.beams);
}

void Fixed_backend::run_back_into(const Pipeline& p,
                                  const phy::Uplink_scenario& sc,
                                  const Slot_front& front, Slot_result& out) {
  back_into(p, sc, front.beams, out);
}

void Fixed_backend::front_into(const Pipeline& p,
                               const phy::Uplink_scenario& sc,
                               common::Ws_grid<phy::cd>& beams) {
  const auto& cfg = sc.config();
  PP_CHECK(cfg.n_sc == cfg.fft_size,
           "fixed backend assumes all FFT bins are active sub-carriers");
  const uint32_t n = cfg.fft_size;
  const Stage_spec& fft_spec =
      require(p, Stage_role::fft, "pipeline needs an fft stage");
  const Stage_spec& bf_spec =
      require(p, Stage_role::beamform, "pipeline needs a beamform stage");
  const double s_time = fft_spec.rescale;
  const double s_grid = bf_spec.rescale;
  // The kernel computes FFT/N of the s_time-scaled samples and the
  // transmitter normalized time by 1/sqrt(N) (same comment as backend_sim).
  const double ds = s_time / std::sqrt(static_cast<double>(n));
  const fixed::Fft_plan& plan = fixed::fft_plan(n);
  const bool simd = simd_active();
  const uint32_t workers = pool_.workers();

  // Quantized beamforming codebook (n_rx x n_beams), reused every symbol.
  quantize_into(sc.codebook(), 1.0, bq_);

  // Frequency grids per (symbol, antenna) in true (unscaled) units: row
  // s * n_rx + r of the workspace grid.  Every row is fully written by the
  // FFT phase before the MMM phase reads it (barrier in between).
  freq_.shape(static_cast<size_t>(cfg.n_symb) * cfg.n_rx, n);
  beams.shape(cfg.n_symb, static_cast<size_t>(n) * cfg.n_beams);

  const uint64_t n_fft = static_cast<uint64_t>(cfg.n_symb) * cfg.n_rx;
  common::Counting_barrier bar(workers);

  // Beamforming rows: one (symbol, sub-carrier) output row of the MMM per
  // item - gather the quantized sub-carrier row, exact MAC against the
  // codebook, dequantize.  Element-for-element the arithmetic of the sim
  // backend's whole-matrix quantize -> MMM -> dequantize sequence.
  auto mmm_rows_phase = [&](uint32_t w) {
    std::vector<cq15>& aq = fft_ws_[w].aq;
    std::vector<cq15>& crow = fft_ws_[w].crow;
    common::ws_grow(aq, cfg.n_rx);
    common::ws_grow(crow, cfg.n_beams);
    const auto [r0, r1] =
        Thread_pool::slice(static_cast<uint64_t>(cfg.n_symb) * n, w, workers);
    for (uint64_t item = r0; item < r1; ++item) {
      const uint32_t s = static_cast<uint32_t>(item / n);
      const uint32_t scx = static_cast<uint32_t>(item % n);
      for (uint32_t r = 0; r < cfg.n_rx; ++r) {
        aq[r] = common::to_cq15(
            freq_.at(static_cast<size_t>(s) * cfg.n_rx + r, scx) * s_grid);
      }
      fixed::mmm_rows(aq.data(), bq_.data(), crow.data(), cfg.n_rx,
                      cfg.n_beams, 0, 1);
      std::span<cd> brow = beams.row(s);
      for (uint32_t q = 0; q < cfg.n_beams; ++q) {
        brow[static_cast<size_t>(scx) * cfg.n_beams + q] =
            common::to_cd(crow[q]) / s_grid;
      }
    }
  };

  if (n_fft >= workers) {
    // Enough transforms to hand each worker its own.
    pool_.run([&](uint32_t w) {
      std::vector<cq15>& buf = fft_ws_[w].buf;
      std::vector<cq15>& fout = fft_ws_[w].fout;
      common::ws_grow(buf, n);
      common::ws_grow(fout, n);
      const auto [f0, f1] = Thread_pool::slice(n_fft, w, workers);
      for (uint64_t t = f0; t < f1; ++t) {
        const uint32_t s = static_cast<uint32_t>(t / cfg.n_rx);
        const uint32_t r = static_cast<uint32_t>(t % cfg.n_rx);
        const auto& x = sc.antenna_time(s, r);
        for (uint32_t i = 0; i < n; ++i) {
          buf[i] = common::to_cq15(x[i] * s_time);
        }
        fixed::fft_transform(plan, buf.data(), fout.data(), simd);
        std::span<cd> frow = freq_.row(t);
        for (uint32_t i = 0; i < n; ++i) {
          frow[i] = common::to_cd(fout[i]) / ds;
        }
      }
      bar.arrive_and_wait();
      mmm_rows_phase(w);
    });
  } else {
    // Cooperative FFT: every transform is tiled across all workers,
    // butterfly ranges per stage with a barrier in between (each stage's
    // butterflies touch disjoint elements).
    common::ws_grow(coop_buf_, n);
    common::ws_grow(coop_fout_, n);
    pool_.run([&](uint32_t w) {
      const auto [e0, e1] = Thread_pool::slice(n, w, workers);
      const auto [g0, g1] = Thread_pool::slice(n / 4, w, workers);
      for (uint64_t t = 0; t < n_fft; ++t) {
        const uint32_t s = static_cast<uint32_t>(t / cfg.n_rx);
        const uint32_t r = static_cast<uint32_t>(t % cfg.n_rx);
        const auto& x = sc.antenna_time(s, r);
        for (uint64_t i = e0; i < e1; ++i) {
          coop_buf_[i] = common::to_cq15(x[i] * s_time);
        }
        bar.arrive_and_wait();
        for (uint32_t k = 0; k < plan.geom.stages; ++k) {
          fixed::fft_stage(plan, k, coop_buf_.data(), coop_fout_.data(),
                           static_cast<uint32_t>(g0),
                           static_cast<uint32_t>(g1), simd);
          bar.arrive_and_wait();
        }
        std::span<cd> frow = freq_.row(t);
        for (uint64_t i = e0; i < e1; ++i) {
          frow[i] = common::to_cd(coop_fout_[i]) / ds;
        }
        bar.arrive_and_wait();  // buf/fout are reused by the next transform
      }
      mmm_rows_phase(w);
    });
  }
}

void Fixed_backend::back_into(const Pipeline& p,
                              const phy::Uplink_scenario& sc,
                              const common::Ws_grid<phy::cd>& beams,
                              Slot_result& out) {
  const auto& cfg = sc.config();
  const uint32_t n = cfg.fft_size;
  const uint32_t n_b = cfg.n_beams;
  const uint32_t n_l = cfg.n_ue;
  const Stage_spec& che_spec =
      require(p, Stage_role::che, "pipeline needs a che stage");
  const Stage_spec& ne_spec =
      require(p, Stage_role::ne, "pipeline needs an ne stage");
  const Stage_spec& gram_spec =
      require(p, Stage_role::gram, "pipeline needs a gram stage");
  const Stage_spec& mimo_spec =
      require(p, Stage_role::mimo_solve, "pipeline needs a mimo_solve stage");
  const double s_che = che_spec.rescale;
  const double s_est = ne_spec.rescale;
  const double s_rhs = gram_spec.rescale;
  const bool simd = simd_active();
  const uint32_t workers = pool_.workers();
  common::Counting_barrier bar(workers);

  out.backend = "fixed";
  mirror_sim_stage_runs(p, cfg, out);

  // ---- channel estimation on the pilot symbols ------------------------
  if (pilots_q_.size() < n_l) pilots_q_.resize(n_l);  // grow-only outers
  if (y_sep_q_.size() < n_l) y_sep_q_.resize(n_l);
  for (uint32_t l = 0; l < n_l; ++l) {
    quantize_into(sc.pilot(l), 1.0, pilots_q_[l]);
    quantize_into(sc.pilot_obs_beam(l), s_che, y_sep_q_[l]);
  }
  const size_t h_elems = static_cast<size_t>(n) * n_b * n_l;
  common::ws_grow(h_q_, h_elems);
  common::ws_grow(h_hat_, h_elems);  // [sc][b][l]
  pool_.run([&](uint32_t w) {
    const auto [lo, hi] = Thread_pool::slice(n, w, workers);
    fixed::che_subcarriers(y_sep_q_, pilots_q_, h_q_.data(), n_b, n_l,
                           static_cast<uint32_t>(lo),
                           static_cast<uint32_t>(hi), simd);
    bar.arrive_and_wait();
    const auto [e0, e1] = Thread_pool::slice(h_elems, w, workers);
    for (size_t i = e0; i < e1; ++i) {
      h_hat_[i] = common::to_cd(h_q_[i]) / s_che;
    }
  });

  // ---- noise estimation ------------------------------------------------
  // The sim NE folds one uint32 contribution per core block, so the
  // estimate depends on the *simulated* partition: replay exactly that
  // many blocks regardless of the host worker count.
  quantize_into(beams.row(0), s_est, y_est_);
  quantize_into(h_hat_, s_est, h_est_);
  uint32_t ne_cores = ne_spec.run.params.getu("cores", 0);
  if (ne_cores == 0) ne_cores = p.cluster().n_cores();
  common::ws_grow(contribs_, ne_cores);
  pool_.parallel_for(ne_cores, [&](uint64_t idx) {
    const fixed::Sc_block blk =
        fixed::sc_block(n, ne_cores, static_cast<uint32_t>(idx));
    const int64_t partial = fixed::ne_partial(
        y_est_.data(), h_est_.data(), pilots_q_, n_b, n_l, blk.lo, blk.hi);
    contribs_[idx] = static_cast<uint32_t>(
        std::max<int64_t>(0, partial >> common::q15_frac_bits));
  });
  uint32_t raw = 0;  // wraps mod 2^32 like the simulated amo_add word
  for (uint32_t i = 0; i < ne_cores; ++i) raw += contribs_[i];
  const double count = static_cast<double>(n) * n_b;
  const double sigma2_hat =
      static_cast<double>(raw) /
      (count * static_cast<double>(1 << common::q15_frac_bits)) /
      (s_est * s_est);
  out.sigma2_hat = sigma2_hat;

  // ---- MIMO per data symbol: G = H^H H + sigma2 I, Cholesky, solves ----
  quantize_into(h_hat_, 1.0, gh_q_);
  const cq15 sigma{common::to_q15(sigma2_hat), 0};
  const uint32_t batch = mimo_spec.run.params.getu("symb_batch", 1);
  const uint32_t n_data = cfg.n_symb - cfg.n_pilot_symb;
  out.bits.resize(n_l);
  out.symbols.resize(n_l);  // equalized symbols, indexed (data symbol, sc)
  for (auto& eq : out.symbols) {
    common::ws_grow(eq, static_cast<size_t>(n_data) * n);
  }
  double evm_acc = 0.0;
  uint64_t evm_cnt = 0;

  if (y_q_.size() < batch) y_q_.resize(batch);  // grow-only outers
  if (g_syms_.size() < batch) g_syms_.resize(batch);
  if (rhs_syms_.size() < batch) rhs_syms_.resize(batch);
  common::ws_grow(xs_, static_cast<size_t>(batch) * n * n_l);
  for (uint32_t s0 = cfg.n_pilot_symb; s0 < cfg.n_symb; s0 += batch) {
    for (uint32_t b = 0; b < batch; ++b) {
      quantize_into(beams.row(s0 + b), s_rhs, y_q_[b]);
      common::ws_grow(g_syms_[b], static_cast<size_t>(n) * n_l * n_l);
      std::fill(g_syms_[b].begin(), g_syms_[b].end(), cq15{});
      common::ws_grow(rhs_syms_[b], static_cast<size_t>(n) * n_l);
      std::fill(rhs_syms_[b].begin(), rhs_syms_[b].end(), cq15{});
    }
    // One (symbol-in-batch, sub-carrier) problem per item: Gramian +
    // matched filter, then Cholesky + both substitutions.  Items are
    // independent, so no barrier is needed between the two steps.
    pool_.parallel_for(
        static_cast<uint64_t>(batch) * n, [&](uint64_t item) {
          const uint32_t b = static_cast<uint32_t>(item / n);
          const uint32_t scx = static_cast<uint32_t>(item % n);
          fixed::gram_subcarriers(gh_q_.data(), y_q_[b].data(), sigma,
                                  g_syms_[b].data(), rhs_syms_[b].data(), n_b,
                                  n_l, scx, scx + 1);
          cq15 lmat[64];
          fixed::cholesky(
              g_syms_[b].data() + static_cast<size_t>(scx) * n_l * n_l, lmat,
              n_l);
          fixed::trisolve(lmat,
                          rhs_syms_[b].data() + static_cast<size_t>(scx) * n_l,
                          xs_.data() + item * n_l, n_l);
        });

    // Serial epilogue in the sim backend's exact loop order (the EVM sum
    // is a float reduction; order is part of the contract).  Equalized
    // symbols land at their (data symbol, sub-carrier) index.
    for (uint32_t b = 0; b < batch; ++b) {
      const uint32_t s = s0 + b;
      for (uint32_t scx = 0; scx < n; ++scx) {
        dequantize_into(xs_.data() + (static_cast<size_t>(b) * n + scx) * n_l,
                        n_l, s_rhs, x_);
        const size_t idx = static_cast<size_t>(s - cfg.n_pilot_symb) * n + scx;
        for (uint32_t l = 0; l < n_l; ++l) {
          const cd sym = x_[l] / cfg.ue_power;
          out.symbols[l][idx] = sym;
          const cd want = sc.tx_grid(l, s)[scx] / cfg.ue_power;
          evm_acc += std::norm(sym - want);
          ++evm_cnt;
        }
      }
    }
  }
  out.evm = std::sqrt(evm_acc / static_cast<double>(evm_cnt));

  uint64_t nerr = 0, nbits = 0;
  for (uint32_t l = 0; l < n_l; ++l) {
    phy::qam_demodulate_into(cfg.qam, out.symbols[l], out.bits[l]);
    const auto& want = sc.tx_bits(l);
    PP_CHECK(want.size() == out.bits[l].size(), "payload size mismatch");
    for (size_t i = 0; i < want.size(); ++i) {
      nerr += want[i] != out.bits[l][i];
      ++nbits;
    }
  }
  out.ber = static_cast<double>(nerr) / static_cast<double>(nbits);
}

size_t Fixed_backend::workspace_bytes() const {
  size_t b = (coop_buf_.capacity() + coop_fout_.capacity() + bq_.capacity() +
              h_q_.capacity() + y_est_.capacity() + h_est_.capacity() +
              gh_q_.capacity() + xs_.capacity()) *
                 sizeof(cq15) +
             freq_.footprint_bytes() + beams_.footprint_bytes() +
             (h_hat_.capacity() + x_.capacity()) * sizeof(cd) +
             contribs_.capacity() * sizeof(uint32_t);
  for (const auto& ws : fft_ws_) b += ws.footprint_bytes();
  b += common::ws_rows_footprint(pilots_q_) +
       common::ws_rows_footprint(y_sep_q_) + common::ws_rows_footprint(y_q_) +
       common::ws_rows_footprint(g_syms_) +
       common::ws_rows_footprint(rhs_syms_);
  return b;
}

}  // namespace pp::runtime
