// Fixed-point host slot execution, bit-identical to the sim backend.
//
// This file replays backend_sim.cpp's host marshaling line by line - the
// same quantize/dequantize round-trips at the same block-rescaling factors,
// the same per-symbol loop structure, the same EVM/BER epilogue order - and
// substitutes each simulated kernel launch with the host Q15 kernels of
// src/fixed/.  Any change to the sim backend's marshaling must be mirrored
// here (tests/test_backend_fixed.cpp pins the bit-exact contract across a
// scenario grid, worker counts and the split/pipelined path).
#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fixed/q15_kernels.h"
#include "fixed/simd.h"
#include "runtime/backend_fixed.h"

namespace pp::runtime {

namespace {

using common::cq15;
using common::Thread_pool;
using phy::cd;

std::vector<cq15> quantize(const std::vector<cd>& x, double scale) {
  std::vector<cq15> q(x.size());
  for (size_t i = 0; i < x.size(); ++i) q[i] = common::to_cq15(x[i] * scale);
  return q;
}

std::vector<cd> dequantize(const std::vector<cq15>& q, double scale) {
  std::vector<cd> x(q.size());
  for (size_t i = 0; i < q.size(); ++i) x[i] = common::to_cd(q[i]) / scale;
  return x;
}

const Stage_spec& require(const Pipeline& p, Stage_role role,
                          const char* what) {
  const Stage_spec* s = p.find(role);
  PP_CHECK(s != nullptr && !s->run.kernel.empty(), what);
  return *s;
}

}  // namespace

bool Fixed_backend::simd_active() const {
  return simd_ && fixed::simd_available();
}

Slot_result Fixed_backend::run_slot(const Pipeline& p,
                                    const phy::Uplink_scenario& sc) {
  return run_back(p, sc, run_front(p, sc));
}

Slot_front Fixed_backend::run_front(const Pipeline& p,
                                    const phy::Uplink_scenario& sc) {
  const auto& cfg = sc.config();
  PP_CHECK(cfg.n_sc == cfg.fft_size,
           "fixed backend assumes all FFT bins are active sub-carriers");
  const uint32_t n = cfg.fft_size;
  const Stage_spec& fft_spec =
      require(p, Stage_role::fft, "pipeline needs an fft stage");
  const Stage_spec& bf_spec =
      require(p, Stage_role::beamform, "pipeline needs a beamform stage");
  const double s_time = fft_spec.rescale;
  const double s_grid = bf_spec.rescale;
  // The kernel computes FFT/N of the s_time-scaled samples and the
  // transmitter normalized time by 1/sqrt(N) (same comment as backend_sim).
  const double ds = s_time / std::sqrt(static_cast<double>(n));
  const fixed::Fft_plan& plan = fixed::fft_plan(n);
  const bool simd = simd_active();
  const uint32_t workers = pool_.workers();

  // Quantized beamforming codebook (n_rx x n_beams), reused every symbol.
  std::vector<cq15> bq(sc.codebook().size());
  for (size_t i = 0; i < bq.size(); ++i) {
    bq[i] = common::to_cq15(sc.codebook()[i]);
  }

  // Frequency grids per (symbol, antenna) in true (unscaled) units.
  std::vector<std::vector<std::vector<cd>>> freq(cfg.n_symb);
  for (auto& fs : freq) {
    fs.resize(cfg.n_rx);
    for (auto& fr : fs) fr.resize(n);
  }
  Slot_front front;
  front.beams.resize(cfg.n_symb);
  for (auto& b : front.beams) b.resize(static_cast<size_t>(n) * cfg.n_beams);

  const uint64_t n_fft = static_cast<uint64_t>(cfg.n_symb) * cfg.n_rx;
  common::Counting_barrier bar(workers);

  // Beamforming rows: one (symbol, sub-carrier) output row of the MMM per
  // item - gather the quantized sub-carrier row, exact MAC against the
  // codebook, dequantize.  Element-for-element the arithmetic of the sim
  // backend's whole-matrix quantize -> MMM -> dequantize sequence.
  auto mmm_rows_phase = [&](uint32_t w) {
    std::vector<cq15> aq(cfg.n_rx), crow(cfg.n_beams);
    const auto [r0, r1] =
        Thread_pool::slice(static_cast<uint64_t>(cfg.n_symb) * n, w, workers);
    for (uint64_t item = r0; item < r1; ++item) {
      const uint32_t s = static_cast<uint32_t>(item / n);
      const uint32_t scx = static_cast<uint32_t>(item % n);
      for (uint32_t r = 0; r < cfg.n_rx; ++r) {
        aq[r] = common::to_cq15(freq[s][r][scx] * s_grid);
      }
      fixed::mmm_rows(aq.data(), bq.data(), crow.data(), cfg.n_rx,
                      cfg.n_beams, 0, 1);
      for (uint32_t q = 0; q < cfg.n_beams; ++q) {
        front.beams[s][static_cast<size_t>(scx) * cfg.n_beams + q] =
            common::to_cd(crow[q]) / s_grid;
      }
    }
  };

  if (n_fft >= workers) {
    // Enough transforms to hand each worker its own.
    pool_.run([&](uint32_t w) {
      std::vector<cq15> buf(n), fout(n);
      const auto [f0, f1] = Thread_pool::slice(n_fft, w, workers);
      for (uint64_t t = f0; t < f1; ++t) {
        const uint32_t s = static_cast<uint32_t>(t / cfg.n_rx);
        const uint32_t r = static_cast<uint32_t>(t % cfg.n_rx);
        const auto& x = sc.antenna_time(s, r);
        for (uint32_t i = 0; i < n; ++i) {
          buf[i] = common::to_cq15(x[i] * s_time);
        }
        fixed::fft_transform(plan, buf.data(), fout.data(), simd);
        for (uint32_t i = 0; i < n; ++i) {
          freq[s][r][i] = common::to_cd(fout[i]) / ds;
        }
      }
      bar.arrive_and_wait();
      mmm_rows_phase(w);
    });
  } else {
    // Cooperative FFT: every transform is tiled across all workers,
    // butterfly ranges per stage with a barrier in between (each stage's
    // butterflies touch disjoint elements).
    std::vector<cq15> buf(n), fout(n);
    pool_.run([&](uint32_t w) {
      const auto [e0, e1] = Thread_pool::slice(n, w, workers);
      const auto [g0, g1] = Thread_pool::slice(n / 4, w, workers);
      for (uint64_t t = 0; t < n_fft; ++t) {
        const uint32_t s = static_cast<uint32_t>(t / cfg.n_rx);
        const uint32_t r = static_cast<uint32_t>(t % cfg.n_rx);
        const auto& x = sc.antenna_time(s, r);
        for (uint64_t i = e0; i < e1; ++i) {
          buf[i] = common::to_cq15(x[i] * s_time);
        }
        bar.arrive_and_wait();
        for (uint32_t k = 0; k < plan.geom.stages; ++k) {
          fixed::fft_stage(plan, k, buf.data(), fout.data(),
                           static_cast<uint32_t>(g0),
                           static_cast<uint32_t>(g1), simd);
          bar.arrive_and_wait();
        }
        for (uint64_t i = e0; i < e1; ++i) {
          freq[s][r][i] = common::to_cd(fout[i]) / ds;
        }
        bar.arrive_and_wait();  // buf/fout are reused by the next transform
      }
      mmm_rows_phase(w);
    });
  }
  return front;
}

Slot_result Fixed_backend::run_back(const Pipeline& p,
                                    const phy::Uplink_scenario& sc,
                                    Slot_front front) {
  const auto& cfg = sc.config();
  const uint32_t n = cfg.fft_size;
  const uint32_t n_b = cfg.n_beams;
  const uint32_t n_l = cfg.n_ue;
  const Stage_spec& che_spec =
      require(p, Stage_role::che, "pipeline needs a che stage");
  const Stage_spec& ne_spec =
      require(p, Stage_role::ne, "pipeline needs an ne stage");
  const Stage_spec& gram_spec =
      require(p, Stage_role::gram, "pipeline needs a gram stage");
  const Stage_spec& mimo_spec =
      require(p, Stage_role::mimo_solve, "pipeline needs a mimo_solve stage");
  const double s_che = che_spec.rescale;
  const double s_est = ne_spec.rescale;
  const double s_rhs = gram_spec.rescale;
  const bool simd = simd_active();
  const uint32_t workers = pool_.workers();
  common::Counting_barrier bar(workers);

  Slot_result out;
  out.backend = "fixed";
  mirror_sim_stage_runs(p, cfg, out);

  // ---- channel estimation on the pilot symbols ------------------------
  std::vector<std::vector<cq15>> pilots_q(n_l), y_sep_q(n_l);
  for (uint32_t l = 0; l < n_l; ++l) {
    pilots_q[l] = quantize(sc.pilot(l), 1.0);
    y_sep_q[l] = quantize(sc.pilot_obs_beam(l), s_che);
  }
  const size_t h_elems = static_cast<size_t>(n) * n_b * n_l;
  std::vector<cq15> h_q(h_elems);
  std::vector<cd> h_hat(h_elems);  // [sc][b][l]
  pool_.run([&](uint32_t w) {
    const auto [lo, hi] = Thread_pool::slice(n, w, workers);
    fixed::che_subcarriers(y_sep_q, pilots_q, h_q.data(), n_b, n_l,
                           static_cast<uint32_t>(lo),
                           static_cast<uint32_t>(hi), simd);
    bar.arrive_and_wait();
    const auto [e0, e1] = Thread_pool::slice(h_elems, w, workers);
    for (size_t i = e0; i < e1; ++i) {
      h_hat[i] = common::to_cd(h_q[i]) / s_che;
    }
  });

  // ---- noise estimation ------------------------------------------------
  // The sim NE folds one uint32 contribution per core block, so the
  // estimate depends on the *simulated* partition: replay exactly that
  // many blocks regardless of the host worker count.
  const std::vector<cq15> y_est = quantize(front.beams[0], s_est);
  const std::vector<cq15> h_est = quantize(h_hat, s_est);
  uint32_t ne_cores = ne_spec.run.params.getu("cores", 0);
  if (ne_cores == 0) ne_cores = p.cluster().n_cores();
  std::vector<uint32_t> contribs(ne_cores);
  pool_.parallel_for(ne_cores, [&](uint64_t idx) {
    const fixed::Sc_block blk =
        fixed::sc_block(n, ne_cores, static_cast<uint32_t>(idx));
    const int64_t partial = fixed::ne_partial(
        y_est.data(), h_est.data(), pilots_q, n_b, n_l, blk.lo, blk.hi);
    contribs[idx] = static_cast<uint32_t>(
        std::max<int64_t>(0, partial >> common::q15_frac_bits));
  });
  uint32_t raw = 0;  // wraps mod 2^32 like the simulated amo_add word
  for (const uint32_t c : contribs) raw += c;
  const double count = static_cast<double>(n) * n_b;
  const double sigma2_hat =
      static_cast<double>(raw) /
      (count * static_cast<double>(1 << common::q15_frac_bits)) /
      (s_est * s_est);
  out.sigma2_hat = sigma2_hat;

  // ---- MIMO per data symbol: G = H^H H + sigma2 I, Cholesky, solves ----
  const std::vector<cq15> gh_q = quantize(h_hat, 1.0);
  const cq15 sigma{common::to_q15(sigma2_hat), 0};
  const uint32_t batch = mimo_spec.run.params.getu("symb_batch", 1);
  out.bits.resize(n_l);
  std::vector<std::vector<cd>> eq(n_l);  // equalized symbols
  double evm_acc = 0.0;
  uint64_t evm_cnt = 0;

  std::vector<std::vector<cq15>> y_q(batch), g_syms(batch), rhs_syms(batch);
  std::vector<cq15> xs(static_cast<size_t>(batch) * n * n_l);
  for (uint32_t s0 = cfg.n_pilot_symb; s0 < cfg.n_symb; s0 += batch) {
    for (uint32_t b = 0; b < batch; ++b) {
      y_q[b] = quantize(front.beams[s0 + b], s_rhs);
      g_syms[b].assign(static_cast<size_t>(n) * n_l * n_l, cq15{});
      rhs_syms[b].assign(static_cast<size_t>(n) * n_l, cq15{});
    }
    // One (symbol-in-batch, sub-carrier) problem per item: Gramian +
    // matched filter, then Cholesky + both substitutions.  Items are
    // independent, so no barrier is needed between the two steps.
    pool_.parallel_for(
        static_cast<uint64_t>(batch) * n, [&](uint64_t item) {
          const uint32_t b = static_cast<uint32_t>(item / n);
          const uint32_t scx = static_cast<uint32_t>(item % n);
          fixed::gram_subcarriers(gh_q.data(), y_q[b].data(), sigma,
                                  g_syms[b].data(), rhs_syms[b].data(), n_b,
                                  n_l, scx, scx + 1);
          cq15 lmat[64];
          fixed::cholesky(
              g_syms[b].data() + static_cast<size_t>(scx) * n_l * n_l, lmat,
              n_l);
          fixed::trisolve(lmat,
                          rhs_syms[b].data() + static_cast<size_t>(scx) * n_l,
                          xs.data() + item * n_l, n_l);
        });

    // Serial epilogue in the sim backend's exact loop order (the EVM sum
    // is a float reduction; order is part of the contract).
    for (uint32_t b = 0; b < batch; ++b) {
      const uint32_t s = s0 + b;
      for (uint32_t scx = 0; scx < n; ++scx) {
        const std::vector<cq15> xq(
            xs.begin() + (static_cast<size_t>(b) * n + scx) * n_l,
            xs.begin() + (static_cast<size_t>(b) * n + scx + 1) * n_l);
        const auto x = dequantize(xq, s_rhs);
        for (uint32_t l = 0; l < n_l; ++l) {
          const cd sym = x[l] / cfg.ue_power;
          eq[l].push_back(sym);
          const cd want = sc.tx_grid(l, s)[scx] / cfg.ue_power;
          evm_acc += std::norm(sym - want);
          ++evm_cnt;
        }
      }
    }
  }
  out.evm = std::sqrt(evm_acc / static_cast<double>(evm_cnt));

  uint64_t nerr = 0, nbits = 0;
  for (uint32_t l = 0; l < n_l; ++l) {
    out.bits[l] = phy::qam_demodulate(cfg.qam, eq[l]);
    const auto& want = sc.tx_bits(l);
    PP_CHECK(want.size() == out.bits[l].size(), "payload size mismatch");
    for (size_t i = 0; i < want.size(); ++i) {
      nerr += want[i] != out.bits[l][i];
      ++nbits;
    }
  }
  out.ber = static_cast<double>(nerr) / static_cast<double>(nbits);
  out.symbols = std::move(eq);
  return out;
}

}  // namespace pp::runtime
