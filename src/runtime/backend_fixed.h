// Fixed-point host backend: the sim backend's Q1.15 arithmetic at host
// speed.
//
// Fixed_backend replays the exact marshaling of Sim_backend - the same
// quantize/dequantize round-trips, block-rescaling factors and host-side
// loop order - but executes each kernel's functional Q15 math through the
// host subsystem in src/fixed/ instead of the cycle-approximate simulator.
// Because the simulated kernels separate functional values from timing
// tokens, the result is **bit-identical** to the sim backend: same payload
// bits, same EVM/BER doubles, same sigma2_hat - an exact cross-check where
// the double-precision backends only offer tolerances.
//
// Parallel structure (common::Thread_pool, like Parallel_backend):
//
//   OFDM FFT     per-(symbol, antenna) transforms; with fewer transforms
//                than workers each FFT is computed cooperatively, butterfly
//                ranges tiled per stage with a Counting_barrier
//   beamforming  per-(symbol, sub-carrier) output rows of the MMM
//   CHE          per-sub-carrier estimate rows
//   NE           one Q2.30 partial per *simulated core block* (the sim's
//                uint32 fold is partition-dependent, so the simulated
//                partition is replayed no matter the worker count), folded
//                serially in block order
//   LMMSE MIMO   per-sub-carrier Gramians, per-(symbol, sub-carrier)
//                Cholesky + substitutions; EVM/BER epilogue serial in slot
//                order
//
// Every parallel tile performs exact integer arithmetic on disjoint
// outputs, so the result is independent of the worker count - pinned at
// 1/2/8 workers by tests/test_backend_fixed.cpp.  SIMD (src/fixed/simd.h)
// is on by default where the host supports it; `use_simd = false` forces
// the scalar paths (bit-identical by contract, used by the parity tests).
#ifndef PUSCHPOOL_RUNTIME_BACKEND_FIXED_H
#define PUSCHPOOL_RUNTIME_BACKEND_FIXED_H

#include "common/thread_pool.h"
#include "runtime/backend.h"

namespace pp::runtime {

class Fixed_backend final : public Backend {
 public:
  // workers: 0 = one per hardware thread (the pool persists across slots).
  explicit Fixed_backend(uint32_t workers = 0, bool use_simd = true)
      : pool_(workers), simd_(use_simd) {}

  std::string_view name() const override { return "fixed"; }
  bool cycle_accurate() const override { return false; }
  uint32_t workers() const { return pool_.workers(); }
  // True when the vector paths are both requested and available on this
  // host; false means every kernel runs its scalar loops.
  bool simd_active() const;

  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  // Stage-split entry points (scheduler stage pipelining), cut at the beam
  // grid like the other host backends: run_back(run_front()) is
  // bit-identical to run_slot().
  bool can_split() const override { return true; }
  Slot_front run_front(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  Slot_result run_back(const Pipeline& p, const phy::Uplink_scenario& sc,
                       Slot_front front) override;

 private:
  common::Thread_pool pool_;
  bool simd_;
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_BACKEND_FIXED_H
