// Fixed-point host backend: the sim backend's Q1.15 arithmetic at host
// speed.
//
// Fixed_backend replays the exact marshaling of Sim_backend - the same
// quantize/dequantize round-trips, block-rescaling factors and host-side
// loop order - but executes each kernel's functional Q15 math through the
// host subsystem in src/fixed/ instead of the cycle-approximate simulator.
// Because the simulated kernels separate functional values from timing
// tokens, the result is **bit-identical** to the sim backend: same payload
// bits, same EVM/BER doubles, same sigma2_hat - an exact cross-check where
// the double-precision backends only offer tolerances.
//
// Parallel structure (common::Thread_pool, like Parallel_backend):
//
//   OFDM FFT     per-(symbol, antenna) transforms; with fewer transforms
//                than workers each FFT is computed cooperatively, butterfly
//                ranges tiled per stage with a Counting_barrier
//   beamforming  per-(symbol, sub-carrier) output rows of the MMM
//   CHE          per-sub-carrier estimate rows
//   NE           one Q2.30 partial per *simulated core block* (the sim's
//                uint32 fold is partition-dependent, so the simulated
//                partition is replayed no matter the worker count), folded
//                serially in block order
//   LMMSE MIMO   per-sub-carrier Gramians, per-(symbol, sub-carrier)
//                Cholesky + substitutions; EVM/BER epilogue serial in slot
//                order
//
// Every parallel tile performs exact integer arithmetic on disjoint
// outputs, so the result is independent of the worker count - pinned at
// 1/2/8 workers by tests/test_backend_fixed.cpp.  SIMD (src/fixed/simd.h)
// is on by default where the host supports it; `use_simd = false` forces
// the scalar paths (bit-identical by contract, used by the parity tests).
#ifndef PUSCHPOOL_RUNTIME_BACKEND_FIXED_H
#define PUSCHPOOL_RUNTIME_BACKEND_FIXED_H

#include "common/complex16.h"
#include "common/thread_pool.h"
#include "runtime/backend.h"

namespace pp::runtime {

class Fixed_backend final : public Backend {
 public:
  // workers: 0 = one per hardware thread (the pool persists across slots).
  explicit Fixed_backend(uint32_t workers = 0, bool use_simd = true)
      : pool_(workers), simd_(use_simd), fft_ws_(pool_.workers()) {}

  std::string_view name() const override { return "fixed"; }
  bool cycle_accurate() const override { return false; }
  uint32_t workers() const { return pool_.workers(); }
  // True when the vector paths are both requested and available on this
  // host; false means every kernel runs its scalar loops.
  bool simd_active() const;

  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  void run_slot_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                     Slot_result& out) override;
  // Stage-split entry points (scheduler stage pipelining), cut at the beam
  // grid like the other host backends: run_back(run_front()) is
  // bit-identical to run_slot().
  bool can_split() const override { return true; }
  void run_front_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                      Slot_front& out) override;
  void run_back_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                     const Slot_front& front, Slot_result& out) override;
  size_t workspace_bytes() const override;

 private:
  void front_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                  common::Ws_grid<phy::cd>& beams);
  void back_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                 const common::Ws_grid<phy::cd>& beams, Slot_result& out);

  common::Thread_pool pool_;
  bool simd_;

  // Per-worker marshaling scratch (FFT staging buffers + one quantized MMM
  // input/output row); workers touch only their own entry inside a
  // dispatch, so no synchronization beyond the pool's join is needed.
  struct Worker_ws {
    std::vector<common::cq15> buf, fout, aq, crow;
    size_t footprint_bytes() const {
      return (buf.capacity() + fout.capacity() + aq.capacity() +
              crow.capacity()) *
             sizeof(common::cq15);
    }
  };

  // Slot workspaces (grow-then-stabilize; every reused element either fully
  // overwritten per slot or explicitly cleared before the kernels run).
  std::vector<Worker_ws> fft_ws_;            // one per worker
  std::vector<common::cq15> coop_buf_, coop_fout_;  // cooperative-FFT shared
  std::vector<common::cq15> bq_;             // quantized codebook
  common::Ws_grid<phy::cd> freq_;            // [symb * rx][sc] spectra
  common::Ws_grid<phy::cd> beams_;           // fused-path beam grid
  // Back half: CHE inputs/outputs, NE operands, MIMO batch staging.
  std::vector<std::vector<common::cq15>> pilots_q_, y_sep_q_;  // grow-only
  std::vector<common::cq15> h_q_;
  std::vector<phy::cd> h_hat_;
  std::vector<common::cq15> y_est_, h_est_;
  std::vector<uint32_t> contribs_;
  std::vector<common::cq15> gh_q_;
  std::vector<std::vector<common::cq15>> y_q_, g_syms_, rhs_syms_;  // per batch
  std::vector<common::cq15> xs_;
  std::vector<phy::cd> x_;  // epilogue per-sub-carrier dequantize
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_BACKEND_FIXED_H
