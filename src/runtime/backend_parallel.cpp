// Functional slot execution on the double-precision host models, split
// across a worker pool with the paper's per-kernel core mapping (§IV).
//
// This file runs phy::golden_receive()'s stage sequence through the same
// range-parameterized sub-steps the serial receiver is built from
// (phy::che_rows / ne_terms / mimo_items and the ref:: tiled sub-kernels),
// so the two paths share one implementation of every stage's arithmetic.
// Every parallel region follows the same recipe: workers own
// statically-sliced disjoint output tiles (common::Thread_pool::slice), a
// tile's arithmetic is independent of the partition, and floating-point
// reductions are never accumulated concurrently - per-element terms are
// stored and summed serially in slot order afterwards.  The result is
// therefore bit-identical to Reference_backend at any worker count;
// tests/test_backend_parallel.cpp pins that over a scenario grid.
#include <cmath>

#include "baseline/reference.h"
#include "common/thread_pool.h"
#include "phy/qam.h"
#include "runtime/backend_parallel.h"

namespace pp::runtime {

namespace {

using phy::cd;
using common::Thread_pool;

// OFDM FFT of one symbol: the symbol's n_rx antenna transforms, each
// reproducing ref::fft() + the sqrt(N) compensation of the 1/sqrt(N)
// transmit normalization exactly (scale by 1/N, then by sqrt(N), as two
// operations).  `freq` is reused across symbols, so the backend holds one
// symbol's spectra at a time - the serial receiver's footprint.
void run_fft_symbol(Thread_pool& pool, const phy::Uplink_scenario& sc,
                    uint32_t s, std::vector<std::vector<cd>>& freq) {
  const auto& cfg = sc.config();
  const double fft_comp = std::sqrt(static_cast<double>(cfg.fft_size));
  const size_t nfft = cfg.fft_size;
  const uint32_t workers = pool.workers();

  if (cfg.n_rx >= workers) {
    // Per-antenna fan-out: each worker owns whole transforms, running the
    // exact serial-receiver sequence (ref::fft_into reusing the row's
    // capacity, then the compensation multiply).
    pool.run([&](uint32_t w) {
      const auto [first, last] = Thread_pool::slice(cfg.n_rx, w, workers);
      for (uint64_t r = first; r < last; ++r) {
        std::vector<cd>& a = freq[r];
        ref::fft_into(sc.antenna_time(s, static_cast<uint32_t>(r)), a);
        for (auto& v : a) v *= fft_comp;
      }
    });
    return;
  }

  // Fewer antennas than workers (few large FFTs): compute each transform
  // cooperatively - butterfly blocks of one stage tiled across all workers,
  // a barrier between stages (the paper's FFT mapping).
  common::Counting_barrier barrier(workers);
  for (uint32_t r = 0; r < cfg.n_rx; ++r) {
    std::vector<cd>& a = freq[r];
    a = sc.antenna_time(s, r);
    ref::fft_bit_reverse(a);
    pool.run([&](uint32_t w) {
      for (size_t len = 2; len <= nfft; len <<= 1) {
        const auto [first, last] = Thread_pool::slice(nfft / len, w, workers);
        ref::fft_stage_blocks(a, len, false, first, last);
        barrier.arrive_and_wait();
      }
      const auto [first, last] = Thread_pool::slice(nfft, w, workers);
      ref::fft_scale(a, first, last);
      for (size_t j = first; j < last; ++j) a[j] *= fft_comp;
    });
  }
}

// Beamforming of one symbol: the matched-filter MMM beams = F^T * B,
// row-block tiled over sub-carriers.  The transpose gather is pure data
// movement; the arithmetic lives in ref::matmul_rows, whose per-row
// accumulation order matches the serial receiver's antenna loop.  `ft` is
// a shared scratch reused across symbols: within a dispatch each worker
// reads only the rows it wrote itself, and run() joins before the next
// symbol reuses the buffer.
void run_beamform_symbol(Thread_pool& pool, const phy::Uplink_scenario& sc,
                         const std::vector<std::vector<cd>>& freq,
                         std::vector<cd>& ft, std::span<cd> beams_s) {
  const auto& cfg = sc.config();
  const uint32_t workers = pool.workers();
  pool.run([&](uint32_t w) {
    const auto [first, last] = Thread_pool::slice(cfg.n_sc, w, workers);
    phy::gather_subcarrier_rows(freq, ft, cfg.n_rx, first, last);
    ref::matmul_rows(ft, sc.codebook(), beams_s, cfg.n_sc, cfg.n_rx,
                     cfg.n_beams, first, last);
  });
}

// Channel-estimation stage: per-(UE, sub-carrier) row tiles of
// phy::che_rows (every row of h_hat is written, so the reused buffer
// needs no clearing).
void run_che_stage(Thread_pool& pool, const phy::Uplink_scenario& sc,
                   std::vector<cd>& h_hat) {
  const auto& cfg = sc.config();
  common::ws_grow(h_hat,
                  static_cast<size_t>(cfg.n_sc) * cfg.n_beams * cfg.n_ue);

  const uint64_t n_rows = static_cast<uint64_t>(cfg.n_ue) * cfg.n_sc;
  pool.run([&](uint32_t w) {
    const auto [first, last] = Thread_pool::slice(n_rows, w, pool.workers());
    phy::che_rows(sc, h_hat, first, last);
  });
}

// Noise-estimation stage: per-cell pilot residuals (phy::ne_terms) computed
// in parallel, summed serially in (symbol, sub-carrier, beam) order so the
// estimate is bit-identical to the serial accumulation.
double run_ne_stage(Thread_pool& pool, const phy::Uplink_scenario& sc,
                    const common::Ws_grid<cd>& beams,
                    const std::vector<cd>& h_hat,
                    std::vector<double>& terms) {
  const auto& cfg = sc.config();
  const uint64_t n_items = static_cast<uint64_t>(cfg.n_pilot_symb) * cfg.n_sc;
  common::ws_grow(terms, n_items * cfg.n_beams);
  pool.run([&](uint32_t w) {
    const auto [first, last] = Thread_pool::slice(n_items, w, pool.workers());
    phy::ne_terms(sc, beams, h_hat, terms, first, last);
  });
  return phy::mean_of_terms(terms);
}

// MIMO stage: per-UE-batch LMMSE - each (data symbol, sub-carrier) item is
// one Gram + Cholesky + forward/backward substitution problem
// (phy::mimo_items -> ref::lmmse_into on the worker's private Mimo_ws),
// items statically sliced across workers.  Equalized symbols land at their
// slot index; the EVM reduction happens serially afterwards.
void run_mimo_stage(Thread_pool& pool, const phy::Uplink_scenario& sc,
                    const common::Ws_grid<cd>& beams,
                    const std::vector<cd>& h_hat, double sigma2_hat,
                    std::vector<std::vector<cd>>& symbols,
                    std::vector<double>& evm_terms,
                    std::vector<phy::Mimo_ws>& mimo_ws) {
  const auto& cfg = sc.config();
  const uint32_t n_data = cfg.n_symb - cfg.n_pilot_symb;
  const uint64_t n_items = static_cast<uint64_t>(n_data) * cfg.n_sc;

  symbols.resize(cfg.n_ue);
  for (auto& s : symbols) common::ws_grow(s, n_items);
  common::ws_grow(evm_terms, n_items * cfg.n_ue);

  pool.run([&](uint32_t w) {
    const auto [first, last] = Thread_pool::slice(n_items, w, pool.workers());
    phy::mimo_items(sc, beams, h_hat, sigma2_hat, symbols, evm_terms,
                    mimo_ws[w], first, last);
  });
}

}  // namespace

Slot_result Parallel_backend::run_slot(const Pipeline& p,
                                       const phy::Uplink_scenario& sc) {
  Slot_result out;
  run_slot_into(p, sc, out);
  return out;
}

void Parallel_backend::run_slot_into(const Pipeline& p,
                                     const phy::Uplink_scenario& sc,
                                     Slot_result& out) {
  front_into(sc, beams_);
  back_into(p, sc, beams_, out);
}

void Parallel_backend::run_front_into(const Pipeline&,
                                      const phy::Uplink_scenario& sc,
                                      Slot_front& out) {
  front_into(sc, out.beams);
}

void Parallel_backend::run_back_into(const Pipeline& p,
                                     const phy::Uplink_scenario& sc,
                                     const Slot_front& front,
                                     Slot_result& out) {
  back_into(p, sc, front.beams, out);
}

void Parallel_backend::front_into(const phy::Uplink_scenario& sc,
                                  common::Ws_grid<phy::cd>& beams) {
  const auto& cfg = sc.config();

  // 1) OFDM demodulation + 2) beamforming, fused per symbol (the serial
  // receiver's memory footprint: one symbol's spectra live at a time).
  // Every beam row is fully written by matmul_rows over the workers'
  // disjoint row tiles.
  beams.shape(cfg.n_symb, static_cast<size_t>(cfg.n_sc) * cfg.n_beams);
  if (freq_.size() < cfg.n_rx) freq_.resize(cfg.n_rx);
  common::ws_grow(ft_, static_cast<size_t>(cfg.n_sc) * cfg.n_rx);
  for (uint32_t s = 0; s < cfg.n_symb; ++s) {
    run_fft_symbol(pool_, sc, s, freq_);
    run_beamform_symbol(pool_, sc, freq_, ft_, beams.row(s));
  }
}

void Parallel_backend::back_into(const Pipeline& p,
                                 const phy::Uplink_scenario& sc,
                                 const common::Ws_grid<phy::cd>& beams,
                                 Slot_result& out) {
  const auto& cfg = sc.config();

  // 3) Channel estimation + 4) noise estimation.
  run_che_stage(pool_, sc, h_hat_);
  const double sigma2_hat = run_ne_stage(pool_, sc, beams, h_hat_, sig_terms_);

  // 5) MIMO LMMSE + EVM against the transmitted constellation, straight
  // into the caller's result storage.
  run_mimo_stage(pool_, sc, beams, h_hat_, sigma2_hat, out.symbols,
                 evm_terms_, mimo_ws_);

  // 6) Demodulation (parallel per UE) + the shared serial epilogue.
  out.backend = "parallel";
  out.bits.resize(cfg.n_ue);
  pool_.parallel_for(cfg.n_ue, [&](uint64_t l) {
    phy::qam_demodulate_into(cfg.qam, out.symbols[l], out.bits[l]);
  });
  out.evm = phy::evm_from_terms(evm_terms_);
  out.ber = phy::payload_ber(sc, out.bits);
  out.sigma2_hat = sigma2_hat;
  mirror_sim_stage_runs(p, cfg, out);
}

size_t Parallel_backend::workspace_bytes() const {
  size_t b = common::ws_rows_footprint(freq_) + ft_.capacity() * sizeof(cd) +
             beams_.footprint_bytes() + h_hat_.capacity() * sizeof(cd) +
             (sig_terms_.capacity() + evm_terms_.capacity()) * sizeof(double);
  for (const auto& ws : mimo_ws_) b += ws.footprint_bytes();
  return b;
}

}  // namespace pp::runtime
