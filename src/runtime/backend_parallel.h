// Intra-slot parallel host backend (the paper's core mapping on the host).
//
// Parallel_backend runs the same double-precision receive chain as
// Reference_backend, but splits every kernel across a persistent
// common::Thread_pool the way §IV maps it onto cores:
//
//   OFDM FFT     per-symbol fan-out over the antenna transforms; when there
//                are fewer antennas than workers, each FFT is instead
//                computed cooperatively - butterfly blocks of one stage
//                tiled across all workers with a Counting_barrier between
//                stages (ref::fft_stage_blocks)
//   beamforming  the matched-filter MMM, row-block tiled over sub-carriers
//                (ref::matmul_rows)
//   CHE / NE     per-(UE, sub-carrier) row tiles / per-element residuals
//   LMMSE MIMO   per-UE-batch Gram + Cholesky + forward/backward
//                substitution, batches of (symbol, sub-carrier) problems
//                statically sliced across workers (ref::lmmse)
//
// Determinism contract (pinned by tests/test_backend_parallel.cpp and
// documented in docs/DETERMINISM.md): the result is bit-identical to
// Reference_backend for any worker count.  Workers own statically-sliced
// disjoint output tiles whose arithmetic matches the serial loop exactly,
// and every floating-point reduction (EVM, noise estimate) is accumulated
// serially in slot order after the parallel region.
#ifndef PUSCHPOOL_RUNTIME_BACKEND_PARALLEL_H
#define PUSCHPOOL_RUNTIME_BACKEND_PARALLEL_H

#include "common/thread_pool.h"
#include "runtime/backend.h"

namespace pp::runtime {

class Parallel_backend final : public Backend {
 public:
  // 0 = one worker per hardware thread.  The pool persists across
  // run_slot() calls, so per-slot dispatch cost stays at one wake-up.
  explicit Parallel_backend(uint32_t workers = 0)
      : pool_(workers), mimo_ws_(pool_.workers()) {}

  std::string_view name() const override { return "parallel"; }
  bool cycle_accurate() const override { return false; }
  uint32_t workers() const { return pool_.workers(); }

  Slot_result run_slot(const Pipeline& p,
                       const phy::Uplink_scenario& sc) override;
  void run_slot_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                     Slot_result& out) override;
  // Stage-split entry points (scheduler stage pipelining): the same code
  // paths as run_slot(), cut at the beam-grid boundary, so
  // run_back(run_front()) stays bit-identical to run_slot().
  bool can_split() const override { return true; }
  void run_front_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                      Slot_front& out) override;
  void run_back_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                     const Slot_front& front, Slot_result& out) override;
  size_t workspace_bytes() const override;

 private:
  void front_into(const phy::Uplink_scenario& sc,
                  common::Ws_grid<phy::cd>& beams);
  void back_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                 const common::Ws_grid<phy::cd>& beams, Slot_result& out);

  common::Thread_pool pool_;

  // Slot workspaces (grow-then-stabilize; every buffer fully overwritten
  // per slot).  Front half: per-antenna spectra + the beamforming
  // transpose; back half: channel estimate, NE/EVM term arrays, and one
  // MIMO solver workspace per pool worker (workers write disjoint item
  // tiles but each needs private solver scratch).
  std::vector<std::vector<phy::cd>> freq_;  // grow-only outer
  std::vector<phy::cd> ft_;
  common::Ws_grid<phy::cd> beams_;  // fused-path beam grid
  std::vector<phy::cd> h_hat_;
  std::vector<double> sig_terms_;
  std::vector<double> evm_terms_;
  std::vector<phy::Mimo_ws> mimo_ws_;  // one per worker
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_BACKEND_PARALLEL_H
