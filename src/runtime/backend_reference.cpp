// Functional slot execution on the double-precision host models.
//
// Runs the same logical stage sequence as the sim backend - OFDM FFT,
// beamforming, CHE, NE, LMMSE MIMO - but with the baseline/ golden models
// in double precision.  No cycles are reported (the backend is not
// cycle-accurate); per-stage `runs` mirror the kernel launch counts the
// sim backend performs for the same pipeline (FFT gang batching and
// Cholesky symbol batching included), so the two results line up stage by
// stage.  This is the golden functional cross-check and the fast path for
// scenario sweeps: a slot that takes minutes on the simulator scores in
// milliseconds here.  mirror_sim_stage_runs() is shared with the
// intra-slot-parallel host backend (backend_parallel.cpp), which must stay
// bit-identical to this one.
#include <cmath>

#include "baseline/reference.h"
#include "common/check.h"
#include "runtime/backend.h"

namespace pp::runtime {

void mirror_sim_stage_runs(const Pipeline& p, const phy::Uplink_config& cfg,
                           Slot_result& out) {
  const uint32_t n_data_symb = cfg.n_symb - cfg.n_pilot_symb;
  out.stages.resize(p.stages().size());
  for (size_t i = 0; i < p.stages().size(); ++i) {
    const auto& spec = p.stages()[i];
    auto& st = out.stages[i];
    st.name = spec.name;
    // Slot_results are reused across slots by the workspace-checkout
    // serving loop: clear the counters a host backend never writes so a
    // recycled result matches a fresh one bit for bit.
    st.cycles = 0;
    st.instrs = 0;
    st.stall.fill(0);
    switch (spec.role) {
      case Stage_role::fft: {
        const uint32_t inst = resolve_fft_gangs(p.cluster(), cfg.fft_size,
                                                spec.run.params, cfg.n_rx);
        st.runs = cfg.n_symb * ((cfg.n_rx + inst - 1) / inst);
        break;
      }
      case Stage_role::beamform:
        st.runs = cfg.n_symb;
        break;
      case Stage_role::che:
      case Stage_role::ne:
        st.runs = 1;
        break;
      case Stage_role::gram:
        st.runs = n_data_symb;
        break;
      case Stage_role::mimo_solve: {
        // One decomposition + one solve launch per symbol batch, under the
        // same divisibility rule the sim backend enforces.
        const uint32_t batch = spec.run.params.getu("symb_batch", 1);
        PP_CHECK(batch >= 1 && n_data_symb % batch == 0,
                 "chol symb_batch must divide the data-symbol count");
        st.runs = 2 * (n_data_symb / batch);
        break;
      }
      case Stage_role::custom:
        st.runs = 0;
        break;
    }
  }
}

Slot_result Reference_backend::run_slot(const Pipeline& p,
                                        const phy::Uplink_scenario& sc) {
  Slot_result out;
  run_slot_into(p, sc, out);
  return out;
}

void Reference_backend::run_slot_into(const Pipeline& p,
                                      const phy::Uplink_scenario& sc,
                                      Slot_result& out) {
  // Fused path through the backend-owned workspaces: front half into the
  // member beam grid, back half straight into the caller's result.
  phy::golden_front_into(sc, beams_, front_ws_);
  out.backend = "reference";
  phy::golden_back_into(sc, beams_, back_ws_, out.bits, out.symbols, out.evm,
                        out.ber, out.sigma2_hat);
  mirror_sim_stage_runs(p, sc.config(), out);
}

void Reference_backend::run_front_into(const Pipeline&,
                                       const phy::Uplink_scenario& sc,
                                       Slot_front& out) {
  phy::golden_front_into(sc, out.beams, front_ws_);
}

void Reference_backend::run_back_into(const Pipeline& p,
                                      const phy::Uplink_scenario& sc,
                                      const Slot_front& front,
                                      Slot_result& out) {
  out.backend = "reference";
  phy::golden_back_into(sc, front.beams, back_ws_, out.bits, out.symbols,
                        out.evm, out.ber, out.sigma2_hat);
  mirror_sim_stage_runs(p, sc.config(), out);
}

size_t Reference_backend::workspace_bytes() const {
  return front_ws_.footprint_bytes() + back_ws_.footprint_bytes() +
         beams_.footprint_bytes();
}

}  // namespace pp::runtime
