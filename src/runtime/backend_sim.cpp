// Functional slot execution on the cycle-approximate simulated cluster.
//
// Port of the original pusch::run_sim_uplink, driven by the Pipeline
// description: stage kernels come from the registry, block-rescaling
// factors and Cholesky symbol-batching come from the Stage_specs, and all
// kernels are driven through the uniform runtime::Kernel lifecycle.  Between
// kernel launches the host only marshals data and applies power-of-two
// block rescaling (the role DMA + block-floating-point shifts play in a
// real deployment).
#include <cmath>

#include "runtime/backend.h"
#include "runtime/registry.h"
#include "runtime/workspace.h"
#include "sim/machine.h"

namespace pp::runtime {

namespace {

using common::cq15;
using phy::cd;

void accumulate(Slot_result::Stage& st, const sim::Kernel_report& r) {
  st.cycles += r.cycles;
  st.instrs += r.instrs;
  for (size_t k = 0; k < sim::n_stall_kinds; ++k) st.stall[k] += r.stall[k];
  ++st.runs;
}

const Stage_spec& require(const Pipeline& p, Stage_role role,
                          const char* what) {
  const Stage_spec* s = p.find(role);
  PP_CHECK(s != nullptr && !s->run.kernel.empty(), what);
  return *s;
}

}  // namespace

// Host-side marshaling workspace: the quantize staging buffers and the
// dequantized grids the host keeps between kernel launches.  Only this
// marshaling reuses storage across slots - the sim::Machine (simulated
// cores, L1, kernel instances) is rebuilt per slot by design, so the sim
// backend stays allocating and the zero-steady-state gate applies to the
// host backends only (docs/DETERMINISM.md section 10).
struct Sim_backend::Ws {
  std::vector<cq15> bq;                 // quantized codebook
  std::vector<cq15> q;                  // generic bind staging (bind copies)
  std::vector<cd> a;                    // beamform transpose gather
  std::vector<std::vector<cd>> freq;    // grow-only outer, per antenna
  std::vector<std::vector<cd>> beams;   // grow-only outer, per symbol
  std::vector<cd> h_hat;
  std::vector<std::vector<cq15>> g_syms, rhs_syms;  // per batch symbol

  size_t footprint_bytes() const {
    return (bq.capacity() + q.capacity()) * sizeof(cq15) +
           (a.capacity() + h_hat.capacity()) * sizeof(cd) +
           common::ws_rows_footprint(freq) + common::ws_rows_footprint(beams) +
           common::ws_rows_footprint(g_syms) +
           common::ws_rows_footprint(rhs_syms);
  }
};

Sim_backend::Sim_backend() : ws_(std::make_unique<Ws>()) {}
Sim_backend::~Sim_backend() = default;

size_t Sim_backend::workspace_bytes() const { return ws_->footprint_bytes(); }

Slot_result Sim_backend::run_slot(const Pipeline& p,
                                  const phy::Uplink_scenario& sc) {
  const auto& cfg = sc.config();
  const auto& cluster = p.cluster();
  PP_CHECK(cfg.n_sc == cfg.fft_size,
           "sim backend assumes all FFT bins are active sub-carriers");
  const uint32_t n = cfg.fft_size;
  const uint32_t n_cores = cluster.n_cores();

  const Stage_spec& fft_spec = require(p, Stage_role::fft, "pipeline needs an fft stage");
  const Stage_spec& bf_spec = require(p, Stage_role::beamform, "pipeline needs a beamform stage");
  const Stage_spec& che_spec = require(p, Stage_role::che, "pipeline needs a che stage");
  const Stage_spec& ne_spec = require(p, Stage_role::ne, "pipeline needs an ne stage");
  const Stage_spec& gram_spec = require(p, Stage_role::gram, "pipeline needs a gram stage");
  const Stage_spec& mimo_spec = require(p, Stage_role::mimo_solve, "pipeline needs a mimo_solve stage");

  // Block-rescaling factors between stages (power-of-two shifts).
  const double s_time = fft_spec.rescale;
  const double s_grid = bf_spec.rescale;
  const double s_est = ne_spec.rescale;
  const double s_che = che_spec.rescale;
  // The matched-filter scale: set on the gram stage (whose y input the host
  // quantizes); the solve outputs inherit it linearly.
  const double s_rhs = gram_spec.rescale;

  // Concurrent FFT gangs: never more than there are antennas to transform
  // (excess gangs would run on unbound inputs and inflate the cycle counts).
  const uint32_t fft_inst =
      resolve_fft_gangs(cluster, n, fft_spec.run.params, cfg.n_rx);

  // Cholesky symbol batching: decompositions of `batch` data symbols are
  // queued per core and closed by a single barrier.
  const uint32_t batch = mimo_spec.run.params.getu("symb_batch", 1);
  const uint32_t n_data_symb = cfg.n_symb - cfg.n_pilot_symb;
  PP_CHECK(batch >= 1 && n_data_symb % batch == 0,
           "chol symb_batch must divide the data-symbol count");
  const uint32_t per_sym = n / n_cores > 0 ? n / n_cores : 1;
  const uint32_t per_core = per_sym * batch;

  sim::Machine m(cluster);
  arch::L1_alloc alloc(m.config());

  Slot_result out;
  out.backend = "sim";
  out.stages.resize(p.stages().size());
  for (size_t i = 0; i < p.stages().size(); ++i) {
    out.stages[i].name = p.stages()[i].name;
  }
  auto stage_of = [&](const Stage_spec& spec) -> Slot_result::Stage& {
    return out.stages[&spec - p.stages().data()];
  };

  // Persistent kernel instances (buffers live in L1 across the slot),
  // instantiated from the registry in a fixed order so the L1 layout is
  // reproducible.
  auto fft = make_kernel(fft_spec.run.kernel, m, alloc,
                         kernel_params(fft_spec.run)
                             .set("n", n)
                             .set("inst", fft_inst)
                             .set("reps", 1u));
  auto mmm = make_kernel(bf_spec.run.kernel, m, alloc,
                         kernel_params(bf_spec.run)
                             .set("m", n)
                             .set("k", cfg.n_rx)
                             .set("p", cfg.n_beams));
  // Stage params pass through; only the scenario-derived dimensions are
  // overridden.
  auto est_dims = [&](const Stage_spec& spec) {
    return kernel_params(spec.run)
        .set("sc", n)
        .set("b", cfg.n_beams)
        .set("l", cfg.n_ue);
  };
  auto che = make_kernel(che_spec.run.kernel, m, alloc, est_dims(che_spec));
  auto ne = make_kernel(ne_spec.run.kernel, m, alloc, est_dims(ne_spec));
  auto gram = make_kernel(gram_spec.run.kernel, m, alloc, est_dims(gram_spec));
  const Params mimo_dims = kernel_params(mimo_spec.run)
                               .set("n", cfg.n_ue)
                               .set("per_core", per_core);
  auto chol = make_kernel(mimo_spec.run.kernel, m, alloc, mimo_dims);
  auto solve = make_kernel(
      mimo_spec.run.params.gets("solver", "trisolve.batch"), m, alloc,
      mimo_dims);

  // Quantized beamforming codebook (n_rx x n_beams), reused every symbol.
  // Marshaling staging (ws_->q and friends) is reused across binds and
  // slots: bind() copies into L1 before returning, so one staging buffer
  // serves every port.
  quantize_into(sc.codebook(), 1.0, ws_->bq);

  // ---- per-symbol front end: FFT + beamforming ------------------------
  // beam grid per symbol, [sc][beam], in true (unscaled) units
  auto& beams = ws_->beams;
  auto& freq = ws_->freq;
  if (beams.size() < cfg.n_symb) beams.resize(cfg.n_symb);  // grow-only
  if (freq.size() < cfg.n_rx) freq.resize(cfg.n_rx);
  for (uint32_t s = 0; s < cfg.n_symb; ++s) {
    for (uint32_t r0 = 0; r0 < cfg.n_rx; r0 += fft_inst) {
      const uint32_t nb = std::min(fft_inst, cfg.n_rx - r0);
      for (uint32_t i = 0; i < nb; ++i) {
        quantize_into(sc.antenna_time(s, r0 + i), s_time, ws_->q);
        fft->bind("x", i, ws_->q);
      }
      accumulate(stage_of(fft_spec), fft->launch());
      for (uint32_t i = 0; i < nb; ++i) {
        // The kernel computes FFT/N of the s_time-scaled samples and the
        // transmitter normalized time by 1/sqrt(N), so the grid comes back
        // scaled by s_time/sqrt(N).
        dequantize_into(fft->fetch("y", i),
                        s_time / std::sqrt(static_cast<double>(n)),
                        freq[r0 + i]);
      }
    }

    // Beamforming on the simulated MMM: A = grid (n x n_rx) scaled.
    auto& a = ws_->a;
    common::ws_grow(a, static_cast<size_t>(n) * cfg.n_rx);
    for (uint32_t scx = 0; scx < n; ++scx) {
      for (uint32_t r0 = 0; r0 < cfg.n_rx; ++r0) {
        a[static_cast<size_t>(scx) * cfg.n_rx + r0] = freq[r0][scx];
      }
    }
    quantize_into(a, s_grid, ws_->q);
    mmm->bind("a", 0, ws_->q);
    mmm->bind("b", 0, ws_->bq);
    accumulate(stage_of(bf_spec), mmm->launch());
    dequantize_into(mmm->fetch("c"), s_grid, beams[s]);
  }

  // ---- channel + noise estimation on the pilot symbols ----------------
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    quantize_into(sc.pilot(l), 1.0, ws_->q);
    che->bind("pilot", l, ws_->q);
    quantize_into(sc.pilot_obs_beam(l), s_che, ws_->q);
    che->bind("y_sep", l, ws_->q);
  }
  accumulate(stage_of(che_spec), che->launch());
  auto& h_hat = ws_->h_hat;  // [sc][b][l]
  dequantize_into(che->fetch("h"), s_che, h_hat);

  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    quantize_into(sc.pilot(l), 1.0, ws_->q);
    ne->bind("pilot", l, ws_->q);
  }
  quantize_into(beams[0], s_est, ws_->q);
  ne->bind("y", 0, ws_->q);
  quantize_into(h_hat, s_est, ws_->q);
  ne->bind("h", 0, ws_->q);
  accumulate(stage_of(ne_spec), ne->launch());
  const double sigma2_hat = ne->fetch_scalar("sigma2") / (s_est * s_est);
  out.sigma2_hat = sigma2_hat;

  // ---- MIMO per data symbol: G = H^H H + sigma2 I, Cholesky, solves ----
  // Gramian and matched filter run on the simulated kernel; the host only
  // reshuffles its interleaved outputs into the Cholesky kernel's folded
  // per-core layout (a DMA job in a real deployment).
  quantize_into(h_hat, 1.0, ws_->q);
  gram->bind("h", 0, ws_->q);
  gram->bind_scalar("sigma2", sigma2_hat);
  out.bits.resize(cfg.n_ue);
  std::vector<std::vector<cd>> eq(cfg.n_ue);  // equalized symbols
  double evm_acc = 0.0;
  uint64_t evm_cnt = 0;

  // Gramian staging per symbol group (grow-only outers; clear() keeps the
  // inner capacity across groups and slots).
  auto& g_syms = ws_->g_syms;
  auto& rhs_syms = ws_->rhs_syms;
  if (g_syms.size() < batch) g_syms.resize(batch);
  if (rhs_syms.size() < batch) rhs_syms.resize(batch);
  for (uint32_t s0 = cfg.n_pilot_symb; s0 < cfg.n_symb; s0 += batch) {
    // Gramians of the whole symbol group, staged host-side.
    for (uint32_t b = 0; b < batch; ++b) {
      quantize_into(beams[s0 + b], s_rhs, ws_->q);
      gram->bind("y", 0, ws_->q);
      accumulate(stage_of(gram_spec), gram->launch());
      g_syms[b].clear();
      rhs_syms[b].clear();
      for (uint32_t scx = 0; scx < n; ++scx) {
        const auto g = gram->fetch("g", scx);
        const auto r = gram->fetch("rhs", scx);
        g_syms[b].insert(g_syms[b].end(), g.begin(), g.end());
        rhs_syms[b].insert(rhs_syms[b].end(), r.begin(), r.end());
      }
    }

    // One batched Cholesky + solve launch covers the group.
    const uint32_t nue = cfg.n_ue;
    for (uint32_t b = 0; b < batch; ++b) {
      for (uint32_t scx = 0; scx < n; ++scx) {
        const uint32_t slot = b * n + scx;
        chol->bind("g", slot,
                   std::span<const cq15>(g_syms[b].data() +
                                             static_cast<size_t>(scx) * nue * nue,
                                         static_cast<size_t>(nue) * nue));
      }
    }
    accumulate(stage_of(mimo_spec), chol->launch());
    for (uint32_t b = 0; b < batch; ++b) {
      for (uint32_t scx = 0; scx < n; ++scx) {
        const uint32_t slot = b * n + scx;
        solve->bind("l", slot, chol->fetch("l", slot));
        solve->bind("y", slot,
                    std::span<const cq15>(rhs_syms[b].data() +
                                              static_cast<size_t>(scx) * nue,
                                          nue));
      }
    }
    accumulate(stage_of(mimo_spec), solve->launch());

    for (uint32_t b = 0; b < batch; ++b) {
      const uint32_t s = s0 + b;
      for (uint32_t scx = 0; scx < n; ++scx) {
        const auto x = dequantize(solve->fetch("x", b * n + scx), s_rhs);
        for (uint32_t l = 0; l < cfg.n_ue; ++l) {
          const cd sym = x[l] / cfg.ue_power;
          eq[l].push_back(sym);
          const cd want = sc.tx_grid(l, s)[scx] / cfg.ue_power;
          evm_acc += std::norm(sym - want);
          ++evm_cnt;
        }
      }
    }
  }
  out.evm = std::sqrt(evm_acc / static_cast<double>(evm_cnt));

  uint64_t nerr = 0, nbits = 0;
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    out.bits[l] = phy::qam_demodulate(cfg.qam, eq[l]);
    const auto& want = sc.tx_bits(l);
    PP_CHECK(want.size() == out.bits[l].size(), "payload size mismatch");
    for (size_t i = 0; i < want.size(); ++i) {
      nerr += want[i] != out.bits[l][i];
      ++nbits;
    }
  }
  out.ber = static_cast<double>(nerr) / static_cast<double>(nbits);
  out.symbols = std::move(eq);
  return out;
}

}  // namespace pp::runtime
