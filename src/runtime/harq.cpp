#include "runtime/harq.h"

#include <algorithm>

#include "common/check.h"

namespace pp::runtime {

double Harq_combiner::absorb(const phy::Uplink_config& cfg,
                             const Slot_result& r) {
  PP_CHECK(r.symbols.size() == cfg.n_ue,
           "HARQ combining needs the attempt's equalized symbols");
  if (!decoded_) {
    // First executed attempt: fixes the combining base (layer count, QAM,
    // transmitted bits) and seeds the symbol average.
    decoded_ = true;
    base_ue_ = cfg.n_ue;
    qam_ = cfg.qam;
    want_ = phy::tx_payload_bits(cfg);
    sum_ = r.symbols;
    combined_ = 1;
    best_ber_ = r.ber;
    return best_ber_;
  }
  if (cfg.n_ue != base_ue_) return best_ber_;  // degraded shape: no combining

  // Chase combining: accumulate, decode the running average, keep the best
  // of (previous best, this attempt alone, the combined decode).
  uint64_t nerr = 0, nbits = 0;
  for (uint32_t l = 0; l < base_ue_; ++l) {
    PP_CHECK(r.symbols[l].size() == sum_[l].size(),
             "HARQ attempt symbol count mismatch");
    for (size_t i = 0; i < sum_[l].size(); ++i) sum_[l][i] += r.symbols[l][i];
  }
  ++combined_;
  const double inv = 1.0 / static_cast<double>(combined_);
  std::vector<phy::cd> avg;
  for (uint32_t l = 0; l < base_ue_; ++l) {
    avg.assign(sum_[l].begin(), sum_[l].end());
    for (auto& v : avg) v *= inv;
    const auto bits = phy::qam_demodulate(qam_, avg);
    PP_CHECK(bits.size() == want_[l].size(), "HARQ payload size mismatch");
    for (size_t i = 0; i < bits.size(); ++i) nerr += bits[i] != want_[l][i];
    nbits += bits.size();
  }
  const double combined_ber =
      static_cast<double>(nerr) / static_cast<double>(nbits);
  best_ber_ = std::min(best_ber_, std::min(r.ber, combined_ber));
  return best_ber_;
}

}  // namespace pp::runtime
