// HARQ soft combining across retransmission attempts of one slot.
//
// The scheduler's HARQ loop (scheduler.h, max_harq > 0) re-enqueues slots
// whose decoded BER exceeds the threshold as deterministic retransmissions:
// the same transport block (phy::tx_payload_bits is attempt-invariant)
// under a fresh channel/noise realization (phy::kHarqStream).  This
// accumulator implements chase combining over the equalized symbols each
// attempt produced (Slot_result::symbols): attempts are averaged
// symbol-wise, the average re-demodulated, and the block's decoded BER is
// the minimum over every per-attempt and combined decode - monotone
// non-increasing in the attempt count by construction, which is the fuzz
// suite's core invariant.
//
// Combining runs in the scheduler's serial post-round pass in slot-index
// order on plain doubles, so the verdict stream is bit-identical for any
// worker count and - given payload-bit agreement - across backends.
//
// Degrade interplay: combining accumulates only attempts executed at the
// base attempt's layer count (the first executed attempt fixes the shape).
// An attempt the admission controller re-planned to a different UE count
// decodes a different transport block, so it neither joins the average nor
// lowers the block's BER; it still consumes one of the max_harq attempts.
#ifndef PUSCHPOOL_RUNTIME_HARQ_H
#define PUSCHPOOL_RUNTIME_HARQ_H

#include <vector>

#include "phy/uplink.h"
#include "runtime/pipeline.h"

namespace pp::runtime {

class Harq_combiner {
 public:
  // Fold one executed attempt (its final config + slot result) into the
  // accumulator and return the block's best decoded BER so far.
  double absorb(const phy::Uplink_config& cfg, const Slot_result& r);

  // True once any attempt of this block executed (a block whose every
  // attempt was dropped by admission has no decode and never passes).
  bool decoded() const { return decoded_; }
  // Best (lowest) BER over all per-attempt and combined decodes; 1.0 until
  // the first decode.
  double best_ber() const { return best_ber_; }
  // Attempts folded into the running symbol average.
  uint32_t combined() const { return combined_; }

 private:
  bool decoded_ = false;
  uint32_t base_ue_ = 0;
  phy::Qam qam_ = phy::Qam::qam16;
  uint32_t combined_ = 0;
  std::vector<std::vector<phy::cd>> sum_;       // [ue][item] symbol sums
  std::vector<std::vector<uint8_t>> want_;      // transmitted payload bits
  double best_ber_ = 1.0;
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_HARQ_H
