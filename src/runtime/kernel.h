// Uniform kernel lifecycle for the runtime layer.
//
// Every simulated kernel - whatever its concrete class - is driven through
// the same four steps:
//
//   make_kernel(...)        instantiate from the registry by name
//   bind(port, slot, data)  stage quantized inputs into L1
//   launch()                run to completion -> sim::Kernel_report
//   fetch(port, slot)       read outputs back out of L1
//
// Ports are named; multi-instance kernels (an FFT gang's reps, a Cholesky
// batch's matrices) expose one slot per instance.  Adapters over the
// concrete kernel classes live in adapters.cpp and are reached through the
// registry (registry.h), so callers never name a kernel class directly.
// Whole-slot execution composes kernels through Pipeline (pipeline.h) on a
// pluggable Backend (backend.h).
#ifndef PUSCHPOOL_RUNTIME_KERNEL_H
#define PUSCHPOOL_RUNTIME_KERNEL_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/complex16.h"
#include "common/rng.h"
#include "runtime/params.h"
#include "sim/stats.h"

namespace pp::runtime {

// Identity + configuration of an instantiated kernel.
struct Kernel_desc {
  std::string name;    // registry key, e.g. "fft.parallel"
  Params params;       // resolved configuration (defaults filled in)
  uint32_t cores = 0;  // gang shape: cores participating in launch()
  uint64_t macs = 0;   // complex MACs the problem needs (0 = not meaningful)

  std::string label() const {
    const std::string p = params.describe();
    return p.empty() ? name : name + " " + p;
  }
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  const Kernel_desc& desc() const { return desc_; }

  // Number of bind/fetch slots `port` exposes; 0 for unknown ports.
  virtual uint32_t slots(std::string_view port) const = 0;

  // Stages quantized data into the port's slot (writes L1 via the host).
  virtual void bind(std::string_view port, uint32_t slot,
                    std::span<const common::cq15> data) = 0;

  // Scalar ports (e.g. the Gramian's "sigma2" regularizer), in real units.
  virtual void bind_scalar(std::string_view port, double value);

  // Fills every input port with valid synthetic stimulus (SPD matrices for
  // Cholesky, unit-amplitude pilots for CHE, ...).  This is what benches and
  // the analytic roll-up use; cycle counts do not depend on data values.
  virtual void bind_default_inputs(common::Rng& rng) = 0;

  // Executes the kernel region on the simulated cluster to completion.
  virtual sim::Kernel_report launch() = 0;

  // Reads a vector output back from L1.
  virtual std::vector<common::cq15> fetch(std::string_view port,
                                          uint32_t slot = 0) const = 0;

  // Scalar outputs (e.g. the NE kernel's "sigma2" estimate).
  virtual double fetch_scalar(std::string_view port) const;

 protected:
  explicit Kernel(Kernel_desc desc) : desc_(std::move(desc)) {}

  [[noreturn]] void unknown_port(std::string_view port) const;

  Kernel_desc desc_;
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_KERNEL_H
