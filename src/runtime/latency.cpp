#include "runtime/latency.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pp::runtime {

size_t Latency_histogram::bucket_of(double seconds) {
  if (!(seconds > 0.0)) return 0;  // also catches NaN
  int e = 0;
  const double m = std::frexp(seconds, &e);  // seconds = m * 2^e, m in [0.5,1)
  if (e < kMinExp) return 0;
  if (e > kMaxExp) return kBuckets - 1;
  // 2m - 1 in [0, 1): both the doubling and the subtraction are exact
  // (Sterbenz), as is the *16, so the sub-bucket never depends on libm.
  const int sub = static_cast<int>((2.0 * m - 1.0) * kSub);
  return static_cast<size_t>(e - kMinExp) * kSub + static_cast<size_t>(sub);
}

double Latency_histogram::bucket_upper_edge(size_t bucket) {
  PP_CHECK(bucket < kBuckets, "latency bucket out of range");
  const int e = kMinExp + static_cast<int>(bucket / kSub);
  const int sub = static_cast<int>(bucket % kSub);
  // Octave e covers [2^(e-1), 2^e); sub-bucket upper edge at
  // 2^(e-1) * (1 + (sub+1)/16) - exact for every bucket.
  return std::ldexp(static_cast<double>(kSub + sub + 1) / kSub, e - 1);
}

void Latency_histogram::record(double seconds) {
  ++counts_[bucket_of(seconds)];
  ++count_;
  max_ = std::max(max_, seconds);
}

void Latency_histogram::merge(const Latency_histogram& o) {
  for (size_t b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
  count_ += o.count_;
  max_ = std::max(max_, o.max_);
}

double Latency_histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cum += counts_[b];
    if (static_cast<double>(cum) >= rank) return bucket_upper_edge(b);
  }
  return bucket_upper_edge(kBuckets - 1);
}

std::vector<double> fcfs_completion(const std::vector<double>& arrival_s,
                                    const std::vector<double>& service_s,
                                    uint32_t servers) {
  PP_CHECK(arrival_s.size() == service_s.size(),
           "fcfs queue needs one service time per arrival");
  PP_CHECK(servers >= 1, "fcfs queue needs at least one server");
  std::vector<double> free_at(servers, 0.0);
  std::vector<double> completion(arrival_s.size());
  for (size_t i = 0; i < arrival_s.size(); ++i) {
    // Earliest-free server, ties to the lowest id - a deterministic pick.
    size_t s = 0;
    for (size_t j = 1; j < free_at.size(); ++j) {
      if (free_at[j] < free_at[s]) s = j;
    }
    const double start = std::max(arrival_s[i], free_at[s]);
    free_at[s] = start + service_s[i];
    completion[i] = free_at[s];
  }
  return completion;
}

}  // namespace pp::runtime
