// Deadline-latency accounting for the streaming slot scheduler.
//
// Latency_histogram buckets per-slot latencies geometrically (octaves split
// into 16 linear sub-buckets, <= 1/16 relative quantization error) and
// answers percentile queries (p50/p99/p999) as the upper edge of the
// covering bucket.  Bucket assignment uses only exact binary floating-point
// operations (frexp + scaling by powers of two - no log/pow), so the same
// set of recorded values produces the same histogram on any host, and the
// counts are insertion-order independent; this is what lets the scheduler's
// virtual-time latency metrics gate the benchmark baseline
// (docs/DETERMINISM.md).
//
// fcfs_completion() is the deterministic multi-server queue model behind
// the scheduler's deadline accounting: jobs in arrival order, each starting
// on the earliest-free server (ties to the lowest server id).  Completion
// times are a pure function of (arrivals, service times, server count) -
// independent of how many host workers actually executed the slots.
#ifndef PUSCHPOOL_RUNTIME_LATENCY_H
#define PUSCHPOOL_RUNTIME_LATENCY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pp::runtime {

class Latency_histogram {
 public:
  // Bucket layout: octave groups for exponents 2^-21 .. 2^7 seconds
  // (~0.5 us to 128 s, clamped outside), 16 linear sub-buckets per octave.
  static constexpr int kMinExp = -20;  // first octave covers [2^-21, 2^-20)
  static constexpr int kMaxExp = 7;    // last octave covers [2^6, 2^7)
  static constexpr int kSub = 16;      // linear sub-buckets per octave
  static constexpr size_t kBuckets =
      static_cast<size_t>(kMaxExp - kMinExp + 1) * kSub;

  // Bucket of a latency value; underflow (including <= 0) clamps to bucket
  // 0, overflow to the last bucket.  Exact: frexp + Sterbenz subtraction.
  static size_t bucket_of(double seconds);
  // Upper edge of a bucket: 2^(e-1) * (17 + sub) / 16 for octave exponent e.
  static double bucket_upper_edge(size_t bucket);

  void record(double seconds);

  uint64_t count() const { return count_; }
  uint64_t bucket_count(size_t bucket) const { return counts_[bucket]; }
  // Largest recorded value (exact, not bucketed); 0 when empty.
  double max_recorded() const { return max_; }

  // Upper bucket edge covering quantile q in (0, 1]: the smallest edge with
  // cumulative count >= q * count().  0 when the histogram is empty.
  double percentile(double q) const;

  // Exact bucket-wise sum of another histogram into this one (integer
  // counts, max is a plain max) - merging is associative, commutative and
  // loses nothing, so per-shard histograms folded in any order equal the
  // histogram of the union of the recorded values.  The shard aggregation
  // in runtime::Slot_scheduler relies on exactly this.
  void merge(const Latency_histogram& o);

  // Histograms are equality-comparable so determinism tests can assert
  // whole-distribution identity across worker counts.
  bool operator==(const Latency_histogram& o) const {
    return count_ == o.count_ && counts_ == o.counts_ && max_ == o.max_;
  }

 private:
  std::vector<uint64_t> counts_ = std::vector<uint64_t>(kBuckets, 0);
  uint64_t count_ = 0;
  double max_ = 0.0;
};

// Completion times of jobs through an S-server FCFS queue.  `arrival_s`
// must be non-decreasing (the Slot_source contract); job i starts at
// max(arrival_s[i], earliest server-free time) on the earliest-free server
// and completes start + service_s[i] later.  Deterministic and serial - the
// virtual clock has nothing to do with host execution order.
std::vector<double> fcfs_completion(const std::vector<double>& arrival_s,
                                    const std::vector<double>& service_s,
                                    uint32_t servers);

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_LATENCY_H
