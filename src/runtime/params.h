// String-keyed kernel/pipeline configuration.
//
// Params is the small, ordered key=value bag that flows from CLIs, benches
// and pipeline presets into the kernel registry.  Values are stored as
// strings; typed accessors parse on read so a Params can be built from a
// command line ("n=1024,inst=4,folded=0") as easily as from code.
#ifndef PUSCHPOOL_RUNTIME_PARAMS_H
#define PUSCHPOOL_RUNTIME_PARAMS_H

#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pp::runtime {

class Params {
 public:
  Params() = default;

  // A template keeps plain integer literals unambiguous (`set("n", 256)`):
  // deduction beats the bool/string overloads' conversions.
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  Params& set(std::string_view key, T v) {
    return put(key, std::to_string(v));
  }
  Params& set(std::string_view key, bool v) {
    return put(key, v ? "1" : "0");
  }
  Params& set(std::string_view key, std::string v) {
    return put(key, std::move(v));
  }
  // Keeps string literals off the bool overload.
  Params& set(std::string_view key, const char* v) {
    return put(key, std::string(v));
  }

  // Removes a key if present (e.g. to strip stage-scheduling keys before
  // handing the rest to a kernel factory).
  Params& unset(std::string_view key) {
    for (size_t i = 0; i < kv_.size(); ++i) {
      if (kv_[i].first == key) {
        kv_.erase(kv_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    return *this;
  }

  // Keys in insertion order (for registry-side validation).
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(kv_.size());
    for (const auto& [k, v] : kv_) out.push_back(k);
    return out;
  }

  bool has(std::string_view key) const { return find(key) != nullptr; }

  // Numeric/boolean reads are strict: a malformed value ("n=1o24") aborts
  // with a message rather than silently parsing to a different number.
  int64_t geti(std::string_view key, int64_t fallback) const {
    const std::string* v = find(key);
    if (!v) return fallback;
    char* end = nullptr;
    const long long r = std::strtoll(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') bad_value(key, *v, "an integer");
    return r;
  }
  uint32_t getu(std::string_view key, uint32_t fallback) const {
    const int64_t r = geti(key, fallback);
    if (r < 0 || r > INT64_C(0xffffffff)) {
      bad_value(key, *find(key), "a 32-bit unsigned integer");
    }
    return static_cast<uint32_t>(r);
  }
  bool getb(std::string_view key, bool fallback) const {
    const std::string* v = find(key);
    if (!v) return fallback;
    if (*v == "1" || *v == "true") return true;
    if (*v == "0" || *v == "false") return false;
    bad_value(key, *v, "a boolean (0/1/true/false)");
  }
  std::string gets(std::string_view key, std::string fallback) const {
    const std::string* v = find(key);
    return v ? *v : fallback;
  }

  // "k1=v1 k2=v2 ..." in insertion order; used for report labels.
  std::string describe() const {
    std::string out;
    for (const auto& [k, v] : kv_) {
      if (!out.empty()) out += ' ';
      out += k + "=" + v;
    }
    return out;
  }

  // Parses "k1=v1,k2=v2"; bare keys become flags ("folded" == "folded=1").
  static Params parse(std::string_view spec) {
    Params p;
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t end = spec.find(',', pos);
      if (end == std::string_view::npos) end = spec.size();
      const std::string_view item = spec.substr(pos, end - pos);
      const size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        if (!item.empty()) p.put(item, "1");
      } else {
        p.put(item.substr(0, eq), std::string(item.substr(eq + 1)));
      }
      pos = end + 1;
    }
    return p;
  }

 private:
  [[noreturn]] static void bad_value(std::string_view key,
                                     const std::string& value,
                                     const char* want) {
    std::fprintf(stderr, "parameter '%.*s=%s' is not %s\n",
                 static_cast<int>(key.size()), key.data(), value.c_str(),
                 want);
    std::abort();
  }

  Params& put(std::string_view key, std::string v) {
    for (auto& [k, old] : kv_) {
      if (k == key) {
        old = std::move(v);
        return *this;
      }
    }
    kv_.emplace_back(std::string(key), std::move(v));
    return *this;
  }

  const std::string* find(std::string_view key) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_PARAMS_H
