#include "runtime/pipeline.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/thread_pool.h"
#include "runtime/backend.h"
#include "runtime/backend_fixed.h"
#include "runtime/backend_parallel.h"
#include "runtime/registry.h"

namespace pp::runtime {

Params kernel_params(const Exec_spec& spec) {
  return Params(spec.params).unset("symb_batch").unset("solver");
}

namespace {

// ---- launch-report memoization -------------------------------------------
//
// A stage's Kernel_report on a fresh machine is a pure function of the
// cluster configuration and the (kernel, params) pair: the simulation is
// deterministic and cycle counts do not depend on input data values (the
// Kernel contract, kernel.h).  Repeated configurations - e.g. the unchanged
// stages between a use case's batching-off and batching-on roll-ups - can
// therefore reuse the first measurement bit for bit.  Reports from the
// reference scheduler are keyed separately so a differential run never
// reads fast-path results (and vice versa).

std::string cluster_memo_key(const arch::Cluster_config& c) {
  std::string s = c.name;
  const uint32_t fields[] = {c.n_groups,
                             c.tiles_per_group,
                             c.cores_per_tile,
                             c.banks_per_core,
                             c.bank_words,
                             c.lat_tile,
                             c.lat_group,
                             c.lat_remote,
                             c.l0_icache_instrs,
                             c.icache_refill_cycles,
                             c.mul_latency,
                             c.div_latency,
                             static_cast<uint32_t>(c.isa_fused_butterfly),
                             c.lsu_depth,
                             c.wakeup_latency};
  for (uint32_t v : fields) {
    s += '/';
    s += std::to_string(v);
  }
  return s;
}

std::string launch_memo_key(const std::string& cluster, bool reference,
                            std::string_view kernel, const Params& p) {
  std::string s = reference ? "ref\n" : "fast\n";
  s += cluster;
  s += '\n';
  s += kernel;
  // Canonical parameter order: the key must not depend on insertion order.
  auto keys = p.keys();
  std::sort(keys.begin(), keys.end());
  for (const auto& k : keys) {
    s += '\n';
    s += k;
    s += '=';
    s += p.gets(k, "");
  }
  return s;
}

// Report plus the kernel's own display label (both pure functions of the
// memo key, so reuse reproduces unnamed stages' labels exactly).
struct Memo_entry {
  sim::Kernel_report rep;
  std::string label;
};

std::mutex launch_memo_mutex;
std::unordered_map<std::string, Memo_entry>& launch_memo() {
  static std::unordered_map<std::string, Memo_entry> memo;
  return memo;
}

}  // namespace

Rollup_result Pipeline::measure(uint64_t seed) const {
  Measure_options opt;
  opt.seed = seed;
  return measure(opt);
}

Rollup_result Pipeline::measure(const Measure_options& opt) const {
  Rollup_result out;
  common::Rng rng(opt.seed);
  const bool reference =
      opt.reference_loop || sim::Machine::env_reference_loop();
  const std::string ckey = cluster_memo_key(cluster_);

  // One entry per simulation the roll-up needs: the measured parallel
  // mapping of every stage, then the single-core baselines.
  struct Job {
    const Stage_spec* spec = nullptr;
    bool is_serial = false;
    std::unique_ptr<sim::Machine> m;
    std::unique_ptr<arch::L1_alloc> alloc;
    std::unique_ptr<Kernel> kernel;
    std::string key;
    sim::Kernel_report rep;
    std::string label;  // kernel->desc().label(), surviving memo hits
    bool memoized = false;
  };
  std::vector<Job> jobs;
  for (const auto& spec : stages_) {
    if (spec.run.kernel.empty()) continue;
    jobs.push_back(Job{&spec, false});
  }
  for (const auto& spec : stages_) {
    if (spec.serial.kernel.empty() || spec.serial.repeat == 0) continue;
    jobs.push_back(Job{&spec, true});
  }

  // Serial pre-pass in declaration order: memo lookups, machine/kernel
  // construction and input binding.  Binding here keeps the shared stimulus
  // Rng's draw sequence a pure function of the stage list, independent of
  // shard count (and launch cycles are data-independent, so memo hits that
  // skip their draws leave every other report unchanged).
  {
    std::lock_guard<std::mutex> lock(launch_memo_mutex);
    for (Job& j : jobs) {
      const Exec_spec& exec = j.is_serial ? j.spec->serial : j.spec->run;
      j.key = launch_memo_key(ckey, reference, exec.kernel,
                              kernel_params(exec));
      if (opt.reuse_reports) {
        auto it = launch_memo().find(j.key);
        if (it != launch_memo().end()) {
          j.rep = it->second.rep;
          j.label = it->second.label;
          j.memoized = true;
          continue;
        }
      }
      j.m = std::make_unique<sim::Machine>(cluster_);
      if (reference) j.m->set_reference_loop(true);
      j.alloc = std::make_unique<arch::L1_alloc>(j.m->config());
      j.kernel = make_kernel(exec.kernel, *j.m, *j.alloc, kernel_params(exec));
      j.label = j.kernel->desc().label();
      j.kernel->bind_default_inputs(rng);
    }
  }

  // Launch phase: every job owns a private machine, so the reports are
  // bit-identical for any shard count and partition.
  auto launch_job = [](Job& j) {
    if (j.memoized) return;
    j.rep = j.kernel->launch();
  };
  if (opt.shards <= 1) {
    for (Job& j : jobs) launch_job(j);
  } else {
    common::Thread_pool pool(opt.shards);
    pool.parallel_for(jobs.size(), [&](uint64_t i) { launch_job(jobs[i]); });
  }

  // Index-ordered merge (and memo fill, in the same deterministic order).
  {
    std::lock_guard<std::mutex> lock(launch_memo_mutex);
    for (Job& j : jobs) {
      if (opt.reuse_reports && !j.memoized) {
        launch_memo()[j.key] = Memo_entry{j.rep, j.label};
      }
      if (j.is_serial) {
        out.serial_cycles += j.rep.cycles * j.spec->serial.repeat;
        continue;
      }
      Rollup_stage st;
      st.name = j.spec->name.empty() ? j.label : j.spec->name;
      st.rep = j.rep;
      st.times = j.spec->run.repeat;
      if (j.spec->core_set) out.parallel_cycles += st.total_cycles();
      out.stages.push_back(std::move(st));
    }
  }
  return out;
}

Slot_result Pipeline::execute(const phy::Uplink_scenario& sc,
                              Backend& backend) const {
  return backend.run_slot(*this, sc);
}

void Pipeline::execute_into(const phy::Uplink_scenario& sc, Backend& backend,
                            Slot_result& out) const {
  backend.run_slot_into(*this, sc, out);
}

uint32_t resolve_fft_gangs(const arch::Cluster_config& cluster,
                           uint32_t fft_size, const Params& params,
                           uint32_t max_inst) {
  uint32_t inst = params.getu("inst", 0);
  if (inst == 0) {
    PP_CHECK(fft_size >= 16, "fft gang resolution needs fft_size >= 16");
    inst = cluster.n_cores() / (fft_size / 16);
  }
  return std::max(1u, std::min(max_inst, inst));
}

std::unique_ptr<Backend> make_backend(std::string_view name, uint32_t intra) {
  if (name == "sim") return std::make_unique<Sim_backend>();
  if (name == "reference") return std::make_unique<Reference_backend>();
  if (name == "parallel") return std::make_unique<Parallel_backend>(intra);
  if (name == "fixed") return std::make_unique<Fixed_backend>(intra);
  PP_CHECK(false,
           "unknown backend (expected 'sim', 'reference', 'parallel' or "
           "'fixed')");
  return nullptr;
}

std::vector<std::string> backend_names() {
  return {"sim", "reference", "parallel", "fixed"};
}

void Backend::run_slot_into(const Pipeline& p, const phy::Uplink_scenario& sc,
                            Slot_result& out) {
  out = run_slot(p, sc);
}

void Backend::run_front_into(const Pipeline&, const phy::Uplink_scenario&,
                             Slot_front&) {
  PP_CHECK(false, "backend does not support stage-split execution");
}

void Backend::run_back_into(const Pipeline&, const phy::Uplink_scenario&,
                            const Slot_front&, Slot_result&) {
  PP_CHECK(false, "backend does not support stage-split execution");
}

Slot_front Backend::run_front(const Pipeline& p,
                              const phy::Uplink_scenario& sc) {
  Slot_front front;
  run_front_into(p, sc, front);
  return front;
}

Slot_result Backend::run_back(const Pipeline& p,
                              const phy::Uplink_scenario& sc,
                              Slot_front front) {
  Slot_result out;
  run_back_into(p, sc, front, out);
  return out;
}

}  // namespace pp::runtime
