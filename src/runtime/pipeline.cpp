#include "runtime/pipeline.h"

#include "runtime/backend.h"
#include "runtime/backend_fixed.h"
#include "runtime/backend_parallel.h"
#include "runtime/registry.h"

namespace pp::runtime {

Params kernel_params(const Exec_spec& spec) {
  return Params(spec.params).unset("symb_batch").unset("solver");
}

Rollup_result Pipeline::measure(uint64_t seed) const {
  Rollup_result out;
  common::Rng rng(seed);

  for (const auto& spec : stages_) {
    if (spec.run.kernel.empty()) continue;
    sim::Machine m(cluster_);
    arch::L1_alloc alloc(m.config());
    auto k = make_kernel(spec.run.kernel, m, alloc, kernel_params(spec.run));
    k->bind_default_inputs(rng);
    Rollup_stage st;
    st.name = spec.name.empty() ? k->desc().label() : spec.name;
    st.rep = k->launch();
    st.times = spec.run.repeat;
    if (spec.core_set) out.parallel_cycles += st.total_cycles();
    out.stages.push_back(std::move(st));
  }

  // Single-core baselines: the same per-slot work, one core, one kernel
  // launch measured and scaled by the baseline's repetition count.
  for (const auto& spec : stages_) {
    if (spec.serial.kernel.empty() || spec.serial.repeat == 0) continue;
    sim::Machine m(cluster_);
    arch::L1_alloc alloc(m.config());
    auto k = make_kernel(spec.serial.kernel, m, alloc,
                         kernel_params(spec.serial));
    k->bind_default_inputs(rng);
    out.serial_cycles += k->launch().cycles * spec.serial.repeat;
  }
  return out;
}

Slot_result Pipeline::execute(const phy::Uplink_scenario& sc,
                              Backend& backend) const {
  return backend.run_slot(*this, sc);
}

uint32_t resolve_fft_gangs(const arch::Cluster_config& cluster,
                           uint32_t fft_size, const Params& params,
                           uint32_t max_inst) {
  uint32_t inst = params.getu("inst", 0);
  if (inst == 0) {
    PP_CHECK(fft_size >= 16, "fft gang resolution needs fft_size >= 16");
    inst = cluster.n_cores() / (fft_size / 16);
  }
  return std::max(1u, std::min(max_inst, inst));
}

std::unique_ptr<Backend> make_backend(std::string_view name, uint32_t intra) {
  if (name == "sim") return std::make_unique<Sim_backend>();
  if (name == "reference") return std::make_unique<Reference_backend>();
  if (name == "parallel") return std::make_unique<Parallel_backend>(intra);
  if (name == "fixed") return std::make_unique<Fixed_backend>(intra);
  PP_CHECK(false,
           "unknown backend (expected 'sim', 'reference', 'parallel' or "
           "'fixed')");
  return nullptr;
}

std::vector<std::string> backend_names() {
  return {"sim", "reference", "parallel", "fixed"};
}

Slot_front Backend::run_front(const Pipeline&, const phy::Uplink_scenario&) {
  PP_CHECK(false, "backend does not support stage-split execution");
  return {};
}

Slot_result Backend::run_back(const Pipeline&, const phy::Uplink_scenario&,
                              Slot_front) {
  PP_CHECK(false, "backend does not support stage-split execution");
  return {};
}

}  // namespace pp::runtime
