// Declarative kernel pipelines over the registry.
//
// A Pipeline is an ordered list of Stage_specs - each naming a registry
// kernel, its Params, a per-slot repetition count, an optional single-core
// baseline, and the block-rescaling factor applied to data entering the
// stage.  The description is consumed by two engines:
//
//   measure()   analytic roll-up: run one instance of every stage on the
//               simulated cluster and scale by its repetition count (the
//               paper's Fig. 9c methodology; replaces the old
//               pusch::run_use_case internals)
//   execute()   functional slot execution: stream an uplink scenario through
//               the stages on a pluggable Backend (backend.h) - the
//               cycle-approximate simulator ("sim") or the double-precision
//               host models, serial ("reference") or intra-slot parallel
//               ("parallel") - and score EVM/BER against the transmitted
//               data
//
// Presets for the paper's use case and the end-to-end uplink slot live in
// presets.h.
#ifndef PUSCHPOOL_RUNTIME_PIPELINE_H
#define PUSCHPOOL_RUNTIME_PIPELINE_H

#include <array>
#include <string>
#include <vector>

#include "arch/topology.h"
#include "phy/uplink.h"
#include "runtime/params.h"
#include "sim/stats.h"

namespace pp::runtime {

class Backend;

// Functional role of a stage inside the PUSCH receive chain.  The functional
// engines dispatch on the role; the analytic roll-up ignores it.
enum class Stage_role { fft, beamform, che, ne, gram, mimo_solve, custom };

// One kernel execution: registry key + configuration + per-slot repetitions.
struct Exec_spec {
  std::string kernel;  // registry key; empty = not present
  Params params;
  uint64_t repeat = 1;
};

struct Stage_spec {
  std::string name;  // display label ("OFDM FFT", ...)
  Stage_role role = Stage_role::custom;
  Exec_spec run;       // the measured parallel mapping
  Exec_spec serial;    // optional same-work single-core baseline
  // Block rescaling the host applies when quantizing data into this stage.
  // Stages whose inputs arrive directly from a previous kernel's fixed-point
  // output (e.g. mimo_solve, fed by gram/chol) inherit the producer's scale
  // and ignore this field.
  double rescale = 1.0;
  bool core_set = true;  // counts toward the roll-up's parallel total
};

// Kernel-ready params of an Exec_spec: stage-level scheduling keys
// (symb_batch, solver - consumed by the execution engines, not by kernel
// factories) are stripped.  Both measure() and the backends build kernel
// params through this.
Params kernel_params(const Exec_spec& spec);

// Resolves an fft stage's concurrent gang count against a cluster: an
// explicit "inst" param wins, 0/absent fills the cluster; the result is
// clamped to [1, max_inst].  Shared by the functional backends so their
// launch counts agree.
uint32_t resolve_fft_gangs(const arch::Cluster_config& cluster,
                           uint32_t fft_size, const Params& params,
                           uint32_t max_inst);

// ---- analytic roll-up options (paper Fig. 9c) -----------------------------

// How Pipeline::measure runs its per-stage simulations.  Every combination
// of these knobs produces bit-identical Rollup_results: stages run on
// independent fresh machines, inputs are bound in a serial pre-pass walking
// stages in declaration order (so the shared stimulus Rng draws in a fixed
// sequence), results merge by stage index, and cycle counts are
// data-independent by the Kernel contract (kernel.h).  The differential
// suite (tests/test_sim_differential.cpp) pins the invariances.
struct Measure_options {
  uint64_t seed = 2023;  // stimulus seed (cycle counts do not depend on it)
  // Host threads running the per-stage machines (>= 1).  Stages are
  // launched over common::Thread_pool with a static index partition.
  uint32_t shards = 1;
  // Reuse launch reports across measure() calls in this process: a stage's
  // report on a fresh machine is a pure function of (cluster, kernel,
  // params), so repeated configurations skip simulation entirely.
  bool reuse_reports = true;
  // Force the pre-batching reference scheduler (sim::Machine reference
  // loop) for every stage; reports are kept apart from fast-path ones.
  bool reference_loop = false;
};

// ---- analytic roll-up result (paper Fig. 9c) ------------------------------

struct Rollup_stage {
  std::string name;
  sim::Kernel_report rep;  // one measured instance
  uint64_t times = 1;      // instances per slot
  uint64_t total_cycles() const { return rep.cycles * times; }
};

struct Rollup_result {
  std::vector<Rollup_stage> stages;
  uint64_t parallel_cycles = 0;  // sum over core_set stages
  uint64_t serial_cycles = 0;    // same work on one core
  double speedup() const {
    return parallel_cycles
               ? static_cast<double>(serial_cycles) / parallel_cycles
               : 0.0;
  }
  double ms_at_1ghz() const { return parallel_cycles * 1e-6; }
};

// ---- functional slot result ----------------------------------------------

struct Slot_result {
  // Aggregated per-stage reports (cycles summed over the per-symbol runs;
  // zero on backends that are not cycle-accurate).  Counters are 64-bit
  // throughout: a sustained TeraPool serve trace accumulates > 4e9 WFI
  // stall cycles per stage well before a slot count worth benchmarking,
  // so 32-bit accumulators would silently wrap
  // (tests/test_sim_differential.cpp pins the width).
  struct Stage {
    std::string name;
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    std::array<uint64_t, sim::n_stall_kinds> stall{};
    uint64_t runs = 0;
  };
  std::vector<Stage> stages;

  std::vector<std::vector<uint8_t>> bits;  // recovered payload per UE
  // Equalized data symbols per UE, in (data symbol, sub-carrier) item order
  // - exactly the vector the backend demodulated into `bits`.  The HARQ
  // combiner (runtime/harq.h) accumulates these across retransmission
  // attempts for the combined decode.
  std::vector<std::vector<phy::cd>> symbols;
  double evm = 0.0;         // vs transmitted constellation points
  double ber = 0.0;
  double sigma2_hat = 0.0;  // NE output (beam-grid units)
  std::string backend;      // which backend produced this result

  uint64_t total_cycles() const {
    uint64_t t = 0;
    for (const auto& s : stages) t += s.cycles;
    return t;
  }
};

// ---- the pipeline ---------------------------------------------------------

class Pipeline {
 public:
  Pipeline(std::string name, arch::Cluster_config cluster)
      : name_(std::move(name)), cluster_(std::move(cluster)) {}

  Pipeline& add(Stage_spec s) {
    stages_.push_back(std::move(s));
    return *this;
  }

  const std::string& name() const { return name_; }
  const arch::Cluster_config& cluster() const { return cluster_; }
  const std::vector<Stage_spec>& stages() const { return stages_; }

  // First stage with the given role, or nullptr.
  const Stage_spec* find(Stage_role role) const {
    for (const auto& s : stages_) {
      if (s.role == role) return &s;
    }
    return nullptr;
  }

  // Analytic roll-up: measures each stage once (fresh machine per stage,
  // synthetic stimulus) and scales by its repetition count.
  Rollup_result measure(uint64_t seed = 2023) const;
  Rollup_result measure(const Measure_options& opt) const;

  // Functional slot execution on the given backend.
  Slot_result execute(const phy::Uplink_scenario& sc, Backend& backend) const;

  // execute() into caller-owned result storage (capacity reused across
  // slots); forwards to Backend::run_slot_into.  Bit-identical to
  // execute() - the serving loop's zero-allocation entry point.
  void execute_into(const phy::Uplink_scenario& sc, Backend& backend,
                    Slot_result& out) const;

 private:
  std::string name_;
  arch::Cluster_config cluster_;
  std::vector<Stage_spec> stages_;
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_PIPELINE_H
