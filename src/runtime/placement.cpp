#include "runtime/placement.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace pp::runtime {

std::vector<std::string> placement_names() {
  return {"round-robin", "load-aware"};
}

bool is_placement_name(const std::string& name) {
  for (const auto& n : placement_names()) {
    if (n == name) return true;
  }
  return false;
}

std::vector<double> group_service_seconds(const std::vector<Slot_job>& jobs,
                                          uint32_t n_groups,
                                          const arch::Cluster_config& cluster,
                                          double clock_ghz) {
  std::vector<double> load(n_groups, 0.0);
  for (const Slot_job& job : jobs) {
    PP_CHECK(job.group < n_groups, "slot job group out of range");
    load[job.group] += analytic_service_seconds(job.cfg, cluster, clock_ghz);
  }
  return load;
}

std::vector<uint32_t> place_groups(const std::string& policy,
                                   const std::vector<double>& group_load,
                                   uint32_t n_groups, uint32_t n_shards) {
  PP_CHECK(n_shards >= 1, "placement needs at least one shard");
  std::vector<uint32_t> shard(n_groups, 0);
  if (n_shards == 1 || n_groups == 0) {
    PP_CHECK(is_placement_name(policy), "unknown placement policy");
    return shard;
  }
  if (policy == "round-robin") {
    for (uint32_t g = 0; g < n_groups; ++g) shard[g] = g % n_shards;
    return shard;
  }
  PP_CHECK(policy == "load-aware",
           "unknown placement policy (registered: round-robin, load-aware)");
  PP_CHECK(group_load.size() == n_groups,
           "load-aware placement needs one load per group");
  // LPT greedy: heaviest group first onto the least-loaded shard.  Both
  // tie-breaks are by lowest id, and the shard totals are accumulated in
  // assignment order, so the result is a pure function of the loads.
  std::vector<uint32_t> order(n_groups);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return group_load[a] > group_load[b];
  });
  std::vector<double> total(n_shards, 0.0);
  for (const uint32_t g : order) {
    uint32_t s = 0;
    for (uint32_t j = 1; j < n_shards; ++j) {
      if (total[j] < total[s]) s = j;
    }
    shard[g] = s;
    total[s] += group_load[g];
  }
  return shard;
}

}  // namespace pp::runtime
