// Cell-to-shard placement policies for the sharded serving engine.
//
// The sharded Slot_scheduler (scheduler.h) runs N scheduler shards, each
// owning one virtual cluster's worth of workers and its own FCFS
// virtual-clock queue.  A placement policy decides which shard serves each
// source group (a Traffic_source cell, a grid point): the whole group moves
// as a unit, so a cell's slots always queue behind each other in arrival
// order and the per-shard virtual clock stays a pure function of the source
// (docs/DETERMINISM.md §8).
//
// Policies (placement_names()):
//   round-robin   group g -> shard g % n_shards.  Oblivious, stable under
//                 appended groups.
//   load-aware    longest-processing-time greedy over the per-group
//                 analytic MAC load: groups sorted by descending total
//                 analytic service seconds (ties -> lower group id) are
//                 assigned to the currently least-loaded shard (ties ->
//                 lower shard id).  Deterministic: loads are index-order
//                 sums of analytic_service_seconds(), comparisons exact.
#ifndef PUSCHPOOL_RUNTIME_PLACEMENT_H
#define PUSCHPOOL_RUNTIME_PLACEMENT_H

#include <string>
#include <vector>

#include "runtime/scheduler.h"

namespace pp::runtime {

// Registered placement policies, in listing order.
std::vector<std::string> placement_names();

// True if `name` is a registered placement policy.
bool is_placement_name(const std::string& name);

// Per-group offered compute: the sum (in job-index order) of each group's
// analytic service seconds over the whole trace - the deterministic load
// signal the load-aware policy balances on.
std::vector<double> group_service_seconds(const std::vector<Slot_job>& jobs,
                                          uint32_t n_groups,
                                          const arch::Cluster_config& cluster,
                                          double clock_ghz);

// Shard of each group under `policy`.  `group_load` is only read by
// load-aware (pass group_service_seconds() output; round-robin accepts an
// empty vector).  Aborts (PP_CHECK) on an unknown policy name - CLI layers
// validate first (bench_util.h) and exit 2 with the registered list.
std::vector<uint32_t> place_groups(const std::string& policy,
                                   const std::vector<double>& group_load,
                                   uint32_t n_groups, uint32_t n_shards);

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_PLACEMENT_H
