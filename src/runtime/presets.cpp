#include "runtime/presets.h"

#include <algorithm>
#include <string>

namespace pp::runtime {

Pipeline use_case_pipeline(const Use_case_options& opt) {
  const auto& cluster = opt.cluster;
  const auto& dims = opt.dims;
  const uint32_t n_cores = cluster.n_cores();
  const uint32_t fft_n = dims.fft_size;
  const uint32_t gang = fft_n / 16;  // cores per FFT

  Pipeline p("pusch-use-case", cluster);

  // ---- FFT: n_rx transforms per symbol --------------------------------
  {
    const uint32_t n_inst = std::max(1u, n_cores / gang);
    const uint32_t reps = std::max(1u, std::min(16u, dims.n_rx / n_inst));
    const uint32_t per_run = n_inst * reps;
    const uint32_t runs_per_symbol = (dims.n_rx + per_run - 1) / per_run;

    Stage_spec st;
    st.name = "OFDM FFT " + std::to_string(per_run) + "x" +
              std::to_string(fft_n) + "pt";
    st.role = Stage_role::fft;
    st.run = {"fft.parallel",
              Params().set("n", fft_n).set("inst", n_inst).set("reps", reps),
              uint64_t{runs_per_symbol} * dims.n_symb};
    st.serial = {"fft.serial", Params().set("n", fft_n),
                 uint64_t{dims.n_rx} * dims.n_symb};
    p.add(std::move(st));
  }

  // ---- Beamforming MMM: (n_sc x n_rx) x (n_rx x n_beams) per symbol ---
  {
    // MemPool's 1 MiB L1 cannot hold the full 4096x64 grid at once; process
    // row slices (the real system streams symbol data through L1 anyway).
    const uint64_t words_needed =
        static_cast<uint64_t>(fft_n) * dims.n_rx +
        static_cast<uint64_t>(dims.n_rx) * dims.n_beams +
        static_cast<uint64_t>(fft_n) * dims.n_beams;
    uint32_t slices = 1;
    while (words_needed / slices > cluster.l1_words() * 3 / 4) slices *= 2;
    const uint32_t m_rows = fft_n / slices;

    Stage_spec st;
    st.name = "BF MMM " + std::to_string(m_rows) + "x" +
              std::to_string(dims.n_rx) + "x" + std::to_string(dims.n_beams);
    st.role = Stage_role::beamform;
    st.run = {"mmm",
              Params().set("m", m_rows).set("k", dims.n_rx).set("p",
                                                                dims.n_beams),
              uint64_t{slices} * dims.n_symb};
    // Serial baseline on a 512-row slice, scaled (strictly linear in rows).
    st.serial = {"mmm",
                 Params()
                     .set("m", 512u)
                     .set("k", dims.n_rx)
                     .set("p", dims.n_beams)
                     .set("mode", "serial"),
                 uint64_t{fft_n / 512} * dims.n_symb};
    p.add(std::move(st));
  }

  // ---- MIMO Cholesky: n_sc small decompositions per data symbol -------
  {
    uint32_t per_core = fft_n / n_cores;
    uint64_t times = dims.n_data_symb();
    if (opt.batch_cholesky) {
      // Batch up to 4 data symbols between barriers, L1 permitting
      // (each 4x4 G+L pair costs 8 rows per matrix per core).
      const uint32_t max_per_core = cluster.bank_words / 8 / 2;
      uint32_t batch = std::min(4u, max_per_core / std::max(per_core, 1u));
      batch = std::max(batch, 1u);
      per_core *= batch;
      times = (dims.n_data_symb() + batch - 1) / batch;
    }
    Stage_spec st;
    st.name = "MIMO Chol " + std::to_string(per_core) + "x" +
              std::to_string(n_cores) + " " + std::to_string(dims.n_ue) + "x" +
              std::to_string(dims.n_ue);
    st.role = Stage_role::mimo_solve;
    st.run = {"chol.batch",
              Params().set("n", dims.n_ue).set("per_core", per_core), times};
    st.serial = {"chol.serial",
                 Params().set("n", dims.n_ue).set("reps", 16u),
                 uint64_t{fft_n / 16} * dims.n_data_symb()};
    p.add(std::move(st));
  }

  // ---- optional extension rows ----------------------------------------
  if (opt.include_estimation) {
    const uint32_t slice_sc = 512;
    const uint32_t slices = fft_n / slice_sc;
    const Params est = Params()
                           .set("sc", slice_sc)
                           .set("b", dims.n_beams)
                           .set("l", dims.n_ue);
    {
      Stage_spec st;
      st.name = "CHE (ext)";
      st.role = Stage_role::che;
      st.run = {"che", est, uint64_t{dims.n_pilot_symb} * slices};
      st.core_set = false;
      p.add(std::move(st));
    }
    {
      Stage_spec st;
      st.name = "NE (ext)";
      st.role = Stage_role::ne;
      st.run = {"ne", est, uint64_t{dims.n_pilot_symb} * slices};
      st.core_set = false;
      p.add(std::move(st));
    }
    {
      // The Gramian slice is widened to the L1 budget so every core gets
      // work and the join barrier amortizes over more sub-carriers.
      const uint32_t gram_sc = cluster.l1_words() >= (1u << 20) ? 2048 : 512;
      Stage_spec st;
      st.name = "MIMO gramian (ext)";
      st.role = Stage_role::gram;
      st.run = {"gram.batch",
                Params()
                    .set("sc", gram_sc)
                    .set("b", dims.n_beams)
                    .set("l", dims.n_ue),
                uint64_t{dims.n_data_symb()} * (fft_n / gram_sc)};
      st.core_set = false;
      p.add(std::move(st));
    }
    {
      Stage_spec st;
      st.name = "MIMO solves (ext)";
      st.role = Stage_role::custom;
      st.run = {"trisolve.batch",
                Params().set("n", dims.n_ue).set("per_core", fft_n / n_cores),
                dims.n_data_symb()};
      st.core_set = false;
      p.add(std::move(st));
    }
  }
  return p;
}

Rollup_result run_use_case(const Use_case_options& opt) {
  Measure_options mopt;
  mopt.shards = std::max(1u, opt.sim_shards);
  mopt.reuse_reports = opt.reuse_reports;
  return use_case_pipeline(opt).measure(mopt);
}

Pipeline uplink_pipeline(const arch::Cluster_config& cluster,
                         const Uplink_options& opt) {
  Pipeline p("pusch-uplink", cluster);
  {
    Stage_spec st;
    st.name = "OFDM FFT";
    st.role = Stage_role::fft;
    st.run.kernel = "fft.parallel";
    if (opt.fft_instances) st.run.params.set("inst", opt.fft_instances);
    st.rescale = 8.0;  // time samples into the FFT
    p.add(std::move(st));
  }
  {
    Stage_spec st;
    st.name = "BF MMM";
    st.role = Stage_role::beamform;
    st.run.kernel = "mmm";
    st.rescale = 4.0;  // frequency grid into the MMM
    p.add(std::move(st));
  }
  {
    Stage_spec st;
    st.name = "CHE";
    st.role = Stage_role::che;
    st.run.kernel = "che";
    st.rescale = 4.0;  // beam grid into CHE
    p.add(std::move(st));
  }
  {
    Stage_spec st;
    st.name = "NE";
    st.role = Stage_role::ne;
    st.run.kernel = "ne";
    st.rescale = 4.0;  // beam grid into NE
    p.add(std::move(st));
  }
  {
    Stage_spec st;
    st.name = "MIMO gram";
    st.role = Stage_role::gram;
    st.run.kernel = "gram.batch";
    st.rescale = 4.0;  // beam grid into the matched filter; the chol/solve
                       // stage inherits this scale through the rhs
    p.add(std::move(st));
  }
  {
    Stage_spec st;
    st.name = "MIMO chol+solve";
    st.role = Stage_role::mimo_solve;
    st.run.kernel = "chol.batch";
    if (opt.chol_symb_batch > 1) {
      st.run.params.set("symb_batch", opt.chol_symb_batch);
    }
    p.add(std::move(st));
  }
  return p;
}

std::vector<std::pair<std::string, std::string>> preset_names() {
  return {
      {"uplink",
       "end-to-end functional PUSCH receive chain (uplink_pipeline); "
       "executes on any backend"},
      {"use-case",
       "analytic Fig. 9c use-case roll-up (use_case_pipeline); measured on "
       "the simulated cluster"},
  };
}

}  // namespace pp::runtime
