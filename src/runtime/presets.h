// Pipeline presets for the paper's PUSCH workloads.
//
// use_case_pipeline() builds the declarative stage list of the paper's
// Fig. 9c use case (64 antennas, 4096-point grid, 32 beams, 4 UEs, 14
// symbols); run_use_case() measures it - one simulated instance per stage,
// scaled by the per-slot repetition counts, plus the single-core baselines.
//
// uplink_pipeline() builds the end-to-end functional receive chain for an
// uplink scenario; execute it on a runtime::Backend ("sim" or "reference").
#ifndef PUSCHPOOL_RUNTIME_PRESETS_H
#define PUSCHPOOL_RUNTIME_PRESETS_H

#include <utility>

#include "pusch/complexity.h"
#include "runtime/pipeline.h"

namespace pp::runtime {

// Configuration of the analytic use-case roll-up (paper SVI, Fig. 9c).
struct Use_case_options {
  arch::Cluster_config cluster = arch::Cluster_config::terapool();
  pusch::Pusch_dims dims;
  bool batch_cholesky = true;       // schedule 4 data symbols per batch
  bool include_estimation = false;  // extension: CHE/NE/gram/solve rows
  // Roll-up measurement knobs (Measure_options): host threads for the
  // per-stage machines and report reuse.  Bit-identical for any setting.
  uint32_t sim_shards = 1;
  bool reuse_reports = true;
};

Pipeline use_case_pipeline(const Use_case_options& opt);

// Measures the use-case pipeline: equivalent to
// use_case_pipeline(opt).measure().
Rollup_result run_use_case(const Use_case_options& opt);

// Configuration knobs of the functional uplink chain.
struct Uplink_options {
  uint32_t fft_instances = 0;   // concurrent FFT gangs; 0 = fill the cluster
  uint32_t chol_symb_batch = 1;  // data symbols per Cholesky/solve launch
};

Pipeline uplink_pipeline(const arch::Cluster_config& cluster,
                         const Uplink_options& opt = {});

// (name, summary) of the built-in pipeline presets, in registration order -
// the CLI `--list` surface next to Registry::list() and backend_names().
std::vector<std::pair<std::string, std::string>> preset_names();

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_PRESETS_H
