#include "runtime/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace pp::runtime {

void Kernel::bind_scalar(std::string_view port, double) {
  unknown_port(port);
}

double Kernel::fetch_scalar(std::string_view port) const {
  unknown_port(port);
}

void Kernel::unknown_port(std::string_view port) const {
  std::fprintf(stderr, "kernel '%s' has no port '%.*s'\n", desc_.name.c_str(),
               static_cast<int>(port.size()), port.data());
  std::abort();
}

void register_builtin_kernels(Registry& r);  // adapters.cpp

Registry& Registry::instance() {
  static Registry* reg = [] {
    auto* r = new Registry();
    register_builtin_kernels(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(std::string name, std::string summary,
                   std::vector<std::string> keys, Kernel_factory factory) {
  PP_CHECK(!contains(name), "duplicate kernel registration");
  entries_.push_back(
      {std::move(name), std::move(summary), std::move(keys), std::move(factory)});
}

bool Registry::contains(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::unique_ptr<Kernel> Registry::make(const std::string& name,
                                       sim::Machine& m, arch::L1_alloc& alloc,
                                       const Params& p) const {
  for (const auto& e : entries_) {
    if (e.name != name) continue;
    for (const auto& key : p.keys()) {
      if (std::find(e.keys.begin(), e.keys.end(), key) != e.keys.end()) {
        continue;
      }
      std::fprintf(stderr,
                   "kernel '%s' does not accept parameter '%s'; accepted:",
                   name.c_str(), key.c_str());
      for (const auto& k : e.keys) std::fprintf(stderr, " %s", k.c_str());
      std::fprintf(stderr, "\n");
      std::abort();
    }
    return e.factory(m, alloc, p);
  }
  std::fprintf(stderr, "no kernel '%s' in the registry; known kernels:\n",
               name.c_str());
  for (const auto& e : entries_) {
    std::fprintf(stderr, "  %-16s %s\n", e.name.c_str(), e.summary.c_str());
  }
  std::abort();
}

std::vector<std::pair<std::string, std::string>> Registry::list() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e.name, e.summary);
  return out;
}

std::unique_ptr<Kernel> make_kernel(const std::string& name, sim::Machine& m,
                                    arch::L1_alloc& alloc, const Params& p) {
  return Registry::instance().make(name, m, alloc, p);
}

}  // namespace pp::runtime
