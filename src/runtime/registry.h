// String-keyed kernel registry.
//
// Every kernel configuration the repo knows how to run is reachable by name:
//
//   sim::Machine m(cluster);
//   arch::L1_alloc alloc(m.config());
//   auto k = runtime::make_kernel("fft.parallel", m, alloc,
//                                 runtime::Params().set("n", 256).set("inst", 4));
//   common::Rng rng(1);
//   k->bind_default_inputs(rng);
//   auto report = k->launch();
//
// Builtin kernels (registered on first use):
//   fft.serial      n, reps
//   fft.parallel    n, inst (0/absent = fill cluster), reps, folded
//   mmm             m, k, p, wr, wc, mode=parallel|serial, cores (0 = all)
//   chol.batch      n, per_core, cores (0 = all)
//   chol.pair       n, pairs (0 = fill cluster), mirrored
//   chol.serial     n, reps
//   trisolve.batch  n, per_core, cores (0 = all)
//   gram.batch      sc, b, l, cores (0 = all)
//   che             sc, b, l, cores (0 = all)
//   ne              sc, b, l, cores (0 = all)
#ifndef PUSCHPOOL_RUNTIME_REGISTRY_H
#define PUSCHPOOL_RUNTIME_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "runtime/kernel.h"
#include "sim/machine.h"

namespace pp::runtime {

using Kernel_factory = std::function<std::unique_ptr<Kernel>(
    sim::Machine&, arch::L1_alloc&, const Params&)>;

class Registry {
 public:
  // The process-wide registry, with builtin kernels already registered.
  static Registry& instance();

  // `keys` lists every parameter the kernel accepts; make() rejects any
  // Params key outside it, so CLI typos fail loudly instead of silently
  // measuring a default configuration.
  void add(std::string name, std::string summary,
           std::vector<std::string> keys, Kernel_factory factory);

  bool contains(const std::string& name) const;

  std::unique_ptr<Kernel> make(const std::string& name, sim::Machine& m,
                               arch::L1_alloc& alloc, const Params& p) const;

  // (name, summary) pairs in registration order.
  std::vector<std::pair<std::string, std::string>> list() const;

 private:
  struct Entry {
    std::string name;
    std::string summary;
    std::vector<std::string> keys;
    Kernel_factory factory;
  };
  std::vector<Entry> entries_;
};

// Convenience wrapper over Registry::instance().make().
std::unique_ptr<Kernel> make_kernel(const std::string& name, sim::Machine& m,
                                    arch::L1_alloc& alloc,
                                    const Params& p = {});

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_REGISTRY_H
