#include "runtime/scheduler.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include <algorithm>

#include "common/check.h"
#include "common/table.h"
#include "pusch/complexity.h"
#include "runtime/admission.h"
#include "runtime/backend.h"
#include "runtime/harq.h"
#include "runtime/placement.h"

namespace pp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Hand-off between a worker's front and back thread in pipelined mode: a
// one-deep mailbox, i.e. the double buffer - the back thread equalizes slot
// n while the front thread's FFT+beamforming of slot n+1 fills the mailbox.
struct Front_item {
  uint64_t index = 0;
  std::unique_ptr<const phy::Uplink_scenario> sc;
  Slot_front front;
  double front_seconds = 0.0;
};

class Front_mailbox {
 public:
  void push(Front_item item) {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return !item_.has_value(); });
    item_.emplace(std::move(item));
    cv_.notify_all();
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    cv_.notify_all();
  }

  std::optional<Front_item> pop() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return item_.has_value() || closed_; });
    if (!item_.has_value()) return std::nullopt;
    std::optional<Front_item> out = std::move(item_);
    item_.reset();
    cv_.notify_all();
    return out;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::optional<Front_item> item_;
  bool closed_ = false;
};

// Recycled Slot_front storage for one front/back thread pair: the back
// thread returns consumed fronts, so the front thread's next
// run_front_into() reuses the grown beam grid instead of allocating.  The
// mailbox is one deep, so at most two fronts are ever in flight per pair;
// the cap is slack on top of that.
class Front_pool {
 public:
  Slot_front take() {
    std::lock_guard<std::mutex> lock(m_);
    if (items_.empty()) return {};
    Slot_front f = std::move(items_.back());
    items_.pop_back();
    return f;
  }
  void put(Slot_front f) {
    std::lock_guard<std::mutex> lock(m_);
    if (items_.size() < 4) items_.push_back(std::move(f));
  }

 private:
  std::mutex m_;
  std::vector<Slot_front> items_;
};

}  // namespace

double analytic_service_seconds(const phy::Uplink_config& cfg,
                                const arch::Cluster_config& cluster,
                                double clock_ghz) {
  PP_CHECK(clock_ghz > 0.0, "service model needs a positive clock");
  pusch::Pusch_dims d;
  d.n_sc = cfg.n_sc;
  d.fft_size = cfg.fft_size;
  d.n_symb = cfg.n_symb;
  d.n_pilot_symb = cfg.n_pilot_symb;
  d.n_rx = cfg.n_rx;
  d.n_beams = cfg.n_beams;
  d.n_ue = cfg.n_ue;
  const double cycles = pusch::pusch_macs(d).total() / cluster.n_cores();
  return cycles / (clock_ghz * 1e9);
}

Slot_scheduler::Slot_scheduler(Scheduler_options opt) : opt_(std::move(opt)) {}

Schedule_result Slot_scheduler::run(const Slot_source& src) const {
  const uint64_t n_initial = src.n_slots();
  const uint32_t n_shards = std::max(1u, opt_.shards);
  const uint32_t service_units = std::max(1u, opt_.service_units);
  PP_CHECK(!(opt_.virtual_only && opt_.max_harq > 0),
           "HARQ retransmission verdicts need executed decodes; "
           "virtual-only runs cannot close the loop");

  const Pipeline pipeline = uplink_pipeline(opt_.cluster, opt_.uplink);

  // Probe the backend once for the split and cycle-accuracy capabilities
  // (cheap: intra = 1 spawns no pool threads).
  bool pipelined = opt_.pipelined && !opt_.virtual_only;
  bool cycle_accurate = false;
  {
    const auto probe = make_backend(opt_.backend, 1);
    cycle_accurate = probe->cycle_accurate() && !opt_.virtual_only &&
                     !opt_.analytic_service;
    pipelined = pipelined && probe->can_split();
  }

  // ---- serial pre-pass: resolve, place, admit --------------------------
  // job(i) is pure and cheap (the expensive scenario construction stays in
  // the workers), so resolving the whole stream serially keeps the
  // placement and admission decisions trivially host-independent.
  std::vector<Slot_job> jobs(n_initial);
  for (uint64_t i = 0; i < n_initial; ++i) jobs[i] = src.job(i);
  // HARQ bookkeeping: which original slot each job serves and its attempt
  // number.  The exogenous stream is its own parent at attempt 0;
  // retransmission jobs appended by the HARQ loop extend these in step
  // with `jobs`.
  std::vector<uint64_t> parent(n_initial);
  std::vector<uint32_t> attempt(n_initial, 0);
  for (uint64_t i = 0; i < n_initial; ++i) parent[i] = i;

  // Placement sees the exogenous stream only - retransmissions inherit
  // their parent's group and therefore its shard, so closing the HARQ loop
  // never migrates a cell.
  const std::vector<uint32_t> shard_of_group = place_groups(
      opt_.placement,
      opt_.placement == "load-aware"
          ? group_service_seconds(jobs, src.n_groups(), opt_.cluster,
                                  opt_.clock_ghz)
          : std::vector<double>(),
      src.n_groups(), n_shards);

  Admission_options aopt;
  aopt.policy = overload_from_name(opt_.overload);
  aopt.queue_limit = opt_.queue_limit;
  aopt.min_ue = opt_.degrade_min_ue;
  std::vector<Admission_verdict> verdicts =
      admit_jobs(jobs, shard_of_group, n_shards, service_units, opt_.cluster,
                 opt_.clock_ghz, aopt);

  // Full per-slot results are retained only when someone consumes them:
  // the caller (keep_slots) or the HARQ combiner (max_harq > 0).  Otherwise
  // the serving loop runs in summary mode - each worker equalizes into one
  // private reusable Slot_result and records only the per-slot scalars the
  // aggregation below needs, so the steady state allocates nothing.
  const bool retain = opt_.keep_slots || opt_.max_harq > 0;
  struct Slot_stats {
    double evm = 0.0;
    double ber = 0.0;
    double sigma2_hat = 0.0;
    uint64_t cycles = 0;
  };
  std::vector<Slot_result> slots(retain ? jobs.size() : 0);
  std::vector<Slot_stats> stats(jobs.size());
  std::vector<double> wall_service(jobs.size(), 0.0);
  double wall_seconds = 0.0;
  uint32_t workers_used = 0;

  // Per-worker state persists across HARQ rounds: the backends (and the
  // slot workspaces they grew on round 0), the summary-mode result scratch,
  // and the pipelined mode's recycled Slot_front storage.
  std::vector<std::unique_ptr<Backend>> whole_backends;
  std::vector<std::unique_ptr<Backend>> front_backends, back_backends;
  std::vector<Slot_result> scratch;
  std::vector<std::unique_ptr<Front_pool>> front_pools;

  // Execute jobs[first..jobs.size()) that survived admission - the whole
  // initial stream on round 0, each round's retransmissions afterwards.
  //
  // Workers pull positions in the admitted stream from the cursor and write
  // results into their own pre-sized element - no locks, no shared mutable
  // kernel state (each worker or worker-thread owns a private Backend; the
  // lazily-built twiddle / QAM tables are call_once-guarded and immutable
  // afterwards).  Scenarios come from the admission verdict's final config,
  // so a degraded slot executes its re-planned layer count.
  auto execute_batch = [&](uint64_t first) {
    // Compact execution stream: dropped jobs are shed before any backend
    // sees them - that is the point of admission control.
    std::vector<uint64_t> exec;
    exec.reserve(jobs.size() - first);
    for (uint64_t i = first; i < jobs.size(); ++i) {
      if (verdicts[i].outcome != Admission_verdict::Outcome::dropped) {
        exec.push_back(i);
      }
    }

    uint32_t workers = opt_.workers;
    // --sim-shards: a fixed count of concurrent simulated machines.  Only
    // the thread count changes - the index-ordered merges below make every
    // shard count bit-identical, so this stays out of the determinism
    // surface.
    if (opt_.sim_shards > 0 && opt_.backend == "sim") workers = opt_.sim_shards;
    if (workers == 0) {
      workers = std::max(1u, std::thread::hardware_concurrency());
    }
    if (workers > exec.size()) {
      workers = static_cast<uint32_t>(std::max<size_t>(exec.size(), 1));
    }
    if (workers_used == 0) workers_used = workers;
    std::atomic<uint64_t> cursor{0};

    // Grow the persistent per-worker state (never shrink: a later HARQ
    // round with fewer jobs still reuses the backends round 0 built).
    if (scratch.size() < workers) scratch.resize(workers);
    if (pipelined) {
      if (front_backends.size() < workers) front_backends.resize(workers);
      if (back_backends.size() < workers) back_backends.resize(workers);
      while (front_pools.size() < workers) {
        front_pools.push_back(std::make_unique<Front_pool>());
      }
    } else if (whole_backends.size() < workers) {
      whole_backends.resize(workers);
    }
    auto record = [&](uint64_t i, const Slot_result& r) {
      stats[i] = {r.evm, r.ber, r.sigma2_hat, r.total_cycles()};
    };

    // Plain mode: each worker runs whole slots, exactly the old sweep
    // engine.
    auto work_whole = [&](uint32_t w) {
      if (!whole_backends[w]) {
        whole_backends[w] = make_backend(opt_.backend, opt_.intra);
      }
      Backend& backend = *whole_backends[w];
      for (;;) {
        const uint64_t p = cursor.fetch_add(1, std::memory_order_relaxed);
        if (p >= exec.size()) break;
        const uint64_t i = exec[p];
        const phy::Uplink_scenario sc(verdicts[i].cfg);
        const auto t0 = Clock::now();
        Slot_result& dst = retain ? slots[i] : scratch[w];
        pipeline.execute_into(sc, backend, dst);
        wall_service[i] = seconds_since(t0);
        record(i, dst);
      }
    };

    // Pipelined mode: the worker becomes two threads with private backends.
    // The front thread owns scenario generation + FFT + beamforming of the
    // next slot while the back thread finishes the previous one; consumed
    // Slot_fronts cycle back through the pair's Front_pool.
    auto work_front = [&](uint32_t w, Front_mailbox& box) {
      if (!front_backends[w]) {
        front_backends[w] = make_backend(opt_.backend, opt_.intra);
      }
      Backend& backend = *front_backends[w];
      for (;;) {
        const uint64_t p = cursor.fetch_add(1, std::memory_order_relaxed);
        if (p >= exec.size()) break;
        const uint64_t i = exec[p];
        auto sc =
            std::make_unique<const phy::Uplink_scenario>(verdicts[i].cfg);
        Slot_front front = front_pools[w]->take();
        const auto t0 = Clock::now();
        backend.run_front_into(pipeline, *sc, front);
        const double dt = seconds_since(t0);
        box.push(Front_item{i, std::move(sc), std::move(front), dt});
      }
      box.close();
    };
    auto work_back = [&](uint32_t w, Front_mailbox& box) {
      if (!back_backends[w]) {
        back_backends[w] = make_backend(opt_.backend, opt_.intra);
      }
      Backend& backend = *back_backends[w];
      while (auto item = box.pop()) {
        const auto t0 = Clock::now();
        Slot_result& dst = retain ? slots[item->index] : scratch[w];
        backend.run_back_into(pipeline, *item->sc, item->front, dst);
        wall_service[item->index] = item->front_seconds + seconds_since(t0);
        record(item->index, dst);
        front_pools[w]->put(std::move(item->front));
      }
    };

    const auto t0 = Clock::now();
    if (!exec.empty() && !opt_.virtual_only) {
      if (pipelined) {
        std::vector<Front_mailbox> boxes(workers);
        std::vector<std::thread> pool;
        pool.reserve(2 * workers - 1);
        for (uint32_t w = 0; w < workers; ++w) {
          pool.emplace_back([&, w] { work_front(w, boxes[w]); });
          // The calling thread serves as worker 0's back half.
          if (w > 0) pool.emplace_back([&, w] { work_back(w, boxes[w]); });
        }
        work_back(0, boxes[0]);
        for (auto& t : pool) t.join();
      } else if (workers <= 1) {
        work_whole(0);
      } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (uint32_t w = 0; w < workers; ++w) {
          pool.emplace_back([&, w] { work_whole(w); });
        }
        for (auto& t : pool) t.join();
      }
    }
    wall_seconds += seconds_since(t0);
  };

  execute_batch(0);

  // ---- HARQ retransmission loop ----------------------------------------
  // After each round a serial pass in stream order folds every executed
  // attempt into its block's chase combiner, records the verdict, and
  // queues a retransmission for each block still above the BER threshold
  // with attempts left.  A block whose attempt was dropped by admission
  // gets no decode this round - NACK-on-silence: it is retransmitted all
  // the same.  Everything here runs on the serial thread over data already
  // merged in index order, so the schedule and verdict stream are pure
  // functions of the per-slot results.
  std::vector<Harq_combiner> blocks;
  std::vector<uint32_t> spawned;
  std::vector<Schedule_result::Harq_entry> harq_log;
  if (opt_.max_harq > 0) {
    blocks.resize(n_initial);
    spawned.assign(n_initial, 0);
    uint64_t round_begin = 0;
    for (;;) {
      const uint64_t round_end = jobs.size();
      struct Pending {
        Slot_job job;
        uint64_t parent = 0;
        uint32_t attempt = 0;
      };
      std::vector<Pending> next;
      next.reserve(round_end - round_begin);
      harq_log.reserve(harq_log.size() + (round_end - round_begin));
      for (uint64_t i = round_begin; i < round_end; ++i) {
        const uint64_t p = parent[i];
        Harq_combiner& blk = blocks[p];
        if (verdicts[i].outcome != Admission_verdict::Outcome::dropped) {
          blk.absorb(verdicts[i].cfg, slots[i]);
        }
        const bool passed = blk.decoded() && blk.best_ber() <= opt_.harq_ber;
        harq_log.push_back(
            {p, attempt[i], blk.decoded() ? blk.best_ber() : 1.0, passed});
        if (!passed && spawned[p] < opt_.max_harq) {
          ++spawned[p];
          Pending r;
          r.job = jobs[p];
          // Same transport block under a fresh fade (phy::kHarqStream),
          // arriving one deadline budget per attempt after the original
          // (batch jobs have no budget and re-arrive immediately).
          r.job.cfg.harq_attempt = spawned[p];
          r.job.arrival_s = jobs[p].arrival_s + spawned[p] * jobs[p].budget_s;
          r.parent = p;
          r.attempt = spawned[p];
          next.push_back(std::move(r));
        }
      }
      if (next.empty()) break;
      // Retransmissions enter the stream in (arrival, parent) order, so a
      // round is itself a valid job stream (non-decreasing arrivals) and
      // its order is a pure function of the verdicts above.
      std::sort(next.begin(), next.end(),
                [](const Pending& a, const Pending& b) {
                  if (a.job.arrival_s != b.job.arrival_s) {
                    return a.job.arrival_s < b.job.arrival_s;
                  }
                  return a.parent < b.parent;
                });
      const uint64_t first = jobs.size();
      for (size_t k = 0; k < next.size(); ++k) {
        next[k].job.index = first + k;
        jobs.push_back(next[k].job);
        parent.push_back(next[k].parent);
        attempt.push_back(next[k].attempt);
      }
      // Admit the round by re-running the predictor chronologically over
      // the whole stream so far: earlier rounds' verdicts are replayed
      // (occupancy only - decisions are final) and this round's
      // retransmissions decided interleaved at their true arrivals, so a
      // retransmission contends with exactly the load present around its
      // arrival instead of a clock the earlier pass left at end-of-stream.
      verdicts.resize(jobs.size());
      std::vector<uint64_t> order(jobs.size());
      for (uint64_t i = 0; i < jobs.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
        if (jobs[a].arrival_s != jobs[b].arrival_s) {
          return jobs[a].arrival_s < jobs[b].arrival_s;
        }
        return a < b;
      });
      Admission_state astate(n_shards, service_units);
      for (const uint64_t i : order) {
        if (i < first) {
          replay_one(jobs[i], verdicts[i], opt_.cluster, opt_.clock_ghz,
                     astate);
        } else {
          verdicts[i] = admit_one(jobs[i], shard_of_group[jobs[i].group],
                                  opt_.cluster, opt_.clock_ghz, aopt, astate);
        }
      }
      slots.resize(jobs.size());
      stats.resize(jobs.size());
      wall_service.resize(jobs.size(), 0.0);
      execute_batch(first);
      round_begin = first;
    }
  }
  const uint64_t n_jobs = jobs.size();

  // ---- deterministic virtual-time deadline accounting ------------------
  // Service times: simulated cycles at the virtual clock when the backend
  // reports them, the analytic MAC model otherwise; both are pure functions
  // of the executed slot configuration.  Each shard drains its admitted
  // jobs through its own FCFS queue over `service_units` virtual clusters,
  // independent of host scheduling and of the other shards.  With HARQ on,
  // a shard's jobs arrive over several rounds, so each queue re-sorts by
  // (arrival, stream index) - the identity permutation when max_harq = 0,
  // where arrivals are already non-decreasing in the index.
  std::vector<std::vector<uint64_t>> shard_jobs(n_shards);
  {
    std::vector<uint64_t> per_shard(n_shards, 0);
    for (uint64_t i = 0; i < n_jobs; ++i) {
      if (verdicts[i].outcome != Admission_verdict::Outcome::dropped) {
        ++per_shard[verdicts[i].shard];
      }
    }
    for (uint32_t s = 0; s < n_shards; ++s) {
      shard_jobs[s].reserve(per_shard[s]);
    }
  }
  for (uint64_t i = 0; i < n_jobs; ++i) {
    if (verdicts[i].outcome != Admission_verdict::Outcome::dropped) {
      shard_jobs[verdicts[i].shard].push_back(i);
    }
  }
  std::vector<double> completion_s(n_jobs, 0.0);
  for (uint32_t s = 0; s < n_shards; ++s) {
    std::vector<uint64_t>& idx = shard_jobs[s];
    std::sort(idx.begin(), idx.end(), [&](uint64_t a, uint64_t b) {
      if (jobs[a].arrival_s != jobs[b].arrival_s) {
        return jobs[a].arrival_s < jobs[b].arrival_s;
      }
      return a < b;
    });
    std::vector<double> arrival(idx.size()), service(idx.size());
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint64_t i = idx[k];
      arrival[k] = jobs[i].arrival_s;
      service[k] = cycle_accurate
                       ? static_cast<double>(stats[i].cycles) /
                             (opt_.clock_ghz * 1e9)
                       : analytic_service_seconds(verdicts[i].cfg,
                                                  opt_.cluster, opt_.clock_ghz);
    }
    const std::vector<double> comp =
        fcfs_completion(arrival, service, service_units);
    for (size_t k = 0; k < comp.size(); ++k) completion_s[idx[k]] = comp[k];
  }

  // ---- aggregation, strictly in slot-index order -----------------------
  Schedule_result out;
  out.source = src.name();
  out.backend = opt_.backend;
  out.placement = opt_.placement;
  out.overload = opt_.overload;
  out.workers = workers_used;
  out.pipelined = pipelined;
  out.total_slots = n_jobs;
  out.wall_seconds = wall_seconds;
  out.shards.resize(n_shards);

  out.groups.resize(src.n_groups());
  for (uint32_t g = 0; g < src.n_groups(); ++g) {
    out.groups[g].label = src.group_label(g);
    out.groups[g].shard = shard_of_group[g];
    ++out.shards[shard_of_group[g]].groups;
  }
  std::vector<double> group_evm2(out.groups.size(), 0.0);
  std::vector<double> group_ber(out.groups.size(), 0.0);
  std::vector<double> group_sigma2(out.groups.size(), 0.0);
  for (uint64_t i = 0; i < n_jobs; ++i) {
    const Slot_job& job = jobs[i];
    const Admission_verdict& v = verdicts[i];
    PP_CHECK(job.group < out.groups.size(), "slot job group out of range");
    auto& grp = out.groups[job.group];
    auto& shard = out.shards[v.shard];
    ++grp.slots;
    ++shard.slots;
    if (attempt[i] > 0) {
      // A retransmission job, admitted or not, is offered load the HARQ
      // loop generated.
      ++grp.harq_retx;
      ++shard.harq_retx;
      ++out.harq_retx;
    }
    if (v.outcome == Admission_verdict::Outcome::dropped) {
      ++grp.dropped;
      ++shard.dropped;
      ++out.dropped;
      continue;
    }
    ++grp.admitted;
    ++shard.admitted;
    ++out.admitted;
    if (v.outcome == Admission_verdict::Outcome::degraded) {
      ++grp.degraded;
      ++shard.degraded;
      ++out.degraded;
    }
    const Slot_stats& s = stats[i];
    group_evm2[job.group] += s.evm * s.evm;
    group_ber[job.group] += s.ber;
    group_sigma2[job.group] += s.sigma2_hat;
    grp.cycles += s.cycles;
    out.total_cycles += s.cycles;

    const double latency = completion_s[i] - job.arrival_s;
    grp.latency.record(latency);
    shard.latency.record(latency);
    if (!opt_.virtual_only) out.wall_service.record(wall_service[i]);
    out.virtual_makespan_s = std::max(out.virtual_makespan_s, completion_s[i]);
    if (job.budget_s > 0.0) {
      ++out.deadline_slots;
      ++grp.deadline_slots;
      ++shard.deadline_slots;
      if (latency > job.budget_s) {
        ++out.deadline_misses;
        ++grp.deadline_misses;
        ++shard.deadline_misses;
      }
    }
  }
  // Global latency = exact bucket-wise merge of the shard histograms, in
  // shard order (merging is commutative, so the order is cosmetic).
  for (const auto& shard : out.shards) out.latency.merge(shard.latency);
  for (size_t g = 0; g < out.groups.size(); ++g) {
    auto& grp = out.groups[g];
    if (grp.admitted > 0) {
      grp.evm = std::sqrt(group_evm2[g] / grp.admitted);
      grp.ber = group_ber[g] / grp.admitted;
      grp.sigma2_hat = group_sigma2[g] / grp.admitted;
    }
  }
  if (opt_.max_harq > 0) {
    // Per-block HARQ outcome, in original slot order: a block that ever
    // retransmitted either recovered (finally passed the threshold) or
    // exhausted its attempts still failing.  Blocks that passed on the
    // initial transmission never retransmitted and count as neither.
    for (uint64_t p = 0; p < n_initial; ++p) {
      if (spawned[p] == 0) continue;
      const bool passed =
          blocks[p].decoded() && blocks[p].best_ber() <= opt_.harq_ber;
      auto& grp = out.groups[jobs[p].group];
      auto& shard = out.shards[verdicts[p].shard];
      if (passed) {
        ++grp.harq_recovered;
        ++shard.harq_recovered;
        ++out.harq_recovered;
      } else {
        ++grp.harq_exhausted;
        ++shard.harq_exhausted;
        ++out.harq_exhausted;
      }
    }
  }
  out.harq = std::move(harq_log);
  if (opt_.keep_slots) out.slots = std::move(slots);
  return out;
}

bool Schedule_result::deterministic_equal(const Schedule_result& o) const {
  if (groups.size() != o.groups.size()) return false;
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& a = groups[g];
    const Group& b = o.groups[g];
    if (a.label != b.label || a.shard != b.shard || a.slots != b.slots ||
        a.evm != b.evm || a.ber != b.ber || a.sigma2_hat != b.sigma2_hat ||
        a.cycles != b.cycles || a.admitted != b.admitted ||
        a.dropped != b.dropped || a.degraded != b.degraded ||
        a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        a.harq_retx != b.harq_retx || a.harq_recovered != b.harq_recovered ||
        a.harq_exhausted != b.harq_exhausted || !(a.latency == b.latency)) {
      return false;
    }
  }
  if (shards.size() != o.shards.size()) return false;
  for (size_t s = 0; s < shards.size(); ++s) {
    const Shard& a = shards[s];
    const Shard& b = o.shards[s];
    if (a.groups != b.groups || a.slots != b.slots ||
        a.admitted != b.admitted || a.dropped != b.dropped ||
        a.degraded != b.degraded || a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        a.harq_retx != b.harq_retx || a.harq_recovered != b.harq_recovered ||
        a.harq_exhausted != b.harq_exhausted || !(a.latency == b.latency)) {
      return false;
    }
  }
  return latency == o.latency && harq == o.harq && admitted == o.admitted &&
         dropped == o.dropped && degraded == o.degraded &&
         deadline_slots == o.deadline_slots &&
         deadline_misses == o.deadline_misses &&
         harq_retx == o.harq_retx && harq_recovered == o.harq_recovered &&
         harq_exhausted == o.harq_exhausted &&
         virtual_makespan_s == o.virtual_makespan_s &&
         total_slots == o.total_slots && total_cycles == o.total_cycles;
}

bool Schedule_result::scenario_equal(const Schedule_result& o) const {
  if (groups.size() != o.groups.size()) return false;
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& a = groups[g];
    const Group& b = o.groups[g];
    // No evm / sigma2_hat / cycles: those legitimately differ between
    // arithmetic families; BER and everything scheduled from it must not.
    if (a.label != b.label || a.shard != b.shard || a.slots != b.slots ||
        a.ber != b.ber || a.admitted != b.admitted ||
        a.dropped != b.dropped || a.degraded != b.degraded ||
        a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        a.harq_retx != b.harq_retx || a.harq_recovered != b.harq_recovered ||
        a.harq_exhausted != b.harq_exhausted || !(a.latency == b.latency)) {
      return false;
    }
  }
  if (shards.size() != o.shards.size()) return false;
  for (size_t s = 0; s < shards.size(); ++s) {
    const Shard& a = shards[s];
    const Shard& b = o.shards[s];
    if (a.groups != b.groups || a.slots != b.slots ||
        a.admitted != b.admitted || a.dropped != b.dropped ||
        a.degraded != b.degraded || a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        a.harq_retx != b.harq_retx || a.harq_recovered != b.harq_recovered ||
        a.harq_exhausted != b.harq_exhausted || !(a.latency == b.latency)) {
      return false;
    }
  }
  return latency == o.latency && harq == o.harq && admitted == o.admitted &&
         dropped == o.dropped && degraded == o.degraded &&
         deadline_slots == o.deadline_slots &&
         deadline_misses == o.deadline_misses &&
         harq_retx == o.harq_retx && harq_recovered == o.harq_recovered &&
         harq_exhausted == o.harq_exhausted &&
         virtual_makespan_s == o.virtual_makespan_s &&
         total_slots == o.total_slots;
}

std::string Schedule_result::str() const {
  const bool serving = shards.size() > 1 || overload != "off";
  common::Table t({"group", "shard", "slots", "adm/dr/dg", "EVM %", "BER",
                   "sigma2^", "cycles", "miss/dl", "p50 us", "p99 us"});
  for (const auto& g : groups) {
    t.add_row({g.label,
               common::Table::fmt(static_cast<uint64_t>(g.shard)),
               common::Table::fmt(static_cast<uint64_t>(g.slots)),
               common::Table::fmt(g.admitted) + "/" +
                   common::Table::fmt(g.dropped) + "/" +
                   common::Table::fmt(g.degraded),
               common::Table::fmt(100.0 * g.evm, 2),
               common::Table::fmt(g.ber, 5),
               common::Table::fmt(g.sigma2_hat, 8),
               common::Table::fmt(g.cycles),
               common::Table::fmt(g.deadline_misses) + "/" +
                   common::Table::fmt(g.deadline_slots),
               common::Table::fmt(1e6 * g.latency.percentile(0.50), 2),
               common::Table::fmt(1e6 * g.latency.percentile(0.99), 2)});
  }
  std::string shard_table;
  if (shards.size() > 1) {
    common::Table st({"shard", "groups", "slots", "adm/dr/dg", "miss/dl",
                      "p50 us", "p99 us"});
    for (size_t s = 0; s < shards.size(); ++s) {
      const Shard& sh = shards[s];
      st.add_row({common::Table::fmt(static_cast<uint64_t>(s)),
                  common::Table::fmt(static_cast<uint64_t>(sh.groups)),
                  common::Table::fmt(sh.slots),
                  common::Table::fmt(sh.admitted) + "/" +
                      common::Table::fmt(sh.dropped) + "/" +
                      common::Table::fmt(sh.degraded),
                  common::Table::fmt(sh.deadline_misses) + "/" +
                      common::Table::fmt(sh.deadline_slots),
                  common::Table::fmt(1e6 * sh.latency.percentile(0.50), 2),
                  common::Table::fmt(1e6 * sh.latency.percentile(0.99), 2)});
    }
    shard_table = st.str();
  }
  char footer[448];
  std::snprintf(
      footer, sizeof footer,
      "%llu slots from '%s' on the %s backend, %u worker%s%s: %.3f s wall, "
      "%.1f slots/s\nvirtual clock: makespan %.3f ms, latency p50/p99/p999 "
      "%.1f/%.1f/%.1f us, %llu/%llu deadline misses\n",
      static_cast<unsigned long long>(total_slots), source.c_str(),
      backend.c_str(), workers, workers == 1 ? "" : "s",
      pipelined ? " (stage-pipelined)" : "", wall_seconds, slots_per_second(),
      1e3 * virtual_makespan_s, 1e6 * latency.percentile(0.50),
      1e6 * latency.percentile(0.99), 1e6 * latency.percentile(0.999),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(deadline_slots));
  std::string serving_line;
  if (serving) {
    char line[224];
    std::snprintf(
        line, sizeof line,
        "serving: %zu shard%s, placement %s, overload %s: "
        "%llu admitted, %llu dropped, %llu degraded\n",
        shards.size(), shards.size() == 1 ? "" : "s", placement.c_str(),
        overload.c_str(), static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(degraded));
    serving_line = line;
  }
  std::string harq_line;
  if (!harq.empty()) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "harq: %llu retransmissions, %llu recovered, "
                  "%llu exhausted\n",
                  static_cast<unsigned long long>(harq_retx),
                  static_cast<unsigned long long>(harq_recovered),
                  static_cast<unsigned long long>(harq_exhausted));
    harq_line = line;
  }
  return t.str() + shard_table + footer + serving_line + harq_line;
}

}  // namespace pp::runtime
