#include "runtime/scheduler.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.h"
#include "common/table.h"
#include "pusch/complexity.h"
#include "runtime/admission.h"
#include "runtime/backend.h"
#include "runtime/placement.h"

namespace pp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Hand-off between a worker's front and back thread in pipelined mode: a
// one-deep mailbox, i.e. the double buffer - the back thread equalizes slot
// n while the front thread's FFT+beamforming of slot n+1 fills the mailbox.
struct Front_item {
  uint64_t index = 0;
  std::unique_ptr<const phy::Uplink_scenario> sc;
  Slot_front front;
  double front_seconds = 0.0;
};

class Front_mailbox {
 public:
  void push(Front_item item) {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return !item_.has_value(); });
    item_.emplace(std::move(item));
    cv_.notify_all();
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    cv_.notify_all();
  }

  std::optional<Front_item> pop() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return item_.has_value() || closed_; });
    if (!item_.has_value()) return std::nullopt;
    std::optional<Front_item> out = std::move(item_);
    item_.reset();
    cv_.notify_all();
    return out;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::optional<Front_item> item_;
  bool closed_ = false;
};

}  // namespace

double analytic_service_seconds(const phy::Uplink_config& cfg,
                                const arch::Cluster_config& cluster,
                                double clock_ghz) {
  PP_CHECK(clock_ghz > 0.0, "service model needs a positive clock");
  pusch::Pusch_dims d;
  d.n_sc = cfg.n_sc;
  d.fft_size = cfg.fft_size;
  d.n_symb = cfg.n_symb;
  d.n_pilot_symb = cfg.n_pilot_symb;
  d.n_rx = cfg.n_rx;
  d.n_beams = cfg.n_beams;
  d.n_ue = cfg.n_ue;
  const double cycles = pusch::pusch_macs(d).total() / cluster.n_cores();
  return cycles / (clock_ghz * 1e9);
}

Slot_scheduler::Slot_scheduler(Scheduler_options opt) : opt_(std::move(opt)) {}

Schedule_result Slot_scheduler::run(const Slot_source& src) const {
  const uint64_t n_slots = src.n_slots();
  const uint32_t n_shards = std::max(1u, opt_.shards);
  const uint32_t service_units = std::max(1u, opt_.service_units);

  const Pipeline pipeline = uplink_pipeline(opt_.cluster, opt_.uplink);

  // Probe the backend once for the split and cycle-accuracy capabilities
  // (cheap: intra = 1 spawns no pool threads).
  bool pipelined = opt_.pipelined && !opt_.virtual_only;
  bool cycle_accurate = false;
  {
    const auto probe = make_backend(opt_.backend, 1);
    cycle_accurate = probe->cycle_accurate() && !opt_.virtual_only;
    pipelined = pipelined && probe->can_split();
  }

  // ---- serial pre-pass: resolve, place, admit --------------------------
  // job(i) is pure and cheap (the expensive scenario construction stays in
  // the workers), so resolving the whole stream serially keeps the
  // placement and admission decisions trivially host-independent.
  std::vector<Slot_job> jobs(n_slots);
  for (uint64_t i = 0; i < n_slots; ++i) jobs[i] = src.job(i);

  const std::vector<uint32_t> shard_of_group = place_groups(
      opt_.placement,
      opt_.placement == "load-aware"
          ? group_service_seconds(jobs, src.n_groups(), opt_.cluster,
                                  opt_.clock_ghz)
          : std::vector<double>(),
      src.n_groups(), n_shards);

  Admission_options aopt;
  aopt.policy = overload_from_name(opt_.overload);
  aopt.queue_limit = opt_.queue_limit;
  aopt.min_ue = opt_.degrade_min_ue;
  const std::vector<Admission_verdict> verdicts =
      admit_jobs(jobs, shard_of_group, n_shards, service_units, opt_.cluster,
                 opt_.clock_ghz, aopt);

  // Compact execution stream: dropped jobs are shed before any backend
  // sees them - that is the point of admission control.
  std::vector<uint64_t> exec;
  exec.reserve(n_slots);
  for (uint64_t i = 0; i < n_slots; ++i) {
    if (verdicts[i].outcome != Admission_verdict::Outcome::dropped) {
      exec.push_back(i);
    }
  }

  uint32_t workers = opt_.workers;
  // --sim-shards: a fixed count of concurrent simulated machines.  Only the
  // thread count changes - the index-ordered merges below make every shard
  // count bit-identical, so this stays out of the determinism surface.
  if (opt_.sim_shards > 0 && opt_.backend == "sim") workers = opt_.sim_shards;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  if (workers > exec.size()) {
    workers = static_cast<uint32_t>(std::max<size_t>(exec.size(), 1));
  }

  // Workers pull positions in the admitted stream from the cursor and write
  // results into their own pre-sized element - no locks, no shared mutable
  // kernel state (each worker or worker-thread instantiates a private
  // Backend; the lazily-built twiddle / QAM tables are call_once-guarded
  // and immutable afterwards).  Scenarios come from the admission verdict's
  // final config, so a degraded slot executes its re-planned layer count.
  std::vector<Slot_result> slots(n_slots);
  std::vector<double> wall_service(n_slots, 0.0);
  std::atomic<uint64_t> cursor{0};

  // Plain mode: each worker runs whole slots, exactly the old sweep engine.
  auto work_whole = [&] {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    for (;;) {
      const uint64_t p = cursor.fetch_add(1, std::memory_order_relaxed);
      if (p >= exec.size()) break;
      const uint64_t i = exec[p];
      const phy::Uplink_scenario sc(verdicts[i].cfg);
      const auto t0 = Clock::now();
      slots[i] = pipeline.execute(sc, *backend);
      wall_service[i] = seconds_since(t0);
    }
  };

  // Pipelined mode: the worker becomes two threads with private backends.
  // The front thread owns scenario generation + FFT + beamforming of the
  // next slot while the back thread finishes the previous one.
  auto work_front = [&](Front_mailbox& box) {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    for (;;) {
      const uint64_t p = cursor.fetch_add(1, std::memory_order_relaxed);
      if (p >= exec.size()) break;
      const uint64_t i = exec[p];
      auto sc = std::make_unique<const phy::Uplink_scenario>(verdicts[i].cfg);
      const auto t0 = Clock::now();
      Slot_front front = backend->run_front(pipeline, *sc);
      const double dt = seconds_since(t0);
      box.push(Front_item{i, std::move(sc), std::move(front), dt});
    }
    box.close();
  };
  auto work_back = [&](Front_mailbox& box) {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    while (auto item = box.pop()) {
      const auto t0 = Clock::now();
      slots[item->index] =
          backend->run_back(pipeline, *item->sc, std::move(item->front));
      wall_service[item->index] = item->front_seconds + seconds_since(t0);
    }
  };

  const auto t0 = Clock::now();
  if (!exec.empty() && !opt_.virtual_only) {
    if (pipelined) {
      std::vector<Front_mailbox> boxes(workers);
      std::vector<std::thread> pool;
      pool.reserve(2 * workers - 1);
      for (uint32_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] { work_front(boxes[w]); });
        // The calling thread serves as worker 0's back half.
        if (w > 0) pool.emplace_back([&, w] { work_back(boxes[w]); });
      }
      work_back(boxes[0]);
      for (auto& t : pool) t.join();
    } else if (workers <= 1) {
      work_whole();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (uint32_t w = 0; w < workers; ++w) pool.emplace_back(work_whole);
      for (auto& t : pool) t.join();
    }
  }
  const double wall_seconds = seconds_since(t0);

  // ---- deterministic virtual-time deadline accounting ------------------
  // Service times: simulated cycles at the virtual clock when the backend
  // reports them, the analytic MAC model otherwise; both are pure functions
  // of the executed slot configuration.  Each shard drains its admitted
  // jobs (arrival = index order within the shard) through its own FCFS
  // queue over `service_units` virtual clusters, independent of host
  // scheduling and of the other shards.
  std::vector<std::vector<double>> shard_arrival(n_shards),
      shard_service(n_shards);
  std::vector<std::vector<uint64_t>> shard_jobs(n_shards);
  for (const uint64_t i : exec) {
    const uint32_t s = verdicts[i].shard;
    shard_jobs[s].push_back(i);
    shard_arrival[s].push_back(jobs[i].arrival_s);
    shard_service[s].push_back(
        cycle_accurate
            ? static_cast<double>(slots[i].total_cycles()) /
                  (opt_.clock_ghz * 1e9)
            : analytic_service_seconds(verdicts[i].cfg, opt_.cluster,
                                       opt_.clock_ghz));
  }
  std::vector<double> completion_s(n_slots, 0.0);
  for (uint32_t s = 0; s < n_shards; ++s) {
    const std::vector<double> comp =
        fcfs_completion(shard_arrival[s], shard_service[s], service_units);
    for (size_t k = 0; k < comp.size(); ++k) {
      completion_s[shard_jobs[s][k]] = comp[k];
    }
  }

  // ---- aggregation, strictly in slot-index order -----------------------
  Schedule_result out;
  out.source = src.name();
  out.backend = opt_.backend;
  out.placement = opt_.placement;
  out.overload = opt_.overload;
  out.workers = workers;
  out.pipelined = pipelined;
  out.total_slots = n_slots;
  out.wall_seconds = wall_seconds;
  out.shards.resize(n_shards);

  out.groups.resize(src.n_groups());
  for (uint32_t g = 0; g < src.n_groups(); ++g) {
    out.groups[g].label = src.group_label(g);
    out.groups[g].shard = shard_of_group[g];
    ++out.shards[shard_of_group[g]].groups;
  }
  std::vector<double> group_evm2(out.groups.size(), 0.0);
  std::vector<double> group_ber(out.groups.size(), 0.0);
  std::vector<double> group_sigma2(out.groups.size(), 0.0);
  for (uint64_t i = 0; i < n_slots; ++i) {
    const Slot_job& job = jobs[i];
    const Admission_verdict& v = verdicts[i];
    PP_CHECK(job.group < out.groups.size(), "slot job group out of range");
    auto& grp = out.groups[job.group];
    auto& shard = out.shards[v.shard];
    ++grp.slots;
    ++shard.slots;
    if (v.outcome == Admission_verdict::Outcome::dropped) {
      ++grp.dropped;
      ++shard.dropped;
      ++out.dropped;
      continue;
    }
    ++grp.admitted;
    ++shard.admitted;
    ++out.admitted;
    if (v.outcome == Admission_verdict::Outcome::degraded) {
      ++grp.degraded;
      ++shard.degraded;
      ++out.degraded;
    }
    const Slot_result& s = slots[i];
    group_evm2[job.group] += s.evm * s.evm;
    group_ber[job.group] += s.ber;
    group_sigma2[job.group] += s.sigma2_hat;
    grp.cycles += s.total_cycles();
    out.total_cycles += s.total_cycles();

    const double latency = completion_s[i] - job.arrival_s;
    grp.latency.record(latency);
    shard.latency.record(latency);
    if (!opt_.virtual_only) out.wall_service.record(wall_service[i]);
    out.virtual_makespan_s = std::max(out.virtual_makespan_s, completion_s[i]);
    if (job.budget_s > 0.0) {
      ++out.deadline_slots;
      ++grp.deadline_slots;
      ++shard.deadline_slots;
      if (latency > job.budget_s) {
        ++out.deadline_misses;
        ++grp.deadline_misses;
        ++shard.deadline_misses;
      }
    }
  }
  // Global latency = exact bucket-wise merge of the shard histograms, in
  // shard order (merging is commutative, so the order is cosmetic).
  for (const auto& shard : out.shards) out.latency.merge(shard.latency);
  for (size_t g = 0; g < out.groups.size(); ++g) {
    auto& grp = out.groups[g];
    if (grp.admitted > 0) {
      grp.evm = std::sqrt(group_evm2[g] / grp.admitted);
      grp.ber = group_ber[g] / grp.admitted;
      grp.sigma2_hat = group_sigma2[g] / grp.admitted;
    }
  }
  if (opt_.keep_slots) out.slots = std::move(slots);
  return out;
}

bool Schedule_result::deterministic_equal(const Schedule_result& o) const {
  if (groups.size() != o.groups.size()) return false;
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& a = groups[g];
    const Group& b = o.groups[g];
    if (a.label != b.label || a.shard != b.shard || a.slots != b.slots ||
        a.evm != b.evm || a.ber != b.ber || a.sigma2_hat != b.sigma2_hat ||
        a.cycles != b.cycles || a.admitted != b.admitted ||
        a.dropped != b.dropped || a.degraded != b.degraded ||
        a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        !(a.latency == b.latency)) {
      return false;
    }
  }
  if (shards.size() != o.shards.size()) return false;
  for (size_t s = 0; s < shards.size(); ++s) {
    const Shard& a = shards[s];
    const Shard& b = o.shards[s];
    if (a.groups != b.groups || a.slots != b.slots ||
        a.admitted != b.admitted || a.dropped != b.dropped ||
        a.degraded != b.degraded || a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        !(a.latency == b.latency)) {
      return false;
    }
  }
  return latency == o.latency && admitted == o.admitted &&
         dropped == o.dropped && degraded == o.degraded &&
         deadline_slots == o.deadline_slots &&
         deadline_misses == o.deadline_misses &&
         virtual_makespan_s == o.virtual_makespan_s &&
         total_slots == o.total_slots && total_cycles == o.total_cycles;
}

std::string Schedule_result::str() const {
  const bool serving = shards.size() > 1 || overload != "off";
  common::Table t({"group", "shard", "slots", "adm/dr/dg", "EVM %", "BER",
                   "sigma2^", "cycles", "miss/dl", "p50 us", "p99 us"});
  for (const auto& g : groups) {
    t.add_row({g.label,
               common::Table::fmt(static_cast<uint64_t>(g.shard)),
               common::Table::fmt(static_cast<uint64_t>(g.slots)),
               common::Table::fmt(g.admitted) + "/" +
                   common::Table::fmt(g.dropped) + "/" +
                   common::Table::fmt(g.degraded),
               common::Table::fmt(100.0 * g.evm, 2),
               common::Table::fmt(g.ber, 5),
               common::Table::fmt(g.sigma2_hat, 8),
               common::Table::fmt(g.cycles),
               common::Table::fmt(g.deadline_misses) + "/" +
                   common::Table::fmt(g.deadline_slots),
               common::Table::fmt(1e6 * g.latency.percentile(0.50), 2),
               common::Table::fmt(1e6 * g.latency.percentile(0.99), 2)});
  }
  std::string shard_table;
  if (shards.size() > 1) {
    common::Table st({"shard", "groups", "slots", "adm/dr/dg", "miss/dl",
                      "p50 us", "p99 us"});
    for (size_t s = 0; s < shards.size(); ++s) {
      const Shard& sh = shards[s];
      st.add_row({common::Table::fmt(static_cast<uint64_t>(s)),
                  common::Table::fmt(static_cast<uint64_t>(sh.groups)),
                  common::Table::fmt(sh.slots),
                  common::Table::fmt(sh.admitted) + "/" +
                      common::Table::fmt(sh.dropped) + "/" +
                      common::Table::fmt(sh.degraded),
                  common::Table::fmt(sh.deadline_misses) + "/" +
                      common::Table::fmt(sh.deadline_slots),
                  common::Table::fmt(1e6 * sh.latency.percentile(0.50), 2),
                  common::Table::fmt(1e6 * sh.latency.percentile(0.99), 2)});
    }
    shard_table = st.str();
  }
  char footer[448];
  std::snprintf(
      footer, sizeof footer,
      "%llu slots from '%s' on the %s backend, %u worker%s%s: %.3f s wall, "
      "%.1f slots/s\nvirtual clock: makespan %.3f ms, latency p50/p99/p999 "
      "%.1f/%.1f/%.1f us, %llu/%llu deadline misses\n",
      static_cast<unsigned long long>(total_slots), source.c_str(),
      backend.c_str(), workers, workers == 1 ? "" : "s",
      pipelined ? " (stage-pipelined)" : "", wall_seconds, slots_per_second(),
      1e3 * virtual_makespan_s, 1e6 * latency.percentile(0.50),
      1e6 * latency.percentile(0.99), 1e6 * latency.percentile(0.999),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(deadline_slots));
  std::string serving_line;
  if (serving) {
    char line[224];
    std::snprintf(
        line, sizeof line,
        "serving: %zu shard%s, placement %s, overload %s: "
        "%llu admitted, %llu dropped, %llu degraded\n",
        shards.size(), shards.size() == 1 ? "" : "s", placement.c_str(),
        overload.c_str(), static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(degraded));
    serving_line = line;
  }
  return t.str() + shard_table + footer + serving_line;
}

}  // namespace pp::runtime
