#include "runtime/scheduler.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.h"
#include "common/table.h"
#include "pusch/complexity.h"
#include "runtime/backend.h"

namespace pp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Hand-off between a worker's front and back thread in pipelined mode: a
// one-deep mailbox, i.e. the double buffer - the back thread equalizes slot
// n while the front thread's FFT+beamforming of slot n+1 fills the mailbox.
struct Front_item {
  uint64_t index = 0;
  std::unique_ptr<const phy::Uplink_scenario> sc;
  Slot_front front;
  double front_seconds = 0.0;
};

class Front_mailbox {
 public:
  void push(Front_item item) {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return !item_.has_value(); });
    item_.emplace(std::move(item));
    cv_.notify_all();
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    cv_.notify_all();
  }

  std::optional<Front_item> pop() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return item_.has_value() || closed_; });
    if (!item_.has_value()) return std::nullopt;
    std::optional<Front_item> out = std::move(item_);
    item_.reset();
    cv_.notify_all();
    return out;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::optional<Front_item> item_;
  bool closed_ = false;
};

}  // namespace

double analytic_service_seconds(const phy::Uplink_config& cfg,
                                const arch::Cluster_config& cluster,
                                double clock_ghz) {
  PP_CHECK(clock_ghz > 0.0, "service model needs a positive clock");
  pusch::Pusch_dims d;
  d.n_sc = cfg.n_sc;
  d.fft_size = cfg.fft_size;
  d.n_symb = cfg.n_symb;
  d.n_pilot_symb = cfg.n_pilot_symb;
  d.n_rx = cfg.n_rx;
  d.n_beams = cfg.n_beams;
  d.n_ue = cfg.n_ue;
  const double cycles = pusch::pusch_macs(d).total() / cluster.n_cores();
  return cycles / (clock_ghz * 1e9);
}

Slot_scheduler::Slot_scheduler(Scheduler_options opt) : opt_(std::move(opt)) {}

Schedule_result Slot_scheduler::run(const Slot_source& src) const {
  const uint64_t n_slots = src.n_slots();

  uint32_t workers = opt_.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  if (workers > n_slots) {
    workers = static_cast<uint32_t>(std::max<uint64_t>(n_slots, 1));
  }

  const Pipeline pipeline = uplink_pipeline(opt_.cluster, opt_.uplink);

  // Probe the backend once for the split and cycle-accuracy capabilities
  // (cheap: intra = 1 spawns no pool threads).
  bool pipelined = opt_.pipelined;
  bool cycle_accurate = false;
  {
    const auto probe = make_backend(opt_.backend, 1);
    cycle_accurate = probe->cycle_accurate();
    pipelined = pipelined && probe->can_split();
  }

  // Workers pull global slot indices from the cursor and write results into
  // their own pre-sized element - no locks, no shared mutable kernel state
  // (each worker or worker-thread instantiates a private Backend; the
  // lazily-built twiddle / QAM tables are call_once-guarded and immutable
  // afterwards).  `jobs` is filled alongside: job(i) is pure, so whichever
  // thread resolves index i writes the same descriptor.
  std::vector<Slot_result> slots(n_slots);
  std::vector<Slot_job> jobs(n_slots);
  std::vector<double> wall_service(n_slots, 0.0);
  std::atomic<uint64_t> cursor{0};

  // Plain mode: each worker runs whole slots, exactly the old sweep engine.
  auto work_whole = [&] {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    for (;;) {
      const uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_slots) break;
      jobs[i] = src.job(i);
      const phy::Uplink_scenario sc(jobs[i].cfg);
      const auto t0 = Clock::now();
      slots[i] = pipeline.execute(sc, *backend);
      wall_service[i] = seconds_since(t0);
    }
  };

  // Pipelined mode: the worker becomes two threads with private backends.
  // The front thread owns scenario generation + FFT + beamforming of the
  // next slot while the back thread finishes the previous one.
  auto work_front = [&](Front_mailbox& box) {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    for (;;) {
      const uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_slots) break;
      jobs[i] = src.job(i);
      auto sc = std::make_unique<const phy::Uplink_scenario>(jobs[i].cfg);
      const auto t0 = Clock::now();
      Slot_front front = backend->run_front(pipeline, *sc);
      const double dt = seconds_since(t0);
      box.push(Front_item{i, std::move(sc), std::move(front), dt});
    }
    box.close();
  };
  auto work_back = [&](Front_mailbox& box) {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    while (auto item = box.pop()) {
      const auto t0 = Clock::now();
      slots[item->index] =
          backend->run_back(pipeline, *item->sc, std::move(item->front));
      wall_service[item->index] = item->front_seconds + seconds_since(t0);
    }
  };

  const auto t0 = Clock::now();
  if (n_slots > 0) {
    if (pipelined) {
      std::vector<Front_mailbox> boxes(workers);
      std::vector<std::thread> pool;
      pool.reserve(2 * workers - 1);
      for (uint32_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] { work_front(boxes[w]); });
        // The calling thread serves as worker 0's back half.
        if (w > 0) pool.emplace_back([&, w] { work_back(boxes[w]); });
      }
      work_back(boxes[0]);
      for (auto& t : pool) t.join();
    } else if (workers <= 1) {
      work_whole();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (uint32_t w = 0; w < workers; ++w) pool.emplace_back(work_whole);
      for (auto& t : pool) t.join();
    }
  }
  const double wall_seconds = seconds_since(t0);

  // ---- deterministic virtual-time deadline accounting ------------------
  // Service times: simulated cycles at the virtual clock when the backend
  // reports them, the analytic MAC model otherwise; both are pure functions
  // of the slot configuration.  The FCFS queue over `service_units` virtual
  // clusters then yields per-slot latencies independent of host scheduling.
  std::vector<double> arrival_s(n_slots), service_s(n_slots);
  for (uint64_t i = 0; i < n_slots; ++i) {
    arrival_s[i] = jobs[i].arrival_s;
    service_s[i] =
        cycle_accurate
            ? static_cast<double>(slots[i].total_cycles()) /
                  (opt_.clock_ghz * 1e9)
            : analytic_service_seconds(jobs[i].cfg, opt_.cluster,
                                       opt_.clock_ghz);
  }
  const std::vector<double> completion_s =
      fcfs_completion(arrival_s, service_s, std::max(1u, opt_.service_units));

  // ---- aggregation, strictly in slot-index order -----------------------
  Schedule_result out;
  out.source = src.name();
  out.backend = opt_.backend;
  out.workers = workers;
  out.pipelined = pipelined;
  out.total_slots = n_slots;
  out.wall_seconds = wall_seconds;

  out.groups.resize(src.n_groups());
  for (uint32_t g = 0; g < src.n_groups(); ++g) {
    out.groups[g].label = src.group_label(g);
  }
  std::vector<double> group_evm2(out.groups.size(), 0.0);
  std::vector<double> group_ber(out.groups.size(), 0.0);
  std::vector<double> group_sigma2(out.groups.size(), 0.0);
  for (uint64_t i = 0; i < n_slots; ++i) {
    const Slot_job& job = jobs[i];
    const Slot_result& s = slots[i];
    PP_CHECK(job.group < out.groups.size(), "slot job group out of range");
    auto& grp = out.groups[job.group];
    ++grp.slots;
    group_evm2[job.group] += s.evm * s.evm;
    group_ber[job.group] += s.ber;
    group_sigma2[job.group] += s.sigma2_hat;
    grp.cycles += s.total_cycles();
    out.total_cycles += s.total_cycles();

    const double latency = completion_s[i] - job.arrival_s;
    out.latency.record(latency);
    grp.latency.record(latency);
    out.wall_service.record(wall_service[i]);
    out.virtual_makespan_s = std::max(out.virtual_makespan_s, completion_s[i]);
    if (job.budget_s > 0.0) {
      ++out.deadline_slots;
      ++grp.deadline_slots;
      if (latency > job.budget_s) {
        ++out.deadline_misses;
        ++grp.deadline_misses;
      }
    }
  }
  for (size_t g = 0; g < out.groups.size(); ++g) {
    auto& grp = out.groups[g];
    if (grp.slots > 0) {
      grp.evm = std::sqrt(group_evm2[g] / grp.slots);
      grp.ber = group_ber[g] / grp.slots;
      grp.sigma2_hat = group_sigma2[g] / grp.slots;
    }
  }
  if (opt_.keep_slots) out.slots = std::move(slots);
  return out;
}

bool Schedule_result::deterministic_equal(const Schedule_result& o) const {
  if (groups.size() != o.groups.size()) return false;
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& a = groups[g];
    const Group& b = o.groups[g];
    if (a.label != b.label || a.slots != b.slots || a.evm != b.evm ||
        a.ber != b.ber || a.sigma2_hat != b.sigma2_hat ||
        a.cycles != b.cycles || a.deadline_slots != b.deadline_slots ||
        a.deadline_misses != b.deadline_misses ||
        !(a.latency == b.latency)) {
      return false;
    }
  }
  return latency == o.latency && deadline_slots == o.deadline_slots &&
         deadline_misses == o.deadline_misses &&
         virtual_makespan_s == o.virtual_makespan_s &&
         total_slots == o.total_slots && total_cycles == o.total_cycles;
}

std::string Schedule_result::str() const {
  common::Table t({"group", "slots", "EVM %", "BER", "sigma2^", "cycles",
                   "miss/dl", "p50 us", "p99 us"});
  for (const auto& g : groups) {
    t.add_row({g.label,
               common::Table::fmt(static_cast<uint64_t>(g.slots)),
               common::Table::fmt(100.0 * g.evm, 2),
               common::Table::fmt(g.ber, 5),
               common::Table::fmt(g.sigma2_hat, 8),
               common::Table::fmt(g.cycles),
               common::Table::fmt(g.deadline_misses) + "/" +
                   common::Table::fmt(g.deadline_slots),
               common::Table::fmt(1e6 * g.latency.percentile(0.50), 2),
               common::Table::fmt(1e6 * g.latency.percentile(0.99), 2)});
  }
  char footer[320];
  std::snprintf(
      footer, sizeof footer,
      "%llu slots from '%s' on the %s backend, %u worker%s%s: %.3f s wall, "
      "%.1f slots/s\nvirtual clock: makespan %.3f ms, latency p50/p99/p999 "
      "%.1f/%.1f/%.1f us, %llu/%llu deadline misses\n",
      static_cast<unsigned long long>(total_slots), source.c_str(),
      backend.c_str(), workers, workers == 1 ? "" : "s",
      pipelined ? " (stage-pipelined)" : "", wall_seconds, slots_per_second(),
      1e3 * virtual_makespan_s, 1e6 * latency.percentile(0.50),
      1e6 * latency.percentile(0.99), 1e6 * latency.percentile(0.999),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(deadline_slots));
  return t.str() + footer;
}

}  // namespace pp::runtime
