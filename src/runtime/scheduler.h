// Streaming slot scheduler: deadline-aware execution of slot jobs from
// pluggable sources.
//
// This is the execution core that used to live inside Sweep_runner,
// generalized from "walk a fixed cartesian grid" to "pull slot jobs from a
// Slot_source":
//
//   Slot_source       pure-function job stream: job(i) depends only on the
//                     source's configuration and the index i, and arrival
//                     times are non-decreasing in i.  Grid_source (sweep.h)
//                     adapts the batch scenario grid; Traffic_source
//                     (traffic.h) generates stochastic multi-cell uplink
//                     traffic with Poisson arrivals.
//   Slot_scheduler    a worker pool pulling job indices from an atomic
//                     cursor, one private Backend per worker (exactly the
//                     old sweep engine); optionally stage-pipelined: each
//                     worker becomes a front thread (OFDM FFT + beamforming
//                     of slot n+1) and a back thread (CHE/NE/LMMSE MIMO of
//                     slot n) connected by a double buffer, composing with
//                     the "parallel" backend's intra-slot split.
//   sharding          the serving engine runs as `shards` scheduler shards,
//                     each owning one virtual cluster's worth of service
//                     units and its own FCFS virtual-clock queue.  Source
//                     groups (cells) are placed onto shards by a pluggable
//                     policy (placement.h: round-robin, load-aware), and an
//                     admission/overload controller (admission.h: off /
//                     drop / queue / degrade) decides every job before
//                     anything executes.  One shard with the policy off is
//                     exactly the pre-sharding engine, bit for bit.
//   deadline account  per-slot latency through a deterministic virtual-time
//                     model: seeded arrivals from the source, service times
//                     from simulated cycles (cycle-accurate backends) or
//                     the paper's MAC-complexity model (host backends), and
//                     a per-shard FCFS queue over `service_units` virtual
//                     clusters (latency.h).  Misses are counted against
//                     each job's numerology slot budget and latencies
//                     aggregated into per-shard histograms merged
//                     (exact bucket-wise sums) into the global one.
//
// Determinism contract (docs/DETERMINISM.md): every per-slot result is a
// pure function of (source, slot index), placement and admission run in a
// serial pre-pass on the analytic predictor, aggregation walks slots in
// index order, and the virtual clocks are independent of host scheduling -
// so the slot results, group/shard roll-ups, admission counters, latency
// histograms and deadline-miss counts are bit-identical for any
// (workers, intra) combination, with stage pipelining on or off, on every
// backend.  Wall-clock throughput and the measured per-slot service
// histogram are the only host-dependent outputs.
#ifndef PUSCHPOOL_RUNTIME_SCHEDULER_H
#define PUSCHPOOL_RUNTIME_SCHEDULER_H

#include <string>
#include <vector>

#include "phy/uplink.h"
#include "runtime/latency.h"
#include "runtime/presets.h"

namespace pp::runtime {

// One unit of work for the scheduler: a fully-resolved uplink slot plus its
// virtual arrival time and processing budget.
struct Slot_job {
  uint64_t index = 0;      // global stream index; also the seed stream
  uint32_t group = 0;      // source-defined roll-up bucket (grid point, cell)
  phy::Uplink_config cfg;  // everything the PHY needs, seed included
  double arrival_s = 0.0;  // virtual arrival time on the source's clock
  double budget_s = 0.0;   // processing deadline; 0 = batch job, no deadline
};

// A stream of slot jobs.  job(i) must be a pure function of the source's
// configuration and i (the scheduler calls it from concurrent workers), and
// arrival_s must be non-decreasing in i (the FCFS queue model's contract).
class Slot_source {
 public:
  virtual ~Slot_source() = default;
  virtual std::string_view name() const = 0;
  virtual uint64_t n_slots() const = 0;
  virtual uint32_t n_groups() const = 0;
  virtual std::string group_label(uint32_t group) const = 0;
  virtual Slot_job job(uint64_t index) const = 0;
};

struct Scheduler_options {
  uint32_t workers = 0;  // slot-level workers; 0 = hardware_concurrency
  std::string backend = "reference";  // make_backend() name
  uint32_t intra = 1;    // intra-slot workers ("parallel" backend only)
  // Stage-pipelined execution: overlap the front half of slot n+1 with the
  // back half of slot n (2 threads per worker, double-buffered hand-off).
  // Silently ignored when the backend cannot split (Backend::can_split());
  // the effective setting is reported in Schedule_result::pipelined.
  bool pipelined = false;
  arch::Cluster_config cluster = arch::Cluster_config::minipool();
  Uplink_options uplink;   // preset knobs (FFT gangs, Cholesky batching)
  bool keep_slots = true;  // retain per-slot results (the bit-exact surface)

  // Host threads driving simulated machines when the backend is "sim"
  // (`--sim-shards` on the CLIs): overrides `workers` so N independent
  // single-threaded sim::Machine instances run concurrently, one slot each.
  // Purely a wall-clock knob - slot results merge in index order, so every
  // shard count is bit-identical (DETERMINISM.md §5; the differential suite
  // pins 1/2/8).  0 = defer to `workers`.  Ignored on host backends, which
  // have their own worker/intra levels.
  uint32_t sim_shards = 0;

  // Virtual-time service model: simulated cycles (cycle-accurate backends)
  // or the analytic MAC model (host backends), scaled to seconds at this
  // clock.  The paper evaluates the clusters at 1 GHz.
  double clock_ghz = 1.0;
  // Virtual clusters draining each shard's job queue in the FCFS deadline
  // model.  Deliberately NOT tied to `workers`: the virtual clock must stay
  // deterministic while the host worker count varies.
  uint32_t service_units = 1;

  // ---- sharded serving engine ------------------------------------------
  // Scheduler shards, each one virtual cluster of `service_units` servers
  // with its own FCFS virtual-clock queue.  1 = the pre-sharding engine.
  uint32_t shards = 1;
  // Cell-to-shard placement policy (placement.h / placement_names()).
  std::string placement = "round-robin";
  // Admission/overload policy in front of each shard's queue (admission.h /
  // overload_names()): "off", "drop", "queue" or "degrade".
  std::string overload = "off";
  uint32_t queue_limit = 8;     // "queue": max predicted backlog per shard
  uint32_t degrade_min_ue = 1;  // "degrade": UE-layer floor
  // Virtual-clock-only mode: skip backend execution entirely and score the
  // deadline surface from the analytic MAC service model alone (capacity
  // searches probe many load points and only need the queue behavior).
  // Slot results, EVM/BER and cycles are zero; the latency/deadline/
  // admission surface is bit-identical to a full run on any host backend.
  // Incompatible with max_harq > 0: retransmission verdicts need executed
  // BER, which virtual-only runs never produce (PP_CHECK).
  bool virtual_only = false;

  // ---- HARQ retransmission loop ----------------------------------------
  // Close the loop between decode quality and offered load: after each
  // round, every slot whose best decoded BER (Harq_combiner: min over
  // per-attempt and chase-combined decodes) exceeds `harq_ber` re-enters
  // the stream as a retransmission - the same transport block under a fresh
  // fade (phy::Uplink_config::harq_attempt), arriving one deadline budget
  // after its predecessor and admitted by re-running the predictor
  // chronologically over the whole stream (admission.h: replay_one +
  // admit_one), so it contends with the load actually present around its
  // arrival.  At most `max_harq` retransmissions per
  // original slot; 0 disables the loop and reproduces the pre-HARQ engine
  // bit for bit.  A slot whose every attempt was dropped by admission
  // counts as failed and is retransmitted too (NACK-on-silence).
  uint32_t max_harq = 0;
  double harq_ber = 0.0;  // decode passes when best BER <= this threshold

  // Force the analytic MAC service model for the deadline accounting even
  // on cycle-accurate backends.  The scenario-parity suite uses this to
  // compare the full deadline/admission/HARQ surface across sim and host
  // backends, where simulated-cycle service times would legitimately
  // differ.  Default off: sim serves by its own cycles, as always.
  bool analytic_service = false;
};

struct Schedule_result {
  struct Group {
    std::string label;
    uint32_t shard = 0;       // shard this group's cell was placed on
    uint32_t slots = 0;       // jobs placed (admitted + dropped)
    double evm = 0.0;         // rms over the group's executed slots
    double ber = 0.0;         // mean over the group's executed slots
    double sigma2_hat = 0.0;  // mean NE output
    uint64_t cycles = 0;      // summed simulated cycles (0 on host backends)
    uint64_t admitted = 0;    // executed as planned or degraded
    uint64_t dropped = 0;     // shed by the admission controller
    uint64_t degraded = 0;    // admitted with fewer UE layers
    uint64_t deadline_slots = 0;   // executed slots that carried a budget
    uint64_t deadline_misses = 0;  // virtual latency above the budget
    Latency_histogram latency;     // virtual-time latency of these slots
    uint64_t harq_retx = 0;       // retransmission jobs this group generated
    uint64_t harq_recovered = 0;  // blocks that failed, retried and passed
    uint64_t harq_exhausted = 0;  // blocks still failing after max_harq
  };
  std::vector<Group> groups;

  // Per-shard serving roll-up (one entry per scheduler shard; a single
  // entry when the engine runs unsharded).
  struct Shard {
    uint32_t groups = 0;      // cells placed on this shard
    uint64_t slots = 0;       // jobs placed (admitted + dropped)
    uint64_t admitted = 0;
    uint64_t dropped = 0;
    uint64_t degraded = 0;
    uint64_t deadline_slots = 0;
    uint64_t deadline_misses = 0;
    Latency_histogram latency;  // this shard's virtual-clock latencies
    uint64_t harq_retx = 0;
    uint64_t harq_recovered = 0;
    uint64_t harq_exhausted = 0;
  };
  std::vector<Shard> shards;

  // One entry per job in stream order when the HARQ loop is on (max_harq >
  // 0; empty otherwise): which original slot the job serves, its attempt
  // number (0 = initial transmission), the block's best decoded BER after
  // the job's round folded it in (1.0 while every attempt was dropped), and
  // whether the block had passed the threshold by then.  This is the
  // retransmission schedule + combined-decode surface the determinism
  // contract covers.
  struct Harq_entry {
    uint64_t parent = 0;
    uint32_t attempt = 0;
    double combined_ber = 1.0;
    bool passed = false;

    bool operator==(const Harq_entry& o) const {
      return parent == o.parent && attempt == o.attempt &&
             combined_ber == o.combined_ber && passed == o.passed;
    }
  };
  std::vector<Harq_entry> harq;

  // Per-slot results in stream order (empty when keep_slots is off;
  // dropped slots keep a default-constructed Slot_result).
  std::vector<Slot_result> slots;

  // Virtual-time (deterministic) latency surface.  The global histogram is
  // the exact bucket-wise merge of the per-shard histograms.
  Latency_histogram latency;   // all executed slots
  uint64_t admitted = 0;
  uint64_t dropped = 0;
  uint64_t degraded = 0;
  uint64_t deadline_slots = 0;
  uint64_t deadline_misses = 0;
  uint64_t harq_retx = 0;       // retransmission jobs generated
  uint64_t harq_recovered = 0;  // failed blocks a retransmission rescued
  uint64_t harq_exhausted = 0;  // blocks still failing after max_harq
  double virtual_makespan_s = 0.0;  // last completion on any shard's clock

  // Host-dependent surface: measured per-slot service times and wall clock.
  Latency_histogram wall_service;
  double wall_seconds = 0.0;

  std::string source;
  std::string backend;
  std::string placement;  // effective placement policy name
  std::string overload;   // effective overload policy name
  uint32_t workers = 0;
  bool pipelined = false;  // effective setting (false if backend can't split)
  uint64_t total_slots = 0;
  uint64_t total_cycles = 0;

  double slots_per_second() const {
    return wall_seconds > 0.0 ? total_slots / wall_seconds : 0.0;
  }
  double miss_rate() const {
    return deadline_slots
               ? static_cast<double>(deadline_misses) / deadline_slots
               : 0.0;
  }

  // Whole-surface equality of everything the determinism contract covers
  // (groups, shards, admission counters, latency histograms, deadline
  // counters, virtual makespan, cycle/slot totals) - deliberately excluding
  // the host-dependent fields (wall clock, wall-service histogram, workers,
  // pipelined).  This is the single definition the worker-invariance
  // re-checks use (bench_serve_latency, tests/test_scheduler.cpp), so a new
  // deterministic field only needs adding here.
  bool deterministic_equal(const Schedule_result& o) const;

  // Cross-backend scenario surface: everything deterministic_equal covers
  // EXCEPT the fields that legitimately differ between arithmetic families
  // (EVM, sigma2_hat - double vs. Q15 numerics - and simulated cycles).
  // Payload bits, BER, the HARQ schedule/verdicts, admission counters,
  // deadline counters, latency histograms and the virtual makespan must all
  // match - so comparing sim against host backends requires
  // Scheduler_options::analytic_service (cycle-based service times are a
  // different clock) and operating points where the decoded bits agree
  // (tests/test_scenario_parity.cpp pins a grid of them).
  bool scenario_equal(const Schedule_result& o) const;

  // ASCII per-group table plus a latency/deadline/throughput footer; adds
  // a per-shard table and a serving summary line when the engine runs
  // sharded or with an overload policy.
  std::string str() const;
};

class Slot_scheduler {
 public:
  explicit Slot_scheduler(Scheduler_options opt = {});

  const Scheduler_options& options() const { return opt_; }

  Schedule_result run(const Slot_source& src) const;

 private:
  Scheduler_options opt_;
};

// Deterministic analytic service time of one slot on `cluster` at
// `clock_ghz`: the paper's Table I complex-MAC count for the slot's
// dimensions, idealized at one MAC per core per cycle.  The virtual-time
// deadline model uses this for backends that report no cycles; exact given
// IEEE doubles (integer products and log2 of a power of two).
double analytic_service_seconds(const phy::Uplink_config& cfg,
                                const arch::Cluster_config& cluster,
                                double clock_ghz);

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_SCHEDULER_H
