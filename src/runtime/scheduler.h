// Streaming slot scheduler: deadline-aware execution of slot jobs from
// pluggable sources.
//
// This is the execution core that used to live inside Sweep_runner,
// generalized from "walk a fixed cartesian grid" to "pull slot jobs from a
// Slot_source":
//
//   Slot_source       pure-function job stream: job(i) depends only on the
//                     source's configuration and the index i, and arrival
//                     times are non-decreasing in i.  Grid_source (sweep.h)
//                     adapts the batch scenario grid; Traffic_source
//                     (traffic.h) generates stochastic multi-cell uplink
//                     traffic with Poisson arrivals.
//   Slot_scheduler    a worker pool pulling job indices from an atomic
//                     cursor, one private Backend per worker (exactly the
//                     old sweep engine); optionally stage-pipelined: each
//                     worker becomes a front thread (OFDM FFT + beamforming
//                     of slot n+1) and a back thread (CHE/NE/LMMSE MIMO of
//                     slot n) connected by a double buffer, composing with
//                     the "parallel" backend's intra-slot split.
//   deadline account  per-slot latency through a deterministic virtual-time
//                     model: seeded arrivals from the source, service times
//                     from simulated cycles (cycle-accurate backends) or
//                     the paper's MAC-complexity model (host backends), and
//                     an FCFS queue over `service_units` virtual clusters
//                     (latency.h).  Misses are counted against each job's
//                     numerology slot budget and latencies aggregated into
//                     histograms with p50/p99/p999.
//
// Determinism contract (docs/DETERMINISM.md): every per-slot result is a
// pure function of (source, slot index), aggregation walks slots in index
// order, and the virtual clock is independent of host scheduling - so the
// slot results, group roll-ups, latency histograms and deadline-miss counts
// are bit-identical for any (workers, intra) combination and with stage
// pipelining on or off.  Wall-clock throughput and the measured per-slot
// service histogram are the only host-dependent outputs.
#ifndef PUSCHPOOL_RUNTIME_SCHEDULER_H
#define PUSCHPOOL_RUNTIME_SCHEDULER_H

#include <string>
#include <vector>

#include "phy/uplink.h"
#include "runtime/latency.h"
#include "runtime/presets.h"

namespace pp::runtime {

// One unit of work for the scheduler: a fully-resolved uplink slot plus its
// virtual arrival time and processing budget.
struct Slot_job {
  uint64_t index = 0;      // global stream index; also the seed stream
  uint32_t group = 0;      // source-defined roll-up bucket (grid point, cell)
  phy::Uplink_config cfg;  // everything the PHY needs, seed included
  double arrival_s = 0.0;  // virtual arrival time on the source's clock
  double budget_s = 0.0;   // processing deadline; 0 = batch job, no deadline
};

// A stream of slot jobs.  job(i) must be a pure function of the source's
// configuration and i (the scheduler calls it from concurrent workers), and
// arrival_s must be non-decreasing in i (the FCFS queue model's contract).
class Slot_source {
 public:
  virtual ~Slot_source() = default;
  virtual std::string_view name() const = 0;
  virtual uint64_t n_slots() const = 0;
  virtual uint32_t n_groups() const = 0;
  virtual std::string group_label(uint32_t group) const = 0;
  virtual Slot_job job(uint64_t index) const = 0;
};

struct Scheduler_options {
  uint32_t workers = 0;  // slot-level workers; 0 = hardware_concurrency
  std::string backend = "reference";  // make_backend() name
  uint32_t intra = 1;    // intra-slot workers ("parallel" backend only)
  // Stage-pipelined execution: overlap the front half of slot n+1 with the
  // back half of slot n (2 threads per worker, double-buffered hand-off).
  // Silently ignored when the backend cannot split (Backend::can_split());
  // the effective setting is reported in Schedule_result::pipelined.
  bool pipelined = false;
  arch::Cluster_config cluster = arch::Cluster_config::minipool();
  Uplink_options uplink;   // preset knobs (FFT gangs, Cholesky batching)
  bool keep_slots = true;  // retain per-slot results (the bit-exact surface)

  // Virtual-time service model: simulated cycles (cycle-accurate backends)
  // or the analytic MAC model (host backends), scaled to seconds at this
  // clock.  The paper evaluates the clusters at 1 GHz.
  double clock_ghz = 1.0;
  // Virtual clusters draining the job queue in the FCFS deadline model.
  // Deliberately NOT tied to `workers`: the virtual clock must stay
  // deterministic while the host worker count varies.
  uint32_t service_units = 1;
};

struct Schedule_result {
  struct Group {
    std::string label;
    uint32_t slots = 0;
    double evm = 0.0;         // rms over the group's slots
    double ber = 0.0;         // mean over the group's slots
    double sigma2_hat = 0.0;  // mean NE output
    uint64_t cycles = 0;      // summed simulated cycles (0 on host backends)
    uint64_t deadline_slots = 0;   // slots that carried a budget
    uint64_t deadline_misses = 0;  // virtual latency above the budget
    Latency_histogram latency;     // virtual-time latency of these slots
  };
  std::vector<Group> groups;
  // Per-slot results in stream order (empty when keep_slots is off).
  std::vector<Slot_result> slots;

  // Virtual-time (deterministic) latency surface.
  Latency_histogram latency;   // all slots
  uint64_t deadline_slots = 0;
  uint64_t deadline_misses = 0;
  double virtual_makespan_s = 0.0;  // last completion on the virtual clock

  // Host-dependent surface: measured per-slot service times and wall clock.
  Latency_histogram wall_service;
  double wall_seconds = 0.0;

  std::string source;
  std::string backend;
  uint32_t workers = 0;
  bool pipelined = false;  // effective setting (false if backend can't split)
  uint64_t total_slots = 0;
  uint64_t total_cycles = 0;

  double slots_per_second() const {
    return wall_seconds > 0.0 ? total_slots / wall_seconds : 0.0;
  }
  double miss_rate() const {
    return deadline_slots
               ? static_cast<double>(deadline_misses) / deadline_slots
               : 0.0;
  }

  // Whole-surface equality of everything the determinism contract covers
  // (groups, latency histograms, deadline counters, virtual makespan,
  // cycle/slot totals) - deliberately excluding the host-dependent fields
  // (wall clock, wall-service histogram, workers, pipelined).  This is the
  // single definition the worker-invariance re-checks use
  // (bench_serve_latency, tests/test_scheduler.cpp), so a new
  // deterministic field only needs adding here.
  bool deterministic_equal(const Schedule_result& o) const;

  // ASCII per-group table plus a latency/deadline/throughput footer.
  std::string str() const;
};

class Slot_scheduler {
 public:
  explicit Slot_scheduler(Scheduler_options opt = {});

  const Scheduler_options& options() const { return opt_; }

  Schedule_result run(const Slot_source& src) const;

 private:
  Scheduler_options opt_;
};

// Deterministic analytic service time of one slot on `cluster` at
// `clock_ghz`: the paper's Table I complex-MAC count for the slot's
// dimensions, idealized at one MAC per core per cycle.  The virtual-time
// deadline model uses this for backends that report no cycles; exact given
// IEEE doubles (integer products and log2 of a power of two).
double analytic_service_seconds(const phy::Uplink_config& cfg,
                                const arch::Cluster_config& cluster,
                                double clock_ghz);

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_SCHEDULER_H
