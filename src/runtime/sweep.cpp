#include "runtime/sweep.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/table.h"

namespace pp::runtime {

std::vector<Sweep_point> Sweep_grid::points() const {
  std::vector<Sweep_point> out;
  out.reserve(n_points());
  for (const uint32_t fft : fft_sizes) {
    for (const uint32_t ue : ue_counts) {
      for (const phy::Qam q : qam_orders) {
        for (const double snr : snr_db) {
          out.push_back(Sweep_point{fft, ue, q, snr});
        }
      }
    }
  }
  return out;
}

uint64_t Sweep_grid::n_points() const {
  return static_cast<uint64_t>(fft_sizes.size()) * ue_counts.size() *
         qam_orders.size() * snr_db.size();
}

phy::Uplink_config Sweep_runner::slot_config(const Sweep_grid& grid,
                                             const Sweep_point& point,
                                             uint64_t slot_index) {
  PP_CHECK(grid.n_symb > grid.n_pilot_symb,
           "sweep grid needs at least one data symbol after the pilots");
  phy::Uplink_config c;
  c.n_sc = point.fft_size;  // sim backend rule: all bins active
  c.fft_size = point.fft_size;
  c.n_rx = grid.n_rx;
  c.n_beams = grid.n_beams;
  c.n_ue = point.n_ue;
  c.n_symb = grid.n_symb;
  c.n_pilot_symb = grid.n_pilot_symb;
  c.qam = point.qam;
  // Per-antenna signal power of the Rayleigh model: each of the n_ue paths
  // contributes E|h|^2 E|x|^2 = (channel_gain * ue_power)^2.
  const double gp = grid.channel_gain * grid.ue_power;
  c.sigma2 = point.n_ue * gp * gp * std::pow(10.0, -point.snr_db / 10.0);
  c.ue_power = grid.ue_power;
  c.channel_gain = grid.channel_gain;
  c.coherence = grid.coherence;
  c.seed = slot_seed(grid.base_seed, slot_index);
  c.profile = grid.profile;
  c.doppler_hz = grid.doppler_hz;
  c.delay_spread = grid.delay_spread;
  c.symbol_s = grid.symbol_s;
  return c;
}

Grid_source::Grid_source(Sweep_grid grid)
    : grid_(std::move(grid)), points_(grid_.points()) {}

std::string Grid_source::group_label(uint32_t group) const {
  PP_CHECK(group < points_.size(), "grid point index out of range");
  const Sweep_point& p = points_[group];
  return "fft" + std::to_string(p.fft_size) + " ue" + std::to_string(p.n_ue) +
         " qam" + std::to_string(static_cast<uint32_t>(p.qam)) + " snr" +
         common::Table::fmt(p.snr_db, 1);
}

Slot_job Grid_source::job(uint64_t index) const {
  PP_CHECK(grid_.slots_per_point > 0 && index < grid_.n_slots(),
           "grid slot index out of range");
  Slot_job job;
  job.index = index;
  job.group = static_cast<uint32_t>(index / grid_.slots_per_point);
  job.cfg = Sweep_runner::slot_config(grid_, points_[job.group], index);
  // Batch semantics: everything is available up front and nothing carries a
  // deadline - the virtual-time model reduces to plain utilization.
  job.arrival_s = 0.0;
  job.budget_s = 0.0;
  return job;
}

Sweep_runner::Sweep_runner(Sweep_options opt) : opt_(std::move(opt)) {}

Sweep_result Sweep_runner::run(const Sweep_grid& grid) const {
  Scheduler_options sopt;
  sopt.workers = opt_.workers;
  sopt.backend = opt_.backend;
  sopt.intra = opt_.intra;
  sopt.cluster = opt_.cluster;
  sopt.uplink = opt_.uplink;
  sopt.keep_slots = opt_.keep_slots;
  sopt.sim_shards = opt_.sim_shards;

  const Grid_source source(grid);
  Schedule_result sched = Slot_scheduler(sopt).run(source);

  // Re-shape the scheduler's group roll-up into the historical per-point
  // result.  The group aggregation walks slots in index order with the same
  // formulas the pre-refactor engine used, so every field is bit-identical.
  Sweep_result out;
  out.backend = opt_.backend;
  out.workers = sched.workers;
  out.total_slots = sched.total_slots;
  out.total_cycles = sched.total_cycles;
  out.wall_seconds = sched.wall_seconds;
  const std::vector<Sweep_point> points = grid.points();
  out.points.resize(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    auto& row = out.points[p];
    row.point = points[p];
    row.slots = grid.slots_per_point;
    if (p < sched.groups.size()) {
      const auto& grp = sched.groups[p];
      row.evm = grp.evm;
      row.ber = grp.ber;
      row.sigma2_hat = grp.sigma2_hat;
      row.cycles = grp.cycles;
    }
  }
  if (opt_.keep_slots) out.slots = std::move(sched.slots);
  return out;
}

std::string Sweep_result::str() const {
  common::Table t({"fft", "UEs", "QAM", "SNR dB", "slots", "EVM %", "BER",
                   "sigma2^", "cycles"});
  for (const auto& row : points) {
    t.add_row({common::Table::fmt(static_cast<uint64_t>(row.point.fft_size)),
               common::Table::fmt(static_cast<uint64_t>(row.point.n_ue)),
               common::Table::fmt(static_cast<uint64_t>(row.point.qam)),
               common::Table::fmt(row.point.snr_db, 1),
               common::Table::fmt(static_cast<uint64_t>(row.slots)),
               common::Table::fmt(100.0 * row.evm, 2),
               common::Table::fmt(row.ber, 5),
               common::Table::fmt(row.sigma2_hat, 8),
               common::Table::fmt(row.cycles)});
  }
  char footer[160];
  std::snprintf(footer, sizeof footer,
                "%llu slots on the %s backend, %u worker%s: %.3f s wall, "
                "%.1f slots/s\n",
                static_cast<unsigned long long>(total_slots), backend.c_str(),
                workers, workers == 1 ? "" : "s", wall_seconds,
                slots_per_second());
  return t.str() + footer;
}

}  // namespace pp::runtime
