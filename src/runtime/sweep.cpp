#include "runtime/sweep.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/check.h"
#include "common/table.h"
#include "runtime/backend.h"

namespace pp::runtime {

std::vector<Sweep_point> Sweep_grid::points() const {
  std::vector<Sweep_point> out;
  out.reserve(n_points());
  for (const uint32_t fft : fft_sizes) {
    for (const uint32_t ue : ue_counts) {
      for (const phy::Qam q : qam_orders) {
        for (const double snr : snr_db) {
          out.push_back(Sweep_point{fft, ue, q, snr});
        }
      }
    }
  }
  return out;
}

uint64_t Sweep_grid::n_points() const {
  return static_cast<uint64_t>(fft_sizes.size()) * ue_counts.size() *
         qam_orders.size() * snr_db.size();
}

phy::Uplink_config Sweep_runner::slot_config(const Sweep_grid& grid,
                                             const Sweep_point& point,
                                             uint64_t slot_index) {
  PP_CHECK(grid.n_symb > grid.n_pilot_symb,
           "sweep grid needs at least one data symbol after the pilots");
  phy::Uplink_config c;
  c.n_sc = point.fft_size;  // sim backend rule: all bins active
  c.fft_size = point.fft_size;
  c.n_rx = grid.n_rx;
  c.n_beams = grid.n_beams;
  c.n_ue = point.n_ue;
  c.n_symb = grid.n_symb;
  c.n_pilot_symb = grid.n_pilot_symb;
  c.qam = point.qam;
  // Per-antenna signal power of the Rayleigh model: each of the n_ue paths
  // contributes E|h|^2 E|x|^2 = (channel_gain * ue_power)^2.
  const double gp = grid.channel_gain * grid.ue_power;
  c.sigma2 = point.n_ue * gp * gp * std::pow(10.0, -point.snr_db / 10.0);
  c.ue_power = grid.ue_power;
  c.channel_gain = grid.channel_gain;
  c.coherence = grid.coherence;
  c.seed = slot_seed(grid.base_seed, slot_index);
  return c;
}

Sweep_runner::Sweep_runner(Sweep_options opt) : opt_(std::move(opt)) {}

Sweep_result Sweep_runner::run(const Sweep_grid& grid) const {
  const std::vector<Sweep_point> points = grid.points();
  const uint64_t per_point = grid.slots_per_point;
  const uint64_t n_slots = points.size() * per_point;

  uint32_t workers = opt_.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  if (workers > n_slots) workers = static_cast<uint32_t>(std::max<uint64_t>(n_slots, 1));

  const Pipeline pipeline = uplink_pipeline(opt_.cluster, opt_.uplink);

  const auto t0 = std::chrono::steady_clock::now();

  // Workers pull global slot indices from the cursor and write results into
  // their own pre-sized element — no locks, no shared mutable kernel state
  // (each worker instantiates a private Backend; the lazily-built twiddle /
  // QAM tables are call_once-guarded and immutable afterwards).
  std::vector<Slot_result> slots(n_slots);
  std::atomic<uint64_t> cursor{0};
  auto work = [&] {
    const std::unique_ptr<Backend> backend =
        make_backend(opt_.backend, opt_.intra);
    for (;;) {
      const uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_slots) break;
      const Sweep_point& pt = points[i / per_point];
      const phy::Uplink_scenario sc(slot_config(grid, pt, i));
      slots[i] = pipeline.execute(sc, *backend);
    }
  };
  if (n_slots > 0) {
    if (workers <= 1) {
      work();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (uint32_t w = 0; w < workers; ++w) pool.emplace_back(work);
      for (auto& t : pool) t.join();
    }
  }

  const auto t1 = std::chrono::steady_clock::now();

  // Aggregate in slot-index order so the roll-up (including its
  // floating-point sums) is independent of worker scheduling.
  Sweep_result out;
  out.backend = opt_.backend;
  out.workers = workers;
  out.total_slots = n_slots;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.points.resize(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    auto& row = out.points[p];
    row.point = points[p];
    row.slots = static_cast<uint32_t>(per_point);
    double evm2 = 0.0, ber = 0.0, sigma2 = 0.0;
    for (uint64_t j = p * per_point; j < (p + 1) * per_point; ++j) {
      const Slot_result& s = slots[j];
      evm2 += s.evm * s.evm;
      ber += s.ber;
      sigma2 += s.sigma2_hat;
      row.cycles += s.total_cycles();
    }
    if (per_point > 0) {
      row.evm = std::sqrt(evm2 / per_point);
      row.ber = ber / per_point;
      row.sigma2_hat = sigma2 / per_point;
    }
    out.total_cycles += row.cycles;
  }
  if (opt_.keep_slots) out.slots = std::move(slots);
  return out;
}

std::string Sweep_result::str() const {
  common::Table t({"fft", "UEs", "QAM", "SNR dB", "slots", "EVM %", "BER",
                   "sigma2^", "cycles"});
  for (const auto& row : points) {
    t.add_row({common::Table::fmt(static_cast<uint64_t>(row.point.fft_size)),
               common::Table::fmt(static_cast<uint64_t>(row.point.n_ue)),
               common::Table::fmt(static_cast<uint64_t>(row.point.qam)),
               common::Table::fmt(row.point.snr_db, 1),
               common::Table::fmt(static_cast<uint64_t>(row.slots)),
               common::Table::fmt(100.0 * row.evm, 2),
               common::Table::fmt(row.ber, 5),
               common::Table::fmt(row.sigma2_hat, 8),
               common::Table::fmt(row.cycles)});
  }
  char footer[160];
  std::snprintf(footer, sizeof footer,
                "%llu slots on the %s backend, %u worker%s: %.3f s wall, "
                "%.1f slots/s\n",
                static_cast<unsigned long long>(total_slots), backend.c_str(),
                workers, workers == 1 ? "" : "s", wall_seconds,
                slots_per_second());
  return t.str() + footer;
}

}  // namespace pp::runtime
