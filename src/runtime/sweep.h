// Scenario sweep grids and the batch-sweep compatibility wrapper.
//
// A Sweep_grid spans a scenario space - numerologies (FFT size = active
// sub-carriers), UE counts, QAM orders, SNR points - with `slots_per_point`
// independently-faded slots per grid point.  Since the scheduler refactor
// the execution core lives in runtime::Slot_scheduler (scheduler.h): this
// header contributes
//
//   Grid_source    the thin Slot_source adapter that turns the grid into a
//                  batch job stream (every job arrives at t = 0, carries no
//                  deadline, and groups by grid point)
//   Sweep_runner   the original batch API, now a compatibility wrapper:
//                  Grid_source + Slot_scheduler + the point roll-up, with
//                  results bit-identical to the pre-refactor engine
//                  (tests/test_scheduler.cpp pins the parity)
//
// The determinism contract is unchanged: each slot is generated from a seed
// derived purely from (base_seed, slot_index) (common::Rng::derive_seed -
// SplitMix64), and aggregation walks slots in index order, so any
// (workers, intra) combination is bit-identical to the serial run
// (docs/DETERMINISM.md).
//
// Driven by name through the registry/preset layer: the pipeline is the
// uplink_pipeline() preset over a named cluster, the backend comes from
// make_backend("sim"|"reference"|"parallel").  examples/pusch_sweep.cpp is
// the CLI, bench/bench_throughput_sweep.cpp the throughput harness.
#ifndef PUSCHPOOL_RUNTIME_SWEEP_H
#define PUSCHPOOL_RUNTIME_SWEEP_H

#include <string>
#include <vector>

#include "phy/uplink.h"
#include "runtime/scheduler.h"

namespace pp::runtime {

// One point of the scenario grid.
struct Sweep_point {
  uint32_t fft_size = 64;  // == active sub-carriers (the sim backend's rule)
  uint32_t n_ue = 2;
  phy::Qam qam = phy::Qam::qam16;
  double snr_db = 30.0;
};

struct Sweep_grid {
  // Axes; the cartesian product is walked numerology-outermost,
  // SNR-innermost.  An empty axis makes the grid empty.
  std::vector<uint32_t> fft_sizes = {64};      // powers of 4 (radix-4 kernels)
  std::vector<uint32_t> ue_counts = {2};
  std::vector<phy::Qam> qam_orders = {phy::Qam::qam16};
  std::vector<double> snr_db = {30.0};
  uint32_t slots_per_point = 1;  // independently-faded slots per point

  // Scenario knobs shared by every point.
  uint32_t n_rx = 4;
  uint32_t n_beams = 4;
  uint32_t n_symb = 4;  // OFDM symbols per slot, incl. pilots
  uint32_t n_pilot_symb = 2;
  double ue_power = 0.08;
  double channel_gain = 0.25;
  uint32_t coherence = 16;
  uint64_t base_seed = 1;

  // Channel profile shared by every point (phy/channel.h): block-fading
  // Rayleigh by default, or a TDL power-delay profile with per-UE Doppler
  // evolution.  delay_spread is in subcarrier-grid samples, symbol_s the
  // OFDM symbol duration driving the Doppler correlation.
  phy::Channel_profile profile = phy::Channel_profile::flat;
  double doppler_hz = 0.0;
  double delay_spread = 4.0;
  double symbol_s = 1e-3 / 14;

  // Grid points in deterministic walk order.
  std::vector<Sweep_point> points() const;
  uint64_t n_points() const;
  uint64_t n_slots() const { return n_points() * slots_per_point; }
};

// The grid as a Slot_source: slot i belongs to point i / slots_per_point,
// arrives at t = 0 (batch semantics - the FCFS model degrades to "process
// in index order") and carries no deadline budget.
class Grid_source final : public Slot_source {
 public:
  explicit Grid_source(Sweep_grid grid);

  const Sweep_grid& grid() const { return grid_; }

  std::string_view name() const override { return "grid"; }
  uint64_t n_slots() const override { return grid_.n_slots(); }
  uint32_t n_groups() const override {
    return static_cast<uint32_t>(points_.size());
  }
  std::string group_label(uint32_t group) const override;
  Slot_job job(uint64_t index) const override;

 private:
  Sweep_grid grid_;
  std::vector<Sweep_point> points_;
};

struct Sweep_options {
  uint32_t workers = 0;  // slot-level workers; 0 = hardware_concurrency (min 1)
  std::string backend = "reference";  // make_backend() name
  // Intra-slot workers per backend instance ("parallel" backend only,
  // 0 = hardware_concurrency).  Total threads ~= workers * intra; pick
  // workers * intra <= host cores when composing both levels.
  uint32_t intra = 1;
  arch::Cluster_config cluster = arch::Cluster_config::minipool();
  Uplink_options uplink;  // preset knobs (FFT gangs, Cholesky batching)
  bool keep_slots = true;  // retain per-slot results (the bit-exact surface)
  // Sim-backend host sharding (Scheduler_options::sim_shards): N concurrent
  // single-threaded machines, bit-identical for every N.  0 = off.
  uint32_t sim_shards = 0;
};

struct Sweep_result {
  struct Point {
    Sweep_point point;
    uint32_t slots = 0;
    double evm = 0.0;         // rms over the point's slots
    double ber = 0.0;         // mean over the point's slots
    double sigma2_hat = 0.0;  // mean NE output
    uint64_t cycles = 0;      // summed simulated cycles (0 on reference)
  };
  std::vector<Point> points;
  // Per-slot results in grid order (empty when keep_slots is off).
  std::vector<Slot_result> slots;

  std::string backend;
  uint32_t workers = 0;
  uint64_t total_slots = 0;
  uint64_t total_cycles = 0;  // simulated cycles across all slots
  double wall_seconds = 0.0;
  double slots_per_second() const {
    return wall_seconds > 0.0 ? total_slots / wall_seconds : 0.0;
  }

  // ASCII table of the per-point curves plus a throughput footer.
  std::string str() const;
};

class Sweep_runner {
 public:
  explicit Sweep_runner(Sweep_options opt = {});

  const Sweep_options& options() const { return opt_; }

  Sweep_result run(const Sweep_grid& grid) const;

  // --- the deterministic seed/config contract (pinned by tests) ---------
  // Seed of slot `slot_index` of a sweep with the given base seed.
  static uint64_t slot_seed(uint64_t base_seed, uint64_t slot_index) {
    return common::Rng::derive_seed(base_seed, slot_index);
  }
  // Full scenario config of one slot: grid knobs + point axes + derived
  // noise (sigma2 = n_ue * (channel_gain * ue_power)^2 * 10^(-snr/10), the
  // per-antenna signal power of the Rayleigh model) + the slot seed.
  static phy::Uplink_config slot_config(const Sweep_grid& grid,
                                        const Sweep_point& point,
                                        uint64_t slot_index);

 private:
  Sweep_options opt_;
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_SWEEP_H
