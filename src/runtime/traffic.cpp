#include "runtime/traffic.h"

#include <cmath>

#include "common/check.h"
#include "phy/qam.h"
#include "runtime/sweep.h"

namespace pp::runtime {

namespace {

// Exponential inter-arrival gap with the given mean.  uniform() is in
// [0, 1), so 1 - u is in (0, 1] and the log is finite and <= 0.
double exp_gap(common::Rng& rng, double mean_s) {
  return -mean_s * std::log(1.0 - rng.uniform());
}

}  // namespace

Traffic_source::Traffic_source(Traffic_config cfg) : cfg_(std::move(cfg)) {
  PP_CHECK(!cfg_.cells.empty(), "traffic needs at least one cell");
  for (const auto& cell : cfg_.cells) {
    PP_CHECK(cell.load > 0.0, "cell load must be positive");
  }

  // Slot configs are assembled by Sweep_runner::slot_config - the single
  // implementation of the axes+knobs -> Uplink_config mapping (incl. the
  // Rayleigh sigma2-from-SNR derivation and the derive_seed(base, i) seed
  // contract) - so grid and traffic slots of the same nominal scenario can
  // never drift apart.  Only the shared knobs of this pseudo-grid matter;
  // its axes are overridden per cell below.
  Sweep_grid knobs;
  knobs.n_rx = cfg_.n_rx;
  knobs.n_beams = cfg_.n_beams;
  knobs.n_symb = cfg_.n_symb;
  knobs.n_pilot_symb = cfg_.n_pilot_symb;
  knobs.ue_power = cfg_.ue_power;
  knobs.channel_gain = cfg_.channel_gain;
  knobs.coherence = cfg_.coherence;
  knobs.base_seed = cfg_.base_seed;

  // Channel knobs are per cell: each cell carries its own profile and
  // Doppler, and the OFDM symbol duration feeding the fading model follows
  // the cell's numerology so absolute-time fading rates are honest across
  // a mixed-mu deployment.
  const size_t n_cells = cfg_.cells.size();
  std::vector<Sweep_grid> cell_knobs(n_cells, knobs);
  for (size_t c = 0; c < n_cells; ++c) {
    const Traffic_cell& cell = cfg_.cells[c];
    cell_knobs[c].profile = cell.profile;
    cell_knobs[c].doppler_hz = cell.doppler_hz;
    cell_knobs[c].delay_spread = cell.delay_spread;
    cell_knobs[c].symbol_s = cell.slot_seconds() / cfg_.n_symb;
  }

  // Per-cell arrival streams: next pending arrival time of every cell, each
  // advanced from its own seeded RNG.  The global stream is the n_slots
  // earliest events of the merge - deterministic, and prefix-stable under a
  // larger n_slots because each cell's sequence only ever extends.
  std::vector<common::Rng> rng;
  std::vector<double> next_s(n_cells);
  rng.reserve(n_cells);
  for (size_t c = 0; c < n_cells; ++c) {
    rng.emplace_back(
        common::Rng::derive_seed(cfg_.base_seed, kArrivalStream + c));
    const double mean =
        cfg_.cells[c].slot_seconds() / cfg_.cells[c].load;
    next_s[c] = exp_gap(rng[c], mean);
  }

  jobs_.reserve(cfg_.n_slots);
  for (uint64_t i = 0; i < cfg_.n_slots; ++i) {
    size_t c = 0;
    for (size_t j = 1; j < n_cells; ++j) {
      if (next_s[j] < next_s[c]) c = j;
    }
    const Traffic_cell& cell = cfg_.cells[c];

    Slot_job job;
    job.index = i;
    job.group = static_cast<uint32_t>(c);
    job.arrival_s = next_s[c];
    job.budget_s = cell.budget_seconds();
    job.cfg = Sweep_runner::slot_config(
        cell_knobs[c],
        Sweep_point{cell.fft_size, cell.n_ue, cell.qam, cell.snr_db}, i);
    jobs_.push_back(std::move(job));

    next_s[c] += exp_gap(rng[c], cell.slot_seconds() / cell.load);
  }
}

uint64_t cell_bits_per_slot(const Traffic_cell& cell,
                            const Traffic_config& cfg) {
  PP_CHECK(cfg.n_symb > cfg.n_pilot_symb,
           "a slot needs at least one data symbol");
  return uint64_t{cell.n_ue} * (cfg.n_symb - cfg.n_pilot_symb) *
         cell.fft_size * phy::qam_bits(cell.qam);
}

double offered_bits_per_second(const Traffic_config& cfg) {
  double bps = 0.0;
  for (const auto& cell : cfg.cells) {
    bps += static_cast<double>(cell_bits_per_slot(cell, cfg)) * cell.load /
           cell.slot_seconds();
  }
  return bps;
}

std::string Traffic_source::group_label(uint32_t group) const {
  PP_CHECK(group < cfg_.cells.size(), "traffic cell index out of range");
  const Traffic_cell& cell = cfg_.cells[group];
  if (!cell.name.empty()) return cell.name;
  std::string label =
      "cell" + std::to_string(group) + " mu" + std::to_string(cell.mu) +
      " fft" + std::to_string(cell.fft_size) + " ue" +
      std::to_string(cell.n_ue) + " qam" +
      std::to_string(static_cast<uint32_t>(cell.qam));
  // Only non-flat profiles suffix the label, so pre-fading baselines and
  // report keys are unchanged for the default channel.
  if (cell.profile != phy::Channel_profile::flat) {
    label += " " + std::string(phy::channel_profile_name(cell.profile));
  }
  return label;
}

Slot_job Traffic_source::job(uint64_t index) const {
  PP_CHECK(index < jobs_.size(), "traffic slot index out of range");
  return jobs_[index];
}

}  // namespace pp::runtime
