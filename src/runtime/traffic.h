// Deterministic stochastic multi-cell uplink traffic source.
//
// Traffic_source feeds the streaming scheduler (scheduler.h) with the
// regime the batch grid cannot express: several cells of different
// numerology / UE count / QAM order sharing one processing cluster, slots
// arriving as independent Poisson processes instead of a fixed walk.  The
// follow-up SDR papers (PAPERS.md) evaluate exactly this sustained-traffic
// regime.
//
// Determinism contract:
//   arrivals     each cell owns a private inter-arrival RNG stream seeded
//                with Rng::derive_seed(base_seed, 2^48 + cell) - far above
//                any slot index, so arrival streams and slot-content
//                streams can never collide.  Exponential gaps with mean
//                slot_duration / load make the per-cell process Poisson.
//   merge        jobs are emitted in global arrival order (ties broken by
//                cell index).  Each cell's arrival sequence is
//                prefix-stable and the merge is deterministic, so growing
//                n_slots only appends jobs - earlier slots keep their
//                index, seed, and therefore bit-exact results
//                (tests/test_traffic.cpp pins this).
//   content      slot i's scenario seed is Rng::derive_seed(base_seed, i),
//                the same contract as the sweep engine, so any worker
//                count reproduces the serial run bit-for-bit.
//   deadline     each job's budget is its cell's numerology slot duration
//                (phy::slot_budget_seconds) unless the cell overrides it.
#ifndef PUSCHPOOL_RUNTIME_TRAFFIC_H
#define PUSCHPOOL_RUNTIME_TRAFFIC_H

#include <string>
#include <vector>

#include "phy/numerology.h"
#include "runtime/scheduler.h"

namespace pp::runtime {

// One cell of the mixed workload.
struct Traffic_cell {
  std::string name;        // label for roll-ups; empty = "cell<i>"
  uint32_t mu = 1;         // 5G numerology index: slot = 1 ms / 2^mu
  uint32_t fft_size = 64;  // == active sub-carriers (the sim backend's rule)
  uint32_t n_ue = 2;
  phy::Qam qam = phy::Qam::qam16;
  double snr_db = 30.0;
  // Mean arrivals per slot duration (Poisson).  1.0 is the saturated
  // streaming regime - on average one slot per slot budget.
  double load = 0.5;
  // Deadline override in seconds; 0 = the numerology slot duration.
  double budget_s = 0.0;
  // Per-cell channel profile (phy/channel.h): flat block fading by default,
  // or a TDL power-delay profile with Doppler evolution.  The OFDM symbol
  // duration feeding the Doppler model follows the cell's numerology
  // (slot_seconds() / n_symb), so a mu=3 cell fades faster in absolute
  // time than a mu=0 cell at the same doppler_hz.
  phy::Channel_profile profile = phy::Channel_profile::flat;
  double doppler_hz = 0.0;
  double delay_spread = 4.0;  // subcarrier-grid samples

  double slot_seconds() const { return phy::slot_budget_seconds(mu); }
  double budget_seconds() const {
    return budget_s > 0.0 ? budget_s : slot_seconds();
  }
};

struct Traffic_config {
  std::vector<Traffic_cell> cells = {Traffic_cell{}};
  uint64_t n_slots = 64;  // jobs generated across all cells
  uint64_t base_seed = 1;

  // Scenario knobs shared by every cell (same roles as Sweep_grid's).
  uint32_t n_rx = 4;
  uint32_t n_beams = 4;
  uint32_t n_symb = 4;  // OFDM symbols per slot, incl. pilots
  uint32_t n_pilot_symb = 2;
  double ue_power = 0.08;
  double channel_gain = 0.25;
  uint32_t coherence = 16;
};

// Payload bits one slot of `cell` demodulates: layers x data symbols x
// sub-carriers x QAM bits - the numerator of every offered-throughput
// figure (an integer product, exact in doubles).
uint64_t cell_bits_per_slot(const Traffic_cell& cell,
                            const Traffic_config& cfg);

// Aggregate offered uplink throughput of `cfg` at its configured per-cell
// loads, in bits per second of virtual time: sum over cells of
// bits_per_slot x (load / slot_duration).  bench_capacity scales this by
// the capacity search's load multiplier for the Gb/s headline.
double offered_bits_per_second(const Traffic_config& cfg);

class Traffic_source final : public Slot_source {
 public:
  explicit Traffic_source(Traffic_config cfg);

  const Traffic_config& config() const { return cfg_; }

  std::string_view name() const override { return "traffic"; }
  uint64_t n_slots() const override { return jobs_.size(); }
  uint32_t n_groups() const override {
    return static_cast<uint32_t>(cfg_.cells.size());
  }
  std::string group_label(uint32_t group) const override;
  Slot_job job(uint64_t index) const override;

  // The arrival-stream offset: cell c's inter-arrival RNG stream is
  // derive_seed(base_seed, kArrivalStream + c).
  static constexpr uint64_t kArrivalStream = uint64_t{1} << 48;

 private:
  Traffic_config cfg_;
  std::vector<Slot_job> jobs_;  // precomputed, global arrival order
};

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_TRAFFIC_H
