// Marshaling helpers for the fixed-point backends' workspace buffers.
//
// The sim and fixed host backends move data between the double-precision
// scenario domain and Q1.15 kernel inputs through the same two primitives:
// scale-then-saturate quantization and the inverse rescale.  The _into
// forms write caller-owned storage grown with common::ws_grow, so the
// per-slot marshaling reuses capacity after warm-up; the returning forms
// are conveniences for one-shot call sites (tests, kernel binding paths
// that copy anyway).  Both produce identical values element for element.
#ifndef PUSCHPOOL_RUNTIME_WORKSPACE_H
#define PUSCHPOOL_RUNTIME_WORKSPACE_H

#include <complex>
#include <span>
#include <vector>

#include "common/complex16.h"
#include "common/grid.h"

namespace pp::runtime {

inline void quantize_into(std::span<const std::complex<double>> x,
                          double scale, std::vector<common::cq15>& q) {
  common::ws_grow(q, x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    q[i] = common::to_cq15(x[i] * scale);
  }
}

// Pointer-range form: dequantize `n` elements starting at `q` (used on
// sub-ranges of batched kernel outputs without a temporary copy).
inline void dequantize_into(const common::cq15* q, size_t n, double scale,
                            std::vector<std::complex<double>>& x) {
  common::ws_grow(x, n);
  for (size_t i = 0; i < n; ++i) x[i] = common::to_cd(q[i]) / scale;
}

inline void dequantize_into(const std::vector<common::cq15>& q, double scale,
                            std::vector<std::complex<double>>& x) {
  dequantize_into(q.data(), q.size(), scale, x);
}

inline std::vector<common::cq15> quantize(
    std::span<const std::complex<double>> x, double scale) {
  std::vector<common::cq15> q;
  quantize_into(x, scale, q);
  return q;
}

inline std::vector<std::complex<double>> dequantize(
    const std::vector<common::cq15>& q, double scale) {
  std::vector<std::complex<double>> x;
  dequantize_into(q, scale, x);
  return x;
}

}  // namespace pp::runtime

#endif  // PUSCHPOOL_RUNTIME_WORKSPACE_H
