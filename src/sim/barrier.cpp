#include "sim/barrier.h"

#include <algorithm>

namespace pp::sim {

Barrier Barrier::create(arch::L1_alloc& alloc, const arch::Cluster_config& cfg,
                        std::vector<arch::core_id> cores) {
  PP_CHECK(!cores.empty(), "barrier needs at least one core");
  std::sort(cores.begin(), cores.end());

  Barrier b;
  b.n_ = static_cast<uint32_t>(cores.size());
  // Counter in the first participant's local bank.
  b.counter_ = alloc.alloc_word(cfg.first_local_bank(cores.front()));
  b.wake_ = Wake_set::make(cfg, cores);
  return b;
}

Barrier Barrier::create_flat_wake(arch::L1_alloc& alloc,
                                  const arch::Cluster_config& cfg,
                                  std::vector<arch::core_id> cores) {
  Barrier b = create(alloc, cfg, std::move(cores));
  Wake_set flat;
  flat.kind = Wake_set::Kind::cores;
  flat.cores = b.wake_.resolve(cfg);
  b.wake_ = std::move(flat);
  return b;
}

Tree_barrier Tree_barrier::create(arch::L1_alloc& alloc,
                                  const arch::Cluster_config& cfg) {
  Tree_barrier b;
  b.tile_.resize(cfg.n_tiles());
  for (arch::tile_id t = 0; t < cfg.n_tiles(); ++t) {
    // Tile counter in the tile's first bank.
    b.tile_[t] = alloc.alloc_word(t * cfg.banks_per_tile());
  }
  b.group_.resize(cfg.n_groups);
  for (arch::group_id g = 0; g < cfg.n_groups; ++g) {
    b.group_[g] =
        alloc.alloc_word(g * cfg.tiles_per_group * cfg.banks_per_tile());
  }
  b.root_ = alloc.alloc_word(0);
  b.wake_.kind = Wake_set::Kind::all;
  return b;
}

Prog tree_barrier_wait(Core& c, const Tree_barrier& b) {
  const arch::Cluster_config& cfg = *c.cfg;
  // Level 0: arrive at the tile counter (1-cycle local bank).
  const arch::tile_id tile = cfg.tile_of_core(c.id);
  const Tok t0 = co_await c.amo_add(b.tile_counter(tile), 1);
  c.alu_use(2, t0.ready);
  if (t0.value == cfg.cores_per_tile - 1) {
    co_await c.store(b.tile_counter(tile), 0);
    // Level 1: last of the tile ascends to the group counter.
    const arch::group_id grp = cfg.group_of_core(c.id);
    const Tok t1 = co_await c.amo_add(b.group_counter(grp), 1);
    c.alu_use(2, t1.ready);
    if (t1.value == cfg.tiles_per_group - 1) {
      co_await c.store(b.group_counter(grp), 0);
      // Level 2: last tile representative ascends to the root.
      const Tok t2 = co_await c.amo_add(b.root_counter(), 1);
      c.alu_use(2, t2.ready);
      if (t2.value == cfg.n_groups - 1) {
        co_await c.store(b.root_counter(), 0);
        c.csr_wake(b.wake());
      }
    }
  }
  co_await c.wfi();
}

Prog barrier_wait(Core& c, const Barrier& b) {
  if (b.n_cores() == 1) co_return;  // nothing to synchronize
  const Tok tok = co_await c.amo_add(b.counter_addr(), 1);
  c.alu_use(2, tok.ready);  // compare arrival count + branch
  if (tok.value == b.n_cores() - 1) {
    // Last arrival: reset the counter, then assert the wake-up trigger.
    // The trigger also targets this core, so the WFI below falls through as
    // soon as the trigger fires (MemPool's runtime does exactly this).
    co_await c.store(b.counter_addr(), 0);
    c.csr_wake(b.wake());
  }
  co_await c.wfi();
}

}  // namespace pp::sim
