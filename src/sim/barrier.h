// Synchronization barriers (paper §IV).
//
// A barrier is an L1 counter plus a wake-up trigger.  Arriving cores
// atomically increment the counter and go to WFI sleep; the last core resets
// the counter and asserts the wake-up CSR(s) covering exactly the
// participants.  Full-cluster barriers broadcast (one CSR write); subset
// barriers use the group/tile/core triggers TeraPool adds, so independent
// core groups can synchronize without disturbing each other.
#ifndef PUSCHPOOL_SIM_BARRIER_H
#define PUSCHPOOL_SIM_BARRIER_H

#include <vector>

#include "arch/address_map.h"
#include "sim/machine.h"
#include "sim/wake.h"

namespace pp::sim {

class Barrier {
 public:
  Barrier() = default;

  // Build a barrier for `cores` (need not be sorted).  The counter lives in
  // a bank local to the first participant's tile, so barrier traffic stays
  // off the remote interconnect.
  static Barrier create(arch::L1_alloc& alloc,
                        const arch::Cluster_config& cfg,
                        std::vector<arch::core_id> cores);

  // Like create(), but the wake-up trigger writes one CSR per core instead
  // of using the hierarchical group/tile CSRs (the §IV ablation: what a
  // cluster without TeraPool's added triggers must do).
  static Barrier create_flat_wake(arch::L1_alloc& alloc,
                                  const arch::Cluster_config& cfg,
                                  std::vector<arch::core_id> cores);

  arch::addr_t counter_addr() const { return counter_; }
  uint32_t n_cores() const { return n_; }
  const Wake_set& wake() const { return wake_; }

 private:
  arch::addr_t counter_ = 0;
  uint32_t n_ = 0;
  Wake_set wake_;
};

// Coroutine a core awaits to join barrier `b`.
Prog barrier_wait(Core& c, const Barrier& b);

// Hierarchical-arrival ("log") barrier, as in the MemPool runtime: cores
// increment a counter in their own tile, the last arrival per tile ascends
// to a group counter, the last group representative to the cluster counter,
// which fires the broadcast.  Arrival serialization drops from O(cores) on
// one bank to O(cores/tile + tiles/group + groups).
class Tree_barrier {
 public:
  Tree_barrier() = default;

  // Covers the whole cluster.
  static Tree_barrier create(arch::L1_alloc& alloc,
                             const arch::Cluster_config& cfg);

  arch::addr_t tile_counter(arch::tile_id t) const { return tile_[t]; }
  arch::addr_t group_counter(arch::group_id g) const { return group_[g]; }
  arch::addr_t root_counter() const { return root_; }
  const Wake_set& wake() const { return wake_; }

 private:
  std::vector<arch::addr_t> tile_;
  std::vector<arch::addr_t> group_;
  arch::addr_t root_ = 0;
  Wake_set wake_;
};

Prog tree_barrier_wait(Core& c, const Tree_barrier& b);

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_BARRIER_H
