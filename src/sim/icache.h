// Instruction-fetch model.
//
// Kernel code is not compiled to RISC-V here, so static code layout is
// reconstructed from C++ call sites: the first time a call site issues, the
// registry assigns it consecutive "slots" in a virtual code image (one slot
// per instruction, in first-execution order, which approximates program
// order).  Slots group into 4-instruction lines; each core has a small
// direct-mapped L0 cache of lines and pays a refill penalty per missing line
// (hit in the shared per-tile L1 I$).  Loop bodies that fit in L0 hit after
// the first iteration, so cores executing few iterations show a larger
// instruction-stall fraction - the effect the paper reports for TeraPool.
//
// Both structures sit on the simulator's per-instruction fast path
// (Core::issue), so they are sized to stay cache-resident: the site table is
// 4096 entries (the check fires at 2047 live sites; the whole kernel corpus
// registers a few hundred) and the L0 tags live inline in the core when the
// configured capacity fits (64 instructions -> 16 lines in every preset).
// Neither size choice is observable in simulated cycles: slot numbers depend
// only on first-use order, and the tag array's content is identical either
// way.
#ifndef PUSCHPOOL_SIM_ICACHE_H
#define PUSCHPOOL_SIM_ICACHE_H

#include <array>
#include <cstdint>
#include <source_location>
#include <vector>

#include "common/check.h"

namespace pp::sim {

inline constexpr uint32_t icache_line_instrs = 4;

// Maps C++ call sites to slot ranges of the virtual code image.
class Site_registry {
 public:
  Site_registry() : table_(capacity) {}

  // First slot of this site; registers `n_instrs` consecutive slots on first
  // use.
  uint32_t lookup(const std::source_location& sl, uint32_t n_instrs) {
    uint64_t key = reinterpret_cast<uint64_t>(sl.file_name());
    key = key * 1000003u + static_cast<uint64_t>(sl.line()) * 97u + sl.column();
    key |= 1;  // never 0 (0 marks an empty table entry)
    size_t i = (key * 0x9e3779b97f4a7c15ull >> 32) & (capacity - 1);
    while (true) {
      Entry& e = table_[i];
      if (e.key == key) return e.first_slot;
      if (e.key == 0) return miss(e, key, n_instrs);
      i = (i + 1) & (capacity - 1);
    }
  }

 private:
  struct Entry {
    uint64_t key = 0;
    uint32_t first_slot = 0;
  };

  // First execution of a call site: assign the next consecutive slot range.
  uint32_t miss(Entry& e, uint64_t key, uint32_t n_instrs) {
    PP_CHECK(used_ + 1 < capacity / 2, "site registry overflow");
    ++used_;
    e.key = key;
    e.first_slot = next_slot_;
    next_slot_ += n_instrs;
    return e.first_slot;
  }

  static constexpr size_t capacity = 1 << 12;
  std::vector<Entry> table_;
  size_t used_ = 0;
  uint32_t next_slot_ = 0;
};

// Per-core L0 instruction cache (direct-mapped, line-grained).
class L0_icache {
 public:
  void configure(uint32_t n_instrs) {
    n_lines_ = n_instrs / icache_line_instrs;
    if (n_lines_ == 0) n_lines_ = 1;
    pow2_mask_ = (n_lines_ & (n_lines_ - 1)) == 0 ? n_lines_ - 1 : 0u;
    inline_.fill(~0u);
    if (n_lines_ <= inline_lines) {
      heap_.clear();
    } else {
      heap_.assign(n_lines_, ~0u);
    }
  }

  // Touch the lines covering slots [first, first + n); returns missing lines.
  uint32_t touch(uint32_t first_slot, uint32_t n_instrs) {
    uint32_t* tags = heap_.empty() ? inline_.data() : heap_.data();
    const uint32_t first_line = first_slot / icache_line_instrs;
    const uint32_t last_line = (first_slot + n_instrs - 1) / icache_line_instrs;
    if (first_line == last_line) [[likely]] {
      // Single-line issue (almost every op: ops span <= 4 slots).
      uint32_t& tag = tags[index(first_line)];
      if (tag == first_line) return 0;
      tag = first_line;
      return 1;
    }
    uint32_t misses = 0;
    for (uint32_t line = first_line; line <= last_line; ++line) {
      uint32_t& tag = tags[index(line)];
      if (tag != line) {
        tag = line;
        ++misses;
      }
    }
    return misses;
  }

 private:
  uint32_t index(uint32_t line) const {
    return pow2_mask_ ? (line & pow2_mask_) : (line % n_lines_);
  }

  // Every preset configures 64 instructions -> 16 lines, held inline in the
  // Core (no heap indirection per issue); larger configs spill to the heap.
  static constexpr uint32_t inline_lines = 32;
  uint32_t n_lines_ = 16;
  uint32_t pow2_mask_ = 15;
  std::array<uint32_t, inline_lines> inline_{
      []() consteval {
        std::array<uint32_t, inline_lines> a{};
        a.fill(~0u);
        return a;
      }()};
  std::vector<uint32_t> heap_;
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_ICACHE_H
