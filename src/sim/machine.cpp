#include "sim/machine.h"

#include <bit>
#include <cstdlib>

namespace pp::sim {

// Process-wide opt-out of the batching fast path: SIM_REFERENCE_LOOP=1 (any
// value but "0") makes every Machine run the pre-batching scheduler.  The
// differential suite uses this to hold an unmodified binary's cycles against
// the fast path's.
bool Machine::env_reference_loop() {
  const char* v = std::getenv("SIM_REFERENCE_LOOP");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// ---------------------------------------------------------------------------
// Core: cold paths (wake CSR write, WFI suspension)
// ---------------------------------------------------------------------------

void Core::csr_wake(const Wake_set& set, Sl sl) {
  const uint32_t writes = set.n_csr_writes();
  const uint64_t at = issue(sl, writes, 0, 0);
  machine->wake(set, at + (writes - 1) + cfg->wakeup_latency);
}

bool Core::Wfi_awaiter::await_suspend(std::coroutine_handle<>) noexcept {
  if (c.pending_wake) {
    // A trigger arrived while we were still running: fall through.
    const uint64_t eff = std::max(c.wake_at, c.t);
    if (eff > c.t) {
      c.stall(Stall::wfi, eff - c.t);
      c.t = eff;
    }
    c.pending_wake = false;
    c.wake_at = std::numeric_limits<uint64_t>::max();
    return false;  // do not suspend
  }
  c.sleeping = true;
  c.sleep_since = c.t;
  return true;
}

// ---------------------------------------------------------------------------
// Prog: symmetric transfer glue (needs Core definition)
// ---------------------------------------------------------------------------

std::coroutine_handle<> Prog::promise_type::Final_awaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  promise_type& pr = h.promise();
  if (pr.cont) {
    pr.core->active = pr.cont;
    return pr.cont;
  }
  // Root program finished.
  pr.core->finished = true;
  pr.core->active = {};
  --pr.core->machine->unfinished_;
  return std::noop_coroutine();
}

std::coroutine_handle<> Prog::Sub_awaiter::await_suspend(
    std::coroutine_handle<promise_type> parent) noexcept {
  child.promise().core = parent.promise().core;
  child.promise().cont = parent;
  child.promise().core->active = child;
  return child;
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(const arch::Cluster_config& cfg)
    : cfg_(cfg), map_(cfg_), route_(cfg_), mem_(cfg_),
      cores_(cfg_.n_cores()), bank_epoch_(cfg_.n_banks(), 0u),
      bank_owner_(cfg_.n_banks(), -1), buckets_(ring_size) {
  for (arch::core_id c = 0; c < cfg_.n_cores(); ++c) {
    cores_[c].id = c;
    cores_[c].cfg = &cfg_;
    cores_[c].machine = this;
    cores_[c].l0.configure(cfg_.l0_icache_instrs);
    if (route_.fast()) cores_[c].lat_row = route_.core_row(cfg_, c);
  }
  set_reference_loop(env_reference_loop());
}

void Machine::wake(const Wake_set& set, uint64_t at) {
  // Serialize concurrent triggers at the wake-up CSR unit.
  at = std::max(at, csr_unit_free_);
  csr_unit_free_ = at + 1;
  for (arch::core_id cid : set.resolve(cfg_)) {
    Core& k = cores_[cid];
    if (k.finished) continue;
    if (k.sleeping) {
      const uint64_t eff = std::max(at, k.sleep_since + 1);
      if (eff < k.wake_at) {
        k.wake_at = eff;
        schedule(cid, eff);
      }
    } else {
      k.pending_wake = true;
      k.wake_at = std::min(k.wake_at, at);
    }
  }
}

void Machine::dispatch(Core& c) {
  if (c.finished) return;  // stale event
  if (c.pending.kind != Core::Pending::Kind::none) {
    service_mem(c);
    c.active.resume();
    return;
  }
  if (c.sleeping) {
    if (c.wake_at != now_) return;  // stale wake event
    c.stall(Stall::wfi, now_ - c.sleep_since);
    c.t = now_;
    c.sleeping = false;
    c.wake_at = std::numeric_limits<uint64_t>::max();
    c.active.resume();
    return;
  }
  // Fresh start (spawn event).
  c.active.resume();
}

void Machine::service_mem(Core& c) {
  const Core::Pending p = c.pending;
  c.pending.kind = Core::Pending::Kind::none;

  const arch::bank_id bank = p.bank;  // resolved at issue (resolve_route)
  const uint32_t lat = p.lat;
  // Ownership contract check: a non-owner may touch an owned bank only for
  // the launch's closing barrier, i.e. once the owner is already parked in
  // WFI (or done).  A foreign access while the owner still executes means
  // the declaration was wrong and the inline fast path is unsound.
  PP_CHECK(bank_owner_[bank] < 0 ||
               bank_owner_[bank] == static_cast<int32_t>(c.id) ||
               cores_[static_cast<size_t>(bank_owner_[bank])].sleeping ||
               cores_[static_cast<size_t>(bank_owner_[bank])].finished,
           "bank-ownership contract violated: a core accessed an owned bank "
           "while its owner was still running (set_bank_owner declaration "
           "is wrong)");
  const uint32_t fwd = (lat - 1) / 2;  // request network hops
  const uint32_t ret = (lat - 1) / 2;  // response network hops

  const uint64_t arrive = p.issue_t + fwd;
  uint64_t& epoch = bank_epoch_[bank];
  const uint64_t serve = std::max(arrive, epoch);
  // One access per bank per cycle; amo read-modify-write is done by an
  // adder at the bank within its cycle.
  epoch = serve + 1;
  const uint64_t ready = serve + 1 + ret;

  uint32_t value = 0;
  switch (p.kind) {
    case Core::Pending::Kind::load:
      value = mem_.read(p.addr);
      c.lsu_done[p.lsu_slot] = ready;
      break;
    case Core::Pending::Kind::store:
      mem_.write(p.addr, p.value);
      c.lsu_done[p.lsu_slot] = serve + ret;  // ack
      break;
    case Core::Pending::Kind::amo: {
      value = mem_.read(p.addr);
      mem_.write(p.addr, value + p.value);
      c.lsu_done[p.lsu_slot] = ready;
      break;
    }
    default:
      PP_CHECK(false, "bad pending op");
  }
  c.pending_result = Tok{ready, value};
}

void Machine::drain_bucket() {
  const uint64_t cycle = now_;
  const size_t slot = cycle & (ring_size - 1);
  auto& bucket = buckets_[slot];
  // Dispatch may append same-cycle events; index loop handles growth.
  for (size_t i = 0; i < bucket.size(); ++i) {
    // Hide the cold-core/frame misses of upcoming events behind the current
    // dispatch: core i+2's state now, core i+1's coroutine frame (its Core
    // line is resident from the previous iteration's prefetch).
    if (i + 2 < bucket.size()) {
      const char* n = reinterpret_cast<const char*>(&cores_[bucket[i + 2]]);
      __builtin_prefetch(n);
      __builtin_prefetch(n + 64);
    }
    if (i + 1 < bucket.size()) {
      Core& n = cores_[bucket[i + 1]];
      if (n.active) __builtin_prefetch(n.active.address());
    }
    const arch::core_id cid = bucket[i];
    --pending_events_;
    --ring_events_;
    dispatch(cores_[cid]);
    if (now_ != cycle) {
      // A synchronous stretch (try_service_sync) advanced the clock past
      // this cycle.  It can only fire once no event is left in this bucket,
      // so everything dispatched so far belonged here and anything present
      // now was scheduled during the stretch for a future cycle that
      // aliases this ring slot: leave it (and the occupancy bit) in place.
      bucket.erase(bucket.begin(), bucket.begin() + i + 1);
      return;
    }
  }
  bucket.clear();
  occ_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  ++now_;
}

void Machine::flush_far() {
  uint64_t rest_min = std::numeric_limits<uint64_t>::max();
  size_t kept = 0;
  for (auto& e : far_) {  // in place, preserving schedule order
    if (e.first - now_ < ring_size) {
      const size_t slot = e.first & (ring_size - 1);
      buckets_[slot].push_back(e.second);
      occ_[slot >> 6] |= uint64_t{1} << (slot & 63);
      earliest_pending_ = std::min(earliest_pending_, e.first);
      ++ring_events_;  // total pending_events_ unchanged: just moved
    } else {
      rest_min = std::min(rest_min, e.first);
      far_[kept++] = e;
    }
  }
  far_.resize(kept);
  far_min_ = rest_min;
}

void Machine::skip_to_next_event() {
  if (ring_events_ == 0) {
    // Every pending event lies beyond the ring horizon: jump straight to
    // the earliest (nothing can be scheduled in between).
    now_ = far_min_;
  }
  if (far_min_ - now_ < ring_size) [[unlikely]] flush_far();
  const size_t start = now_ & (ring_size - 1);
  size_t w = start >> 6;
  uint64_t word = occ_[w] & (~uint64_t{0} << (start & 63));
  size_t scanned = 0;
  while (word == 0) {
    w = (w + 1) & (occ_words - 1);
    PP_CHECK(++scanned <= occ_words, "scheduler bitmap lost an event");
    word = occ_[w];
  }
  const size_t slot = (w << 6) | static_cast<size_t>(std::countr_zero(word));
  // Every pending event lies in [now_, now_ + ring_size), so the first set
  // bit in circular order from `start` is the globally next event.
  now_ += (slot - start) & (ring_size - 1);
  // The scan just established the true minimum: refresh the bound that
  // gates synchronous service.
  earliest_pending_ = now_;
}

void Machine::run() {
  while (pending_events_ > 0) {
    skip_to_next_event();
    drain_bucket();
  }
  PP_CHECK(unfinished_ == 0,
           "simulation deadlock: programs still waiting with no events "
           "pending (barrier mismatch?)");
}

void Machine::run_reference() {
  // The pre-batching scheduler: tick every cycle, empty or not.
  while (pending_events_ > 0) {
    if (far_min_ - now_ < ring_size) [[unlikely]] flush_far();
    drain_bucket();
  }
  PP_CHECK(unfinished_ == 0,
           "simulation deadlock: programs still waiting with no events "
           "pending (barrier mismatch?)");
}

Kernel_report Machine::run_programs(std::string label,
                                    std::vector<Launch> launches) {
  const uint64_t t0 = now_;

  // Snapshot participating cores.
  std::vector<Core_counters> before(launches.size());
  for (size_t i = 0; i < launches.size(); ++i) {
    const Core& c = cores_[launches[i].core];
    before[i].instrs = c.instrs;
    before[i].stall = c.stalls;
  }

  for (Launch& l : launches) {
    Core& c = cores_[l.core];
    PP_CHECK(c.finished, "core already running a program");
    c.root = std::move(l.prog);
    c.root.handle().promise().core = &c;
    c.active = c.root.handle();
    c.finished = false;
    c.sleeping = false;
    c.pending_wake = false;
    c.wake_at = std::numeric_limits<uint64_t>::max();
    c.t = t0;
    ++unfinished_;
    schedule(l.core, t0);
  }

  if (reference_loop_) {
    run_reference();
  } else {
    run();
  }

  uint64_t t_end = t0;
  for (const Launch& l : launches) {
    t_end = std::max(t_end, cores_[l.core].t);
  }
  now_ = std::max(now_, t_end);

  Kernel_report r;
  r.label = std::move(label);
  r.cycles = t_end - t0;
  r.n_cores = static_cast<uint32_t>(launches.size());
  for (size_t i = 0; i < launches.size(); ++i) {
    Core& c = cores_[launches[i].core];
    const uint64_t di = c.instrs - before[i].instrs;
    r.instrs += di;
    uint64_t attributed = di;
    for (size_t k = 0; k < n_stall_kinds; ++k) {
      const uint64_t dk = c.stalls[k] - before[i].stall[k];
      r.stall[k] += dk;
      attributed += dk;
    }
    // A core that finished before t_end idles in WFI until the next join.
    const uint64_t window = r.cycles;
    PP_CHECK(attributed <= window, "cycle attribution exceeds window");
    r.stall[static_cast<size_t>(Stall::wfi)] += window - attributed;
    // Release the finished program's frame.
    c.root = Prog{};
  }
  // Exclusive-bank declarations cover exactly one launch.
  reset_bank_owners();
  return r;
}

}  // namespace pp::sim
