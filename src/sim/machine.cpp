#include "sim/machine.h"

namespace pp::sim {

// ---------------------------------------------------------------------------
// Core: instruction issue
// ---------------------------------------------------------------------------

uint64_t Core::issue(const Sl& sl, uint32_t n_instr, uint64_t dep_a,
                     uint64_t dep_b) {
  // Instruction fetch: refill missing L0 lines from the shared L1 I$.
  const uint32_t first_slot = machine->sites().lookup(sl, n_instr);
  const uint32_t misses = l0.touch(first_slot, n_instr);
  if (misses != 0) {
    const uint64_t pen =
        static_cast<uint64_t>(misses) * cfg->icache_refill_cycles;
    stall(Stall::icache, pen);
    t += pen;
  }
  // RAW: wait for operands.
  const uint64_t dep = std::max(dep_a, dep_b);
  if (dep > t) {
    stall(Stall::raw, dep - t);
    t = dep;
  }
  const uint64_t at = t;
  instrs += n_instr;
  t += n_instr;
  return at;
}

uint64_t Core::div(uint64_t dep_a, uint64_t dep_b, Sl sl) {
  // The divider is not pipelined: a second divide stalls until it frees up.
  const uint64_t dep = std::max(dep_a, dep_b);
  if (dep > t) {
    stall(Stall::raw, dep - t);
    t = dep;
  }
  if (div_free > t) {
    stall(Stall::extunit, div_free - t);
    t = div_free;
  }
  const uint64_t at = issue(sl, 1, 0, 0);
  div_free = at + cfg->div_latency;
  return at + cfg->div_latency;
}

uint32_t Core::lsu_acquire() {
  const uint32_t depth = std::min(cfg->lsu_depth, max_lsu_depth);
  uint32_t in_flight = 0;
  uint32_t free_slot = depth;
  uint64_t earliest = std::numeric_limits<uint64_t>::max();
  uint32_t earliest_slot = 0;
  for (uint32_t i = 0; i < depth; ++i) {
    if (lsu_done[i] > t) {
      ++in_flight;
      if (lsu_done[i] < earliest) {
        earliest = lsu_done[i];
        earliest_slot = i;
      }
    } else {
      free_slot = i;
    }
  }
  if (in_flight == depth) {
    stall(Stall::lsu, earliest - t);
    t = earliest;
    return earliest_slot;
  }
  return free_slot;
}

Core::Mem_awaiter Core::mem_op(Pending::Kind k, arch::addr_t a, uint32_t value,
                               uint64_t dep, const Sl& sl) {
  PP_CHECK(pending.kind == Pending::Kind::none,
           "core issued a memory op while one is pending");
  const uint32_t slot = lsu_acquire();
  const uint64_t at = issue(sl, 1, dep, 0);
  pending = Pending{k, a, value, at, slot};
  return Mem_awaiter{*this};
}

Core::Mem_awaiter Core::load(arch::addr_t a, Sl sl) {
  return mem_op(Pending::Kind::load, a, 0, 0, sl);
}
Core::Mem_awaiter Core::store(arch::addr_t a, uint32_t value, uint64_t dep,
                              Sl sl) {
  return mem_op(Pending::Kind::store, a, value, dep, sl);
}
Core::Mem_awaiter Core::amo_add(arch::addr_t a, uint32_t add, Sl sl) {
  return mem_op(Pending::Kind::amo, a, add, 0, sl);
}

void Core::Mem_awaiter::await_suspend(std::coroutine_handle<>) const noexcept {
  c.machine->schedule(c.id, c.pending.issue_t);
}

Core::Wfi_awaiter Core::wfi(Sl sl) {
  issue(sl, 1, 0, 0);  // the WFI instruction itself
  return Wfi_awaiter{*this};
}

bool Core::Wfi_awaiter::await_suspend(std::coroutine_handle<>) noexcept {
  if (c.pending_wake) {
    // A trigger arrived while we were still running: fall through.
    const uint64_t eff = std::max(c.wake_at, c.t);
    if (eff > c.t) {
      c.stall(Stall::wfi, eff - c.t);
      c.t = eff;
    }
    c.pending_wake = false;
    c.wake_at = std::numeric_limits<uint64_t>::max();
    return false;  // do not suspend
  }
  c.sleeping = true;
  c.sleep_since = c.t;
  return true;
}

void Core::csr_wake(const Wake_set& set, Sl sl) {
  const uint32_t writes = set.n_csr_writes();
  const uint64_t at = issue(sl, writes, 0, 0);
  machine->wake(set, at + (writes - 1) + cfg->wakeup_latency);
}

// ---------------------------------------------------------------------------
// Prog: symmetric transfer glue (needs Core definition)
// ---------------------------------------------------------------------------

std::coroutine_handle<> Prog::promise_type::Final_awaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  promise_type& pr = h.promise();
  if (pr.cont) {
    pr.core->active = pr.cont;
    return pr.cont;
  }
  // Root program finished.
  pr.core->finished = true;
  pr.core->active = {};
  --pr.core->machine->unfinished_;
  return std::noop_coroutine();
}

std::coroutine_handle<> Prog::Sub_awaiter::await_suspend(
    std::coroutine_handle<promise_type> parent) noexcept {
  child.promise().core = parent.promise().core;
  child.promise().cont = parent;
  child.promise().core->active = child;
  return child;
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(const arch::Cluster_config& cfg)
    : cfg_(cfg), map_(cfg_), mem_(cfg_), cores_(cfg_.n_cores()),
      buckets_(ring_size) {
  for (arch::core_id c = 0; c < cfg_.n_cores(); ++c) {
    cores_[c].id = c;
    cores_[c].cfg = &cfg_;
    cores_[c].machine = this;
    cores_[c].l0.configure(cfg_.l0_icache_instrs);
  }
}

void Machine::schedule(arch::core_id c, uint64_t at) {
  PP_CHECK(at >= now_, "event scheduled in the past");
  PP_CHECK(at - now_ < ring_size, "event beyond scheduler horizon");
  buckets_[at & (ring_size - 1)].push_back(c);
  ++pending_events_;
}

void Machine::wake(const Wake_set& set, uint64_t at) {
  // Serialize concurrent triggers at the wake-up CSR unit.
  at = std::max(at, csr_unit_free_);
  csr_unit_free_ = at + 1;
  for (arch::core_id cid : set.resolve(cfg_)) {
    Core& k = cores_[cid];
    if (k.finished) continue;
    if (k.sleeping) {
      const uint64_t eff = std::max(at, k.sleep_since + 1);
      if (eff < k.wake_at) {
        k.wake_at = eff;
        schedule(cid, eff);
      }
    } else {
      k.pending_wake = true;
      k.wake_at = std::min(k.wake_at, at);
    }
  }
}

void Machine::dispatch(Core& c) {
  if (c.finished) return;  // stale event
  if (c.pending.kind != Core::Pending::Kind::none) {
    service_mem(c);
    return;
  }
  if (c.sleeping) {
    if (c.wake_at != now_) return;  // stale wake event
    c.stall(Stall::wfi, now_ - c.sleep_since);
    c.t = now_;
    c.sleeping = false;
    c.wake_at = std::numeric_limits<uint64_t>::max();
    c.active.resume();
    return;
  }
  // Fresh start (spawn event).
  c.active.resume();
}

void Machine::service_mem(Core& c) {
  const Core::Pending p = c.pending;
  c.pending.kind = Core::Pending::Kind::none;

  const arch::bank_id bank = map_.bank_of(p.addr);
  const arch::Locality loc = cfg_.locality(c.id, bank);
  const uint32_t lat = cfg_.load_use_latency(loc);
  const uint32_t fwd = (lat - 1) / 2;  // request network hops
  const uint32_t ret = (lat - 1) / 2;  // response network hops

  const uint64_t arrive = p.issue_t + fwd;
  const uint64_t serve = std::max(arrive, mem_.bank_free(bank));
  // One access per bank per cycle; amo read-modify-write is done by an
  // adder at the bank within its cycle.
  mem_.set_bank_free(bank, serve + 1);
  const uint64_t ready = serve + 1 + ret;

  uint32_t value = 0;
  switch (p.kind) {
    case Core::Pending::Kind::load:
      value = mem_.read(p.addr);
      c.lsu_done[p.lsu_slot] = ready;
      break;
    case Core::Pending::Kind::store:
      mem_.write(p.addr, p.value);
      c.lsu_done[p.lsu_slot] = serve + ret;  // ack
      break;
    case Core::Pending::Kind::amo: {
      value = mem_.read(p.addr);
      mem_.write(p.addr, value + p.value);
      c.lsu_done[p.lsu_slot] = ready;
      break;
    }
    default:
      PP_CHECK(false, "bad pending op");
  }
  c.pending_result = Tok{ready, value};
  c.active.resume();
}

void Machine::run() {
  while (pending_events_ > 0) {
    auto& bucket = buckets_[now_ & (ring_size - 1)];
    // Dispatch may append same-cycle events; index loop handles growth.
    for (size_t i = 0; i < bucket.size(); ++i) {
      const arch::core_id cid = bucket[i];
      --pending_events_;
      dispatch(cores_[cid]);
    }
    bucket.clear();
    ++now_;
  }
  PP_CHECK(unfinished_ == 0,
           "simulation deadlock: programs still waiting with no events "
           "pending (barrier mismatch?)");
}

Kernel_report Machine::run_programs(std::string label,
                                    std::vector<Launch> launches) {
  const uint64_t t0 = now_;

  // Snapshot participating cores.
  std::vector<Core_counters> before(launches.size());
  for (size_t i = 0; i < launches.size(); ++i) {
    const Core& c = cores_[launches[i].core];
    before[i].instrs = c.instrs;
    before[i].stall = c.stalls;
  }

  for (Launch& l : launches) {
    Core& c = cores_[l.core];
    PP_CHECK(c.finished, "core already running a program");
    c.root = std::move(l.prog);
    c.root.handle().promise().core = &c;
    c.active = c.root.handle();
    c.finished = false;
    c.sleeping = false;
    c.pending_wake = false;
    c.wake_at = std::numeric_limits<uint64_t>::max();
    c.t = t0;
    ++unfinished_;
    schedule(l.core, t0);
  }

  run();

  uint64_t t_end = t0;
  for (const Launch& l : launches) {
    t_end = std::max(t_end, cores_[l.core].t);
  }
  now_ = std::max(now_, t_end);

  Kernel_report r;
  r.label = std::move(label);
  r.cycles = t_end - t0;
  r.n_cores = static_cast<uint32_t>(launches.size());
  for (size_t i = 0; i < launches.size(); ++i) {
    Core& c = cores_[launches[i].core];
    const uint64_t di = c.instrs - before[i].instrs;
    r.instrs += di;
    uint64_t attributed = di;
    for (size_t k = 0; k < n_stall_kinds; ++k) {
      const uint64_t dk = c.stalls[k] - before[i].stall[k];
      r.stall[k] += dk;
      attributed += dk;
    }
    // A core that finished before t_end idles in WFI until the next join.
    const uint64_t window = r.cycles;
    PP_CHECK(attributed <= window, "cycle attribution exceeds window");
    r.stall[static_cast<size_t>(Stall::wfi)] += window - attributed;
    // Release the finished program's frame.
    c.root = Prog{};
  }
  return r;
}

}  // namespace pp::sim
