// Event-driven, cycle-approximate many-core machine.
//
// Model (paper §III):
//  * in-order single-issue Snitch-like cores, 1 instruction/cycle peak;
//  * scoreboarded result tokens: consuming an unready token stalls (RAW);
//  * an 8-deep LSU: issuing into a full queue stalls (LSU);
//  * banked L1, one access/bank/cycle, load-to-use 1/3/5 cycles for
//    tile/group/remote banks; conflicting accesses serialize at the bank;
//  * a small per-core L0 I$ refilled from a shared L1 I$ (instruction stalls);
//  * a non-pipelined divider and pipelined multiplier (ext-unit/RAW stalls);
//  * WFI sleep plus wake-up CSR triggers at cluster/group/tile/core
//    granularity (WFI stalls).
//
// Cores are C++20 coroutines.  A core runs register-local work without
// suspending (its local clock runs ahead) and suspends exactly at memory
// operations and WFI, so every globally-visible event is processed in global
// (cycle, insertion) order: the simulation is deterministic.
//
// Fast path (DETERMINISM.md §5): the scheduler batches whole runs of
// same-core pipelined ops into one virtual-clock advance (compute ops are
// plain inline arithmetic on the core-local clock - they never enter the
// event loop), skips the global clock straight to the next scheduled event
// over spans where every core is either computing ahead or asleep in WFI
// (an occupancy bitmap over the ring buckets), arbitrates banks through
// per-bank epoch counters owned by the Machine, and resolves addresses
// through the memoized arch::Route_cache.  None of this changes a single
// reported cycle: events still fire in the same (cycle, insertion) order,
// and the pre-batching scheduler survives as the reference loop
// (SIM_REFERENCE_LOOP=1 or set_reference_loop(true)), which
// tests/test_sim_differential.cpp and tests/test_sim_fuzz.cpp hold
// bit-identical to the fast path.
#ifndef PUSCHPOOL_SIM_MACHINE_H
#define PUSCHPOOL_SIM_MACHINE_H

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <source_location>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/route_cache.h"
#include "arch/topology.h"
#include "common/check.h"
#include "sim/icache.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "sim/wake.h"

namespace pp::sim {

class Machine;

// Result token of a load/amo: the functional value plus the cycle at which
// a dependent instruction can issue without stalling.
struct Tok {
  uint64_t ready = 0;
  uint32_t value = 0;
};

class Core {
 public:
  using Sl = std::source_location;

  // ---- identity ----
  arch::core_id id = 0;
  const arch::Cluster_config* cfg = nullptr;
  Machine* machine = nullptr;

  // ---- compute issue (no suspension; local clock runs ahead) ----

  // n single-cycle integer ops (address arithmetic, compares, branches).
  void alu(uint32_t n = 1, Sl sl = Sl::current()) { issue(sl, n, 0, 0); }

  // n single-cycle ops that consume a token (e.g. branch on a loaded value).
  void alu_use(uint32_t n, uint64_t dep, Sl sl = Sl::current()) {
    issue(sl, n, dep, 0);
  }

  // Generic pipelined op: n_instr instructions, result after `result_lat`.
  uint64_t op(uint32_t n_instr, uint64_t dep_a = 0, uint64_t dep_b = 0,
              uint32_t result_lat = 1, Sl sl = Sl::current()) {
    const uint64_t at = issue(sl, n_instr, dep_a, dep_b);
    return at + (n_instr - 1) + result_lat;
  }

  // Complex Q15 MAC: one SIMD complex multiply-accumulate instruction
  // (PULP Xpulpimg-style pv.cplxmul) through the pipelined multiplier.
  uint64_t cmac(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(1, dep_a, dep_b, cfg->mul_latency, sl);
  }
  // Complex Q15 multiply with rounding to a packed 16-bit result: the
  // complex multiply plus a round/normalize op.
  uint64_t cmul(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(2, dep_a, dep_b, cfg->mul_latency, sl);
  }
  // Packed complex add/sub/shift: one SIMD instruction.
  uint64_t cadd(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(1, dep_a, dep_b, 1, sl);
  }
  // Scalar multiply.
  uint64_t mul(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(1, dep_a, dep_b, cfg->mul_latency, sl);
  }
  // Scalar divide on the non-pipelined external unit.
  uint64_t div(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current());

  // Explicit RAW wait without issuing an instruction (modelled as part of the
  // consuming instruction in hardware; use only when no consumer op exists).
  void wait_for(uint64_t dep) {
    if (dep > t) {
      stall(Stall::raw, dep - t);
      t = dep;
    }
  }

  // ---- memory operations (suspension points) ----

  struct Mem_awaiter {
    Core& c;
    // True (no suspension) when the machine can service this access
    // synchronously: with no scheduled event anywhere, the event loop would
    // next process exactly this access, so servicing it inline is the same
    // (cycle, insertion) order without a coroutine round trip.
    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<>) const noexcept;
    Tok await_resume() const noexcept { return c.pending_result; }
  };

  Mem_awaiter load(arch::addr_t a, Sl sl = Sl::current()) {
    return mem_op(Pending::Kind::load, a, 0, 0, sl);
  }
  Mem_awaiter store(arch::addr_t a, uint32_t value, uint64_t dep = 0,
                    Sl sl = Sl::current()) {
    return mem_op(Pending::Kind::store, a, value, dep, sl);
  }
  Mem_awaiter amo_add(arch::addr_t a, uint32_t add, Sl sl = Sl::current()) {
    return mem_op(Pending::Kind::amo, a, add, 0, sl);
  }

  // ---- synchronization ----

  struct Wfi_awaiter {
    Core& c;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<>) noexcept;
    void await_resume() const noexcept {}
  };

  // Sleep until a wake-up trigger (one WFI instruction, then idle cycles are
  // counted as WFI stalls).
  Wfi_awaiter wfi(Sl sl = Sl::current()) {
    issue(sl, 1, 0, 0);  // the WFI instruction itself
    return Wfi_awaiter{*this};
  }

  // Write the wake-up CSR(s) asserting `set`; one instruction per CSR write.
  void csr_wake(const Wake_set& set, Sl sl = Sl::current());

  // ---- state (managed by Machine; kernels only read `t`) ----
  uint64_t t = 0;  // local clock (>= machine time at suspension points)
  uint64_t instrs = 0;
  std::array<uint64_t, n_stall_kinds> stalls{};

  // LSU
  static constexpr uint32_t max_lsu_depth = 16;
  std::array<uint64_t, max_lsu_depth> lsu_done{};

  // divider
  uint64_t div_free = 0;

  // instruction fetch
  L0_icache l0;

  // memoized latency row of this core's tile (arch::Route_cache)
  const uint8_t* lat_row = nullptr;

  // coroutine / scheduling state
  std::coroutine_handle<> active{};
  Prog root;
  bool finished = true;
  bool sleeping = false;
  bool pending_wake = false;
  uint64_t sleep_since = 0;
  uint64_t wake_at = std::numeric_limits<uint64_t>::max();

  struct Pending {
    enum class Kind : uint8_t { none, load, store, amo } kind = Kind::none;
    arch::addr_t addr = 0;
    uint32_t value = 0;
    uint64_t issue_t = 0;
    uint32_t lsu_slot = 0;
    // Route resolution (bank + load-to-use latency), computed at issue time:
    // a pure function of the address and the issuing core's tile, so moving
    // it out of service keeps cycles identical while letting the fast path
    // consult the bank before deciding how to service the access.
    arch::bank_id bank = 0;
    uint32_t lat = 0;
  };
  Pending pending;
  Tok pending_result;

  void stall(Stall k, uint64_t n) { stalls[static_cast<size_t>(k)] += n; }

 private:
  friend class Machine;

  // Issue n_instr instructions; returns the cycle of the first one.
  // Inline: a run of compute issues between two suspension points compiles
  // to straight-line arithmetic on `t` - the fast path's op batching.
  uint64_t issue(const Sl& sl, uint32_t n_instr, uint64_t dep_a,
                 uint64_t dep_b);

  // Reserve an LSU slot, stalling if the queue is full; returns slot index.
  uint32_t lsu_acquire() {
    const uint32_t depth = std::min(cfg->lsu_depth, max_lsu_depth);
    uint32_t in_flight = 0;
    uint32_t free_slot = depth;
    uint64_t earliest = std::numeric_limits<uint64_t>::max();
    uint32_t earliest_slot = 0;
    for (uint32_t i = 0; i < depth; ++i) {
      if (lsu_done[i] > t) {
        ++in_flight;
        if (lsu_done[i] < earliest) {
          earliest = lsu_done[i];
          earliest_slot = i;
        }
      } else {
        free_slot = i;
      }
    }
    if (in_flight == depth) {
      stall(Stall::lsu, earliest - t);
      t = earliest;
      return earliest_slot;
    }
    return free_slot;
  }

  Mem_awaiter mem_op(Pending::Kind k, arch::addr_t a, uint32_t value,
                     uint64_t dep, const Sl& sl) {
    PP_CHECK(pending.kind == Pending::Kind::none,
             "core issued a memory op while one is pending");
    const uint32_t slot = lsu_acquire();
    const uint64_t at = issue(sl, 1, dep, 0);
    pending = Pending{k, a, value, at, slot};
    resolve_route();
    return Mem_awaiter{*this};
  }

  // Fill pending.bank / pending.lat from pending.addr (defined after
  // Machine: needs the route cache / address map).
  void resolve_route();
};

class Machine {
 public:
  Machine(const arch::Cluster_config& cfg);

  const arch::Cluster_config& config() const { return cfg_; }
  const arch::Address_map& map() const { return map_; }
  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }
  Core& core(arch::core_id c) { return cores_[c]; }
  uint64_t now() const { return now_; }

  // Pre-batching reference scheduler (the differential suite's anchor):
  // tick the global clock cycle by cycle and resolve addresses through the
  // general arch math instead of the Route_cache.  Selected per machine, or
  // process-wide via SIM_REFERENCE_LOOP=1 in the environment.
  bool reference_loop() const { return reference_loop_; }
  void set_reference_loop(bool on) {
    reference_loop_ = on;
    fast_route_ = route_.fast() && !on;
  }
  // The process-wide SIM_REFERENCE_LOOP selection new machines start with.
  static bool env_reference_loop();

  // ---- program execution ----
  struct Launch {
    arch::core_id core;
    Prog prog;
  };

  // Run the given programs to completion (all launched at the same cycle)
  // and return the aggregated kernel report.
  Kernel_report run_programs(std::string label, std::vector<Launch> launches);

  // ---- services used by Core (public for awaiters) ----
  void schedule(arch::core_id c, uint64_t at) {
    PP_CHECK(at >= now_, "event scheduled in the past");
    ++pending_events_;
    if (at - now_ >= ring_size) [[unlikely]] {
      // Beyond the ring horizon (a core far ahead of the global clock via
      // exclusive-bank runs): park it in the far queue until now_ catches up.
      far_.push_back({at, c});
      far_min_ = std::min(far_min_, at);
      return;
    }
    // Order exactness: a parked event at a cycle <= `at` must enter its
    // bucket before this one (same-cycle events drain in insertion order).
    if (far_min_ <= at) [[unlikely]] flush_far();
    const size_t slot = at & (ring_size - 1);
    buckets_[slot].push_back(c);
    occ_[slot >> 6] |= uint64_t{1} << (slot & 63);
    earliest_pending_ = std::min(earliest_pending_, at);
    ++ring_events_;
  }
  void wake(const Wake_set& set, uint64_t at);
  Site_registry& sites() { return sites_; }

  // ---- bank ownership (fast-path batching contract) ----
  // Declares that, for the next launch, core c is the only core that touches
  // bank b *while it is still executing* (folded per-core layouts whose sole
  // shared structure is one closing barrier).  The fast path then services
  // the owner's accesses inline in program order - exact, because up to the
  // owner's WFI the per-bank service order *is* the owner's program order,
  // and the non-owner accesses that remain (the barrier arrivals, plus the
  // last arrival's counter reset) are denied the shortcut, parked at their
  // issue cycles during the spawn bucket's drain, and therefore serviced in
  // launch order - the same order the reference scheduler produces for
  // cores with identical per-core timing.  Corollary: every owner must reach
  // its barrier op without suspending (own its whole data footprint,
  // counter bank included for the barrier master), and the launch vector
  // must list cores in ascending order.  The machine checks the contract on
  // every access (a foreign access while the owner still runs is a hard
  // error: it could change reported cycles) and clears all declarations
  // when the launch returns.  The reference loop keeps servicing through
  // the event queue, so the differential suite checks the declarations'
  // cycle-neutrality.
  void set_bank_owner(arch::bank_id b, arch::core_id c) {
    bank_owner_[b] = static_cast<int32_t>(c);
  }
  void reset_bank_owners() {
    std::fill(bank_owner_.begin(), bank_owner_.end(), -1);
  }

  // Service the issuing core's pending access immediately when that is
  // provably order-exact:
  //  * the access hits a bank the core owns exclusively (see
  //    set_bank_owner): per-bank service order is the owner's program order
  //    regardless of every other pending event, so the core may run
  //    arbitrarily far ahead of the global clock (which must NOT advance);
  //  * or the event loop would process exactly this access next - no event
  //    scheduled anywhere (single-active-core phases: serial baselines,
  //    kernel prologues, barrier stragglers), or every scheduled event sits
  //    strictly after the access's issue cycle (earliest_pending_ is a lower
  //    bound, so a stale value only denies the shortcut, never grants it
  //    wrongly); then now_ advances to the issue cycle as the loop would
  //    have.
  // Returns false (caller must suspend) otherwise, and always under the
  // reference loop.
  bool try_service_sync(Core& c) {
    if (reference_loop_) return false;
    if (bank_owner_[c.pending.bank] == static_cast<int32_t>(c.id)) {
      service_mem(c);
      return true;
    }
    if (pending_events_ == 0) {
      earliest_pending_ = std::numeric_limits<uint64_t>::max();
    } else if (c.pending.issue_t >= earliest_pending_) {
      return false;
    }
    now_ = std::max(now_, c.pending.issue_t);
    service_mem(c);
    return true;
  }

 private:
  void run();
  void run_reference();
  void drain_bucket();  // dispatch one cycle's bucket, including appends
  void dispatch(Core& c);
  void service_mem(Core& c);
  // Advance now_ to the next cycle holding a scheduled event (the WFI /
  // compute-ahead skip); requires pending_events_ > 0.
  void skip_to_next_event();
  // Move far-queue events whose cycle fits the ring into their buckets.
  void flush_far();

  arch::Cluster_config cfg_;
  arch::Address_map map_;
  arch::Route_cache route_;
  Memory mem_;
  std::vector<Core> cores_;
  Site_registry sites_;

  // Per-bank epoch counters: the cycle after each bank's last arbitration
  // win ("one access per bank per cycle" as a single flat table).
  std::vector<uint64_t> bank_epoch_;
  // Exclusive owner of each bank for the current launch (-1 = shared).
  std::vector<int32_t> bank_owner_;

  uint64_t now_ = 0;
  uint64_t pending_events_ = 0;  // ring_events_ + far_.size()
  uint64_t ring_events_ = 0;
  // Lower bound on the earliest scheduled event's cycle (exact after every
  // skip_to_next_event; schedule() keeps it a bound in between).  Gates the
  // synchronous-service shortcut.
  uint64_t earliest_pending_ = std::numeric_limits<uint64_t>::max();
  uint32_t unfinished_ = 0;
  // The cluster's wake-up CSR unit accepts one trigger per cycle: gangs
  // finishing barriers simultaneously contend here (the paper's observation
  // that larger clusters see more synchronization overhead).
  uint64_t csr_unit_free_ = 0;

  bool reference_loop_ = false;
  bool fast_route_ = false;  // route_.fast() && !reference_loop_

  static constexpr size_t ring_bits = 15;
  static constexpr size_t ring_size = size_t{1} << ring_bits;  // 32768 cycles
  static constexpr size_t occ_words = ring_size / 64;
  std::vector<std::vector<arch::core_id>> buckets_;
  // Occupancy bitmap over the ring buckets: bit b set iff buckets_[b] holds
  // at least one event.  Lets run() jump over empty cycles in O(words).
  std::array<uint64_t, occ_words> occ_{};
  // Events scheduled beyond the ring horizon, waiting for now_ to catch up.
  std::vector<std::pair<uint64_t, arch::core_id>> far_;
  uint64_t far_min_ = std::numeric_limits<uint64_t>::max();

  friend class Core;
  friend struct Prog::promise_type;
};

// ---- Core fast-path definitions (inline into kernel translation units) ----

inline uint64_t Core::issue(const Sl& sl, uint32_t n_instr, uint64_t dep_a,
                            uint64_t dep_b) {
  // Instruction fetch: refill missing L0 lines from the shared L1 I$.
  const uint32_t first_slot = machine->sites().lookup(sl, n_instr);
  const uint32_t misses = l0.touch(first_slot, n_instr);
  if (misses != 0) {
    const uint64_t pen =
        static_cast<uint64_t>(misses) * cfg->icache_refill_cycles;
    stall(Stall::icache, pen);
    t += pen;
  }
  // RAW: wait for operands.
  const uint64_t dep = std::max(dep_a, dep_b);
  if (dep > t) {
    stall(Stall::raw, dep - t);
    t = dep;
  }
  const uint64_t at = t;
  instrs += n_instr;
  t += n_instr;
  return at;
}

inline uint64_t Core::div(uint64_t dep_a, uint64_t dep_b, Sl sl) {
  // The divider is not pipelined: a second divide stalls until it frees up.
  const uint64_t dep = std::max(dep_a, dep_b);
  if (dep > t) {
    stall(Stall::raw, dep - t);
    t = dep;
  }
  if (div_free > t) {
    stall(Stall::extunit, div_free - t);
    t = div_free;
  }
  const uint64_t at = issue(sl, 1, 0, 0);
  div_free = at + cfg->div_latency;
  return at + cfg->div_latency;
}

inline void Core::resolve_route() {
  Machine& m = *machine;
  if (m.fast_route_) {
    pending.bank = m.route_.bank_of(pending.addr);
    pending.lat = m.route_.latency(lat_row, pending.bank);
  } else {
    pending.bank = m.map_.bank_of(pending.addr);
    pending.lat = m.cfg_.load_use_latency(m.cfg_.locality(id, pending.bank));
  }
}

inline bool Core::Mem_awaiter::await_ready() const noexcept {
  return c.machine->try_service_sync(c);
}

inline void Core::Mem_awaiter::await_suspend(
    std::coroutine_handle<>) const noexcept {
  c.machine->schedule(c.id, c.pending.issue_t);
}

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_MACHINE_H
