// Event-driven, cycle-approximate many-core machine.
//
// Model (paper §III):
//  * in-order single-issue Snitch-like cores, 1 instruction/cycle peak;
//  * scoreboarded result tokens: consuming an unready token stalls (RAW);
//  * an 8-deep LSU: issuing into a full queue stalls (LSU);
//  * banked L1, one access/bank/cycle, load-to-use 1/3/5 cycles for
//    tile/group/remote banks; conflicting accesses serialize at the bank;
//  * a small per-core L0 I$ refilled from a shared L1 I$ (instruction stalls);
//  * a non-pipelined divider and pipelined multiplier (ext-unit/RAW stalls);
//  * WFI sleep plus wake-up CSR triggers at cluster/group/tile/core
//    granularity (WFI stalls).
//
// Cores are C++20 coroutines.  A core runs register-local work without
// suspending (its local clock runs ahead) and suspends exactly at memory
// operations and WFI, so every globally-visible event is processed in global
// (cycle, insertion) order: the simulation is deterministic.
#ifndef PUSCHPOOL_SIM_MACHINE_H
#define PUSCHPOOL_SIM_MACHINE_H

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <source_location>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/topology.h"
#include "common/check.h"
#include "sim/icache.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "sim/wake.h"

namespace pp::sim {

class Machine;

// Result token of a load/amo: the functional value plus the cycle at which
// a dependent instruction can issue without stalling.
struct Tok {
  uint64_t ready = 0;
  uint32_t value = 0;
};

class Core {
 public:
  using Sl = std::source_location;

  // ---- identity ----
  arch::core_id id = 0;
  const arch::Cluster_config* cfg = nullptr;
  Machine* machine = nullptr;

  // ---- compute issue (no suspension; local clock runs ahead) ----

  // n single-cycle integer ops (address arithmetic, compares, branches).
  void alu(uint32_t n = 1, Sl sl = Sl::current()) { issue(sl, n, 0, 0); }

  // n single-cycle ops that consume a token (e.g. branch on a loaded value).
  void alu_use(uint32_t n, uint64_t dep, Sl sl = Sl::current()) {
    issue(sl, n, dep, 0);
  }

  // Generic pipelined op: n_instr instructions, result after `result_lat`.
  uint64_t op(uint32_t n_instr, uint64_t dep_a = 0, uint64_t dep_b = 0,
              uint32_t result_lat = 1, Sl sl = Sl::current()) {
    const uint64_t at = issue(sl, n_instr, dep_a, dep_b);
    return at + (n_instr - 1) + result_lat;
  }

  // Complex Q15 MAC: one SIMD complex multiply-accumulate instruction
  // (PULP Xpulpimg-style pv.cplxmul) through the pipelined multiplier.
  uint64_t cmac(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(1, dep_a, dep_b, cfg->mul_latency, sl);
  }
  // Complex Q15 multiply with rounding to a packed 16-bit result: the
  // complex multiply plus a round/normalize op.
  uint64_t cmul(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(2, dep_a, dep_b, cfg->mul_latency, sl);
  }
  // Packed complex add/sub/shift: one SIMD instruction.
  uint64_t cadd(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(1, dep_a, dep_b, 1, sl);
  }
  // Scalar multiply.
  uint64_t mul(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current()) {
    return op(1, dep_a, dep_b, cfg->mul_latency, sl);
  }
  // Scalar divide on the non-pipelined external unit.
  uint64_t div(uint64_t dep_a = 0, uint64_t dep_b = 0, Sl sl = Sl::current());

  // Explicit RAW wait without issuing an instruction (modelled as part of the
  // consuming instruction in hardware; use only when no consumer op exists).
  void wait_for(uint64_t dep) {
    if (dep > t) {
      stall(Stall::raw, dep - t);
      t = dep;
    }
  }

  // ---- memory operations (suspension points) ----

  struct Mem_awaiter {
    Core& c;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept;
    Tok await_resume() const noexcept { return c.pending_result; }
  };

  Mem_awaiter load(arch::addr_t a, Sl sl = Sl::current());
  Mem_awaiter store(arch::addr_t a, uint32_t value, uint64_t dep = 0,
                    Sl sl = Sl::current());
  Mem_awaiter amo_add(arch::addr_t a, uint32_t add, Sl sl = Sl::current());

  // ---- synchronization ----

  struct Wfi_awaiter {
    Core& c;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<>) noexcept;
    void await_resume() const noexcept {}
  };

  // Sleep until a wake-up trigger (one WFI instruction, then idle cycles are
  // counted as WFI stalls).
  Wfi_awaiter wfi(Sl sl = Sl::current());

  // Write the wake-up CSR(s) asserting `set`; one instruction per CSR write.
  void csr_wake(const Wake_set& set, Sl sl = Sl::current());

  // ---- state (managed by Machine; kernels only read `t`) ----
  uint64_t t = 0;  // local clock (>= machine time at suspension points)
  uint64_t instrs = 0;
  std::array<uint64_t, n_stall_kinds> stalls{};

  // LSU
  static constexpr uint32_t max_lsu_depth = 16;
  std::array<uint64_t, max_lsu_depth> lsu_done{};

  // divider
  uint64_t div_free = 0;

  // instruction fetch
  L0_icache l0;

  // coroutine / scheduling state
  std::coroutine_handle<> active{};
  Prog root;
  bool finished = true;
  bool sleeping = false;
  bool pending_wake = false;
  uint64_t sleep_since = 0;
  uint64_t wake_at = std::numeric_limits<uint64_t>::max();

  struct Pending {
    enum class Kind : uint8_t { none, load, store, amo } kind = Kind::none;
    arch::addr_t addr = 0;
    uint32_t value = 0;
    uint64_t issue_t = 0;
    uint32_t lsu_slot = 0;
  };
  Pending pending;
  Tok pending_result;

  void stall(Stall k, uint64_t n) { stalls[static_cast<size_t>(k)] += n; }

 private:
  friend class Machine;

  // Issue n_instr instructions; returns the cycle of the first one.
  uint64_t issue(const Sl& sl, uint32_t n_instr, uint64_t dep_a, uint64_t dep_b);

  // Reserve an LSU slot, stalling if the queue is full; returns slot index.
  uint32_t lsu_acquire();

  Mem_awaiter mem_op(Pending::Kind k, arch::addr_t a, uint32_t value,
                     uint64_t dep, const Sl& sl);
};

class Machine {
 public:
  Machine(const arch::Cluster_config& cfg);

  const arch::Cluster_config& config() const { return cfg_; }
  const arch::Address_map& map() const { return map_; }
  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }
  Core& core(arch::core_id c) { return cores_[c]; }
  uint64_t now() const { return now_; }

  // ---- program execution ----
  struct Launch {
    arch::core_id core;
    Prog prog;
  };

  // Run the given programs to completion (all launched at the same cycle)
  // and return the aggregated kernel report.
  Kernel_report run_programs(std::string label, std::vector<Launch> launches);

  // ---- services used by Core (public for awaiters) ----
  void schedule(arch::core_id c, uint64_t at);
  void wake(const Wake_set& set, uint64_t at);
  Site_registry& sites() { return sites_; }

 private:
  void run();
  void dispatch(Core& c);
  void service_mem(Core& c);

  arch::Cluster_config cfg_;
  arch::Address_map map_;
  Memory mem_;
  std::vector<Core> cores_;
  Site_registry sites_;

  uint64_t now_ = 0;
  uint64_t pending_events_ = 0;
  uint32_t unfinished_ = 0;
  // The cluster's wake-up CSR unit accepts one trigger per cycle: gangs
  // finishing barriers simultaneously contend here (the paper's observation
  // that larger clusters see more synchronization overhead).
  uint64_t csr_unit_free_ = 0;

  static constexpr size_t ring_bits = 15;
  static constexpr size_t ring_size = size_t{1} << ring_bits;  // 32768 cycles
  std::vector<std::vector<arch::core_id>> buckets_;

  friend class Core;
  friend struct Prog::promise_type;
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_MACHINE_H
