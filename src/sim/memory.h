// Banked L1 data memory: functional word storage plus per-bank availability
// used by the Machine for conflict arbitration (one access per bank per
// cycle, paper §V).
#ifndef PUSCHPOOL_SIM_MEMORY_H
#define PUSCHPOOL_SIM_MEMORY_H

#include <cstdint>
#include <vector>

#include "arch/address_map.h"
#include "arch/topology.h"
#include "common/check.h"

namespace pp::sim {

class Memory {
 public:
  explicit Memory(const arch::Cluster_config& cfg)
      : words_(cfg.l1_words(), 0u), bank_free_(cfg.n_banks(), 0u) {}

  uint32_t read(arch::addr_t a) const {
    PP_CHECK(a < words_.size(), "L1 read out of range");
    return words_[a];
  }
  void write(arch::addr_t a, uint32_t v) {
    PP_CHECK(a < words_.size(), "L1 write out of range");
    words_[a] = v;
  }

  // Host-side accessors for test/bench setup and checking (no timing).
  uint32_t peek(arch::addr_t a) const { return read(a); }
  void poke(arch::addr_t a, uint32_t v) { write(a, v); }

  uint64_t bank_free(arch::bank_id b) const { return bank_free_[b]; }
  void set_bank_free(arch::bank_id b, uint64_t t) { bank_free_[b] = t; }

  size_t n_words() const { return words_.size(); }

 private:
  std::vector<uint32_t> words_;
  std::vector<uint64_t> bank_free_;
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_MEMORY_H
