// Banked L1 data memory: the functional word storage.  Conflict arbitration
// ("one access per bank per cycle", paper §V) lives with the Machine as
// per-bank epoch counters - timing state and functional state have separate
// owners.
#ifndef PUSCHPOOL_SIM_MEMORY_H
#define PUSCHPOOL_SIM_MEMORY_H

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "arch/address_map.h"
#include "arch/topology.h"
#include "common/check.h"

namespace pp::sim {

class Memory {
 public:
  // calloc instead of a value-initialized vector: a TeraPool L1 is 16 MiB,
  // and the OS hands out lazily-mapped zero pages where a vector would
  // memset the whole array up front - measurable when a roll-up builds one
  // Machine per stage.
  explicit Memory(const arch::Cluster_config& cfg)
      : n_words_(cfg.l1_words()),
        words_(static_cast<uint32_t*>(std::calloc(n_words_, 4)), &std::free) {
    PP_CHECK(words_ != nullptr, "L1 allocation failed");
  }

  uint32_t read(arch::addr_t a) const {
    PP_CHECK(a < n_words_, "L1 read out of range");
    return words_[a];
  }
  void write(arch::addr_t a, uint32_t v) {
    PP_CHECK(a < n_words_, "L1 write out of range");
    words_[a] = v;
  }

  // Host-side accessors for test/bench setup and checking (no timing).
  uint32_t peek(arch::addr_t a) const { return read(a); }
  void poke(arch::addr_t a, uint32_t v) { write(a, v); }

  size_t n_words() const { return n_words_; }

 private:
  size_t n_words_;
  std::unique_ptr<uint32_t[], decltype(&std::free)> words_;
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_MEMORY_H
