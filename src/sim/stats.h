// Cycle-attribution statistics.
//
// Every cycle of every participating core is attributed to exactly one
// bucket, mirroring the breakdown of the paper's Fig. 8:
//   instr   - a useful instruction issued
//   raw     - read-after-write stall (waiting on mul/div/LSU results)
//   lsu     - load/store unit full (back-pressure, includes bank conflicts)
//   icache  - instruction-fetch stall (L0 refill from the shared L1 I$)
//   extunit - non-pipelined external unit (divider) busy
//   wfi     - sleeping in wait-for-interrupt (synchronization idle time)
#ifndef PUSCHPOOL_SIM_STATS_H
#define PUSCHPOOL_SIM_STATS_H

#include <array>
#include <cstdint>
#include <string>

namespace pp::sim {

enum class Stall : uint8_t { raw = 0, lsu, icache, extunit, wfi, n_kinds };

inline constexpr size_t n_stall_kinds = static_cast<size_t>(Stall::n_kinds);

inline const char* stall_name(Stall s) {
  switch (s) {
    case Stall::raw: return "raw";
    case Stall::lsu: return "lsu";
    case Stall::icache: return "instr$";
    case Stall::extunit: return "extunit";
    case Stall::wfi: return "wfi";
    default: return "?";
  }
}

struct Core_counters {
  uint64_t instrs = 0;
  std::array<uint64_t, n_stall_kinds> stall{};
};

// Aggregated result of running one kernel (a set of programs) to completion.
struct Kernel_report {
  std::string label;
  uint64_t cycles = 0;   // wall-clock cycles of the kernel region
  uint32_t n_cores = 0;  // participating cores
  uint64_t instrs = 0;   // total instructions over all participants
  std::array<uint64_t, n_stall_kinds> stall{};

  // Core-cycles available in the region.
  uint64_t core_cycles() const {
    return cycles * static_cast<uint64_t>(n_cores);
  }
  // Average per-core IPC == utilization (paper's metric).
  double ipc() const {
    return core_cycles() ? static_cast<double>(instrs) / static_cast<double>(core_cycles()) : 0.0;
  }
  double frac_instr() const {
    return core_cycles() ? static_cast<double>(instrs) / static_cast<double>(core_cycles()) : 0.0;
  }
  double frac(Stall k) const {
    return core_cycles() ? static_cast<double>(stall[static_cast<size_t>(k)]) /
                               static_cast<double>(core_cycles())
                         : 0.0;
  }
  // Memory-related stall fraction (paper claims < 10%).
  double frac_memory_stalls() const { return frac(Stall::lsu) + frac(Stall::raw); }
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_STATS_H
