// Coroutine program type for simulated cores.
//
// Each core runs one `Prog` coroutine; kernel code co_awaits memory
// operations (suspension points arbitrated by the Machine in global cycle
// order) and may co_await sub-programs, which run on the same core with
// symmetric transfer (no per-call scheduling cost).
#ifndef PUSCHPOOL_SIM_TASK_H
#define PUSCHPOOL_SIM_TASK_H

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>

namespace pp::sim {

class Core;

// Thread-local size-class recycler for coroutine frames.  Kernels co_await
// sub-programs inside their innermost loops (a Cholesky factorization
// spawns O(n^3) of them), so frames churn through the allocator at the
// simulator's hottest rate; recycling hands the same just-freed, cache-hot
// block back to the next spawn.  Purely a host-side allocation detail:
// simulated cycles never depend on frame addresses.  Thread-local free
// lists keep sharded runs race-free; a block freed on another thread than
// its allocator simply migrates pools.
class Frame_pool {
 public:
  static void* allocate(std::size_t n) {
    const std::size_t cls = (n + granule - 1) / granule;
    if (cls == 0 || cls > n_classes) return ::operator new(n);
    Pool& p = pool();
    void*& head = p.bins[cls - 1];
    if (head != nullptr) {
      void* block = head;
      head = *static_cast<void**>(block);
      return block;
    }
    return ::operator new(cls * granule);
  }

  static void release(void* block, std::size_t n) noexcept {
    const std::size_t cls = (n + granule - 1) / granule;
    if (cls == 0 || cls > n_classes) {
      ::operator delete(block);
      return;
    }
    Pool& p = pool();
    *static_cast<void**>(block) = p.bins[cls - 1];
    p.bins[cls - 1] = block;
  }

 private:
  static constexpr std::size_t granule = 64;   // one cache line
  static constexpr std::size_t n_classes = 256;  // recycle up to 16 KiB

  struct Pool {
    void* bins[n_classes] = {};
    ~Pool() {
      for (void* head : bins) {
        while (head != nullptr) {
          void* next = *static_cast<void**>(head);
          ::operator delete(head);
          head = next;
        }
      }
    }
  };

  static Pool& pool() {
    thread_local Pool p;
    return p;
  }
};

class Prog {
 public:
  struct promise_type {
    Core* core = nullptr;
    std::coroutine_handle<> cont;

    static void* operator new(std::size_t n) {
      return Frame_pool::allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      Frame_pool::release(p, n);
    }

    Prog get_return_object() {
      return Prog{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct Final_awaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    Final_awaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  Prog() = default;
  explicit Prog(std::coroutine_handle<promise_type> h) : h_(h) {}
  Prog(Prog&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Prog& operator=(Prog&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Prog(const Prog&) = delete;
  Prog& operator=(const Prog&) = delete;
  ~Prog() { destroy(); }

  std::coroutine_handle<promise_type> handle() const { return h_; }
  bool valid() const { return static_cast<bool>(h_); }

  // Awaiting a Prog runs it as a sub-program of the awaiting core.
  struct Sub_awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<promise_type> parent) noexcept;
    void await_resume() const noexcept {}
  };
  Sub_awaiter operator co_await() const noexcept { return Sub_awaiter{h_}; }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_TASK_H
