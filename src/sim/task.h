// Coroutine program type for simulated cores.
//
// Each core runs one `Prog` coroutine; kernel code co_awaits memory
// operations (suspension points arbitrated by the Machine in global cycle
// order) and may co_await sub-programs, which run on the same core with
// symmetric transfer (no per-call scheduling cost).
#ifndef PUSCHPOOL_SIM_TASK_H
#define PUSCHPOOL_SIM_TASK_H

#include <coroutine>
#include <exception>
#include <utility>

namespace pp::sim {

class Core;

class Prog {
 public:
  struct promise_type {
    Core* core = nullptr;
    std::coroutine_handle<> cont;

    Prog get_return_object() {
      return Prog{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct Final_awaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    Final_awaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  Prog() = default;
  explicit Prog(std::coroutine_handle<promise_type> h) : h_(h) {}
  Prog(Prog&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Prog& operator=(Prog&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Prog(const Prog&) = delete;
  Prog& operator=(const Prog&) = delete;
  ~Prog() { destroy(); }

  std::coroutine_handle<promise_type> handle() const { return h_; }
  bool valid() const { return static_cast<bool>(h_); }

  // Awaiting a Prog runs it as a sub-program of the awaiting core.
  struct Sub_awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<promise_type> parent) noexcept;
    void await_resume() const noexcept {}
  };
  Sub_awaiter operator co_await() const noexcept { return Sub_awaiter{h_}; }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_TASK_H
