#include "sim/wake.h"

#include "common/check.h"

namespace pp::sim {

Wake_set Wake_set::make(const arch::Cluster_config& cfg,
                        std::span<const arch::core_id> sorted_cores) {
  Wake_set w;
  if (sorted_cores.size() == cfg.n_cores()) {
    w.kind = Kind::all;
    return w;
  }

  // Count members per tile and per group.
  std::vector<uint32_t> per_tile(cfg.n_tiles(), 0);
  std::vector<uint32_t> per_group(cfg.n_groups, 0);
  for (arch::core_id c : sorted_cores) {
    PP_CHECK(c < cfg.n_cores(), "wake set core out of range");
    ++per_tile[cfg.tile_of_core(c)];
    ++per_group[cfg.group_of_core(c)];
  }

  const uint32_t cores_per_group = cfg.tiles_per_group * cfg.cores_per_tile;
  bool group_aligned = true;
  for (uint32_t g = 0; g < cfg.n_groups; ++g) {
    if (per_group[g] != 0 && per_group[g] != cores_per_group) {
      group_aligned = false;
      break;
    }
  }
  if (group_aligned) {
    w.kind = Kind::groups;
    for (uint32_t g = 0; g < cfg.n_groups; ++g) {
      if (per_group[g] != 0) w.group_mask |= uint64_t{1} << g;
    }
    return w;
  }

  bool tile_aligned = true;
  for (uint32_t tl = 0; tl < cfg.n_tiles(); ++tl) {
    if (per_tile[tl] != 0 && per_tile[tl] != cfg.cores_per_tile) {
      tile_aligned = false;
      break;
    }
  }
  if (tile_aligned) {
    w.kind = Kind::tiles;
    for (uint32_t g = 0; g < cfg.n_groups; ++g) {
      uint32_t mask = 0;
      for (uint32_t lt = 0; lt < cfg.tiles_per_group; ++lt) {
        if (per_tile[g * cfg.tiles_per_group + lt] != 0) mask |= 1u << lt;
      }
      if (mask != 0) w.tile_masks.emplace_back(g, mask);
    }
    return w;
  }

  w.kind = Kind::cores;
  w.cores.assign(sorted_cores.begin(), sorted_cores.end());
  return w;
}

std::vector<arch::core_id> Wake_set::resolve(
    const arch::Cluster_config& cfg) const {
  std::vector<arch::core_id> out;
  switch (kind) {
    case Kind::all:
      out.resize(cfg.n_cores());
      for (arch::core_id c = 0; c < cfg.n_cores(); ++c) out[c] = c;
      break;
    case Kind::groups: {
      const uint32_t cores_per_group = cfg.tiles_per_group * cfg.cores_per_tile;
      for (uint32_t g = 0; g < cfg.n_groups; ++g) {
        if (!(group_mask & (uint64_t{1} << g))) continue;
        for (uint32_t i = 0; i < cores_per_group; ++i) {
          out.push_back(g * cores_per_group + i);
        }
      }
      break;
    }
    case Kind::tiles:
      for (const auto& [g, mask] : tile_masks) {
        for (uint32_t lt = 0; lt < cfg.tiles_per_group; ++lt) {
          if (!(mask & (1u << lt))) continue;
          const arch::tile_id tl = g * cfg.tiles_per_group + lt;
          for (uint32_t i = 0; i < cfg.cores_per_tile; ++i) {
            out.push_back(tl * cfg.cores_per_tile + i);
          }
        }
      }
      break;
    case Kind::cores:
      out = cores;
      break;
  }
  return out;
}

}  // namespace pp::sim
