// Wake-up trigger sets (paper §IV, Fig. 4c).
//
// MemPool wakes all cores by broadcast or one core by ID.  TeraPool adds a
// CSR that wakes a *set of groups* with one write and, per group, a CSR that
// wakes a set of its tiles with one write.  Wake_set::make picks the coarsest
// granularity that exactly covers a subset of cores and exposes the number of
// CSR writes the trigger costs.
#ifndef PUSCHPOOL_SIM_WAKE_H
#define PUSCHPOOL_SIM_WAKE_H

#include <cstdint>
#include <span>
#include <vector>

#include "arch/topology.h"

namespace pp::sim {

struct Wake_set {
  enum class Kind { all, groups, tiles, cores };

  Kind kind = Kind::all;
  uint64_t group_mask = 0;  // Kind::groups
  // Kind::tiles: (group, mask of tiles inside that group)
  std::vector<std::pair<arch::group_id, uint32_t>> tile_masks;
  std::vector<arch::core_id> cores;  // Kind::cores

  // Number of CSR writes needed to assert this trigger.
  uint32_t n_csr_writes() const {
    switch (kind) {
      case Kind::all: return 1;
      case Kind::groups: return 1;
      case Kind::tiles: return static_cast<uint32_t>(tile_masks.size());
      case Kind::cores: return static_cast<uint32_t>(cores.size());
    }
    return 1;
  }

  // Build the cheapest trigger that wakes exactly `sorted_cores` (ascending,
  // unique).  Wakes must be exact: waking a superset could release cores
  // sleeping on an unrelated barrier.
  static Wake_set make(const arch::Cluster_config& cfg,
                       std::span<const arch::core_id> sorted_cores);

  // Materialize the target core list.
  std::vector<arch::core_id> resolve(const arch::Cluster_config& cfg) const;
};

}  // namespace pp::sim

#endif  // PUSCHPOOL_SIM_WAKE_H
