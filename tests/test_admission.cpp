// Admission / overload controller (runtime/admission.h).
//
// The controller's verdict stream is a pure function of (jobs, placement,
// policy, cluster, clock) on the analytic predictor - these tests pin the
// per-policy semantics on hand-built job streams where the FCFS recurrence
// can be followed by eye.
#include <gtest/gtest.h>

#include "runtime/admission.h"
#include "runtime/scheduler.h"

namespace {

using namespace pp;
using runtime::Admission_options;
using runtime::Admission_verdict;
using runtime::admit_jobs;
using runtime::Overload_policy;
using Outcome = Admission_verdict::Outcome;

// A job stream of `n` identical slots in one group, arriving `gap_s` apart
// with budget `budget_s`.  The analytic service time of the config is the
// knob the tests scale budgets and gaps against.
std::vector<runtime::Slot_job> uniform_jobs(size_t n, double gap_s,
                                            double budget_s) {
  phy::Uplink_config cfg;
  cfg.n_sc = 16;
  cfg.fft_size = 16;
  cfg.n_ue = 4;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.sigma2 = 1e-3;
  std::vector<runtime::Slot_job> jobs(n);
  for (size_t i = 0; i < n; ++i) {
    jobs[i].index = i;
    jobs[i].group = 0;
    jobs[i].cfg = cfg;
    jobs[i].arrival_s = gap_s * static_cast<double>(i);
    jobs[i].budget_s = budget_s;
  }
  return jobs;
}

double service_of(const std::vector<runtime::Slot_job>& jobs) {
  return runtime::analytic_service_seconds(
      jobs[0].cfg, arch::Cluster_config::minipool(), 1.0);
}

std::vector<Admission_verdict> run(const std::vector<runtime::Slot_job>& jobs,
                                   const Admission_options& opt,
                                   uint32_t n_shards = 1) {
  std::vector<uint32_t> shard_of_group(1, 0);
  return admit_jobs(jobs, shard_of_group, n_shards, 1,
                    arch::Cluster_config::minipool(), 1.0, opt);
}

TEST(Admission, RegistryListsAllPoliciesAndRoundTrips) {
  const auto names = runtime::overload_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "off");
  EXPECT_EQ(names[1], "drop");
  EXPECT_EQ(names[2], "queue");
  EXPECT_EQ(names[3], "degrade");
  for (const auto& n : names) EXPECT_TRUE(runtime::is_overload_name(n));
  EXPECT_FALSE(runtime::is_overload_name("shed"));
  EXPECT_EQ(runtime::overload_from_name("degrade"),
            Overload_policy::degrade);
  EXPECT_DEATH(runtime::overload_from_name("shed"),
               "unknown overload policy");
}

TEST(Admission, OffAdmitsEverythingAndPredictsTheFcfsDelay) {
  // Back-to-back arrivals (gap = 0) on one server: job i waits i services.
  const auto jobs = uniform_jobs(4, 0.0, 0.0);
  const double s = service_of(jobs);
  const auto v = run(jobs, Admission_options{});
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].outcome, Outcome::admitted) << i;
    EXPECT_EQ(v[i].predicted_delay_s, static_cast<double>(i + 1) * s) << i;
  }
}

TEST(Admission, DropShedsOverBudgetJobsAndFreesTheClock) {
  // Budget = 1.5 services: with everything arriving at t = 0, job 0 fits
  // (delay s), job 1 fits (delay 2s? no - 2s > 1.5s, dropped).  Because a
  // dropped job never advances the clock, job 2 sees the same queue as
  // job 1 and is dropped too, and so on: exactly one admission.
  const auto jobs = uniform_jobs(4, 0.0, 0.0);
  auto deadlined = jobs;
  const double s = service_of(jobs);
  for (auto& j : deadlined) j.budget_s = 1.5 * s;
  Admission_options opt;
  opt.policy = Overload_policy::drop;
  const auto v = run(deadlined, opt);
  EXPECT_EQ(v[0].outcome, Outcome::admitted);
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_EQ(v[i].outcome, Outcome::dropped) << i;
    EXPECT_EQ(v[i].predicted_delay_s, 2.0 * s) << i;  // clock never moved
  }
}

TEST(Admission, DropIgnoresBudgetlessJobs) {
  // Batch jobs (budget 0) are never shed, however deep the queue.
  const auto jobs = uniform_jobs(8, 0.0, 0.0);
  Admission_options opt;
  opt.policy = Overload_policy::drop;
  for (const auto& v : run(jobs, opt)) {
    EXPECT_EQ(v.outcome, Outcome::admitted);
  }
}

TEST(Admission, QueueDropsAtTheBacklogLimitAndDrainsOverTime) {
  // All arrive at t = 0, limit 2.  The backlog counts jobs *waiting*
  // (predicted start strictly after the arrival), not the one in service:
  // job 0 starts immediately, jobs 1,2 queue with backlogs 0,1, job 3 sees
  // backlog 2 -> dropped, and job 4 likewise (drops free no backlog).
  const auto burst = uniform_jobs(5, 0.0, 0.0);
  Admission_options opt;
  opt.policy = Overload_policy::queue;
  opt.queue_limit = 2;
  const auto v = run(burst, opt);
  EXPECT_EQ(v[0].outcome, Outcome::admitted);
  EXPECT_EQ(v[1].outcome, Outcome::admitted);
  EXPECT_EQ(v[2].outcome, Outcome::admitted);
  EXPECT_EQ(v[3].outcome, Outcome::dropped);
  EXPECT_EQ(v[4].outcome, Outcome::dropped);

  // Spaced arrivals (gap > service) never build a backlog: all admitted.
  const double s = service_of(burst);
  const auto spaced = uniform_jobs(4, 2.0 * s, 0.0);
  for (const auto& sv : run(spaced, opt)) {
    EXPECT_EQ(sv.outcome, Outcome::admitted);
  }
}

TEST(Admission, DegradeShedsLayersUntilTheBudgetHolds) {
  // One job, budget below its 4-layer service time but above some smaller
  // layer count's: the controller must land on the largest n_ue that fits.
  auto jobs = uniform_jobs(1, 0.0, 0.0);
  const double s4 = service_of(jobs);
  auto s_at = [&](uint32_t n_ue) {
    return runtime::analytic_service_seconds(
        phy::degrade_to_layers(jobs[0].cfg, n_ue),
        arch::Cluster_config::minipool(), 1.0);
  };
  ASSERT_LT(s_at(2), s4);  // fewer layers must be cheaper
  jobs[0].budget_s = 0.5 * (s_at(2) + s_at(3));  // fits 2 layers, not 3
  Admission_options opt;
  opt.policy = Overload_policy::degrade;
  const auto v = run(jobs, opt);
  EXPECT_EQ(v[0].outcome, Outcome::degraded);
  EXPECT_EQ(v[0].cfg.n_ue, 2u);
  EXPECT_EQ(v[0].predicted_delay_s, s_at(2));
  // The re-planned config keeps the per-layer SNR: sigma2 scales with n_ue.
  EXPECT_EQ(v[0].cfg.sigma2, jobs[0].cfg.sigma2 * 2.0 / 4.0);
}

TEST(Admission, DegradeStopsAtTheFloorAndAlwaysAdmits) {
  // Budget far below even one layer's service: degrade bottoms out at
  // min_ue and still admits (degrade never sheds).
  auto jobs = uniform_jobs(2, 0.0, 0.0);
  for (auto& j : jobs) j.budget_s = 1e-12;
  Admission_options opt;
  opt.policy = Overload_policy::degrade;
  opt.min_ue = 2;
  const auto v = run(jobs, opt);
  for (const auto& verdict : v) {
    EXPECT_EQ(verdict.outcome, Outcome::degraded);
    EXPECT_EQ(verdict.cfg.n_ue, 2u);
  }
  // A job already at the floor is admitted unchanged, not marked degraded.
  auto floor_jobs = uniform_jobs(1, 0.0, 0.0);
  floor_jobs[0].cfg = phy::degrade_to_layers(floor_jobs[0].cfg, 2);
  floor_jobs[0].budget_s = 1e-12;
  const auto fv = run(floor_jobs, opt);
  EXPECT_EQ(fv[0].outcome, Outcome::admitted);
  EXPECT_EQ(fv[0].cfg.n_ue, 2u);
}

TEST(Admission, ShardsKeepIndependentClocks) {
  // Two groups on two shards: each shard only queues its own jobs, so a
  // burst on group 0 never delays group 1.
  auto jobs = uniform_jobs(6, 0.0, 0.0);
  for (size_t i = 0; i < jobs.size(); ++i) jobs[i].group = i % 2;
  const double s = service_of(jobs);
  std::vector<uint32_t> shard_of_group = {0, 1};
  Admission_options opt;
  const auto v = admit_jobs(jobs, shard_of_group, 2, 1,
                            arch::Cluster_config::minipool(), 1.0, opt);
  // Per shard: 3 back-to-back jobs, delays s, 2s, 3s.
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].shard, i % 2) << i;
    EXPECT_EQ(v[i].predicted_delay_s, static_cast<double>(i / 2 + 1) * s)
        << i;
  }
}

TEST(Admission, VerdictStreamIsDeterministic) {
  auto jobs = uniform_jobs(16, 1e-6, 5e-6);
  Admission_options opt;
  opt.policy = Overload_policy::drop;
  const auto a = run(jobs, opt);
  const auto b = run(jobs, opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].shard, b[i].shard);
    EXPECT_EQ(a[i].predicted_delay_s, b[i].predicted_delay_s);
    EXPECT_EQ(a[i].cfg.n_ue, b[i].cfg.n_ue);
    EXPECT_EQ(a[i].cfg.sigma2, b[i].cfg.sigma2);
  }
}

}  // namespace
