// Fixed_backend bit-exactness and SIMD parity tests.
//
// The load-bearing guarantee (docs/DETERMINISM.md section 7): the fixed-point
// host backend is **bit-identical to the sim backend** - same payload bits,
// same EVM/BER doubles, same sigma2_hat - across the scenario grid, at any
// intra-slot worker count, through the split/pipelined path, and with the
// SIMD kernels on or off.  Unlike the parallel/reference pair (which shares
// double-precision models), fixed and sim share only the Q15 value chain, so
// these tests pin the whole src/fixed/ subsystem against the simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fixed/q15_kernels.h"
#include "fixed/simd.h"
#include "runtime/backend.h"
#include "runtime/backend_fixed.h"
#include "runtime/sweep.h"

namespace {

using namespace pp;
using common::cq15;

// ---- registry wiring -------------------------------------------------------

TEST(FixedBackend, MakeBackendByNameAndWorkerCount) {
  const auto b = runtime::make_backend("fixed", 3);
  EXPECT_EQ(b->name(), "fixed");
  EXPECT_FALSE(b->cycle_accurate());
  EXPECT_TRUE(b->can_split());
  EXPECT_EQ(static_cast<runtime::Fixed_backend*>(b.get())->workers(), 3u);
  runtime::Fixed_backend all(0);
  EXPECT_GE(all.workers(), 1u);
  // The SIMD resolution is a host property, not a per-call coin flip.
  runtime::Fixed_backend scalar(1, false);
  EXPECT_FALSE(scalar.simd_active());
  runtime::Fixed_backend simd(1, true);
  EXPECT_EQ(simd.simd_active(), fixed::simd_available());
}

TEST(FixedBackend, BackendNamesStayInSyncWithMakeBackend) {
  // Every advertised name must construct, agree on its own name, and the
  // fixed backend must be advertised - the CLI --list / validation surface
  // (bench_util, pusch_sweep, pusch_serve) is generated from this list.
  const auto names = runtime::backend_names();
  for (const auto& name : names) {
    const auto b = runtime::make_backend(name, 1);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name(), name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "fixed"), names.end());
}

// ---- bit parity vs. the simulator ------------------------------------------

void expect_slot_bits_equal(const runtime::Slot_result& sim,
                            const runtime::Slot_result& fix,
                            const std::string& what) {
  EXPECT_EQ(sim.bits, fix.bits) << what;
  EXPECT_EQ(sim.evm, fix.evm) << what;
  EXPECT_EQ(sim.ber, fix.ber) << what;
  EXPECT_EQ(sim.sigma2_hat, fix.sigma2_hat) << what;
  ASSERT_EQ(sim.stages.size(), fix.stages.size()) << what;
  for (size_t s = 0; s < sim.stages.size(); ++s) {
    EXPECT_EQ(sim.stages[s].name, fix.stages[s].name) << what;
    EXPECT_EQ(sim.stages[s].runs, fix.stages[s].runs) << what;
    EXPECT_EQ(fix.stages[s].cycles, 0u) << "host backends report no cycles";
  }
}

TEST(FixedBackend, BitIdenticalToSimAcrossScenarioGridAndWorkers) {
  // Numerology x UE x QAM grid, two SNR points each; every slot checked at
  // 1, 2 and 8 intra-slot workers against the simulated sweep.  EVM and BER
  // are compared with ==: the fixed backend reproduces the sim backend's
  // Q15 arithmetic exactly, not approximately.
  runtime::Sweep_grid grid;
  grid.fft_sizes = {16, 64};
  grid.ue_counts = {2, 4};
  grid.qam_orders = {phy::Qam::qpsk, phy::Qam::qam16};
  grid.snr_db = {10, 30};

  runtime::Sweep_options sim_opt;
  sim_opt.backend = "sim";
  sim_opt.workers = 2;
  const auto sim = runtime::Sweep_runner(sim_opt).run(grid);
  ASSERT_EQ(sim.total_slots, 16u);

  for (const uint32_t intra : {1u, 2u, 8u}) {
    runtime::Sweep_options fix_opt;
    fix_opt.backend = "fixed";
    fix_opt.workers = 2;  // compose slot-level x intra-slot parallelism
    fix_opt.intra = intra;
    const auto fix = runtime::Sweep_runner(fix_opt).run(grid);
    ASSERT_EQ(fix.slots.size(), sim.slots.size());
    for (size_t i = 0; i < sim.slots.size(); ++i) {
      expect_slot_bits_equal(
          sim.slots[i], fix.slots[i],
          "slot " + std::to_string(i) + " intra " + std::to_string(intra));
      EXPECT_EQ(fix.slots[i].backend, "fixed");
    }
    for (size_t p = 0; p < sim.points.size(); ++p) {
      EXPECT_EQ(sim.points[p].evm, fix.points[p].evm) << "point " << p;
      EXPECT_EQ(sim.points[p].ber, fix.points[p].ber) << "point " << p;
      EXPECT_EQ(sim.points[p].sigma2_hat, fix.points[p].sigma2_hat)
          << "point " << p;
    }
  }
}

TEST(FixedBackend, CooperativeFftPathBitIdenticalToSim) {
  // Fewer transforms than workers forces the cooperative FFT: butterfly
  // blocks tiled across all workers with a barrier between stages.
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 2;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 3;
  cfg.n_pilot_symb = 2;
  cfg.seed = 99;
  const phy::Uplink_scenario sc(cfg);
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  const auto sim = pipeline.execute(sc, *runtime::make_backend("sim"));
  for (const uint32_t intra : {7u, 16u}) {  // 6 transforms < workers
    runtime::Fixed_backend backend(intra);
    const auto fix = pipeline.execute(sc, backend);
    expect_slot_bits_equal(sim, fix, "intra " + std::to_string(intra));
  }
}

TEST(FixedBackend, SplitContractMatchesWholeSlot) {
  // run_back(run_front()) == run_slot - the contract stage pipelining
  // rests on (scheduler.h).
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_ue = 4;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.seed = 7;
  const phy::Uplink_scenario sc(cfg);
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  runtime::Fixed_backend whole(2);
  runtime::Fixed_backend split(2);
  const auto a = whole.run_slot(pipeline, sc);
  const auto b = split.run_back(pipeline, sc, split.run_front(pipeline, sc));
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.evm, b.evm);
  EXPECT_EQ(a.ber, b.ber);
  EXPECT_EQ(a.sigma2_hat, b.sigma2_hat);
}

TEST(FixedBackend, PipelinedSchedulerBitIdenticalToSim) {
  // The full composition the issue demands: Slot_scheduler with stage
  // pipelining on, the fixed backend underneath, against the simulated run.
  runtime::Sweep_grid grid;
  grid.fft_sizes = {16};
  grid.snr_db = {15, 25};
  grid.slots_per_point = 2;
  const runtime::Grid_source source(grid);

  runtime::Scheduler_options sim_opt;
  sim_opt.backend = "sim";
  sim_opt.workers = 1;
  const auto sim = runtime::Slot_scheduler(sim_opt).run(source);

  runtime::Scheduler_options fix_opt;
  fix_opt.backend = "fixed";
  fix_opt.workers = 2;
  fix_opt.intra = 2;
  fix_opt.pipelined = true;
  const auto fix = runtime::Slot_scheduler(fix_opt).run(source);
  EXPECT_TRUE(fix.pipelined);  // the fixed backend can split
  ASSERT_EQ(fix.slots.size(), sim.slots.size());
  for (size_t i = 0; i < sim.slots.size(); ++i) {
    expect_slot_bits_equal(sim.slots[i], fix.slots[i],
                           "slot " + std::to_string(i));
  }
}

// ---- SIMD parity -----------------------------------------------------------

TEST(FixedBackend, ScalarAndSimdBitIdentical) {
  // A slot large enough to engage every vector path (butterfly runs >= 8,
  // 8-beam CHE rows): forcing the scalar loops must not change a bit.  On
  // hosts without a SIMD path both runs are scalar and the test is vacuous
  // (the grid test above still covers the backend).
  phy::Uplink_config cfg;
  cfg.n_sc = 256;
  cfg.fft_size = 256;
  cfg.n_rx = 8;
  cfg.n_beams = 8;
  cfg.n_ue = 4;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qam64;
  cfg.seed = 41;
  const phy::Uplink_scenario sc(cfg);
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  runtime::Fixed_backend simd(2, true);
  runtime::Fixed_backend scalar(2, false);
  const auto a = pipeline.execute(sc, simd);
  const auto b = pipeline.execute(sc, scalar);
  expect_slot_bits_equal(a, b, std::string("isa ") + fixed::simd_isa());
}

cq15 random_cq15(common::Rng& rng) {
  // Full int16 range, with extreme values (q15_min in both lanes included)
  // oversampled to exercise the saturation corners.
  auto lane = [&rng]() -> int16_t {
    switch (rng.next_u32() % 8) {
      case 0: return common::q15_min;
      case 1: return common::q15_max;
      default: return static_cast<int16_t>(rng.next_u32());
    }
  };
  return cq15{lane(), lane()};
}

TEST(FixedQ15, SimdCheRowMatchesScalarIncludingCorners) {
  // cmul_double_prefix vs. the scalar CHE row op cadd(t, t), t = cmul(y, x),
  // over adversarial inputs - including the one cmul wrap corner
  // ({-0x8000, -0x8000} x itself) the AVX2 path patches with a blend.
  common::Rng rng(2023);
  for (int round = 0; round < 200; ++round) {
    const uint32_t n = 1 + rng.next_u32() % 64;
    std::vector<cq15> y(n);
    for (auto& v : y) v = random_cq15(rng);
    cq15 x = random_cq15(rng);
    if (round == 0) {  // pin the corner explicitly
      x = cq15{common::q15_min, common::q15_min};
      y.assign(n, cq15{common::q15_min, common::q15_min});
    }
    std::vector<cq15> out(n, cq15{0, 0});
    const uint32_t done = fixed::cmul_double_prefix(y.data(), x, out.data(),
                                                    static_cast<uint32_t>(n));
    ASSERT_LE(done, n);
    for (uint32_t i = 0; i < done; ++i) {
      const cq15 t = common::cmul(y[i], x);
      const cq15 want = common::cadd(t, t);
      EXPECT_EQ(out[i].re, want.re) << "round " << round << " i " << i;
      EXPECT_EQ(out[i].im, want.im) << "round " << round << " i " << i;
    }
  }
}

TEST(FixedQ15, SimdFftMatchesScalarAcrossSizes) {
  common::Rng rng(7);
  for (const uint32_t n : {16u, 64u, 256u, 1024u}) {
    const auto& plan = fixed::fft_plan(n);
    for (int round = 0; round < 4; ++round) {
      std::vector<cq15> in(n);
      for (auto& v : in) v = random_cq15(rng);
      std::vector<cq15> buf_s = in, out_s(n), buf_v = in, out_v(n);
      fixed::fft_transform(plan, buf_s.data(), out_s.data(), false);
      fixed::fft_transform(plan, buf_v.data(), out_v.data(), true);
      for (uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(out_s[i].re, out_v[i].re) << "n " << n << " bin " << i;
        EXPECT_EQ(out_s[i].im, out_v[i].im) << "n " << n << " bin " << i;
      }
    }
  }
}

}  // namespace
