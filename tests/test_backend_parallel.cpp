// Parallel_backend determinism and thread-pool tests.
//
// The load-bearing guarantee (docs/DETERMINISM.md): the intra-slot parallel
// host backend is bit-identical to Reference_backend at any worker count -
// workers own statically-sliced disjoint tiles whose arithmetic matches the
// serial loops exactly, and floating-point reductions are accumulated
// serially in slot order.  The grid test below sweeps numerology x UE x QAM
// at 1/2/8 workers; the speedup test needs real parallel hardware and skips
// on small hosts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/thread_pool.h"
#include "runtime/backend.h"
#include "runtime/backend_parallel.h"
#include "runtime/sweep.h"

namespace {

using namespace pp;
using common::Counting_barrier;
using common::Thread_pool;

// ---- Thread_pool primitives ----------------------------------------------

TEST(ThreadPool, SliceCoversRangeInOrderWithoutOverlap) {
  for (const uint32_t workers : {1u, 2u, 3u, 7u, 8u}) {
    for (const uint64_t n : {0ull, 1ull, 5ull, 64ull, 1000ull}) {
      uint64_t next = 0;
      for (uint32_t w = 0; w < workers; ++w) {
        const auto [first, last] = Thread_pool::slice(n, w, workers);
        EXPECT_EQ(first, next) << n << " items, worker " << w;
        EXPECT_LE(last - first, n / workers + 1);
        next = last;
      }
      EXPECT_EQ(next, n) << "slices must cover [0, n)";
    }
  }
}

TEST(ThreadPool, RunDispatchesEveryWorkerIdOnce) {
  Thread_pool pool(4);
  ASSERT_EQ(pool.workers(), 4u);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(4);
    pool.run([&](uint32_t w) { hits[w].fetch_add(1); });
    for (uint32_t w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1);
  }
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce) {
  Thread_pool pool(3);
  std::vector<std::atomic<uint32_t>> seen(257);
  pool.parallel_for(seen.size(), [&](uint64_t i) { seen[i].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1u);
}

TEST(ThreadPool, CountingBarrierReusableAcrossGenerations) {
  constexpr uint32_t kWorkers = 4;
  constexpr int kRounds = 100;
  Thread_pool pool(kWorkers);
  Counting_barrier barrier(kWorkers);
  // Every worker bumps a per-round counter, then waits; after the barrier
  // all must observe the full round's worth of increments.
  std::vector<std::atomic<uint32_t>> counts(kRounds);
  pool.run([&](uint32_t) {
    for (int r = 0; r < kRounds; ++r) {
      counts[r].fetch_add(1);
      barrier.arrive_and_wait();
      EXPECT_EQ(counts[r].load(), kWorkers) << "round " << r;
      barrier.arrive_and_wait();
    }
  });
}

TEST(ThreadPool, SingleWorkerPoolSpawnsNoThreadsAndRunsInline) {
  Thread_pool pool(1);
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.run([&](uint32_t w) {
    EXPECT_EQ(w, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, self);
}

// ---- backend construction -------------------------------------------------

TEST(ParallelBackend, MakeBackendByNameAndWorkerCount) {
  const auto b = runtime::make_backend("parallel", 3);
  EXPECT_EQ(b->name(), "parallel");
  EXPECT_FALSE(b->cycle_accurate());
  EXPECT_EQ(static_cast<runtime::Parallel_backend*>(b.get())->workers(), 3u);
  // intra = 0 fills the host.
  runtime::Parallel_backend all(0);
  EXPECT_GE(all.workers(), 1u);
}

// ---- bit parity vs. the serial reference ----------------------------------

void expect_slot_bits_equal(const runtime::Slot_result& ref,
                            const runtime::Slot_result& par,
                            const std::string& what) {
  EXPECT_EQ(ref.bits, par.bits) << what;
  EXPECT_EQ(ref.evm, par.evm) << what;
  EXPECT_EQ(ref.ber, par.ber) << what;
  EXPECT_EQ(ref.sigma2_hat, par.sigma2_hat) << what;
  ASSERT_EQ(ref.stages.size(), par.stages.size()) << what;
  for (size_t s = 0; s < ref.stages.size(); ++s) {
    EXPECT_EQ(ref.stages[s].name, par.stages[s].name) << what;
    EXPECT_EQ(ref.stages[s].runs, par.stages[s].runs) << what;
    EXPECT_EQ(par.stages[s].cycles, 0u) << "host backends report no cycles";
  }
}

TEST(ParallelBackend, BitIdenticalToReferenceAcrossScenarioGridAndWorkers) {
  // Numerology x UE x QAM grid, three SNR points each; every slot checked
  // at 1, 2 and 8 intra-slot workers against the serial reference sweep.
  runtime::Sweep_grid grid;
  grid.fft_sizes = {16, 64};
  grid.ue_counts = {2, 4};
  grid.qam_orders = {phy::Qam::qpsk, phy::Qam::qam16};
  grid.snr_db = {10, 20, 30};

  runtime::Sweep_options ref_opt;
  ref_opt.backend = "reference";
  ref_opt.workers = 1;
  const auto ref = runtime::Sweep_runner(ref_opt).run(grid);
  ASSERT_EQ(ref.total_slots, 24u);

  for (const uint32_t intra : {1u, 2u, 8u}) {
    runtime::Sweep_options par_opt;
    par_opt.backend = "parallel";
    par_opt.workers = 2;  // compose slot-level x intra-slot parallelism
    par_opt.intra = intra;
    const auto par = runtime::Sweep_runner(par_opt).run(grid);
    ASSERT_EQ(par.slots.size(), ref.slots.size());
    for (size_t i = 0; i < ref.slots.size(); ++i) {
      expect_slot_bits_equal(
          ref.slots[i], par.slots[i],
          "slot " + std::to_string(i) + " intra " + std::to_string(intra));
      EXPECT_EQ(par.slots[i].backend, "parallel");
    }
    for (size_t p = 0; p < ref.points.size(); ++p) {
      EXPECT_EQ(ref.points[p].evm, par.points[p].evm) << "point " << p;
      EXPECT_EQ(ref.points[p].ber, par.points[p].ber) << "point " << p;
    }
  }
}

TEST(ParallelBackend, CooperativeFftPathBitIdentical) {
  // Fewer transforms than workers forces the cooperative FFT: butterfly
  // blocks tiled across all workers with a barrier between stages.
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 2;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 3;
  cfg.n_pilot_symb = 2;
  cfg.seed = 99;
  const phy::Uplink_scenario sc(cfg);
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  const auto ref = pipeline.execute(sc, *runtime::make_backend("reference"));
  for (const uint32_t intra : {7u, 16u}) {  // 6 transforms < workers
    runtime::Parallel_backend backend(intra);
    const auto par = pipeline.execute(sc, backend);
    expect_slot_bits_equal(ref, par, "intra " + std::to_string(intra));
  }
}

TEST(ParallelBackend, ComposedSweepMatchesSerialReferenceRollup) {
  // The --backend parallel --intra N composition through Sweep_runner:
  // per-point aggregates (which sum floats in slot order) must also match.
  runtime::Sweep_grid grid;
  grid.fft_sizes = {16};
  grid.snr_db = {15, 25};
  grid.slots_per_point = 2;

  runtime::Sweep_options a;
  a.backend = "reference";
  a.workers = 1;
  runtime::Sweep_options b;
  b.backend = "parallel";
  b.workers = 3;
  b.intra = 2;
  const auto ra = runtime::Sweep_runner(a).run(grid);
  const auto rb = runtime::Sweep_runner(b).run(grid);
  ASSERT_EQ(ra.points.size(), rb.points.size());
  for (size_t p = 0; p < ra.points.size(); ++p) {
    EXPECT_EQ(ra.points[p].evm, rb.points[p].evm);
    EXPECT_EQ(ra.points[p].ber, rb.points[p].ber);
    EXPECT_EQ(ra.points[p].sigma2_hat, rb.points[p].sigma2_hat);
  }
}

TEST(ParallelBackend, EightWorkerSlotSpeedup) {
  // The acceptance bar: >= 2x whole-slot speedup with 8 intra-slot workers.
  // Needs real parallel hardware; skip on small hosts (CI containers often
  // expose 1-2 cores) where the bar is unmeetable.
  if (std::thread::hardware_concurrency() < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  phy::Uplink_config cfg;
  cfg.n_sc = 1024;
  cfg.fft_size = 1024;
  cfg.n_rx = 8;
  cfg.n_beams = 8;
  cfg.n_ue = 4;
  cfg.n_symb = 8;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qam64;
  const phy::Uplink_scenario sc(cfg);
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  auto time_slot = [&](runtime::Parallel_backend& backend) {
    double best = 1e300;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)pipeline.execute(sc, backend);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  runtime::Parallel_backend serial(1);
  runtime::Parallel_backend eight(8);
  const double t1 = time_slot(serial);
  const double t8 = time_slot(eight);
  EXPECT_GE(t1 / t8, 2.0) << "1 worker " << t1 << " s, 8 workers " << t8
                          << " s";
}

}  // namespace
