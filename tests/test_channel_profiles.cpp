// Channel-profile layer (phy/channel.h): registry round-trips, the TR
// 38.901 tap tables, and the TDL determinism contract - golden-pinned
// realizations, per-UE stream independence, symbol-prefix stability, the
// AR(1) Doppler recursion, and the flat profile's legacy-RNG-order
// compatibility (docs/DETERMINISM.md "Channel profiles & HARQ
// determinism").
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.h"
#include "phy/channel.h"
#include "phy/uplink.h"

namespace {

using namespace pp;
using phy::Channel;
using phy::Channel_config;
using phy::Channel_profile;

// The golden TDL-A configuration every pinned realization below uses.
Channel_config golden_config() {
  Channel_config cfg;
  cfg.n_sc = 16;
  cfg.n_rx = 2;
  cfg.n_ue = 2;
  cfg.gain = 1.0;
  cfg.sigma2 = 0.0;
  cfg.profile = Channel_profile::tdl_a;
  cfg.n_symb = 3;
  cfg.doppler_hz = 50.0;
  cfg.delay_spread = 4.0;
  cfg.symbol_s = 1e-3 / 14;
  cfg.seed = 7;
  return cfg;
}

Channel make(const Channel_config& cfg, uint64_t rng_seed = 123) {
  common::Rng rng(rng_seed);
  return Channel(cfg, rng);
}

TEST(ChannelProfiles, RegistryListsAllProfilesAndRoundTrips) {
  const auto names = phy::channel_profile_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "flat");
  EXPECT_EQ(names[1], "tdl-a");
  EXPECT_EQ(names[2], "tdl-c");
  for (const auto& n : names) {
    EXPECT_TRUE(phy::is_channel_profile_name(n));
    EXPECT_EQ(phy::channel_profile_name(phy::channel_profile_from_name(n)),
              n);
  }
  EXPECT_FALSE(phy::is_channel_profile_name("rayleigh"));
  EXPECT_EQ(phy::channel_profile_from_name("tdl-c"), Channel_profile::tdl_c);
  EXPECT_DEATH(phy::channel_profile_from_name("rayleigh"),
               "unknown channel profile");
}

TEST(ChannelProfiles, TapTablesMatchTheStandardsShape) {
  const auto& a = phy::tdl_taps(Channel_profile::tdl_a);
  const auto& c = phy::tdl_taps(Channel_profile::tdl_c);
  EXPECT_EQ(a.size(), 23u);  // TR 38.901 Table 7.7.2-1
  EXPECT_EQ(c.size(), 24u);  // TR 38.901 Table 7.7.2-3
  for (const auto* taps : {&a, &c}) {
    double total = 0.0;
    for (const auto& t : *taps) {
      // The standard's tables list taps by number, not monotone delay -
      // only non-negativity is guaranteed.
      EXPECT_GE(t.delay, 0.0);
      EXPECT_GT(t.power, 0.0);
      total += t.power;
    }
    EXPECT_EQ((*taps)[0].delay, 0.0);
    // Normalized so every profile carries the flat model's per-path power.
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  EXPECT_DEATH(phy::tdl_taps(Channel_profile::flat), "no TDL tap table");
}

TEST(ChannelProfiles, FlatProfileDrawsTheLegacyOrderFromTheCallerRng) {
  Channel_config cfg;
  cfg.n_sc = 32;
  cfg.n_rx = 4;
  cfg.n_ue = 3;
  cfg.coherence = 16;
  // Replaying flat_coeff_count() cnormal draws on a twin RNG must leave
  // both generators in the same state - the exact contract
  // phy::tx_payload_bits relies on to skip the channel build.
  common::Rng used(42), twin(42);
  const Channel ch(cfg, used);
  for (size_t i = 0; i < Channel::flat_coeff_count(cfg); ++i) twin.cnormal();
  EXPECT_EQ(used.next_u32(), twin.next_u32());
  // And the drawn coefficients land in h() in block/antenna/UE order.
  common::Rng replay(42);
  EXPECT_EQ(ch.h(0, 0, 0, 0), replay.cnormal() * cfg.gain);
}

TEST(ChannelProfiles, TdlDrawsNothingFromTheSharedRng) {
  const Channel_config cfg = golden_config();
  common::Rng used(42), twin(42);
  const Channel ch(cfg, used);
  EXPECT_EQ(used.next_u32(), twin.next_u32());
  EXPECT_GT(ch.n_taps(), 0u);
}

TEST(ChannelProfiles, GoldenPinnedTapAndFrequencyRealizations) {
  // Empirically generated once from the seeded implementation and pinned:
  // any change to the tap draw order, the AR(1) recursion or the
  // delay-to-frequency transform shows up here first.
  const Channel ch = make(golden_config());
  ASSERT_EQ(ch.n_taps(), 23u);
  const auto g000 = ch.tap_gain(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(g000.real(), -0.1067355235730591);
  EXPECT_DOUBLE_EQ(g000.imag(), -0.10471543488706306);
  const auto g511 = ch.tap_gain(0, 5, 1, 1);
  EXPECT_DOUBLE_EQ(g511.real(), 0.080179720411739833);
  EXPECT_DOUBLE_EQ(g511.imag(), 0.47714184362936624);
  const auto g2 = ch.tap_gain(2, 0, 0, 0);
  EXPECT_DOUBLE_EQ(g2.real(), -0.13259157861074777);
  EXPECT_DOUBLE_EQ(g2.imag(), -0.071916592968004345);
  const auto g22 = ch.tap_gain(2, 22, 1, 0);
  EXPECT_DOUBLE_EQ(g22.real(), -0.016777919066214172);
  EXPECT_DOUBLE_EQ(g22.imag(), 0.0071255288724712124);
  const auto h0 = ch.h(0, 3, 1, 0);
  EXPECT_DOUBLE_EQ(h0.real(), -0.46831830808367014);
  EXPECT_DOUBLE_EQ(h0.imag(), 0.32819607969747966);
  const auto h2 = ch.h(2, 3, 1, 0);
  EXPECT_DOUBLE_EQ(h2.real(), -0.1950506917928245);
  EXPECT_DOUBLE_EQ(h2.imag(), 0.52484732580250593);
}

TEST(ChannelProfiles, RealizationsArePrefixStableInTheSymbolCount) {
  // A channel over more symbols extends a shorter one bit for bit - the
  // same prefix contract Traffic_source keeps for its arrival streams.
  Channel_config small = golden_config();
  small.n_symb = 4;
  Channel_config big = small;
  big.n_symb = 8;
  const Channel cs = make(small), cb = make(big);
  ASSERT_EQ(cs.n_taps(), cb.n_taps());
  for (uint32_t s = 0; s < small.n_symb; ++s) {
    for (uint32_t t = 0; t < cs.n_taps(); ++t) {
      for (uint32_t r = 0; r < small.n_rx; ++r) {
        for (uint32_t l = 0; l < small.n_ue; ++l) {
          EXPECT_EQ(cs.tap_gain(s, t, r, l), cb.tap_gain(s, t, r, l))
              << "s=" << s << " t=" << t;
        }
      }
    }
    for (uint32_t sc = 0; sc < small.n_sc; ++sc) {
      EXPECT_EQ(cs.h(s, sc, 0, 0), cb.h(s, sc, 0, 0)) << "s=" << s;
    }
  }
}

TEST(ChannelProfiles, PerUeStreamsAreIndependentOfTheLayerCount) {
  // UE l draws from derive_seed(seed, kUeStream + l): adding a layer must
  // not move any existing layer's realization.
  Channel_config one = golden_config();
  one.n_ue = 1;
  Channel_config two = golden_config();
  ASSERT_EQ(two.n_ue, 2u);
  const Channel c1 = make(one), c2 = make(two);
  for (uint32_t s = 0; s < one.n_symb; ++s) {
    for (uint32_t t = 0; t < c1.n_taps(); ++t) {
      for (uint32_t r = 0; r < one.n_rx; ++r) {
        EXPECT_EQ(c1.tap_gain(s, t, r, 0), c2.tap_gain(s, t, r, 0))
            << "s=" << s << " t=" << t << " r=" << r;
      }
    }
  }
}

TEST(ChannelProfiles, DopplerRhoFollowsThePerUeFormula) {
  const Channel_config cfg = golden_config();
  for (uint32_t l = 0; l < 4; ++l) {
    const double fd = cfg.doppler_hz * (1.0 + 0.5 * l);
    EXPECT_DOUBLE_EQ(Channel::doppler_rho(cfg, l),
                     std::exp(-2.0 * M_PI * fd * cfg.symbol_s));
  }
  // Higher layers fade faster; zero Doppler freezes the recursion.
  EXPECT_LT(Channel::doppler_rho(cfg, 1), Channel::doppler_rho(cfg, 0));
  Channel_config still = cfg;
  still.doppler_hz = 0.0;
  EXPECT_EQ(Channel::doppler_rho(still, 3), 1.0);
  const Channel ch = make(still);
  for (uint32_t s = 1; s < still.n_symb; ++s) {
    EXPECT_EQ(ch.tap_gain(s, 0, 0, 0), ch.tap_gain(0, 0, 0, 0));
    EXPECT_EQ(ch.h(s, 5, 1, 1), ch.h(0, 5, 1, 1));
  }
}

TEST(ChannelProfiles, EmpiricalPowerDelayProfileMatchesTheTapTable) {
  // 64 antennas x 4 UEs = 256 i.i.d. samples per tap: the per-tap mean
  // power must track the table entry and the total must come out at
  // gain^2 = 1 (the flat model's per-path power).
  Channel_config cfg = golden_config();
  cfg.n_rx = 64;
  cfg.n_ue = 4;
  cfg.n_symb = 1;
  cfg.doppler_hz = 0.0;
  cfg.seed = 3;
  const Channel ch = make(cfg, 9);
  const auto& taps = phy::tdl_taps(cfg.profile);
  double total = 0.0;
  for (uint32_t t = 0; t < ch.n_taps(); ++t) {
    double power = 0.0;
    for (uint32_t r = 0; r < cfg.n_rx; ++r) {
      for (uint32_t l = 0; l < cfg.n_ue; ++l) {
        power += std::norm(ch.tap_gain(0, t, r, l));
      }
    }
    power /= static_cast<double>(cfg.n_rx) * cfg.n_ue;
    total += power;
    EXPECT_NEAR(power / taps[t].power, 1.0, 0.35) << "tap " << t;
  }
  EXPECT_NEAR(total, 1.0, 0.1);
}

TEST(ChannelProfiles, ScenarioPayloadIsInvariantAcrossProfilesAndAttempts) {
  for (const auto profile : {Channel_profile::flat, Channel_profile::tdl_a}) {
    phy::Uplink_config cfg;
    cfg.n_sc = 16;
    cfg.fft_size = 16;
    cfg.n_rx = 4;
    cfg.n_beams = 4;
    cfg.n_ue = 2;
    cfg.n_symb = 4;
    cfg.n_pilot_symb = 2;
    cfg.seed = 5;
    cfg.profile = profile;
    cfg.doppler_hz = 20.0;
    const phy::Uplink_scenario sc(cfg);
    // tx_payload_bits replays the scenario's bit draw without the channel.
    const auto replay = phy::tx_payload_bits(cfg);
    ASSERT_EQ(replay.size(), cfg.n_ue);
    for (uint32_t l = 0; l < cfg.n_ue; ++l) {
      EXPECT_EQ(replay[l], sc.tx_bits(l)) << "ue " << l;
    }
    // A retransmission carries the SAME transport block under a fresh
    // fade: bits and pilots identical, channel re-realized.
    phy::Uplink_config retx = cfg;
    retx.harq_attempt = 2;
    const phy::Uplink_scenario sc2(retx);
    for (uint32_t l = 0; l < cfg.n_ue; ++l) {
      EXPECT_EQ(sc2.tx_bits(l), sc.tx_bits(l)) << "ue " << l;
      EXPECT_EQ(sc2.pilot(l), sc.pilot(l)) << "ue " << l;
    }
    EXPECT_EQ(phy::tx_payload_bits(retx), replay);
    EXPECT_NE(sc2.channel().h(0, 0, 0, 0), sc.channel().h(0, 0, 0, 0));
  }
}

TEST(ChannelProfiles, TdlChannelMseIsScoredAgainstThePilotMeanChannel) {
  // Regression for the per-profile channel_mse fix: the CHE estimates the
  // mean channel over the pilot symbols, so at zero Doppler (channel
  // frozen) a TDL profile must score a near-noise-floor MSE and decode
  // cleanly at high SNR - frequency selectivity alone is not an error.
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qam16;
  cfg.seed = 5;
  cfg.profile = Channel_profile::tdl_a;
  cfg.doppler_hz = 0.0;
  const double gp = cfg.channel_gain * cfg.ue_power;
  cfg.sigma2 = cfg.n_ue * gp * gp * 1e-3;  // 30 dB SNR
  const phy::Uplink_scenario still(cfg);
  const auto r0 = phy::golden_receive(still);
  EXPECT_EQ(r0.ber, 0.0);
  EXPECT_LT(r0.channel_mse, 1e-3);

  // Under fast fading the estimate still tracks the pilot mean (small
  // MSE), while equalizing the moving data symbols with it degrades the
  // decode - channel aging, the HARQ loop's failure source.
  phy::Uplink_config fast = cfg;
  fast.doppler_hz = 400.0;
  const auto r1 = phy::golden_receive(phy::Uplink_scenario(fast));
  EXPECT_LT(r1.channel_mse, 0.05);
  EXPECT_GT(r1.ber, 0.0);
  EXPECT_GT(r1.evm, r0.evm);
}

}  // namespace
