// Channel-estimation and noise-estimation kernel tests.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/che_ne.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;
using kernels::Che;
using kernels::Ne;

// QPSK pilot at amplitude 0.5 per component (|x|^2 = 1/2).
std::vector<cq15> qpsk_pilot(uint32_t n_sc, uint64_t seed) {
  Rng rng(seed);
  std::vector<cq15> x(n_sc);
  for (auto& v : x) {
    const double re = rng.uniform() < 0.5 ? 0.5 : -0.5;
    const double im = rng.uniform() < 0.5 ? 0.5 : -0.5;
    v = common::to_cq15({re, im});
  }
  return x;
}

TEST(Che, RecoversChannelNoiseless) {
  const uint32_t n_sc = 32, n_b = 4, n_l = 2, n_cores = 8;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Che che(m, alloc, n_sc, n_b, n_l, n_cores);

  Rng rng(9);
  // True channel h[sc][b][l].
  std::vector<ref::cd> h(size_t{n_sc} * n_b * n_l);
  for (auto& v : h) v = rng.cnormal() * 0.2;

  std::vector<std::vector<cq15>> pilots;
  for (uint32_t l = 0; l < n_l; ++l) {
    pilots.push_back(qpsk_pilot(n_sc, 100 + l));
    che.set_pilot(l, pilots[l]);
    // Ideal code-separated observation: y_l[sc][b] = h[sc][b][l] * x_l[sc].
    std::vector<cq15> y(size_t{n_sc} * n_b);
    for (uint32_t sc = 0; sc < n_sc; ++sc) {
      for (uint32_t b = 0; b < n_b; ++b) {
        const auto prod =
            h[(sc * n_b + b) * n_l + l] * common::to_cd(pilots[l][sc]);
        y[sc * n_b + b] = common::to_cq15(prod);
      }
    }
    che.set_y_sep(l, y);
  }
  const auto rep = che.run();
  EXPECT_EQ(rep.n_cores, n_cores);

  const auto got = che.h();
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(std::abs(common::to_cd(got[i]) - h[i]), 0.0, 3e-3) << i;
  }
}

TEST(Che, MemoryStallsSmall) {
  const uint32_t n_sc = 64, n_b = 8, n_l = 2;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Che che(m, alloc, n_sc, n_b, n_l, 16);
  for (uint32_t l = 0; l < n_l; ++l) {
    che.set_pilot(l, qpsk_pilot(n_sc, l));
    che.set_y_sep(l, std::vector<cq15>(size_t{n_sc} * n_b,
                                       common::to_cq15({0.1, -0.1})));
  }
  const auto rep = che.run();
  EXPECT_LT(rep.frac_memory_stalls(), 0.15);
}

TEST(Ne, EstimatesNoiseVariance) {
  const uint32_t n_sc = 64, n_b = 8, n_l = 2, n_cores = 16;
  const double sigma2 = 0.004;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Ne ne(m, alloc, n_sc, n_b, n_l, n_cores);

  Rng rng(17);
  std::vector<ref::cd> h(size_t{n_sc} * n_b * n_l);
  for (auto& v : h) v = rng.cnormal() * 0.2;
  std::vector<std::vector<cq15>> pilots;
  for (uint32_t l = 0; l < n_l; ++l) {
    pilots.push_back(qpsk_pilot(n_sc, 300 + l));
    ne.set_pilot(l, pilots[l]);
  }
  // y = sum_l h*x + noise
  std::vector<cq15> y(size_t{n_sc} * n_b);
  for (uint32_t sc = 0; sc < n_sc; ++sc) {
    for (uint32_t b = 0; b < n_b; ++b) {
      ref::cd acc{0, 0};
      for (uint32_t l = 0; l < n_l; ++l) {
        acc += h[(sc * n_b + b) * n_l + l] * common::to_cd(pilots[l][sc]);
      }
      acc += rng.cnormal() * std::sqrt(sigma2);
      y[sc * n_b + b] = common::to_cq15(acc);
    }
  }
  ne.set_y(y);
  std::vector<cq15> hq(h.size());
  for (size_t i = 0; i < h.size(); ++i) hq[i] = common::to_cq15(h[i]);
  ne.set_h(hq);

  ne.run();
  // Estimate within a factor of ~2 (quantization floor contributes).
  EXPECT_GT(ne.sigma2(), sigma2 * 0.4);
  EXPECT_LT(ne.sigma2(), sigma2 * 2.5);
}

TEST(Ne, ZeroNoiseGivesTinyEstimate) {
  const uint32_t n_sc = 32, n_b = 4, n_l = 1;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Ne ne(m, alloc, n_sc, n_b, n_l, 8);

  Rng rng(23);
  std::vector<ref::cd> h(size_t{n_sc} * n_b);
  for (auto& v : h) v = rng.cnormal() * 0.2;
  auto pilot = qpsk_pilot(n_sc, 7);
  ne.set_pilot(0, pilot);
  std::vector<cq15> y(size_t{n_sc} * n_b);
  std::vector<cq15> hq(h.size());
  for (uint32_t sc = 0; sc < n_sc; ++sc) {
    for (uint32_t b = 0; b < n_b; ++b) {
      hq[sc * n_b + b] = common::to_cq15(h[sc * n_b + b]);
      y[sc * n_b + b] = common::to_cq15(common::to_cd(hq[sc * n_b + b]) *
                                        common::to_cd(pilot[sc]));
    }
  }
  ne.set_y(y);
  ne.set_h(hq);
  ne.run();
  EXPECT_LT(ne.sigma2(), 1e-4);
}

}  // namespace
