// Cholesky kernel tests: L L^H == G across shapes, serial/batch/pair
// equivalence, mirrored-pair load balancing, and triangular solves.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/cholesky.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;
using kernels::Chol_batch;
using kernels::Chol_pair;
using kernels::Chol_serial;
using kernels::Trisolve_batch;

// Random Hermitian positive-definite matrix with entries comfortably inside
// Q1.15: G = A^H A * s + eps*I from a small random A.
std::vector<ref::cd> random_spd(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ref::cd> a(size_t{n} * 2 * n);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 2 * n, n);
  for (uint32_t i = 0; i < n; ++i) g[i * n + i] += 0.02;
  return g;
}

std::vector<cq15> quantize(const std::vector<ref::cd>& x) {
  std::vector<cq15> q(x.size());
  for (size_t i = 0; i < x.size(); ++i) q[i] = common::to_cq15(x[i]);
  return q;
}

std::vector<ref::cd> to_cd(const std::vector<cq15>& x) {
  std::vector<ref::cd> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = common::to_cd(x[i]);
  return y;
}

// || L L^H - G ||_max
double reconstruction_error(const std::vector<ref::cd>& g,
                            const std::vector<cq15>& lq, uint32_t n) {
  const auto l = to_cd(lq);
  double worst = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      ref::cd acc{0, 0};
      for (uint32_t k = 0; k < n; ++k) {
        acc += l[i * n + k] * std::conj(l[j * n + k]);
      }
      worst = std::max(worst, std::abs(acc - g[i * n + j]));
    }
  }
  return worst;
}

class CholSerialP : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CholSerialP, ReconstructsG) {
  const uint32_t n = GetParam();
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Chol_serial chol(m, alloc, n, 1);

  const auto g = random_spd(n, 100 + n);
  chol.set_g(0, quantize(g));
  const auto rep = chol.run();
  EXPECT_GT(rep.instrs, 0u);
  EXPECT_LT(reconstruction_error(g, chol.l(0), n), 5e-3) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholSerialP, ::testing::Values(4, 8, 16, 32));

TEST(CholBatch, ManyIndependentMatrices) {
  const uint32_t n = 4, per_core = 3, n_cores = 16;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Chol_batch chol(m, alloc, n, per_core, n_cores);

  std::vector<std::vector<ref::cd>> gs;
  for (uint32_t c = 0; c < n_cores; ++c) {
    for (uint32_t i = 0; i < per_core; ++i) {
      gs.push_back(random_spd(n, 7000 + c * per_core + i));
      chol.set_g(c, i, quantize(gs.back()));
    }
  }
  const auto rep = chol.run();
  EXPECT_EQ(rep.n_cores, n_cores);
  for (uint32_t c = 0; c < n_cores; ++c) {
    for (uint32_t i = 0; i < per_core; ++i) {
      EXPECT_LT(reconstruction_error(gs[c * per_core + i], chol.l(c, i), n),
                5e-3);
    }
  }
}

TEST(CholBatch, MatchesSerialBitExactly) {
  const uint32_t n = 4;
  const auto g = random_spd(n, 77);
  const auto gq = quantize(g);

  sim::Machine m1(arch::Cluster_config::minipool());
  arch::L1_alloc a1(m1.config());
  Chol_serial s(m1, a1, n, 1);
  s.set_g(0, gq);
  s.run();

  sim::Machine m2(arch::Cluster_config::minipool());
  arch::L1_alloc a2(m2.config());
  Chol_batch b(m2, a2, n, 1, 1);
  b.set_g(0, 0, gq);
  b.run();

  EXPECT_EQ(s.l(0), b.l(0, 0));
}

TEST(CholPair, BothMatricesCorrect) {
  const uint32_t n = 16;  // 4 cores per pair on minipool
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Chol_pair chol(m, alloc, n, 2);

  std::vector<std::vector<ref::cd>> gs;
  for (uint32_t pr = 0; pr < 2; ++pr) {
    for (uint32_t w = 0; w < 2; ++w) {
      gs.push_back(random_spd(n, 900 + pr * 2 + w));
      chol.set_g(pr, w, quantize(gs.back()));
    }
  }
  const auto rep = chol.run();
  EXPECT_EQ(rep.n_cores, 8u);
  for (uint32_t pr = 0; pr < 2; ++pr) {
    for (uint32_t w = 0; w < 2; ++w) {
      EXPECT_LT(reconstruction_error(gs[pr * 2 + w], chol.l(pr, w), n), 8e-3)
          << "pair " << pr << " which " << w;
    }
  }
}

TEST(CholPair, MatchesSerialValues) {
  const uint32_t n = 16;
  const auto g0 = random_spd(n, 1234);
  const auto g1 = random_spd(n, 1235);

  sim::Machine m1(arch::Cluster_config::minipool());
  arch::L1_alloc a1(m1.config());
  Chol_serial s(m1, a1, n, 2);
  s.set_g(0, quantize(g0));
  s.set_g(1, quantize(g1));
  s.run();

  sim::Machine m2(arch::Cluster_config::minipool());
  arch::L1_alloc a2(m2.config());
  Chol_pair p(m2, a2, n, 1);
  p.set_g(0, 0, quantize(g0));
  p.set_g(0, 1, quantize(g1));
  p.run();

  EXPECT_EQ(s.l(0), p.l(0, 0));
  EXPECT_EQ(s.l(1), p.l(0, 1));
}

// The mirrored couple balances the staircase: a pair decomposition should
// not take much longer than 2x a half-sized... instead, compare WFI overhead
// of mirrored pair vs. two sequential single-matrix runs on the same cores.
TEST(CholPair, MirroringBalancesLoad) {
  const uint32_t n = 16;
  const auto g0 = random_spd(n, 555);
  const auto g1 = random_spd(n, 556);

  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Chol_pair pair(m, alloc, n, 1);
  pair.set_g(0, 0, quantize(g0));
  pair.set_g(0, 1, quantize(g1));
  const auto rep = pair.run();

  // Utilization should be reasonable despite the staircase.
  EXPECT_GT(rep.ipc(), 0.3);
  // And the fraction of WFI idle time bounded.
  EXPECT_LT(rep.frac(sim::Stall::wfi), 0.5);
}

TEST(CholBatch, DivSqrtStallsVisible) {
  // The Cholesky kernel's signature in the paper: RAW + ext-unit stalls from
  // the divider/sqrt, unlike FFT/MMM.
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Chol_batch chol(m, alloc, 4, 4, 16);
  for (uint32_t c = 0; c < 16; ++c) {
    for (uint32_t i = 0; i < 4; ++i) {
      chol.set_g(c, i, quantize(random_spd(4, 3000 + c * 4 + i)));
    }
  }
  const auto rep = chol.run();
  EXPECT_GT(rep.frac(sim::Stall::raw) + rep.frac(sim::Stall::extunit), 0.05);
}

// --- triangular solves ------------------------------------------------------

TEST(Trisolve, SolvesAgainstReference) {
  const uint32_t n = 4, per_core = 2, n_cores = 8;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Trisolve_batch ts(m, alloc, n, per_core, n_cores);

  struct Sys {
    std::vector<ref::cd> l, y, want;
  };
  std::vector<Sys> systems;
  for (uint32_t c = 0; c < n_cores; ++c) {
    for (uint32_t i = 0; i < per_core; ++i) {
      // Well-scaled system (diagonally dominated, as after LMMSE
      // regularization): Q1.15 solves need |x| < 1 throughout.
      auto g = random_spd(n, 4000 + c * per_core + i);
      for (uint32_t d = 0; d < n; ++d) g[d * n + d] += 0.5;
      Sys s;
      s.l = ref::cholesky(g, n);
      Rng rng(5000 + c * per_core + i);
      s.y.resize(n);
      for (auto& v : s.y) v = rng.cnormal() * 0.05;
      s.want = ref::backward_solve(s.l, ref::forward_solve(s.l, s.y, n), n);
      // Pack the lower triangle and rhs.
      std::vector<cq15> lq(size_t{n} * n, cq15{});
      for (uint32_t r = 0; r < n; ++r) {
        for (uint32_t col = 0; col <= r; ++col) {
          lq[r * n + col] = common::to_cq15(s.l[r * n + col]);
        }
      }
      std::vector<cq15> yq(n);
      for (uint32_t r = 0; r < n; ++r) yq[r] = common::to_cq15(s.y[r]);
      ts.set_system(c, i, lq, yq);
      systems.push_back(std::move(s));
    }
  }
  ts.run();
  size_t si = 0;
  for (uint32_t c = 0; c < n_cores; ++c) {
    for (uint32_t i = 0; i < per_core; ++i, ++si) {
      const auto got = to_cd(ts.x(c, i));
      for (uint32_t r = 0; r < n; ++r) {
        EXPECT_NEAR(std::abs(got[r] - systems[si].want[r]), 0.0, 0.05)
            << "core " << c << " sys " << i << " row " << r;
      }
    }
  }
}

}  // namespace
