// Complexity model (Table I / Fig. 3) and use-case chain structure tests.
#include <gtest/gtest.h>

#include "common/table.h"
#include "pusch/use_case_rollup.h"
#include "pusch/complexity.h"

namespace {

using namespace pp;
using pusch::Pusch_dims;
using pusch::pusch_macs;

TEST(Complexity, TableOneFormulas) {
  Pusch_dims d;  // paper use case, NL defaults to 4
  const auto s = pusch_macs(d);
  EXPECT_DOUBLE_EQ(s.ofdm, 14.0 * 64 * 4096 * 12);       // log2(4096) = 12
  EXPECT_DOUBLE_EQ(s.bf, 14.0 * 4096 * 64 * 32);
  EXPECT_DOUBLE_EQ(s.mimo, 12.0 * 4096 * (64.0 / 3 + 32.0));
  EXPECT_DOUBLE_EQ(s.che, 2.0 * 4096 * 32 * 4);
  EXPECT_DOUBLE_EQ(s.ne, 2.0 * 4096 * 2 * 32 * 4);
}

TEST(Complexity, SharesSumToOne) {
  for (uint32_t nl : {1u, 2u, 4u, 8u, 16u}) {
    Pusch_dims d;
    d.n_ue = nl;
    const auto s = pusch_macs(d);
    EXPECT_NEAR((s.ofdm + s.bf + s.mimo + s.che + s.ne) / s.total(), 1.0,
                1e-12);
  }
}

TEST(Complexity, OfdmAndBfDominate) {
  // Paper Fig. 3: OFDM + BF together carry most of the work at low UE
  // counts.  In MAC terms BF is the larger of the two (NR*NB per
  // sub-carrier vs log2(N) per antenna); OFDM dominates *cycles* because
  // the butterfly is less MAC-dense (Fig. 9c).
  Pusch_dims d;
  d.n_ue = 4;
  const auto s = pusch_macs(d);
  EXPECT_GT((s.ofdm + s.bf) / s.total(), 0.9);
  EXPECT_GT(s.bf, s.ofdm);
}

TEST(Complexity, MimoShareGrowsWithUes) {
  double prev = 0.0;
  for (uint32_t nl : {1u, 2u, 4u, 8u, 16u}) {
    Pusch_dims d;
    d.n_ue = nl;
    const auto s = pusch_macs(d);
    const double share = s.mimo / s.total();
    EXPECT_GT(share, prev);
    prev = share;
  }
  EXPECT_GT(prev, 0.1);  // at 16 UEs MIMO is a major stage
}

TEST(ChainSim, MiniUseCaseStructure) {
  // A scaled-down use case runs end to end and produces a sane roll-up.
  pusch::Chain_config cfg;
  cfg.cluster = arch::Cluster_config::minipool();
  cfg.dims.fft_size = 256;
  cfg.dims.n_rx = 4;
  cfg.dims.n_beams = 4;
  cfg.dims.n_ue = 4;
  const auto res = pusch::run_use_case(cfg);
  ASSERT_EQ(res.stages.size(), 3u);
  EXPECT_GT(res.parallel_cycles, 0u);
  EXPECT_GT(res.serial_cycles, res.parallel_cycles);
  EXPECT_GT(res.speedup(), 4.0);  // 16 cores, imperfect efficiency
  for (const auto& st : res.stages) {
    EXPECT_GT(st.rep.cycles, 0u) << st.name;
    EXPECT_GT(st.times, 0u) << st.name;
  }
}

TEST(Table, FormatsAlignedColumns) {
  common::Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(common::Table::pct(0.5), "50.0%");
  EXPECT_EQ(common::Table::fmt(1.236, 2), "1.24");
}

}  // namespace
