// Compile-level checks on the deprecated pusch/ header shims.
//
// chain_sim.h and sim_chain.h must (a) still compile and alias the renamed
// APIs, and (b) keep emitting their #warning diagnostics - scripts/check.sh
// compiles each shim standalone and greps the compiler output for the
// deprecation text, which is what proves the warning is still there (and
// that the shim still compiles).  This TU covers (a); it is
// built with -Wno-cpp (see CMakeLists.txt - GCC ignores the diagnostic
// pragma for #warning) so the expected deprecation noise stays out of the
// regular build log.
#include <gtest/gtest.h>

#include "pusch/chain_sim.h"
#include "pusch/sim_chain.h"

namespace {

using namespace pp;

TEST(DeprecatedShims, ChainSimStillAliasesUseCaseRollup) {
  // The shim must forward to pusch/use_case_rollup.h: the legacy type
  // aliases resolve to the runtime preset types.
  static_assert(std::is_same_v<pusch::Chain_config, runtime::Use_case_options>);
  static_assert(std::is_same_v<pusch::Chain_result, runtime::Rollup_result>);
  pusch::Chain_config cfg;
  EXPECT_TRUE(cfg.batch_cholesky);  // defaults reachable through the alias
}

TEST(DeprecatedShims, SimChainStillAliasesUplinkChain) {
  static_assert(std::is_same_v<pusch::Sim_chain_result, runtime::Slot_result>);
  // run_sim_uplink stays declared; taking its address forces the reference.
  auto* fn = &pusch::run_sim_uplink;
  EXPECT_NE(fn, nullptr);
}

}  // namespace
