// FFT kernel tests: geometry invariants, serial and parallel functional
// correctness vs. the reference DFT, layout locality, and batching variants.
#include <gtest/gtest.h>

#include <complex>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/fft.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;
using kernels::Fft_geom;
using kernels::Fft_parallel;
using kernels::Fft_serial;

std::vector<cq15> random_signal(uint32_t n, uint64_t seed, double amp = 0.3) {
  Rng rng(seed);
  std::vector<cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp * M_SQRT1_2);
  return x;
}

std::vector<ref::cd> to_cd(const std::vector<cq15>& x) {
  std::vector<ref::cd> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = common::to_cd(x[i]);
  return y;
}

// --- geometry ---------------------------------------------------------------

TEST(FftGeom, StagesAndDistances) {
  Fft_geom g(256);
  EXPECT_EQ(g.stages, 4u);
  EXPECT_EQ(g.d(0), 64u);
  EXPECT_EQ(g.d(3), 1u);
  EXPECT_EQ(g.cores(), 16u);
}

TEST(FftGeom, ElemLocateRoundTrip) {
  for (uint32_t n : {16u, 64u, 256u, 1024u}) {
    Fft_geom g(n);
    for (uint32_t k = 0; k < g.stages; ++k) {
      for (uint32_t i = 0; i < n; ++i) {
        const auto gj = g.locate(k, i);
        EXPECT_EQ(g.elem(k, gj.g, gj.j), i) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(FftGeom, PlacementIsBijective) {
  Fft_geom g(256);
  for (uint32_t k = 0; k < g.stages; ++k) {
    std::vector<bool> seen(g.n, false);
    for (uint32_t i = 0; i < g.n; ++i) {
      const auto cs = g.place(k, i);
      const uint32_t flat = cs.core * 16 + cs.slot;
      ASSERT_LT(cs.slot, 16u);
      ASSERT_LT(cs.core, g.cores());
      EXPECT_FALSE(seen[flat]);
      seen[flat] = true;
    }
  }
}

TEST(FftGeom, DigitrevIsInvolution) {
  Fft_geom g(1024);
  for (uint32_t i = 0; i < g.n; ++i) {
    EXPECT_EQ(g.digitrev(g.digitrev(i)), i);
  }
}

// Butterfly loads of each core land in its 4 banks, one row per butterfly
// (the paper's folded layout, Fig. 5).
TEST(FftGeom, FoldedLayoutIsRowPerButterfly) {
  Fft_geom g(256);
  for (uint32_t k = 0; k < g.stages; ++k) {
    for (uint32_t bf = 0; bf < g.n / 4; ++bf) {
      for (uint32_t j = 0; j < 4; ++j) {
        const auto cs = g.place(k, g.elem(k, bf, j));
        EXPECT_EQ(cs.core, bf / 4);
        EXPECT_EQ(cs.slot, (bf % 4) * 4 + j);
      }
    }
  }
}

// --- serial kernel ----------------------------------------------------------

class FftSerialP : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FftSerialP, MatchesReferenceDft) {
  const uint32_t n = GetParam();
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_serial fft(m, alloc, n);

  const auto x = random_signal(n, 42 + n);
  fft.set_input(0, x);
  const auto rep = fft.run();
  EXPECT_GT(rep.instrs, 0u);

  const auto want = ref::dft(to_cd(x));
  const auto got = to_cd(fft.output(0));
  EXPECT_GT(ref::sqnr_db(want, got), 30.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSerialP, ::testing::Values(16, 64, 256));

TEST(FftSerial, ImpulseGivesFlatSpectrum) {
  const uint32_t n = 64;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_serial fft(m, alloc, n);

  std::vector<cq15> x(n, cq15{});
  x[0] = common::to_cq15({0.5, 0.0});
  fft.set_input(0, x);
  fft.run();
  const auto y = fft.output(0);
  // X[k] = 0.5/N for all k.
  for (uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(common::from_q15(y[k].re), 0.5 / n, 2e-3) << k;
    EXPECT_NEAR(common::from_q15(y[k].im), 0.0, 2e-3) << k;
  }
}

TEST(FftSerial, LinearityUnderScaling) {
  const uint32_t n = 64;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_serial a(m, alloc, n), b(m, alloc, n);

  const auto x = random_signal(n, 7);
  std::vector<cq15> x2(n);
  for (uint32_t i = 0; i < n; ++i) {
    x2[i] = cq15{static_cast<int16_t>(x[i].re / 2),
                 static_cast<int16_t>(x[i].im / 2)};
  }
  a.set_input(0, x);
  b.set_input(0, x2);
  a.run(0);
  b.run(0);
  const auto ya = to_cd(a.output(0));
  const auto yb = to_cd(b.output(0));
  for (uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(ya[k] - 2.0 * yb[k]), 0.0, 5e-3);
  }
}

// --- parallel kernel --------------------------------------------------------

class FftParallelP : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FftParallelP, MatchesReferenceDft) {
  const uint32_t n = GetParam();
  // minipool has 16 cores -> fits up to 256-point FFTs.
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_parallel fft(m, alloc, n);

  const auto x = random_signal(n, 1000 + n);
  fft.set_input(0, 0, x);
  const auto rep = fft.run();
  EXPECT_EQ(rep.n_cores, n / 16);

  const auto want = ref::dft(to_cd(x));
  const auto got = to_cd(fft.output(0, 0));
  EXPECT_GT(ref::sqnr_db(want, got), 30.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftParallelP, ::testing::Values(16, 64, 256));

// Parallel and serial kernels produce bit-identical Q15 results.
TEST(FftParallel, BitIdenticalToSerial) {
  const uint32_t n = 256;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_serial s(m, alloc, n);
  Fft_parallel p(m, alloc, n);

  const auto x = random_signal(n, 99);
  s.set_input(0, x);
  p.set_input(0, 0, x);
  s.run();
  p.run();
  const auto ys = s.output(0);
  const auto yp = p.output(0, 0);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ys[i], yp[i]) << "bin " << i;
  }
}

// Multiple concurrent instances compute independent transforms.
TEST(FftParallel, ConcurrentInstancesIndependent) {
  const uint32_t n = 64;  // 4 cores per gang; 4 gangs on 16 cores
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_parallel fft(m, alloc, n, 4);

  std::vector<std::vector<cq15>> xs;
  for (uint32_t inst = 0; inst < 4; ++inst) {
    xs.push_back(random_signal(n, 5000 + inst));
    fft.set_input(inst, 0, xs.back());
  }
  const auto rep = fft.run();
  EXPECT_EQ(rep.n_cores, 16u);
  for (uint32_t inst = 0; inst < 4; ++inst) {
    const auto want = ref::dft(to_cd(xs[inst]));
    EXPECT_GT(ref::sqnr_db(want, to_cd(fft.output(inst, 0))), 30.0);
  }
}

// Replicating independent FFTs between barriers (paper's batching) keeps
// results correct and reduces synchronization overhead per FFT.
TEST(FftParallel, RepsBatchingCorrectAndCheaper) {
  const uint32_t n = 64;
  const uint32_t reps = 4;

  sim::Machine m1(arch::Cluster_config::minipool());
  arch::L1_alloc alloc1(m1.config());
  Fft_parallel batched(m1, alloc1, n, 1, reps);
  std::vector<std::vector<cq15>> xs;
  for (uint32_t r = 0; r < reps; ++r) {
    xs.push_back(random_signal(n, 31 + r));
    batched.set_input(0, r, xs.back());
  }
  const auto rep_b = batched.run();
  for (uint32_t r = 0; r < reps; ++r) {
    EXPECT_GT(ref::sqnr_db(ref::dft(to_cd(xs[r])), to_cd(batched.output(0, r))),
              30.0);
  }

  // Unbatched: one FFT at a time, reps times.
  sim::Machine m2(arch::Cluster_config::minipool());
  arch::L1_alloc alloc2(m2.config());
  uint64_t unbatched_cycles = 0;
  for (uint32_t r = 0; r < reps; ++r) {
    Fft_parallel single(m2, alloc2, n, 1, 1);
    single.set_input(0, 0, xs[r]);
    unbatched_cycles += single.run().cycles;
  }
  EXPECT_LT(rep_b.cycles, unbatched_cycles);
  // Batching amortizes barriers: fewer WFI cycles in total.
  EXPECT_GT(rep_b.ipc(), 0.0);
}

// The folded layout makes every butterfly load local (1-cycle): with data
// local and conflict-free, RAW+LSU stalls stay small (paper: < 10%).
TEST(FftParallel, MemoryStallsAreSmall) {
  const uint32_t n = 256;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Fft_parallel fft(m, alloc, n);
  fft.set_input(0, 0, random_signal(n, 3));
  const auto rep = fft.run();
  EXPECT_LT(rep.frac_memory_stalls(), 0.10)
      << "lsu=" << rep.frac(sim::Stall::lsu) << " raw=" << rep.frac(sim::Stall::raw);
}

}  // namespace
