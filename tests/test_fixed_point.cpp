// Q1.15 arithmetic layer: conversion, saturation, rounding, division,
// square root, and the packed-complex operations the kernels build on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/complex16.h"
#include "common/fixed_point.h"
#include "common/rng.h"

namespace {

using namespace pp::common;

TEST(Q15, ConversionRoundTrip) {
  for (double x : {0.0, 0.5, -0.5, 0.25, -0.99, 0.99}) {
    EXPECT_NEAR(from_q15(to_q15(x)), x, 1.0 / q15_one);
  }
}

TEST(Q15, SaturatesAtBounds) {
  EXPECT_EQ(to_q15(1.0), q15_max);
  EXPECT_EQ(to_q15(2.0), q15_max);
  EXPECT_EQ(to_q15(-1.0), q15_min);
  EXPECT_EQ(to_q15(-3.0), q15_min);
  EXPECT_EQ(add_q15(q15_max, q15_max), q15_max);
  EXPECT_EQ(sub_q15(q15_min, q15_max), q15_min);
}

TEST(Q15, MultiplyMatchesDouble) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform() * 1.9 - 0.95;
    const double b = rng.uniform() * 1.9 - 0.95;
    const int16_t qa = to_q15(a), qb = to_q15(b);
    EXPECT_NEAR(from_q15(mul_q15(qa, qb)), from_q15(qa) * from_q15(qb),
                1.0 / q15_one);
  }
}

TEST(Q15, DivisionMatchesDouble) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform() * 0.4 - 0.2;
    const double b = rng.uniform() * 0.7 + 0.25;  // away from zero
    const int16_t qa = to_q15(a), qb = to_q15(b);
    EXPECT_NEAR(from_q15(div_q15(qa, qb)), from_q15(qa) / from_q15(qb),
                2.0 / q15_one)
        << a << "/" << b;
  }
}

TEST(Q15, DivisionByZeroSaturates) {
  EXPECT_EQ(div_q15(to_q15(0.5), 0), q15_max);
  EXPECT_EQ(div_q15(to_q15(-0.5), 0), q15_min);
}

TEST(Q15, SqrtMatchesDouble) {
  // Compare against the sqrt of the *quantized* input: near zero the sqrt
  // curve is steep, so input quantization dominates any implementation.
  for (int i = 0; i <= 1000; ++i) {
    const double x = i / 1000.0 * 0.99;
    const int16_t q = to_q15(x);
    EXPECT_NEAR(from_q15(sqrt_q15(q)), std::sqrt(from_q15(q)), 2.0 / q15_one)
        << x;
  }
  EXPECT_EQ(sqrt_q15(0), 0);
  EXPECT_EQ(sqrt_q15(-100), 0);  // clamped
}

TEST(Isqrt, ExactOnSquares) {
  for (uint32_t v = 0; v < 2000; ++v) {
    EXPECT_EQ(isqrt_u32(v * v), v);
    if (v > 1) {
      EXPECT_EQ(isqrt_u32(v * v - 1), v - 1);
    }
  }
}

TEST(Cq15, PackUnpackRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const cq15 v{static_cast<int16_t>(rng.next_u32()),
                 static_cast<int16_t>(rng.next_u32())};
    EXPECT_EQ(unpack_cq15(pack_cq15(v)), v);
  }
}

TEST(Cq15, ComplexMultiplyMatchesDouble) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const cq15 a = to_cq15(rng.cnormal() * 0.3);
    const cq15 b = to_cq15(rng.cnormal() * 0.3);
    const auto want = to_cd(a) * to_cd(b);
    const auto got = to_cd(cmul(a, b));
    EXPECT_NEAR(std::abs(got - want), 0.0, 3.0 / q15_one);
  }
}

TEST(Cq15, JRotations) {
  const cq15 a = to_cq15({0.25, -0.5});
  const std::complex<double> pj{0, 1};
  const std::complex<double> mj{0, -1};
  EXPECT_EQ(to_cd(cmul_j(a)), to_cd(a) * pj);
  EXPECT_EQ(to_cd(cmul_mj(a)), to_cd(a) * mj);
}

TEST(Cq15, WideAccumulatorIsExactOverLongChains) {
  // 4096 MACs of +-0.1 values cannot lose precision in the wide accumulator.
  Rng rng(5);
  cacc acc;
  std::complex<double> want{0, 0};
  std::vector<cq15> as, bs;
  for (int i = 0; i < 4096; ++i) {
    as.push_back(to_cq15(rng.cnormal() * 0.01));
    bs.push_back(to_cq15(rng.cnormal() * 0.01));
    acc.mac(as.back(), bs.back());
    want += to_cd(as.back()) * to_cd(bs.back());
  }
  EXPECT_NEAR(std::abs(to_cd(acc.round()) - want), 0.0, 2.0 / q15_one);
}

TEST(Cq15, MacConjMatchesMsuConj) {
  Rng rng(6);
  const cq15 a = to_cq15(rng.cnormal() * 0.2);
  const cq15 b = to_cq15(rng.cnormal() * 0.2);
  cacc up, down;
  up.mac_conj(a, b);
  down.msu_conj(a, b);
  EXPECT_EQ(up.re, -down.re);
  EXPECT_EQ(up.im, -down.im);
  const auto want = to_cd(a) * std::conj(to_cd(b));
  EXPECT_NEAR(std::abs(to_cd(up.round()) - want), 0.0, 2.0 / q15_one);
}

TEST(Cq15, ScalingShifts) {
  const cq15 a = to_cq15({0.5, -0.25});
  EXPECT_NEAR(to_cd(chalf(a)).real(), 0.25, 1e-4);
  EXPECT_NEAR(to_cd(cquarter(a)).imag(), -0.0625, 1e-4);
}

// ---- edge-case semantics ---------------------------------------------------
//
// The Q15 layer is the shared value contract between the simulated kernels
// and the fixed-point host backend (src/fixed/), so its corner behavior is
// pinned exactly - docs/DETERMINISM.md section 7 documents these semantics
// and any change here breaks sim/fixed bit parity.

TEST(Q15, ToQ15SaturatesArbitrarilyLargeInputs) {
  // The double -> int64 cast must never be reached out of range (UB);
  // saturation happens on the double side first.
  EXPECT_EQ(to_q15(1e18), q15_max);
  EXPECT_EQ(to_q15(-1e18), q15_min);
  EXPECT_EQ(to_q15(32767.5 / 32768.0), q15_max);   // rounds up into the clamp
  EXPECT_EQ(to_q15(-32768.5 / 32768.0), q15_min);  // rounds down into it
}

TEST(Q15, ToQ15RoundsHalfAwayFromZero) {
  EXPECT_EQ(to_q15(0.5 / 32768.0), 1);
  EXPECT_EQ(to_q15(-0.5 / 32768.0), -1);
  EXPECT_EQ(to_q15(1.5 / 32768.0), 2);
  EXPECT_EQ(to_q15(-1.5 / 32768.0), -2);
  EXPECT_EQ(to_q15(0.49 / 32768.0), 0);
  EXPECT_EQ(to_q15(-0.49 / 32768.0), 0);
}

TEST(Q15, MinTimesMinSaturatesToMax) {
  // (-1) * (-1) = +1 is not representable: the product 0x4000'0000 rounds
  // and shifts to 0x8000, one past q15_max, and must saturate - not wrap.
  EXPECT_EQ(mul_q15(q15_min, q15_min), q15_max);
  EXPECT_EQ(mul_q15(q15_min, q15_max), static_cast<int16_t>(-32767));
}

TEST(Q15, DivisionRoundsToNearestOnBothSigns) {
  // (1/32768) / (3/32768) = 10922.67 ulp: the sign-matched half-offset on
  // the numerator must round negative quotients to nearest too - plain C
  // truncation would give -10922.
  EXPECT_EQ(div_q15(1, 3), 10923);
  EXPECT_EQ(div_q15(-1, 3), -10923);
  EXPECT_EQ(div_q15(-3, to_q15(0.5)), -6);  // exact quotient, no rounding
  EXPECT_EQ(div_q15(1, q15_max), 1);        // 1.00003 -> 1 either sign
  EXPECT_EQ(div_q15(-1, q15_max), -1);
}

TEST(Cq15, NegationOfMinSaturates) {
  // -INT16_MIN does not exist in int16; cneg/cconj must clamp to q15_max
  // (the arithmetic is widened before the negate, never UB).
  const cq15 v{q15_min, q15_min};
  EXPECT_EQ(cneg(v).re, q15_max);
  EXPECT_EQ(cneg(v).im, q15_max);
  EXPECT_EQ(cconj(v).re, q15_min);
  EXPECT_EQ(cconj(v).im, q15_max);
  EXPECT_EQ(cmul_mj(v).re, q15_min);  // {im, sat(-re)}
  EXPECT_EQ(cmul_mj(v).im, q15_max);
}

TEST(Cq15, ComplexMultiplyMinMinCorner) {
  // The one spot where the cross-product sum leaves int32: both operands
  // {-0x8000, -0x8000} give an imaginary sum of exactly +2^31.  The widened
  // scalar math (and the SIMD blend patch) must produce {0, q15_max}.
  const cq15 m{q15_min, q15_min};
  const cq15 r = cmul(m, m);
  EXPECT_EQ(r.re, 0);
  EXPECT_EQ(r.im, q15_max);
}

TEST(Cq15, AccumulatorRoundingIsHalfUpNotHalfAwayFromZero) {
  // cacc::round() adds +2^14 then arithmetic-shifts: exact halves round
  // toward +inf for both signs.  This is asymmetric with to_q15 (half away
  // from zero) and deliberate - it is what the simulated kernels compute,
  // so the fixed backend must reproduce it, not "fix" it.
  cacc acc;
  acc.re = -(int64_t{1} << 14);  // -0.5 ulp
  acc.im = (int64_t{1} << 14);   // +0.5 ulp
  const cq15 r = acc.round();
  EXPECT_EQ(r.re, 0);  // half *up*, not away from zero (-1)
  EXPECT_EQ(r.im, 1);
  cacc acc2;
  acc2.re = -(int64_t{1} << 14) - 1;  // just below -0.5 ulp
  EXPECT_EQ(acc2.round().re, -1);
}

TEST(Cq15, HalvingShiftsFloorOnNegatives) {
  // chalf/cquarter are arithmetic shifts: they round toward -inf, so -1
  // stays -1 (not 0).  Pinned because the FFT pre-scaling depends on it.
  const cq15 v{-1, -3};
  EXPECT_EQ(chalf(v).re, -1);
  EXPECT_EQ(chalf(v).im, -2);
  EXPECT_EQ(cquarter(v).re, -1);
  EXPECT_EQ(cquarter(v).im, -1);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  Rng c(43);
  double mean = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += c.uniform();
  EXPECT_NEAR(mean / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double m1 = 0, m2 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    m1 += v;
    m2 += v * v;
  }
  EXPECT_NEAR(m1 / n, 0.0, 0.03);
  EXPECT_NEAR(m2 / n, 1.0, 0.05);
}

}  // namespace
