// Gramian + matched-filter kernel tests vs. the double-precision reference.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/gram.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;
using kernels::Gram_batch;

TEST(Gram, MatchesReferenceGramAndMatchedFilter) {
  const uint32_t n_sc = 32, n_b = 8, n_l = 4, n_cores = 8;
  const double sigma2 = 0.02;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Gram_batch gram(m, alloc, n_sc, n_b, n_l, n_cores);

  Rng rng(5);
  std::vector<ref::cd> h(size_t{n_sc} * n_b * n_l);
  std::vector<ref::cd> y(size_t{n_sc} * n_b);
  for (auto& v : h) v = rng.cnormal() * 0.15;
  for (auto& v : y) v = rng.cnormal() * 0.1;

  std::vector<cq15> hq(h.size()), yq(y.size());
  for (size_t i = 0; i < h.size(); ++i) hq[i] = common::to_cq15(h[i]);
  for (size_t i = 0; i < y.size(); ++i) yq[i] = common::to_cq15(y[i]);
  gram.set_h(hq);
  gram.set_y(yq);
  gram.set_sigma2(common::to_q15(sigma2));

  const auto rep = gram.run();
  EXPECT_EQ(rep.n_cores, n_cores);
  EXPECT_GT(rep.ipc(), 0.5);

  for (uint32_t sc = 0; sc < n_sc; ++sc) {
    // Reference per-subcarrier H (n_b x n_l) from the quantized inputs.
    std::vector<ref::cd> hsc(size_t{n_b} * n_l);
    std::vector<ref::cd> ysc(n_b);
    for (uint32_t b = 0; b < n_b; ++b) {
      for (uint32_t l = 0; l < n_l; ++l) {
        hsc[b * n_l + l] = common::to_cd(hq[(size_t{sc} * n_b + b) * n_l + l]);
      }
      ysc[b] = common::to_cd(yq[size_t{sc} * n_b + b]);
    }
    auto want_g = ref::gram(hsc, n_b, n_l);
    for (uint32_t i = 0; i < n_l; ++i) want_g[i * n_l + i] += sigma2;

    const auto got_g = gram.g(sc);
    for (uint32_t i = 0; i < n_l; ++i) {
      for (uint32_t j = 0; j < n_l; ++j) {
        EXPECT_NEAR(std::abs(common::to_cd(got_g[i * n_l + j]) -
                             want_g[i * n_l + j]),
                    0.0, 2e-3)
            << "sc " << sc << " (" << i << "," << j << ")";
      }
    }
    // Matched filter rhs = H^H y.
    const auto got_r = gram.rhs(sc);
    for (uint32_t i = 0; i < n_l; ++i) {
      ref::cd want{0, 0};
      for (uint32_t b = 0; b < n_b; ++b) {
        want += std::conj(hsc[b * n_l + i]) * ysc[b];
      }
      EXPECT_NEAR(std::abs(common::to_cd(got_r[i]) - want), 0.0, 2e-3);
    }
  }
}

TEST(Gram, OutputIsHermitian) {
  const uint32_t n_sc = 16, n_b = 4, n_l = 4;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Gram_batch gram(m, alloc, n_sc, n_b, n_l, 16);

  Rng rng(7);
  std::vector<cq15> hq(size_t{n_sc} * n_b * n_l), yq(size_t{n_sc} * n_b);
  for (auto& v : hq) v = common::to_cq15(rng.cnormal() * 0.2);
  for (auto& v : yq) v = common::to_cq15(rng.cnormal() * 0.1);
  gram.set_h(hq);
  gram.set_y(yq);
  gram.set_sigma2(common::to_q15(0.01));
  gram.run();

  for (uint32_t sc = 0; sc < n_sc; ++sc) {
    const auto g = gram.g(sc);
    for (uint32_t i = 0; i < n_l; ++i) {
      EXPECT_EQ(g[i * n_l + i].im, 0) << "diagonal must be real";
      EXPECT_GT(g[i * n_l + i].re, 0) << "diagonal must be positive";
      for (uint32_t j = 0; j < n_l; ++j) {
        EXPECT_EQ(g[i * n_l + j], common::cconj(g[j * n_l + i]));
      }
    }
  }
}

}  // namespace
