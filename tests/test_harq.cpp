// HARQ chase combining (runtime/harq.h) and the scheduler's
// retransmission loop (runtime/scheduler.h, max_harq > 0): hand-walked
// combiner cases where the symbol average can be followed by eye, the
// max_harq = 0 compatibility guarantee, and the retransmission schedule /
// verdict accounting on a fading traffic mix.
#include <gtest/gtest.h>

#include "phy/qam.h"
#include "runtime/harq.h"
#include "runtime/scheduler.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;
using runtime::Harq_combiner;
using runtime::Schedule_result;
using runtime::Scheduler_options;
using runtime::Slot_result;
using runtime::Slot_scheduler;
using runtime::Traffic_cell;
using runtime::Traffic_config;
using runtime::Traffic_source;

// A one-UE QPSK slot small enough to hand-walk: 1 data symbol x 4
// sub-carriers x 2 bits = 8 payload bits.
phy::Uplink_config tiny_config() {
  phy::Uplink_config cfg;
  cfg.n_sc = 4;
  cfg.fft_size = 4;
  cfg.n_rx = 2;
  cfg.n_beams = 2;
  cfg.n_ue = 1;
  cfg.n_symb = 3;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qpsk;
  cfg.seed = 9;
  return cfg;
}

// The constellation points the tiny config's payload modulates to - the
// "perfect equalizer output" attempt.
std::vector<phy::cd> tiny_points(const phy::Uplink_config& cfg) {
  return phy::qam_modulate(cfg.qam, phy::tx_payload_bits(cfg)[0]);
}

Slot_result attempt(const std::vector<phy::cd>& symbols, double ber) {
  Slot_result r;
  r.symbols = {symbols};
  r.ber = ber;
  return r;
}

std::vector<phy::cd> scaled(const std::vector<phy::cd>& p, double k) {
  auto out = p;
  for (auto& v : out) v *= k;
  return out;
}

TEST(Harq, FirstAttemptFixesTheBaseAndItsBer) {
  const auto cfg = tiny_config();
  Harq_combiner blk;
  EXPECT_FALSE(blk.decoded());
  EXPECT_EQ(blk.best_ber(), 1.0);
  EXPECT_EQ(blk.absorb(cfg, attempt(tiny_points(cfg), 0.25)), 0.25);
  EXPECT_TRUE(blk.decoded());
  EXPECT_EQ(blk.combined(), 1u);
  EXPECT_EQ(blk.best_ber(), 0.25);
}

TEST(Harq, ChaseCombiningRescuesWhatNoSingleAttemptDecodes) {
  // Attempt 1: every symbol negated - all 8 bits wrong, BER 1.  Attempt 2:
  // the true points at 5x amplitude, but REPORTED as BER 1 - so only the
  // combined decode can lower the block's BER.  The running average is
  // (-p + 5p) / 2 = 2p: correct quadrants, combined BER 0.  This pins that
  // absorb() really re-demodulates the average rather than trusting the
  // per-attempt verdicts.
  const auto cfg = tiny_config();
  const auto p = tiny_points(cfg);
  Harq_combiner blk;
  EXPECT_EQ(blk.absorb(cfg, attempt(scaled(p, -1.0), 1.0)), 1.0);
  EXPECT_EQ(blk.absorb(cfg, attempt(scaled(p, 5.0), 1.0)), 0.0);
  EXPECT_EQ(blk.combined(), 2u);
  EXPECT_EQ(blk.best_ber(), 0.0);
}

TEST(Harq, BestBerIsMonotoneNonIncreasing) {
  const auto cfg = tiny_config();
  const auto p = tiny_points(cfg);
  Harq_combiner blk;
  double prev = blk.absorb(cfg, attempt(scaled(p, -1.0), 1.0));
  // Garbage attempts can only keep or improve the block's best BER.
  for (const double k : {-3.0, -1.0, 0.5, -2.0}) {
    const double now = blk.absorb(cfg, attempt(scaled(p, k), 1.0));
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST(Harq, DegradedShapeAttemptsDoNotJoinTheAverage) {
  // An attempt the admission controller re-planned to a different layer
  // count decodes a different transport block: absorb() must leave the
  // accumulator untouched and return the unchanged best BER.
  const auto cfg = tiny_config();
  const auto p = tiny_points(cfg);
  Harq_combiner blk;
  EXPECT_EQ(blk.absorb(cfg, attempt(p, 0.125)), 0.125);

  phy::Uplink_config degraded = cfg;
  degraded.n_ue = 2;
  Slot_result r;
  r.symbols = {p, p};
  r.ber = 0.0;  // even a perfect degraded decode must not count
  EXPECT_EQ(blk.absorb(degraded, r), 0.125);
  EXPECT_EQ(blk.combined(), 1u);
  EXPECT_EQ(blk.best_ber(), 0.125);
}

// A fading traffic mix whose TDL cell fails often enough at snr 30 to
// exercise retransmission, recovery and exhaustion (channel aging under
// Doppler - tests/test_channel_profiles.cpp pins the mechanism).
Traffic_config fading_traffic(uint64_t n_slots, double doppler = 16.0) {
  Traffic_config cfg;
  cfg.n_slots = n_slots;
  cfg.base_seed = 3;
  Traffic_cell flat;
  flat.mu = 0;
  flat.fft_size = 64;
  flat.n_ue = 1;
  flat.qam = phy::Qam::qpsk;
  flat.load = 0.8;
  Traffic_cell faded;
  faded.mu = 1;
  faded.fft_size = 64;
  faded.n_ue = 2;
  faded.qam = phy::Qam::qam16;
  faded.load = 0.8;
  faded.profile = phy::Channel_profile::tdl_a;
  faded.doppler_hz = doppler;
  Traffic_cell dense;
  dense.mu = 2;
  dense.fft_size = 64;
  dense.n_ue = 4;
  dense.qam = phy::Qam::qam64;
  dense.load = 0.8;
  dense.profile = phy::Channel_profile::tdl_c;
  dense.doppler_hz = doppler;
  cfg.cells = {flat, faded, dense};
  return cfg;
}

TEST(Harq, MaxHarqZeroReproducesThePreHarqEngine) {
  const Traffic_source src(fading_traffic(16));
  Scheduler_options off;
  off.workers = 2;
  const auto base = Slot_scheduler(off).run(src);

  // max_harq = 0 with a threshold set is still the pre-HARQ engine, bit
  // for bit - the threshold only matters once retransmission is allowed.
  Scheduler_options armed = off;
  armed.max_harq = 0;
  armed.harq_ber = 0.5;
  EXPECT_TRUE(base.deterministic_equal(Slot_scheduler(armed).run(src)));
  EXPECT_TRUE(base.harq.empty());
  EXPECT_EQ(base.harq_retx, 0u);

  // A loop that never fires (threshold above every decoded BER) keeps the
  // per-slot surface and adds only the per-job verdict log.
  Scheduler_options lenient = off;
  lenient.max_harq = 3;
  lenient.harq_ber = 1.0;
  const auto idle = Slot_scheduler(lenient).run(src);
  EXPECT_EQ(idle.harq_retx, 0u);
  EXPECT_EQ(idle.harq_recovered, 0u);
  EXPECT_EQ(idle.harq_exhausted, 0u);
  EXPECT_EQ(idle.total_slots, base.total_slots);
  ASSERT_EQ(idle.harq.size(), src.n_slots());
  for (uint64_t i = 0; i < idle.harq.size(); ++i) {
    EXPECT_EQ(idle.harq[i].parent, i);
    EXPECT_EQ(idle.harq[i].attempt, 0u);
    EXPECT_TRUE(idle.harq[i].passed);
  }
  ASSERT_EQ(idle.slots.size(), base.slots.size());
  for (size_t i = 0; i < base.slots.size(); ++i) {
    EXPECT_EQ(idle.slots[i].bits, base.slots[i].bits) << "slot " << i;
    EXPECT_EQ(idle.slots[i].ber, base.slots[i].ber) << "slot " << i;
  }
}

TEST(Harq, RetransmissionScheduleIsBoundedAndAccounted) {
  const Traffic_source src(fading_traffic(24));
  Scheduler_options opt;
  opt.workers = 2;
  opt.max_harq = 2;
  opt.harq_ber = 0.005;
  const auto res = Slot_scheduler(opt).run(src);
  const uint64_t n_initial = src.n_slots();

  // The loop must actually fire at this operating point, with both
  // verdicts represented.
  ASSERT_GT(res.harq_retx, 0u);
  EXPECT_GT(res.harq_recovered, 0u);
  EXPECT_GT(res.harq_exhausted, 0u);
  EXPECT_EQ(res.total_slots, n_initial + res.harq_retx);
  ASSERT_EQ(res.harq.size(), res.total_slots);

  // Walk the verdict log: per parent, attempts count up from 0, never
  // exceed max_harq, the combined BER is monotone non-increasing, and no
  // attempt follows a pass.
  std::vector<uint32_t> attempts(n_initial, 0);
  std::vector<double> best(n_initial, 2.0);
  std::vector<bool> passed(n_initial, false);
  uint64_t retx = 0;
  for (uint64_t i = 0; i < res.harq.size(); ++i) {
    const auto& e = res.harq[i];
    ASSERT_LT(e.parent, n_initial) << "entry " << i;
    if (i < n_initial) {
      EXPECT_EQ(e.parent, i);  // initial transmissions in stream order
      EXPECT_EQ(e.attempt, 0u);
    } else {
      ++retx;
      EXPECT_EQ(e.attempt, attempts[e.parent] + 1) << "entry " << i;
      EXPECT_LE(e.attempt, opt.max_harq) << "entry " << i;
      EXPECT_FALSE(passed[e.parent]) << "retx after pass, entry " << i;
    }
    attempts[e.parent] = e.attempt;
    EXPECT_LE(e.combined_ber, best[e.parent]) << "entry " << i;
    best[e.parent] = e.combined_ber;
    if (e.passed) {
      EXPECT_LE(e.combined_ber, opt.harq_ber) << "entry " << i;
      passed[e.parent] = true;
    }
  }
  EXPECT_EQ(retx, res.harq_retx);

  // Verdict counters are exactly the log's roll-up...
  uint64_t recovered = 0, exhausted = 0;
  for (uint64_t p = 0; p < n_initial; ++p) {
    if (attempts[p] == 0) continue;  // passed (or was never executed) first
    if (passed[p]) {
      ++recovered;
    } else {
      EXPECT_EQ(attempts[p], opt.max_harq) << "parent " << p;
      ++exhausted;
    }
  }
  EXPECT_EQ(recovered, res.harq_recovered);
  EXPECT_EQ(exhausted, res.harq_exhausted);

  // ...and the group counters partition the global ones.
  uint64_t g_retx = 0, g_rec = 0, g_exh = 0;
  for (const auto& g : res.groups) {
    g_retx += g.harq_retx;
    g_rec += g.harq_recovered;
    g_exh += g.harq_exhausted;
  }
  EXPECT_EQ(g_retx, res.harq_retx);
  EXPECT_EQ(g_rec, res.harq_recovered);
  EXPECT_EQ(g_exh, res.harq_exhausted);
}

TEST(Harq, VirtualOnlyRejectsTheHarqLoop) {
  Scheduler_options opt;
  opt.virtual_only = true;
  opt.max_harq = 1;
  const Traffic_source src(fading_traffic(4));
  EXPECT_DEATH(Slot_scheduler(opt).run(src), "virtual-only");
}

}  // namespace
