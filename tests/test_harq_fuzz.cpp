// Seeded HARQ-loop fuzz: randomized traffic mixes, thresholds, attempt
// caps and serving-engine knobs, checked against the loop's structural
// invariants rather than pinned values:
//   - at most max_harq retransmissions per original slot, attempts
//     contiguous and never following a pass;
//   - the combined BER is monotone non-increasing along each block's
//     verdict log (chase combining only adds information);
//   - conservation: admitted + dropped = total jobs, the verdict log
//     covers every job, group counters partition the global ones;
//   - the whole surface is worker-invariant.
// The case generator is a pure function of the case seed, so any failure
// reproduces from its seed alone; kRegressionSeeds pins operating points
// that once exercised interesting corners (admission drops under
// retransmission pressure, exhaustion-heavy mixes).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/scheduler.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;
using runtime::Schedule_result;
using runtime::Scheduler_options;
using runtime::Slot_scheduler;
using runtime::Traffic_cell;
using runtime::Traffic_config;
using runtime::Traffic_source;

struct Fuzz_case {
  Traffic_config traffic;
  Scheduler_options opt;
};

// Everything below is drawn from the case RNG alone, so re-running a seed
// rebuilds the identical case.
Fuzz_case make_case(uint64_t seed) {
  common::Rng r(common::Rng::derive_seed(seed, 0x4a52));
  Fuzz_case c;
  c.traffic.base_seed = r.next_u32();
  c.traffic.n_slots = 8 + r.uniform_int(13);  // 8..20 jobs
  const uint32_t n_cells = 1 + r.uniform_int(3);
  c.traffic.cells.clear();
  const phy::Qam qams[] = {phy::Qam::qpsk, phy::Qam::qam16, phy::Qam::qam64};
  const phy::Channel_profile profiles[] = {phy::Channel_profile::flat,
                                           phy::Channel_profile::tdl_a,
                                           phy::Channel_profile::tdl_c};
  for (uint32_t i = 0; i < n_cells; ++i) {
    Traffic_cell cell;
    cell.mu = r.uniform_int(3);
    cell.fft_size = 64;
    cell.n_ue = 1u << r.uniform_int(3);  // 1, 2 or 4 layers
    cell.qam = qams[r.uniform_int(3)];
    cell.load = 0.5 + r.uniform();
    cell.profile = profiles[r.uniform_int(3)];
    if (cell.profile != phy::Channel_profile::flat) {
      cell.doppler_hz = 4.0 + 28.0 * r.uniform();
      cell.delay_spread = 1.0 + 4.0 * r.uniform();
    }
    c.traffic.cells.push_back(cell);
  }
  c.opt.workers = 2;
  c.opt.max_harq = 1 + r.uniform_int(3);  // 1..3
  const double thresholds[] = {0.0, 0.005, 0.02};
  c.opt.harq_ber = thresholds[r.uniform_int(3)];
  c.opt.shards = 1 + r.uniform_int(2);
  const char* policies[] = {"off", "drop", "degrade", "queue"};
  c.opt.overload = policies[r.uniform_int(4)];
  // Half the cases run with a scaled clock so admission actually bites.
  c.opt.clock_ghz = r.uniform() < 0.5 ? 0.02 : 1.0;
  c.opt.keep_slots = false;
  return c;
}

std::string describe(const Fuzz_case& c) {
  std::string s = "cells=" + std::to_string(c.traffic.cells.size()) +
                  " slots=" + std::to_string(c.traffic.n_slots) +
                  " max_harq=" + std::to_string(c.opt.max_harq) +
                  " harq_ber=" + std::to_string(c.opt.harq_ber) +
                  " shards=" + std::to_string(c.opt.shards) + " overload=" +
                  c.opt.overload +
                  " clock=" + std::to_string(c.opt.clock_ghz);
  return s;
}

// The structural invariants every HARQ run must satisfy, whatever the
// operating point.  Returns the retransmission count so callers can track
// whether the fuzz pool actually exercised the loop.
uint64_t check_invariants(const Fuzz_case& c, const Schedule_result& res,
                          const std::string& ctx) {
  const uint64_t n_initial = Traffic_source(c.traffic).n_slots();
  SCOPED_TRACE(ctx);

  // Conservation over jobs and the verdict log.
  EXPECT_EQ(res.total_slots, n_initial + res.harq_retx);
  EXPECT_EQ(res.admitted + res.dropped, res.total_slots);
  EXPECT_EQ(res.harq.size(), res.total_slots);

  std::vector<uint32_t> attempts(n_initial, 0);
  std::vector<double> best(n_initial, 2.0);
  std::vector<bool> passed(n_initial, false);
  uint64_t retx = 0;
  for (uint64_t i = 0; i < res.harq.size(); ++i) {
    const auto& e = res.harq[i];
    EXPECT_LT(e.parent, n_initial) << "entry " << i;
    if (e.parent >= n_initial) return retx;  // cannot index further
    if (i < n_initial) {
      EXPECT_EQ(e.parent, i) << "entry " << i;
      EXPECT_EQ(e.attempt, 0u) << "entry " << i;
    } else {
      ++retx;
      EXPECT_EQ(e.attempt, attempts[e.parent] + 1) << "entry " << i;
      EXPECT_LE(e.attempt, c.opt.max_harq) << "entry " << i;
      EXPECT_FALSE(passed[e.parent]) << "retx after pass, entry " << i;
    }
    attempts[e.parent] = e.attempt;
    EXPECT_GE(e.combined_ber, 0.0) << "entry " << i;
    EXPECT_LE(e.combined_ber, best[e.parent])
        << "combined BER regressed, entry " << i;
    best[e.parent] = e.combined_ber;
    if (e.passed) {
      EXPECT_LE(e.combined_ber, c.opt.harq_ber) << "entry " << i;
      passed[e.parent] = true;
    }
  }
  EXPECT_EQ(retx, res.harq_retx);

  uint64_t recovered = 0, exhausted = 0;
  for (uint64_t p = 0; p < n_initial; ++p) {
    if (attempts[p] == 0) continue;
    if (passed[p]) {
      ++recovered;
    } else {
      EXPECT_EQ(attempts[p], c.opt.max_harq) << "parent " << p;
      ++exhausted;
    }
  }
  EXPECT_EQ(recovered, res.harq_recovered);
  EXPECT_EQ(exhausted, res.harq_exhausted);

  // Group counters partition the global roll-up.
  uint64_t g_slots = 0, g_adm = 0, g_drop = 0, g_retx = 0, g_rec = 0,
           g_exh = 0;
  for (const auto& g : res.groups) {
    g_slots += g.slots;
    g_adm += g.admitted;
    g_drop += g.dropped;
    g_retx += g.harq_retx;
    g_rec += g.harq_recovered;
    g_exh += g.harq_exhausted;
  }
  EXPECT_EQ(g_slots, res.total_slots);
  EXPECT_EQ(g_adm, res.admitted);
  EXPECT_EQ(g_drop, res.dropped);
  EXPECT_EQ(g_retx, res.harq_retx);
  EXPECT_EQ(g_rec, res.harq_recovered);
  EXPECT_EQ(g_exh, res.harq_exhausted);
  return res.harq_retx;
}

// Operating points that exercise specific corners, kept as pinned
// regressions: 8 (degrade policy re-planning retransmission attempts), 24
// (drop policy shedding under retransmission pressure at the scaled
// clock), 29 (exhaustion-heavy max_harq = 3 mix, 54 retransmissions), 69
// (drops and recoveries in the same run).
constexpr uint64_t kRegressionSeeds[] = {8, 24, 29, 69};

TEST(HarqFuzz, RandomizedCasesSatisfyTheLoopInvariants) {
  uint64_t total_retx = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const Fuzz_case c = make_case(seed);
    const Traffic_source src(c.traffic);
    const auto res = Slot_scheduler(c.opt).run(src);
    total_retx += check_invariants(
        c, res, "seed " + std::to_string(seed) + ": " + describe(c));
  }
  // The pool must actually exercise the loop, not just pass vacuously.
  EXPECT_GT(total_retx, 0u);
}

TEST(HarqFuzz, PinnedRegressionSeeds) {
  for (const uint64_t seed : kRegressionSeeds) {
    const Fuzz_case c = make_case(seed);
    const Traffic_source src(c.traffic);
    const auto res = Slot_scheduler(c.opt).run(src);
    check_invariants(c, res,
                     "seed " + std::to_string(seed) + ": " + describe(c));
  }
}

TEST(HarqFuzz, SurfaceIsWorkerInvariantAcrossTheCasePool) {
  for (const uint64_t seed : {2ull, 5ull, 9ull}) {
    Fuzz_case c = make_case(seed);
    const Traffic_source src(c.traffic);
    c.opt.workers = 1;
    const auto serial = Slot_scheduler(c.opt).run(src);
    c.opt.workers = 4;
    EXPECT_TRUE(serial.deterministic_equal(Slot_scheduler(c.opt).run(src)))
        << "seed " << seed << ": " << describe(c);
  }
}

}  // namespace
