// common::Json: escaping-correct writer + minimal parser, round-trip.
#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pp::common {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json().dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(int64_t{42}).dump(0), "42");
  EXPECT_EQ(Json(int64_t{-7}).dump(0), "-7");
  EXPECT_EQ(Json(uint64_t{1234567890123ull}).dump(0), "1234567890123");
  // Beyond int64 range degrades to double instead of wrapping negative.
  EXPECT_FALSE(Json(uint64_t{18446744073709551615ull}).is_int());
  EXPECT_EQ(Json(1.5).dump(0), "1.5");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, IntegerIdentityPreserved) {
  // Integers never grow a decimal point, doubles never lose precision.
  EXPECT_EQ(Json(int64_t{1}).dump(0), "1");
  EXPECT_EQ(Json(1.0).dump(0), "1");
  const double v = 0.30000000000000004;  // 0.1 + 0.2
  const Json parsed = Json::parse(Json(v).dump(0));
  EXPECT_FALSE(parsed.is_int());
  EXPECT_EQ(parsed.num(), v);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Json::escape("line\nfeed\ttab\rret"),
            "line\\nfeed\\ttab\\rret");
  EXPECT_EQ(Json::escape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(Json::escape("\b\f"), "\\b\\f");
  // UTF-8 passes through untouched.
  EXPECT_EQ(Json::escape("\xc2\xa7IV"), "\xc2\xa7IV");
  EXPECT_EQ(Json("a\"b\n").dump(0), "\"a\\\"b\\n\"");
}

TEST(Json, NestedDump) {
  Json j = Json::object();
  j.set("name", "fft.parallel");
  j.set("cycles", uint64_t{8192});
  j.set("stalls", Json::array().push(0.5).push(0.25));
  j.set("inner", Json::object().set("ok", true));
  EXPECT_EQ(j.dump(0),
            "{\"name\":\"fft.parallel\",\"cycles\":8192,"
            "\"stalls\":[0.5,0.25],\"inner\":{\"ok\":true}}");
  EXPECT_EQ(j.dump(2),
            "{\n"
            "  \"name\": \"fft.parallel\",\n"
            "  \"cycles\": 8192,\n"
            "  \"stalls\": [\n    0.5,\n    0.25\n  ],\n"
            "  \"inner\": {\n    \"ok\": true\n  }\n"
            "}\n");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(0), "{}");
  EXPECT_EQ(Json::array().dump(0), "[]");
  EXPECT_EQ(Json::object().set("a", Json::array()).dump(2),
            "{\n  \"a\": []\n}\n");
}

TEST(Json, SetReplacesExistingKey) {
  Json j = Json::object();
  j.set("k", 1).set("k", 2);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.find("k")->num_int(), 2);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse(" true ").boolean());
  EXPECT_FALSE(Json::parse("false").boolean());
  EXPECT_EQ(Json::parse("123").num_int(), 123);
  EXPECT_TRUE(Json::parse("123").is_int());
  EXPECT_EQ(Json::parse("-40").num_int(), -40);
  EXPECT_DOUBLE_EQ(Json::parse("1.25e2").num(), 125.0);
  EXPECT_FALSE(Json::parse("1.0").is_int());
  EXPECT_EQ(Json::parse("\"a b\"").str(), "a b");
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n")").str(), "a\"b\\c/d\n");
  EXPECT_EQ(Json::parse(R"("\u0041\u00a7\u20ac")").str(),
            "A\xc2\xa7\xe2\x82\xac");  // ASCII, 2-byte, 3-byte UTF-8
}

TEST(Json, ParseNested) {
  const Json j = Json::parse(
      R"({"rows": [{"name": "fft", "metrics": [1, 2.5, true]}], "n": 1})");
  ASSERT_NE(j.find("rows"), nullptr);
  const Json& row = j.find("rows")->at(0);
  EXPECT_EQ(row.get_str("name", ""), "fft");
  EXPECT_EQ(row.find("metrics")->size(), 3u);
  EXPECT_EQ(row.find("metrics")->at(0).num_int(), 1);
  EXPECT_DOUBLE_EQ(row.find("metrics")->at(1).num(), 2.5);
  EXPECT_TRUE(row.find("metrics")->at(2).boolean());
  EXPECT_EQ(j.get_num("n", 0), 1.0);
}

TEST(Json, RoundTrip) {
  Json j = Json::object();
  j.set("title", "Fig. 8a \"IPC\"\n[§IV]");
  j.set("int", int64_t{-123456789});
  j.set("float", 0.1);
  j.set("nested",
        Json::array().push(Json::object().set("deep", Json::array().push(
                                                          Json()))));
  const std::string once = j.dump();
  const std::string twice = Json::parse(once).dump();
  EXPECT_EQ(once, twice);
  // Compact and pretty forms parse to the same document.
  EXPECT_EQ(Json::parse(j.dump(0)).dump(), once);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);     // trailing token
  EXPECT_THROW(Json::parse("\"abc"), std::runtime_error);   // unterminated
  EXPECT_THROW(Json::parse("\"\\x\""), std::runtime_error); // bad escape
  EXPECT_THROW(Json::parse("\"\\u12g4\""), std::runtime_error);
  EXPECT_THROW(Json::parse("-"), std::runtime_error);
  EXPECT_THROW(Json::parse("nulll"), std::runtime_error);
}

TEST(Json, ParseReportsByteOffset) {
  try {
    Json::parse("[1, oops]");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos)
        << e.what();
  }
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(0), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(0), "null");
}

}  // namespace
}  // namespace pp::common
