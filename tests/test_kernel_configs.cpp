// Kernel configuration coverage: combined multi-instance + batching FFTs at
// TeraPool scale, Cholesky pair-size sweeps, and rejection of invalid
// configurations.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/mmm.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;

std::vector<cq15> random_signal(uint32_t n, uint64_t seed, double amp = 0.25) {
  Rng rng(seed);
  std::vector<cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp);
  return x;
}

std::vector<ref::cd> to_cd(const std::vector<cq15>& x) {
  std::vector<ref::cd> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = common::to_cd(x[i]);
  return y;
}

// Multi-instance AND multi-rep batching together (the use-case schedule):
// every one of the 4x4 transforms is correct and bit-identical to serial.
TEST(KernelConfigs, FftInstancesTimesRepsAllCorrect) {
  sim::Machine m(arch::Cluster_config::terapool());
  arch::L1_alloc alloc(m.config());
  const uint32_t n = 1024, n_inst = 4, reps = 4;
  kernels::Fft_parallel fft(m, alloc, n, n_inst, reps);
  kernels::Fft_serial ser(m, alloc, n, 1);

  std::vector<std::vector<cq15>> xs;
  for (uint32_t i = 0; i < n_inst; ++i) {
    for (uint32_t r = 0; r < reps; ++r) {
      xs.push_back(random_signal(n, 100 + i * reps + r));
      fft.set_input(i, r, xs.back());
    }
  }
  fft.run();
  for (uint32_t i = 0; i < n_inst; ++i) {
    for (uint32_t r = 0; r < reps; ++r) {
      ser.set_input(0, xs[i * reps + r]);
      ser.run();
      EXPECT_EQ(fft.output(i, r), ser.output(0)) << "inst " << i << " rep " << r;
    }
  }
}

// Mirrored-pair decompositions across matrix sizes (gang sizes 2..8 cores).
class CholPairSize : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CholPairSize, ReconstructsBothMatrices) {
  const uint32_t n = GetParam();
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  kernels::Chol_pair chol(m, alloc, n, 1);

  Rng rng(n);
  std::vector<std::vector<ref::cd>> gs;
  for (uint32_t w = 0; w < 2; ++w) {
    std::vector<ref::cd> a(size_t{n} * 2 * n);
    for (auto& v : a) v = rng.cnormal() * 0.08;
    auto g = ref::gram(a, 2 * n, n);
    for (uint32_t i = 0; i < n; ++i) g[i * n + i] += 0.03;
    std::vector<cq15> gq(g.size());
    for (size_t i = 0; i < g.size(); ++i) gq[i] = common::to_cq15(g[i]);
    chol.set_g(0, w, gq);
    gs.push_back(std::move(g));
  }
  chol.run();
  for (uint32_t w = 0; w < 2; ++w) {
    const auto l = to_cd(chol.l(0, w));
    double worst = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        ref::cd acc{0, 0};
        for (uint32_t k = 0; k < n; ++k) {
          acc += l[i * n + k] * std::conj(l[j * n + k]);
        }
        worst = std::max(worst, std::abs(acc - gs[w][i * n + j]));
      }
    }
    EXPECT_LT(worst, 8e-3) << "n=" << n << " which=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholPairSize, ::testing::Values(8, 12, 16, 24, 32));

// MMM window rectangles beyond the three paper variants.
class MmmWindowShape
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(MmmWindowShape, AnyWindowShapeIsCorrect) {
  const auto [wr, wc] = GetParam();
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  const kernels::Mmm_dims d{12, 8, 20};
  kernels::Mmm mmm(m, alloc, d, wr, wc);
  const auto a = random_signal(d.m * d.k, 1);
  const auto b = random_signal(d.k * d.p, 2);
  mmm.set_a(a);
  mmm.set_b(b);
  mmm.run_parallel();
  const auto want = ref::matmul(to_cd(a), to_cd(b), d.m, d.k, d.p);
  EXPECT_GT(ref::sqnr_db(want, to_cd(mmm.c())), 35.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MmmWindowShape,
                         ::testing::Values(std::pair{1u, 1u}, std::pair{1u, 4u},
                                           std::pair{3u, 2u},
                                           std::pair{2u, 3u}));

// --- invalid configurations are rejected, not silently miscomputed -------

TEST(KernelConfigsDeathTest, RejectsBadShapes) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const auto cfg = arch::Cluster_config::minipool();
  EXPECT_DEATH(
      {
        sim::Machine m(cfg);
        arch::L1_alloc alloc(m.config());
        kernels::Fft_parallel fft(m, alloc, 128, 1, 1);  // not a power of 4
      },
      "power of 4");
  EXPECT_DEATH(
      {
        sim::Machine m(cfg);
        arch::L1_alloc alloc(m.config());
        kernels::Fft_parallel fft(m, alloc, 4096, 2, 1);  // needs 512 cores
      },
      "more cores");
  EXPECT_DEATH(
      {
        sim::Machine m(cfg);
        arch::L1_alloc alloc(m.config());
        kernels::Mmm mmm(m, alloc, {8, 8, 8}, 5, 4);  // window too tall
      },
      "window");
  EXPECT_DEATH(
      {
        sim::Machine m(cfg);
        arch::L1_alloc alloc(m.config());
        kernels::Chol_pair chol(m, alloc, 4, 1);  // pair kernel needs n >= 8
      },
      "pair");
}

}  // namespace
