// Latency-histogram bucket/percentile math and the FCFS virtual-queue
// model, against hand-computed values.
//
// The histogram's determinism claim (docs/DETERMINISM.md) rests on bucket
// assignment using only exact binary floating-point operations; these tests
// pin the bucket edges and percentile answers for values constructed with
// ldexp so every expectation is an exact double.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/latency.h"

namespace {

using pp::runtime::fcfs_completion;
using pp::runtime::Latency_histogram;

TEST(Latency, BucketOfOctaveBoundaries) {
  // 2^-10 s (~0.98 ms) sits at the bottom of octave e = -9: sub-bucket 0.
  const size_t b = Latency_histogram::bucket_of(std::ldexp(1.0, -10));
  EXPECT_EQ(b % Latency_histogram::kSub, 0u);
  // Its upper edge is 2^-10 * 17/16.
  EXPECT_EQ(Latency_histogram::bucket_upper_edge(b),
            std::ldexp(17.0 / 16.0, -10));

  // 2^-10 * 25/16 lives in sub-bucket 9 of the same octave (the value is
  // itself a bucket edge; edges belong to the bucket above).
  const size_t b9 = Latency_histogram::bucket_of(std::ldexp(25.0 / 16.0, -10));
  EXPECT_EQ(b9, b + 9);
  EXPECT_EQ(Latency_histogram::bucket_upper_edge(b9),
            std::ldexp(26.0 / 16.0, -10));
}

TEST(Latency, BucketClampsUnderAndOverflow) {
  EXPECT_EQ(Latency_histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Latency_histogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(Latency_histogram::bucket_of(1e-12), 0u);
  EXPECT_EQ(Latency_histogram::bucket_of(1e9),
            Latency_histogram::kBuckets - 1);
}

TEST(Latency, PercentilesAgainstHandComputedDistribution) {
  // 90 values at 1 ms-ish, 9 at ~4 ms, 1 at ~16 ms: p50 and p90 land in
  // the first bucket, p99 in the second, p999 (and max) in the third.
  Latency_histogram h;
  const double v1 = std::ldexp(1.0, -10);  // ~0.98 ms
  const double v2 = std::ldexp(1.0, -8);   // ~3.9 ms
  const double v3 = std::ldexp(1.0, -6);   // ~15.6 ms
  for (int i = 0; i < 90; ++i) h.record(v1);
  for (int i = 0; i < 9; ++i) h.record(v2);
  h.record(v3);
  ASSERT_EQ(h.count(), 100u);

  const double e1 = std::ldexp(17.0 / 16.0, -10);
  const double e2 = std::ldexp(17.0 / 16.0, -8);
  const double e3 = std::ldexp(17.0 / 16.0, -6);
  EXPECT_EQ(h.percentile(0.50), e1);
  EXPECT_EQ(h.percentile(0.90), e1);  // rank 90 is exactly the last v1
  EXPECT_EQ(h.percentile(0.99), e2);  // rank 99 is the last v2
  EXPECT_EQ(h.percentile(0.999), e3);
  EXPECT_EQ(h.percentile(1.0), e3);
  EXPECT_EQ(h.max_recorded(), v3);
}

TEST(Latency, PercentileRelativeErrorBounded) {
  // The bucket upper edge overestimates by at most 1/16 of the value.
  Latency_histogram h;
  const double v = 3.7e-4;
  h.record(v);
  const double p = h.percentile(0.5);
  EXPECT_GE(p, v);
  EXPECT_LE(p, v * (1.0 + 1.0 / Latency_histogram::kSub) * (1.0 + 1e-12));
}

TEST(Latency, EmptyHistogram) {
  const Latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0.0);
  EXPECT_EQ(h.max_recorded(), 0.0);
}

TEST(Latency, EqualityIsWholeDistribution) {
  Latency_histogram a, b;
  a.record(1e-3);
  b.record(1e-3);
  EXPECT_TRUE(a == b);
  b.record(2e-3);
  EXPECT_FALSE(a == b);
}

TEST(Latency, MergeEqualsRecordingTheUnion) {
  // merge() is an exact bucket-wise sum: folding b into a must equal the
  // histogram that recorded both value sets directly, bucket by bucket.
  Latency_histogram a, b, whole;
  const double v1 = std::ldexp(1.0, -12);
  const double v2 = std::ldexp(19.0 / 16.0, -12);  // same octave, sub-bucket 3
  const double v3 = std::ldexp(1.0, -5);
  for (int i = 0; i < 7; ++i) a.record(v1);
  for (int i = 0; i < 2; ++i) b.record(v2);
  b.record(v3);
  for (int i = 0; i < 7; ++i) whole.record(v1);
  for (int i = 0; i < 2; ++i) whole.record(v2);
  whole.record(v3);

  a.merge(b);
  EXPECT_TRUE(a == whole);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_EQ(a.max_recorded(), v3);
  EXPECT_EQ(a.bucket_count(Latency_histogram::bucket_of(v1)), 7u);
  EXPECT_EQ(a.bucket_count(Latency_histogram::bucket_of(v2)), 2u);
}

TEST(Latency, MergePinsQuantilesAtExactBucketEdges) {
  // Shard-style fold: two halves of a distribution merged must answer the
  // same percentile edges as the union - all expectations are exact ldexp
  // bucket edges, the determinism contract's currency.
  Latency_histogram lo, hi;
  const double v1 = std::ldexp(1.0, -10);
  const double v2 = std::ldexp(1.0, -8);
  const double v3 = std::ldexp(1.0, -6);
  for (int i = 0; i < 90; ++i) lo.record(v1);
  for (int i = 0; i < 9; ++i) hi.record(v2);
  hi.record(v3);
  lo.merge(hi);
  ASSERT_EQ(lo.count(), 100u);
  EXPECT_EQ(lo.percentile(0.50), std::ldexp(17.0 / 16.0, -10));
  EXPECT_EQ(lo.percentile(0.99), std::ldexp(17.0 / 16.0, -8));
  EXPECT_EQ(lo.percentile(0.999), std::ldexp(17.0 / 16.0, -6));
}

TEST(Latency, MergeBoundaryCases) {
  // Empty-into-empty, empty-into-filled, filled-into-empty; clamped
  // under/overflow buckets merge like any other bucket.
  Latency_histogram empty, other;
  empty.merge(Latency_histogram{});
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(0.99), 0.0);

  other.record(1e-12);  // underflow clamp -> bucket 0
  other.record(1e9);    // overflow clamp -> last bucket
  Latency_histogram target;
  target.merge(other);
  EXPECT_TRUE(target == other);
  EXPECT_EQ(target.bucket_count(0), 1u);
  EXPECT_EQ(target.bucket_count(Latency_histogram::kBuckets - 1), 1u);
  target.merge(empty);
  EXPECT_TRUE(target == other);  // merging empty is the identity
}

TEST(Latency, FcfsSingleServerQueuesInOrder) {
  // Three jobs, all at t=0, 2 s service each: completions 2, 4, 6.
  const auto c = fcfs_completion({0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}, 1);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 2.0);
  EXPECT_EQ(c[1], 4.0);
  EXPECT_EQ(c[2], 6.0);
}

TEST(Latency, FcfsMultiServerDrainsConcurrently) {
  // Two servers: jobs 0 and 1 start immediately; job 2 (arriving at 1)
  // waits for the earlier of the two frees (t=2) and completes at 5.
  const auto c = fcfs_completion({0.0, 0.0, 1.0}, {2.0, 3.0, 3.0}, 2);
  EXPECT_EQ(c[0], 2.0);
  EXPECT_EQ(c[1], 3.0);
  EXPECT_EQ(c[2], 5.0);
}

TEST(Latency, FcfsIdleServerStartsAtArrival) {
  // A late arrival into an idle queue starts at its own arrival time.
  const auto c = fcfs_completion({0.0, 10.0}, {1.0, 1.0}, 1);
  EXPECT_EQ(c[0], 1.0);
  EXPECT_EQ(c[1], 11.0);
}

}  // namespace
