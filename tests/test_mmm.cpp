// MMM kernel tests: functional correctness vs. the reference matmul across
// shapes and window sizes, serial/parallel equivalence, conflict behaviour.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/mmm.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;
using kernels::Mmm;
using kernels::Mmm_dims;

std::vector<cq15> random_matrix(size_t n, uint64_t seed, double amp = 0.25) {
  Rng rng(seed);
  std::vector<cq15> m(n);
  for (auto& v : m) v = common::to_cq15(rng.cnormal() * amp * M_SQRT1_2);
  return m;
}

std::vector<ref::cd> to_cd(const std::vector<cq15>& x) {
  std::vector<ref::cd> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = common::to_cd(x[i]);
  return y;
}

struct Shape {
  uint32_t m, k, p;
};

class MmmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(MmmShapes, ParallelMatchesReference) {
  const Shape s = GetParam();
  sim::Machine mach(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(mach.config());
  Mmm mmm(mach, alloc, Mmm_dims{s.m, s.k, s.p});

  const auto a = random_matrix(size_t{s.m} * s.k, 1);
  const auto b = random_matrix(size_t{s.k} * s.p, 2);
  mmm.set_a(a);
  mmm.set_b(b);
  const auto rep = mmm.run_parallel();
  EXPECT_GT(rep.instrs, 0u);

  const auto want = ref::matmul(to_cd(a), to_cd(b), s.m, s.k, s.p);
  EXPECT_GT(ref::sqnr_db(want, to_cd(mmm.c())), 35.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MmmShapes,
                         ::testing::Values(Shape{8, 8, 8}, Shape{16, 16, 16},
                                           Shape{32, 8, 16}, Shape{4, 32, 4},
                                           Shape{12, 8, 20},  // non-multiples
                                           Shape{64, 16, 8}));

TEST(Mmm, SerialAndParallelBitIdentical) {
  const Shape s{16, 12, 16};
  sim::Machine m1(arch::Cluster_config::minipool());
  arch::L1_alloc a1(m1.config());
  Mmm serial(m1, a1, Mmm_dims{s.m, s.k, s.p});
  sim::Machine m2(arch::Cluster_config::minipool());
  arch::L1_alloc a2(m2.config());
  Mmm parallel(m2, a2, Mmm_dims{s.m, s.k, s.p});

  const auto a = random_matrix(size_t{s.m} * s.k, 11);
  const auto b = random_matrix(size_t{s.k} * s.p, 12);
  serial.set_a(a);
  serial.set_b(b);
  parallel.set_a(a);
  parallel.set_b(b);
  serial.run_serial();
  parallel.run_parallel();
  EXPECT_EQ(serial.c(), parallel.c());
}

TEST(Mmm, IdentityActsAsCopy) {
  const uint32_t n = 8;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Mmm mmm(m, alloc, Mmm_dims{n, n, n});

  const auto a = random_matrix(size_t{n} * n, 21);
  std::vector<cq15> eye(size_t{n} * n, cq15{});
  for (uint32_t i = 0; i < n; ++i) {
    eye[i * n + i] = common::to_cq15({0.9999, 0.0});
  }
  mmm.set_a(a);
  mmm.set_b(eye);
  mmm.run_parallel();
  const auto got = mmm.c();
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(common::from_q15(got[i].re), common::from_q15(a[i].re), 2e-4);
    EXPECT_NEAR(common::from_q15(got[i].im), common::from_q15(a[i].im), 2e-4);
  }
}

// All window shapes produce the same (exact) result; smaller windows load
// more words per MAC (the paper's 4x4 justification).
TEST(Mmm, WindowAblationSameResultMoreLoads) {
  const Shape s{16, 16, 16};
  const auto a = random_matrix(size_t{s.m} * s.k, 31);
  const auto b = random_matrix(size_t{s.k} * s.p, 32);

  std::vector<cq15> ref_c;
  uint64_t instrs_4x4 = 0, instrs_2x2 = 0;
  for (auto [wr, wc] : {std::pair{4u, 4u}, {4u, 2u}, {2u, 2u}}) {
    sim::Machine m(arch::Cluster_config::minipool());
    arch::L1_alloc alloc(m.config());
    Mmm mmm(m, alloc, Mmm_dims{s.m, s.k, s.p}, wr, wc);
    mmm.set_a(a);
    mmm.set_b(b);
    const auto rep = mmm.run_serial();
    if (ref_c.empty()) {
      ref_c = mmm.c();
      instrs_4x4 = rep.instrs;
    } else {
      EXPECT_EQ(mmm.c(), ref_c) << wr << "x" << wc;
    }
    if (wr == 2 && wc == 2) instrs_2x2 = rep.instrs;
  }
  // 2x2 needs 4 loads / 4 MACs vs 8 loads / 16 MACs: more total instructions.
  EXPECT_GT(instrs_2x2, instrs_4x4);
}

// Memory-related stalls stay below the paper's 10% bound on a balanced shape.
TEST(Mmm, MemoryStallsSmall) {
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  Mmm mmm(m, alloc, Mmm_dims{32, 32, 32});
  mmm.set_a(random_matrix(32 * 32, 41));
  mmm.set_b(random_matrix(32 * 32, 42));
  const auto rep = mmm.run_parallel();
  EXPECT_LT(rep.frac_memory_stalls(), 0.10);
  EXPECT_GT(rep.ipc(), 0.5);
}

// The parallel run must be much faster than serial (speedup scales with
// cores when there is enough work).
TEST(Mmm, ParallelSpeedup) {
  const Shape s{32, 32, 32};
  sim::Machine m1(arch::Cluster_config::minipool());
  arch::L1_alloc a1(m1.config());
  Mmm serial(m1, a1, Mmm_dims{s.m, s.k, s.p});
  sim::Machine m2(arch::Cluster_config::minipool());
  arch::L1_alloc a2(m2.config());
  Mmm parallel(m2, a2, Mmm_dims{s.m, s.k, s.p});

  const auto a = random_matrix(size_t{s.m} * s.k, 51);
  const auto b = random_matrix(size_t{s.k} * s.p, 52);
  for (Mmm* k : {&serial, &parallel}) {
    k->set_a(a);
    k->set_b(b);
  }
  const auto rs = serial.run_serial();
  const auto rp = parallel.run_parallel();
  const double speedup =
      static_cast<double>(rs.cycles) / static_cast<double>(rp.cycles);
  // 16 cores in minipool; expect at least 10x.
  EXPECT_GT(speedup, 10.0);
}

}  // namespace
