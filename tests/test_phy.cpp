// PHY substrate tests: QAM round trips, channel statistics, codebook
// orthogonality, reference FFT, and the end-to-end golden receiver.
#include <gtest/gtest.h>

#include "baseline/reference.h"
#include "common/rng.h"
#include "phy/channel.h"
#include "phy/qam.h"
#include "phy/uplink.h"

namespace {

using namespace pp;
using common::Rng;
using phy::cd;
using phy::Qam;

class QamRoundTrip : public ::testing::TestWithParam<Qam> {};

TEST_P(QamRoundTrip, ModDemodIsIdentity) {
  const Qam q = GetParam();
  Rng rng(static_cast<uint64_t>(q));
  std::vector<uint8_t> bits(240 * phy::qam_bits(q));
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  const auto syms = phy::qam_modulate(q, bits);
  EXPECT_EQ(phy::qam_demodulate(q, syms), bits);
}

INSTANTIATE_TEST_SUITE_P(Orders, QamRoundTrip,
                         ::testing::Values(Qam::qpsk, Qam::qam16, Qam::qam64,
                                           Qam::qam256));

TEST(Qam, UnitAveragePower) {
  for (Qam q : {Qam::qpsk, Qam::qam16, Qam::qam64, Qam::qam256}) {
    const auto pts = phy::qam_constellation(q);
    double p = 0.0;
    for (const auto& v : pts) p += std::norm(v);
    EXPECT_NEAR(p / pts.size(), 1.0, 1e-9);
  }
}

TEST(Qam, GrayNeighborsDifferInOneBit) {
  const auto pts = phy::qam_constellation(Qam::qam16);
  // Points adjacent on the I axis must differ in exactly one bit.
  for (size_t a = 0; a < pts.size(); ++a) {
    for (size_t b = 0; b < pts.size(); ++b) {
      const bool i_neighbor =
          std::abs(std::abs(pts[a].real() - pts[b].real()) -
                   2.0 / std::sqrt(10.0)) < 1e-9 &&
          std::abs(pts[a].imag() - pts[b].imag()) < 1e-9;
      if (!i_neighbor) continue;
      const auto ba = phy::qam_demodulate(Qam::qam16, {pts[a]});
      const auto bb = phy::qam_demodulate(Qam::qam16, {pts[b]});
      int diff = 0;
      for (size_t i = 0; i < ba.size(); ++i) diff += ba[i] != bb[i];
      EXPECT_EQ(diff, 1);
    }
  }
}

TEST(RefFft, MatchesDft) {
  Rng rng(5);
  std::vector<ref::cd> x(128);
  for (auto& v : x) v = rng.cnormal();
  const auto a = ref::fft(x);
  const auto b = ref::dft(x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-9);
  }
}

TEST(RefFft, IfftInverts) {
  Rng rng(6);
  std::vector<ref::cd> x(256);
  for (auto& v : x) v = rng.cnormal();
  const auto y = ref::fft(ref::ifft(x));
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
  }
}

TEST(Channel, RayleighUnitVarianceAcrossRealizations) {
  Rng rng(7);
  double acc = 0.0;
  int n = 0;
  for (int trial = 0; trial < 50; ++trial) {
    phy::Channel ch(phy::Channel_config{64, 4, 2, 16, 1.0, 0.0}, rng);
    for (uint32_t sc = 0; sc < 64; sc += 16) {
      for (uint32_t r = 0; r < 4; ++r) {
        for (uint32_t l = 0; l < 2; ++l) {
          acc += std::norm(ch.h(0, sc, r, l));
          ++n;
        }
      }
    }
  }
  EXPECT_NEAR(acc / n, 1.0, 0.1);
}

TEST(Channel, CoherenceBlocksAreConstant) {
  Rng rng(8);
  phy::Channel ch(phy::Channel_config{64, 2, 1, 16, 1.0, 0.0}, rng);
  EXPECT_EQ(ch.h(0, 0, 0, 0), ch.h(0, 15, 0, 0));
  EXPECT_NE(ch.h(0, 0, 0, 0), ch.h(0, 16, 0, 0));
}

TEST(Codebook, ColumnsOrthonormal) {
  const auto b = phy::dft_codebook(8, 4);
  for (uint32_t c1 = 0; c1 < 4; ++c1) {
    for (uint32_t c2 = 0; c2 < 4; ++c2) {
      cd acc{0, 0};
      for (uint32_t r = 0; r < 8; ++r) {
        acc += std::conj(b[r * 4 + c1]) * b[r * 4 + c2];
      }
      EXPECT_NEAR(std::abs(acc), c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(GoldenReceiver, RecoversAllBitsAtHighSnr) {
  phy::Uplink_config cfg;
  cfg.sigma2 = 1e-8;
  cfg.seed = 42;
  phy::Uplink_scenario sc(cfg);
  const auto res = phy::golden_receive(sc);
  EXPECT_EQ(res.ber, 0.0);
  EXPECT_LT(res.evm, 0.05);
  EXPECT_LT(res.channel_mse, 1e-6);
}

TEST(GoldenReceiver, NoiseEstimateTracksTrueSigma) {
  phy::Uplink_config cfg;
  cfg.sigma2 = 4e-4;
  cfg.seed = 43;
  phy::Uplink_scenario sc(cfg);
  const auto res = phy::golden_receive(sc);
  // NE sees the beam-domain noise (orthonormal codebook preserves variance).
  EXPECT_GT(res.sigma2_hat, cfg.sigma2 * 0.3);
  EXPECT_LT(res.sigma2_hat, cfg.sigma2 * 3.0);
}

TEST(GoldenReceiver, HigherOrderQamNeedsMoreSnr) {
  phy::Uplink_config cfg;
  cfg.qam = Qam::qam256;
  cfg.sigma2 = 1e-8;
  cfg.seed = 44;
  phy::Uplink_scenario sc(cfg);
  EXPECT_EQ(phy::golden_receive(sc).ber, 0.0);

  // At heavy noise, 256-QAM must show errors.
  cfg.sigma2 = 3e-2;
  cfg.seed = 45;
  phy::Uplink_scenario noisy(cfg);
  EXPECT_GT(phy::golden_receive(noisy).ber, 0.0);
}

}  // namespace
