// Pipeline equivalence and backend cross-checks.
//
// The pre-refactor entry points (run_use_case / run_sim_uplink) are now thin
// presets over runtime::Pipeline.  These tests pin the refactor down:
//
//  * the use-case roll-up preset reproduces the exact cycle counts of the
//    same kernel configurations driven directly through their classes (the
//    pre-refactor code path);
//  * the uplink preset on the sim backend reproduces the exact per-stage
//    cycles AND the exact EVM/BER/payloads of a hand-rolled legacy chain
//    that drives the kernel classes directly;
//  * one scenario executed through the same Pipeline call on the "sim" and
//    "reference" backends decodes the same payloads.
#include <gtest/gtest.h>

#include <cmath>

#include "bench/bench_util.h"
#include "kernels/che_ne.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/gram.h"
#include "kernels/mmm.h"
#include "pusch/use_case_rollup.h"
#include "pusch/uplink_chain.h"
#include "runtime/backend.h"

namespace {

using namespace pp;
using common::cq15;
using phy::cd;

phy::Uplink_config small_cfg() {
  phy::Uplink_config cfg;
  cfg.n_sc = 64;
  cfg.fft_size = 64;
  cfg.n_rx = 4;
  cfg.n_beams = 4;
  cfg.n_ue = 2;
  cfg.n_symb = 4;
  cfg.n_pilot_symb = 2;
  cfg.qam = phy::Qam::qpsk;
  cfg.sigma2 = 1e-7;
  cfg.ue_power = 0.08;
  cfg.seed = 11;
  return cfg;
}

// ---- legacy chain, hand-rolled over the concrete kernel classes ----------
// A faithful transcription of the pre-refactor pusch::run_sim_uplink (the
// deleted sim_chain.cpp): same kernel construction order, same block
// rescaling, same launch sequence.  The Pipeline + sim-backend port must
// reproduce it cycle for cycle and bit for bit.

constexpr double s_time = 8.0;
constexpr double s_grid = 4.0;
constexpr double s_est = 4.0;
constexpr double s_rhs = 4.0;

std::vector<cq15> quantize(const std::vector<cd>& x, double scale) {
  std::vector<cq15> q(x.size());
  for (size_t i = 0; i < x.size(); ++i) q[i] = common::to_cq15(x[i] * scale);
  return q;
}

std::vector<cd> dequantize(const std::vector<cq15>& q, double scale) {
  std::vector<cd> x(q.size());
  for (size_t i = 0; i < q.size(); ++i) x[i] = common::to_cd(q[i]) / scale;
  return x;
}

struct Legacy_result {
  std::vector<uint64_t> stage_cycles;  // 6 stages, legacy order
  std::vector<std::vector<uint8_t>> bits;
  double evm = 0.0;
  double sigma2_hat = 0.0;
};

Legacy_result legacy_run_sim_uplink(const phy::Uplink_scenario& sc,
                                    const arch::Cluster_config& cluster) {
  const auto& cfg = sc.config();
  const uint32_t n = cfg.fft_size;
  const uint32_t gang = n / 16;
  const uint32_t n_cores = cluster.n_cores();
  const uint32_t fft_inst = std::min(cfg.n_rx, n_cores / gang);

  sim::Machine m(cluster);
  arch::L1_alloc alloc(m.config());

  Legacy_result out;
  out.stage_cycles.assign(6, 0);

  kernels::Fft_parallel fft(m, alloc, n, fft_inst, 1);
  kernels::Mmm mmm(m, alloc, kernels::Mmm_dims{n, cfg.n_rx, cfg.n_beams});
  kernels::Che che(m, alloc, n, cfg.n_beams, cfg.n_ue, n_cores);
  kernels::Ne ne(m, alloc, n, cfg.n_beams, cfg.n_ue, n_cores);
  const uint32_t per_core = n / n_cores > 0 ? n / n_cores : 1;
  kernels::Gram_batch gram(m, alloc, n, cfg.n_beams, cfg.n_ue, n_cores);
  kernels::Chol_batch chol(m, alloc, cfg.n_ue, per_core, n_cores);
  kernels::Trisolve_batch solve(m, alloc, cfg.n_ue, per_core, n_cores);

  std::vector<cq15> bq(sc.codebook().size());
  for (size_t i = 0; i < bq.size(); ++i) {
    bq[i] = common::to_cq15(sc.codebook()[i]);
  }

  std::vector<std::vector<cd>> beams(cfg.n_symb);
  for (uint32_t s = 0; s < cfg.n_symb; ++s) {
    std::vector<std::vector<cd>> freq(cfg.n_rx);
    for (uint32_t r0 = 0; r0 < cfg.n_rx; r0 += fft_inst) {
      const uint32_t batch = std::min(fft_inst, cfg.n_rx - r0);
      for (uint32_t i = 0; i < batch; ++i) {
        fft.set_input(i, 0, quantize(sc.antenna_time(s, r0 + i), s_time));
      }
      out.stage_cycles[0] += fft.run().cycles;
      for (uint32_t i = 0; i < batch; ++i) {
        freq[r0 + i] = dequantize(
            fft.output(i, 0), s_time / std::sqrt(static_cast<double>(n)));
      }
    }
    std::vector<cd> a(static_cast<size_t>(n) * cfg.n_rx);
    for (uint32_t scx = 0; scx < n; ++scx) {
      for (uint32_t r0 = 0; r0 < cfg.n_rx; ++r0) {
        a[static_cast<size_t>(scx) * cfg.n_rx + r0] = freq[r0][scx];
      }
    }
    mmm.set_a(quantize(a, s_grid));
    mmm.set_b(bq);
    out.stage_cycles[1] += mmm.run_parallel().cycles;
    beams[s] = dequantize(mmm.c(), s_grid);
  }

  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    che.set_pilot(l, quantize(sc.pilot(l), 1.0));
    che.set_y_sep(l, quantize(sc.pilot_obs_beam(l), s_est));
  }
  out.stage_cycles[2] += che.run().cycles;
  const auto h_hat = dequantize(che.h(), s_est);

  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    ne.set_pilot(l, quantize(sc.pilot(l), 1.0));
  }
  ne.set_y(quantize(beams[0], s_est));
  ne.set_h(quantize(h_hat, s_est));
  out.stage_cycles[3] += ne.run().cycles;
  const double sigma2_hat = ne.sigma2() / (s_est * s_est);
  out.sigma2_hat = sigma2_hat;

  gram.set_h(quantize(h_hat, 1.0));
  gram.set_sigma2(common::to_q15(sigma2_hat));
  out.bits.resize(cfg.n_ue);
  std::vector<std::vector<cd>> eq(cfg.n_ue);
  double evm_acc = 0.0;
  uint64_t evm_cnt = 0;

  for (uint32_t s = cfg.n_pilot_symb; s < cfg.n_symb; ++s) {
    gram.set_y(quantize(beams[s], s_rhs));
    out.stage_cycles[4] += gram.run().cycles;
    for (uint32_t scx = 0; scx < n; ++scx) {
      chol.set_g(scx / per_core, scx % per_core, gram.g(scx));
    }
    out.stage_cycles[5] += chol.run().cycles;
    for (uint32_t scx = 0; scx < n; ++scx) {
      solve.set_system(scx / per_core, scx % per_core,
                       chol.l(scx / per_core, scx % per_core), gram.rhs(scx));
    }
    out.stage_cycles[5] += solve.run().cycles;

    for (uint32_t scx = 0; scx < n; ++scx) {
      const auto x =
          dequantize(solve.x(scx / per_core, scx % per_core), s_rhs);
      for (uint32_t l = 0; l < cfg.n_ue; ++l) {
        const cd sym = x[l] / cfg.ue_power;
        eq[l].push_back(sym);
        const cd want = sc.tx_grid(l, s)[scx] / cfg.ue_power;
        evm_acc += std::norm(sym - want);
        ++evm_cnt;
      }
    }
  }
  out.evm = std::sqrt(evm_acc / static_cast<double>(evm_cnt));
  for (uint32_t l = 0; l < cfg.n_ue; ++l) {
    out.bits[l] = phy::qam_demodulate(cfg.qam, eq[l]);
  }
  return out;
}

TEST(PipelineEquivalence, UplinkPresetMatchesLegacyChainExactly) {
  const phy::Uplink_scenario sc(small_cfg());
  const auto cluster = arch::Cluster_config::minipool();

  const auto legacy = legacy_run_sim_uplink(sc, cluster);
  const auto ported = pusch::run_sim_uplink(sc, cluster);

  ASSERT_EQ(ported.stages.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ported.stages[i].cycles, legacy.stage_cycles[i])
        << ported.stages[i].name;
  }
  EXPECT_EQ(ported.bits, legacy.bits);
  EXPECT_DOUBLE_EQ(ported.evm, legacy.evm);
  EXPECT_DOUBLE_EQ(ported.sigma2_hat, legacy.sigma2_hat);
  EXPECT_EQ(ported.backend, "sim");
}

// ---- use-case roll-up: preset == direct kernel-class measurement ---------

TEST(PipelineEquivalence, UseCasePresetMatchesDirectKernelMeasurement) {
  pusch::Chain_config cfg;
  cfg.cluster = arch::Cluster_config::minipool();
  cfg.dims.fft_size = 256;
  cfg.dims.n_rx = 4;
  cfg.dims.n_beams = 4;
  cfg.dims.n_ue = 4;
  const auto res = pusch::run_use_case(cfg);
  ASSERT_EQ(res.stages.size(), 3u);

  // FFT stage: the preset must pick 1 gang x 4 reps on 16 cores and scale
  // by 14 symbols; its measured cycles must equal a direct run.
  {
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Fft_parallel fft(m, alloc, 256, 1, 4);
    common::Rng rng(1);
    for (uint32_t r = 0; r < 4; ++r) {
      fft.set_input(0, r, bench::random_signal(256, 40 + r));
    }
    EXPECT_EQ(res.stages[0].rep.cycles, fft.run().cycles);
    EXPECT_EQ(res.stages[0].times, 14u);
  }
  // MMM stage: one 256x4x4 slice, 14 symbols.
  {
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Mmm mmm(m, alloc, kernels::Mmm_dims{256, 4, 4});
    mmm.set_a(bench::random_signal(256 * 4, 1));
    mmm.set_b(bench::random_signal(4 * 4, 2));
    EXPECT_EQ(res.stages[1].rep.cycles, mmm.run_parallel().cycles);
    EXPECT_EQ(res.stages[1].times, 14u);
  }
  // Cholesky stage: 16 decompositions per core (L1 limits the symbol batch
  // to 1 at this scale), 12 data symbols.
  {
    sim::Machine m(cfg.cluster);
    arch::L1_alloc alloc(m.config());
    kernels::Chol_batch chol(m, alloc, 4, 16, 16);
    for (uint32_t c = 0; c < 16; ++c) {
      const auto g = bench::random_spd(4, c);
      for (uint32_t i = 0; i < 16; ++i) chol.set_g(c, i, g);
    }
    EXPECT_EQ(res.stages[2].rep.cycles, chol.run().cycles);
    EXPECT_EQ(res.stages[2].times, 12u);
  }

  EXPECT_EQ(res.parallel_cycles, res.stages[0].total_cycles() +
                                     res.stages[1].total_cycles() +
                                     res.stages[2].total_cycles());
  EXPECT_GT(res.serial_cycles, res.parallel_cycles);
}

TEST(PipelineEquivalence, MeasureIsDeterministic) {
  pusch::Chain_config cfg;
  cfg.cluster = arch::Cluster_config::minipool();
  cfg.dims.fft_size = 256;
  cfg.dims.n_rx = 4;
  cfg.dims.n_beams = 4;
  cfg.dims.n_ue = 4;
  const auto a = pusch::run_use_case(cfg);
  const auto b = pusch::run_use_case(cfg);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].rep.cycles, b.stages[i].rep.cycles);
  }
  EXPECT_EQ(a.serial_cycles, b.serial_cycles);
}

// ---- backend cross-check -------------------------------------------------

TEST(BackendCrossCheck, SimAndReferenceDecodeTheSamePayloads) {
  const phy::Uplink_scenario sc(small_cfg());
  const auto pipeline =
      runtime::uplink_pipeline(arch::Cluster_config::minipool());

  runtime::Sim_backend sim_b;
  runtime::Reference_backend ref_b;
  const auto on_sim = pipeline.execute(sc, sim_b);
  const auto on_ref = pipeline.execute(sc, ref_b);

  EXPECT_EQ(on_sim.backend, "sim");
  EXPECT_EQ(on_ref.backend, "reference");
  EXPECT_GT(on_sim.total_cycles(), 0u);
  EXPECT_EQ(on_ref.total_cycles(), 0u);  // not cycle-accurate
  ASSERT_EQ(on_sim.stages.size(), on_ref.stages.size());
  // The reference backend mirrors the sim backend's launch counts.
  for (size_t i = 0; i < on_sim.stages.size(); ++i) {
    EXPECT_EQ(on_sim.stages[i].runs, on_ref.stages[i].runs)
        << on_sim.stages[i].name;
  }

  // Same payloads; the fixed-point EVM is worse than double but bounded.
  EXPECT_EQ(on_sim.bits, on_ref.bits);
  EXPECT_EQ(on_sim.ber, 0.0);
  EXPECT_EQ(on_ref.ber, 0.0);
  EXPECT_GE(on_sim.evm, on_ref.evm * 0.5);
  EXPECT_LT(on_sim.evm, on_ref.evm + 0.25);
}

TEST(BackendCrossCheck, MakeBackendByName) {
  EXPECT_EQ(runtime::make_backend("sim")->name(), "sim");
  EXPECT_EQ(runtime::make_backend("reference")->name(), "reference");
  EXPECT_EQ(runtime::make_backend("parallel", 2)->name(), "parallel");
  EXPECT_TRUE(runtime::make_backend("sim")->cycle_accurate());
  EXPECT_FALSE(runtime::make_backend("reference")->cycle_accurate());
  EXPECT_FALSE(runtime::make_backend("parallel", 2)->cycle_accurate());
}

TEST(BackendCrossCheck, MakeBackendRejectsUnknownNames) {
  EXPECT_DEATH(runtime::make_backend("cuda"), "unknown backend");
  EXPECT_DEATH(runtime::make_backend(""), "unknown backend");
  EXPECT_DEATH(runtime::make_backend("Reference"), "unknown backend");
}

// ---- new scheduling capability: Cholesky symbol batching -----------------

TEST(PipelineScheduling, CholSymbolBatchingKeepsValuesAndCutsLaunches) {
  const phy::Uplink_scenario sc(small_cfg());
  const auto cluster = arch::Cluster_config::minipool();
  runtime::Sim_backend backend;

  runtime::Uplink_options one;
  const auto base = runtime::uplink_pipeline(cluster, one).execute(sc, backend);

  runtime::Uplink_options batched;
  batched.chol_symb_batch = 2;  // both data symbols in one launch
  const auto fast =
      runtime::uplink_pipeline(cluster, batched).execute(sc, backend);

  // Identical decoded values (scheduling never changes arithmetic) ...
  EXPECT_EQ(base.bits, fast.bits);
  EXPECT_DOUBLE_EQ(base.evm, fast.evm);
  // ... with half the chol+solve launches and fewer total cycles there.
  EXPECT_EQ(base.stages[5].runs, 4u);
  EXPECT_EQ(fast.stages[5].runs, 2u);
  EXPECT_LT(fast.stages[5].cycles, base.stages[5].cycles);
}

// The same Pipeline object supports both engines: scheduling keys on the
// stage specs (symb_batch) must not leak into the kernel factories when the
// analytic roll-up instantiates the stages.
TEST(PipelineScheduling, UplinkPresetIsMeasurable) {
  runtime::Uplink_options opt;
  opt.chol_symb_batch = 2;
  const auto r =
      runtime::uplink_pipeline(arch::Cluster_config::mempool(), opt).measure();
  ASSERT_EQ(r.stages.size(), 6u);
  for (const auto& st : r.stages) {
    EXPECT_GT(st.rep.cycles, 0u) << st.name;
  }
}

}  // namespace
