// Cell-to-shard placement policies (runtime/placement.h).
//
// Placement runs once, serially, before anything executes, so the contract
// is purely functional: same loads, same policy -> same assignment, with
// all tie-breaks pinned to the lowest id.
#include <gtest/gtest.h>

#include "runtime/placement.h"
#include "runtime/scheduler.h"
#include "runtime/traffic.h"

namespace {

using namespace pp;
using runtime::place_groups;

TEST(Placement, RegistryListsBothPoliciesInOrder) {
  const auto names = runtime::placement_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "round-robin");
  EXPECT_EQ(names[1], "load-aware");
  EXPECT_TRUE(runtime::is_placement_name("round-robin"));
  EXPECT_TRUE(runtime::is_placement_name("load-aware"));
  EXPECT_FALSE(runtime::is_placement_name("random"));
  EXPECT_FALSE(runtime::is_placement_name(""));
}

TEST(Placement, RoundRobinCyclesThroughShards) {
  const auto shard = place_groups("round-robin", {}, 7, 3);
  const std::vector<uint32_t> want = {0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(shard, want);
}

TEST(Placement, SingleShardShortCircuitsButStillValidates) {
  EXPECT_EQ(place_groups("round-robin", {}, 4, 1),
            (std::vector<uint32_t>{0, 0, 0, 0}));
  EXPECT_EQ(place_groups("load-aware", {}, 0, 1), std::vector<uint32_t>{});
  EXPECT_DEATH(place_groups("nope", {}, 4, 1), "unknown placement policy");
}

TEST(Placement, UnknownPolicyAborts) {
  EXPECT_DEATH(place_groups("nope", {1.0, 2.0}, 2, 2),
               "unknown placement policy");
}

TEST(Placement, LoadAwareIsLptGreedy) {
  // Loads 8,7,3,2,1 on 2 shards: LPT assigns 8->s0, 7->s1, 3->s1 (1+7=10?
  // no: totals 8 vs 7, least is s1), then 2->s1 (8 vs 10 -> s0)... walk it:
  //   8 -> s0 (0,0)   totals (8,0)
  //   7 -> s1         totals (8,7)
  //   3 -> s1         totals (8,10)
  //   2 -> s0         totals (10,10)
  //   1 -> s0 (tie -> lowest id)
  const auto shard = place_groups("load-aware", {8, 7, 3, 2, 1}, 5, 2);
  const std::vector<uint32_t> want = {0, 1, 1, 0, 0};
  EXPECT_EQ(shard, want);
}

TEST(Placement, LoadAwareTiesBreakToLowestGroupAndShard) {
  // All-equal loads: the descending sort is stable, so groups keep index
  // order and the assignment degenerates to round-robin.
  const auto shard = place_groups("load-aware", {5, 5, 5, 5}, 4, 2);
  const std::vector<uint32_t> want = {0, 1, 0, 1};
  EXPECT_EQ(shard, want);
}

TEST(Placement, GroupServiceSecondsSumsTheAnalyticModelPerCell) {
  runtime::Traffic_config cfg;
  cfg.n_slots = 12;
  cfg.base_seed = 7;
  runtime::Traffic_cell a;
  a.fft_size = 64;
  runtime::Traffic_cell b;
  b.fft_size = 16;
  b.qam = phy::Qam::qpsk;
  cfg.cells = {a, b};
  const runtime::Traffic_source src(cfg);
  std::vector<runtime::Slot_job> jobs(src.n_slots());
  for (uint64_t i = 0; i < src.n_slots(); ++i) jobs[i] = src.job(i);

  const auto cluster = arch::Cluster_config::minipool();
  const auto load =
      runtime::group_service_seconds(jobs, src.n_groups(), cluster, 1.0);
  ASSERT_EQ(load.size(), 2u);
  std::vector<double> want(2, 0.0);
  for (const auto& job : jobs) {
    want[job.group] +=
        runtime::analytic_service_seconds(job.cfg, cluster, 1.0);
  }
  EXPECT_EQ(load[0], want[0]);  // exact: same additions in the same order
  EXPECT_EQ(load[1], want[1]);
  EXPECT_GT(load[0], load[1]);  // the 64-point cell costs more
}

TEST(Placement, LoadAwareBalancesBetterThanRoundRobinOnSkewedLoads) {
  // One heavy group among lights: round-robin pins heavy + every even
  // group on shard 0; LPT pairs the heavy group with the fewest lights.
  const std::vector<double> load = {100, 1, 1, 1, 1, 1};
  const auto rr = place_groups("round-robin", {}, 6, 2);
  const auto la = place_groups("load-aware", load, 6, 2);
  auto imbalance = [&](const std::vector<uint32_t>& shard) {
    double total[2] = {0, 0};
    for (size_t g = 0; g < shard.size(); ++g) total[shard[g]] += load[g];
    return std::abs(total[0] - total[1]);
  };
  EXPECT_LT(imbalance(la), imbalance(rr));
}

}  // namespace
