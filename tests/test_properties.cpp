// Property-based tests: simulator determinism, DSP invariants (Parseval,
// time-shift), randomized barrier stress, and seed sweeps over the kernels.
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/reference.h"
#include "common/rng.h"
#include "kernels/cholesky.h"
#include "kernels/fft.h"
#include "kernels/mmm.h"
#include "sim/barrier.h"

namespace {

using namespace pp;
using common::cq15;
using common::Rng;

std::vector<cq15> random_signal(uint32_t n, uint64_t seed, double amp = 0.25) {
  Rng rng(seed);
  std::vector<cq15> x(n);
  for (auto& v : x) v = common::to_cq15(rng.cnormal() * amp);
  return x;
}

std::vector<ref::cd> to_cd(const std::vector<cq15>& x) {
  std::vector<ref::cd> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = common::to_cd(x[i]);
  return y;
}

// --- determinism -------------------------------------------------------

// The machine is fully deterministic: two identical runs give identical
// cycle counts and stall breakdowns.
TEST(Properties, SimulationIsDeterministic) {
  auto run_once = [] {
    sim::Machine m(arch::Cluster_config::minipool());
    arch::L1_alloc alloc(m.config());
    kernels::Fft_parallel fft(m, alloc, 256, 1);
    fft.set_input(0, 0, random_signal(256, 77));
    return fft.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instrs, b.instrs);
  EXPECT_EQ(a.stall, b.stall);
}

// --- FFT invariants over seed sweeps ------------------------------------

class FftSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FftSeedSweep, ParsevalHolds) {
  const uint32_t n = 64;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  kernels::Fft_parallel fft(m, alloc, n, 1);
  const auto x = random_signal(n, GetParam());
  fft.set_input(0, 0, x);
  fft.run();
  const auto y = to_cd(fft.output(0, 0));
  // Kernel computes FFT/N: energy(x)/N == N * energy(y)  (tolerance for Q15).
  double ex = 0, ey = 0;
  for (const auto& v : to_cd(x)) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey * n, ex, 0.05 * ex + 1e-3) << "seed " << GetParam();
}

TEST_P(FftSeedSweep, TimeShiftIsPhaseRamp) {
  const uint32_t n = 64;
  const uint32_t shift = 5;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  kernels::Fft_parallel a(m, alloc, n, 1), b(m, alloc, n, 1);

  const auto x = random_signal(n, GetParam() + 1000);
  std::vector<cq15> xs(n);
  for (uint32_t i = 0; i < n; ++i) xs[i] = x[(i + shift) % n];
  a.set_input(0, 0, x);
  b.set_input(0, 0, xs);
  a.run();
  b.run();
  const auto ya = to_cd(a.output(0, 0));
  const auto yb = to_cd(b.output(0, 0));
  for (uint32_t k = 0; k < n; ++k) {
    const double ang = 2.0 * M_PI * k * shift / n;
    const ref::cd rot{std::cos(ang), std::sin(ang)};
    EXPECT_NEAR(std::abs(yb[k] - ya[k] * rot), 0.0, 6e-3)
        << "seed " << GetParam() << " bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- MMM algebraic properties -------------------------------------------

class MmmSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MmmSeedSweep, MatchesReference) {
  const uint32_t n = 16;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  kernels::Mmm mmm(m, alloc, kernels::Mmm_dims{n, n, n});
  const auto a = random_signal(n * n, GetParam() * 3 + 1);
  const auto b = random_signal(n * n, GetParam() * 3 + 2);
  mmm.set_a(a);
  mmm.set_b(b);
  mmm.run_parallel();
  const auto want = ref::matmul(to_cd(a), to_cd(b), n, n, n);
  EXPECT_GT(ref::sqnr_db(want, to_cd(mmm.c())), 35.0) << GetParam();
}

TEST_P(MmmSeedSweep, ZeroTimesAnythingIsZero) {
  const uint32_t n = 8;
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  kernels::Mmm mmm(m, alloc, kernels::Mmm_dims{n, n, n});
  mmm.set_a(std::vector<cq15>(n * n, cq15{}));
  mmm.set_b(random_signal(n * n, GetParam()));
  mmm.run_parallel();
  for (const auto& v : mmm.c()) EXPECT_EQ(v, cq15{});
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmmSeedSweep, ::testing::Values(4, 9, 16, 25));

// --- Cholesky sweep -------------------------------------------------------

class CholSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CholSeedSweep, DiagonalRealPositive) {
  const uint32_t n = 8;
  Rng rng(GetParam());
  std::vector<ref::cd> a(size_t{n} * 2 * n);
  for (auto& v : a) v = rng.cnormal() * 0.1;
  auto g = ref::gram(a, 2 * n, n);
  for (uint32_t i = 0; i < n; ++i) g[i * n + i] += 0.05;
  std::vector<cq15> gq(g.size());
  for (size_t i = 0; i < g.size(); ++i) gq[i] = common::to_cq15(g[i]);

  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());
  kernels::Chol_serial chol(m, alloc, n, 1);
  chol.set_g(0, gq);
  chol.run();
  const auto l = chol.l(0);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_GT(l[i * n + i].re, 0) << "seed " << GetParam();
    EXPECT_EQ(l[i * n + i].im, 0);
    for (uint32_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(l[i * n + j], cq15{});  // strictly lower triangular
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- randomized barrier stress ------------------------------------------

// Random per-phase workloads on random gang partitions never deadlock and
// never let a core run ahead of its gang.
class BarrierStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BarrierStress, RandomWorkloadsStaySynchronized) {
  const auto cfg = arch::Cluster_config::minipool();
  sim::Machine m(cfg);
  arch::L1_alloc alloc(m.config());
  Rng rng(GetParam());

  // Random gang size dividing the cluster.
  const uint32_t sizes[] = {2, 4, 8, 16};
  const uint32_t gang = sizes[rng.uniform_int(4)];
  const uint32_t n_gangs = cfg.n_cores() / gang;
  const uint32_t phases = 8;

  std::vector<sim::Barrier> bars;
  for (uint32_t g = 0; g < n_gangs; ++g) {
    std::vector<arch::core_id> cs(gang);
    std::iota(cs.begin(), cs.end(), g * gang);
    bars.push_back(sim::Barrier::create(alloc, cfg, std::move(cs)));
  }

  // phase_done[g][p] = number of gang cores that completed phase p.
  static std::vector<std::vector<uint32_t>> entered;
  entered.assign(n_gangs, std::vector<uint32_t>(phases + 1, 0));

  struct Body {
    static sim::Prog prog(sim::Core& c, sim::Barrier* b, uint32_t g,
                          uint32_t gang, uint32_t phases, uint32_t seed) {
      Rng local(seed ^ c.id);
      for (uint32_t p = 0; p < phases; ++p) {
        // Everyone must still be in the same phase when working.
        EXPECT_EQ(entered[g][p + 1], 0u) << "core ran ahead of its gang";
        c.alu(1 + local.uniform_int(60));
        ++entered[g][p];
        co_await sim::barrier_wait(c, *b);
        // After the barrier, the whole gang finished the phase.
        EXPECT_EQ(entered[g][p], gang);
      }
      ++entered[g][phases];
    }
  };

  std::vector<sim::Machine::Launch> l;
  for (arch::core_id c = 0; c < cfg.n_cores(); ++c) {
    l.push_back({c, Body::prog(m.core(c), &bars[c / gang], c / gang, gang,
                               phases, static_cast<uint32_t>(GetParam()))});
  }
  m.run_programs("stress", std::move(l));
  for (uint32_t g = 0; g < n_gangs; ++g) {
    EXPECT_EQ(entered[g][phases], gang);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierStress,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// --- stat conservation across every kernel -------------------------------

TEST(Properties, StatConservationAcrossKernels) {
  // For any kernel: instrs + all stalls == cores * cycles.
  sim::Machine m(arch::Cluster_config::minipool());
  arch::L1_alloc alloc(m.config());

  kernels::Fft_parallel fft(m, alloc, 64, 4);
  for (uint32_t i = 0; i < 4; ++i) fft.set_input(i, 0, random_signal(64, i));
  kernels::Mmm mmm(m, alloc, kernels::Mmm_dims{16, 16, 16});
  mmm.set_a(random_signal(256, 1));
  mmm.set_b(random_signal(256, 2));

  for (const auto& r : {fft.run(), mmm.run_parallel()}) {
    uint64_t total = r.instrs;
    for (auto s : r.stall) total += s;
    EXPECT_EQ(total, r.core_cycles()) << r.label;
  }
}

}  // namespace
