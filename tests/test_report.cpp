// bench::Report assembly + serialization: report_from() over a real
// measure_kernel() run, the deterministic/host-dependent marking rules,
// wall-clock statistics, and the emitted JSON parsed back by common::Json.
#include "bench/report.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace pp::bench {
namespace {

using common::Json;

Measured small_fft() {
  return measure_kernel(arch::Cluster_config::minipool(), "fft.serial",
                        runtime::Params().set("n", 64u), 3);
}

TEST(Report, RowFromRealKernelRun) {
  const Measured m = small_fft();
  const Row row = report_from("serial 64-pt", m, "minipool");

  EXPECT_EQ(row.name, "serial 64-pt");
  EXPECT_EQ(row.cluster, "minipool");
  EXPECT_EQ(row.kernel, "fft.serial");
  EXPECT_EQ(row.cores, m.desc.cores);
  EXPECT_EQ(row.macs, m.desc.macs);
  EXPECT_NE(row.params.find("n=64"), std::string::npos) << row.params;

  ASSERT_EQ(row.metrics.size(), 8u);
  EXPECT_EQ(row.metrics[0].name, "cycles");
  EXPECT_EQ(row.metrics[0].value, static_cast<double>(m.rep.cycles));
  EXPECT_EQ(row.metrics[1].name, "ipc");
  EXPECT_DOUBLE_EQ(row.metrics[1].value, m.rep.ipc());
  // Simulator-derived metrics are all deterministic and direction-gated.
  double frac_sum = 0.0;
  for (const Metric& metric : row.metrics) {
    EXPECT_TRUE(metric.deterministic) << metric.name;
    EXPECT_NE(metric.better, "info") << metric.name;
    if (metric.name.rfind("frac_", 0) == 0) frac_sum += metric.value;
  }
  // Every cycle is attributed to exactly one bucket.
  EXPECT_NEAR(frac_sum, 1.0, 1e-9);
}

TEST(Report, RunsAreReproducible) {
  // The premise of gating on deterministic metrics: identical runs give
  // identical reports.
  const Measured a = small_fft();
  const Measured b = small_fft();
  EXPECT_EQ(a.rep.cycles, b.rep.cycles);
  EXPECT_EQ(a.rep.instrs, b.rep.instrs);
}

TEST(Report, ToJsonShape) {
  Report rep = make_report("bench_x", "[Fig. 1]", "a title");
  rep.add_meta("arch", "both");
  rep.rows.push_back(report_from("serial 64-pt", small_fft(), "minipool"));
  rep.add_row("host row").metric(
      wall_metric("wall", {0.3, 0.1, 0.2}));

  const Json j = rep.to_json();
  EXPECT_EQ(j.get_str("schema", ""), "pp-bench-report-v1");
  EXPECT_EQ(j.get_str("bench", ""), "bench_x");
  EXPECT_EQ(j.get_str("figure", ""), "[Fig. 1]");
  EXPECT_FALSE(j.get_str("git", "").empty());
  EXPECT_EQ(j.find("meta")->get_str("arch", ""), "both");

  const Json& rows = *j.find("rows");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.at(0).get_str("kernel", ""), "fft.serial");
  EXPECT_EQ(rows.at(0).get_str("cluster", ""), "minipool");
  const Json& cycles = rows.at(0).find("metrics")->at(0);
  EXPECT_EQ(cycles.get_str("name", ""), "cycles");
  EXPECT_TRUE(cycles.get_bool("deterministic", false));

  // The wall-clock row is marked host-dependent with its statistics.
  const Json& wall = rows.at(1).find("metrics")->at(0);
  EXPECT_FALSE(wall.get_bool("deterministic", true));
  EXPECT_EQ(wall.get_str("better", ""), "info");
  EXPECT_DOUBLE_EQ(wall.get_num("value", 0), 0.1);  // min
  EXPECT_DOUBLE_EQ(wall.get_num("min", 0), 0.1);
  EXPECT_DOUBLE_EQ(wall.get_num("median", 0), 0.2);
  EXPECT_EQ(wall.find("reps")->num_int(), 3);
}

TEST(Report, WallMetricStats) {
  const Metric m = wall_metric("t", {4.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(m.reps, 4u);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.value, 1.0);
  EXPECT_DOUBLE_EQ(m.median, 2.5);
  // Sample stdev of {1,2,3,4}.
  EXPECT_NEAR(m.stdev, 1.2909944487358056, 1e-12);
  EXPECT_EQ(wall_metric("t", {}).reps, 0u);
  EXPECT_DOUBLE_EQ(wall_metric("t", {5.0}).stdev, 0.0);
}

TEST(Report, WriteJsonRoundTrips) {
  Report rep = make_report("bench_rt", "[Table I]", "escaping \"title\"\n");
  rep.add_row("row \\ with \t specials")
      .metric("macs", 12345.0, "macs", true, "exact");

  const std::string path = ::testing::TempDir() + "report_rt.json";
  ASSERT_TRUE(rep.write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const Json j = Json::parse(text);
  EXPECT_EQ(j.get_str("title", ""), "escaping \"title\"\n");
  EXPECT_EQ(j.find("rows")->at(0).get_str("name", ""),
            "row \\ with \t specials");
  EXPECT_EQ(j.find("rows")->at(0).find("metrics")->at(0).get_num("value", 0),
            12345.0);
  // The dump parses to the exact same document (writer/parser agreement).
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(Report, EmitHonorsJsonFlag) {
  const std::string path = ::testing::TempDir() + "report_emit.json";
  std::remove(path.c_str());
  Report rep = make_report("bench_emit", "[host]", "t");

  const char* no_flag[] = {"prog"};
  EXPECT_EQ(emit(rep, common::Cli(1, const_cast<char**>(no_flag))), 0);
  std::FILE* missing = std::fopen(path.c_str(), "r");
  EXPECT_EQ(missing, nullptr);  // no --json -> nothing written

  const char* with_flag[] = {"prog", "--json", path.c_str()};
  EXPECT_EQ(emit(rep, common::Cli(3, const_cast<char**>(with_flag))), 0);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  // Unwritable path -> non-zero, so benches fail loudly in scripts.
  const char* bad[] = {"prog", "--json", "/nonexistent-dir/x.json"};
  EXPECT_EQ(emit(rep, common::Cli(3, const_cast<char**>(bad))), 1);
}

TEST(Report, PlacementFromCliValidatesAgainstTheRegistry) {
  const char* good[] = {"prog", "--placement", "load-aware"};
  EXPECT_EQ(placement_from_cli(common::Cli(3, const_cast<char**>(good))),
            "load-aware");
  const char* none[] = {"prog"};
  EXPECT_EQ(placement_from_cli(common::Cli(1, const_cast<char**>(none))),
            "round-robin");
  // Unknown names exit 2 with the registered list - the same convention as
  // --backend/--arch, so scripts and users get choices, not an abort.
  const char* bad[] = {"prog", "--placement", "random"};
  EXPECT_EXIT(placement_from_cli(common::Cli(3, const_cast<char**>(bad))),
              ::testing::ExitedWithCode(2),
              "unknown placement 'random' for --placement; "
              "registered: round-robin load-aware");
}

TEST(Report, OverloadFromCliValidatesAgainstTheRegistry) {
  const char* good[] = {"prog", "--overload", "degrade"};
  EXPECT_EQ(overload_from_cli(common::Cli(3, const_cast<char**>(good))),
            "degrade");
  const char* none[] = {"prog"};
  EXPECT_EQ(overload_from_cli(common::Cli(1, const_cast<char**>(none))),
            "off");
  const char* bad[] = {"prog", "--overload", "shed"};
  EXPECT_EXIT(overload_from_cli(common::Cli(3, const_cast<char**>(bad))),
              ::testing::ExitedWithCode(2),
              "unknown policy 'shed' for --overload; "
              "registered: off drop queue degrade");
}

}  // namespace
}  // namespace pp::bench
