// Regression tests for the PRNG distributions — in particular the
// uniform_int() integer path (Lemire multiply-shift with rejection), which
// replaced a float path whose double-rounded truncation biased buckets and
// risked returning n for n close to 2^32.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>

#include "common/rng.h"

namespace {

using pp::common::Rng;

TEST(RngUniformInt, NeverReturnsNForAdversarialBounds) {
  // The old float path computed static_cast<uint32_t>(uniform() * n); these
  // bounds maximize the double-rounding exposure near 2^32.
  const std::array<uint32_t, 7> bounds = {
      1u,           2u,          3u,       0x80000001u,
      0xfffffffeu,  0xffffffffu, 1000003u,
  };
  Rng rng(123);
  for (const uint32_t n : bounds) {
    for (int i = 0; i < 20000; ++i) {
      const uint32_t v = rng.uniform_int(n);
      ASSERT_LT(v, n) << "bound " << n;
    }
  }
}

TEST(RngUniformInt, DegenerateBounds) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(1), 0u);
    EXPECT_EQ(rng.uniform_int(0), 0u);
  }
}

TEST(RngUniformInt, GoldenSequencePinned) {
  // Pins the exact output stream so the draw discipline (one next_u32 per
  // accepted draw, rejection only below the 2^32 mod n threshold) cannot
  // drift silently.
  Rng rng(42);
  const std::array<uint32_t, 8> want = {268635421u, 589424290u, 259208044u,
                                        709199744u, 518066291u, 629192229u,
                                        759671364u, 551444549u};
  for (const uint32_t w : want) EXPECT_EQ(rng.uniform_int(1000000007u), w);

  Rng rng2(7);
  const std::array<uint32_t, 4> want2 = {3u, 3u, 1u, 4u};
  for (const uint32_t w : want2) EXPECT_EQ(rng2.uniform_int(6u), w);
}

TEST(RngUniformInt, SmallBoundIsUnbiased) {
  // n = 3 splits 2^32 with remainder 1: without rejection, bucket 0 would be
  // visibly heavier.  With Lemire + rejection each bucket is within 1% of
  // the uniform share over 300k draws (sigma ~ 0.15%).
  Rng rng(2024);
  const int draws = 300000;
  std::array<int, 3> count = {0, 0, 0};
  for (int i = 0; i < draws; ++i) ++count[rng.uniform_int(3)];
  for (const int c : count) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / 3.0, 0.01);
  }
}

TEST(RngDeriveSeed, GoldenValuesPinned) {
  // The sweep engine's per-slot seed contract: SplitMix64 of
  // base + (stream + 1) * golden-gamma.  Changing this silently would
  // invalidate every recorded sweep.
  EXPECT_EQ(Rng::derive_seed(1, 0), 0x910a2dec89025cc1ull);
  EXPECT_EQ(Rng::derive_seed(1, 1), 0xbeeb8da1658eec67ull);
  EXPECT_EQ(Rng::derive_seed(1, 2), 0xf893a2eefb32555eull);
  EXPECT_EQ(Rng::derive_seed(1, 3), 0x71c18690ee42c90bull);
}

TEST(RngDeriveSeed, StreamsAreDistinct) {
  std::set<uint64_t> seen;
  for (uint64_t base : {0ull, 1ull, 0xdeadbeefull}) {
    for (uint64_t stream = 0; stream < 512; ++stream) {
      EXPECT_TRUE(seen.insert(Rng::derive_seed(base, stream)).second)
          << "collision at base " << base << " stream " << stream;
    }
  }
}

TEST(RngDeriveSeed, IsPure) {
  // Same (base, stream) always maps to the same seed, independent of any
  // Rng instance state.
  Rng rng(9);
  rng.uniform();
  EXPECT_EQ(Rng::derive_seed(5, 17), Rng::derive_seed(5, 17));
}

}  // namespace
